//===- tests/dynatree_test.cpp - dynamic-tree model tests -----*- C++ -*-===//

#include "dynatree/DynaTree.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace alic;

namespace {

DynaTreeConfig smallConfig(unsigned Particles = 120, uint64_t Seed = 3) {
  DynaTreeConfig C;
  C.NumParticles = Particles;
  C.Seed = Seed;
  return C;
}

/// Step function in 1D: 0 below 0, 5 above.
double stepFn(double X) { return X < 0.0 ? 0.0 : 5.0; }

} // namespace

TEST(DynaTreeTest, LearnsConstantFunction) {
  DynaTree M(smallConfig());
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  Rng R(1);
  for (int I = 0; I != 40; ++I) {
    X.push_back({R.nextUniform(-1, 1)});
    Y.push_back(3.0);
  }
  M.fit(X, Y);
  Prediction P = M.predict({0.5});
  EXPECT_NEAR(P.Mean, 3.0, 1e-6);
  EXPECT_LT(P.Variance, 0.01);
}

TEST(DynaTreeTest, LearnsStepFunction) {
  DynaTree M(smallConfig());
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  Rng R(2);
  for (int I = 0; I != 30; ++I) {
    double V = R.nextUniform(-1, 1);
    X.push_back({V});
    Y.push_back(stepFn(V));
  }
  M.fit(X, Y);
  for (int I = 0; I != 200; ++I) {
    double V = R.nextUniform(-1, 1);
    M.update({V}, stepFn(V));
  }
  EXPECT_NEAR(M.predict({-0.7}).Mean, 0.0, 0.4);
  EXPECT_NEAR(M.predict({0.7}).Mean, 5.0, 0.4);
  EXPECT_GT(M.averageLeafCount(), 1.5);
}

TEST(DynaTreeTest, DeterministicForEqualSeeds) {
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  Rng R(4);
  for (int I = 0; I != 50; ++I) {
    X.push_back({R.nextUniform(-1, 1), R.nextUniform(-1, 1)});
    Y.push_back(X.back()[0] * 2.0 + R.nextGaussian() * 0.1);
  }
  DynaTree M1(smallConfig(80, 9)), M2(smallConfig(80, 9));
  M1.fit(X, Y);
  M2.fit(X, Y);
  Prediction P1 = M1.predict({0.3, -0.2});
  Prediction P2 = M2.predict({0.3, -0.2});
  EXPECT_EQ(P1.Mean, P2.Mean);
  EXPECT_EQ(P1.Variance, P2.Variance);
}

TEST(DynaTreeTest, VarianceHigherOnComplexRegions) {
  // Constant leaves covering a steep ramp mix heterogeneous values, so
  // their predictive variance must exceed leaves on a flat plateau — the
  // "complex areas of the decision space stick out" mechanism the paper
  // relies on (Section 3.1).
  DynaTree M(smallConfig(200));
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  Rng R(5);
  for (int I = 0; I != 300; ++I) {
    double V = R.nextUniform(-1, 1);
    X.push_back({V});
    double Ramp = V < 0.0 ? 0.0 : 10.0 * V;
    Y.push_back(Ramp + 0.01 * R.nextGaussian());
  }
  M.fit(X, Y);
  auto bandVariance = [&M](double Lo, double Hi) {
    double Sum = 0.0;
    const int Steps = 21;
    for (int I = 0; I != Steps; ++I)
      Sum += M.predict({Lo + (Hi - Lo) * I / (Steps - 1)}).Variance;
    return Sum / Steps;
  };
  EXPECT_GT(bandVariance(0.3, 1.0), bandVariance(-1.0, -0.3));
}

TEST(DynaTreeTest, NoisyLeafHasHigherVarianceThanQuietLeaf) {
  DynaTree M(smallConfig(200));
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  Rng R(6);
  // Left half quiet, right half very noisy (heteroskedastic).
  for (int I = 0; I != 150; ++I) {
    double V = R.nextUniform(-1, 0);
    X.push_back({V});
    Y.push_back(2.0 + 0.01 * R.nextGaussian());
  }
  for (int I = 0; I != 150; ++I) {
    double V = R.nextUniform(0, 1);
    X.push_back({V});
    Y.push_back(2.0 + 1.0 * R.nextGaussian());
  }
  // Interleave for the SMC.
  std::vector<size_t> Order = R.sampleIndices(X.size(), X.size());
  std::vector<std::vector<double>> Xi;
  std::vector<double> Yi;
  for (size_t I : Order) {
    Xi.push_back(X[I]);
    Yi.push_back(Y[I]);
  }
  M.fit(Xi, Yi);
  EXPECT_GT(M.predict({0.5}).Variance, 3.0 * M.predict({-0.5}).Variance);
}

TEST(DynaTreeTest, AlcScoresNonNegativeAndFavourUncertainRegions) {
  DynaTree M(smallConfig(200));
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  Rng R(7);
  for (int I = 0; I != 150; ++I) {
    double V = R.nextUniform(-1, 0);
    X.push_back({V});
    Y.push_back(1.0 + 0.005 * R.nextGaussian());
  }
  for (int I = 0; I != 30; ++I) {
    double V = R.nextUniform(0, 1);
    X.push_back({V});
    Y.push_back(3.0 + 0.8 * R.nextGaussian());
  }
  std::vector<size_t> Order = R.sampleIndices(X.size(), X.size());
  std::vector<std::vector<double>> Xi;
  std::vector<double> Yi;
  for (size_t I : Order) {
    Xi.push_back(X[I]);
    Yi.push_back(Y[I]);
  }
  M.fit(Xi, Yi);

  std::vector<std::vector<double>> Ref;
  for (int I = 0; I != 100; ++I)
    Ref.push_back({R.nextUniform(-1, 1)});
  std::vector<std::vector<double>> Cands = {{-0.5}, {0.5}};
  std::vector<double> Scores = M.alcScores(Cands, Ref);
  EXPECT_GE(Scores[0], 0.0);
  EXPECT_GE(Scores[1], 0.0);
  EXPECT_GT(Scores[1], Scores[0]); // noisy side more informative
}

TEST(DynaTreeTest, AlmEqualsPredictiveVariance) {
  DynaTree M(smallConfig());
  std::vector<std::vector<double>> X = {{0.0}, {1.0}, {2.0}, {3.0}, {4.0}};
  std::vector<double> Y = {1.0, 2.0, 3.0, 2.0, 1.0};
  M.fit(X, Y);
  std::vector<std::vector<double>> Cands = {{0.5}, {3.5}};
  std::vector<double> Alm = M.almScores(Cands);
  EXPECT_DOUBLE_EQ(Alm[0], M.predict({0.5}).Variance);
  EXPECT_DOUBLE_EQ(Alm[1], M.predict({3.5}).Variance);
}

TEST(DynaTreeTest, EffectiveSampleSizeWithinBounds) {
  DynaTree M(smallConfig(100));
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  Rng R(8);
  for (int I = 0; I != 60; ++I) {
    X.push_back({R.nextUniform(-1, 1)});
    Y.push_back(std::sin(3 * X.back()[0]) + 0.05 * R.nextGaussian());
  }
  M.fit(X, Y);
  EXPECT_GE(M.effectiveSampleSize(), 1.0);
  EXPECT_LE(M.effectiveSampleSize(), 100.0);
}

TEST(DynaTreeTest, NumObservationsTracksUpdates) {
  DynaTree M(smallConfig());
  M.fit({{0.0}, {1.0}}, {1.0, 2.0});
  EXPECT_EQ(M.numObservations(), 2u);
  M.update({2.0}, 3.0);
  EXPECT_EQ(M.numObservations(), 3u);
}

TEST(DynaTreeTest, RefitResetsState) {
  DynaTree M(smallConfig());
  M.fit({{0.0}, {1.0}, {2.0}}, {1.0, 1.0, 1.0});
  M.fit({{5.0}, {6.0}}, {9.0, 9.0});
  EXPECT_EQ(M.numObservations(), 2u);
  EXPECT_NEAR(M.predict({5.5}).Mean, 9.0, 0.5);
}

TEST(DynaTreeTest, TreesGrowWithStructuredData) {
  DynaTree M(smallConfig(150));
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  Rng R(9);
  for (int I = 0; I != 400; ++I) {
    double A = R.nextUniform(-2, 2), B = R.nextUniform(-2, 2);
    X.push_back({A, B});
    Y.push_back(stepFn(A) + stepFn(B) + 0.02 * R.nextGaussian());
  }
  M.fit(X, Y);
  EXPECT_GT(M.averageLeafCount(), 3.0);
  EXPECT_GT(M.averageDepth(), 1.0);
}

//===- tests/dynatree_test.cpp - dynamic-tree model tests -----*- C++ -*-===//

#include "dynatree/DynaTree.h"
#include "support/Rng.h"
#include "support/Scheduler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

using namespace alic;

namespace {

DynaTreeConfig smallConfig(unsigned Particles = 120, uint64_t Seed = 3) {
  DynaTreeConfig C;
  C.NumParticles = Particles;
  C.Seed = Seed;
  return C;
}

/// Step function in 1D: 0 below 0, 5 above.
double stepFn(double X) { return X < 0.0 ? 0.0 : 5.0; }

} // namespace

TEST(DynaTreeTest, LearnsConstantFunction) {
  DynaTree M(smallConfig());
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  Rng R(1);
  for (int I = 0; I != 40; ++I) {
    X.push_back({R.nextUniform(-1, 1)});
    Y.push_back(3.0);
  }
  M.fit(X, Y);
  Prediction P = M.predict({0.5});
  EXPECT_NEAR(P.Mean, 3.0, 1e-6);
  EXPECT_LT(P.Variance, 0.01);
}

TEST(DynaTreeTest, LearnsStepFunction) {
  DynaTree M(smallConfig());
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  Rng R(2);
  for (int I = 0; I != 30; ++I) {
    double V = R.nextUniform(-1, 1);
    X.push_back({V});
    Y.push_back(stepFn(V));
  }
  M.fit(X, Y);
  for (int I = 0; I != 200; ++I) {
    double V = R.nextUniform(-1, 1);
    M.update({V}, stepFn(V));
  }
  EXPECT_NEAR(M.predict({-0.7}).Mean, 0.0, 0.4);
  EXPECT_NEAR(M.predict({0.7}).Mean, 5.0, 0.4);
  EXPECT_GT(M.averageLeafCount(), 1.5);
}

TEST(DynaTreeTest, DeterministicForEqualSeeds) {
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  Rng R(4);
  for (int I = 0; I != 50; ++I) {
    X.push_back({R.nextUniform(-1, 1), R.nextUniform(-1, 1)});
    Y.push_back(X.back()[0] * 2.0 + R.nextGaussian() * 0.1);
  }
  DynaTree M1(smallConfig(80, 9)), M2(smallConfig(80, 9));
  M1.fit(X, Y);
  M2.fit(X, Y);
  Prediction P1 = M1.predict({0.3, -0.2});
  Prediction P2 = M2.predict({0.3, -0.2});
  EXPECT_EQ(P1.Mean, P2.Mean);
  EXPECT_EQ(P1.Variance, P2.Variance);
}

TEST(DynaTreeTest, VarianceHigherOnComplexRegions) {
  // Constant leaves covering a steep ramp mix heterogeneous values, so
  // their predictive variance must exceed leaves on a flat plateau — the
  // "complex areas of the decision space stick out" mechanism the paper
  // relies on (Section 3.1).
  DynaTree M(smallConfig(200));
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  Rng R(5);
  for (int I = 0; I != 300; ++I) {
    double V = R.nextUniform(-1, 1);
    X.push_back({V});
    double Ramp = V < 0.0 ? 0.0 : 10.0 * V;
    Y.push_back(Ramp + 0.01 * R.nextGaussian());
  }
  M.fit(X, Y);
  auto bandVariance = [&M](double Lo, double Hi) {
    double Sum = 0.0;
    const int Steps = 21;
    for (int I = 0; I != Steps; ++I)
      Sum += M.predict({Lo + (Hi - Lo) * I / (Steps - 1)}).Variance;
    return Sum / Steps;
  };
  EXPECT_GT(bandVariance(0.3, 1.0), bandVariance(-1.0, -0.3));
}

TEST(DynaTreeTest, NoisyLeafHasHigherVarianceThanQuietLeaf) {
  DynaTree M(smallConfig(200));
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  Rng R(6);
  // Left half quiet, right half very noisy (heteroskedastic).
  for (int I = 0; I != 150; ++I) {
    double V = R.nextUniform(-1, 0);
    X.push_back({V});
    Y.push_back(2.0 + 0.01 * R.nextGaussian());
  }
  for (int I = 0; I != 150; ++I) {
    double V = R.nextUniform(0, 1);
    X.push_back({V});
    Y.push_back(2.0 + 1.0 * R.nextGaussian());
  }
  // Interleave for the SMC.
  std::vector<size_t> Order = R.sampleIndices(X.size(), X.size());
  std::vector<std::vector<double>> Xi;
  std::vector<double> Yi;
  for (size_t I : Order) {
    Xi.push_back(X[I]);
    Yi.push_back(Y[I]);
  }
  M.fit(Xi, Yi);
  EXPECT_GT(M.predict({0.5}).Variance, 3.0 * M.predict({-0.5}).Variance);
}

TEST(DynaTreeTest, AlcScoresNonNegativeAndFavourUncertainRegions) {
  DynaTree M(smallConfig(200));
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  Rng R(7);
  for (int I = 0; I != 150; ++I) {
    double V = R.nextUniform(-1, 0);
    X.push_back({V});
    Y.push_back(1.0 + 0.005 * R.nextGaussian());
  }
  for (int I = 0; I != 30; ++I) {
    double V = R.nextUniform(0, 1);
    X.push_back({V});
    Y.push_back(3.0 + 0.8 * R.nextGaussian());
  }
  std::vector<size_t> Order = R.sampleIndices(X.size(), X.size());
  std::vector<std::vector<double>> Xi;
  std::vector<double> Yi;
  for (size_t I : Order) {
    Xi.push_back(X[I]);
    Yi.push_back(Y[I]);
  }
  M.fit(Xi, Yi);

  std::vector<std::vector<double>> Ref;
  for (int I = 0; I != 100; ++I)
    Ref.push_back({R.nextUniform(-1, 1)});
  std::vector<std::vector<double>> Cands = {{-0.5}, {0.5}};
  std::vector<double> Scores = M.alcScores(Cands, Ref);
  EXPECT_GE(Scores[0], 0.0);
  EXPECT_GE(Scores[1], 0.0);
  EXPECT_GT(Scores[1], Scores[0]); // noisy side more informative
}

TEST(DynaTreeTest, AlmEqualsPredictiveVariance) {
  DynaTree M(smallConfig());
  std::vector<std::vector<double>> X = {{0.0}, {1.0}, {2.0}, {3.0}, {4.0}};
  std::vector<double> Y = {1.0, 2.0, 3.0, 2.0, 1.0};
  M.fit(X, Y);
  std::vector<std::vector<double>> Cands = {{0.5}, {3.5}};
  std::vector<double> Alm = M.almScores(Cands);
  EXPECT_DOUBLE_EQ(Alm[0], M.predict({0.5}).Variance);
  EXPECT_DOUBLE_EQ(Alm[1], M.predict({3.5}).Variance);
}

TEST(DynaTreeTest, EffectiveSampleSizeWithinBounds) {
  DynaTree M(smallConfig(100));
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  Rng R(8);
  for (int I = 0; I != 60; ++I) {
    X.push_back({R.nextUniform(-1, 1)});
    Y.push_back(std::sin(3 * X.back()[0]) + 0.05 * R.nextGaussian());
  }
  M.fit(X, Y);
  EXPECT_GE(M.effectiveSampleSize(), 1.0);
  EXPECT_LE(M.effectiveSampleSize(), 100.0);
}

TEST(DynaTreeTest, NumObservationsTracksUpdates) {
  DynaTree M(smallConfig());
  M.fit({{0.0}, {1.0}}, {1.0, 2.0});
  EXPECT_EQ(M.numObservations(), 2u);
  M.update({2.0}, 3.0);
  EXPECT_EQ(M.numObservations(), 3u);
}

TEST(DynaTreeTest, RefitResetsState) {
  DynaTree M(smallConfig());
  M.fit({{0.0}, {1.0}, {2.0}}, {1.0, 1.0, 1.0});
  M.fit({{5.0}, {6.0}}, {9.0, 9.0});
  EXPECT_EQ(M.numObservations(), 2u);
  EXPECT_NEAR(M.predict({5.5}).Mean, 9.0, 0.5);
}

TEST(DynaTreeTest, DefaultParticleCountIsPaperScale) {
  // Section 4.4 of the paper: N = 5000 particles.
  EXPECT_EQ(DynaTreeConfig().NumParticles, 5000u);
}

namespace {

/// Shared scenario for the determinism and statistics tests: 2-D step +
/// ramp surface with heteroskedastic noise, seeded batch plus sequential
/// updates.
struct Scenario {
  std::vector<std::vector<double>> X;
  std::vector<double> Y;

  explicit Scenario(int NumPoints = 300) {
    Rng R(42);
    for (int I = 0; I != NumPoints; ++I) {
      double A = R.nextUniform(-1, 1), B = R.nextUniform(-1, 1);
      X.push_back({A, B});
      double Sigma = A > 0.5 ? 0.5 : 0.05;
      Y.push_back(truth(A, B) + Sigma * R.nextGaussian());
    }
  }

  static double truth(double A, double B) {
    return (A < 0.0 ? 0.0 : 5.0) + 2.0 * B;
  }

  /// Fits the first 40 points, updates with the rest.
  void drive(DynaTree &M) const {
    M.fit({X.begin(), X.begin() + 40}, {Y.begin(), Y.begin() + 40});
    for (size_t I = 40; I != X.size(); ++I)
      M.update(X[I], Y[I]);
  }
};

} // namespace

TEST(DynaTreeTest, ParallelUpdatesBitIdenticalAcrossThreadCounts) {
  // The determinism contract of the particle engine: reweight, resample,
  // propagate, prediction, and ALC must be *bit-identical* with no pool
  // and with pools of any size, because every particle draws from a
  // counter-derived RNG stream and shards write disjoint state.
  Scenario S(220);
  DynaTreeConfig C = smallConfig(300, 11);

  DynaTree Serial(C);
  S.drive(Serial);
  Prediction Want = Serial.predict({0.3, -0.4});
  std::vector<double> WantAlc =
      Serial.alcScores({{0.3, -0.4}, {-0.6, 0.2}}, {S.X.begin(),
                                                    S.X.begin() + 60});

  for (unsigned Threads : {1u, 2u, 8u}) {
    Scheduler Pool(Threads);
    DynaTree M(C);
    M.setScheduler(&Pool);
    S.drive(M);
    Prediction Got = M.predict({0.3, -0.4});
    EXPECT_EQ(Want.Mean, Got.Mean) << Threads << " threads";
    EXPECT_EQ(Want.Variance, Got.Variance) << Threads << " threads";
    EXPECT_EQ(Serial.effectiveSampleSize(), M.effectiveSampleSize())
        << Threads << " threads";
    EXPECT_EQ(Serial.averageLeafCount(), M.averageLeafCount())
        << Threads << " threads";
    ScoreContext Ctx;
    Ctx.Pool = &Pool;
    EXPECT_EQ(WantAlc, M.alcScores({{0.3, -0.4}, {-0.6, 0.2}},
                                   {S.X.begin(), S.X.begin() + 60}, Ctx))
        << Threads << " threads";
  }
}

TEST(DynaTreeTest, IdenticallySeededRunsBitIdentical) {
  Scenario S(200);
  DynaTree M1(smallConfig(200, 21)), M2(smallConfig(200, 21));
  S.drive(M1);
  S.drive(M2);
  Prediction P1 = M1.predict({0.5, 0.5});
  Prediction P2 = M2.predict({0.5, 0.5});
  EXPECT_EQ(P1.Mean, P2.Mean);
  EXPECT_EQ(P1.Variance, P2.Variance);
  EXPECT_EQ(M1.effectiveSampleSize(), M2.effectiveSampleSize());
  EXPECT_EQ(M1.averageLeafCount(), M2.averageLeafCount());
  EXPECT_EQ(M1.averageDepth(), M2.averageDepth());
}

TEST(DynaTreeTest, EnsembleStatisticsMatchPreRefactorBaseline) {
  // Regression bounds recorded from the pre-SoA/pre-COW implementation on
  // this exact scenario at N=1000 (seed 7): ESS 992.99, average leaves
  // 18.38, average max depth 6.09, grid RMSE 0.335.  The rebuilt engine
  // must stay in the same statistical regime (the trajectories differ —
  // per-particle RNG streams replaced the shared generator — so the
  // comparison is tolerance-based, not bitwise).
  Scenario S(300);
  DynaTreeConfig C;
  C.NumParticles = 1000;
  C.Seed = 7;
  DynaTree M(C);
  S.drive(M);

  EXPECT_GE(M.effectiveSampleSize(), 800.0); // healthy, near-uniform weights
  EXPECT_LE(M.effectiveSampleSize(), 1000.0);
  EXPECT_GE(M.averageLeafCount(), 11.0); // 18.38 +/- 40%
  EXPECT_LE(M.averageLeafCount(), 26.0);
  EXPECT_GE(M.averageDepth(), 3.6); // 6.09 +/- 40%
  EXPECT_LE(M.averageDepth(), 8.6);

  double Se = 0.0;
  int Num = 0;
  for (double A = -0.9; A <= 0.95; A += 0.2)
    for (double B = -0.9; B <= 0.95; B += 0.2) {
      double D = M.predict({A, B}).Mean - Scenario::truth(A, B);
      Se += D * D;
      ++Num;
    }
  EXPECT_LE(std::sqrt(Se / Num), 0.5); // pre-refactor engine scored 0.335
}

TEST(DynaTreeTest, ThreadedLearningMatchesSerialUnderResampling) {
  // End-to-end shape of the COW machinery: long enough for pending lists
  // to overflow, trees to be cloned, and prunes to splice chunk lists —
  // all under a pool — with bitwise-equal outputs.
  Scenario S(400);
  DynaTreeConfig C = smallConfig(150, 31);
  DynaTree Serial(C), Threaded(C);
  Scheduler Pool(4);
  Threaded.setScheduler(&Pool);
  S.drive(Serial);
  S.drive(Threaded);
  for (double A = -0.8; A <= 0.9; A += 0.4)
    for (double B = -0.8; B <= 0.9; B += 0.4) {
      Prediction Ps = Serial.predict({A, B});
      Prediction Pt = Threaded.predict({A, B});
      EXPECT_EQ(Ps.Mean, Pt.Mean);
      EXPECT_EQ(Ps.Variance, Pt.Variance);
    }
}

TEST(DynaTreeTest, DedupScoringBitIdenticalToNaiveReference) {
  // The unique-run contract: predict/almScores/alcScores walk each
  // (tree, pending) run once and repeat the accumulation per alias, so
  // they must be *bit-identical* to the naive per-particle reference —
  // serially, across worker counts, and under varied steal seeds.
  Scenario S(260);
  DynaTreeConfig C = smallConfig(250, 13);
  DynaTree M(C);
  S.drive(M);
  ASSERT_GT(M.duplicateFraction(), 0.0) << "scenario never aliased a tree";

  FlatRows Cands;
  Rng R(23);
  for (int I = 0; I != 40; ++I)
    Cands.push({R.nextUniform(-1, 1), R.nextUniform(-1, 1)});
  FlatRows Ref(S.X.begin(), S.X.begin() + 60);

  // Naive reference on the very same ensemble state.
  M.setScoringDedup(false);
  Prediction WantP = M.predict({0.3, -0.4});
  std::vector<double> WantAlm = M.almScores(Cands);
  std::vector<double> WantAlc = M.alcScores(Cands, Ref);
  M.setScoringDedup(true);

  Prediction GotP = M.predict({0.3, -0.4});
  EXPECT_EQ(WantP.Mean, GotP.Mean);
  EXPECT_EQ(WantP.Variance, GotP.Variance);
  EXPECT_EQ(WantAlm, M.almScores(Cands));
  EXPECT_EQ(WantAlc, M.alcScores(Cands, Ref));

  for (uint64_t StealSeed : {0x57ea1ull, 0xfeedull}) {
    for (unsigned Threads : {1u, 8u}) {
      Scheduler::Options O;
      O.Threads = Threads;
      O.StealSeed = StealSeed;
      Scheduler Pool(O);
      ScoreContext Ctx;
      Ctx.Pool = &Pool;
      EXPECT_EQ(WantAlm, M.almScores(Cands, Ctx))
          << Threads << " threads, steal seed " << StealSeed;
      EXPECT_EQ(WantAlc, M.alcScores(Cands, Ref, Ctx))
          << Threads << " threads, steal seed " << StealSeed;
    }
  }
}

TEST(DynaTreeTest, DedupBitIdenticalWhenModelTrainedUnderPool) {
  // Same contract with the *training* sharded too: a pooled model's run
  // index must describe the same ensemble the serial model built.
  Scenario S(260);
  DynaTreeConfig C = smallConfig(250, 13);
  DynaTree Serial(C), Pooled(C);
  S.drive(Serial);
  Scheduler Pool(4);
  Pooled.setScheduler(&Pool);
  S.drive(Pooled);
  EXPECT_EQ(Serial.uniqueRunCount(), Pooled.uniqueRunCount());
  EXPECT_EQ(Serial.duplicateFraction(), Pooled.duplicateFraction());
  Serial.setScoringDedup(false); // naive reference vs pooled dedup path
  FlatRows Cands = {{0.3, -0.4}, {-0.6, 0.2}, {0.9, 0.9}};
  FlatRows Ref(S.X.begin(), S.X.begin() + 50);
  ScoreContext Ctx;
  Ctx.Pool = &Pool;
  EXPECT_EQ(Serial.almScores(Cands), Pooled.almScores(Cands, Ctx));
  EXPECT_EQ(Serial.alcScores(Cands, Ref), Pooled.alcScores(Cands, Ref, Ctx));
}

TEST(DynaTreeTest, RunIndexCountersSane) {
  // A seed batch too small to grow (needs 2*MinLeafSize effective points)
  // or overflow the pending list keeps every particle aliasing the one
  // root tree: exactly one unique run.
  DynaTree M(smallConfig(300, 5));
  M.fit({{0.0}, {0.2}, {0.4}, {0.6}}, {1.0, 1.1, 0.9, 1.0});
  EXPECT_EQ(M.uniqueRunCount(), 1u);
  EXPECT_NEAR(M.duplicateFraction(), 1.0 - 1.0 / 300.0, 1e-12);

  // Drive real updates: runs multiply as particles diverge, but stay
  // bounded by the ensemble size, and the fraction stays in [0, 1].
  Rng R(31);
  for (int I = 0; I != 80; ++I) {
    double V = R.nextUniform(-1, 1);
    M.update({V}, stepFn(V) + 0.05 * R.nextGaussian());
  }
  EXPECT_GE(M.uniqueRunCount(), 1u);
  EXPECT_LE(M.uniqueRunCount(), 300u);
  EXPECT_GE(M.duplicateFraction(), 0.0);
  EXPECT_LE(M.duplicateFraction(), 1.0);

  // The instrumentation must account walks exactly: naive terms are
  // candidates * particles; the dedup path walks candidates * runs.
  ScoreStats Stats;
  ScoreContext Ctx;
  Ctx.Stats = &Stats;
  FlatRows Cands = {{-0.5}, {0.1}, {0.7}};
  M.almScores(Cands, Ctx);
  EXPECT_EQ(Stats.CandidatesScored.load(), 3u);
  EXPECT_EQ(Stats.ParticleTerms.load(), 3u * 300u);
  EXPECT_EQ(Stats.UniqueLeafWalks.load(), 3u * M.uniqueRunCount());
  EXPECT_GE(Stats.dedupFactor(), 1.0);

  FlatRows Ref = {{-0.8}, {-0.2}, {0.4}, {0.9}};
  M.alcScores(Cands, Ref, Ctx);
  EXPECT_EQ(Stats.CandidatesScored.load(), 6u);
  EXPECT_EQ(Stats.ParticleTerms.load(), 3u * 300u + (3u + 4u) * 300u);
  EXPECT_EQ(Stats.UniqueLeafWalks.load(),
            (3u + 3u + 4u) * M.uniqueRunCount());
}

TEST(DynaTreeTest, PostResampleRunsAreContiguousAliases) {
  // After a resampling update, the duplicate fraction the run index
  // reports must match what systematic resampling implies: N particles
  // in at most N runs, and a concentrated posterior (an outlier
  // observation) collapses many particles onto few survivors.
  Scenario S(150);
  DynaTreeConfig C = smallConfig(400, 19);
  DynaTree M(C);
  S.drive(M);
  double Before = M.duplicateFraction();
  // A string of far-outlier updates concentrates the weights.
  for (int I = 0; I != 4; ++I)
    M.update({0.95, 0.95}, 60.0 + double(I));
  EXPECT_GT(M.duplicateFraction(), Before);
  EXPECT_LE(M.uniqueRunCount(),
            size_t(double(C.NumParticles) * (1.0 - M.duplicateFraction())) + 1);
}

TEST(DynaTreeTest, TreesGrowWithStructuredData) {
  DynaTree M(smallConfig(150));
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  Rng R(9);
  for (int I = 0; I != 400; ++I) {
    double A = R.nextUniform(-2, 2), B = R.nextUniform(-2, 2);
    X.push_back({A, B});
    Y.push_back(stepFn(A) + stepFn(B) + 0.02 * R.nextGaussian());
  }
  M.fit(X, Y);
  EXPECT_GT(M.averageLeafCount(), 3.0);
  EXPECT_GT(M.averageDepth(), 1.0);
}

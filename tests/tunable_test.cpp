//===- tests/tunable_test.cpp - tunable/ unit tests -----------*- C++ -*-===//

#include "support/Rng.h"
#include "tunable/Normalizer.h"
#include "tunable/ParamSpace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

using namespace alic;

namespace {

ParamSpace smallSpace() {
  std::vector<Param> Params;
  Params.push_back(Param::range("u", ParamKind::Unroll, 1, 4, 1, 0));
  Params.push_back(Param::powersOfTwo("t", ParamKind::CacheTile, 1, 8, 1));
  Params.push_back(Param::flag("f"));
  return ParamSpace(std::move(Params));
}

} // namespace

TEST(ParamTest, RangeValues) {
  Param P = Param::range("u", ParamKind::Unroll, 1, 30, 1, 3);
  EXPECT_EQ(P.numValues(), 30u);
  EXPECT_EQ(P.value(0), 1);
  EXPECT_EQ(P.value(29), 30);
  EXPECT_EQ(P.loopIndex(), 3);
  EXPECT_EQ(P.kind(), ParamKind::Unroll);
}

TEST(ParamTest, SteppedRange) {
  Param P = Param::range("t", ParamKind::CacheTile, 4, 20, 8);
  EXPECT_EQ(P.values(), (std::vector<int>{4, 12, 20}));
}

TEST(ParamTest, PowersOfTwo) {
  Param P = Param::powersOfTwo("t", ParamKind::CacheTile, 2, 64);
  EXPECT_EQ(P.values(), (std::vector<int>{2, 4, 8, 16, 32, 64}));
}

TEST(ParamTest, FromValues) {
  Param P = Param::fromValues("x", ParamKind::Generic, {1, 8, 16, 99});
  EXPECT_EQ(P.numValues(), 4u);
  EXPECT_EQ(P.value(3), 99);
}

TEST(ParamTest, Flag) {
  Param P = Param::flag("scalar_repl");
  EXPECT_EQ(P.values(), (std::vector<int>{0, 1}));
  EXPECT_EQ(P.kind(), ParamKind::Binary);
}

TEST(ParamSpaceTest, CardinalityIsProduct) {
  ParamSpace S = smallSpace();
  // 4 * 4 * 2 = 32.
  EXPECT_EQ(S.cardinality().toU64(), 32u);
}

TEST(ParamSpaceTest, EnumerateAllIsExhaustiveAndUnique) {
  ParamSpace S = smallSpace();
  std::vector<Config> All = S.enumerateAll();
  EXPECT_EQ(All.size(), 32u);
  std::set<uint64_t> Keys;
  for (const Config &C : All)
    Keys.insert(S.key(C));
  EXPECT_EQ(Keys.size(), 32u);
}

TEST(ParamSpaceTest, ConfigAtIndexMatchesEnumeration) {
  ParamSpace S = smallSpace();
  std::vector<Config> All = S.enumerateAll();
  for (size_t I = 0; I != All.size(); ++I)
    EXPECT_EQ(S.configAtIndex(BigUInt(I)), All[I]);
}

TEST(ParamSpaceTest, DecodeAndFeatures) {
  ParamSpace S = smallSpace();
  Config C = {3, 2, 1};
  EXPECT_EQ(S.decode(C), (std::vector<int>{4, 4, 1}));
  EXPECT_EQ(S.features(C), (std::vector<double>{4.0, 4.0, 1.0}));
}

TEST(ParamSpaceTest, ToStringMentionsNamesAndValues) {
  ParamSpace S = smallSpace();
  std::string Str = S.toString({0, 0, 0});
  EXPECT_NE(Str.find("u=1"), std::string::npos);
  EXPECT_NE(Str.find("t=1"), std::string::npos);
  EXPECT_NE(Str.find("f=0"), std::string::npos);
}

TEST(ParamSpaceTest, SampleStaysInRange) {
  ParamSpace S = smallSpace();
  Rng R(3);
  for (int I = 0; I != 200; ++I) {
    Config C = S.sample(R);
    ASSERT_EQ(C.size(), 3u);
    for (size_t D = 0; D != C.size(); ++D)
      EXPECT_LT(C[D], S.param(D).numValues());
  }
}

class SampleDistinctTest : public testing::TestWithParam<size_t> {};

TEST_P(SampleDistinctTest, ProducesExactlyKDistinct) {
  std::vector<Param> Params;
  Params.push_back(Param::range("a", ParamKind::Unroll, 1, 30, 1, 0));
  Params.push_back(Param::range("b", ParamKind::Unroll, 1, 30, 1, 1));
  ParamSpace S(std::move(Params));
  Rng R(GetParam());
  std::vector<Config> Sample = S.sampleDistinct(R, GetParam());
  EXPECT_EQ(Sample.size(), GetParam());
  std::set<uint64_t> Keys;
  for (const Config &C : Sample)
    Keys.insert(S.key(C));
  EXPECT_EQ(Keys.size(), Sample.size());
}

INSTANTIATE_TEST_SUITE_P(Counts, SampleDistinctTest,
                         testing::Values(1, 10, 100, 500));

TEST(ParamSpaceTest, SampleDistinctSmallSpaceReturnsWholeSpace) {
  ParamSpace S = smallSpace();
  Rng R(5);
  std::vector<Config> Sample = S.sampleDistinct(R, 1000);
  EXPECT_EQ(Sample.size(), 32u); // space only holds 32 points
}

TEST(ParamSpaceTest, KeyIsOrderSensitive) {
  ParamSpace S = smallSpace();
  EXPECT_NE(S.key({1, 0, 0}), S.key({0, 1, 0}));
  EXPECT_EQ(S.key({1, 2, 1}), S.key({1, 2, 1}));
}

//===----------------------------------------------------------------------===//
// Normalizer
//===----------------------------------------------------------------------===//

TEST(NormalizerTest, ZScoresHaveZeroMeanUnitVariance) {
  Rng R(7);
  std::vector<std::vector<double>> Rows;
  for (int I = 0; I != 500; ++I)
    Rows.push_back({R.nextUniform(5.0, 9.0), R.nextGaussian() * 10.0});
  Normalizer N = Normalizer::fit(Rows);
  double Sum[2] = {0, 0}, Sum2[2] = {0, 0};
  for (const auto &Row : Rows) {
    std::vector<double> Z = N.transform(Row);
    for (int D = 0; D != 2; ++D) {
      Sum[D] += Z[D];
      Sum2[D] += Z[D] * Z[D];
    }
  }
  for (int D = 0; D != 2; ++D) {
    EXPECT_NEAR(Sum[D] / 500.0, 0.0, 1e-9);
    EXPECT_NEAR(Sum2[D] / 499.0, 1.0, 1e-6);
  }
}

TEST(NormalizerTest, InverseRoundTrip) {
  std::vector<std::vector<double>> Rows = {{1.0, 10.0}, {3.0, 30.0},
                                           {5.0, -10.0}};
  Normalizer N = Normalizer::fit(Rows);
  for (const auto &Row : Rows) {
    std::vector<double> Back = N.inverse(N.transform(Row));
    for (size_t D = 0; D != Row.size(); ++D)
      EXPECT_NEAR(Back[D], Row[D], 1e-10);
  }
}

TEST(NormalizerTest, ConstantDimensionMapsToZero) {
  std::vector<std::vector<double>> Rows = {{7.0, 1.0}, {7.0, 2.0}};
  Normalizer N = Normalizer::fit(Rows);
  EXPECT_EQ(N.transform({7.0, 1.5})[0], 0.0);
}

//===- tests/exp_test.cpp - experiment-harness tests ----------*- C++ -*-===//

#include "exp/Dataset.h"
#include "exp/Runner.h"
#include "exp/Scale.h"
#include "spapt/Suite.h"

#include <gtest/gtest.h>

using namespace alic;

namespace {

ExperimentScale tinyScale() {
  ExperimentScale S = ExperimentScale::preset(ScaleKind::Smoke);
  S.NumConfigs = 300;
  S.MaxTrainingExamples = 30;
  S.CandidatesPerIteration = 20;
  S.ReferenceSetSize = 20;
  S.Particles = 50;
  S.Repetitions = 2;
  S.EvalEvery = 5;
  S.TestSubset = 60;
  return S;
}

} // namespace

TEST(ScaleTest, PresetsAreOrdered) {
  ExperimentScale Smoke = ExperimentScale::preset(ScaleKind::Smoke);
  ExperimentScale Bench = ExperimentScale::preset(ScaleKind::Bench);
  ExperimentScale Paper = ExperimentScale::preset(ScaleKind::Paper);
  EXPECT_LT(Smoke.NumConfigs, Bench.NumConfigs);
  EXPECT_LT(Bench.NumConfigs, Paper.NumConfigs);
  EXPECT_EQ(Paper.MaxTrainingExamples, 2500u);
  EXPECT_EQ(Paper.Particles, 5000u);
  EXPECT_EQ(Paper.Repetitions, 10u);
  EXPECT_EQ(Paper.CandidatesPerIteration, 500u);
}

TEST(DatasetTest, SplitSizesMatchFraction) {
  auto B = createSpaptBenchmark("mvt");
  Dataset D = buildDataset(*B, 400, 0.75, 5, 1);
  EXPECT_EQ(D.TrainPool.size(), 300u);
  EXPECT_EQ(D.TestConfigs.size(), 100u);
  EXPECT_EQ(D.TestFeatures.size(), 100u);
  EXPECT_EQ(D.TestMeans.size(), 100u);
}

TEST(DatasetTest, TestMeansArePositiveAndNearGroundTruth) {
  auto B = createSpaptBenchmark("mvt");
  Dataset D = buildDataset(*B, 200, 0.5, 35, 2);
  for (size_t I = 0; I != D.TestConfigs.size(); ++I) {
    double Truth = B->meanRuntimeSeconds(D.TestConfigs[I]);
    EXPECT_GT(D.TestMeans[I], 0.0);
    EXPECT_NEAR(D.TestMeans[I] / Truth, 1.0, 0.5);
  }
}

TEST(DatasetTest, DeterministicForEqualSeeds) {
  auto B = createSpaptBenchmark("mvt");
  Dataset D1 = buildDataset(*B, 100, 0.6, 5, 7);
  Dataset D2 = buildDataset(*B, 100, 0.6, 5, 7);
  EXPECT_EQ(D1.TestMeans, D2.TestMeans);
  EXPECT_EQ(D1.TrainPool.size(), D2.TrainPool.size());
}

TEST(DatasetTest, FeaturesAreNormalized) {
  auto B = createSpaptBenchmark("mvt");
  Dataset D = buildDataset(*B, 400, 0.75, 5, 3);
  // Most normalized features must be within a few standard deviations.
  for (const auto &Row : D.TestFeatures)
    for (double V : Row)
      EXPECT_LT(std::abs(V), 6.0);
}

TEST(RunnerTest, CurveCostsAreMonotone) {
  auto B = createSpaptBenchmark("mvt");
  ExperimentScale S = tinyScale();
  Dataset D = buildDataset(*B, S.NumConfigs, S.TrainFraction,
                           S.MeanObservations, 5);
  RunResult R = runLearning(*B, D, SamplingPlan::sequential(35), S, 9);
  ASSERT_GE(R.Curve.size(), 2u);
  for (size_t I = 1; I != R.Curve.size(); ++I)
    EXPECT_GE(R.Curve[I].CostSeconds, R.Curve[I - 1].CostSeconds);
  EXPECT_GT(R.FinalRmse, 0.0);
}

TEST(RunnerTest, FixedPlanCostsMoreThanSequential) {
  auto B = createSpaptBenchmark("mvt");
  ExperimentScale S = tinyScale();
  Dataset D = buildDataset(*B, S.NumConfigs, S.TrainFraction,
                           S.MeanObservations, 5);
  RunResult Fixed = runLearning(*B, D, SamplingPlan::fixed(35), S, 9);
  RunResult Seq = runLearning(*B, D, SamplingPlan::sequential(35), S, 9);
  EXPECT_GT(Fixed.TotalCostSeconds, 3.0 * Seq.TotalCostSeconds);
}

TEST(RunnerTest, AveragedCurveHasSameGrid) {
  auto B = createSpaptBenchmark("mvt");
  ExperimentScale S = tinyScale();
  Dataset D = buildDataset(*B, S.NumConfigs, S.TrainFraction,
                           S.MeanObservations, 5);
  RunResult Avg = runAveraged(*B, D, SamplingPlan::sequential(35), S, 21);
  RunResult One = runLearning(*B, D, SamplingPlan::sequential(35), S,
                              hashCombine({21ull, 0ull}));
  ASSERT_LE(Avg.Curve.size(), One.Curve.size());
  for (size_t I = 0; I != Avg.Curve.size(); ++I)
    EXPECT_EQ(Avg.Curve[I].Iteration, One.Curve[I].Iteration);
}

TEST(RunnerTest, NoiseScaleInflatesError) {
  auto B = createSpaptBenchmark("mvt");
  ExperimentScale S = tinyScale();
  Dataset D = buildDataset(*B, S.NumConfigs, S.TrainFraction,
                           S.MeanObservations, 5);
  RunOptions Loud;
  Loud.NoiseScale = 20.0;
  RunResult Quiet = runLearning(*B, D, SamplingPlan::fixed(1), S, 9);
  RunResult Noisy = runLearning(*B, D, SamplingPlan::fixed(1), S, 9, Loud);
  EXPECT_GT(Noisy.FinalRmse, Quiet.FinalRmse);
}

TEST(CompareCurvesTest, SpeedupMathOnSyntheticCurves) {
  RunResult Base, Ours;
  // Baseline: reaches 0.5 at t=100, 0.2 at t=1000.
  Base.Curve = {{0, 10.0, 1.0}, {1, 100.0, 0.5}, {2, 1000.0, 0.2}};
  // Ours: reaches 0.5 at t=20, bottoms out at 0.3 at t=50.
  Ours.Curve = {{0, 5.0, 1.0}, {1, 20.0, 0.5}, {2, 50.0, 0.3}};
  PlanComparison C = compareCurves(Base, Ours);
  // Common level = max(0.2, 0.3) = 0.3; base first reaches <= 0.3 at 1000,
  // ours at 50.
  EXPECT_DOUBLE_EQ(C.LowestCommonRmse, 0.3);
  EXPECT_DOUBLE_EQ(C.BaselineCostSeconds, 1000.0);
  EXPECT_DOUBLE_EQ(C.OursCostSeconds, 50.0);
  EXPECT_DOUBLE_EQ(C.Speedup, 20.0);
}

TEST(CompareCurvesTest, SlowerApproachYieldsSpeedupBelowOne) {
  RunResult Base, Ours;
  Base.Curve = {{0, 10.0, 1.0}, {1, 50.0, 0.2}};
  Ours.Curve = {{0, 10.0, 1.0}, {1, 400.0, 0.25}};
  PlanComparison C = compareCurves(Base, Ours);
  EXPECT_LT(C.Speedup, 1.0);
}

TEST(RunnerTest, GpModelOptionRuns) {
  auto B = createSpaptBenchmark("mvt");
  ExperimentScale S = tinyScale();
  S.MaxTrainingExamples = 12;
  Dataset D = buildDataset(*B, S.NumConfigs, S.TrainFraction,
                           S.MeanObservations, 5);
  RunOptions Opt;
  Opt.Model = ModelKind::Gp;
  RunResult R = runLearning(*B, D, SamplingPlan::fixed(1), S, 9, Opt);
  EXPECT_GT(R.FinalRmse, 0.0);
  EXPECT_EQ(R.Stats.Iterations, 12u);
}

//===- tests/failpoint_test.cpp - fault-injection unit tests --*- C++ -*-===//
//
// The failpoint registry itself (arming, nth/count windows, env-string
// parsing, counters) plus the durable-write discipline it targets:
// writeFileDurable must never publish a torn or unsynced file, and a
// crash firing must terminate the process at the site.
//
//===----------------------------------------------------------------------===//

#include "support/FailPoint.h"
#include "support/Serialize.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <string>

using namespace alic;

namespace {

/// Every test starts and ends with a clean registry; a leaked arming
/// would silently poison unrelated suites.
class FailPointTest : public ::testing::Test {
protected:
  void SetUp() override { disarmAllFailPoints(); }
  void TearDown() override { disarmAllFailPoints(); }
};

std::string tempPath(const std::string &Name) {
  return ::testing::TempDir() + "alic_failpoint_" + Name;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

bool exists(const std::string &Path) {
  std::ifstream In(Path);
  return In.good();
}

} // namespace

//===----------------------------------------------------------------------===//
// Registry semantics
//===----------------------------------------------------------------------===//

TEST_F(FailPointTest, DisarmedSitesNeverFire) {
  for (int I = 0; I != 100; ++I)
    EXPECT_FALSE(ALIC_FAILPOINT("fp.test.unarmed").Fire);
  // The disabled fast path touches no registry state at all.
  EXPECT_EQ(failPointHits("fp.test.unarmed"), 0u);
}

TEST_F(FailPointTest, ArmedSiteFiresWithErrno) {
  FailSpec Spec;
  Spec.Errno = ENOSPC;
  armFailPoint("fp.test.a", Spec);
  FailOutcome F = ALIC_FAILPOINT("fp.test.a");
  EXPECT_TRUE(F.Fire);
  EXPECT_EQ(F.Mode, FailMode::Error);
  EXPECT_EQ(F.Errno, ENOSPC);
  // Other sites are unaffected while this one is armed.
  EXPECT_FALSE(ALIC_FAILPOINT("fp.test.other").Fire);
}

TEST_F(FailPointTest, NthSkipsEarlyHitsAndCountBoundsFirings) {
  FailSpec Spec;
  Spec.Nth = 3;
  Spec.Count = 2;
  armFailPoint("fp.test.window", Spec);
  bool Fired[6];
  for (bool &B : Fired)
    B = ALIC_FAILPOINT("fp.test.window").Fire;
  EXPECT_FALSE(Fired[0]);
  EXPECT_FALSE(Fired[1]);
  EXPECT_TRUE(Fired[2]); // hits 3 and 4 fire, then the window closes
  EXPECT_TRUE(Fired[3]);
  EXPECT_FALSE(Fired[4]);
  EXPECT_FALSE(Fired[5]);
  EXPECT_EQ(failPointHits("fp.test.window"), 6u);
  EXPECT_EQ(failPointFires("fp.test.window"), 2u);
}

TEST_F(FailPointTest, RearmingResetsTheHitCounter) {
  FailSpec Spec;
  Spec.Nth = 2;
  armFailPoint("fp.test.rearm", Spec);
  EXPECT_FALSE(ALIC_FAILPOINT("fp.test.rearm").Fire);
  EXPECT_TRUE(ALIC_FAILPOINT("fp.test.rearm").Fire);
  armFailPoint("fp.test.rearm", Spec); // counter back to zero
  EXPECT_FALSE(ALIC_FAILPOINT("fp.test.rearm").Fire);
  EXPECT_TRUE(ALIC_FAILPOINT("fp.test.rearm").Fire);
}

TEST_F(FailPointTest, ScopedFailPointDisarmsOnDestruction) {
  {
    ScopedFailPoint Fp("fp.test.scoped", FailSpec());
    EXPECT_TRUE(ALIC_FAILPOINT("fp.test.scoped").Fire);
  }
  EXPECT_FALSE(ALIC_FAILPOINT("fp.test.scoped").Fire);
}

//===----------------------------------------------------------------------===//
// Spec parsing (the ALIC_FAILPOINTS grammar)
//===----------------------------------------------------------------------===//

TEST_F(FailPointTest, ParsesNamedErrnoModes) {
  struct {
    const char *Text;
    int WantErrno;
  } Cases[] = {{"mode:enospc", ENOSPC},
               {"mode:eio", EIO},
               {"mode:eintr", EINTR},
               {"mode:eagain", EAGAIN},
               {"mode:emfile", EMFILE},
               {"mode:errno:13", 13}};
  for (const auto &C : Cases) {
    FailSpec Spec;
    ASSERT_TRUE(parseFailSpec(C.Text, Spec)) << C.Text;
    EXPECT_EQ(Spec.Mode, FailMode::Error) << C.Text;
    EXPECT_EQ(Spec.Errno, C.WantErrno) << C.Text;
  }
}

TEST_F(FailPointTest, ParsesTornCrashAndWindows) {
  FailSpec Torn;
  ASSERT_TRUE(parseFailSpec("nth:5,mode:torn:12,count:2", Torn));
  EXPECT_EQ(Torn.Mode, FailMode::Torn);
  EXPECT_EQ(Torn.TornBytes, 12u);
  EXPECT_EQ(Torn.Nth, 5u);
  EXPECT_EQ(Torn.Count, 2u);

  FailSpec Crash;
  ASSERT_TRUE(parseFailSpec("mode:crash,exit:7", Crash));
  EXPECT_EQ(Crash.Mode, FailMode::Crash);
  EXPECT_EQ(Crash.ExitCode, 7);
}

TEST_F(FailPointTest, RejectsMalformedSpecs) {
  FailSpec Spec;
  EXPECT_FALSE(parseFailSpec("", Spec));
  EXPECT_FALSE(parseFailSpec("nth:3", Spec)); // mode is mandatory
  EXPECT_FALSE(parseFailSpec("mode:bogus", Spec));
  EXPECT_FALSE(parseFailSpec("mode:enospc,nth:x", Spec));
  EXPECT_FALSE(parseFailSpec("mode:enospc,unknown:1", Spec));
}

TEST_F(FailPointTest, ArmsFromEnvStyleString) {
  EXPECT_EQ(armFailPointsFromString(
                "fp.test.s1=mode:enospc;fp.test.s2=nth:2,mode:crash"),
            2);
  EXPECT_TRUE(ALIC_FAILPOINT("fp.test.s1").Fire);
  EXPECT_FALSE(ALIC_FAILPOINT("fp.test.s2").Fire); // nth:2, first hit passes
}

TEST_F(FailPointTest, MalformedStringArmsNothing) {
  EXPECT_EQ(armFailPointsFromString("fp.test.ok=mode:eio;fp.test.bad=nope"),
            -1);
  EXPECT_FALSE(ALIC_FAILPOINT("fp.test.ok").Fire);
}

//===----------------------------------------------------------------------===//
// writeFileDurable under injected faults
//===----------------------------------------------------------------------===//

namespace {

ByteWriter payloadWriter(const std::string &Text) {
  ByteWriter W;
  W.writeString(Text);
  return W;
}

} // namespace

TEST_F(FailPointTest, InjectedWriteErrorNeverPublishes) {
  std::string Path = tempPath("err.bin");
  std::remove(Path.c_str());
  ASSERT_TRUE(payloadWriter("old").writeFileDurable(Path).ok());
  std::string Old = slurp(Path);

  FailSpec Spec;
  Spec.Errno = ENOSPC;
  ScopedFailPoint Fp("atomicfile.write", Spec);
  Status St = payloadWriter("new-longer-content").writeFileDurable(Path);
  EXPECT_FALSE(St.ok());
  EXPECT_EQ(St.errnoValue(), ENOSPC);
  // The previous content is intact and the temp file is cleaned up.
  EXPECT_EQ(slurp(Path), Old);
  EXPECT_FALSE(exists(Path + ".tmp"));
}

TEST_F(FailPointTest, TornWriteNeverPublishes) {
  std::string Path = tempPath("torn.bin");
  std::remove(Path.c_str());
  ASSERT_TRUE(payloadWriter("old").writeFileDurable(Path).ok());
  std::string Old = slurp(Path);

  FailSpec Spec;
  Spec.Mode = FailMode::Torn;
  Spec.TornBytes = 3;
  Spec.Errno = ENOSPC;
  ScopedFailPoint Fp("atomicfile.write", Spec);
  EXPECT_FALSE(payloadWriter("replacement").writeFileDurable(Path).ok());
  EXPECT_EQ(slurp(Path), Old); // the torn bytes never reach Path
  EXPECT_FALSE(exists(Path + ".tmp"));
}

TEST_F(FailPointTest, FsyncAndRenameFaultsNeverPublish) {
  for (const char *Site : {"atomicfile.sync", "atomicfile.rename"}) {
    std::string Path = tempPath(std::string("site.") + Site);
    std::remove(Path.c_str());
    ASSERT_TRUE(payloadWriter("old").writeFileDurable(Path).ok());

    FailSpec Spec;
    Spec.Errno = EIO;
    ScopedFailPoint Fp(Site, Spec);
    EXPECT_FALSE(payloadWriter("new").writeFileDurable(Path).ok()) << Site;
    ByteReader R({});
    ASSERT_TRUE(ByteReader::fromFile(Path, R)) << Site;
    std::string Got;
    EXPECT_TRUE(R.readString(Got)) << Site;
    EXPECT_EQ(Got, "old") << Site;
    EXPECT_FALSE(exists(Path + ".tmp")) << Site;
  }
}

TEST_F(FailPointTest, RetryAfterFaultSucceeds) {
  std::string Path = tempPath("retry.bin");
  std::remove(Path.c_str());
  FailSpec Spec;
  Spec.Errno = ENOSPC;
  Spec.Count = 1; // fail exactly once, as a filling disk might
  armFailPoint("atomicfile.write", Spec);
  EXPECT_FALSE(payloadWriter("v").writeFileDurable(Path).ok());
  EXPECT_TRUE(payloadWriter("v").writeFileDurable(Path).ok());
  disarmFailPoint("atomicfile.write");
  ByteReader R({});
  ASSERT_TRUE(ByteReader::fromFile(Path, R));
  std::string Got;
  EXPECT_TRUE(R.readString(Got));
  EXPECT_EQ(Got, "v");
}

TEST_F(FailPointTest, CrashModeExitsAtTheSite) {
  FailSpec Spec;
  Spec.Mode = FailMode::Crash;
  Spec.ExitCode = 43;
  EXPECT_EXIT(
      {
        armFailPoint("fp.test.crash", Spec);
        (void)ALIC_FAILPOINT("fp.test.crash");
      },
      ::testing::ExitedWithCode(43), "failpoint 'fp.test.crash' crash");
}

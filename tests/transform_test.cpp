//===- tests/transform_test.cpp - transformation semantics ----*- C++ -*-===//
//
// Every transformation must leave interpreter results bit-identical: the
// replicated statement instances execute in original order.  These tests
// sweep kernels x factor combinations (property style).
//
//===----------------------------------------------------------------------===//

#include "ir/Interp.h"
#include "spapt/Kernels.h"
#include "transform/Apply.h"
#include "transform/TransformPlan.h"

#include <gtest/gtest.h>

using namespace alic;

namespace {

/// Mini builders for each kernel, keyed by name.
KernelBundle buildMini(const std::string &Name) {
  if (Name == "mm")
    return buildMm(10);
  if (Name == "mvt")
    return buildMvt(11);
  if (Name == "jacobi")
    return buildJacobi(9, 2);
  if (Name == "hessian")
    return buildHessian(9);
  if (Name == "lu")
    return buildLu(10);
  if (Name == "bicgkernel")
    return buildBicgkernel(9);
  if (Name == "atax")
    return buildAtax(9);
  if (Name == "adi")
    return buildAdi(8, 2);
  if (Name == "correlation")
    return buildCorrelation(8, 6);
  if (Name == "gemver")
    return buildGemver(9);
  return buildDgemv3(9);
}

double checksumOf(const Kernel &K) { return Interpreter(K).run().Checksum; }

} // namespace

//===----------------------------------------------------------------------===//
// Unroll
//===----------------------------------------------------------------------===//

class UnrollFactorTest : public testing::TestWithParam<int> {};

TEST_P(UnrollFactorTest, PreservesSemanticsOnMm) {
  int Factor = GetParam();
  KernelBundle B = buildMm(10);
  double Before = checksumOf(B.K);
  Kernel K(B.K);
  // Unroll every loop in turn with the same factor.
  for (LoopVarId V = 0; V != 3; ++V)
    unrollLoop(K, V, Factor);
  EXPECT_DOUBLE_EQ(checksumOf(K), Before);
}

TEST_P(UnrollFactorTest, PreservesSemanticsOnTriangularLu) {
  int Factor = GetParam();
  KernelBundle B = buildLu(11);
  double Before = checksumOf(B.K);
  Kernel K(B.K);
  unrollLoop(K, 2, Factor); // i2 (triangular bounds)
  unrollLoop(K, 3, Factor); // j2
  EXPECT_DOUBLE_EQ(checksumOf(K), Before);
}

TEST_P(UnrollFactorTest, PreservesSemanticsOnRecurrence) {
  int Factor = GetParam();
  KernelBundle B = buildAdi(8, 2);
  double Before = checksumOf(B.K);
  Kernel K(B.K);
  unrollLoop(K, 2, Factor); // j1: carried recurrence
  unrollLoop(K, 5, Factor); // i3: carried recurrence
  EXPECT_DOUBLE_EQ(checksumOf(K), Before);
}

INSTANTIATE_TEST_SUITE_P(Factors, UnrollFactorTest,
                         testing::Values(2, 3, 4, 5, 7, 10, 16));

TEST(UnrollTest, DivisibleFastPathEmitsNoGuards) {
  // Trip 10, factor 2 and 5 divide evenly: body statements replicate
  // without guard loops.
  KernelBundle B = buildMm(10);
  Kernel K(B.K);
  size_t LoopsBefore = K.countLoops();
  ASSERT_TRUE(unrollLoop(K, 2, 5)); // innermost, trip 10 % 5 == 0
  EXPECT_EQ(K.countLoops(), LoopsBefore); // no guard loops added
  EXPECT_EQ(K.countStmts(), 5u);
}

TEST(UnrollTest, NonDivisibleUsesGuards) {
  KernelBundle B = buildMm(10);
  Kernel K(B.K);
  ASSERT_TRUE(unrollLoop(K, 2, 3)); // 10 % 3 != 0
  EXPECT_EQ(K.countStmts(), 3u);
  EXPECT_GT(K.countLoops(), 3u); // guard loops appear
  EXPECT_DOUBLE_EQ(checksumOf(K), checksumOf(B.K));
}

TEST(UnrollTest, FactorOneIsNoOp) {
  KernelBundle B = buildMm(10);
  Kernel K(B.K);
  EXPECT_FALSE(unrollLoop(K, 0, 1));
  EXPECT_EQ(K.countStmts(), 1u);
}

TEST(UnrollTest, UnknownLoopReturnsFalse) {
  KernelBundle B = buildMm(10);
  Kernel K(B.K);
  EXPECT_FALSE(unrollLoop(K, 42, 4));
}

//===----------------------------------------------------------------------===//
// Tiling
//===----------------------------------------------------------------------===//

class TileFactorTest : public testing::TestWithParam<int> {};

TEST_P(TileFactorTest, PreservesSemanticsOnMm) {
  int Tile = GetParam();
  KernelBundle B = buildMm(10);
  double Before = checksumOf(B.K);
  Kernel K(B.K);
  for (LoopVarId V = 0; V != 3; ++V)
    tileLoop(K, V, Tile);
  EXPECT_DOUBLE_EQ(checksumOf(K), Before);
}

TEST_P(TileFactorTest, PreservesSemanticsOnTriangularLu) {
  int Tile = GetParam();
  KernelBundle B = buildLu(11);
  double Before = checksumOf(B.K);
  Kernel K(B.K);
  tileLoop(K, 2, Tile);
  tileLoop(K, 3, Tile);
  EXPECT_DOUBLE_EQ(checksumOf(K), Before);
}

INSTANTIATE_TEST_SUITE_P(Tiles, TileFactorTest,
                         testing::Values(2, 3, 4, 7, 8, 16));

TEST(TileTest, AddsTileCounterLoop) {
  KernelBundle B = buildMm(10);
  Kernel K(B.K);
  size_t LoopsBefore = K.countLoops();
  ASSERT_TRUE(tileLoop(K, 1, 4));
  EXPECT_EQ(K.countLoops(), LoopsBefore + 1);
  EXPECT_EQ(K.numLoopVars(), B.K.numLoopVars() + 1);
}

TEST(TileTest, TileOneIsNoOp) {
  KernelBundle B = buildMm(10);
  Kernel K(B.K);
  EXPECT_FALSE(tileLoop(K, 1, 1));
  EXPECT_EQ(K.countLoops(), 3u);
}

//===----------------------------------------------------------------------===//
// Whole-plan application across the suite (property sweep)
//===----------------------------------------------------------------------===//

class PlanSemanticsTest
    : public testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

TEST_P(PlanSemanticsTest, RandomPlanPreservesInterpreterChecksum) {
  const auto &[Name, Seed] = GetParam();
  KernelBundle B = buildMini(Name);
  double Before = checksumOf(B.K);

  ParamSpace Space(B.Params);
  Rng R(Seed);
  Config C = Space.sample(R);
  TransformPlan Plan = TransformPlan::fromConfig(Space, C);
  Kernel K = applyPlan(B.K, Plan);
  K.verify();
  EXPECT_DOUBLE_EQ(checksumOf(K), Before)
      << "plan: " << Plan.toString() << " on " << Name;
}

INSTANTIATE_TEST_SUITE_P(
    SuiteSweep, PlanSemanticsTest,
    testing::Combine(testing::Values("mm", "mvt", "jacobi", "hessian", "lu",
                                     "bicgkernel", "atax", "adi",
                                     "correlation", "gemver", "dgemv3"),
                     testing::Values(1, 2, 3, 4, 5)),
    [](const testing::TestParamInfo<PlanSemanticsTest::ParamType> &Info) {
      return std::get<0>(Info.param) + "_seed" +
             std::to_string(std::get<1>(Info.param));
    });

//===----------------------------------------------------------------------===//
// TransformPlan
//===----------------------------------------------------------------------===//

TEST(TransformPlanTest, FromConfigRoutesKinds) {
  KernelBundle B = buildMm(10);
  ParamSpace Space(B.Params);
  // U_i1=4 (ordinal 3), U_i2=1, U_i3=2, T_i1=1, T_i2=4, T_i3=1.
  Config C = {3, 0, 1, 0, 1, 0};
  TransformPlan Plan = TransformPlan::fromConfig(Space, C);
  EXPECT_EQ(Plan.factors(0).Unroll, 4);
  EXPECT_EQ(Plan.factors(1).Unroll, 1);
  EXPECT_EQ(Plan.factors(2).Unroll, 2);
  EXPECT_EQ(Plan.factors(1).CacheTile, 4);
  EXPECT_EQ(Plan.factors(0).CacheTile, 1);
}

TEST(TransformPlanTest, ExpansionFactor) {
  TransformPlan Plan;
  Plan.factorsMut(0).Unroll = 4;
  Plan.factorsMut(1).RegisterTile = 3;
  EXPECT_DOUBLE_EQ(Plan.expansionFactor(), 12.0);
}

TEST(TransformPlanTest, FlagsRoundTrip) {
  TransformPlan Plan;
  EXPECT_EQ(Plan.flag("vectorize"), 0);
  Plan.setFlag("vectorize", 1);
  EXPECT_EQ(Plan.flag("vectorize"), 1);
}

TEST(TransformPlanTest, IdentityPlanIsNoOp) {
  KernelBundle B = buildMm(10);
  TransformPlan Plan;
  Kernel K = applyPlan(B.K, Plan);
  EXPECT_EQ(K.countStmts(), B.K.countStmts());
  EXPECT_EQ(K.countLoops(), B.K.countLoops());
  EXPECT_DOUBLE_EQ(checksumOf(K), checksumOf(B.K));
}

//===- tests/active_test.cpp - active-learning loop tests -----*- C++ -*-===//

#include "core/ActiveLearner.h"
#include "dynatree/DynaTree.h"
#include "exp/Dataset.h"
#include "gp/GaussianProcess.h"
#include "spapt/Suite.h"
#include "support/Scheduler.h"

#include <gtest/gtest.h>

using namespace alic;

namespace {

struct Fixture {
  std::unique_ptr<SpaptBenchmark> B;
  Dataset D;

  explicit Fixture(const char *Name = "mvt", size_t NumConfigs = 400) {
    B = createSpaptBenchmark(Name);
    D = buildDataset(*B, NumConfigs, 0.75, 10, 123);
  }

  ActiveLearnerConfig config(unsigned Nmax) const {
    ActiveLearnerConfig C;
    C.NumInitial = 4;
    C.InitObservations = 10;
    C.MaxTrainingExamples = Nmax;
    C.CandidatesPerIteration = 30;
    C.ReferenceSetSize = 30;
    C.Seed = 11;
    return C;
  }

  DynaTreeConfig modelConfig() const {
    DynaTreeConfig C;
    C.NumParticles = 60;
    C.Seed = 13;
    return C;
  }
};

} // namespace

TEST(ActiveLearnerTest, CompletesAtNmax) {
  Fixture F;
  DynaTree M(F.modelConfig());
  ActiveLearner L(*F.B, M, F.D.Norm, F.D.TrainPool,
                  SamplingPlan::sequential(35), F.config(40));
  while (L.step()) {
  }
  EXPECT_TRUE(L.done());
  EXPECT_EQ(L.stats().Iterations, 40u);
}

TEST(ActiveLearnerTest, FixedPlanObservationAccounting) {
  Fixture F;
  DynaTree M(F.modelConfig());
  ActiveLearner L(*F.B, M, F.D.Norm, F.D.TrainPool, SamplingPlan::fixed(7),
                  F.config(20));
  while (L.step()) {
  }
  // 4 seeds x 10 obs + 20 iterations x 7 obs.
  EXPECT_EQ(L.stats().Observations, 4u * 10u + 20u * 7u);
  EXPECT_EQ(L.stats().Revisits, 0u);
  EXPECT_EQ(L.stats().DistinctExamples, 24u);
  EXPECT_EQ(L.profiler().ledger().Runs, L.stats().Observations);
}

TEST(ActiveLearnerTest, SequentialPlanTakesOneObservationPerIteration) {
  Fixture F;
  DynaTree M(F.modelConfig());
  ActiveLearner L(*F.B, M, F.D.Norm, F.D.TrainPool,
                  SamplingPlan::sequential(35), F.config(30));
  while (L.step()) {
  }
  EXPECT_EQ(L.stats().Observations, 4u * 10u + 30u);
  EXPECT_EQ(L.stats().DistinctExamples + L.stats().Revisits, 30u + 4u);
}

TEST(ActiveLearnerTest, SequentialNeverExceedsObservationCap) {
  Fixture F("correlation", 120); // noisy: revisits will happen
  DynaTree M(F.modelConfig());
  const unsigned Cap = 4;
  ActiveLearnerConfig Cfg = F.config(80);
  ActiveLearner L(*F.B, M, F.D.Norm, F.D.TrainPool,
                  SamplingPlan::sequential(Cap), Cfg);
  while (L.step()) {
  }
  // Seed examples receive InitObservations up front (they are never
  // revisited); every loop-selected example must respect the cap.
  size_t OverCap = 0;
  for (const Config &C : F.D.TrainPool) {
    unsigned N = L.profiler().observationCount(C);
    if (N > Cap) {
      EXPECT_EQ(N, Cfg.InitObservations) << F.B->space().toString(C);
      ++OverCap;
    }
  }
  EXPECT_LE(OverCap, size_t(Cfg.NumInitial));
}

TEST(ActiveLearnerTest, NoisyBenchmarkTriggersRevisits) {
  Fixture F("correlation", 300);
  DynaTree M(F.modelConfig());
  ActiveLearner L(*F.B, M, F.D.Norm, F.D.TrainPool,
                  SamplingPlan::sequential(35), F.config(80));
  while (L.step()) {
  }
  EXPECT_GT(L.stats().Revisits, 0u);
}

TEST(ActiveLearnerTest, CostIsMonotoneAcrossSteps) {
  Fixture F;
  DynaTree M(F.modelConfig());
  ActiveLearner L(*F.B, M, F.D.Norm, F.D.TrainPool,
                  SamplingPlan::sequential(35), F.config(25));
  double Last = 0.0;
  while (L.step()) {
    EXPECT_GE(L.cumulativeCostSeconds(), Last);
    Last = L.cumulativeCostSeconds();
  }
  EXPECT_GT(Last, 0.0);
}

TEST(ActiveLearnerTest, DeterministicGivenSeed) {
  Fixture F;
  DynaTree M1(F.modelConfig()), M2(F.modelConfig());
  ActiveLearner L1(*F.B, M1, F.D.Norm, F.D.TrainPool,
                   SamplingPlan::sequential(35), F.config(25));
  ActiveLearner L2(*F.B, M2, F.D.Norm, F.D.TrainPool,
                   SamplingPlan::sequential(35), F.config(25));
  while (L1.step()) {
  }
  while (L2.step()) {
  }
  EXPECT_EQ(L1.cumulativeCostSeconds(), L2.cumulativeCostSeconds());
  EXPECT_EQ(L1.stats().Revisits, L2.stats().Revisits);
}

TEST(ActiveLearnerTest, RandomScorerRuns) {
  Fixture F;
  DynaTree M(F.modelConfig());
  ActiveLearnerConfig C = F.config(20);
  C.Scorer = ScorerKind::Random;
  ActiveLearner L(*F.B, M, F.D.Norm, F.D.TrainPool,
                  SamplingPlan::sequential(35), C);
  while (L.step()) {
  }
  EXPECT_EQ(L.stats().Iterations, 20u);
}

TEST(ActiveLearnerTest, AlmScorerRuns) {
  Fixture F;
  DynaTree M(F.modelConfig());
  ActiveLearnerConfig C = F.config(20);
  C.Scorer = ScorerKind::Alm;
  ActiveLearner L(*F.B, M, F.D.Norm, F.D.TrainPool,
                  SamplingPlan::sequential(35), C);
  while (L.step()) {
  }
  EXPECT_EQ(L.stats().Iterations, 20u);
}

TEST(ActiveLearnerTest, BatchSelectionLabelsSeveralPerStep) {
  Fixture F;
  DynaTree M(F.modelConfig());
  ActiveLearnerConfig C = F.config(24);
  C.BatchSize = 4;
  ActiveLearner L(*F.B, M, F.D.Norm, F.D.TrainPool,
                  SamplingPlan::sequential(35), C);
  L.step(); // seed
  size_t StepsAfterSeed = 0;
  while (L.step())
    ++StepsAfterSeed;
  EXPECT_EQ(L.stats().Iterations, 24u);
  EXPECT_LE(StepsAfterSeed, 7u); // 24 / 4 = 6 full batches (+ remainder)
}

TEST(ActiveLearnerTest, ParallelAlcBitIdenticalToSequential) {
  // The whole loop — reference sampling, scoring, selection, measuring —
  // must replay identically whether candidate scoring runs sequentially
  // or sharded over a pool, at any thread count.
  Fixture F("correlation", 300);
  ActiveLearnerConfig Cfg = F.config(60);
  Cfg.CandidatesPerIteration = 100; // several shards per iteration

  auto runWith = [&](Scheduler *Pool) {
    DynaTree M(F.modelConfig());
    ActiveLearner L(*F.B, M, F.D.Norm, F.D.TrainPool,
                    SamplingPlan::sequential(35), Cfg, Pool);
    while (L.step()) {
    }
    return std::make_tuple(L.cumulativeCostSeconds(), L.stats().Revisits,
                           L.stats().DistinctExamples,
                           M.predict(F.D.TestFeatures.front()).Mean);
  };

  auto Sequential = runWith(nullptr);
  for (unsigned Threads : {1u, 4u}) {
    Scheduler Pool(Threads);
    EXPECT_EQ(runWith(&Pool), Sequential) << "thread count " << Threads;
  }
}

TEST(ActiveLearnerTest, ParallelAlcScoresBitIdenticalOnModel) {
  // Direct model-level check on the dynamic tree's sharded ALC.
  Fixture F("mvt", 300);
  DynaTree M(F.modelConfig());
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  for (size_t I = 0; I != 80; ++I) {
    X.push_back(F.D.TestFeatures[I % F.D.TestFeatures.size()]);
    Y.push_back(double(I % 7));
  }
  M.fit(X, Y);
  std::vector<std::vector<double>> Cands(X.begin(), X.begin() + 70);
  std::vector<std::vector<double>> Ref(X.begin() + 10, X.begin() + 50);

  std::vector<double> Sequential = M.alcScores(Cands, Ref);
  Scheduler Pool(5);
  ScoreContext Ctx;
  Ctx.Pool = &Pool;
  Ctx.ShardSize = 16;
  EXPECT_EQ(M.alcScores(Cands, Ref, Ctx), Sequential);
}

TEST(ActiveLearnerTest, GpSurrogateLoopMatchesAcrossPools) {
  Fixture F("mvt", 200);
  GpConfig G;
  G.OptimizeHyperParams = false;
  G.Init.LengthScale = 0.8;
  G.Init.NoiseVariance = 1e-3;
  ActiveLearnerConfig Cfg = F.config(25);
  Cfg.CandidatesPerIteration = 64;

  auto runWith = [&](Scheduler *Pool) {
    GaussianProcess M(G);
    ActiveLearner L(*F.B, M, F.D.Norm, F.D.TrainPool,
                    SamplingPlan::sequential(35), Cfg, Pool);
    while (L.step()) {
    }
    return std::make_pair(L.cumulativeCostSeconds(),
                          M.predict(F.D.TestFeatures.front()).Mean);
  };

  Scheduler Pool(3);
  EXPECT_EQ(runWith(nullptr), runWith(&Pool));
}

TEST(ActiveLearnerTest, ExplicitBatchStepLabelsAndChargesLedger) {
  Fixture F;
  DynaTree M(F.modelConfig());
  ActiveLearner L(*F.B, M, F.D.Norm, F.D.TrainPool,
                  SamplingPlan::sequential(35), F.config(40));
  L.step(); // seeding
  size_t SeedObs = L.stats().Observations;

  // An explicit batch labels exactly that many examples, one observation
  // each under the sequential plan, all charged to the ledger.
  ASSERT_TRUE(L.step(5u));
  EXPECT_EQ(L.stats().Iterations, 5u);
  EXPECT_EQ(L.stats().Observations, SeedObs + 5u);
  EXPECT_EQ(L.profiler().ledger().Runs, L.stats().Observations);

  ASSERT_TRUE(L.step(3u));
  EXPECT_EQ(L.stats().Iterations, 8u);
  EXPECT_EQ(L.profiler().ledger().Runs, L.stats().Observations);

  // The remaining budget caps the final batch at nmax.
  while (L.step(16u)) {
  }
  EXPECT_EQ(L.stats().Iterations, 40u);
  EXPECT_EQ(L.profiler().ledger().Runs, L.stats().Observations);
}

TEST(ActiveLearnerTest, PoolExhaustionTerminates) {
  Fixture F("mvt", 40); // pool of 30 training configs
  DynaTree M(F.modelConfig());
  ActiveLearner L(*F.B, M, F.D.Norm, F.D.TrainPool, SamplingPlan::fixed(1),
                  F.config(500));
  while (L.step()) {
  }
  EXPECT_TRUE(L.done());
  EXPECT_LT(L.stats().Iterations, 500u);
}

//===----------------------------------------------------------------------===//
// Query policies
//===----------------------------------------------------------------------===//

TEST(ActiveLearnerTest, AlwaysPolicyBitIdenticalToDefault) {
  // An explicit Always policy must leave the loop untouched: same RNG
  // stream, same picks, same model — the default config IS Always, so
  // this pins that the policy plumbing has no side channel.
  Fixture F;
  ActiveLearnerConfig Default = F.config(25);
  ActiveLearnerConfig Explicit = Default;
  Explicit.Query.Kind = QueryPolicyKind::Always;

  auto runWith = [&](const ActiveLearnerConfig &Cfg) {
    DynaTree M(F.modelConfig());
    ActiveLearner L(*F.B, M, F.D.Norm, F.D.TrainPool,
                    SamplingPlan::sequential(35), Cfg);
    while (L.step()) {
    }
    EXPECT_EQ(L.stats().Skips, 0u);
    return std::make_tuple(L.cumulativeCostSeconds(), L.stats().Observations,
                           L.stats().Revisits,
                           M.predict(F.D.TestFeatures.front()).Mean);
  };
  EXPECT_EQ(runWith(Default), runWith(Explicit));
}

TEST(ActiveLearnerTest, CostRangeSkipsDeterministicAcrossPools) {
  // Skip decisions are a pure function of the (deterministic) stream, so
  // sharded scoring at any worker count must reproduce them bitwise.
  Fixture F("correlation", 300);
  ActiveLearnerConfig Cfg = F.config(60);
  Cfg.CandidatesPerIteration = 100; // several shards per iteration
  Cfg.Query.Kind = QueryPolicyKind::CostRange;

  auto runWith = [&](Scheduler *Pool) {
    DynaTree M(F.modelConfig());
    ActiveLearner L(*F.B, M, F.D.Norm, F.D.TrainPool,
                    SamplingPlan::sequential(35), Cfg, Pool);
    while (L.step()) {
    }
    return std::make_tuple(L.stats().Skips, L.stats().Observations,
                           L.cumulativeCostSeconds(),
                           M.predict(F.D.TestFeatures.front()).Mean);
  };

  auto Sequential = runWith(nullptr);
  EXPECT_GT(std::get<0>(Sequential), 0u); // the policy actually skipped
  for (unsigned Threads : {1u, 8u}) {
    Scheduler Pool(Threads);
    EXPECT_EQ(runWith(&Pool), Sequential) << "thread count " << Threads;
  }
}

TEST(ActiveLearnerTest, SkipPhaseObservesEmptyCostsOnly) {
  // A policy that declines everything drives all-skip rounds: phase Skip,
  // zero observations per config, skipped configs reported.  The ticket
  // contract still holds — costs for skipped configs are rejected.
  Fixture F;
  ActiveLearnerConfig Cfg = F.config(10);
  Cfg.Query.Kind = QueryPolicyKind::AlmThreshold;
  Cfg.Query.AbsFloor = 1e30; // unreachable: every refine pick is a skip
  DynaTree M(F.modelConfig());
  ActiveLearner L(*F.B, M, F.D.Norm, F.D.TrainPool,
                  SamplingPlan::sequential(35), Cfg);

  const Suggestion &Seed = L.suggest();
  ASSERT_EQ(Seed.Phase, SuggestPhase::Explore);
  std::vector<double> SeedCosts(Seed.Configs.size() *
                                Seed.ObservationsPerConfig);
  ASSERT_TRUE(L.observe(Seed.Ticket, SeedCosts));
  size_t SeedObs = L.stats().Observations;

  const Suggestion &S = L.suggest();
  ASSERT_EQ(S.Phase, SuggestPhase::Skip);
  EXPECT_TRUE(S.Configs.empty());
  EXPECT_FALSE(S.Skipped.empty());
  EXPECT_EQ(S.ObservationsPerConfig, 0u);

  // Paying for a skipped config is a protocol violation.
  EXPECT_FALSE(L.observe(S.Ticket, {1.0}));
  EXPECT_TRUE(L.observe(S.Ticket, {}));

  while (L.step()) {
  }
  EXPECT_TRUE(L.done());
  EXPECT_EQ(L.stats().Skips, 10u);
  EXPECT_EQ(L.stats().Iterations, 10u);
  // Not a single refine label was bought.  (The split halves leave
  // measurement to the caller, so the internal ledger stays empty.)
  EXPECT_EQ(L.stats().Observations, SeedObs);
}

TEST(ActiveLearnerTest, CostRangePolicySavesLabelsKeepsTermination) {
  // The budget is measured in picks, not labels: a skipping run consumes
  // the same iteration budget while buying strictly fewer observations.
  Fixture F("correlation", 300);
  ActiveLearnerConfig Plain = F.config(40);
  ActiveLearnerConfig Skipping = Plain;
  Skipping.Query.Kind = QueryPolicyKind::CostRange;
  // Aggressive constants: the defaults' regret budget is still loose at
  // this fixture's short stream, and this test is about accounting.
  Skipping.Query.Mellowness = 0.001;
  Skipping.Query.RangeC1 = 0.1;

  auto runWith = [&](const ActiveLearnerConfig &Cfg) {
    DynaTree M(F.modelConfig());
    ActiveLearner L(*F.B, M, F.D.Norm, F.D.TrainPool,
                    SamplingPlan::sequential(35), Cfg);
    while (L.step()) {
    }
    EXPECT_TRUE(L.done());
    EXPECT_EQ(L.stats().Iterations, 40u);
    return std::make_pair(L.stats().Observations, L.stats().Skips);
  };

  auto [PlainObs, PlainSkips] = runWith(Plain);
  auto [SkipObs, Skips] = runWith(Skipping);
  EXPECT_EQ(PlainSkips, 0u);
  EXPECT_GT(Skips, 0u);
  EXPECT_EQ(SkipObs, PlainObs - Skips);
}

//===- tests/integration_test.cpp - end-to-end behaviour ------*- C++ -*-===//
//
// Miniature versions of the paper's headline claims, asserted loosely so
// the suite stays robust to seed choice:
//
//  * on a quiet benchmark the sequential plan reaches the common error
//    level with far less profiling cost than the 35-observation baseline;
//  * the sequential plan's revisit rate responds to noise.
//
//===----------------------------------------------------------------------===//

#include "exp/Dataset.h"
#include "exp/Runner.h"
#include "spapt/Suite.h"

#include <gtest/gtest.h>

using namespace alic;

namespace {

ExperimentScale miniScale() {
  ExperimentScale S = ExperimentScale::preset(ScaleKind::Smoke);
  S.NumConfigs = 900;
  S.MaxTrainingExamples = 150;
  S.CandidatesPerIteration = 60;
  S.ReferenceSetSize = 50;
  S.Particles = 120;
  S.Repetitions = 2;
  S.EvalEvery = 10;
  S.TestSubset = 150;
  return S;
}

} // namespace

TEST(IntegrationTest, SequentialBeatsBaselineOnQuietBenchmark) {
  auto B = createSpaptBenchmark("atax");
  ExperimentScale S = miniScale();
  Dataset D = buildDataset(*B, S.NumConfigs, S.TrainFraction,
                           S.MeanObservations, 404);
  RunResult Base = runAveraged(*B, D, SamplingPlan::fixed(35), S, 31);
  RunResult Ours = runAveraged(*B, D, SamplingPlan::sequential(35), S, 31);
  PlanComparison C = compareCurves(Base, Ours);
  EXPECT_GT(C.Speedup, 1.5) << "lowest common RMSE " << C.LowestCommonRmse;
}

TEST(IntegrationTest, RevisitRateRespondsToNoise) {
  ExperimentScale S = miniScale();
  S.MaxTrainingExamples = 100;

  auto Quiet = createSpaptBenchmark("atax");
  Dataset Dq = buildDataset(*Quiet, S.NumConfigs, S.TrainFraction,
                            S.MeanObservations, 11);
  RunResult Rq = runAveraged(*Quiet, Dq, SamplingPlan::sequential(35), S, 3);

  auto Loud = createSpaptBenchmark("correlation");
  Dataset Dl = buildDataset(*Loud, S.NumConfigs, S.TrainFraction,
                            S.MeanObservations, 11);
  RunResult Rl = runAveraged(*Loud, Dl, SamplingPlan::sequential(35), S, 3);

  double QuietRate = double(Rq.Stats.Revisits) / double(Rq.Stats.Iterations);
  double LoudRate = double(Rl.Stats.Revisits) / double(Rl.Stats.Iterations);
  EXPECT_GT(LoudRate, QuietRate);
}

TEST(IntegrationTest, ArtificialNoiseIncreasesRevisits) {
  // The paper's future-work experiment in miniature.
  auto B = createSpaptBenchmark("jacobi");
  ExperimentScale S = miniScale();
  S.MaxTrainingExamples = 100;
  Dataset D = buildDataset(*B, S.NumConfigs, S.TrainFraction,
                           S.MeanObservations, 17);
  RunOptions Calm, Loud;
  Calm.NoiseScale = 0.05; // almost noise-free
  Loud.NoiseScale = 40.0;
  RunResult Rc = runAveraged(*B, D, SamplingPlan::sequential(35), S, 5, Calm);
  RunResult Rl = runAveraged(*B, D, SamplingPlan::sequential(35), S, 5, Loud);
  EXPECT_GT(Rl.Stats.Revisits, Rc.Stats.Revisits);
}

TEST(IntegrationTest, ThirtyFiveObservationPlanCostsRoughlyThirtyFiveX) {
  auto B = createSpaptBenchmark("mvt");
  ExperimentScale S = miniScale();
  S.MaxTrainingExamples = 60;
  S.Repetitions = 1;
  Dataset D = buildDataset(*B, S.NumConfigs, S.TrainFraction,
                           S.MeanObservations, 23);
  RunResult Base = runAveraged(*B, D, SamplingPlan::fixed(35), S, 3);
  RunResult One = runAveraged(*B, D, SamplingPlan::fixed(1), S, 3);
  // Runtime dominates compile time for mvt, so the ratio is near 35 for
  // the post-seed portion; including seeds it stays far above 5x.
  EXPECT_GT(Base.TotalCostSeconds, 5.0 * One.TotalCostSeconds);
}

//===- tests/campaign_test.cpp - campaign orchestrator tests --*- C++ -*-===//
//
// Pins the campaign determinism contract: the aggregate JSON is
// byte-identical at any worker thread count, under shuffled cell
// completion order, and across interrupt/resume boundaries; the dataset
// blob cache returns datasets bit-identical to a fresh buildDataset.
//
//===----------------------------------------------------------------------===//

#include "exp/Campaign.h"
#include "exp/Dataset.h"
#include "spapt/Suite.h"
#include "support/FailPoint.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <set>
#include <thread>

using namespace alic;

namespace {

/// A seconds-cheap campaign that still crosses two benchmarks, two plans,
/// and two seeds (and keeps the noise cells).
CampaignSpec tinySpec() {
  CampaignSpec Spec;
  Spec.Benchmarks = {"mvt", "atax"};
  Spec.Scale = ExperimentScale::preset(ScaleKind::Smoke);
  Spec.Scale.NumConfigs = 300;
  Spec.Scale.MaxTrainingExamples = 20;
  Spec.Scale.CandidatesPerIteration = 15;
  Spec.Scale.ReferenceSetSize = 15;
  Spec.Scale.Particles = 40;
  Spec.Scale.EvalEvery = 5;
  Spec.Scale.TestSubset = 50;
  Spec.ScaleName = "tiny";
  Spec.Plans = {SamplingPlan::fixed(5), SamplingPlan::sequential(10)};
  Spec.Repetitions = 2;
  return Spec;
}

/// Fresh per-test state directory under the gtest temp root.
std::string freshStateDir(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + "alic_campaign_" + Name;
  std::filesystem::remove_all(Dir);
  return Dir;
}

std::string runToJson(const CampaignSpec &Spec, CampaignOptions Options) {
  Options.Quiet = true;
  CampaignResult Result;
  if (!runCampaign(Spec, Options, Result))
    ADD_FAILURE() << "campaign did not complete in " << Options.StateDir;
  return campaignJson(Spec, Result);
}

} // namespace

TEST(CampaignTest, ExpansionCoversCrossProductPlusNoise) {
  CampaignSpec Spec = tinySpec();
  Spec.Models = {ModelKind::DynaTree, ModelKind::Gp};
  Spec.Scorers = {ScorerKind::Alm, ScorerKind::Alc};
  std::vector<CampaignCell> Cells = expandCells(Spec);
  // 2 benchmarks x 2 models x 2 scorers x 1 batch x 2 plans x 2 reps + 2.
  EXPECT_EQ(Cells.size(), 2u * 2 * 2 * 1 * 2 * 2 + 2);
  // Keys are unique and scale-fingerprinted.
  std::set<std::string> Keys;
  for (const CampaignCell &Cell : Cells) {
    std::string Key = Cell.key(Spec);
    EXPECT_TRUE(Keys.insert(Key).second) << "duplicate key " << Key;
    EXPECT_NE(Key.find("fp="), std::string::npos);
  }
  CampaignSpec Other = Spec;
  Other.Scale.NumConfigs += 1;
  EXPECT_NE(Cells.front().key(Spec), Cells.front().key(Other));
}

TEST(CampaignTest, AggregateIdenticalAcrossWorkerCounts) {
  // Cells are nested-parallel by default (their inner shards fork onto
  // the campaign scheduler), so this also pins that nesting changes
  // nothing: inline, 1, 2, and 8 workers all produce the same bytes.
  CampaignSpec Spec = tinySpec();
  std::string Reference;
  for (unsigned Threads : {0u, 1u, 2u, 8u}) {
    CampaignOptions Options;
    Options.StateDir =
        freshStateDir("threads" + std::to_string(Threads));
    Options.Threads = Threads;
    std::string Json = runToJson(Spec, Options);
    if (Reference.empty())
      Reference = Json;
    EXPECT_EQ(Json, Reference) << "worker count " << Threads
                               << " changed the aggregate";
    std::filesystem::remove_all(Options.StateDir);
  }
  EXPECT_FALSE(Reference.empty());
}

TEST(CampaignTest, AggregateIdenticalUnderStealInterleavingsAndFlatCells) {
  // Forced steal interleavings (varied victim-selection seeds) and the
  // flat cell-granularity fallback must all render the same bytes as the
  // inline reference.
  CampaignSpec Spec = tinySpec();
  CampaignOptions Inline;
  Inline.StateDir = freshStateDir("steal-ref");
  std::string Reference = runToJson(Spec, Inline);
  std::filesystem::remove_all(Inline.StateDir);

  for (uint64_t StealSeed : {0x5eedull, 0xfeedull}) {
    CampaignOptions Nested;
    Nested.StateDir = freshStateDir("steal" + std::to_string(StealSeed));
    Nested.Threads = 4;
    Nested.StealSeed = StealSeed;
    EXPECT_EQ(runToJson(Spec, Nested), Reference)
        << "steal seed " << StealSeed << " changed the aggregate";
    std::filesystem::remove_all(Nested.StateDir);
  }

  CampaignOptions Flat;
  Flat.StateDir = freshStateDir("flat");
  Flat.Threads = 2;
  Flat.NestCells = false;
  EXPECT_EQ(runToJson(Spec, Flat), Reference)
      << "flat cell-granularity execution changed the aggregate";
  std::filesystem::remove_all(Flat.StateDir);
}

TEST(CampaignTest, AggregateIdenticalUnderShuffledCompletionOrder) {
  CampaignSpec Spec = tinySpec();
  CampaignOptions Ordered;
  Ordered.StateDir = freshStateDir("ordered");
  std::string Reference = runToJson(Spec, Ordered);

  for (uint64_t ShuffleSeed : {7ull, 991ull}) {
    CampaignOptions Shuffled;
    Shuffled.StateDir =
        freshStateDir("shuffled" + std::to_string(ShuffleSeed));
    Shuffled.Threads = 2;
    Shuffled.ShuffleSeed = ShuffleSeed;
    EXPECT_EQ(runToJson(Spec, Shuffled), Reference)
        << "completion order leaked into the aggregate";
    std::filesystem::remove_all(Shuffled.StateDir);
  }
  std::filesystem::remove_all(Ordered.StateDir);
}

TEST(CampaignTest, InterruptAndResumeMatchesUninterrupted) {
  CampaignSpec Spec = tinySpec();

  CampaignOptions Interrupted;
  Interrupted.StateDir = freshStateDir("resume");
  Interrupted.Quiet = true;
  Interrupted.MaxCells = 3;
  CampaignProgress First = runCampaignCells(Spec, Interrupted);
  EXPECT_FALSE(First.Complete);
  EXPECT_EQ(First.NewlyRun, 3u);
  CampaignResult ShouldFail;
  EXPECT_FALSE(aggregateCampaign(Spec, Interrupted, ShouldFail));

  // Resume with a different thread count (and no cap): only the missing
  // cells run, and the aggregate matches an uninterrupted campaign.
  CampaignOptions Resumed = Interrupted;
  Resumed.MaxCells = 0;
  Resumed.Threads = 4;
  CampaignProgress Second = runCampaignCells(Spec, Resumed);
  EXPECT_TRUE(Second.Complete);
  EXPECT_EQ(Second.AlreadyDone, 3u);
  EXPECT_EQ(Second.NewlyRun, First.TotalCells - 3u);
  CampaignResult Result;
  ASSERT_TRUE(aggregateCampaign(Spec, Resumed, Result));

  CampaignOptions Uninterrupted;
  Uninterrupted.StateDir = freshStateDir("uninterrupted");
  EXPECT_EQ(campaignJson(Spec, Result), runToJson(Spec, Uninterrupted));
  std::filesystem::remove_all(Interrupted.StateDir);
  std::filesystem::remove_all(Uninterrupted.StateDir);
}

TEST(CampaignTest, ResumeSkipsCompletedCellsAndSurvivesPartialLine) {
  CampaignSpec Spec = tinySpec();
  CampaignOptions Options;
  Options.StateDir = freshStateDir("ledger");
  Options.Quiet = true;
  CampaignProgress First = runCampaignCells(Spec, Options);
  EXPECT_TRUE(First.Complete);

  // Re-launching the same spec runs nothing.
  CampaignProgress Again = runCampaignCells(Spec, Options);
  EXPECT_TRUE(Again.Complete);
  EXPECT_EQ(Again.NewlyRun, 0u);
  EXPECT_EQ(Again.AlreadyDone, First.TotalCells);

  CampaignResult Reference;
  ASSERT_TRUE(aggregateCampaign(Spec, Options, Reference));

  // Simulate a crash mid-append: a partial trailing line (no newline)
  // must be ignored, not corrupt the ledger.
  {
    std::ofstream Ledger(Options.ledgerPath(), std::ios::app);
    Ledger << "{\"cell\":\"run|truncated-by-a-cra";
  }
  CampaignProgress AfterCrash = runCampaignCells(Spec, Options);
  EXPECT_TRUE(AfterCrash.Complete);
  EXPECT_EQ(AfterCrash.NewlyRun, 0u);
  CampaignResult Recovered;
  ASSERT_TRUE(aggregateCampaign(Spec, Options, Recovered));
  EXPECT_EQ(campaignJson(Spec, Recovered), campaignJson(Spec, Reference));
  std::filesystem::remove_all(Options.StateDir);
}

TEST(CampaignTest, AppendAfterCrashRemnantSealsPartialLine) {
  // A crash can die mid-append, leaving a partial line with NO newline.
  // The next run must not glue its first record onto the remnant (which
  // would lose both lines); it seals the remnant and proceeds.
  CampaignSpec Spec = tinySpec();
  CampaignOptions Options;
  Options.StateDir = freshStateDir("remnant");
  Options.Quiet = true;
  std::filesystem::create_directories(Options.StateDir);
  {
    std::ofstream Ledger(Options.ledgerPath());
    Ledger << "{\"cell\":\"run|died-mid-app"; // no trailing newline
  }
  std::string Json = runToJson(Spec, Options);

  CampaignOptions Clean;
  Clean.StateDir = freshStateDir("remnant_clean");
  EXPECT_EQ(Json, runToJson(Spec, Clean));
  std::filesystem::remove_all(Options.StateDir);
  std::filesystem::remove_all(Clean.StateDir);
}

TEST(CampaignTest, NoiseOnlySpecNeedsNoRunCells) {
  CampaignSpec Spec = tinySpec();
  Spec.Plans.clear();
  CampaignOptions Options;
  Options.StateDir = freshStateDir("noiseonly");
  Options.Quiet = true;
  CampaignResult Result;
  ASSERT_TRUE(runCampaign(Spec, Options, Result));
  EXPECT_TRUE(Result.Combos.empty());
  ASSERT_EQ(Result.Noise.size(), 2u);
  EXPECT_EQ(Result.Noise[0].Benchmark, "mvt");
  EXPECT_GT(Result.Noise[0].Ci35Mean, 0.0);
  EXPECT_GE(Result.Noise[0].VarMax, Result.Noise[0].VarMin);
  std::filesystem::remove_all(Options.StateDir);
}

TEST(CampaignTest, EnospcQuarantinesOneCellAndResumeIsByteIdentical) {
  // A disk-full window spanning every retry of one append: the campaign
  // must quarantine that cell, finish the rest, and a re-launch must
  // retry exactly the quarantined cell and aggregate byte-identically.
  CampaignSpec Spec = tinySpec();
  CampaignOptions Options;
  Options.StateDir = freshStateDir("quarantine");
  Options.Quiet = true;

  FailSpec Fault;
  Fault.Errno = ENOSPC;
  Fault.Nth = 2;   // the second cell's append...
  Fault.Count = 4; // ...fails on all LedgerAppendAttempts attempts
  armFailPoint("ledger.append", Fault);
  CampaignProgress Progress = runCampaignCells(Spec, Options);
  disarmAllFailPoints();

  EXPECT_FALSE(Progress.Complete);
  ASSERT_EQ(Progress.QuarantinedCells.size(), 1u);
  EXPECT_EQ(Progress.NewlyRun, Progress.TotalCells - 1);
  // The quarantined key is simply absent from the ledger...
  CampaignResult ShouldFail;
  EXPECT_FALSE(aggregateCampaign(Spec, Options, ShouldFail));

  // ...so the re-launch runs exactly it and nothing else.
  CampaignProgress Resumed = runCampaignCells(Spec, Options);
  EXPECT_TRUE(Resumed.Complete);
  EXPECT_EQ(Resumed.NewlyRun, 1u);
  EXPECT_EQ(Resumed.AlreadyDone, Progress.TotalCells - 1);
  CampaignResult Result;
  ASSERT_TRUE(aggregateCampaign(Spec, Options, Result));

  CampaignOptions Clean;
  Clean.StateDir = freshStateDir("quarantine_clean");
  EXPECT_EQ(campaignJson(Spec, Result), runToJson(Spec, Clean));
  std::filesystem::remove_all(Options.StateDir);
  std::filesystem::remove_all(Clean.StateDir);
}

TEST(CampaignTest, TornQuarantineRemnantIsSealedNotGluedToNextCell) {
  // Every attempt of one cell's append tears mid-line; the *next* cell's
  // append must seal the remnant before writing, or both records die.
  CampaignSpec Spec = tinySpec();
  CampaignOptions Options;
  Options.StateDir = freshStateDir("torn");
  Options.Quiet = true;

  FailSpec Fault;
  Fault.Mode = FailMode::Torn;
  Fault.TornBytes = 9;
  Fault.Errno = ENOSPC;
  Fault.Nth = 2;
  Fault.Count = 4;
  armFailPoint("ledger.append", Fault);
  CampaignProgress Progress = runCampaignCells(Spec, Options);
  disarmAllFailPoints();

  EXPECT_FALSE(Progress.Complete);
  ASSERT_EQ(Progress.QuarantinedCells.size(), 1u);
  EXPECT_EQ(Progress.NewlyRun, Progress.TotalCells - 1);

  // The cells appended after the torn one parsed cleanly: resume runs
  // only the quarantined cell, and the aggregate matches a clean run.
  CampaignProgress Resumed = runCampaignCells(Spec, Options);
  EXPECT_TRUE(Resumed.Complete);
  EXPECT_EQ(Resumed.NewlyRun, 1u);
  CampaignResult Result;
  ASSERT_TRUE(aggregateCampaign(Spec, Options, Result));

  CampaignOptions Clean;
  Clean.StateDir = freshStateDir("torn_clean");
  EXPECT_EQ(campaignJson(Spec, Result), runToJson(Spec, Clean));
  std::filesystem::remove_all(Options.StateDir);
  std::filesystem::remove_all(Clean.StateDir);
}

TEST(CampaignTest, TotalLedgerFailureQuarantinesEverythingRecordsNothing) {
  // A permanently failing ledger (every append fails from the start) must
  // degrade to "all missing cells quarantined", never abort the process.
  CampaignSpec Spec = tinySpec();
  CampaignOptions Options;
  Options.StateDir = freshStateDir("allfail");
  Options.Quiet = true;

  FailSpec Fault;
  Fault.Errno = ENOSPC;
  armFailPoint("ledger.append", Fault); // every hit fires
  CampaignProgress Progress = runCampaignCells(Spec, Options);
  disarmAllFailPoints();

  EXPECT_FALSE(Progress.Complete);
  EXPECT_EQ(Progress.QuarantinedCells.size(), Progress.TotalCells);
  EXPECT_EQ(Progress.NewlyRun, 0u);

  // Nothing made it into the ledger, so a clean re-launch runs it all.
  CampaignProgress Resumed = runCampaignCells(Spec, Options);
  EXPECT_TRUE(Resumed.Complete);
  EXPECT_EQ(Resumed.NewlyRun, Progress.TotalCells);
  std::filesystem::remove_all(Options.StateDir);
}

TEST(CampaignTest, DatasetCacheReturnsBitIdenticalDatasets) {
  auto B = createSpaptBenchmark("mvt");
  std::string CacheDir = freshStateDir("dscache");

  Dataset Fresh = buildDataset(*B, 200, 0.6, 5, 11);
  Dataset Miss = loadOrBuildDataset(*B, 200, 0.6, 5, 11, CacheDir);
  Dataset Hit = loadOrBuildDataset(*B, 200, 0.6, 5, 11, CacheDir);

  for (const Dataset *D : {&Miss, &Hit}) {
    EXPECT_EQ(D->TrainPool, Fresh.TrainPool);
    EXPECT_EQ(D->TestConfigs, Fresh.TestConfigs);
    EXPECT_EQ(D->TestFeatures, Fresh.TestFeatures);
    EXPECT_EQ(D->TestMeans, Fresh.TestMeans);
    ASSERT_EQ(D->Norm.numDims(), Fresh.Norm.numDims());
    for (size_t I = 0; I != Fresh.Norm.numDims(); ++I) {
      EXPECT_EQ(D->Norm.mean(I), Fresh.Norm.mean(I));
      EXPECT_EQ(D->Norm.stddev(I), Fresh.Norm.stddev(I));
    }
  }

  // A corrupt blob falls back to a rebuild instead of failing.
  for (const auto &Entry : std::filesystem::directory_iterator(CacheDir)) {
    std::ofstream Corrupt(Entry.path(), std::ios::trunc);
    Corrupt << "not a dataset blob";
  }
  Dataset Rebuilt = loadOrBuildDataset(*B, 200, 0.6, 5, 11, CacheDir);
  EXPECT_EQ(Rebuilt.TestMeans, Fresh.TestMeans);

  // So does a blob whose header validates but whose first length prefix
  // is absurd (must be rejected without attempting a giant allocation).
  for (const auto &Entry : std::filesystem::directory_iterator(CacheDir)) {
    std::fstream Blob(Entry.path(),
                      std::ios::in | std::ios::out | std::ios::binary);
    Blob.seekp(16); // past magic + version + key
    for (int I = 0; I != 8; ++I)
      Blob.put(char(0xff));
  }
  Dataset Rebuilt2 = loadOrBuildDataset(*B, 200, 0.6, 5, 11, CacheDir);
  EXPECT_EQ(Rebuilt2.TestMeans, Fresh.TestMeans);
  std::filesystem::remove_all(CacheDir);
}

TEST(CampaignTest, AggregateMatchesRunAveragedSemantics) {
  // The campaign's per-plan averaging must reproduce runAveraged exactly:
  // renderers built on campaign output keep their historical numbers.
  CampaignSpec Spec = tinySpec();
  Spec.Benchmarks = {"mvt"};
  Spec.NoiseCells = false;
  CampaignOptions Options;
  Options.StateDir = freshStateDir("semantics");
  Options.Quiet = true;
  CampaignResult Result;
  ASSERT_TRUE(runCampaign(Spec, Options, Result));
  ASSERT_EQ(Result.Combos.size(), 1u);
  ASSERT_EQ(Result.Combos[0].PlanResults.size(), 2u);

  auto B = createSpaptBenchmark("mvt");
  const ExperimentScale &S = Spec.Scale;
  Dataset D = buildDataset(*B, S.NumConfigs, S.TrainFraction,
                           S.MeanObservations, Spec.DatasetSeed);
  ExperimentScale TwoReps = S;
  TwoReps.Repetitions = Spec.repetitions();
  for (size_t P = 0; P != Spec.Plans.size(); ++P) {
    RunResult Direct =
        runAveraged(*B, D, Spec.Plans[P], TwoReps, Spec.BaseRunSeed);
    const RunResult &FromCampaign = Result.Combos[0].PlanResults[P];
    ASSERT_EQ(FromCampaign.Curve.size(), Direct.Curve.size());
    for (size_t I = 0; I != Direct.Curve.size(); ++I) {
      EXPECT_EQ(FromCampaign.Curve[I].Iteration, Direct.Curve[I].Iteration);
      EXPECT_EQ(FromCampaign.Curve[I].CostSeconds,
                Direct.Curve[I].CostSeconds);
      EXPECT_EQ(FromCampaign.Curve[I].Rmse, Direct.Curve[I].Rmse);
    }
    EXPECT_EQ(FromCampaign.FinalRmse, Direct.FinalRmse);
    EXPECT_EQ(FromCampaign.TotalCostSeconds, Direct.TotalCostSeconds);
  }
  std::filesystem::remove_all(Options.StateDir);
}

//===----------------------------------------------------------------------===//
// Query-policy axis
//===----------------------------------------------------------------------===//

TEST(CampaignTest, PolicyAxisKeysAreLegacyStableForAlways) {
  // Always cells must keep their pre-policy ledger keys (so old ledgers
  // stay valid and policy sweeps share the baseline cells); non-default
  // policies get a distinguishing "q=<token>|" segment.
  CampaignSpec Spec = tinySpec();
  std::vector<CampaignCell> Cells = expandCells(Spec);
  ASSERT_FALSE(Cells.empty());
  for (const CampaignCell &Cell : Cells)
    EXPECT_EQ(Cell.key(Spec).find("q="), std::string::npos);
  EXPECT_TRUE(Spec.defaultPolicyAxis());

  QueryPolicyConfig Cost;
  Cost.Kind = QueryPolicyKind::CostRange;
  Spec.Policies = {QueryPolicyConfig(), Cost};
  EXPECT_FALSE(Spec.defaultPolicyAxis());
  std::vector<CampaignCell> Swept = expandCells(Spec);
  EXPECT_EQ(Swept.size(), Cells.size() * 2 - 2); // noise cells don't sweep
  size_t WithSegment = 0;
  std::set<std::string> Keys;
  for (const CampaignCell &Cell : Swept) {
    std::string Key = Cell.key(Spec);
    EXPECT_TRUE(Keys.insert(Key).second) << "duplicate key " << Key;
    if (Key.find("q=cost:0.1:0.03|") != std::string::npos)
      ++WithSegment;
  }
  // Exactly the cost-policy run cells carry the segment; the Always
  // halves' keys are byte-identical to the unswept expansion's.
  EXPECT_EQ(WithSegment, Cells.size() - 2);
  for (const CampaignCell &Cell : Cells)
    EXPECT_TRUE(Keys.count(Cell.key(Spec))) << "legacy key lost";
}

TEST(CampaignTest, PolicySweepAggregatesSkipsAndStaysLegacyCleanByDefault) {
  // A policy sweep runs per-policy combos and persists/reloads the skips
  // counter through the ledger; the default axis emits no policy fields,
  // keeping pre-policy aggregates byte-identical.
  CampaignSpec Spec = tinySpec();
  Spec.Benchmarks = {"mvt"};
  Spec.Plans = {SamplingPlan::sequential(10)};
  Spec.Repetitions = 1;

  CampaignOptions Options;
  Options.StateDir = freshStateDir("policy_sweep");
  Options.Quiet = true;
  std::string DefaultJson = runToJson(Spec, Options);
  EXPECT_EQ(DefaultJson.find("\"policy\""), std::string::npos);
  EXPECT_EQ(DefaultJson.find("\"skips\""), std::string::npos);

  QueryPolicyConfig Alm;
  Alm.Kind = QueryPolicyKind::AlmThreshold;
  Alm.AbsFloor = 1e30; // skip every refine pick: maximal contrast
  Spec.Policies = {QueryPolicyConfig(), Alm};
  // Same state dir: the Always cells are reused, only alm cells run.
  std::string SweptJson = runToJson(Spec, Options);
  EXPECT_NE(SweptJson.find("\"policy\": \"always\""), std::string::npos);
  EXPECT_NE(SweptJson.find("\"policy\": \"alm:1e+30:0.05\""),
            std::string::npos);
  EXPECT_NE(SweptJson.find("\"skips\""), std::string::npos);

  // Aggregation reloads from the ledger: a second aggregate-only pass
  // (fresh process state, same dir) must reproduce the bytes, proving
  // skips survive the cell-line round-trip.
  CampaignResult Reloaded;
  ASSERT_TRUE(aggregateCampaign(Spec, Options, Reloaded));
  EXPECT_EQ(campaignJson(Spec, Reloaded), SweptJson);

  // The all-skip alm run bought no refine labels.
  const ComboResult *AlmCombo = nullptr;
  for (const ComboResult &Combo : Reloaded.Combos)
    if (Combo.Policy.Kind == QueryPolicyKind::AlmThreshold)
      AlmCombo = &Combo;
  ASSERT_NE(AlmCombo, nullptr);
  ASSERT_FALSE(AlmCombo->PlanResults.empty());
  const RunResult &AlmRun = AlmCombo->PlanResults.front();
  EXPECT_EQ(AlmRun.Stats.Skips, AlmRun.Stats.Iterations);
  std::filesystem::remove_all(Options.StateDir);
}

//===----------------------------------------------------------------------===//
// Scale-out: shard ledgers, lease claiming, verified merge
//===----------------------------------------------------------------------===//

namespace {

std::string readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

/// Complete lines (with their '\n') of a ledger file.
std::vector<std::string> ledgerLines(const std::string &Path) {
  std::vector<std::string> Lines;
  std::string Bytes = readFileBytes(Path);
  size_t Pos = 0;
  while (Pos < Bytes.size()) {
    size_t Nl = Bytes.find('\n', Pos);
    if (Nl == std::string::npos)
      break;
    Lines.push_back(Bytes.substr(Pos, Nl - Pos + 1));
    Pos = Nl + 1;
  }
  return Lines;
}

void writeShard(const std::string &Path, const std::vector<std::string> &Lines,
                const std::string &Tail = "") {
  std::ofstream Out(Path, std::ios::binary);
  for (const std::string &Line : Lines)
    Out << Line;
  Out << Tail;
}

/// A single-process reference campaign; returns its state dir.
std::string referenceCampaign(const CampaignSpec &Spec,
                              const std::string &Name) {
  CampaignOptions Options;
  Options.StateDir = freshStateDir(Name);
  Options.Quiet = true;
  CampaignProgress Progress = runCampaignCells(Spec, Options);
  EXPECT_TRUE(Progress.Complete);
  return Options.StateDir;
}

} // namespace

TEST(CampaignMergeTest, ShuffledDuplicatedTornShardsMergeByteIdentical) {
  CampaignSpec Spec = tinySpec();
  std::string RefDir = referenceCampaign(Spec, "merge_ref");
  CampaignOptions Ref;
  Ref.StateDir = RefDir;
  std::string RefBytes = readFileBytes(Ref.canonicalLedgerPath());
  std::vector<std::string> Lines = ledgerLines(Ref.canonicalLedgerPath());
  ASSERT_GT(Lines.size(), 5u);

  // Deal the reference lines across three shards in reversed order, with
  // one line duplicated into two shards, one garbage line, and a torn
  // tail — everything a killed worker fleet can leave behind.
  CampaignOptions Sharded;
  Sharded.StateDir = freshStateDir("merge_shards");
  std::filesystem::create_directories(Sharded.StateDir);
  std::vector<std::string> A, B, C;
  for (size_t I = Lines.size(); I-- > 0;)
    (I % 3 == 0 ? A : I % 3 == 1 ? B : C).push_back(Lines[I]);
  A.push_back(Lines[1]); // byte-identical duplicate of a shard-B line
  B.push_back("this is not a json cell line\n");
  writeShard(Sharded.StateDir + "/cells.w0.jsonl", A);
  writeShard(Sharded.StateDir + "/cells.w1.jsonl", B,
             "{\"cell\":\"run|torn-mid-app"); // torn tail, no newline
  writeShard(Sharded.StateDir + "/cells.w2.jsonl", C);

  LedgerMergeReport Report;
  ASSERT_TRUE(mergeLedgers(Spec, Sharded, Report).ok());
  EXPECT_TRUE(Report.Wrote);
  EXPECT_TRUE(Report.ConflictKeys.empty());
  EXPECT_EQ(Report.InputFiles, 3u);
  EXPECT_EQ(Report.UniqueCells, Lines.size());
  EXPECT_EQ(Report.DuplicateCells, 1u);
  EXPECT_EQ(Report.TornTails, 1u);
  EXPECT_EQ(Report.SkippedGarbage, 1u);
  EXPECT_EQ(Report.ForeignCells, 0u);

  // The merged canonical ledger is byte-identical to the single-process
  // one, and aggregates to the same JSON.
  EXPECT_EQ(readFileBytes(Sharded.canonicalLedgerPath()), RefBytes);
  CampaignResult RefResult, MergedResult;
  ASSERT_TRUE(aggregateCampaign(Spec, Ref, RefResult));
  ASSERT_TRUE(aggregateCampaign(Spec, Sharded, MergedResult));
  EXPECT_EQ(campaignJson(Spec, MergedResult), campaignJson(Spec, RefResult));

  // Merging is idempotent: a second merge over its own output changes
  // nothing (the canonical ledger is itself an input).
  LedgerMergeReport Again;
  ASSERT_TRUE(mergeLedgers(Spec, Sharded, Again).ok());
  EXPECT_EQ(readFileBytes(Sharded.canonicalLedgerPath()), RefBytes);

  std::filesystem::remove_all(RefDir);
  std::filesystem::remove_all(Sharded.StateDir);
}

TEST(CampaignMergeTest, ConflictingDuplicateQuarantinesTheMerge) {
  CampaignSpec Spec = tinySpec();
  std::string RefDir = referenceCampaign(Spec, "conflict_ref");
  CampaignOptions Ref;
  Ref.StateDir = RefDir;
  std::vector<std::string> Lines = ledgerLines(Ref.canonicalLedgerPath());
  ASSERT_GT(Lines.size(), 2u);

  // Shard B carries the same cell as shard A with one digit flipped —
  // still parsable, same key, different bytes.  Cells are deterministic,
  // so this is corruption, never a legitimate state.
  std::string Tampered = Lines[0];
  size_t Field = Tampered.find("\"iterations\":");
  ASSERT_NE(Field, std::string::npos);
  char &Digit = Tampered[Field + std::strlen("\"iterations\":")];
  ASSERT_TRUE(Digit >= '0' && Digit <= '9');
  Digit = Digit == '9' ? '1' : char(Digit + 1);

  CampaignOptions Sharded;
  Sharded.StateDir = freshStateDir("conflict_shards");
  std::filesystem::create_directories(Sharded.StateDir);
  writeShard(Sharded.StateDir + "/cells.w0.jsonl", Lines);
  writeShard(Sharded.StateDir + "/cells.w1.jsonl", {Tampered});

  LedgerMergeReport Report;
  ASSERT_TRUE(mergeLedgers(Spec, Sharded, Report).ok());
  EXPECT_FALSE(Report.Wrote);
  ASSERT_EQ(Report.ConflictKeys.size(), 1u);
  EXPECT_NE(Lines[0].find(Report.ConflictKeys[0]), std::string::npos);
  // Quarantined: the canonical ledger was not written at all.
  EXPECT_FALSE(std::filesystem::exists(Sharded.canonicalLedgerPath()));

  std::filesystem::remove_all(RefDir);
  std::filesystem::remove_all(Sharded.StateDir);
}

TEST(CampaignMergeTest, StaticShardsUnionMergesByteIdentical) {
  CampaignSpec Spec = tinySpec();
  std::string RefDir = referenceCampaign(Spec, "static_ref");
  CampaignOptions Ref;
  Ref.StateDir = RefDir;
  std::string RefBytes = readFileBytes(Ref.canonicalLedgerPath());

  CampaignOptions Sharded;
  Sharded.StateDir = freshStateDir("static_shards");
  Sharded.Quiet = true;
  Sharded.ShardCount = 3;
  size_t SliceSum = 0;
  for (unsigned I = 0; I != 3; ++I) {
    CampaignOptions Worker = Sharded;
    Worker.ShardIndex = I;
    CampaignProgress Progress = runCampaignCells(Spec, Worker);
    EXPECT_TRUE(Progress.Complete) << "shard " << I;
    EXPECT_EQ(Progress.NewlyRun, Progress.ShardCells);
    SliceSum += Progress.ShardCells;
    EXPECT_TRUE(std::filesystem::exists(Worker.ledgerPath()));
  }
  EXPECT_EQ(SliceSum, expandCells(Spec).size());

  LedgerMergeReport Report;
  ASSERT_TRUE(mergeLedgers(Spec, Sharded, Report).ok());
  EXPECT_TRUE(Report.Wrote);
  EXPECT_EQ(Report.DuplicateCells, 0u);
  EXPECT_EQ(readFileBytes(Sharded.canonicalLedgerPath()), RefBytes);

  std::filesystem::remove_all(RefDir);
  std::filesystem::remove_all(Sharded.StateDir);
}

TEST(CampaignMergeTest, LeaseWorkersCooperateToByteIdenticalUnion) {
  CampaignSpec Spec = tinySpec();
  std::string RefDir = referenceCampaign(Spec, "lease_ref");
  CampaignOptions Ref;
  Ref.StateDir = RefDir;
  std::string RefBytes = readFileBytes(Ref.canonicalLedgerPath());

  // Two lease-claiming workers race over one state dir (threads here,
  // processes in tools/chaos_smoke.py — the protocol is all filesystem).
  CampaignOptions Base;
  Base.StateDir = freshStateDir("lease_workers");
  Base.Quiet = true;
  Base.LeaseClaim = true;
  Base.LeaseTtlMs = 5000;
  Base.LeaseRangeCells = 2;
  CampaignProgress Progress[2];
  std::thread Workers[2];
  for (int W = 0; W != 2; ++W)
    Workers[W] = std::thread([&, W] {
      CampaignOptions Mine = Base;
      Mine.WorkerId = "w" + std::to_string(W);
      Progress[W] = runCampaignCells(Spec, Mine);
    });
  for (std::thread &T : Workers)
    T.join();

  size_t NewlyRun = 0;
  for (const CampaignProgress &P : Progress) {
    // Lease workers return only when the whole spec is covered.
    EXPECT_TRUE(P.Complete);
    EXPECT_TRUE(P.QuarantinedCells.empty());
    NewlyRun += P.NewlyRun;
  }
  EXPECT_GE(NewlyRun, expandCells(Spec).size());

  LedgerMergeReport Report;
  ASSERT_TRUE(mergeLedgers(Spec, Base, Report).ok());
  EXPECT_TRUE(Report.Wrote);
  EXPECT_TRUE(Report.ConflictKeys.empty());
  EXPECT_EQ(readFileBytes(Base.canonicalLedgerPath()), RefBytes);

  std::filesystem::remove_all(RefDir);
  std::filesystem::remove_all(Base.StateDir);
}

TEST(CampaignMergeTest, MergeReadFailpointFailsTheMergeCleanly) {
  CampaignSpec Spec = tinySpec();
  std::string RefDir = referenceCampaign(Spec, "merge_fp");
  CampaignOptions Ref;
  Ref.StateDir = RefDir;

  FailSpec Fail;
  Fail.Nth = 1;
  Fail.Count = 1;
  ScopedFailPoint Armed("merge.read", Fail);
  LedgerMergeReport Report;
  EXPECT_FALSE(mergeLedgers(Spec, Ref, Report).ok());
  EXPECT_FALSE(Report.Wrote);
  std::filesystem::remove_all(RefDir);
}

//===- tests/machine_test.cpp - cost-model behaviour ----------*- C++ -*-===//
//
// The analytic machine model is the reproduction's ground truth, so these
// tests pin down the qualitative shapes the paper depends on: unrolling
// amortizes loop overhead, register-tile blowups spill, recurrences climb
// under unrolling (Figure 2), cache tiles move reuse into faster levels,
// and compile time grows with unrolled code size.
//
//===----------------------------------------------------------------------===//

#include "machine/CostModel.h"
#include "spapt/Kernels.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace alic;

namespace {

TransformPlan planWith(LoopVarId Var, int Unroll, int Tile = 1, int Rt = 1) {
  TransformPlan P;
  P.factorsMut(Var).Unroll = Unroll;
  P.factorsMut(Var).CacheTile = Tile;
  P.factorsMut(Var).RegisterTile = Rt;
  return P;
}

} // namespace

TEST(CostModelTest, DeterministicEvaluation) {
  KernelBundle B = buildMm(512);
  CostModel M;
  TransformPlan P = planWith(2, 4);
  EXPECT_EQ(M.evaluate(B.K, P).RuntimeSeconds,
            M.evaluate(B.K, P).RuntimeSeconds);
}

TEST(CostModelTest, RuntimePositiveAndFinite) {
  CostModel M;
  for (int64_t N : {64, 256, 1024}) {
    KernelBundle B = buildMm(N);
    CostBreakdown C = M.evaluate(B.K, TransformPlan());
    EXPECT_GT(C.RuntimeSeconds, 0.0);
    EXPECT_TRUE(std::isfinite(C.RuntimeSeconds));
    EXPECT_GT(C.CompileSeconds, 0.0);
  }
}

TEST(CostModelTest, RuntimeScalesWithProblemSize) {
  CostModel M;
  double T256 = M.runtimeSeconds(buildMm(256).K, TransformPlan());
  double T512 = M.runtimeSeconds(buildMm(512).K, TransformPlan());
  // Work grows 8x; allow the memory terms to bend the exponent.
  EXPECT_GT(T512, 4.0 * T256);
}

TEST(CostModelTest, InnermostUnrollAmortizesOverhead) {
  KernelBundle B = buildMm(512);
  CostModel M;
  CostBreakdown U1 = M.evaluate(B.K, planWith(2, 1));
  CostBreakdown U8 = M.evaluate(B.K, planWith(2, 8));
  EXPECT_LT(U8.LoopOverheadCycles, U1.LoopOverheadCycles);
}

TEST(CostModelTest, RecurrenceClimbsAndPlateausUnderUnrolling) {
  // adi's row sweep carries a recurrence along j1 (paper Figure 2): more
  // unrolling must not help, and must eventually cost more.
  KernelBundle B = buildAdi(1000, 90);
  CostModel M;
  double TBase = M.runtimeSeconds(B.K, TransformPlan());
  double T10 = M.runtimeSeconds(B.K, planWith(2, 10));
  double T20 = M.runtimeSeconds(B.K, planWith(2, 20));
  double T30 = M.runtimeSeconds(B.K, planWith(2, 30));
  EXPECT_GT(T10, TBase);            // climb
  EXPECT_GT(T30, TBase);
  EXPECT_NEAR(T30 / T20, 1.0, 0.1); // plateau
}

TEST(CostModelTest, RegisterTileBlowupSpills) {
  KernelBundle B = buildBicgkernel(2048);
  CostModel M;
  TransformPlan Mild;
  Mild.factorsMut(0).RegisterTile = 2;
  Mild.factorsMut(1).RegisterTile = 2;
  TransformPlan Blowup;
  Blowup.factorsMut(0).RegisterTile = 30;
  Blowup.factorsMut(1).RegisterTile = 30;
  CostBreakdown CM = M.evaluate(B.K, Mild);
  CostBreakdown CB = M.evaluate(B.K, Blowup);
  EXPECT_GT(CB.SpillCycles, 10.0 * CM.SpillCycles);
  EXPECT_GT(CB.RuntimeSeconds, CM.RuntimeSeconds);
}

TEST(CostModelTest, GoodCacheTileReducesMemoryCycles) {
  // Untiled mm at N=1024 streams B from memory; a 64x64x64 tile band fits
  // the working set in cache.
  KernelBundle B = buildMm(1024);
  CostModel M;
  TransformPlan Tiled;
  Tiled.factorsMut(0).CacheTile = 64;
  Tiled.factorsMut(1).CacheTile = 64;
  Tiled.factorsMut(2).CacheTile = 64;
  CostBreakdown Untiled = M.evaluate(B.K, TransformPlan());
  CostBreakdown WithTile = M.evaluate(B.K, Tiled);
  EXPECT_LT(WithTile.MemoryCycles, 0.5 * Untiled.MemoryCycles);
  EXPECT_LT(WithTile.RuntimeSeconds, Untiled.RuntimeSeconds);
}

TEST(CostModelTest, CompileTimeGrowsWithUnrolledCodeSize) {
  KernelBundle B = buildMm(512);
  CostModel M;
  TransformPlan Heavy;
  Heavy.factorsMut(0).Unroll = 30;
  Heavy.factorsMut(1).Unroll = 30;
  Heavy.factorsMut(2).Unroll = 30;
  CostBreakdown Base = M.evaluate(B.K, TransformPlan());
  CostBreakdown Expanded = M.evaluate(B.K, Heavy);
  EXPECT_GT(Expanded.CodeStmts, 1000.0);
  EXPECT_GT(Expanded.CompileSeconds, 10.0 * Base.CompileSeconds);
}

TEST(CostModelTest, FrontEndPenaltyOnlyForLargeBodies) {
  KernelBundle B = buildMm(512);
  CostModel M;
  CostBreakdown Small = M.evaluate(B.K, planWith(2, 4));
  EXPECT_EQ(Small.FrontEndCycles, 0.0);
  TransformPlan Heavy;
  Heavy.factorsMut(1).Unroll = 30;
  Heavy.factorsMut(2).Unroll = 30;
  CostBreakdown Large = M.evaluate(B.K, Heavy);
  EXPECT_GT(Large.FrontEndCycles, 0.0);
}

TEST(CostModelTest, BreakdownSumsToTotal) {
  KernelBundle B = buildGemver(1024);
  CostModel M;
  CostBreakdown C = M.evaluate(B.K, planWith(1, 4, 32, 2));
  EXPECT_NEAR(C.TotalCycles,
              C.ComputeCycles + C.LoopOverheadCycles + C.SpillCycles +
                  C.MemoryCycles + C.FrontEndCycles,
              1e-6 * C.TotalCycles);
  EXPECT_NEAR(C.RuntimeSeconds,
              C.TotalCycles / (M.machine().FrequencyGHz * 1e9),
              1e-12 * C.RuntimeSeconds);
}

TEST(CostModelTest, ReductionBenefitsFromRegisterTiling) {
  // mvt's inner product is chain-bound; register tiling introduces
  // independent partial accumulators.
  KernelBundle B = buildMvt(4000);
  CostModel M;
  TransformPlan Rt;
  Rt.factorsMut(1).RegisterTile = 4; // i2: the reduction loop
  CostBreakdown Base = M.evaluate(B.K, TransformPlan());
  CostBreakdown Tiled = M.evaluate(B.K, Rt);
  EXPECT_LT(Tiled.ComputeCycles, Base.ComputeCycles);
}

class SuiteCostSanityTest : public testing::TestWithParam<const char *> {};

TEST_P(SuiteCostSanityTest, RandomPlansStayFiniteAndPositive) {
  KernelBundle B = [&] {
    std::string N = GetParam();
    if (N == "mm")
      return buildMm(512);
    if (N == "mvt")
      return buildMvt(4000);
    if (N == "jacobi")
      return buildJacobi(2000, 20);
    if (N == "lu")
      return buildLu(900);
    return buildGemver(4500);
  }();
  ParamSpace Space(B.Params);
  CostModel M;
  Rng R(77);
  for (int I = 0; I != 50; ++I) {
    Config C = Space.sample(R);
    TransformPlan Plan = TransformPlan::fromConfig(Space, C);
    CostBreakdown Cost = M.evaluate(B.K, Plan);
    ASSERT_TRUE(std::isfinite(Cost.RuntimeSeconds));
    ASSERT_GT(Cost.RuntimeSeconds, 0.0);
    ASSERT_LT(Cost.RuntimeSeconds, 500.0);
    ASSERT_GT(Cost.CompileSeconds, 0.0);
    ASSERT_LT(Cost.CompileSeconds, 300.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Kernels, SuiteCostSanityTest,
                         testing::Values("mm", "mvt", "jacobi", "lu",
                                         "gemver"));

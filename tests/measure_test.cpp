//===- tests/measure_test.cpp - noise model and profiler ------*- C++ -*-===//

#include "measure/NoiseModel.h"
#include "measure/Profiler.h"
#include "spapt/Suite.h"
#include "stats/OnlineStats.h"
#include "support/Scheduler.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace alic;

namespace {

ParamSpace twoDimSpace() {
  std::vector<Param> Params;
  Params.push_back(Param::range("a", ParamKind::Unroll, 1, 30, 1, 0));
  Params.push_back(Param::range("b", ParamKind::Unroll, 1, 30, 1, 1));
  return ParamSpace(std::move(Params));
}

NoiseProfile testProfile() {
  NoiseProfile P;
  P.BaseRelSigma = 0.01;
  P.RegionAmplification = 20.0;
  P.RegionFraction = 0.2;
  P.BurstProbability = 0.0;
  P.FieldSeed = 12345;
  return P;
}

} // namespace

TEST(NoiseModelTest, FieldIsDeterministicAndBounded) {
  ParamSpace S = twoDimSpace();
  NoiseProfile P = testProfile();
  Rng R(1);
  for (int I = 0; I != 200; ++I) {
    Config C = S.sample(R);
    double F1 = noiseRegionField(P, S, C);
    double F2 = noiseRegionField(P, S, C);
    EXPECT_EQ(F1, F2);
    EXPECT_GE(F1, 0.0);
    EXPECT_LE(F1, 1.0);
  }
}

TEST(NoiseModelTest, FieldIsSmoothAcrossNeighbours) {
  ParamSpace S = twoDimSpace();
  NoiseProfile P = testProfile();
  // Adjacent ordinals move the field by much less than its full range.
  for (uint16_t A = 0; A + 1 < 30; ++A) {
    double F0 = noiseRegionField(P, S, {A, 7});
    double F1 = noiseRegionField(P, S, {uint16_t(A + 1), 7});
    EXPECT_LT(std::fabs(F1 - F0), 0.25);
  }
}

TEST(NoiseModelTest, SigmaBetweenBaseAndAmplified) {
  ParamSpace S = twoDimSpace();
  NoiseProfile P = testProfile();
  Rng R(2);
  bool SawQuiet = false, SawLoud = false;
  for (int I = 0; I != 500; ++I) {
    double Sigma = noiseSigmaRel(P, S, S.sample(R));
    EXPECT_GE(Sigma, P.BaseRelSigma - 1e-12);
    EXPECT_LE(Sigma, P.BaseRelSigma * P.RegionAmplification + 1e-12);
    if (Sigma < 1.5 * P.BaseRelSigma)
      SawQuiet = true;
    if (Sigma > 5.0 * P.BaseRelSigma)
      SawLoud = true;
  }
  EXPECT_TRUE(SawQuiet);
  EXPECT_TRUE(SawLoud);
}

TEST(NoiseModelTest, MeasurementsDeterministicPerIndex) {
  NoiseProfile P = testProfile();
  double A = drawMeasurement(P, 1.0, 0.02, 42, 0);
  double B = drawMeasurement(P, 1.0, 0.02, 42, 0);
  double C = drawMeasurement(P, 1.0, 0.02, 42, 1);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
}

TEST(NoiseModelTest, MeasurementMeanConverges) {
  NoiseProfile P = testProfile();
  OnlineStats S;
  for (uint64_t I = 0; I != 20000; ++I)
    S.add(drawMeasurement(P, 2.0, 0.05, 7, I));
  EXPECT_NEAR(S.mean(), 2.0, 0.01);
  EXPECT_NEAR(S.stddev(), 0.1, 0.01);
}

TEST(NoiseModelTest, BurstsCreateRightTail) {
  NoiseProfile P = testProfile();
  P.BurstProbability = 0.2;
  P.BurstMeanRel = 1.0;
  OnlineStats S;
  for (uint64_t I = 0; I != 20000; ++I)
    S.add(drawMeasurement(P, 1.0, 0.01, 9, I));
  EXPECT_GT(S.max(), 2.0);    // bursts visible
  EXPECT_GT(S.mean(), 1.1);   // positive bias from interference
}

TEST(NoiseModelTest, MeasurementsNeverBelowFloor) {
  NoiseProfile P = testProfile();
  for (uint64_t I = 0; I != 5000; ++I)
    EXPECT_GT(drawMeasurement(P, 1.0, 1.5, 3, I), 0.0);
}

//===----------------------------------------------------------------------===//
// Profiler
//===----------------------------------------------------------------------===//

TEST(ProfilerTest, ChargesCompileOncePerConfig) {
  auto B = createSpaptBenchmark("mvt");
  Profiler P(*B, 77);
  Config C = B->baselineConfig();
  P.measure(C, 5);
  EXPECT_EQ(P.ledger().Compilations, 1u);
  EXPECT_EQ(P.ledger().Runs, 5u);
  P.measureOnce(C);
  EXPECT_EQ(P.ledger().Compilations, 1u);
  EXPECT_EQ(P.ledger().Runs, 6u);
  EXPECT_EQ(P.observationCount(C), 6u);
}

TEST(ProfilerTest, LedgerAccumulatesRunTimes) {
  auto B = createSpaptBenchmark("mvt");
  Profiler P(*B, 77);
  Config C = B->baselineConfig();
  std::vector<double> Obs = P.measure(C, 10);
  double Sum = 0.0;
  for (double O : Obs)
    Sum += O;
  EXPECT_NEAR(P.ledger().RunSeconds, Sum, 1e-12);
  EXPECT_GT(P.ledger().CompileSeconds, 0.0);
}

TEST(ProfilerTest, GroundTruthDoesNotChargeLedger) {
  auto B = createSpaptBenchmark("mvt");
  Profiler P(*B, 77);
  Config C = B->baselineConfig();
  double Truth = P.groundTruthMean(C);
  EXPECT_GT(Truth, 0.0);
  EXPECT_EQ(P.ledger().Compilations, 0u);
  EXPECT_EQ(P.ledger().Runs, 0u);
}

TEST(ProfilerTest, ObservationsCenterOnGroundTruth) {
  auto B = createSpaptBenchmark("mvt");
  Profiler P(*B, 99);
  Config C = B->baselineConfig();
  double Truth = P.groundTruthMean(C);
  OnlineStats S;
  for (int I = 0; I != 2000; ++I)
    S.add(P.measureOnce(C));
  // Mean within a few percent (bursts add a small positive bias).
  EXPECT_NEAR(S.mean() / Truth, 1.0, 0.05);
}

TEST(ProfilerTest, DifferentSeedsGiveDifferentStreams) {
  auto B = createSpaptBenchmark("mvt");
  Profiler P1(*B, 1), P2(*B, 2);
  Config C = B->baselineConfig();
  EXPECT_NE(P1.measureOnce(C), P2.measureOnce(C));
}

TEST(ProfilerTest, SameSeedReplaysExactly) {
  auto B = createSpaptBenchmark("mvt");
  Profiler P1(*B, 5), P2(*B, 5);
  Config C = B->baselineConfig();
  for (int I = 0; I != 20; ++I)
    EXPECT_EQ(P1.measureOnce(C), P2.measureOnce(C));
}

TEST(ProfilerTest, PermutedMeasurementOrderYieldsIdenticalSamples) {
  // The counter-based noise-stream contract: observation k of a config is
  // a pure function of (StreamSeed, config key, k), so interleaving
  // measurements of other configs — in any order — can never change the
  // samples a config receives.  This is the prerequisite for sharding
  // measurement across workers.
  auto B = createSpaptBenchmark("mvt");
  Rng R(123);
  std::vector<Config> Configs;
  for (int I = 0; I != 6; ++I)
    Configs.push_back(B->space().sample(R));

  // Order 1: round-robin.  Order 2: config-major.  Order 3: reversed
  // round-robin.
  auto collect = [&](const std::vector<std::pair<int, int>> &Schedule) {
    Profiler P(*B, 31);
    std::vector<std::vector<double>> PerConfig(Configs.size());
    for (auto [ConfigIdx, Rep] : Schedule) {
      (void)Rep;
      PerConfig[size_t(ConfigIdx)].push_back(
          P.measureOnce(Configs[size_t(ConfigIdx)]));
    }
    return PerConfig;
  };

  std::vector<std::pair<int, int>> RoundRobin, ConfigMajor, Reversed;
  for (int Rep = 0; Rep != 5; ++Rep)
    for (int I = 0; I != 6; ++I)
      RoundRobin.push_back({I, Rep});
  for (int I = 0; I != 6; ++I)
    for (int Rep = 0; Rep != 5; ++Rep)
      ConfigMajor.push_back({I, Rep});
  Reversed.assign(RoundRobin.rbegin(), RoundRobin.rend());

  auto A = collect(RoundRobin);
  auto Bm = collect(ConfigMajor);
  auto Cm = collect(Reversed);
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I], Bm[I]) << "config " << I;
    EXPECT_EQ(A[I], Cm[I]) << "config " << I;
  }
}

TEST(ProfilerTest, MeasureBatchMatchesSequentialBitwise) {
  auto B = createSpaptBenchmark("mvt");
  Rng R(9);
  std::vector<Config> Batch;
  for (int I = 0; I != 12; ++I)
    Batch.push_back(B->space().sample(R));
  Batch.push_back(Batch.front()); // duplicate: gets the next sample index

  Profiler Sequential(*B, 17), Batched(*B, 17), Sharded(*B, 17);
  std::vector<double> Want;
  for (const Config &C : Batch)
    Want.push_back(Sequential.measureOnce(C));

  EXPECT_EQ(Want, Batched.measureBatch(Batch));
  Scheduler Pool(3);
  EXPECT_EQ(Want, Sharded.measureBatch(Batch, &Pool));

  EXPECT_EQ(Sequential.ledger().Runs, Batched.ledger().Runs);
  EXPECT_EQ(Sequential.ledger().Compilations, Batched.ledger().Compilations);
  EXPECT_DOUBLE_EQ(Sequential.ledger().RunSeconds,
                   Batched.ledger().RunSeconds);
}

TEST(ProfilerTest, ObservationAtIsPureAndMatchesMeasureOnce) {
  auto B = createSpaptBenchmark("mvt");
  Profiler P(*B, 23), Probe(*B, 23);
  Config C = B->baselineConfig();
  // Peeking at future observations neither charges nor perturbs them.
  double Peek2 = Probe.observationAt(C, 2);
  EXPECT_EQ(Probe.ledger().Runs, 0u);
  std::vector<double> Obs = P.measure(C, 4);
  EXPECT_EQ(Obs[2], Peek2);
  EXPECT_EQ(Obs[1], Probe.observationAt(C, 1));
}

TEST(ProfilerTest, EvaluationPeeksDoNotSuppressCompileCharge) {
  // groundTruthMean/observationAt warm the per-config cache; a later real
  // measurement must still pay the one-time compile cost.
  auto B = createSpaptBenchmark("mvt");
  Profiler P(*B, 23);
  Config C = B->baselineConfig();
  P.groundTruthMean(C);
  P.observationAt(C, 0);
  EXPECT_EQ(P.ledger().Compilations, 0u);
  P.measureOnce(C);
  EXPECT_EQ(P.ledger().Compilations, 1u);
  EXPECT_GT(P.ledger().CompileSeconds, 0.0);
  P.measureOnce(C);
  EXPECT_EQ(P.ledger().Compilations, 1u); // still charged exactly once
}

//===- tests/spapt_test.cpp - benchmark suite tests -----------*- C++ -*-===//

#include "spapt/Suite.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

using namespace alic;

TEST(SpaptSuiteTest, ElevenBenchmarksInTableOrder) {
  const auto &Names = spaptBenchmarkNames();
  ASSERT_EQ(Names.size(), 11u);
  EXPECT_EQ(Names.front(), "adi");
  EXPECT_EQ(Names.back(), "mvt");
}

TEST(SpaptSuiteTest, UnknownNameAborts) {
  EXPECT_DEATH((void)createSpaptBenchmark("nonesuch"), "unknown");
}

TEST(SpaptSuiteTest, CardinalitiesApproximateTable1) {
  // Paper Table 1 search-space sizes; ours must match to ~3 significant
  // figures (see EXPERIMENTS.md for the side-by-side).
  const std::map<std::string, double> Expected = {
      {"adi", 3.78e14},    {"atax", 2.57e12},       {"bicgkernel", 5.83e8},
      {"correlation", 3.78e14}, {"dgemv3", 1.33e27}, {"gemver", 1.14e16},
      {"hessian", 1.95e7}, {"jacobi", 1.95e7},      {"lu", 5.83e8},
      {"mm", 3.18e9},      {"mvt", 1.95e7}};
  for (const auto &[Name, Paper] : Expected) {
    auto B = createSpaptBenchmark(Name);
    double Ours = B->space().cardinality().toDouble();
    EXPECT_NEAR(Ours / Paper, 1.0, 0.03) << Name << ": ours=" << Ours;
  }
}

class SpaptBenchmarkTest : public testing::TestWithParam<std::string> {};

TEST_P(SpaptBenchmarkTest, BaselineConfigDecodesToAllOnes) {
  auto B = createSpaptBenchmark(GetParam());
  std::vector<int> Values = B->space().decode(B->baselineConfig());
  for (int V : Values)
    EXPECT_EQ(V, 1);
}

TEST_P(SpaptBenchmarkTest, RuntimesArePlausible) {
  auto B = createSpaptBenchmark(GetParam());
  Rng R(31);
  for (int I = 0; I != 30; ++I) {
    Config C = B->space().sample(R);
    double T = B->meanRuntimeSeconds(C);
    ASSERT_TRUE(std::isfinite(T));
    ASSERT_GT(T, 1e-3) << B->space().toString(C);
    ASSERT_LT(T, 100.0) << B->space().toString(C);
  }
}

TEST_P(SpaptBenchmarkTest, CompileTimesArePlausible) {
  auto B = createSpaptBenchmark(GetParam());
  Rng R(33);
  for (int I = 0; I != 20; ++I) {
    Config C = B->space().sample(R);
    double T = B->compileSeconds(C);
    ASSERT_GT(T, 0.01);
    ASSERT_LT(T, 300.0);
  }
}

TEST_P(SpaptBenchmarkTest, MeanRuntimeIsDeterministic) {
  auto B1 = createSpaptBenchmark(GetParam());
  auto B2 = createSpaptBenchmark(GetParam());
  Rng R(35);
  Config C = B1->space().sample(R);
  EXPECT_EQ(B1->meanRuntimeSeconds(C), B2->meanRuntimeSeconds(C));
}

TEST_P(SpaptBenchmarkTest, SurfaceHasSpread) {
  // A learnable problem needs configuration-dependent runtimes.
  auto B = createSpaptBenchmark(GetParam());
  Rng R(37);
  double Min = 1e300, Max = 0.0;
  for (int I = 0; I != 100; ++I) {
    double T = B->meanRuntimeSeconds(B->space().sample(R));
    Min = std::min(Min, T);
    Max = std::max(Max, T);
  }
  EXPECT_GT(Max / Min, 1.05) << "surface too flat";
}

TEST_P(SpaptBenchmarkTest, KernelVerifies) {
  auto B = createSpaptBenchmark(GetParam());
  B->kernel().verify();
  EXPECT_GT(B->kernel().countStmts(), 0u);
}

INSTANTIATE_TEST_SUITE_P(All, SpaptBenchmarkTest,
                         testing::ValuesIn(spaptBenchmarkNames()),
                         [](const auto &Info) { return Info.param; });

TEST(SpaptNoiseTest, CorrelationIsNoisiestQuietSuiteIsQuiet) {
  // Table 2 ordering: correlation's noise dwarfs lu/mm/mvt.
  auto Corr = createSpaptBenchmark("correlation");
  auto Lu = createSpaptBenchmark("lu");
  double CorrPeak = Corr->noise().BaseRelSigma *
                    Corr->noise().RegionAmplification;
  double LuPeak = Lu->noise().BaseRelSigma * Lu->noise().RegionAmplification;
  EXPECT_GT(CorrPeak, 10.0 * LuPeak);
}

TEST(SpaptNoiseTest, AdiHasBroadNoisyRegions) {
  auto Adi = createSpaptBenchmark("adi");
  auto Gemver = createSpaptBenchmark("gemver");
  EXPECT_GT(Adi->noise().RegionFraction, 2.0 * Gemver->noise().RegionFraction);
}

//===- tests/serve_test.cpp - serve engine + wire tests -------*- C++ -*-===//
//
// Pins the serving contract: the suggest/observe split is bit-identical
// to the batch step() loop; a killed-and-restored engine resumes every
// session with byte-identical suggestions, at any worker count and steal
// seed; suggest is idempotent while a ticket is outstanding; corrupt
// snapshots are skipped, never fatal; and the NDJSON wire layer maps
// requests to engine calls and errors to ok:false replies.
//
//===----------------------------------------------------------------------===//

#include "exp/Dataset.h"
#include "serve/ServeEngine.h"
#include "serve/Wire.h"
#include "spapt/Suite.h"
#include "support/FailPoint.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

using namespace alic;

namespace {

/// A seconds-cheap session: a few dozen iterations over a small pool.
SessionSpec tinySpec(uint64_t Seed = 3) {
  SessionSpec Spec;
  Spec.Benchmark = "atax";
  Spec.Scale = ExperimentScale::preset(ScaleKind::Smoke);
  Spec.Scale.NumConfigs = 200;
  Spec.Scale.MaxTrainingExamples = 14;
  Spec.Scale.CandidatesPerIteration = 12;
  Spec.Scale.ReferenceSetSize = 15;
  Spec.Scale.Particles = 30;
  Spec.Scale.TestSubset = 40;
  Spec.Seed = Seed;
  return Spec;
}

ServeOptions engineOptions(const std::string &StateDir, unsigned Threads,
                           uint64_t StealSeed = 0x57ea1ull) {
  ServeOptions Opts;
  Opts.StateDir = StateDir;
  Opts.Threads = Threads;
  Opts.StealSeed = StealSeed;
  return Opts;
}

/// Fresh per-test state directory under the gtest temp root.
std::string freshStateDir(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + "alic_serve_" + Name;
  std::filesystem::remove_all(Dir);
  return Dir;
}

/// Exact byte-level identity of a suggestion (configs are ordinals, so
/// string rendering is lossless).
std::string fingerprint(const Suggestion &S) {
  std::string F = std::to_string(S.Ticket) + "|" +
                  std::to_string(int(S.Phase)) + "|" +
                  std::to_string(S.ObservationsPerConfig);
  for (const Config &C : S.Configs) {
    F += "|";
    for (uint16_t V : C)
      F += std::to_string(V) + ",";
  }
  // Declined configs are part of the replay contract too: a restored
  // session must reproduce every skip decision bit-identically.
  F += "|skipped:";
  for (const Config &C : S.Skipped) {
    F += "|";
    for (uint16_t V : C)
      F += std::to_string(V) + ",";
  }
  return F;
}

/// The client side of a session: measures suggested configs with its own
/// virtual profiler (state survives server restarts, like a real user's
/// machine does).
struct Client {
  explicit Client(const std::string &Benchmark)
      : Bench(createSpaptBenchmark(Benchmark)), Lab(*Bench, 0xc11e47) {}

  std::vector<double> measure(const Suggestion &S) {
    std::vector<double> Costs;
    for (const Config &C : S.Configs) {
      std::vector<double> Obs = Lab.measure(C, S.ObservationsPerConfig);
      Costs.insert(Costs.end(), Obs.begin(), Obs.end());
    }
    return Costs;
  }

  std::unique_ptr<SpaptBenchmark> Bench;
  Profiler Lab;
};

/// Runs suggest/measure/observe rounds until the session completes or
/// \p MaxRounds is hit, appending each round's suggestion fingerprint.
void drain(ServeEngine &Engine, const std::string &Id, Client &C,
           std::vector<std::string> &Fingerprints,
           size_t MaxRounds = size_t(-1)) {
  for (size_t Round = 0; Round != MaxRounds; ++Round) {
    Suggestion S;
    std::string Err;
    ASSERT_TRUE(Engine.suggest(Id, S, Err)) << Err;
    if (S.Phase == SuggestPhase::Done)
      return;
    Fingerprints.push_back(fingerprint(S));
    ASSERT_TRUE(Engine.observe(Id, S.Ticket, C.measure(S), Err)) << Err;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// The split loop is the batch loop
//===----------------------------------------------------------------------===//

// Drives one learner with step() and its twin with suggest/observe plus
// an external profiler on the same stream seed; every counter and every
// model prediction must match bitwise.
TEST(ServeSplit, SuggestObserveMatchesBatchStep) {
  auto Bench = createSpaptBenchmark("mvt");
  Dataset Data = buildDataset(*Bench, 150, 0.75, 5, 11);

  ExperimentScale Scale = ExperimentScale::preset(ScaleKind::Smoke);
  Scale.Particles = 30;
  ActiveLearnerConfig Cfg;
  Scale.applyTo(Cfg);
  Cfg.MaxTrainingExamples = 12;
  Cfg.CandidatesPerIteration = 10;
  Cfg.ReferenceSetSize = 12;
  Cfg.Seed = 5;

  for (SamplingPlan Plan :
       {SamplingPlan::sequential(4), SamplingPlan::fixed(3)}) {
    auto ModelA = makeSurrogateModel(ModelKind::DynaTree, Scale, Cfg.Seed);
    auto ModelB = makeSurrogateModel(ModelKind::DynaTree, Scale, Cfg.Seed);
    ActiveLearner A(*Bench, *ModelA, Data.Norm, Data.TrainPool, Plan, Cfg);
    ActiveLearner B(*Bench, *ModelB, Data.Norm, Data.TrainPool, Plan, Cfg);

    // B's "client" measures with the learner-internal profiler's exact
    // stream seed, so both learners see identical observations.
    Profiler Lab(*Bench, hashCombine({Cfg.Seed, 0x50524f46ull}));

    while (A.step()) {
    }
    while (true) {
      const Suggestion &S = B.suggest();
      if (S.Phase == SuggestPhase::Done)
        break;
      std::vector<double> Costs;
      for (const Config &C : S.Configs) {
        std::vector<double> Obs = Lab.measure(C, S.ObservationsPerConfig);
        Costs.insert(Costs.end(), Obs.begin(), Obs.end());
      }
      ASSERT_TRUE(B.observe(S.Ticket, Costs));
    }

    EXPECT_EQ(A.stats().Iterations, B.stats().Iterations);
    EXPECT_EQ(A.stats().DistinctExamples, B.stats().DistinctExamples);
    EXPECT_EQ(A.stats().Revisits, B.stats().Revisits);
    EXPECT_EQ(A.stats().Observations, B.stats().Observations);
    for (size_t I = 0; I != std::min<size_t>(25, Data.TestFeatures.size());
         ++I) {
      Prediction PA = ModelA->predict(Data.TestFeatures[I]);
      Prediction PB = ModelB->predict(Data.TestFeatures[I]);
      ASSERT_EQ(PA.Mean, PB.Mean);
      ASSERT_EQ(PA.Variance, PB.Variance);
    }
  }
}

//===----------------------------------------------------------------------===//
// Restart invisibility
//===----------------------------------------------------------------------===//

// Kills the engine after k observes, restores from snapshots, and pins
// that every remaining suggestion is byte-identical to an uninterrupted
// session — across worker counts and steal seeds.
TEST(ServeEngineTest, RestartInvisibleAtAnyWorkerCount) {
  // Uninterrupted reference session.
  std::vector<std::string> Reference;
  {
    ServeEngine Engine(engineOptions("", 0));
    std::string Err;
    ASSERT_TRUE(Engine.openSession("ref", tinySpec(), Err)) << Err;
    Client C("atax");
    drain(Engine, "ref", C, Reference);
    ASSERT_GT(Reference.size(), 8u);
  }

  struct Variant {
    unsigned Threads;
    uint64_t StealSeed;
    const char *Name;
  };
  const Variant Variants[] = {
      {0, 0x57ea1ull, "w0"},
      {1, 0x57ea1ull, "w1"},
      {8, 0x57ea1ull, "w8"},
      {8, 0xfeedull, "w8-steal"},
  };
  const size_t KillAfter = 6;

  for (const Variant &V : Variants) {
    SCOPED_TRACE(V.Name);
    std::string Dir = freshStateDir(std::string("restart_") + V.Name);
    Client C("atax");
    std::vector<std::string> Seen;
    {
      ServeEngine Engine(engineOptions(Dir, V.Threads, V.StealSeed));
      std::string Err;
      ASSERT_TRUE(Engine.openSession("s", tinySpec(), Err)) << Err;
      drain(Engine, "s", C, Seen, KillAfter);
      // Engine dropped here with the session mid-flight: the only state
      // that survives is the snapshot directory, exactly like SIGKILL
      // (every observe snapshotted, so nothing is newer than disk).
    }
    {
      ServeEngine Engine(engineOptions(Dir, V.Threads, V.StealSeed));
      size_t Skipped = 99;
      ASSERT_EQ(Engine.restoreSessions(&Skipped), 1u);
      EXPECT_EQ(Skipped, 0u);
      drain(Engine, "s", C, Seen);

      SessionInfo Info;
      std::string Err;
      ASSERT_TRUE(Engine.sessionInfo("s", Info, Err));
      EXPECT_TRUE(Info.Done);
    }
    EXPECT_EQ(Seen, Reference);
    std::filesystem::remove_all(Dir);
  }
}

// A snapshot cadence above 1 restores to the last multiple of the
// cadence; the client's stale ticket is then rejected and a re-suggest
// resynchronizes.
TEST(ServeEngineTest, CheckpointCadenceRestoresToLastSnapshot) {
  std::string Dir = freshStateDir("cadence");
  ServeOptions Opts = engineOptions(Dir, 0);
  Opts.CheckpointEveryObserves = 3;
  Client C("atax");
  {
    ServeEngine Engine(Opts);
    std::string Err;
    ASSERT_TRUE(Engine.openSession("s", tinySpec(), Err)) << Err;
    std::vector<std::string> Seen;
    drain(Engine, "s", C, Seen, 8); // snapshots after observes 3 and 6
  }
  {
    ServeEngine Engine(Opts);
    ASSERT_EQ(Engine.restoreSessions(), 1u);
    SessionInfo Info;
    std::string Err;
    ASSERT_TRUE(Engine.sessionInfo("s", Info, Err));
    EXPECT_EQ(Info.Observes, 6u);
  }
  std::filesystem::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Ticket lifecycle and error paths
//===----------------------------------------------------------------------===//

TEST(ServeEngineTest, SuggestIsIdempotentWhileOutstanding) {
  ServeEngine Engine(engineOptions("", 0));
  std::string Err;
  ASSERT_TRUE(Engine.openSession("s", tinySpec(), Err)) << Err;

  Suggestion First, Again;
  ASSERT_TRUE(Engine.suggest("s", First, Err));
  ASSERT_TRUE(Engine.suggest("s", Again, Err));
  EXPECT_EQ(fingerprint(First), fingerprint(Again));
  EXPECT_EQ(First.Phase, SuggestPhase::Explore);

  // Wrong ticket, wrong cost count, then success, then stale ticket.
  std::vector<double> Costs(First.Configs.size() *
                                First.ObservationsPerConfig,
                            0.5);
  EXPECT_FALSE(Engine.observe("s", First.Ticket + 7, Costs, Err));
  EXPECT_FALSE(Engine.observe("s", First.Ticket,
                              std::vector<double>(3, 0.5), Err));
  EXPECT_TRUE(Engine.observe("s", First.Ticket, Costs, Err)) << Err;
  EXPECT_FALSE(Engine.observe("s", First.Ticket, Costs, Err));

  // The next suggestion is a fresh ticket in the refine phase.
  ASSERT_TRUE(Engine.suggest("s", Again, Err));
  EXPECT_EQ(Again.Ticket, First.Ticket + 1);
  EXPECT_EQ(Again.Phase, SuggestPhase::Refine);
}

TEST(ServeEngineTest, ErrorPaths) {
  ServeEngine Engine(engineOptions("", 0));
  std::string Err;
  Suggestion S;
  EXPECT_FALSE(Engine.suggest("nope", S, Err));
  EXPECT_FALSE(Engine.observe("nope", 1, {0.5}, Err));
  SessionInfo Info;
  EXPECT_FALSE(Engine.sessionInfo("nope", Info, Err));
  EXPECT_FALSE(Engine.closeSession("nope"));

  EXPECT_FALSE(Engine.openSession("bad id!", tinySpec(), Err));
  EXPECT_FALSE(Engine.openSession("", tinySpec(), Err));
  SessionSpec Unknown = tinySpec();
  Unknown.Benchmark = "no-such-kernel";
  EXPECT_FALSE(Engine.openSession("s", Unknown, Err));

  ASSERT_TRUE(Engine.openSession("s", tinySpec(), Err)) << Err;
  EXPECT_FALSE(Engine.openSession("s", tinySpec(), Err)); // duplicate

  // Evaluation needs a fitted model; the fresh session is still explore.
  double Rmse = 0.0;
  EXPECT_FALSE(Engine.evaluate("s", Rmse, Err));

  EXPECT_TRUE(Engine.closeSession("s"));
  EXPECT_EQ(Engine.sessionCount(), 0u);
}

// closeSession racing in-flight calls on the same session: the callers
// hold a reference-counted handle, so under ASan/TSan this pins that no
// call ever touches a destroyed session (failed "unknown session" replies
// are the expected outcome, crashes and races are not).
TEST(ServeEngineTest, CloseRacingInFlightCallsIsSafe) {
  ServeEngine Engine(engineOptions("", 0));
  std::atomic<bool> Stop{false};
  std::vector<std::thread> Hammers;
  for (int T = 0; T != 2; ++T)
    Hammers.emplace_back([&Engine, &Stop] {
      while (!Stop.load(std::memory_order_relaxed)) {
        Suggestion S;
        SessionInfo Info;
        std::string Err;
        if (Engine.suggest("raced", S, Err) &&
            S.Phase != SuggestPhase::Done)
          Engine.observe("raced", S.Ticket,
                         std::vector<double>(S.Configs.size() *
                                                 S.ObservationsPerConfig,
                                             0.5),
                         Err);
        Engine.sessionInfo("raced", Info, Err);
      }
    });
  std::string Err;
  for (int Round = 0; Round != 50; ++Round) {
    ASSERT_TRUE(Engine.openSession("raced", tinySpec(Round + 1), Err))
        << Err;
    EXPECT_TRUE(Engine.closeSession("raced"));
  }
  Stop = true;
  for (std::thread &H : Hammers)
    H.join();
  EXPECT_EQ(Engine.sessionCount(), 0u);
}

TEST(ServeEngineTest, CorruptSnapshotsAreSkippedNotFatal) {
  std::string Dir = freshStateDir("corrupt");
  {
    ServeEngine Engine(engineOptions(Dir, 0));
    std::string Err;
    ASSERT_TRUE(Engine.openSession("good", tinySpec(), Err)) << Err;
    Client C("atax");
    std::vector<std::string> Seen;
    drain(Engine, "good", C, Seen, 4);
  }
  // A non-snapshot file and a truncated real snapshot in the state dir.
  {
    std::ofstream Bad(Dir + "/sess-bad.alsv", std::ios::binary);
    Bad << "this is not a snapshot";
  }
  {
    std::ifstream Good(Dir + "/sess-good.alsv", std::ios::binary);
    std::string Bytes((std::istreambuf_iterator<char>(Good)),
                      std::istreambuf_iterator<char>());
    std::ofstream Trunc(Dir + "/sess-trunc.alsv", std::ios::binary);
    Trunc.write(Bytes.data(), std::streamsize(Bytes.size() / 2));
  }
  {
    ServeEngine Engine(engineOptions(Dir, 0));
    size_t Skipped = 0;
    EXPECT_EQ(Engine.restoreSessions(&Skipped), 1u);
    EXPECT_EQ(Skipped, 2u);
    EXPECT_EQ(Engine.sessionIds(), std::vector<std::string>{"good"});
  }
  std::filesystem::remove_all(Dir);
}

TEST(ServeEngineTest, SnapshotFailureDegradesAndRetryRecovers) {
  std::string Dir = freshStateDir("dirty");
  ServeEngine Engine(engineOptions(Dir, 0));
  std::string Err;
  ASSERT_TRUE(Engine.openSession("s", tinySpec(), Err)) << Err;
  Client C("atax");
  std::vector<std::string> Seen;
  drain(Engine, "s", C, Seen, 2);

  // Every snapshot write now fails: observes must keep succeeding (the
  // session serves from memory) with the session reported dirty.
  FailSpec Fault;
  Fault.Errno = ENOSPC;
  armFailPoint("snapshot.write", Fault);
  drain(Engine, "s", C, Seen, 2);
  SessionInfo Info;
  ASSERT_TRUE(Engine.sessionInfo("s", Info, Err)) << Err;
  EXPECT_TRUE(Info.SnapshotDirty);
  disarmAllFailPoints();

  // The next observe on the cadence retries and recovers...
  drain(Engine, "s", C, Seen, 1);
  ASSERT_TRUE(Engine.sessionInfo("s", Info, Err)) << Err;
  EXPECT_FALSE(Info.SnapshotDirty);

  // ...and so does snapshotAll (the SIGTERM drain path).
  armFailPoint("snapshot.write", Fault);
  drain(Engine, "s", C, Seen, 1);
  ASSERT_TRUE(Engine.sessionInfo("s", Info, Err)) << Err;
  EXPECT_TRUE(Info.SnapshotDirty);
  disarmAllFailPoints();
  EXPECT_EQ(Engine.snapshotAll(), 1u);
  ASSERT_TRUE(Engine.sessionInfo("s", Info, Err)) << Err;
  EXPECT_FALSE(Info.SnapshotDirty);

  // The recovered snapshot is current: a restored engine's next
  // suggestion is byte-identical to the live engine's.
  Suggestion Live;
  ASSERT_TRUE(Engine.suggest("s", Live, Err)) << Err;
  ServeEngine Restored(engineOptions(Dir, 0));
  ASSERT_EQ(Restored.restoreSessions(), 1u);
  Suggestion FromDisk;
  ASSERT_TRUE(Restored.suggest("s", FromDisk, Err)) << Err;
  EXPECT_EQ(fingerprint(FromDisk), fingerprint(Live));
  std::filesystem::remove_all(Dir);
}

TEST(ServeEngineTest, InjectedRestoreFaultSkipsNotFatal) {
  std::string Dir = freshStateDir("restorefault");
  {
    ServeEngine Engine(engineOptions(Dir, 0));
    std::string Err;
    ASSERT_TRUE(Engine.openSession("a", tinySpec(1), Err)) << Err;
    ASSERT_TRUE(Engine.openSession("b", tinySpec(2), Err)) << Err;
  }
  // The first snapshot read fails (as an unreadable file would); the
  // daemon must skip it and still restore the other session.
  FailSpec Fault;
  Fault.Errno = EIO;
  Fault.Count = 1;
  armFailPoint("snapshot.restore", Fault);
  ServeEngine Engine(engineOptions(Dir, 0));
  size_t Skipped = 0;
  EXPECT_EQ(Engine.restoreSessions(&Skipped), 1u);
  EXPECT_EQ(Skipped, 1u);
  EXPECT_EQ(Engine.sessionIds(), std::vector<std::string>{"b"});
  disarmAllFailPoints();
  std::filesystem::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Wire protocol
//===----------------------------------------------------------------------===//

namespace {

/// Dispatches one request and parses the reply object.
JsonValue roundTrip(ServeEngine &Engine, const std::string &Request,
                    bool *WantShutdown = nullptr) {
  std::string Reply;
  bool Shutdown = handleRequestLine(Engine, Request, Reply);
  if (WantShutdown)
    *WantShutdown = Shutdown;
  JsonValue Root;
  EXPECT_TRUE(parseJson(Reply.c_str(), Root)) << Reply;
  EXPECT_EQ(Root.K, JsonValue::Kind::Object) << Reply;
  return Root;
}

bool replyOk(const JsonValue &Reply) {
  const JsonValue *Ok = Reply.field("ok");
  return Ok && Ok->K == JsonValue::Kind::Bool && Ok->BoolValue;
}

} // namespace

TEST(ServeWireTest, FullExchange) {
  // The wire spec's scale comes from the environment; pin it small.
  ::setenv("ALIC_SCALE", "smoke", 1);
  ServeEngine Engine(engineOptions("", 0));

  EXPECT_TRUE(replyOk(roundTrip(Engine, "{\"op\":\"ping\"}")));

  JsonValue Opened = roundTrip(
      Engine, "{\"op\":\"open\",\"session\":\"w\",\"spec\":{"
              "\"benchmark\":\"atax\",\"model\":\"dynatree\","
              "\"scorer\":\"alm\",\"plan\":\"seq:4\",\"seed\":9,"
              "\"max_examples\":6}}");
  ASSERT_TRUE(replyOk(Opened));

  // Suggest returns the explore-phase seed configs and a ticket.
  JsonValue Suggested =
      roundTrip(Engine, "{\"op\":\"suggest\",\"session\":\"w\"}");
  ASSERT_TRUE(replyOk(Suggested));
  std::string Phase;
  ASSERT_TRUE(jsonStringField(Suggested, "phase", Phase));
  EXPECT_EQ(Phase, "explore");
  double Ticket = 0, PerConfig = 0;
  ASSERT_TRUE(jsonNumberField(Suggested, "ticket", Ticket));
  ASSERT_TRUE(
      jsonNumberField(Suggested, "observations_per_config", PerConfig));
  const JsonValue *Configs = Suggested.field("configs");
  ASSERT_TRUE(Configs && Configs->K == JsonValue::Kind::Array);
  ASSERT_FALSE(Configs->Items.empty());

  // Re-suggest returns the identical ticket (idempotency on the wire).
  JsonValue Again = roundTrip(Engine, "{\"op\":\"suggest\",\"session\":\"w\"}");
  double Ticket2 = -1;
  ASSERT_TRUE(jsonNumberField(Again, "ticket", Ticket2));
  EXPECT_EQ(Ticket, Ticket2);

  // Observe with the right number of costs.
  size_t NumCosts = Configs->Items.size() * size_t(PerConfig);
  std::string Observe = "{\"op\":\"observe\",\"session\":\"w\",\"ticket\":" +
                        std::to_string(uint64_t(Ticket)) + ",\"costs\":[";
  for (size_t I = 0; I != NumCosts; ++I)
    Observe += (I ? ",0.5" : "0.5");
  Observe += "]}";
  EXPECT_TRUE(replyOk(roundTrip(Engine, Observe)));

  // A stale ticket is refused without advancing the session.
  EXPECT_FALSE(replyOk(roundTrip(Engine, Observe)));

  JsonValue Info = roundTrip(Engine, "{\"op\":\"info\",\"session\":\"w\"}");
  ASSERT_TRUE(replyOk(Info));
  double Observes = 0;
  ASSERT_TRUE(jsonNumberField(Info, "observes", Observes));
  EXPECT_EQ(Observes, 1.0);
  JsonValue Eval = roundTrip(Engine, "{\"op\":\"eval\",\"session\":\"w\"}");
  ASSERT_TRUE(replyOk(Eval));
  double Rmse = -1;
  ASSERT_TRUE(jsonNumberField(Eval, "rmse", Rmse));
  EXPECT_GE(Rmse, 0.0);

  EXPECT_TRUE(replyOk(roundTrip(Engine, "{\"op\":\"close\",\"session\":\"w\"}")));
  EXPECT_EQ(Engine.sessionCount(), 0u);
}

TEST(ServeWireTest, ErrorsAndShutdown) {
  ServeEngine Engine(engineOptions("", 0));

  EXPECT_FALSE(replyOk(roundTrip(Engine, "not json at all")));
  EXPECT_FALSE(replyOk(roundTrip(Engine, "{\"session\":\"x\"}")));
  EXPECT_FALSE(replyOk(roundTrip(Engine, "{\"op\":\"sugest\",\"session\":\"x\"}")));
  EXPECT_FALSE(replyOk(roundTrip(Engine, "{\"op\":\"suggest\",\"session\":\"x\"}")));
  EXPECT_FALSE(replyOk(roundTrip(
      Engine, "{\"op\":\"open\",\"session\":\"x\",\"spec\":{\"model\":\"svm\"}}")));
  EXPECT_FALSE(replyOk(roundTrip(
      Engine,
      "{\"op\":\"open\",\"session\":\"x\",\"spec\":{\"plan\":\"always\"}}")));

  // Every error above left the engine untouched.
  EXPECT_EQ(Engine.sessionCount(), 0u);

  bool Shutdown = false;
  EXPECT_TRUE(replyOk(roundTrip(Engine, "{\"op\":\"shutdown\"}", &Shutdown)));
  EXPECT_TRUE(Shutdown);
}

//===----------------------------------------------------------------------===//
// Query policies over the serve path
//===----------------------------------------------------------------------===//

// A cost-range session killed mid-flight must replay every skip decision
// bit-identically on restore — the skipped configs are in the
// fingerprint — across worker counts and steal seeds.
TEST(ServeEngineTest, PolicySkipsReplayIdenticallyAcrossRestarts) {
  SessionSpec Spec = tinySpec();
  Spec.Query.Kind = QueryPolicyKind::CostRange;
  // Aggressive constants: at this tiny stream length the defaults'
  // regret budget is still loose, and this test needs skips to happen.
  Spec.Query.Mellowness = 0.001;
  Spec.Query.RangeC1 = 0.1;

  std::vector<std::string> Reference;
  {
    ServeEngine Engine(engineOptions("", 0));
    std::string Err;
    ASSERT_TRUE(Engine.openSession("ref", Spec, Err)) << Err;
    Client C("atax");
    drain(Engine, "ref", C, Reference);
    ASSERT_GT(Reference.size(), 4u);
  }
  // The policy must have declined something, or this pins nothing.
  size_t WithSkips = 0;
  for (const std::string &F : Reference)
    if (F.find("skipped:|") != std::string::npos)
      ++WithSkips;
  ASSERT_GT(WithSkips, 0u);

  struct Variant {
    unsigned Threads;
    uint64_t StealSeed;
    const char *Name;
  };
  const Variant Variants[] = {
      {0, 0x57ea1ull, "w0"},
      {1, 0x57ea1ull, "w1"},
      {8, 0x57ea1ull, "w8"},
      {8, 0xfeedull, "w8-steal"},
  };
  const size_t KillAfter = 3;

  for (const Variant &V : Variants) {
    SCOPED_TRACE(V.Name);
    std::string Dir = freshStateDir(std::string("policy_restart_") + V.Name);
    Client C("atax");
    std::vector<std::string> Seen;
    {
      ServeEngine Engine(engineOptions(Dir, V.Threads, V.StealSeed));
      std::string Err;
      ASSERT_TRUE(Engine.openSession("s", Spec, Err)) << Err;
      drain(Engine, "s", C, Seen, KillAfter);
    }
    {
      ServeEngine Engine(engineOptions(Dir, V.Threads, V.StealSeed));
      size_t Skipped = 99;
      ASSERT_EQ(Engine.restoreSessions(&Skipped), 1u);
      EXPECT_EQ(Skipped, 0u);
      drain(Engine, "s", C, Seen);
    }
    EXPECT_EQ(Seen, Reference);
    std::filesystem::remove_all(Dir);
  }
}

TEST(ServeWireTest, PolicyFieldsOnTheWire) {
  ::setenv("ALIC_SCALE", "smoke", 1);
  ServeEngine Engine(engineOptions("", 0));

  // An unknown policy token is refused and opens nothing.
  EXPECT_FALSE(replyOk(roundTrip(
      Engine,
      "{\"op\":\"open\",\"session\":\"q\",\"spec\":{\"policy\":\"maybe\"}}")));
  EXPECT_EQ(Engine.sessionCount(), 0u);

  ASSERT_TRUE(replyOk(roundTrip(
      Engine, "{\"op\":\"open\",\"session\":\"q\",\"spec\":{"
              "\"benchmark\":\"atax\",\"plan\":\"seq:4\",\"seed\":9,"
              "\"max_examples\":6,\"policy\":\"cost:0.1:0.03\"}}")));

  // Suggest replies always carry the skipped array (empty pre-refine).
  JsonValue Suggested =
      roundTrip(Engine, "{\"op\":\"suggest\",\"session\":\"q\"}");
  ASSERT_TRUE(replyOk(Suggested));
  const JsonValue *Skipped = Suggested.field("skipped");
  ASSERT_TRUE(Skipped && Skipped->K == JsonValue::Kind::Array);
  EXPECT_TRUE(Skipped->Items.empty());

  // Info splits the consumed refine picks into queries + skips.
  JsonValue Info = roundTrip(Engine, "{\"op\":\"info\",\"session\":\"q\"}");
  ASSERT_TRUE(replyOk(Info));
  double Queries = -1, Skips = -1;
  ASSERT_TRUE(jsonNumberField(Info, "queries", Queries));
  ASSERT_TRUE(jsonNumberField(Info, "skips", Skips));
  EXPECT_EQ(Queries, 0.0);
  EXPECT_EQ(Skips, 0.0);
}

//===- tests/ir_test.cpp - ir/ unit tests ---------------------*- C++ -*-===//

#include "ir/AffineExpr.h"
#include "ir/Interp.h"
#include "ir/Kernel.h"
#include "spapt/Kernels.h"

#include <gtest/gtest.h>

using namespace alic;

//===----------------------------------------------------------------------===//
// AffineExpr
//===----------------------------------------------------------------------===//

TEST(AffineExprTest, EvaluateBasics) {
  AffineExpr E = AffineExpr::scaledVar(0, 2, 5); // 2*v0 + 5
  EXPECT_EQ(E.evaluate({3}), 11);
  EXPECT_EQ(E.coefficient(0), 2);
  EXPECT_EQ(E.constantTerm(), 5);
  EXPECT_TRUE(E.references(0));
  EXPECT_FALSE(E.references(1));
}

TEST(AffineExprTest, AdditionMergesTerms) {
  AffineExpr A = AffineExpr::var(0);
  AffineExpr B = AffineExpr::scaledVar(0, 2, 1);
  AffineExpr C = A + B; // 3*v0 + 1
  EXPECT_EQ(C.coefficient(0), 3);
  EXPECT_EQ(C.constantTerm(), 1);
  EXPECT_EQ(C.terms().size(), 1u);
}

TEST(AffineExprTest, CancellationDropsTerm) {
  AffineExpr A = AffineExpr::scaledVar(1, 3);
  AffineExpr B = AffineExpr::scaledVar(1, -3);
  AffineExpr C = A + B;
  EXPECT_TRUE(C.isConstant());
  EXPECT_EQ(C.constantTerm(), 0);
}

TEST(AffineExprTest, SubstituteShift) {
  // v0 + 2*v1 with v1 -> v1 + 3 gives v0 + 2*v1 + 6.
  AffineExpr E = AffineExpr::var(0) + AffineExpr::scaledVar(1, 2);
  AffineExpr S = E.substituteShift(1, 3);
  EXPECT_EQ(S.coefficient(0), 1);
  EXPECT_EQ(S.coefficient(1), 2);
  EXPECT_EQ(S.constantTerm(), 6);
}

TEST(AffineExprTest, SubstituteVarRewritesStripMine) {
  // i with i -> 4*it + 2.
  AffineExpr E = AffineExpr::scaledVar(0, 3, 1); // 3i + 1
  AffineExpr S = E.substituteVar(0, 5, 4, 2);    // 12*v5 + 7
  EXPECT_EQ(S.coefficient(5), 12);
  EXPECT_EQ(S.coefficient(0), 0);
  EXPECT_EQ(S.constantTerm(), 7);
}

TEST(AffineExprTest, ToStringReadable) {
  AffineExpr E = AffineExpr::scaledVar(0, 2, -1) + AffineExpr::scaledVar(1, -1);
  EXPECT_EQ(E.toString({"i", "j"}), "2*i - j - 1");
  EXPECT_EQ(AffineExpr::constant(4).toString({}), "4");
}

//===----------------------------------------------------------------------===//
// Kernel structure
//===----------------------------------------------------------------------===//

TEST(KernelTest, MmStructure) {
  KernelBundle B = buildMm(8);
  EXPECT_EQ(B.K.name(), "mm");
  EXPECT_EQ(B.K.numArrays(), 3u);
  EXPECT_EQ(B.K.countLoops(), 3u);
  EXPECT_EQ(B.K.countStmts(), 1u);
  EXPECT_EQ(B.Params.size(), 6u);
}

TEST(KernelTest, FindLoopLocatesNestedLoops) {
  KernelBundle B = buildMm(8);
  for (LoopVarId V = 0; V != 3; ++V) {
    LoopNode *L = B.K.findLoop(V);
    ASSERT_NE(L, nullptr);
    EXPECT_EQ(L->Var, V);
  }
  EXPECT_EQ(B.K.findLoop(99), nullptr);
}

TEST(KernelTest, CloneIsDeep) {
  KernelBundle B = buildMm(8);
  Kernel Copy(B.K);
  // Mutating the copy must not affect the original.
  Copy.findLoop(0)->Step = 7;
  EXPECT_EQ(B.K.findLoop(0)->Step, 1);
  EXPECT_EQ(Copy.findLoop(0)->Step, 7);
}

TEST(KernelTest, PrinterShowsLoopsAndStatement) {
  KernelBundle B = buildMm(4);
  std::string S = B.K.toString();
  EXPECT_NE(S.find("kernel mm"), std::string::npos);
  EXPECT_NE(S.find("for (i1 = 0; i1 < 4; i1++)"), std::string::npos);
  EXPECT_NE(S.find("C[i1][i2] += "), std::string::npos);
}

TEST(KernelTest, StmtFlopsCounting) {
  KernelBundle B = buildMm(4);
  B.K.forEachStmt([](const StmtNode &S) {
    // C += A*B: one multiply + one accumulate add.
    EXPECT_EQ(S.flops(), 3u);
  });
}

//===----------------------------------------------------------------------===//
// Interpreter
//===----------------------------------------------------------------------===//

TEST(InterpTest, MmMatchesHandwrittenMatmul) {
  const int64_t N = 6;
  KernelBundle B = buildMm(N);
  Interpreter I(B.K);
  InterpResult R = I.run();
  EXPECT_EQ(R.StmtInstances, uint64_t(N * N * N));

  // Reference: C[i][j] = C0[i][j] + sum_k A[i][k] * B[k][j] with the same
  // deterministic initialization.
  auto AInit = [&](int64_t Row, int64_t Col) {
    return initialArrayValue(0, size_t(Row * N + Col));
  };
  auto BInit = [&](int64_t Row, int64_t Col) {
    return initialArrayValue(1, size_t(Row * N + Col));
  };
  auto CInit = [&](int64_t Row, int64_t Col) {
    return initialArrayValue(2, size_t(Row * N + Col));
  };
  const std::vector<double> &C = I.array(2);
  for (int64_t Row = 0; Row != N; ++Row)
    for (int64_t Col = 0; Col != N; ++Col) {
      double Expect = CInit(Row, Col);
      for (int64_t K = 0; K != N; ++K)
        Expect += AInit(Row, K) * BInit(K, Col);
      EXPECT_NEAR(C[size_t(Row * N + Col)], Expect, 1e-9);
    }
}

TEST(InterpTest, TriangularLoopInstanceCount) {
  // lu: scaling nest has sum_{k<N-1}(N-k-1) instances, update nest the
  // squares; total = sum (N-1-k) + (N-1-k)^2 for k in [0, N-1).
  const int64_t N = 7;
  KernelBundle B = buildLu(N);
  Interpreter I(B.K);
  InterpResult R = I.run();
  uint64_t Expect = 0;
  for (int64_t K = 0; K + 1 < N; ++K) {
    uint64_t M = uint64_t(N - K - 1);
    Expect += M + M * M;
  }
  EXPECT_EQ(R.StmtInstances, Expect);
}

TEST(InterpTest, DeterministicAcrossRuns) {
  KernelBundle B = buildJacobi(10, 3);
  Interpreter I1(B.K), I2(B.K);
  EXPECT_EQ(I1.run().Checksum, I2.run().Checksum);
}

TEST(InterpTest, InitialValuesInHalfOpenUnitRange) {
  for (unsigned Arr = 0; Arr != 5; ++Arr)
    for (size_t Idx = 0; Idx != 1000; ++Idx) {
      double V = initialArrayValue(Arr, Idx);
      EXPECT_GT(V, 0.0);
      EXPECT_LE(V, 1.0);
    }
}

TEST(InterpTest, LoopIterationsTracked) {
  const int64_t N = 5;
  KernelBundle B = buildMm(N);
  InterpResult R = Interpreter(B.K).run();
  EXPECT_EQ(R.LoopIterations, uint64_t(N + N * N + N * N * N));
}

//===----------------------------------------------------------------------===//
// Verification
//===----------------------------------------------------------------------===//

TEST(KernelVerifyTest, AllSpaptKernelsVerify) {
  // Builders call verify(); this re-checks mini instances explicitly.
  buildMm(8).K.verify();
  buildMvt(8).K.verify();
  buildJacobi(8, 2).K.verify();
  buildHessian(8).K.verify();
  buildLu(8).K.verify();
  buildBicgkernel(8).K.verify();
  buildAtax(8).K.verify();
  buildAdi(8, 2).K.verify();
  buildCorrelation(8, 6).K.verify();
  buildGemver(8).K.verify();
  buildDgemv3(8).K.verify();
  SUCCEED();
}

TEST(KernelVerifyTest, VerifierRejectsOutOfScopeVariable) {
  Kernel K("bad");
  unsigned A = K.addArray("A", {4});
  LoopVarId I = K.addLoopVar("i");
  LoopVarId J = K.addLoopVar("j"); // never declared by a loop
  auto L = std::make_unique<LoopNode>(I, AffineExpr::constant(0),
                                      AffineExpr::constant(4));
  std::vector<ReadTerm> Reads;
  Reads.push_back({ArrayAccess(A, {AffineExpr::var(J)}), 1.0});
  L->append(std::make_unique<StmtNode>(ArrayAccess(A, {AffineExpr::var(I)}),
                                       false, RhsKind::Sum, std::move(Reads)));
  K.appendTopLevel(std::move(L));
  EXPECT_DEATH(K.verify(), "out-of-scope");
}

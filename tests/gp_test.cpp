//===- tests/gp_test.cpp - Gaussian-process tests -------------*- C++ -*-===//

#include "gp/GaussianProcess.h"
#include "support/Rng.h"
#include "support/Scheduler.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace alic;

namespace {

GpConfig fixedConfig(double Length = 0.7, double Noise = 1e-4) {
  GpConfig C;
  C.OptimizeHyperParams = false;
  C.Init.SignalVariance = 1.0;
  C.Init.LengthScale = Length;
  C.Init.NoiseVariance = Noise;
  return C;
}

/// Deterministic regression sample in 2 dims.
void makeSample(size_t N, uint64_t Seed, std::vector<std::vector<double>> &X,
                std::vector<double> &Y) {
  Rng R(Seed);
  X.clear();
  Y.clear();
  for (size_t I = 0; I != N; ++I) {
    X.push_back({R.nextUniform(-2, 2), R.nextUniform(-2, 2)});
    Y.push_back(std::sin(X.back()[0]) + 0.3 * X.back()[1] +
                0.02 * R.nextGaussian());
  }
}

} // namespace

TEST(GpTest, InterpolatesCleanData) {
  GaussianProcess M(fixedConfig());
  std::vector<std::vector<double>> X = {{-1.0}, {-0.3}, {0.4}, {1.0}};
  std::vector<double> Y;
  for (const auto &Xi : X)
    Y.push_back(std::sin(2.0 * Xi[0]));
  M.fit(X, Y);
  for (size_t I = 0; I != X.size(); ++I)
    EXPECT_NEAR(M.predict(X[I]).Mean, Y[I], 5e-3);
}

TEST(GpTest, VarianceSmallAtDataLargeFarAway) {
  GaussianProcess M(fixedConfig());
  M.fit({{0.0}, {0.5}}, {1.0, 2.0});
  EXPECT_LT(M.predict({0.0}).Variance, 0.01);
  EXPECT_GT(M.predict({8.0}).Variance, 0.9); // back to the prior
}

TEST(GpTest, MeanRevertsToPriorFarAway) {
  GaussianProcess M(fixedConfig());
  M.fit({{0.0}, {1.0}}, {4.0, 6.0});
  EXPECT_NEAR(M.predict({50.0}).Mean, 5.0, 1e-6); // data mean
}

TEST(GpTest, HyperOptimizationImprovesLikelihood) {
  Rng R(3);
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  for (int I = 0; I != 40; ++I) {
    X.push_back({R.nextUniform(-2, 2)});
    Y.push_back(std::sin(3.0 * X.back()[0]) + 0.05 * R.nextGaussian());
  }
  GaussianProcess Fixed(fixedConfig(5.0, 0.5)); // bad hypers
  Fixed.fit(X, Y);
  GpConfig Opt;
  Opt.OptimizeHyperParams = true;
  Opt.OptimizerRestarts = 30;
  GaussianProcess Tuned(Opt);
  Tuned.fit(X, Y);
  EXPECT_GT(Tuned.logMarginalLikelihood(), Fixed.logMarginalLikelihood());
}

TEST(GpTest, UpdateRefitsAndAbsorbsPoint) {
  GaussianProcess M(fixedConfig());
  M.fit({{0.0}, {1.0}}, {0.0, 1.0});
  M.update({2.0}, 4.0);
  EXPECT_EQ(M.numObservations(), 3u);
  EXPECT_NEAR(M.predict({2.0}).Mean, 4.0, 0.05);
}

TEST(GpTest, AlcPositiveAndLocalized) {
  GaussianProcess M(fixedConfig(0.5));
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  for (double V = -2.0; V <= 0.0; V += 0.25) {
    X.push_back({V});
    Y.push_back(V * V);
  }
  M.fit(X, Y);
  // Reference points on the unexplored right side.
  std::vector<std::vector<double>> Ref;
  for (double V = 0.5; V <= 2.0; V += 0.25)
    Ref.push_back({V});
  std::vector<double> Scores =
      M.alcScores({{1.2}, {-1.2}}, Ref);
  EXPECT_GT(Scores[0], 0.0);
  // A candidate inside the unexplored region helps the reference set more.
  EXPECT_GT(Scores[0], Scores[1]);
}

TEST(GpTest, DeterministicGivenSeed) {
  Rng R(5);
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  for (int I = 0; I != 20; ++I) {
    X.push_back({R.nextUniform(-1, 1)});
    Y.push_back(X.back()[0]);
  }
  GpConfig C;
  C.Seed = 42;
  GaussianProcess M1(C), M2(C);
  M1.fit(X, Y);
  M2.fit(X, Y);
  EXPECT_EQ(M1.predict({0.2}).Mean, M2.predict({0.2}).Mean);
  EXPECT_EQ(M1.hyperParams().LengthScale, M2.hyperParams().LengthScale);
}

TEST(GpTest, IncrementalUpdateMatchesFromScratchFit) {
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  makeSample(48, 7, X, Y);

  // One model seeds on 16 points and absorbs the rest through the O(n^2)
  // incremental path; the other sees the full batch at once.
  GaussianProcess Inc(fixedConfig());
  Inc.fit({X.begin(), X.begin() + 16}, {Y.begin(), Y.begin() + 16});
  for (size_t I = 16; I != X.size(); ++I)
    Inc.update(X[I], Y[I]);

  GaussianProcess Scratch(fixedConfig());
  Scratch.fit(X, Y);

  ASSERT_EQ(Inc.numObservations(), Scratch.numObservations());
  Rng R(8);
  for (int Probe = 0; Probe != 50; ++Probe) {
    std::vector<double> P = {R.nextUniform(-2, 2), R.nextUniform(-2, 2)};
    Prediction A = Inc.predict(P), B = Scratch.predict(P);
    EXPECT_NEAR(A.Mean, B.Mean, 1e-9);
    EXPECT_NEAR(A.Variance, B.Variance, 1e-9);
  }
  EXPECT_NEAR(Inc.logMarginalLikelihood(), Scratch.logMarginalLikelihood(),
              1e-9);
}

TEST(GpTest, IncrementalAndRefitModesAgreeBitwise) {
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  makeSample(40, 11, X, Y);

  GpConfig IncCfg = fixedConfig();
  IncCfg.Update = GpUpdateMode::Incremental;
  GpConfig RefitCfg = fixedConfig();
  RefitCfg.Update = GpUpdateMode::Refit;

  GaussianProcess Inc(IncCfg), Refit(RefitCfg);
  Inc.fit({X.begin(), X.begin() + 10}, {Y.begin(), Y.begin() + 10});
  Refit.fit({X.begin(), X.begin() + 10}, {Y.begin(), Y.begin() + 10});
  for (size_t I = 10; I != X.size(); ++I) {
    Inc.update(X[I], Y[I]);
    Refit.update(X[I], Y[I]);
  }
  // Cholesky::extend reproduces factorize()'s arithmetic, so the two
  // update modes are not merely close — they are the same numbers.
  Rng R(12);
  for (int Probe = 0; Probe != 20; ++Probe) {
    std::vector<double> P = {R.nextUniform(-2, 2), R.nextUniform(-2, 2)};
    EXPECT_EQ(Inc.predict(P).Mean, Refit.predict(P).Mean);
    EXPECT_EQ(Inc.predict(P).Variance, Refit.predict(P).Variance);
  }
  EXPECT_EQ(Inc.logMarginalLikelihood(), Refit.logMarginalLikelihood());
}

TEST(GpTest, IncrementalUpdateSurvivesNonFiniteObservation) {
  GaussianProcess M(fixedConfig());
  M.fit({{0.0}, {1.0}}, {0.0, 1.0});
  double Before = M.predict({0.5}).Mean;
  // A NaN feature defeats both the rank-1 extension and the fallback
  // refactorization; the model must drop the point and stay usable.
  M.update({std::nan("")}, 2.0);
  EXPECT_EQ(M.numObservations(), 2u);
  EXPECT_EQ(M.predict({0.5}).Mean, Before);
  // And a well-formed observation still lands afterwards.
  M.update({2.0}, 4.0);
  EXPECT_EQ(M.numObservations(), 3u);
  EXPECT_NEAR(M.predict({2.0}).Mean, 4.0, 0.05);
}

TEST(GpTest, DeferredModeBuffersUntilRefit) {
  GpConfig C = fixedConfig();
  C.Update = GpUpdateMode::Deferred;
  GaussianProcess M(C);
  M.fit({{0.0}, {1.0}}, {0.0, 1.0});
  double Before = M.predict({2.0}).Mean;
  M.update({2.0}, 4.0);
  EXPECT_EQ(M.numObservations(), 3u);
  // Still predicting from the stale factorization...
  EXPECT_EQ(M.predict({2.0}).Mean, Before);
  // ...until an explicit refit absorbs the buffered point.
  M.refit();
  EXPECT_NEAR(M.predict({2.0}).Mean, 4.0, 0.05);
}

TEST(GpTest, ParallelAlcBitIdenticalToSequential) {
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  makeSample(60, 13, X, Y);
  GaussianProcess M(fixedConfig());
  M.fit(X, Y);

  std::vector<std::vector<double>> Cands, Ref;
  Rng R(14);
  for (int I = 0; I != 100; ++I)
    Cands.push_back({R.nextUniform(-2, 2), R.nextUniform(-2, 2)});
  for (int I = 0; I != 30; ++I)
    Ref.push_back({R.nextUniform(-2, 2), R.nextUniform(-2, 2)});

  std::vector<double> Sequential = M.alcScores(Cands, Ref);
  for (unsigned Threads : {1u, 3u, 7u}) {
    Scheduler Pool(Threads);
    ScoreContext Ctx;
    Ctx.Pool = &Pool;
    EXPECT_EQ(M.alcScores(Cands, Ref, Ctx), Sequential)
        << "thread count " << Threads;
  }
}

TEST(GpTest, HandlesDuplicateInputsViaNugget) {
  GaussianProcess M(fixedConfig(0.7, 1e-3));
  // Two noisy observations at the same x must not break the factorization.
  M.fit({{1.0}, {1.0}, {2.0}}, {3.0, 3.2, 5.0});
  Prediction P = M.predict({1.0});
  EXPECT_NEAR(P.Mean, 3.1, 0.2);
}

TEST(GpTest, WarmStartReoptimizationNeverWorseThanCold) {
  // Re-optimization (a second fit on the same model) seeds restart 0
  // from the previous optimum; the random restarts draw the same stream
  // as a cold search, so the selected log marginal likelihood is
  // numerically no worse than a freshly constructed model's.
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  makeSample(50, 17, X, Y);

  GpConfig Opt;
  Opt.OptimizeHyperParams = true;
  Opt.OptimizerRestarts = 8;

  GaussianProcess Warm(Opt);
  Warm.fit(X, Y); // first fit: establishes the warm-start candidate
  std::vector<std::vector<double>> X2 = X;
  std::vector<double> Y2 = Y;
  makeSample(20, 18, X, Y); // grow the training set a little
  X2.insert(X2.end(), X.begin(), X.end());
  Y2.insert(Y2.end(), Y.begin(), Y.end());
  Warm.fit(X2, Y2);

  GaussianProcess Cold(Opt);
  Cold.fit(X2, Y2);
  EXPECT_GE(Warm.logMarginalLikelihood(), Cold.logMarginalLikelihood());
}

TEST(GpTest, FirstOptimizedFitUnaffectedByWarmStartFlag) {
  // No previous optimum exists on the first fit, so the flag must not
  // change anything — the campaign ledger stays byte-identical.
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  makeSample(40, 23, X, Y);

  GpConfig WarmCfg;
  WarmCfg.OptimizeHyperParams = true;
  WarmCfg.OptimizerRestarts = 8;
  GpConfig ColdCfg = WarmCfg;
  ColdCfg.WarmStart = false;

  GaussianProcess Warm(WarmCfg), Cold(ColdCfg);
  Warm.fit(X, Y);
  Cold.fit(X, Y);
  EXPECT_EQ(Warm.logMarginalLikelihood(), Cold.logMarginalLikelihood());
  EXPECT_EQ(Warm.hyperParams().SignalVariance,
            Cold.hyperParams().SignalVariance);
  EXPECT_EQ(Warm.hyperParams().LengthScale, Cold.hyperParams().LengthScale);
  EXPECT_EQ(Warm.hyperParams().NoiseVariance,
            Cold.hyperParams().NoiseVariance);
  EXPECT_EQ(Warm.predict({0.1, -0.2}).Mean, Cold.predict({0.1, -0.2}).Mean);
}

//===- tests/gp_test.cpp - Gaussian-process tests -------------*- C++ -*-===//

#include "gp/GaussianProcess.h"
#include "support/Rng.h"
#include "support/Scheduler.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace alic;

namespace {

GpConfig fixedConfig(double Length = 0.7, double Noise = 1e-4) {
  GpConfig C;
  C.OptimizeHyperParams = false;
  C.Init.SignalVariance = 1.0;
  C.Init.LengthScale = Length;
  C.Init.NoiseVariance = Noise;
  return C;
}

GpConfig sorConfig(unsigned InducingPoints, double Length = 0.7,
                   double Noise = 1e-2) {
  GpConfig C = fixedConfig(Length, Noise);
  C.Approx = GpApprox::SoR;
  C.InducingPoints = InducingPoints;
  return C;
}

/// Deterministic regression sample in 2 dims.
void makeSample(size_t N, uint64_t Seed, std::vector<std::vector<double>> &X,
                std::vector<double> &Y) {
  Rng R(Seed);
  X.clear();
  Y.clear();
  for (size_t I = 0; I != N; ++I) {
    X.push_back({R.nextUniform(-2, 2), R.nextUniform(-2, 2)});
    Y.push_back(std::sin(X.back()[0]) + 0.3 * X.back()[1] +
                0.02 * R.nextGaussian());
  }
}

} // namespace

TEST(GpTest, InterpolatesCleanData) {
  GaussianProcess M(fixedConfig());
  std::vector<std::vector<double>> X = {{-1.0}, {-0.3}, {0.4}, {1.0}};
  std::vector<double> Y;
  for (const auto &Xi : X)
    Y.push_back(std::sin(2.0 * Xi[0]));
  M.fit(X, Y);
  for (size_t I = 0; I != X.size(); ++I)
    EXPECT_NEAR(M.predict(X[I]).Mean, Y[I], 5e-3);
}

TEST(GpTest, VarianceSmallAtDataLargeFarAway) {
  GaussianProcess M(fixedConfig());
  M.fit({{0.0}, {0.5}}, {1.0, 2.0});
  EXPECT_LT(M.predict({0.0}).Variance, 0.01);
  EXPECT_GT(M.predict({8.0}).Variance, 0.9); // back to the prior
}

TEST(GpTest, MeanRevertsToPriorFarAway) {
  GaussianProcess M(fixedConfig());
  M.fit({{0.0}, {1.0}}, {4.0, 6.0});
  EXPECT_NEAR(M.predict({50.0}).Mean, 5.0, 1e-6); // data mean
}

TEST(GpTest, HyperOptimizationImprovesLikelihood) {
  Rng R(3);
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  for (int I = 0; I != 40; ++I) {
    X.push_back({R.nextUniform(-2, 2)});
    Y.push_back(std::sin(3.0 * X.back()[0]) + 0.05 * R.nextGaussian());
  }
  GaussianProcess Fixed(fixedConfig(5.0, 0.5)); // bad hypers
  Fixed.fit(X, Y);
  GpConfig Opt;
  Opt.OptimizeHyperParams = true;
  Opt.OptimizerRestarts = 30;
  GaussianProcess Tuned(Opt);
  Tuned.fit(X, Y);
  EXPECT_GT(Tuned.logMarginalLikelihood(), Fixed.logMarginalLikelihood());
}

TEST(GpTest, UpdateRefitsAndAbsorbsPoint) {
  GaussianProcess M(fixedConfig());
  M.fit({{0.0}, {1.0}}, {0.0, 1.0});
  M.update({2.0}, 4.0);
  EXPECT_EQ(M.numObservations(), 3u);
  EXPECT_NEAR(M.predict({2.0}).Mean, 4.0, 0.05);
}

TEST(GpTest, AlcPositiveAndLocalized) {
  GaussianProcess M(fixedConfig(0.5));
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  for (double V = -2.0; V <= 0.0; V += 0.25) {
    X.push_back({V});
    Y.push_back(V * V);
  }
  M.fit(X, Y);
  // Reference points on the unexplored right side.
  std::vector<std::vector<double>> Ref;
  for (double V = 0.5; V <= 2.0; V += 0.25)
    Ref.push_back({V});
  std::vector<double> Scores =
      M.alcScores({{1.2}, {-1.2}}, Ref);
  EXPECT_GT(Scores[0], 0.0);
  // A candidate inside the unexplored region helps the reference set more.
  EXPECT_GT(Scores[0], Scores[1]);
}

TEST(GpTest, DeterministicGivenSeed) {
  Rng R(5);
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  for (int I = 0; I != 20; ++I) {
    X.push_back({R.nextUniform(-1, 1)});
    Y.push_back(X.back()[0]);
  }
  GpConfig C;
  C.Seed = 42;
  GaussianProcess M1(C), M2(C);
  M1.fit(X, Y);
  M2.fit(X, Y);
  EXPECT_EQ(M1.predict({0.2}).Mean, M2.predict({0.2}).Mean);
  EXPECT_EQ(M1.hyperParams().LengthScale, M2.hyperParams().LengthScale);
}

TEST(GpTest, IncrementalUpdateMatchesFromScratchFit) {
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  makeSample(48, 7, X, Y);

  // One model seeds on 16 points and absorbs the rest through the O(n^2)
  // incremental path; the other sees the full batch at once.
  GaussianProcess Inc(fixedConfig());
  Inc.fit({X.begin(), X.begin() + 16}, {Y.begin(), Y.begin() + 16});
  for (size_t I = 16; I != X.size(); ++I)
    Inc.update(X[I], Y[I]);

  GaussianProcess Scratch(fixedConfig());
  Scratch.fit(X, Y);

  ASSERT_EQ(Inc.numObservations(), Scratch.numObservations());
  Rng R(8);
  for (int Probe = 0; Probe != 50; ++Probe) {
    std::vector<double> P = {R.nextUniform(-2, 2), R.nextUniform(-2, 2)};
    Prediction A = Inc.predict(P), B = Scratch.predict(P);
    EXPECT_NEAR(A.Mean, B.Mean, 1e-9);
    EXPECT_NEAR(A.Variance, B.Variance, 1e-9);
  }
  EXPECT_NEAR(Inc.logMarginalLikelihood(), Scratch.logMarginalLikelihood(),
              1e-9);
}

TEST(GpTest, IncrementalAndRefitModesAgreeBitwise) {
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  makeSample(40, 11, X, Y);

  GpConfig IncCfg = fixedConfig();
  IncCfg.Update = GpUpdateMode::Incremental;
  GpConfig RefitCfg = fixedConfig();
  RefitCfg.Update = GpUpdateMode::Refit;

  GaussianProcess Inc(IncCfg), Refit(RefitCfg);
  Inc.fit({X.begin(), X.begin() + 10}, {Y.begin(), Y.begin() + 10});
  Refit.fit({X.begin(), X.begin() + 10}, {Y.begin(), Y.begin() + 10});
  for (size_t I = 10; I != X.size(); ++I) {
    Inc.update(X[I], Y[I]);
    Refit.update(X[I], Y[I]);
  }
  // Cholesky::extend reproduces factorize()'s arithmetic, so the two
  // update modes are not merely close — they are the same numbers.
  Rng R(12);
  for (int Probe = 0; Probe != 20; ++Probe) {
    std::vector<double> P = {R.nextUniform(-2, 2), R.nextUniform(-2, 2)};
    EXPECT_EQ(Inc.predict(P).Mean, Refit.predict(P).Mean);
    EXPECT_EQ(Inc.predict(P).Variance, Refit.predict(P).Variance);
  }
  EXPECT_EQ(Inc.logMarginalLikelihood(), Refit.logMarginalLikelihood());
}

TEST(GpTest, IncrementalUpdateSurvivesNonFiniteObservation) {
  GaussianProcess M(fixedConfig());
  M.fit({{0.0}, {1.0}}, {0.0, 1.0});
  double Before = M.predict({0.5}).Mean;
  // A NaN feature defeats both the rank-1 extension and the fallback
  // refactorization; the model must drop the point and stay usable.
  M.update({std::nan("")}, 2.0);
  EXPECT_EQ(M.numObservations(), 2u);
  EXPECT_EQ(M.predict({0.5}).Mean, Before);
  // And a well-formed observation still lands afterwards.
  M.update({2.0}, 4.0);
  EXPECT_EQ(M.numObservations(), 3u);
  EXPECT_NEAR(M.predict({2.0}).Mean, 4.0, 0.05);
}

TEST(GpTest, DeferredModeBuffersUntilRefit) {
  GpConfig C = fixedConfig();
  C.Update = GpUpdateMode::Deferred;
  GaussianProcess M(C);
  M.fit({{0.0}, {1.0}}, {0.0, 1.0});
  double Before = M.predict({2.0}).Mean;
  M.update({2.0}, 4.0);
  EXPECT_EQ(M.numObservations(), 3u);
  // Still predicting from the stale factorization...
  EXPECT_EQ(M.predict({2.0}).Mean, Before);
  // ...until an explicit refit absorbs the buffered point.
  M.refit();
  EXPECT_NEAR(M.predict({2.0}).Mean, 4.0, 0.05);
}

TEST(GpTest, ParallelAlcBitIdenticalToSequential) {
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  makeSample(60, 13, X, Y);
  GaussianProcess M(fixedConfig());
  M.fit(X, Y);

  std::vector<std::vector<double>> Cands, Ref;
  Rng R(14);
  for (int I = 0; I != 100; ++I)
    Cands.push_back({R.nextUniform(-2, 2), R.nextUniform(-2, 2)});
  for (int I = 0; I != 30; ++I)
    Ref.push_back({R.nextUniform(-2, 2), R.nextUniform(-2, 2)});

  std::vector<double> Sequential = M.alcScores(Cands, Ref);
  for (unsigned Threads : {1u, 3u, 7u}) {
    Scheduler Pool(Threads);
    ScoreContext Ctx;
    Ctx.Pool = &Pool;
    EXPECT_EQ(M.alcScores(Cands, Ref, Ctx), Sequential)
        << "thread count " << Threads;
  }
}

TEST(GpTest, HandlesDuplicateInputsViaNugget) {
  GaussianProcess M(fixedConfig(0.7, 1e-3));
  // Two noisy observations at the same x must not break the factorization.
  M.fit({{1.0}, {1.0}, {2.0}}, {3.0, 3.2, 5.0});
  Prediction P = M.predict({1.0});
  EXPECT_NEAR(P.Mean, 3.1, 0.2);
}

TEST(GpTest, WarmStartReoptimizationNeverWorseThanCold) {
  // Re-optimization (a second fit on the same model) seeds restart 0
  // from the previous optimum; the random restarts draw the same stream
  // as a cold search, so the selected log marginal likelihood is
  // numerically no worse than a freshly constructed model's.
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  makeSample(50, 17, X, Y);

  GpConfig Opt;
  Opt.OptimizeHyperParams = true;
  Opt.OptimizerRestarts = 8;

  GaussianProcess Warm(Opt);
  Warm.fit(X, Y); // first fit: establishes the warm-start candidate
  std::vector<std::vector<double>> X2 = X;
  std::vector<double> Y2 = Y;
  makeSample(20, 18, X, Y); // grow the training set a little
  X2.insert(X2.end(), X.begin(), X.end());
  Y2.insert(Y2.end(), Y.begin(), Y.end());
  Warm.fit(X2, Y2);

  GaussianProcess Cold(Opt);
  Cold.fit(X2, Y2);
  EXPECT_GE(Warm.logMarginalLikelihood(), Cold.logMarginalLikelihood());
}

TEST(GpTest, FirstOptimizedFitUnaffectedByWarmStartFlag) {
  // No previous optimum exists on the first fit, so the flag must not
  // change anything — the campaign ledger stays byte-identical.
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  makeSample(40, 23, X, Y);

  GpConfig WarmCfg;
  WarmCfg.OptimizeHyperParams = true;
  WarmCfg.OptimizerRestarts = 8;
  GpConfig ColdCfg = WarmCfg;
  ColdCfg.WarmStart = false;

  GaussianProcess Warm(WarmCfg), Cold(ColdCfg);
  Warm.fit(X, Y);
  Cold.fit(X, Y);
  EXPECT_EQ(Warm.logMarginalLikelihood(), Cold.logMarginalLikelihood());
  EXPECT_EQ(Warm.hyperParams().SignalVariance,
            Cold.hyperParams().SignalVariance);
  EXPECT_EQ(Warm.hyperParams().LengthScale, Cold.hyperParams().LengthScale);
  EXPECT_EQ(Warm.hyperParams().NoiseVariance,
            Cold.hyperParams().NoiseVariance);
  EXPECT_EQ(Warm.predict({0.1, -0.2}).Mean, Cold.predict({0.1, -0.2}).Mean);
}

TEST(GpTest, ExtendMatchesFromScratchFitBitwiseAtN500) {
  // The tentpole pin: 400 incremental O(n^2) extensions produce exactly
  // the state of one O(n^3) batch fit — bit for bit, at the scale where
  // the old Matrix-backed extend() paid an (n+1)^2 copy per step.
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  makeSample(500, 29, X, Y);

  GaussianProcess Inc(fixedConfig());
  Inc.fit({X.begin(), X.begin() + 100}, {Y.begin(), Y.begin() + 100});
  for (size_t I = 100; I != X.size(); ++I)
    Inc.update(X[I], Y[I]);

  GaussianProcess Scratch(fixedConfig());
  Scratch.fit(X, Y);

  ASSERT_EQ(Inc.numObservations(), 500u);
  ASSERT_EQ(Scratch.numObservations(), 500u);
  Rng R(30);
  for (int Probe = 0; Probe != 25; ++Probe) {
    std::vector<double> P = {R.nextUniform(-2, 2), R.nextUniform(-2, 2)};
    Prediction A = Inc.predict(P), B = Scratch.predict(P);
    EXPECT_EQ(A.Mean, B.Mean);
    EXPECT_EQ(A.Variance, B.Variance);
  }
  EXPECT_EQ(Inc.logMarginalLikelihood(), Scratch.logMarginalLikelihood());
}

TEST(GpTest, PredictBatchBitIdenticalToPredict) {
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  makeSample(80, 31, X, Y);
  std::vector<std::vector<double>> ProbeRows;
  Rng R(32);
  for (int I = 0; I != 150; ++I) // > one PredictBlock, not a multiple
    ProbeRows.push_back({R.nextUniform(-2, 2), R.nextUniform(-2, 2)});
  FlatRows Probes(ProbeRows);

  for (bool Sor : {false, true}) {
    GaussianProcess M(Sor ? sorConfig(24) : fixedConfig());
    M.fit(X, Y);
    std::vector<Prediction> Batch(Probes.size());
    M.predictBatch(Probes, Probes.size(), Batch.data());
    for (size_t I = 0; I != Probes.size(); ++I) {
      Prediction One = M.predict(Probes[I]);
      EXPECT_EQ(Batch[I].Mean, One.Mean) << (Sor ? "sor " : "exact ") << I;
      EXPECT_EQ(Batch[I].Variance, One.Variance)
          << (Sor ? "sor " : "exact ") << I;
    }
  }
}

TEST(GpTest, BatchedAlmScoresBitIdenticalToPredictLoop) {
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  makeSample(70, 33, X, Y);
  std::vector<std::vector<double>> CandRows;
  Rng R(34);
  for (int I = 0; I != 100; ++I)
    CandRows.push_back({R.nextUniform(-2, 2), R.nextUniform(-2, 2)});
  FlatRows Cands(CandRows);

  for (bool Sor : {false, true}) {
    GaussianProcess M(Sor ? sorConfig(24) : fixedConfig());
    M.fit(X, Y);
    // The blocked multi-RHS path must equal per-candidate predict()...
    std::vector<double> Scores = M.almScores(Cands);
    ASSERT_EQ(Scores.size(), Cands.size());
    for (size_t I = 0; I != Cands.size(); ++I)
      EXPECT_EQ(Scores[I], M.predict(Cands[I]).Variance)
          << (Sor ? "sor " : "exact ") << I;
    // ...and stay bit-identical when sharded across workers.
    for (unsigned Threads : {1u, 7u}) {
      Scheduler Pool(Threads);
      ScoreContext Ctx;
      Ctx.Pool = &Pool;
      EXPECT_EQ(M.almScores(Cands, Ctx), Scores)
          << (Sor ? "sor" : "exact") << " thread count " << Threads;
    }
  }
}

TEST(GpTest, SorDeterministicAcrossWorkersAndStealSeeds) {
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  makeSample(150, 35, X, Y);
  std::vector<std::vector<double>> Cands, Ref;
  Rng R(36);
  for (int I = 0; I != 60; ++I)
    Cands.push_back({R.nextUniform(-2, 2), R.nextUniform(-2, 2)});
  for (int I = 0; I != 20; ++I)
    Ref.push_back({R.nextUniform(-2, 2), R.nextUniform(-2, 2)});

  GaussianProcess Base(sorConfig(32));
  Base.fit(X, Y);
  std::vector<double> BaseAlm = Base.almScores(Cands);
  std::vector<double> BaseAlc = Base.alcScores(Cands, Ref);

  for (unsigned Threads : {1u, 8u}) {
    for (uint64_t StealSeed : {0x5eedull, 0xabcdefull}) {
      Scheduler::Options Opts;
      Opts.Threads = Threads;
      Opts.StealSeed = StealSeed;
      Opts.JitterSeed = hashCombine({StealSeed, 0x11ffull});
      Scheduler Pool(Opts);
      GaussianProcess M(sorConfig(32));
      M.setScheduler(&Pool);
      M.fit(X, Y);
      EXPECT_EQ(M.inducingIndices(), Base.inducingIndices());
      EXPECT_EQ(M.logMarginalLikelihood(), Base.logMarginalLikelihood());
      Rng P(37);
      for (int Probe = 0; Probe != 10; ++Probe) {
        std::vector<double> Pt = {P.nextUniform(-2, 2), P.nextUniform(-2, 2)};
        EXPECT_EQ(M.predict(Pt).Mean, Base.predict(Pt).Mean);
        EXPECT_EQ(M.predict(Pt).Variance, Base.predict(Pt).Variance);
      }
      ScoreContext Ctx;
      Ctx.Pool = &Pool;
      EXPECT_EQ(M.almScores(Cands, Ctx), BaseAlm)
          << Threads << " workers, steal seed " << StealSeed;
      EXPECT_EQ(M.alcScores(Cands, Ref, Ctx), BaseAlc)
          << Threads << " workers, steal seed " << StealSeed;
    }
  }
}

TEST(GpTest, SorWithFullInducingSetTracksExact) {
  // With m = n the subset-of-regressors system is algebraically the
  // exact GP (A = sigma^-2 K (sigma^2 I + K)); only jitter and rounding
  // separate the two implementations.
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  makeSample(40, 38, X, Y);

  GaussianProcess Exact(fixedConfig(0.7, 1e-2));
  Exact.fit(X, Y);
  GaussianProcess Sor(sorConfig(64)); // > n: every point is inducing
  Sor.fit(X, Y);
  ASSERT_EQ(Sor.inducingIndices().size(), 40u);

  Rng R(39);
  for (int Probe = 0; Probe != 30; ++Probe) {
    std::vector<double> P = {R.nextUniform(-2, 2), R.nextUniform(-2, 2)};
    EXPECT_NEAR(Sor.predict(P).Mean, Exact.predict(P).Mean, 5e-3);
  }
  EXPECT_NEAR(Sor.logMarginalLikelihood(), Exact.logMarginalLikelihood(),
              1e-2 * std::abs(Exact.logMarginalLikelihood()) + 1e-2);
}

TEST(GpTest, SorIncrementalUpdateAbsorbsObservations) {
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  makeSample(60, 40, X, Y);

  GaussianProcess M(sorConfig(32));
  M.fit({X.begin(), X.begin() + 40}, {Y.begin(), Y.begin() + 40});
  std::vector<double> Target = {0.8, 0.4};
  double ErrBefore = std::abs(M.predict(Target).Mean - 3.0);
  // Consistent new evidence near an in-range point: the O(m^2) rank-1
  // updates must pull the posterior toward it without a refit.
  for (int I = 0; I != 6; ++I)
    M.update({0.8 + 0.01 * I, 0.4}, 3.0);
  EXPECT_EQ(M.numObservations(), 46u);
  double ErrAfter = std::abs(M.predict(Target).Mean - 3.0);
  EXPECT_LT(ErrAfter, ErrBefore);
  EXPECT_TRUE(std::isfinite(M.logMarginalLikelihood()));

  // The update path is deterministic: an identical replay agrees bitwise.
  GaussianProcess M2(sorConfig(32));
  M2.fit({X.begin(), X.begin() + 40}, {Y.begin(), Y.begin() + 40});
  for (int I = 0; I != 6; ++I)
    M2.update({0.8 + 0.01 * I, 0.4}, 3.0);
  EXPECT_EQ(M2.predict(Target).Mean, M.predict(Target).Mean);
  EXPECT_EQ(M2.logMarginalLikelihood(), M.logMarginalLikelihood());
}

TEST(GpTest, SorDropsNonFiniteObservation) {
  GaussianProcess M(sorConfig(8));
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  makeSample(20, 41, X, Y);
  M.fit(X, Y);
  double Before = M.predict({0.5, 0.5}).Mean;
  M.update({std::nan(""), 0.0}, 2.0);
  EXPECT_EQ(M.numObservations(), 20u);
  EXPECT_EQ(M.predict({0.5, 0.5}).Mean, Before);
  M.update({0.3, 0.3}, 1.0);
  EXPECT_EQ(M.numObservations(), 21u);
  EXPECT_TRUE(std::isfinite(M.predict({0.5, 0.5}).Mean));
}

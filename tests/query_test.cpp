//===- tests/query_test.cpp - query-policy unit tests ---------*- C++ -*-===//
//
// Pins the QueryPolicy layer in isolation: token parsing round-trips,
// the cs_active-style binary search's envelope properties, the
// AlmThreshold variance floor, the CostRange cost-range test, and the
// determinism contract — identical consultation streams produce
// identical decision streams, with no hidden state beyond the labels
// fed through onLabel().
//
//===----------------------------------------------------------------------===//

#include "core/QueryPolicy.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace alic;

TEST(QueryPolicyTest, ParseAndTokenRoundTrip) {
  for (const char *Token :
       {"always", "alm:0:0.05", "alm:0.1:0.3", "cost:0.1:0.03",
        "cost:0.5:0.001"}) {
    QueryPolicyConfig Cfg;
    ASSERT_TRUE(parseQueryPolicy(Token, Cfg)) << Token;
    EXPECT_EQ(queryPolicyToken(Cfg), Token);
  }
}

TEST(QueryPolicyTest, ParseDefaultsAndPartials) {
  QueryPolicyConfig Cfg;
  ASSERT_TRUE(parseQueryPolicy("alm", Cfg));
  EXPECT_EQ(Cfg.Kind, QueryPolicyKind::AlmThreshold);
  EXPECT_EQ(Cfg.AbsFloor, 0.0);
  EXPECT_EQ(Cfg.RelFloor, 0.05);

  ASSERT_TRUE(parseQueryPolicy("cost", Cfg));
  EXPECT_EQ(Cfg.Kind, QueryPolicyKind::CostRange);
  EXPECT_EQ(Cfg.Mellowness, 0.1);
  EXPECT_EQ(Cfg.RangeC1, 0.03);

  ASSERT_TRUE(parseQueryPolicy("cost:0.2", Cfg));
  EXPECT_EQ(Cfg.Mellowness, 0.2);
  EXPECT_EQ(Cfg.RangeC1, 0.03); // second number keeps its default
}

TEST(QueryPolicyTest, ParseRejectsMalformedTokens) {
  QueryPolicyConfig Cfg;
  for (const char *Bad : {"", "sometimes", "always:1", "alm:1:2:3",
                          "cost:x", "cost:", "alm:0.1:"}) {
    EXPECT_FALSE(parseQueryPolicy(Bad, Cfg)) << "accepted '" << Bad << "'";
  }
}

TEST(QueryPolicyTest, AlwaysCreatesNoPolicyObject) {
  // The Always fast path must not consult any policy code at all; the
  // learner's bit-identity to pre-policy builds rests on this nullptr.
  EXPECT_EQ(QueryPolicy::create(QueryPolicyConfig()), nullptr);
  QueryPolicyConfig Cost;
  Cost.Kind = QueryPolicyKind::CostRange;
  EXPECT_NE(QueryPolicy::create(Cost), nullptr);
}

TEST(QueryPolicyTest, BinarySearchEnvelope) {
  // The admissible weight W satisfies W * (F^2 - (F - S*W)^2) <= Delta
  // (up to tolerance) and never exceeds the F/S cap.
  for (double Fhat : {0.5, 1.0, 2.0}) {
    for (double Sens : {0.01, 0.1, 1.0}) {
      for (double Delta : {1e-4, 1e-2, 1.0}) {
        double W = queryBinarySearch(Fhat, Delta, Sens, 1e-6);
        EXPECT_GE(W, 0.0);
        EXPECT_LE(W, Fhat / Sens + 1e-9);
        double Probe = Fhat - Sens * W;
        EXPECT_LE(W * (Fhat * Fhat - Probe * Probe), Delta * (1.0 + 1e-3));
      }
    }
  }
}

TEST(QueryPolicyTest, BinarySearchMonotoneInBudget) {
  // A looser regret budget admits a wider importance weight.
  double Last = 0.0;
  for (double Delta : {1e-4, 1e-3, 1e-2, 1e-1}) {
    double W = queryBinarySearch(1.0, Delta, 0.25, 1e-6);
    EXPECT_GE(W, Last);
    Last = W;
  }
  EXPECT_GT(Last, 0.0);
}

TEST(QueryPolicyTest, AlmThresholdSkipsBelowRelativeFloor) {
  QueryPolicyConfig Cfg;
  Cfg.Kind = QueryPolicyKind::AlmThreshold;
  Cfg.AbsFloor = 0.0;
  Cfg.RelFloor = 0.1;
  auto P = QueryPolicy::create(Cfg);
  ASSERT_NE(P, nullptr);

  QueryDecision D;
  D.Variance = 1.0; // establishes the peak
  EXPECT_TRUE(P->shouldQuery(D));
  D.Variance = 0.5;
  EXPECT_TRUE(P->shouldQuery(D));
  D.Variance = 0.05; // below 0.1 * peak(1.0)
  EXPECT_FALSE(P->shouldQuery(D));
  D.Variance = 2.0; // new peak
  EXPECT_TRUE(P->shouldQuery(D));
  D.Variance = 0.15; // below 0.1 * peak(2.0) now
  EXPECT_FALSE(P->shouldQuery(D));
}

TEST(QueryPolicyTest, AlmThresholdAbsoluteFloorDominates) {
  QueryPolicyConfig Cfg;
  Cfg.Kind = QueryPolicyKind::AlmThreshold;
  Cfg.AbsFloor = 1e30; // unreachable: every consultation is a skip
  auto P = QueryPolicy::create(Cfg);
  QueryDecision D;
  D.Variance = 1e6;
  EXPECT_FALSE(P->shouldQuery(D));
}

TEST(QueryPolicyTest, CostRangeBootstrapsThenSkipsSettledPredictions) {
  QueryPolicyConfig Cfg;
  Cfg.Kind = QueryPolicyKind::CostRange;
  auto P = QueryPolicy::create(Cfg);
  ASSERT_NE(P, nullptr);

  // No labels yet: no cost scale, so the policy must query.
  QueryDecision D;
  D.Mean = 5.0;
  D.Variance = 1e-12;
  D.StreamPosition = 1;
  EXPECT_TRUE(P->shouldQuery(D));

  P->onLabel(1.0);
  EXPECT_TRUE(P->shouldQuery(D)); // one label: still no range
  P->onLabel(9.0);

  // A settled prediction (tiny variance) inside a wide cost range is
  // uninformative; a highly uncertain one still buys its label.
  D.Variance = 1e-12;
  EXPECT_FALSE(P->shouldQuery(D));
  D.Variance = 64.0;
  EXPECT_TRUE(P->shouldQuery(D));
}

TEST(QueryPolicyTest, CostRangeTightensWithStreamPosition) {
  // The same marginal prediction is queried early and declined late:
  // delta_t = c0 * log(t+1)/t shrinks the admissible interval.
  QueryPolicyConfig Cfg;
  Cfg.Kind = QueryPolicyKind::CostRange;
  auto probe = [&](uint64_t T) {
    auto P = QueryPolicy::create(Cfg);
    P->onLabel(0.0);
    P->onLabel(1.0);
    QueryDecision D;
    D.Mean = 0.5;
    D.Variance = 0.002;
    D.StreamPosition = T;
    return P->shouldQuery(D);
  };
  EXPECT_TRUE(probe(1));
  EXPECT_FALSE(probe(4000));
}

TEST(QueryPolicyTest, DecisionStreamIsDeterministic) {
  // The contract serve snapshots rely on: replaying the same labels and
  // consultations yields bit-identical decisions.
  QueryPolicyConfig Cfg;
  Cfg.Kind = QueryPolicyKind::CostRange;
  auto Run = [&] {
    auto P = QueryPolicy::create(Cfg);
    std::vector<bool> Decisions;
    double Label = 0.37;
    for (uint64_t T = 1; T <= 200; ++T) {
      QueryDecision D;
      D.Mean = std::sin(double(T) * 0.7) * 3.0;
      D.Variance = std::fabs(std::cos(double(T) * 1.3)) * 0.05;
      D.StreamPosition = T;
      bool Q = P->shouldQuery(D);
      Decisions.push_back(Q);
      if (Q) {
        Label = Label * 1.1 + 0.1;
        P->onLabel(Label);
      }
    }
    return Decisions;
  };
  EXPECT_EQ(Run(), Run());
}

//===- tests/stats_test.cpp - stats/ unit tests ---------------*- C++ -*-===//

#include "stats/Distributions.h"
#include "stats/Metrics.h"
#include "stats/OnlineStats.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace alic;

//===----------------------------------------------------------------------===//
// Distributions
//===----------------------------------------------------------------------===//

TEST(DistributionsTest, LogGammaMatchesLibm) {
  for (double X : {0.1, 0.5, 1.0, 2.0, 3.5, 10.0, 50.0, 171.0})
    EXPECT_NEAR(logGamma(X), std::lgamma(X), 1e-9 * (1.0 + std::lgamma(X)));
}

TEST(DistributionsTest, NormalCdfKnownValues) {
  EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normalCdf(1.959963985), 0.975, 1e-8);
  EXPECT_NEAR(normalCdf(-1.959963985), 0.025, 1e-8);
  EXPECT_NEAR(normalCdf(3.0), 0.998650101968370, 1e-9);
}

TEST(DistributionsTest, NormalQuantileRoundTrip) {
  for (double P = 0.001; P < 1.0; P += 0.013)
    EXPECT_NEAR(normalCdf(normalQuantile(P)), P, 1e-9);
}

TEST(DistributionsTest, NormalPdfIntegratesToCdf) {
  // Trapezoidal integral of the pdf matches the cdf difference.
  double Lo = -2.0, Hi = 1.5;
  int Steps = 20000;
  double H = (Hi - Lo) / Steps;
  double Sum = 0.5 * (normalPdf(Lo) + normalPdf(Hi));
  for (int I = 1; I != Steps; ++I)
    Sum += normalPdf(Lo + I * H);
  EXPECT_NEAR(Sum * H, normalCdf(Hi) - normalCdf(Lo), 1e-7);
}

TEST(DistributionsTest, StudentTCdfSymmetry) {
  for (double Df : {1.0, 2.0, 5.0, 30.0})
    for (double X : {0.1, 0.7, 1.5, 3.0})
      EXPECT_NEAR(studentTCdf(X, Df) + studentTCdf(-X, Df), 1.0, 1e-10);
}

TEST(DistributionsTest, StudentTQuantileKnownValues) {
  // Classic t-table: 97.5% quantiles.
  EXPECT_NEAR(studentTQuantile(0.975, 1.0), 12.706, 2e-3);
  EXPECT_NEAR(studentTQuantile(0.975, 4.0), 2.776, 2e-3);
  EXPECT_NEAR(studentTQuantile(0.975, 34.0), 2.032, 2e-3);
  EXPECT_NEAR(studentTQuantile(0.95, 9.0), 1.833, 2e-3);
}

TEST(DistributionsTest, StudentTQuantileRoundTrip) {
  for (double Df : {2.0, 5.0, 17.0, 60.0})
    for (double P = 0.02; P < 1.0; P += 0.07)
      EXPECT_NEAR(studentTCdf(studentTQuantile(P, Df), Df), P, 1e-8);
}

TEST(DistributionsTest, StudentTApproachesNormalForLargeDf) {
  for (double P : {0.1, 0.25, 0.5, 0.9, 0.99})
    EXPECT_NEAR(studentTQuantile(P, 10000.0), normalQuantile(P), 2e-3);
}

TEST(DistributionsTest, ChiSquareCdfKnownValues) {
  // chi2 with df=2 is Exponential(2): cdf(x) = 1 - exp(-x/2).
  for (double X : {0.5, 1.0, 3.0, 8.0})
    EXPECT_NEAR(chiSquareCdf(X, 2.0), 1.0 - std::exp(-X / 2.0), 1e-10);
}

TEST(DistributionsTest, ChiSquareQuantileRoundTrip) {
  for (double Df : {1.0, 4.0, 10.0, 40.0})
    for (double P = 0.05; P < 1.0; P += 0.1)
      EXPECT_NEAR(chiSquareCdf(chiSquareQuantile(P, Df), Df), P, 1e-8);
}

TEST(DistributionsTest, RegularizedBetaBounds) {
  EXPECT_EQ(regularizedBeta(0.0, 2.0, 3.0), 0.0);
  EXPECT_EQ(regularizedBeta(1.0, 2.0, 3.0), 1.0);
  // I_x(1,1) is the identity.
  for (double X = 0.1; X < 1.0; X += 0.2)
    EXPECT_NEAR(regularizedBeta(X, 1.0, 1.0), X, 1e-12);
}

TEST(DistributionsTest, RegularizedGammaPBounds) {
  EXPECT_EQ(regularizedGammaP(2.0, 0.0), 0.0);
  // P(1, x) = 1 - exp(-x).
  for (double X : {0.5, 1.0, 2.0, 5.0})
    EXPECT_NEAR(regularizedGammaP(1.0, X), 1.0 - std::exp(-X), 1e-10);
}

//===----------------------------------------------------------------------===//
// OnlineStats
//===----------------------------------------------------------------------===//

TEST(OnlineStatsTest, MatchesNaiveComputation) {
  Rng R(5);
  std::vector<double> Values;
  OnlineStats S;
  for (int I = 0; I != 1000; ++I) {
    double V = R.nextUniform(-3.0, 7.0);
    Values.push_back(V);
    S.add(V);
  }
  double Mean = 0.0;
  for (double V : Values)
    Mean += V;
  Mean /= Values.size();
  double Var = 0.0;
  for (double V : Values)
    Var += (V - Mean) * (V - Mean);
  Var /= (Values.size() - 1);
  EXPECT_NEAR(S.mean(), Mean, 1e-10);
  EXPECT_NEAR(S.variance(), Var, 1e-10);
  EXPECT_EQ(S.count(), 1000u);
}

TEST(OnlineStatsTest, EmptyAndSingle) {
  OnlineStats S;
  EXPECT_EQ(S.mean(), 0.0);
  EXPECT_EQ(S.variance(), 0.0);
  S.add(5.0);
  EXPECT_EQ(S.mean(), 5.0);
  EXPECT_EQ(S.variance(), 0.0);
  EXPECT_EQ(S.min(), 5.0);
  EXPECT_EQ(S.max(), 5.0);
}

class OnlineStatsMergeTest : public testing::TestWithParam<size_t> {};

TEST_P(OnlineStatsMergeTest, MergeEqualsSequential) {
  size_t SplitAt = GetParam();
  Rng R(19);
  std::vector<double> Values;
  for (int I = 0; I != 500; ++I)
    Values.push_back(R.nextGaussian() * 3.0 + 1.0);

  OnlineStats Whole, Left, Right;
  for (size_t I = 0; I != Values.size(); ++I) {
    Whole.add(Values[I]);
    (I < SplitAt ? Left : Right).add(Values[I]);
  }
  Left.merge(Right);
  EXPECT_NEAR(Left.mean(), Whole.mean(), 1e-10);
  EXPECT_NEAR(Left.variance(), Whole.variance(), 1e-9);
  EXPECT_EQ(Left.count(), Whole.count());
  EXPECT_EQ(Left.min(), Whole.min());
  EXPECT_EQ(Left.max(), Whole.max());
}

INSTANTIATE_TEST_SUITE_P(Splits, OnlineStatsMergeTest,
                         testing::Values(0, 1, 7, 100, 250, 499, 500));

TEST(OnlineStatsTest, ConfidenceIntervalContainsMeanForCleanData) {
  OnlineStats S;
  Rng R(23);
  for (int I = 0; I != 35; ++I)
    S.add(10.0 + 0.1 * R.nextGaussian());
  ConfidenceInterval Ci = S.confidenceInterval(0.95);
  EXPECT_LT(Ci.Lower, 10.05);
  EXPECT_GT(Ci.Upper, 9.95);
  EXPECT_GT(Ci.halfWidth(), 0.0);
}

TEST(OnlineStatsTest, CiOverMeanShrinksWithSamples) {
  Rng R(29);
  OnlineStats Small, Large;
  for (int I = 0; I != 5; ++I)
    Small.add(1.0 + 0.05 * R.nextGaussian());
  for (int I = 0; I != 500; ++I)
    Large.add(1.0 + 0.05 * R.nextGaussian());
  EXPECT_GT(Small.ciOverMean(), Large.ciOverMean());
}

TEST(OnlineStatsTest, CiOverMeanInfiniteWhenUndefined) {
  OnlineStats S;
  EXPECT_TRUE(std::isinf(S.ciOverMean()));
  S.add(1.0);
  EXPECT_TRUE(std::isinf(S.ciOverMean()));
}

//===----------------------------------------------------------------------===//
// Metrics
//===----------------------------------------------------------------------===//

TEST(MetricsTest, RmseAndMae) {
  std::vector<double> P = {1.0, 2.0, 3.0};
  std::vector<double> A = {1.0, 4.0, 3.0};
  EXPECT_NEAR(rootMeanSquaredError(P, A), std::sqrt(4.0 / 3.0), 1e-12);
  EXPECT_NEAR(meanAbsoluteError(P, A), 2.0 / 3.0, 1e-12);
}

TEST(MetricsTest, PerfectPrediction) {
  std::vector<double> A = {1.0, 2.0, 3.0};
  EXPECT_EQ(rootMeanSquaredError(A, A), 0.0);
  EXPECT_EQ(meanAbsoluteError(A, A), 0.0);
  EXPECT_EQ(rSquared(A, A), 1.0);
}

TEST(MetricsTest, RSquaredOfMeanPredictorIsZero) {
  std::vector<double> A = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> P(4, 2.5);
  EXPECT_NEAR(rSquared(P, A), 0.0, 1e-12);
}

TEST(MetricsTest, GeometricMean) {
  EXPECT_NEAR(geometricMean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geometricMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
  EXPECT_EQ(geometricMean({}), 0.0);
}

TEST(MetricsTest, Quantiles) {
  std::vector<double> V = {4.0, 1.0, 3.0, 2.0};
  EXPECT_EQ(quantile(V, 0.0), 1.0);
  EXPECT_EQ(quantile(V, 1.0), 4.0);
  EXPECT_NEAR(quantile(V, 0.5), 2.5, 1e-12);
}

TEST(MetricsTest, ArithmeticMean) {
  EXPECT_EQ(arithmeticMean({}), 0.0);
  EXPECT_NEAR(arithmeticMean({1.0, 2.0, 6.0}), 3.0, 1e-12);
}

//===- tests/linalg_test.cpp - linalg/ unit tests -------------*- C++ -*-===//

#include "linalg/Cholesky.h"
#include "linalg/Matrix.h"
#include "support/Rng.h"
#include "support/Scheduler.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace alic;

namespace {

/// Random symmetric positive-definite matrix A = B B^T + n I.
Matrix randomSpd(size_t N, Rng &R) {
  Matrix B(N, N);
  for (size_t I = 0; I != N; ++I)
    for (size_t J = 0; J != N; ++J)
      B.at(I, J) = R.nextGaussian();
  Matrix A = B.multiply(B.transpose());
  A.addToDiagonal(double(N) * 0.1);
  return A;
}

/// Textbook scalar left-looking Cholesky: the recurrence the blocked,
/// parallel factorize() must reproduce element for element.
Matrix scalarCholeskyReference(const Matrix &A) {
  size_t N = A.rows();
  Matrix L(N, N, 0.0);
  for (size_t I = 0; I != N; ++I) {
    for (size_t J = 0; J <= I; ++J) {
      double Acc = A.at(I, J);
      for (size_t K = 0; K != J; ++K)
        Acc -= L.at(I, K) * L.at(J, K);
      L.at(I, J) = I == J ? std::sqrt(Acc) : Acc / L.at(J, J);
    }
  }
  return L;
}

} // namespace

TEST(MatrixTest, IdentityMultiply) {
  Rng R(1);
  Matrix A(4, 4);
  for (size_t I = 0; I != 4; ++I)
    for (size_t J = 0; J != 4; ++J)
      A.at(I, J) = R.nextGaussian();
  Matrix I4 = Matrix::identity(4);
  EXPECT_NEAR(A.multiply(I4).maxAbsDiff(A), 0.0, 1e-14);
  EXPECT_NEAR(I4.multiply(A).maxAbsDiff(A), 0.0, 1e-14);
}

TEST(MatrixTest, MultiplyKnownValues) {
  Matrix A(2, 3);
  A.at(0, 0) = 1;
  A.at(0, 1) = 2;
  A.at(0, 2) = 3;
  A.at(1, 0) = 4;
  A.at(1, 1) = 5;
  A.at(1, 2) = 6;
  std::vector<double> X = {1.0, 0.0, -1.0};
  std::vector<double> Y = A.multiply(X);
  EXPECT_NEAR(Y[0], -2.0, 1e-14);
  EXPECT_NEAR(Y[1], -2.0, 1e-14);
}

TEST(MatrixTest, TransposeInvolution) {
  Rng R(2);
  Matrix A(3, 5);
  for (size_t I = 0; I != 3; ++I)
    for (size_t J = 0; J != 5; ++J)
      A.at(I, J) = R.nextGaussian();
  EXPECT_NEAR(A.transpose().transpose().maxAbsDiff(A), 0.0, 0.0);
}

TEST(MatrixTest, DotAndDistance) {
  std::vector<double> A = {1.0, 2.0};
  std::vector<double> B = {3.0, -1.0};
  EXPECT_NEAR(dotProduct(A, B), 1.0, 1e-14);
  EXPECT_NEAR(squaredDistance(A, B), 4.0 + 9.0, 1e-14);
}

class CholeskyTest : public testing::TestWithParam<size_t> {};

TEST_P(CholeskyTest, FactorReconstructsMatrix) {
  Rng R(GetParam() * 7 + 1);
  size_t N = GetParam();
  Matrix A = randomSpd(N, R);
  auto F = Cholesky::factorize(A);
  ASSERT_TRUE(F.has_value());
  const Matrix &L = F->factor();
  Matrix Rec = L.multiply(L.transpose());
  EXPECT_LT(Rec.maxAbsDiff(A), 1e-8 * double(N));
}

TEST_P(CholeskyTest, SolveMatchesDirectResidual) {
  Rng R(GetParam() * 13 + 5);
  size_t N = GetParam();
  Matrix A = randomSpd(N, R);
  std::vector<double> B(N);
  for (double &V : B)
    V = R.nextGaussian();
  auto F = Cholesky::factorize(A);
  ASSERT_TRUE(F.has_value());
  std::vector<double> X = F->solve(B);
  std::vector<double> Ax = A.multiply(X);
  for (size_t I = 0; I != N; ++I)
    EXPECT_NEAR(Ax[I], B[I], 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyTest,
                         testing::Values(1, 2, 3, 5, 10, 25, 60));

TEST(CholeskyTest, LogDeterminantKnownValue) {
  Matrix A(2, 2);
  A.at(0, 0) = 4.0;
  A.at(1, 1) = 9.0;
  auto F = Cholesky::factorize(A);
  ASSERT_TRUE(F.has_value());
  EXPECT_NEAR(F->logDeterminant(), std::log(36.0), 1e-12);
}

TEST(CholeskyTest, RejectsIndefiniteMatrix) {
  Matrix A(2, 2);
  A.at(0, 0) = 1.0;
  A.at(0, 1) = 2.0;
  A.at(1, 0) = 2.0;
  A.at(1, 1) = 1.0; // eigenvalues 3 and -1
  EXPECT_FALSE(Cholesky::factorize(A).has_value());
}

TEST(CholeskyTest, ExtendMatchesFullRefactorization) {
  Rng R(31);
  const size_t N = 40;
  Matrix A = randomSpd(N, R);
  auto Full = Cholesky::factorize(A);
  ASSERT_TRUE(Full.has_value());

  // Factor the leading (N-1)x(N-1) block, then border it with A's last
  // row and column.
  Matrix Lead(N - 1, N - 1);
  for (size_t I = 0; I != N - 1; ++I)
    for (size_t J = 0; J != N - 1; ++J)
      Lead.at(I, J) = A.at(I, J);
  auto Grown = Cholesky::factorize(Lead);
  ASSERT_TRUE(Grown.has_value());
  std::vector<double> Border(N - 1);
  for (size_t I = 0; I != N - 1; ++I)
    Border[I] = A.at(N - 1, I);
  ASSERT_TRUE(Grown->extend(Border, A.at(N - 1, N - 1)));

  EXPECT_EQ(Grown->size(), N);
  // extend() reproduces factorize()'s arithmetic: the factors agree
  // bit-for-bit, not merely within tolerance.
  EXPECT_EQ(Grown->factor().maxAbsDiff(Full->factor()), 0.0);
  EXPECT_EQ(Grown->logDeterminant(), Full->logDeterminant());
}

TEST(CholeskyTest, RepeatedExtendGrowsFromScalar) {
  Rng R(32);
  const size_t N = 25;
  Matrix A = randomSpd(N, R);
  auto Full = Cholesky::factorize(A);
  ASSERT_TRUE(Full.has_value());

  Matrix First(1, 1);
  First.at(0, 0) = A.at(0, 0);
  auto Grown = Cholesky::factorize(First);
  ASSERT_TRUE(Grown.has_value());
  for (size_t M = 1; M != N; ++M) {
    std::vector<double> Border(M);
    for (size_t I = 0; I != M; ++I)
      Border[I] = A.at(M, I);
    ASSERT_TRUE(Grown->extend(Border, A.at(M, M))) << "at size " << M;
  }
  EXPECT_EQ(Grown->factor().maxAbsDiff(Full->factor()), 0.0);
}

TEST(CholeskyTest, ExtendRejectsNonPdBorderAndKeepsFactor) {
  Matrix A(1, 1);
  A.at(0, 0) = 1.0;
  auto F = Cholesky::factorize(A);
  ASSERT_TRUE(F.has_value());
  // Bordered matrix [[1, 2], [2, 1]] has eigenvalues 3 and -1.
  EXPECT_FALSE(F->extend({2.0}, 1.0));
  EXPECT_EQ(F->size(), 1u);
  EXPECT_NEAR(F->factor().at(0, 0), 1.0, 0.0);
  // The untouched factor still solves the original system.
  std::vector<double> X = F->solve({3.0});
  EXPECT_NEAR(X[0], 3.0, 1e-14);
}

TEST(CholeskyTest, FactorizeBitIdenticalToScalarReference) {
  // N = 200 spans several diagonal panels, so the blocked schedule (not
  // just the first panel) is exercised against the classic scalar loop.
  Rng R(41);
  const size_t N = 200;
  Matrix A = randomSpd(N, R);
  auto F = Cholesky::factorize(A);
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(F->factor().maxAbsDiff(scalarCholeskyReference(A)), 0.0);
}

TEST(CholeskyTest, BlockedFactorizeBitIdenticalAcrossWorkersAndStealSeeds) {
  Rng R(42);
  const size_t N = 200;
  Matrix A = randomSpd(N, R);
  auto Sequential = Cholesky::factorize(A, nullptr);
  ASSERT_TRUE(Sequential.has_value());
  for (unsigned Threads : {1u, 8u}) {
    for (uint64_t StealSeed : {0x5eedull, 0xabcdefull}) {
      Scheduler::Options Opts;
      Opts.Threads = Threads;
      Opts.StealSeed = StealSeed;
      Opts.JitterSeed = hashCombine({StealSeed, 0x11ffull});
      Scheduler Pool(Opts);
      auto Forked = Cholesky::factorize(A, &Pool);
      ASSERT_TRUE(Forked.has_value());
      // The packed buffers must agree bit for bit, not within tolerance.
      EXPECT_EQ(Forked->packed(), Sequential->packed())
          << Threads << " workers, steal seed " << StealSeed;
    }
  }
}

TEST(CholeskyTest, SolveManyBitIdenticalToIndependentSolves) {
  Rng R(43);
  const size_t N = 57; // not a multiple of any internal block size
  const size_t NumRhs = 9;
  Matrix A = randomSpd(N, R);
  auto F = Cholesky::factorize(A);
  ASSERT_TRUE(F.has_value());
  std::vector<double> Rhs(NumRhs * N);
  for (double &V : Rhs)
    V = R.nextGaussian();

  std::vector<double> Lower = Rhs, Full = Rhs;
  F->solveLowerManyInPlace(Lower.data(), NumRhs);
  F->solveManyInPlace(Full.data(), NumRhs);
  for (size_t I = 0; I != NumRhs; ++I) {
    std::vector<double> B(Rhs.begin() + I * N, Rhs.begin() + (I + 1) * N);
    std::vector<double> Y = F->solveLower(B);
    std::vector<double> X = F->solve(B);
    for (size_t J = 0; J != N; ++J) {
      EXPECT_EQ(Lower[I * N + J], Y[J]) << "rhs " << I << " entry " << J;
      EXPECT_EQ(Full[I * N + J], X[J]) << "rhs " << I << " entry " << J;
    }
  }
}

TEST(CholeskyTest, RankOneUpdateMatchesRefactorization) {
  Rng R(44);
  const size_t N = 30;
  Matrix A = randomSpd(N, R);
  std::vector<double> V(N);
  for (double &Vi : V)
    Vi = R.nextGaussian();

  auto Updated = Cholesky::factorize(A);
  ASSERT_TRUE(Updated.has_value());
  Updated->rankOneUpdate(V);

  for (size_t I = 0; I != N; ++I)
    for (size_t J = 0; J != N; ++J)
      A.at(I, J) += V[I] * V[J];
  auto Direct = Cholesky::factorize(A);
  ASSERT_TRUE(Direct.has_value());
  // Unlike extend(), the rank-1 update takes a different arithmetic
  // route than refactorization — equal only within rounding.
  EXPECT_LT(Updated->factor().maxAbsDiff(Direct->factor()), 1e-9);
  EXPECT_NEAR(Updated->logDeterminant(), Direct->logDeterminant(), 1e-9);
}

TEST(CholeskyTest, SolveLowerForwardSubstitution) {
  Matrix A(2, 2);
  A.at(0, 0) = 4.0;
  A.at(1, 1) = 9.0;
  auto F = Cholesky::factorize(A);
  ASSERT_TRUE(F.has_value());
  // L = diag(2, 3); L y = (2, 6) => y = (1, 2).
  std::vector<double> Y = F->solveLower({2.0, 6.0});
  EXPECT_NEAR(Y[0], 1.0, 1e-14);
  EXPECT_NEAR(Y[1], 2.0, 1e-14);
}

//===- tests/shardlease_test.cpp - range lease protocol tests -*- C++ -*-===//
//
// Pins the lease-directory protocol of exp/ShardLease: O_EXCL claims are
// exclusive, renewal keeps ownership, expired leases are stolen by
// exactly one of any number of concurrent stealers, and a SIGKILLed
// owner's lease (simulated by abandon()) is reclaimed after the TTL.
// Runs under TSan in CI — the concurrent-claim tests double as data-race
// fodder for the heartbeat thread.
//
//===----------------------------------------------------------------------===//

#include "exp/ShardLease.h"
#include "support/FailPoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>

using namespace alic;

namespace {

std::string freshLeaseDir(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + "alic_lease_" + Name;
  std::filesystem::remove_all(Dir);
  return Dir + "/leases";
}

LeaseOptions leaseOptions(const std::string &Name, uint64_t TtlMs = 2000) {
  LeaseOptions Opts;
  Opts.Dir = freshLeaseDir(Name);
  Opts.OwnerToken = makeLeaseOwnerToken(Name);
  Opts.TtlMs = TtlMs;
  return Opts;
}

/// Backdates a lease file's mtime by \p AgeMs, as if its owner stopped
/// heartbeating that long ago — makes expiry tests instant instead of
/// sleeping through real TTLs.
void backdateLease(const std::string &Path, uint64_t AgeMs) {
  timespec Now{};
  ::clock_gettime(CLOCK_REALTIME, &Now);
  int64_t Ns = int64_t(Now.tv_sec) * 1000000000 + Now.tv_nsec -
               int64_t(AgeMs) * 1000000;
  timespec Times[2];
  Times[0].tv_sec = Ns / 1000000000;
  Times[0].tv_nsec = Ns % 1000000000;
  Times[1] = Times[0];
  ASSERT_EQ(::utimensat(AT_FDCWD, Path.c_str(), Times, 0), 0);
}

} // namespace

//===----------------------------------------------------------------------===//
// Range splitting
//===----------------------------------------------------------------------===//

TEST(ShardRangeTest, SplitCoversEveryItemExactlyOnce) {
  for (size_t Items : {0u, 1u, 7u, 30u, 275u})
    for (size_t Ranges : {1u, 2u, 3u, 8u, 300u}) {
      std::vector<ShardRange> Split = splitRanges(Items, Ranges);
      ASSERT_EQ(Split.size(), Ranges) << Items << "/" << Ranges;
      size_t Next = 0, Total = 0;
      for (size_t I = 0; I != Split.size(); ++I) {
        EXPECT_EQ(Split[I].Index, I);
        EXPECT_EQ(Split[I].Begin, Next);
        EXPECT_LE(Split[I].Begin, Split[I].End);
        Next = Split[I].End;
        Total += Split[I].size();
      }
      EXPECT_EQ(Next, Items);
      EXPECT_EQ(Total, Items);
      // Near-equal: sizes differ by at most one.
      size_t Min = SIZE_MAX, Max = 0;
      for (const ShardRange &R : Split) {
        Min = std::min(Min, R.size());
        Max = std::max(Max, R.size());
      }
      EXPECT_LE(Max - Min, 1u);
    }
}

TEST(ShardRangeTest, SplitIsDeterministic) {
  // Workers agree on boundaries without coordinating: equal inputs must
  // give equal splits.
  std::vector<ShardRange> A = splitRanges(275, 18);
  std::vector<ShardRange> B = splitRanges(275, 18);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].Begin, B[I].Begin);
    EXPECT_EQ(A[I].End, B[I].End);
  }
}

TEST(ShardRangeTest, SplitByCellsHonorsTargetSize) {
  std::vector<ShardRange> Split = splitRangesByCells(275, 16);
  EXPECT_EQ(Split.size(), (275 + 15) / 16);
  for (const ShardRange &R : Split)
    EXPECT_LE(R.size(), 16u);
  // Degenerate targets clamp instead of dividing by zero.
  EXPECT_EQ(splitRangesByCells(5, 0).size(), 5u);
  EXPECT_EQ(splitRangesByCells(0, 16).size(), 0u);
}

//===----------------------------------------------------------------------===//
// Claiming
//===----------------------------------------------------------------------===//

TEST(ShardLeaseTest, ClaimIsExclusiveUntilReleased) {
  LeaseOptions Opts = leaseOptions("exclusive");
  ShardLease Leases(Opts);
  ASSERT_TRUE(Leases.init().ok());

  RangeLease Mine;
  ASSERT_EQ(Leases.tryClaim(0, Mine), ShardLease::Claim::Acquired);
  EXPECT_TRUE(Mine.held());
  EXPECT_EQ(Mine.path(), Leases.leasePath(0));

  // A second claimant (same or another process) bounces off the O_EXCL.
  LeaseOptions Other = Opts;
  Other.OwnerToken = makeLeaseOwnerToken("rival");
  ShardLease Rival(Other);
  RangeLease Theirs;
  EXPECT_EQ(Rival.tryClaim(0, Theirs), ShardLease::Claim::Held);
  EXPECT_FALSE(Theirs.held());

  // Another range is free, and release() frees ours for re-claiming.
  EXPECT_EQ(Rival.tryClaim(1, Theirs), ShardLease::Claim::Acquired);
  Mine.release();
  EXPECT_FALSE(Mine.held());
  EXPECT_EQ(Rival.tryClaim(0, Theirs), ShardLease::Claim::Acquired);
}

TEST(ShardLeaseTest, RenewKeepsOwnershipAndBumpsMtime) {
  LeaseOptions Opts = leaseOptions("renew", 10000);
  ShardLease Leases(Opts);
  ASSERT_TRUE(Leases.init().ok());
  RangeLease Lease;
  ASSERT_EQ(Leases.tryClaim(3, Lease), ShardLease::Claim::Acquired);

  // Backdate as if the heartbeat stalled, then renew: the lease must
  // look fresh again.
  backdateLease(Lease.path(), 9000);
  ASSERT_TRUE(Lease.renew());
  struct stat St{};
  ASSERT_EQ(::stat(Lease.path().c_str(), &St), 0);
  timespec Now{};
  ::clock_gettime(CLOCK_REALTIME, &Now);
  EXPECT_LT(Now.tv_sec - St.st_mtim.tv_sec, 5);
  EXPECT_TRUE(Lease.held());
}

TEST(ShardLeaseTest, ExpiredLeaseIsStolenAndFreshOneIsNot) {
  LeaseOptions Opts = leaseOptions("steal", 1000);
  ShardLease Owner(Opts);
  ASSERT_TRUE(Owner.init().ok());
  RangeLease Dead;
  ASSERT_EQ(Owner.tryClaim(0, Dead), ShardLease::Claim::Acquired);
  // abandon() = SIGKILL simulation: the file stays, nobody renews it.
  Dead.abandon();

  LeaseOptions TheirOpts = Opts;
  TheirOpts.OwnerToken = makeLeaseOwnerToken("thief");
  ShardLease Thief(TheirOpts);
  RangeLease Stolen;
  // Fresh: not stealable.
  EXPECT_EQ(Thief.tryClaim(0, Stolen), ShardLease::Claim::Held);
  // Expired: stolen.
  backdateLease(Owner.leasePath(0), Opts.TtlMs + 500);
  EXPECT_EQ(Thief.tryClaim(0, Stolen), ShardLease::Claim::Acquired);
  EXPECT_TRUE(Stolen.held());
  // The steal left no remnant files behind.
  size_t Remnants = 0;
  for (const auto &Entry : std::filesystem::directory_iterator(Opts.Dir))
    if (Entry.path().filename().string().find(".steal-") !=
        std::string::npos)
      ++Remnants;
  EXPECT_EQ(Remnants, 0u);
}

TEST(ShardLeaseTest, ConcurrentClaimsOfOneExpiredRangeElectOneWinner) {
  // The two-stealers race: any number of threads converge on one expired
  // lease; the rename-away handoff must elect exactly one winner.
  LeaseOptions Opts = leaseOptions("race", 500);
  ShardLease Owner(Opts);
  ASSERT_TRUE(Owner.init().ok());
  RangeLease Dead;
  ASSERT_EQ(Owner.tryClaim(0, Dead), ShardLease::Claim::Acquired);
  Dead.abandon();
  backdateLease(Owner.leasePath(0), Opts.TtlMs + 500);

  constexpr int NumThreads = 8;
  std::atomic<int> Winners{0}, Errors{0};
  std::vector<RangeLease> Held(NumThreads);
  std::vector<std::thread> Threads;
  for (int T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      LeaseOptions Mine = Opts;
      Mine.OwnerToken = makeLeaseOwnerToken("t" + std::to_string(T));
      ShardLease Stealer(Mine);
      switch (Stealer.tryClaim(0, Held[T])) {
      case ShardLease::Claim::Acquired:
        Winners.fetch_add(1);
        break;
      case ShardLease::Claim::Held:
        break;
      case ShardLease::Claim::Error:
        Errors.fetch_add(1);
        break;
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Winners.load(), 1);
  EXPECT_EQ(Errors.load(), 0);
}

TEST(ShardLeaseTest, HeartbeatRenewsUntilStopped) {
  LeaseOptions Opts = leaseOptions("heartbeat", 400);
  Opts.HeartbeatMs = 20;
  ShardLease Leases(Opts);
  ASSERT_TRUE(Leases.init().ok());
  RangeLease Lease;
  ASSERT_EQ(Leases.tryClaim(0, Lease), ShardLease::Claim::Acquired);
  {
    LeaseHeartbeat Heartbeat(Lease, Opts);
    // Outlive the TTL by 2x: without renewals the lease would expire.
    std::this_thread::sleep_for(std::chrono::milliseconds(2 * Opts.TtlMs));
    EXPECT_FALSE(Heartbeat.lost());
  }
  // Still fresh after the heartbeat stopped: a rival cannot steal it.
  LeaseOptions TheirOpts = Opts;
  TheirOpts.OwnerToken = makeLeaseOwnerToken("rival");
  ShardLease Rival(TheirOpts);
  RangeLease Stolen;
  EXPECT_EQ(Rival.tryClaim(0, Stolen), ShardLease::Claim::Held);
  EXPECT_TRUE(Lease.held());
}

TEST(ShardLeaseTest, HeartbeatFlagsTheftInsteadOfFightingIt) {
  LeaseOptions Opts = leaseOptions("theft", 300);
  Opts.HeartbeatMs = 20;
  ShardLease Leases(Opts);
  ASSERT_TRUE(Leases.init().ok());
  RangeLease Lease;
  ASSERT_EQ(Leases.tryClaim(0, Lease), ShardLease::Claim::Acquired);

  LeaseHeartbeat Heartbeat(Lease, Opts);
  // A thief replaces the lease out from under us (expired from the
  // thief's point of view after a clock jump, say).
  LeaseOptions TheirOpts = Opts;
  TheirOpts.OwnerToken = makeLeaseOwnerToken("thief");
  ShardLease Thief(TheirOpts);
  backdateLease(Lease.path(), Opts.TtlMs + 500);
  RangeLease Stolen;
  ASSERT_EQ(Thief.tryClaim(0, Stolen), ShardLease::Claim::Acquired);

  // The next renewal notices the inode changed and flags the loss.
  for (int I = 0; I != 200 && !Heartbeat.lost(); ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(Heartbeat.lost());
  Heartbeat.stop();
  EXPECT_FALSE(Lease.held());
  // The thief's lease survived the loser's discovery.
  EXPECT_TRUE(Stolen.held());
  EXPECT_TRUE(Stolen.renew());
}

TEST(ShardLeaseTest, InitSweepsStaleStealRemnants) {
  LeaseOptions Opts = leaseOptions("sweep", 500);
  ShardLease Leases(Opts);
  ASSERT_TRUE(Leases.init().ok());
  // A crashed stealer's remnant: renamed away but never unlinked.
  std::string Remnant = Leases.leasePath(0) + ".steal-crashed";
  { std::ofstream(Remnant) << "crashed\n"; }
  backdateLease(Remnant, Opts.TtlMs + 1000);
  ASSERT_TRUE(Leases.init().ok());
  EXPECT_FALSE(std::filesystem::exists(Remnant));
}

//===----------------------------------------------------------------------===//
// Fault injection
//===----------------------------------------------------------------------===//

TEST(ShardLeaseTest, AcquireFailpointDegradesToError) {
  LeaseOptions Opts = leaseOptions("fp-acquire");
  ShardLease Leases(Opts);
  ASSERT_TRUE(Leases.init().ok());

  FailSpec Spec;
  Spec.Nth = 1;
  Spec.Count = 1;
  ScopedFailPoint Armed("lease.acquire", Spec);
  RangeLease Lease;
  EXPECT_EQ(Leases.tryClaim(0, Lease), ShardLease::Claim::Error);
  EXPECT_FALSE(Lease.held());
  // The injected failure left nothing behind: the next claim succeeds.
  EXPECT_EQ(Leases.tryClaim(0, Lease), ShardLease::Claim::Acquired);
}

TEST(ShardLeaseTest, StealFailpointLeavesTheStaleLeaseClaimable) {
  LeaseOptions Opts = leaseOptions("fp-steal", 500);
  ShardLease Owner(Opts);
  ASSERT_TRUE(Owner.init().ok());
  RangeLease Dead;
  ASSERT_EQ(Owner.tryClaim(0, Dead), ShardLease::Claim::Acquired);
  Dead.abandon();
  backdateLease(Owner.leasePath(0), Opts.TtlMs + 500);

  LeaseOptions TheirOpts = Opts;
  TheirOpts.OwnerToken = makeLeaseOwnerToken("thief");
  ShardLease Thief(TheirOpts);
  RangeLease Stolen;
  {
    FailSpec Spec;
    Spec.Nth = 1;
    ScopedFailPoint Armed("lease.steal", Spec);
    EXPECT_EQ(Thief.tryClaim(0, Stolen), ShardLease::Claim::Error);
    EXPECT_FALSE(Stolen.held());
  }
  // The stale lease is still there and still stealable.
  EXPECT_EQ(Thief.tryClaim(0, Stolen), ShardLease::Claim::Acquired);
}

TEST(ShardLeaseTest, RenewFailpointDropsTheLease) {
  LeaseOptions Opts = leaseOptions("fp-renew");
  ShardLease Leases(Opts);
  ASSERT_TRUE(Leases.init().ok());
  RangeLease Lease;
  ASSERT_EQ(Leases.tryClaim(0, Lease), ShardLease::Claim::Acquired);

  FailSpec Spec;
  Spec.Nth = 1;
  ScopedFailPoint Armed("lease.renew", Spec);
  EXPECT_FALSE(Lease.renew());
  EXPECT_FALSE(Lease.held());
}

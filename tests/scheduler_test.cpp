//===- tests/scheduler_test.cpp - work-stealing scheduler tests -*- C++ -*-===//
//
// Pins the scheduler's two contracts:
//
//  * nesting is legal — a task running on a worker may fork-and-wait on
//    the same scheduler to any depth (the predecessor ThreadPool
//    deadlocked or serialized here), wait() helping instead of blocking;
//
//  * determinism by construction — shard grids and per-shard
//    counter-derived seeds are independent of worker count and steal
//    order, so campaign-shaped nested computations (DynaTree ensembles
//    inside scheduler tasks) are byte-identical across {0, 1, 2, 8}
//    workers under forced random steal interleavings (varied victim-
//    selection seeds plus pseudo-random worker yields).
//
//===----------------------------------------------------------------------===//

#include "dynatree/DynaTree.h"
#include "support/Rng.h"
#include "support/Scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

using namespace alic;

//===----------------------------------------------------------------------===//
// Nesting
//===----------------------------------------------------------------------===//

TEST(SchedulerNestingTest, TaskMayParallelForOnItsOwnPool) {
  // The exact shape that deadlocked the fixed ThreadPool: a pool task
  // calling parallelForShards on the same pool.
  for (unsigned Workers : {1u, 2u, 8u}) {
    Scheduler S(Workers);
    std::vector<std::atomic<int>> Hits(512);
    S.parallelFor(8, [&](size_t Outer) {
      S.parallelForShards(64, 7, [&](size_t, size_t Begin, size_t End) {
        for (size_t I = Begin; I != End; ++I)
          ++Hits[Outer * 64 + I];
      });
    });
    for (auto &H : Hits)
      EXPECT_EQ(H.load(), 1);
  }
}

TEST(SchedulerNestingTest, DeepRecursiveForkJoin) {
  // Fork-join recursion via TaskGroup: sum [0, N) by binary splitting,
  // every interior frame waiting on two children on the same scheduler.
  Scheduler S(2);
  std::function<uint64_t(uint64_t, uint64_t)> TreeSum =
      [&](uint64_t Lo, uint64_t Hi) -> uint64_t {
    if (Hi - Lo <= 8) {
      uint64_t Sum = 0;
      for (uint64_t I = Lo; I != Hi; ++I)
        Sum += I;
      return Sum;
    }
    uint64_t Mid = Lo + (Hi - Lo) / 2, Left = 0, Right = 0;
    TaskGroup Group(S);
    Group.run([&] { Left = TreeSum(Lo, Mid); });
    Group.run([&] { Right = TreeSum(Mid, Hi); });
    Group.wait();
    return Left + Right;
  };
  EXPECT_EQ(TreeSum(0, 4096), 4096ull * 4095 / 2);
}

TEST(SchedulerNestingTest, SingleWorkerNestedWaitHelps) {
  // With one worker, nested waits can only complete if wait() executes
  // child tasks itself; a blocking wait would deadlock (and hang this
  // test — CI's timeout is the detector).
  Scheduler S(1);
  std::atomic<int> Leaves{0};
  S.parallelFor(4, [&](size_t) {
    S.parallelFor(4, [&](size_t) {
      S.parallelFor(4, [&](size_t) { ++Leaves; });
    });
  });
  EXPECT_EQ(Leaves.load(), 64);
}

TEST(SchedulerNestingTest, IdleWorkersStealInnerShards) {
  // Occupy one of two workers with a task that forks children and then
  // spins (without helping) until they all finish: only the other worker
  // can run them, so every child must be stolen.
  Scheduler S(2);
  std::atomic<int> Done{0};
  S.submit([&] {
    TaskGroup Group(S);
    for (int I = 0; I != 50; ++I)
      Group.run([&] { ++Done; });
    while (Done.load() != 50)
      std::this_thread::yield();
    Group.wait();
  });
  // Spin instead of joining right away: waitAll() *helps*, and if the
  // main thread picked the root task up from the external queue, the
  // children would be externally queued too and need no stealing.
  while (Done.load() != 50)
    std::this_thread::yield();
  S.waitAll();
  EXPECT_EQ(Done.load(), 50);
  EXPECT_GE(S.stats().Steals, 50u);
  EXPECT_GE(S.stats().Executed, 51u);
}

TEST(SchedulerNestingTest, ExternalThreadsShareOnePool) {
  // Two non-worker threads drive the same scheduler concurrently with
  // nested loops; both joins help and neither interferes with the other.
  Scheduler S(2);
  std::vector<std::atomic<int>> Hits(256);
  auto Drive = [&](size_t Base) {
    S.parallelFor(16, [&, Base](size_t Outer) {
      S.parallelFor(8, [&, Base, Outer](size_t Inner) {
        ++Hits[Base + Outer * 8 + Inner];
      });
    });
  };
  std::thread A([&] { Drive(0); });
  std::thread B([&] { Drive(128); });
  A.join();
  B.join();
  for (auto &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

//===----------------------------------------------------------------------===//
// Nested determinism stress (campaign-shaped)
//===----------------------------------------------------------------------===//

namespace {

/// A miniature campaign: three independent "cells", each a DynaTree
/// ensemble that seeds, absorbs a stream of updates, and reports
/// predictions plus ensemble statistics — with the model's internal
/// particle shards forked onto the *same* scheduler the cells run on.
/// Returns every double produced, in a fixed order.
std::vector<double> runNestedEnsembles(Scheduler *S) {
  constexpr size_t NumCells = 3;
  std::vector<std::vector<double>> PerCell(NumCells);
  auto Cell = [&](size_t CellIdx) {
    Rng R(hashCombine({0xce11ull, CellIdx}));
    std::vector<std::vector<double>> X;
    std::vector<double> Y;
    for (int I = 0; I != 150; ++I) {
      double A = R.nextUniform(-1, 1), B = R.nextUniform(-1, 1);
      X.push_back({A, B});
      Y.push_back(A * A - 0.5 * B + 0.1 * R.nextGaussian());
    }
    DynaTreeConfig C;
    C.NumParticles = 60;
    C.Seed = 29 + CellIdx;
    DynaTree M(C);
    M.setScheduler(S);
    M.fit({X.begin(), X.begin() + 40}, {Y.begin(), Y.begin() + 40});
    for (size_t I = 40; I != X.size(); ++I)
      M.update(X[I], Y[I]);

    std::vector<double> &Out = PerCell[CellIdx];
    for (double A = -0.8; A <= 0.9; A += 0.4)
      for (double B = -0.8; B <= 0.9; B += 0.4) {
        Prediction P = M.predict({A, B});
        Out.push_back(P.Mean);
        Out.push_back(P.Variance);
      }
    ScoreContext Ctx;
    Ctx.Pool = S;
    std::vector<double> Alc =
        M.alcScores({{0.3, -0.4}, {-0.6, 0.2}, {0.1, 0.8}},
                    {X.begin(), X.begin() + 30}, Ctx);
    Out.insert(Out.end(), Alc.begin(), Alc.end());
    Out.push_back(M.effectiveSampleSize());
    Out.push_back(M.averageLeafCount());
    Out.push_back(M.averageDepth());
  };
  // Cells are top-level tasks when a scheduler exists (the campaign
  // shape); inline otherwise (the reference).
  if (S)
    S->parallelFor(NumCells, Cell);
  else
    for (size_t I = 0; I != NumCells; ++I)
      Cell(I);

  std::vector<double> All;
  for (const std::vector<double> &Cell : PerCell)
    All.insert(All.end(), Cell.begin(), Cell.end());
  return All;
}

/// Bitwise equality, not EXPECT_DOUBLE_EQ: the contract is stronger than
/// "close" — identical arithmetic in an identical order.
void expectBitIdentical(const std::vector<double> &Want,
                        const std::vector<double> &Got,
                        const std::string &Label) {
  ASSERT_EQ(Want.size(), Got.size()) << Label;
  for (size_t I = 0; I != Want.size(); ++I)
    EXPECT_EQ(std::memcmp(&Want[I], &Got[I], sizeof(double)), 0)
        << Label << " diverged at index " << I << ": " << Want[I] << " vs "
        << Got[I];
}

} // namespace

TEST(SchedulerDeterminismTest, NestedEnsemblesBitIdenticalAcrossWorkers) {
  std::vector<double> Reference = runNestedEnsembles(nullptr);
  ASSERT_FALSE(Reference.empty());
  for (unsigned Workers : {1u, 2u, 8u}) {
    Scheduler S(Workers);
    expectBitIdentical(Reference, runNestedEnsembles(&S),
                       std::to_string(Workers) + " workers");
  }
}

TEST(SchedulerDeterminismTest, ForcedStealInterleavingsChangeNothing) {
  // Vary the victim-selection stream and inject pseudo-random worker
  // yields: steal order and preemption points shift, results must not.
  std::vector<double> Reference = runNestedEnsembles(nullptr);
  for (uint64_t StealSeed : {1ull, 0xabcdull, 0x7777777ull}) {
    Scheduler::Options Opts;
    Opts.Threads = 4;
    Opts.StealSeed = StealSeed;
    Opts.JitterSeed = hashCombine({StealSeed, 0x11ffull});
    Scheduler S(Opts);
    expectBitIdentical(Reference, runNestedEnsembles(&S),
                       "steal seed " + std::to_string(StealSeed));
  }
}

//===----------------------------------------------------------------------===//
// Stats and lifecycle
//===----------------------------------------------------------------------===//

TEST(SchedulerStatsTest, ExecutedCountsEveryTask) {
  Scheduler S(3);
  for (int I = 0; I != 40; ++I)
    S.submit([] {});
  S.waitAll();
  EXPECT_EQ(S.stats().Executed, 40u);
}

TEST(SchedulerStatsTest, DestructorDrainsDetachedTasks) {
  std::atomic<int> Ran{0};
  {
    Scheduler S(2);
    for (int I = 0; I != 25; ++I)
      S.submit([&] { ++Ran; });
    // No waitAll: the destructor must drain before joining.
  }
  EXPECT_EQ(Ran.load(), 25);
}

TEST(SchedulerStatsTest, AutoThreadCountUsesHardwareConcurrency) {
  Scheduler S(0);
  EXPECT_EQ(S.numThreads(),
            std::max(1u, std::thread::hardware_concurrency()));
}

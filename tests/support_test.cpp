//===- tests/support_test.cpp - support/ unit tests -----------*- C++ -*-===//

#include "support/Backoff.h"
#include "support/BigUInt.h"
#include "support/Env.h"
#include "support/FlatRows.h"
#include "support/Format.h"
#include "support/Json.h"
#include "support/Rng.h"
#include "support/Serialize.h"
#include "support/Scheduler.h"
#include "support/Table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <set>

using namespace alic;

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I != 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 2);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng R(7);
  for (uint64_t Bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int I = 0; I != 200; ++I)
      EXPECT_LT(R.nextBounded(Bound), Bound);
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng R(11);
  const int Buckets = 8, Draws = 80000;
  int Counts[Buckets] = {0};
  for (int I = 0; I != Draws; ++I)
    ++Counts[R.nextBounded(Buckets)];
  for (int C : Counts)
    EXPECT_NEAR(double(C), Draws / double(Buckets), 0.05 * Draws / Buckets);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng R(3);
  for (int I = 0; I != 1000; ++I) {
    double X = R.nextDouble();
    EXPECT_GE(X, 0.0);
    EXPECT_LT(X, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng R(5);
  double Sum = 0.0, Sum2 = 0.0;
  const int N = 200000;
  for (int I = 0; I != N; ++I) {
    double G = R.nextGaussian();
    Sum += G;
    Sum2 += G * G;
  }
  EXPECT_NEAR(Sum / N, 0.0, 0.02);
  EXPECT_NEAR(Sum2 / N, 1.0, 0.03);
}

TEST(RngTest, GammaMeanMatchesShape) {
  Rng R(9);
  for (double Shape : {0.5, 1.0, 2.5, 8.0}) {
    double Sum = 0.0;
    const int N = 60000;
    for (int I = 0; I != N; ++I)
      Sum += R.nextGamma(Shape);
    EXPECT_NEAR(Sum / N, Shape, 0.06 * Shape + 0.02);
  }
}

TEST(RngTest, ExponentialMean) {
  Rng R(13);
  double Sum = 0.0;
  const int N = 100000;
  for (int I = 0; I != N; ++I)
    Sum += R.nextExponential(2.5);
  EXPECT_NEAR(Sum / N, 2.5, 0.08);
}

TEST(RngTest, BernoulliRate) {
  Rng R(17);
  int Hits = 0;
  const int N = 100000;
  for (int I = 0; I != N; ++I)
    Hits += R.nextBernoulli(0.3);
  EXPECT_NEAR(double(Hits) / N, 0.3, 0.01);
}

TEST(RngTest, SampleIndicesAreDistinctAndInRange) {
  Rng R(21);
  for (size_t N : {10ul, 100ul, 1000ul}) {
    for (size_t K : {1ul, 5ul, N / 2, N}) {
      std::vector<size_t> S = R.sampleIndices(N, K);
      EXPECT_EQ(S.size(), std::min(N, K));
      std::set<size_t> Unique(S.begin(), S.end());
      EXPECT_EQ(Unique.size(), S.size());
      for (size_t V : S)
        EXPECT_LT(V, N);
    }
  }
}

TEST(RngTest, SampleIndicesFullPermutation) {
  Rng R(23);
  std::vector<size_t> S = R.sampleIndices(50, 50);
  std::set<size_t> Unique(S.begin(), S.end());
  EXPECT_EQ(Unique.size(), 50u);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng A(31);
  Rng Child = A.split();
  // The child stream must not track the parent.
  int Same = 0;
  for (int I = 0; I != 64; ++I)
    Same += A.next() == Child.next();
  EXPECT_LT(Same, 2);
}

TEST(RngTest, HashCombineSensitiveToOrder) {
  EXPECT_NE(hashCombine({1, 2}), hashCombine({2, 1}));
  EXPECT_NE(hashCombine({1}), hashCombine({1, 0}));
  EXPECT_EQ(hashCombine({5, 6, 7}), hashCombine({5, 6, 7}));
}

//===----------------------------------------------------------------------===//
// BigUInt
//===----------------------------------------------------------------------===//

TEST(BigUIntTest, ConstructAndToString) {
  EXPECT_EQ(BigUInt().toString(), "0");
  EXPECT_EQ(BigUInt(1).toString(), "1");
  EXPECT_EQ(BigUInt(123456789).toString(), "123456789");
  EXPECT_EQ(BigUInt(~0ull).toString(), "18446744073709551615");
}

TEST(BigUIntTest, AdditionMatchesU64) {
  Rng R(1);
  for (int I = 0; I != 500; ++I) {
    uint64_t A = R.next() >> 2, B = R.next() >> 2;
    EXPECT_EQ((BigUInt(A) + BigUInt(B)).toU64(), A + B);
  }
}

TEST(BigUIntTest, MultiplicationMatchesU128) {
  Rng R(2);
  for (int I = 0; I != 500; ++I) {
    uint64_t A = R.next() >> 32, B = R.next() >> 32;
    __uint128_t Expect = static_cast<__uint128_t>(A) * B;
    BigUInt Got = BigUInt(A) * BigUInt(B);
    EXPECT_EQ(Got.toU64(), static_cast<uint64_t>(Expect));
  }
}

TEST(BigUIntTest, MulScalarChain) {
  // 2^96 via repeated scalar multiplication.
  BigUInt V(1);
  for (int I = 0; I != 96; ++I)
    V.mulScalar(2);
  EXPECT_EQ(V.toString(), "79228162514264337593543950336");
}

TEST(BigUIntTest, DivModScalarRoundTrip) {
  Rng R(3);
  for (int I = 0; I != 200; ++I) {
    uint64_t A = R.next();
    uint32_t D = static_cast<uint32_t>(R.nextBounded(1000000) + 1);
    BigUInt V(A);
    uint32_t Rem = V.divModScalar(D);
    EXPECT_EQ(Rem, A % D);
    EXPECT_EQ(V.toU64(), A / D);
  }
}

TEST(BigUIntTest, Comparisons) {
  EXPECT_LT(BigUInt(5), BigUInt(7));
  EXPECT_GT(BigUInt(1) * BigUInt(1ull << 40) * BigUInt(1ull << 40),
            BigUInt(~0ull));
  EXPECT_EQ(BigUInt(42), BigUInt(42));
}

TEST(BigUIntTest, ToDoubleApproximation) {
  BigUInt V(1);
  for (int I = 0; I != 90; ++I)
    V.mulScalar(10);
  EXPECT_NEAR(V.toDouble() / 1e90, 1.0, 1e-9);
}

TEST(BigUIntTest, ToScientific) {
  BigUInt V(378);
  for (int I = 0; I != 12; ++I)
    V.mulScalar(10);
  EXPECT_EQ(V.toScientific(3), "3.78e14");
  EXPECT_EQ(BigUInt(0).toScientific(3), "0");
  EXPECT_EQ(BigUInt(7).toScientific(1), "7e0");
}

TEST(BigUIntTest, AddScalarCarries) {
  BigUInt V(0xFFFFFFFFull);
  V.addScalar(1);
  EXPECT_EQ(V.toU64(), 0x100000000ull);
}

//===----------------------------------------------------------------------===//
// Format
//===----------------------------------------------------------------------===//

TEST(FormatTest, FormatString) {
  EXPECT_EQ(formatString("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(formatString("%.2f", 1.005), "1.00");
}

TEST(FormatTest, PaperNumberRanges) {
  EXPECT_EQ(formatPaperNumber(0.0), "0");
  EXPECT_EQ(formatPaperNumber(57.46), "57.46");
  EXPECT_EQ(formatPaperNumber(26200.0), "2.62e4");
  EXPECT_EQ(formatPaperNumber(0.0001), "1.00e-4");
}

TEST(FormatTest, Seconds) {
  EXPECT_EQ(formatSeconds(0.5e-6), "500.0 ns");
  EXPECT_EQ(formatSeconds(0.0123), "12.3 ms");
  EXPECT_EQ(formatSeconds(90.0), "90.00 s");
  EXPECT_EQ(formatSeconds(3600.0), "60.0 min");
}

TEST(FormatTest, PadAndJoin) {
  EXPECT_EQ(padLeft("ab", 4), "  ab");
  EXPECT_EQ(padRight("ab", 4), "ab  ");
  EXPECT_EQ(padLeft("abcde", 3), "abcde");
  EXPECT_EQ(joinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(joinStrings({}, ","), "");
}

//===----------------------------------------------------------------------===//
// Table
//===----------------------------------------------------------------------===//

TEST(TableTest, CsvEscaping) {
  Table T({"a", "b"});
  T.addRow({"x,y", "he said \"hi\""});
  std::string Csv = T.toCsv();
  EXPECT_NE(Csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(Csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, RowCount) {
  Table T({"h"});
  EXPECT_EQ(T.numRows(), 0u);
  T.addRow({"1"});
  T.addRow({"2"});
  EXPECT_EQ(T.numRows(), 2u);
}

TEST(TableTest, WriteCsvRoundTrip) {
  Table T({"x", "y"});
  T.addRow({"1", "2"});
  std::string Path = testing::TempDir() + "/alic_table_test.csv";
  ASSERT_TRUE(T.writeCsv(Path));
  std::FILE *F = std::fopen(Path.c_str(), "r");
  ASSERT_NE(F, nullptr);
  char Buf[64] = {0};
  ASSERT_NE(std::fgets(Buf, sizeof(Buf), F), nullptr);
  EXPECT_STREQ(Buf, "x,y\n");
  std::fclose(F);
}

//===----------------------------------------------------------------------===//
// Env
//===----------------------------------------------------------------------===//

TEST(EnvTest, StringDefault) {
  unsetenv("ALIC_TEST_VAR");
  EXPECT_EQ(getEnvString("ALIC_TEST_VAR", "dflt"), "dflt");
  setenv("ALIC_TEST_VAR", "value", 1);
  EXPECT_EQ(getEnvString("ALIC_TEST_VAR", "dflt"), "value");
  unsetenv("ALIC_TEST_VAR");
}

TEST(EnvTest, IntParsing) {
  setenv("ALIC_TEST_INT", "123", 1);
  EXPECT_EQ(getEnvInt("ALIC_TEST_INT", 7), 123);
  setenv("ALIC_TEST_INT", "garbage", 1);
  EXPECT_EQ(getEnvInt("ALIC_TEST_INT", 7), 7);
  unsetenv("ALIC_TEST_INT");
}

TEST(EnvTest, ScalePresetNames) {
  EXPECT_STREQ(scaleName(ScaleKind::Smoke), "smoke");
  EXPECT_STREQ(scaleName(ScaleKind::Bench), "bench");
  EXPECT_STREQ(scaleName(ScaleKind::Paper), "paper");
}

//===----------------------------------------------------------------------===//
// Scheduler (basic pool behavior; nesting and stealing live in
// scheduler_test.cpp)
//===----------------------------------------------------------------------===//

TEST(SchedulerTest, RunsAllTasks) {
  Scheduler Pool(4);
  std::atomic<int> Counter{0};
  for (int I = 0; I != 100; ++I)
    Pool.submit([&Counter] { ++Counter; });
  Pool.waitAll();
  EXPECT_EQ(Counter.load(), 100);
}

TEST(SchedulerTest, ParallelForCoversRange) {
  Scheduler Pool(3);
  std::vector<std::atomic<int>> Hits(64);
  Pool.parallelFor(64, [&Hits](size_t I) { ++Hits[I]; });
  for (auto &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

TEST(SchedulerTest, ReusableAfterWait) {
  Scheduler Pool(2);
  std::atomic<int> Counter{0};
  Pool.submit([&] { ++Counter; });
  Pool.waitAll();
  Pool.submit([&] { ++Counter; });
  Pool.waitAll();
  EXPECT_EQ(Counter.load(), 2);
}

TEST(SchedulerTest, ParallelForShardsCoversRangeExactlyOnce) {
  Scheduler Pool(3);
  std::vector<std::atomic<int>> Hits(100);
  Pool.parallelForShards(100, 7, [&Hits](size_t, size_t Begin, size_t End) {
    for (size_t I = Begin; I != End; ++I)
      ++Hits[I];
  });
  for (auto &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

TEST(SchedulerTest, ShardGridIndependentOfWorkerCount) {
  // The shard boundaries are a pure function of (N, ShardSize): the
  // sequential path, a 1-thread pool, and a 5-thread pool must all see
  // the same grid — the property candidate scoring's determinism rests on.
  auto gridOf = [](Scheduler *Pool) {
    std::vector<std::tuple<size_t, size_t, size_t>> Grid(4);
    shardedFor(Pool, 25, 8, [&Grid](size_t Shard, size_t Begin, size_t End) {
      Grid[Shard] = {Shard, Begin, End};
    });
    return Grid;
  };
  std::vector<std::tuple<size_t, size_t, size_t>> Expected = {
      {0, 0, 8}, {1, 8, 16}, {2, 16, 24}, {3, 24, 25}};
  EXPECT_EQ(gridOf(nullptr), Expected);
  Scheduler One(1), Five(5);
  EXPECT_EQ(gridOf(&One), Expected);
  EXPECT_EQ(gridOf(&Five), Expected);
}

TEST(SchedulerTest, ShardedForRunsInlineWithoutPool) {
  // No pool: shards run on the calling thread, in shard order.
  std::vector<size_t> Order;
  shardedFor(nullptr, 10, 3, [&Order](size_t Shard, size_t, size_t) {
    Order.push_back(Shard);
  });
  EXPECT_EQ(Order, (std::vector<size_t>{0, 1, 2, 3}));
}

//===----------------------------------------------------------------------===//
// FlatRows
//===----------------------------------------------------------------------===//

TEST(FlatRowsTest, PushFixesDimAndStoresContiguously) {
  FlatRows Rows;
  EXPECT_TRUE(Rows.empty());
  Rows.push({1.0, 2.0, 3.0});
  Rows.push({4.0, 5.0, 6.0});
  EXPECT_EQ(Rows.size(), 2u);
  EXPECT_EQ(Rows.dim(), 3u);
  EXPECT_EQ(Rows.row(1), Rows.row(0) + 3); // one buffer, row-major
  EXPECT_DOUBLE_EQ(Rows[1][2], 6.0);
  EXPECT_EQ(Rows.raw().size(), 6u);
}

TEST(FlatRowsTest, ConvertsFromNestedVectorsAndIterators) {
  std::vector<std::vector<double>> Nested = {{1.0, 2.0}, {3.0, 4.0},
                                             {5.0, 6.0}};
  FlatRows All = Nested;
  EXPECT_EQ(All.size(), 3u);
  EXPECT_DOUBLE_EQ(All[2][1], 6.0);

  FlatRows Sub(Nested.begin() + 1, Nested.end());
  EXPECT_EQ(Sub.size(), 2u);
  EXPECT_DOUBLE_EQ(Sub[0][0], 3.0);

  FlatRows Braced = {{7.0}, {8.0}};
  EXPECT_EQ(Braced.dim(), 1u);
  EXPECT_DOUBLE_EQ(Braced[1][0], 8.0);
}

TEST(FlatRowsTest, PopRowAndClear) {
  FlatRows Rows = {{1.0, 2.0}, {3.0, 4.0}};
  Rows.popRow();
  EXPECT_EQ(Rows.size(), 1u);
  EXPECT_DOUBLE_EQ(Rows[0][1], 2.0);
  Rows.push({9.0, 9.0});
  EXPECT_EQ(Rows.size(), 2u);
  Rows.clear();
  EXPECT_TRUE(Rows.empty());
  EXPECT_EQ(Rows.dim(), 2u); // dimensionality survives a clear
}

TEST(RowRefTest, ViewsVectorsWithoutCopying) {
  std::vector<double> V = {1.0, 2.0, 3.0};
  RowRef R = V;
  EXPECT_EQ(R.data(), V.data());
  EXPECT_EQ(R.size(), 3u);
  EXPECT_DOUBLE_EQ(R[1], 2.0);
  EXPECT_EQ(R.toVector(), V);
}

//===----------------------------------------------------------------------===//
// Serialize
//===----------------------------------------------------------------------===//

TEST(SerializeTest, ScalarRoundTrip) {
  ByteWriter W;
  W.writeU8(0xab);
  W.writeU16(0xbeef);
  W.writeU32(0xdeadbeefu);
  W.writeU64(0x0123456789abcdefull);
  W.writeDouble(-1.5);
  W.writeString("campaign");

  ByteReader R(W.bytes());
  uint8_t U8;
  uint16_t U16;
  uint32_t U32;
  uint64_t U64;
  double D;
  std::string S;
  EXPECT_TRUE(R.readU8(U8));
  EXPECT_TRUE(R.readU16(U16));
  EXPECT_TRUE(R.readU32(U32));
  EXPECT_TRUE(R.readU64(U64));
  EXPECT_TRUE(R.readDouble(D));
  EXPECT_TRUE(R.readString(S));
  EXPECT_EQ(U8, 0xab);
  EXPECT_EQ(U16, 0xbeef);
  EXPECT_EQ(U32, 0xdeadbeefu);
  EXPECT_EQ(U64, 0x0123456789abcdefull);
  EXPECT_DOUBLE_EQ(D, -1.5);
  EXPECT_EQ(S, "campaign");
  EXPECT_TRUE(R.ok());
  EXPECT_TRUE(R.atEnd());
}

TEST(SerializeTest, DoubleBitsSurviveExactly) {
  // Values whose decimal renderings are lossy must still round trip: the
  // writer stores raw IEEE bits.
  const double Values[] = {0.1, 1.0 / 3.0, 6.02214076e23, 5e-324,
                           -0.0,  1e308};
  ByteWriter W;
  for (double V : Values)
    W.writeDouble(V);
  ByteReader R(W.bytes());
  for (double V : Values) {
    double Read;
    ASSERT_TRUE(R.readDouble(Read));
    uint64_t WantBits, GotBits;
    std::memcpy(&WantBits, &V, sizeof(WantBits));
    std::memcpy(&GotBits, &Read, sizeof(GotBits));
    EXPECT_EQ(GotBits, WantBits);
  }
}

TEST(SerializeTest, VectorRoundTrip) {
  ByteWriter W;
  W.writeU16s({1, 2, 65535});
  W.writeDoubles({0.25, -7.5});
  W.writeDoubles({});
  ByteReader R(W.bytes());
  std::vector<uint16_t> U16s;
  std::vector<double> Doubles, Empty;
  EXPECT_TRUE(R.readU16s(U16s));
  EXPECT_TRUE(R.readDoubles(Doubles));
  EXPECT_TRUE(R.readDoubles(Empty));
  EXPECT_EQ(U16s, (std::vector<uint16_t>{1, 2, 65535}));
  EXPECT_EQ(Doubles, (std::vector<double>{0.25, -7.5}));
  EXPECT_TRUE(Empty.empty());
  EXPECT_TRUE(R.atEnd());
}

TEST(SerializeTest, TruncationIsStickyNotFatal) {
  ByteWriter W;
  W.writeU64(7);
  std::vector<uint8_t> Bytes = W.bytes();
  Bytes.pop_back(); // truncate
  ByteReader R(std::move(Bytes));
  uint64_t Value;
  EXPECT_FALSE(R.readU64(Value));
  EXPECT_FALSE(R.ok());
  uint8_t Byte;
  EXPECT_FALSE(R.readU8(Byte)); // sticky: later reads fail too
}

TEST(SerializeTest, HugeLengthPrefixIsRejected) {
  // A corrupt length prefix must not trigger a giant allocation.
  ByteWriter W;
  W.writeU64(uint64_t(1) << 60);
  ByteReader R(W.bytes());
  std::vector<double> Doubles;
  EXPECT_FALSE(R.readDoubles(Doubles));
  EXPECT_FALSE(R.ok());
}

TEST(SerializeTest, AtomicFileRoundTrip) {
  std::string Path = ::testing::TempDir() + "alic_serialize_test.bin";
  ByteWriter W;
  W.writeString("hello");
  W.writeDouble(2.5);
  ASSERT_TRUE(W.writeFileAtomic(Path));

  ByteReader R({});
  ASSERT_TRUE(ByteReader::fromFile(Path, R));
  std::string S;
  double D;
  EXPECT_TRUE(R.readString(S));
  EXPECT_TRUE(R.readDouble(D));
  EXPECT_EQ(S, "hello");
  EXPECT_DOUBLE_EQ(D, 2.5);
  EXPECT_TRUE(R.atEnd());
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Json hardening (untrusted socket input reaches this parser)
//===----------------------------------------------------------------------===//

TEST(JsonTest, NestingDepthIsCapped) {
  // A hostile line of nested containers must fail cleanly, not overflow
  // the parser's stack.
  std::string Deep(100000, '[');
  JsonValue Out;
  EXPECT_FALSE(parseJson(Deep.c_str(), Out));
  std::string DeepObjects;
  for (int I = 0; I != 100000; ++I)
    DeepObjects += "{\"k\":";
  EXPECT_FALSE(parseJson(DeepObjects.c_str(), Out));
  // Shallow documents (our surfaces nest 2-3 levels) still parse.
  EXPECT_TRUE(parseJson("[[[[[1]]]]]", Out));
}

TEST(JsonTest, NumbersFollowJsonGrammarAndStayFinite) {
  JsonValue Out;
  for (const char *Bad :
       {"nan", "NaN", "inf", "Infinity", "-inf", "0x12", "1e999", "-1e999",
        "01", "+1", ".5", "1.", "1e", "1e+", "--1"})
    EXPECT_FALSE(parseJson(Bad, Out)) << Bad;
  for (const char *Good : {"0", "-0", "12", "-3.5", "1e9", "2.5E-3", "1e+2"})
    EXPECT_TRUE(parseJson(Good, Out)) << Good;
  EXPECT_TRUE(parseJson("6.25e-2", Out));
  EXPECT_EQ(Out.K, JsonValue::Kind::Number);
  EXPECT_DOUBLE_EQ(Out.Number, 0.0625);
  // ...including inside containers (the observe costs path).
  EXPECT_FALSE(parseJson("{\"costs\":[nan]}", Out));
  EXPECT_FALSE(parseJson("{\"costs\":[1e999]}", Out));
}

TEST(JsonTest, FormatJsonDoubleNeverEmitsInvalidTokens) {
  EXPECT_EQ(formatJsonDouble(std::nan("")), "null");
  EXPECT_EQ(formatJsonDouble(HUGE_VAL), "null");
  EXPECT_EQ(formatJsonDouble(-HUGE_VAL), "null");
  // Finite values still round-trip bit-exactly.
  double Value = 0.1 + 0.2;
  JsonValue Out;
  ASSERT_TRUE(parseJson(formatJsonDouble(Value).c_str(), Out));
  EXPECT_EQ(Out.Number, Value);
}

//===----------------------------------------------------------------------===//
// Backoff
//===----------------------------------------------------------------------===//

TEST(BackoffTest, DeterministicPerSeedAndAttempt) {
  Backoff A(17, 10, 1000), B(17, 10, 1000);
  for (uint64_t Attempt = 0; Attempt != 12; ++Attempt)
    EXPECT_EQ(A.delayMs(Attempt), B.delayMs(Attempt));
  // Same attempt, different seed: the jitter stream differs.
  Backoff C(18, 10, 1000);
  int Same = 0;
  for (uint64_t Attempt = 0; Attempt != 12; ++Attempt)
    Same += A.delayMs(Attempt) == C.delayMs(Attempt);
  EXPECT_LT(Same, 12);
}

TEST(BackoffTest, ZeroJitterIsThePureLadder) {
  // The ledger-append ladder this class replaced: 1, 2, 4, 4, ... ms.
  Backoff Ladder(0, 1, 4, 0.0);
  EXPECT_EQ(Ladder.delayMs(0), 1u);
  EXPECT_EQ(Ladder.delayMs(1), 2u);
  EXPECT_EQ(Ladder.delayMs(2), 4u);
  EXPECT_EQ(Ladder.delayMs(3), 4u);
  EXPECT_EQ(Ladder.delayMs(100), 4u);
}

TEST(BackoffTest, DelaysStayInsideTheJitterWindow) {
  const double Fraction = 0.5;
  Backoff B(99, 100, 1600, Fraction);
  for (uint64_t Attempt = 0; Attempt != 10; ++Attempt) {
    uint64_t Envelope = std::min<uint64_t>(100u << std::min<uint64_t>(
                                               Attempt, 63),
                                           1600);
    uint64_t Delay = B.delayMs(Attempt);
    EXPECT_LE(Delay, Envelope) << "attempt " << Attempt;
    EXPECT_GE(Delay, Envelope - uint64_t(Envelope * Fraction))
        << "attempt " << Attempt;
  }
}

TEST(BackoffTest, EnvelopeGrowsMonotonicallyToTheCap) {
  Backoff B(7, 50, 2000, 0.0);
  uint64_t Prev = 0;
  for (uint64_t Attempt = 0; Attempt != 16; ++Attempt) {
    uint64_t Delay = B.delayMs(Attempt);
    EXPECT_GE(Delay, Prev);
    EXPECT_LE(Delay, B.capMs());
    Prev = Delay;
  }
  EXPECT_EQ(Prev, B.capMs());
}

//===- tests/model_test.cpp - surrogate-interface + kNN tests -*- C++ -*-===//

#include "dynatree/DynaTree.h"
#include "model/KnnModel.h"
#include "support/Rng.h"
#include "support/Scheduler.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace alic;

TEST(KnnModelTest, ExactAtTrainingPoints) {
  KnnModel M(1);
  M.fit({{0.0}, {1.0}, {2.0}}, {5.0, 7.0, 9.0});
  EXPECT_NEAR(M.predict({1.0}).Mean, 7.0, 1e-6);
  EXPECT_NEAR(M.predict({2.0}).Mean, 9.0, 1e-6);
}

TEST(KnnModelTest, InterpolatesBetweenNeighbours) {
  KnnModel M(2);
  M.fit({{0.0}, {1.0}}, {0.0, 10.0});
  double Mid = M.predict({0.5}).Mean;
  EXPECT_GT(Mid, 2.0);
  EXPECT_LT(Mid, 8.0);
}

TEST(KnnModelTest, VarianceReflectsNeighbourDisagreement) {
  KnnModel M(3);
  // Agreeing cluster on the left, wildly disagreeing one on the right.
  M.fit({{-1.0}, {-1.1}, {-0.9}, {1.0}, {1.1}, {0.9}},
        {2.0, 2.0, 2.0, 0.0, 10.0, 5.0});
  EXPECT_GT(M.predict({1.0}).Variance, M.predict({-1.0}).Variance);
}

TEST(KnnModelTest, UpdateAddsPoints) {
  KnnModel M(1);
  M.fit({{0.0}}, {1.0});
  M.update({5.0}, 9.0);
  EXPECT_EQ(M.numObservations(), 2u);
  EXPECT_NEAR(M.predict({5.0}).Mean, 9.0, 1e-6);
}

TEST(KnnModelTest, AlmScoresMatchVariance) {
  KnnModel M(3);
  M.fit({{0.0}, {0.1}, {2.0}, {2.1}}, {1.0, 1.0, 4.0, 8.0});
  std::vector<std::vector<double>> Cands = {{0.05}, {2.05}};
  std::vector<double> Alm = M.almScores(Cands);
  EXPECT_DOUBLE_EQ(Alm[0], M.predict(Cands[0]).Variance);
  EXPECT_DOUBLE_EQ(Alm[1], M.predict(Cands[1]).Variance);
}

TEST(KnnModelTest, AlcPrefersCandidatesNearUncertainReferences) {
  KnnModel M(3);
  // Agreeing cluster on the left (low spread), disagreeing cluster on the
  // right (high spread).
  M.fit({{-1.0}, {-1.1}, {-0.9}, {1.0}, {1.1}, {0.9}},
        {2.0, 2.0, 2.0, 0.0, 10.0, 5.0});
  std::vector<std::vector<double>> Ref = {{-1.0}, {1.0}};
  std::vector<double> Scores = M.alcScores({{1.05}, {-1.05}}, Ref);
  EXPECT_GT(Scores[0], 0.0);
  EXPECT_GT(Scores[1], 0.0);
  // Observing next to the noisy cluster relieves more reference variance.
  EXPECT_GT(Scores[0], Scores[1]);
}

TEST(KnnModelTest, ParallelAlcBitIdenticalToSequential) {
  Rng R(33);
  KnnModel M(5);
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  for (int I = 0; I != 120; ++I) {
    X.push_back({R.nextUniform(-1, 1), R.nextUniform(-1, 1)});
    Y.push_back(X.back()[0] + 0.5 * R.nextGaussian());
  }
  M.fit(X, Y);
  std::vector<std::vector<double>> Cands(X.begin(), X.begin() + 90);
  std::vector<std::vector<double>> Ref(X.begin() + 90, X.end());

  std::vector<double> Sequential = M.alcScores(Cands, Ref);
  Scheduler Pool(4);
  ScoreContext Ctx;
  Ctx.Pool = &Pool;
  EXPECT_EQ(M.alcScores(Cands, Ref, Ctx), Sequential);
}

TEST(ModelComparisonTest, DynaTreeBeatsKnnOnStructuredNoise) {
  // On a heteroskedastic step function with many samples, the Bayesian
  // tree's pooled leaves average noise away; 1-NN chases it.
  Rng R(21);
  auto Fn = [](double X) { return X < 0.0 ? 1.0 : 4.0; };
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  for (int I = 0; I != 400; ++I) {
    double V = R.nextUniform(-1, 1);
    X.push_back({V});
    Y.push_back(Fn(V) + 0.4 * R.nextGaussian());
  }
  DynaTreeConfig C;
  C.NumParticles = 150;
  DynaTree Tree(C);
  Tree.fit(X, Y);
  KnnModel Knn(1);
  Knn.fit(X, Y);

  double TreeSe = 0.0, KnnSe = 0.0;
  for (int I = 0; I != 200; ++I) {
    double V = R.nextUniform(-0.9, 0.9);
    double T = Fn(V);
    TreeSe += std::pow(Tree.predict({V}).Mean - T, 2);
    KnnSe += std::pow(Knn.predict({V}).Mean - T, 2);
  }
  EXPECT_LT(TreeSe, KnnSe);
}

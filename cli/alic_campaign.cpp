//===- cli/alic_campaign.cpp - Campaign orchestrator CLI ------*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
//
// Drives exp/Campaign: one resumable command for the paper's full
// reproduction cross-product.  Typical use:
//
//   ALIC_SCALE=smoke alic_campaign --models=dynatree,gp --scorers=alm,alc
//       --seeds=2 --threads=8 --state-dir=camp --out=BENCH_campaign.json
//
// Kill it at any point; re-running the same command skips every completed
// cell and produces a byte-identical BENCH_campaign.json.  --max-cells=K
// stops after K new cells (exit code 75, EX_TEMPFAIL) for deterministic
// interruption in tests and CI.
//
//===----------------------------------------------------------------------===//

#include "exp/Campaign.h"
#include "spapt/Suite.h"
#include "support/Backoff.h"
#include "support/Env.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

using namespace alic;

namespace {

/// Exit code when --max-cells interrupted the campaign before completion.
constexpr int ExitIncomplete = 75; // EX_TEMPFAIL: retry (resume) later

/// Exit code when ledger I/O failures quarantined cells (EX_IOERR).  The
/// campaign finished every other cell; re-running the same command
/// retries exactly the quarantined ones.
constexpr int ExitQuarantined = 74;

std::vector<std::string> splitList(const std::string &Csv) {
  std::vector<std::string> Parts;
  size_t Pos = 0;
  while (Pos <= Csv.size()) {
    size_t Comma = Csv.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Csv.size();
    if (Comma > Pos)
      Parts.push_back(Csv.substr(Pos, Comma - Pos));
    Pos = Comma + 1;
  }
  return Parts;
}

[[noreturn]] void usage(const char *Binary, const char *Complaint) {
  if (Complaint)
    std::fprintf(stderr, "error: %s\n\n", Complaint);
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "Sharded, checkpointable experiment campaign over the SPAPT suite.\n"
      "Scale comes from ALIC_SCALE (smoke|bench|paper; default bench).\n\n"
      "  --benchmarks=a,b,...  subset of benchmarks (default: all eleven)\n"
      "  --models=LIST         dynatree,gp,gp_sor (default: dynatree)\n"
      "  --scorers=LIST        alc,alm,random (default: alc)\n"
      "  --batches=LIST        step batch sizes (default: 1)\n"
      "  --policies=LIST       query policies: always, alm[:abs[:rel]],\n"
      "                        cost[:c0[:c1]] (default: always)\n"
      "  --seeds=N             repetitions per combo (default: scale's)\n"
      "  --threads=N|auto      scheduler workers; cells run as tasks and\n"
      "                        fork their inner shards onto the same pool\n"
      "                        (auto = hardware concurrency; 0 = inline)\n"
      "  --flat-cells          keep cells model-internally sequential (the\n"
      "                        pre-scheduler cell-granularity budget)\n"
      "  --state-dir=DIR       checkpoint ledger + dataset cache location\n"
      "                        (default: alic-campaign-<scale>)\n"
      "  --out=PATH            aggregate JSON (default: BENCH_campaign.json)\n"
      "  --max-cells=K         stop after K new cells, exit %d (resume by\n"
      "                        re-running; 0 = run to completion)\n"
      "  --shuffle=SEED        execute missing cells in shuffled order\n"
      "  --no-noise            skip the per-benchmark noise-summary cells\n"
      "\nScale-out (N independent processes, one spec — see ARCHITECTURE.md):\n"
      "  --shard=I/N           run only static shard I of N (0-based); this\n"
      "                        worker appends to cells.shard<I>of<N>.jsonl\n"
      "  --lease-claim         claim cell ranges dynamically through lease\n"
      "                        files in <state-dir>/leases, stealing ranges\n"
      "                        from dead workers; returns when the whole\n"
      "                        spec is in the union of worker ledgers\n"
      "  --lease-ttl-ms=MS     steal leases idle longer than MS (2000)\n"
      "  --lease-heartbeat-ms=MS  renewal cadence (default: ttl/4)\n"
      "  --lease-range-cells=K cells per claimable range (16)\n"
      "  --worker-id=ID        per-worker ledger tag (cells.<ID>.jsonl)\n"
      "  --merge-ledgers       union every cells*.jsonl shard ledger into\n"
      "                        the canonical cells.jsonl and exit; byte-\n"
      "                        conflicting duplicates quarantine (exit %d)\n"
      "  --spawn-workers=K     supervise K --lease-claim child processes,\n"
      "                        restarting crashed ones with jittered backoff\n"
      "  --max-restarts=N      total child restart budget (default 8)\n",
      Binary, ExitIncomplete, ExitQuarantined);
  std::exit(2);
}

bool parseFlag(const char *Arg, const char *Name, std::string &Value) {
  size_t Len = std::strlen(Name);
  if (std::strncmp(Arg, Name, Len) != 0 || Arg[Len] != '=')
    return false;
  Value = Arg + Len + 1;
  return true;
}

uint64_t parseCount(const char *Binary, const std::string &Text,
                    const char *What) {
  // strtoull silently wraps negatives ("-1" -> ~4 billion); reject them.
  if (Text.empty() || Text.find_first_not_of("0123456789") != std::string::npos)
    usage(Binary, What);
  char *End = nullptr;
  unsigned long long Value = std::strtoull(Text.c_str(), &End, 10);
  if (End == Text.c_str() || *End != '\0')
    usage(Binary, What);
  return Value;
}

/// --spawn-workers: fork+exec K copies of this invocation as --lease-claim
/// workers, restart the ones that crash (killed by a signal, or the
/// failpoint crash simulator's exit 43) with jittered exponential backoff,
/// and fold the children's exit codes into one verdict.  Lease workers
/// exit 0 only once the *whole spec* is in the union of worker ledgers, so
/// success is "any child exited 0 and none quarantined" — a crashed child
/// whose restart budget ran out is fine as long as a survivor finished.
int runSupervisor(int argc, char **argv, unsigned NumWorkers,
                  uint64_t MaxRestarts, const CampaignOptions &Options) {
  // Re-exec ourselves: /proc/self/exe survives $PATH lookups and chdir;
  // argv[0] is the fallback for exotic mounts.
  char ExeBuf[4096];
  ssize_t Len = ::readlink("/proc/self/exe", ExeBuf, sizeof(ExeBuf) - 1);
  std::string Exe = Len > 0 ? std::string(ExeBuf, size_t(Len)) : argv[0];

  // Child argv: this command minus the supervisor-only flags, plus
  // --lease-claim and a per-worker identity.
  std::vector<std::string> Base;
  Base.push_back(Exe);
  bool HasLeaseClaim = false;
  for (int I = 1; I != argc; ++I) {
    if (std::strncmp(argv[I], "--spawn-workers=", 16) == 0 ||
        std::strncmp(argv[I], "--max-restarts=", 15) == 0 ||
        std::strncmp(argv[I], "--worker-id=", 12) == 0)
      continue;
    if (std::strcmp(argv[I], "--lease-claim") == 0)
      HasLeaseClaim = true;
    Base.push_back(argv[I]);
  }
  if (!HasLeaseClaim)
    Base.push_back("--lease-claim");

  struct Worker {
    pid_t Pid = -1;
    unsigned Restarts = 0;
  };
  std::vector<Worker> Workers(NumWorkers);

  auto spawn = [&](unsigned Index, bool IsRestart) {
    std::vector<std::string> Args = Base;
    Args.push_back("--worker-id=w" + std::to_string(Index));
    std::vector<char *> Argv;
    for (std::string &Arg : Args)
      Argv.push_back(Arg.data());
    Argv.push_back(nullptr);
    pid_t Pid = ::fork();
    if (Pid < 0) {
      std::fprintf(stderr, "supervisor: fork: %s\n", std::strerror(errno));
      return false;
    }
    if (Pid == 0) {
      // A restarted worker must not re-arm the fault that killed its
      // predecessor — an inherited crash failpoint would loop the
      // restart budget away without making progress.
      if (IsRestart)
        ::unsetenv("ALIC_FAILPOINTS");
      ::execv(Exe.c_str(), Argv.data());
      std::fprintf(stderr, "supervisor: exec %s: %s\n", Exe.c_str(),
                   std::strerror(errno));
      ::_exit(127);
    }
    Workers[Index].Pid = Pid;
    return true;
  };

  std::printf("# alic_campaign supervisor: %u lease worker(s), state-dir=%s, "
              "restart budget %llu\n",
              NumWorkers, Options.StateDir.c_str(),
              (unsigned long long)MaxRestarts);
  unsigned Running = 0;
  bool AnyFailed = false;
  for (unsigned I = 0; I != NumWorkers; ++I) {
    if (spawn(I, false))
      ++Running;
    else
      AnyFailed = true;
  }

  uint64_t RestartsUsed = 0;
  bool AnyQuarantined = false, AnyIncomplete = false, AnyDone = false;
  while (Running) {
    int WStatus = 0;
    pid_t Pid = ::waitpid(-1, &WStatus, 0);
    if (Pid < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    size_t Index = Workers.size();
    for (size_t I = 0; I != Workers.size(); ++I)
      if (Workers[I].Pid == Pid)
        Index = I;
    if (Index == Workers.size())
      continue; // not ours (some library's helper child)
    Worker &W = Workers[Index];
    W.Pid = -1;

    // Crash = killed by a signal, or the failpoint crash simulator
    // (support/FailPoint exits 43).  Deliberate stops — quarantine (74),
    // --max-cells interruption (75), clean exits — are never restarted.
    bool Crashed = WIFSIGNALED(WStatus) ||
                   (WIFEXITED(WStatus) && WEXITSTATUS(WStatus) == 43);
    if (Crashed && RestartsUsed < MaxRestarts) {
      ++RestartsUsed;
      ++W.Restarts;
      uint64_t Delay =
          Backoff(0xa11c0000u + Index, 50, 2000).delayMs(W.Restarts - 1);
      std::fprintf(stderr,
                   "supervisor: worker w%zu %s; restart %llu/%llu in "
                   "%llu ms\n",
                   Index,
                   WIFSIGNALED(WStatus)
                       ? ("killed by signal " +
                          std::to_string(WTERMSIG(WStatus)))
                             .c_str()
                       : "crashed (exit 43)",
                   (unsigned long long)RestartsUsed,
                   (unsigned long long)MaxRestarts,
                   (unsigned long long)Delay);
      std::this_thread::sleep_for(std::chrono::milliseconds(Delay));
      if (spawn(Index, true))
        continue;
      AnyFailed = true;
    }

    --Running;
    if (WIFSIGNALED(WStatus)) {
      std::fprintf(stderr,
                   "supervisor: worker w%zu killed by signal %d, restart "
                   "budget exhausted\n",
                   Index, WTERMSIG(WStatus));
      AnyFailed = true;
      continue;
    }
    int Code = WEXITSTATUS(WStatus);
    if (Code == 0)
      AnyDone = true;
    else if (Code == ExitQuarantined)
      AnyQuarantined = true;
    else if (Code == ExitIncomplete)
      AnyIncomplete = true;
    else
      AnyFailed = true;
    std::printf("supervisor: worker w%zu exited %d\n", Index, Code);
  }

  if (AnyQuarantined) {
    std::fprintf(stderr, "supervisor: worker(s) quarantined cells; re-run "
                         "to retry them\n");
    return ExitQuarantined;
  }
  if (AnyDone) {
    std::printf("supervisor: spec complete; merge the shard ledgers with "
                "--merge-ledgers --state-dir=%s\n",
                Options.StateDir.c_str());
    return 0;
  }
  return AnyIncomplete && !AnyFailed ? ExitIncomplete : 1;
}

} // namespace

int main(int argc, char **argv) {
  CampaignSpec Spec;
  Spec.Scale = ExperimentScale::fromEnv();
  Spec.ScaleName = scaleName(getScaleKind());
  Spec.Plans = defaultCampaignPlans(Spec.Scale);

  CampaignOptions Options;
  Options.StateDir = defaultCampaignStateDir(Spec.ScaleName);
  std::string OutPath = "BENCH_campaign.json";
  bool MergeMode = false;
  unsigned SpawnWorkers = 0;
  uint64_t MaxRestarts = 8;

  for (int I = 1; I != argc; ++I) {
    std::string Value;
    if (parseFlag(argv[I], "--benchmarks", Value)) {
      Spec.Benchmarks = splitList(Value);
      // An empty list would collide with the "empty means all" default —
      // likely an unset shell variable, so fail loudly instead.
      if (Spec.Benchmarks.empty())
        usage(argv[0], "--benchmarks= given with no benchmarks");
      const std::vector<std::string> &Known = spaptBenchmarkNames();
      for (const std::string &Name : Spec.Benchmarks)
        if (std::find(Known.begin(), Known.end(), Name) == Known.end())
          usage(argv[0], ("unknown benchmark: " + Name).c_str());
    } else if (parseFlag(argv[I], "--models", Value)) {
      Spec.Models.clear();
      if (splitList(Value).empty())
        usage(argv[0], "--models= given with no models");
      for (const std::string &Name : splitList(Value)) {
        if (Name == "dynatree")
          Spec.Models.push_back(ModelKind::DynaTree);
        else if (Name == "gp")
          Spec.Models.push_back(ModelKind::Gp);
        else if (Name == "gp_sor")
          Spec.Models.push_back(ModelKind::GpSor);
        else
          usage(argv[0], ("unknown model: " + Name).c_str());
      }
    } else if (parseFlag(argv[I], "--scorers", Value)) {
      Spec.Scorers.clear();
      if (splitList(Value).empty())
        usage(argv[0], "--scorers= given with no scorers");
      for (const std::string &Name : splitList(Value)) {
        if (Name == "alc")
          Spec.Scorers.push_back(ScorerKind::Alc);
        else if (Name == "alm")
          Spec.Scorers.push_back(ScorerKind::Alm);
        else if (Name == "random")
          Spec.Scorers.push_back(ScorerKind::Random);
        else
          usage(argv[0], ("unknown scorer: " + Name).c_str());
      }
    } else if (parseFlag(argv[I], "--batches", Value)) {
      Spec.BatchSizes.clear();
      if (splitList(Value).empty())
        usage(argv[0], "--batches= given with no batch sizes");
      for (const std::string &Text : splitList(Value)) {
        uint64_t Batch = parseCount(argv[0], Text, "bad --batches value");
        if (!Batch)
          usage(argv[0], "batch sizes must be positive");
        Spec.BatchSizes.push_back(unsigned(Batch));
      }
    } else if (parseFlag(argv[I], "--policies", Value)) {
      Spec.Policies.clear();
      if (splitList(Value).empty())
        usage(argv[0], "--policies= given with no policies");
      for (const std::string &Token : splitList(Value)) {
        QueryPolicyConfig Policy;
        if (!parseQueryPolicy(Token, Policy))
          usage(argv[0], ("unknown policy: " + Token).c_str());
        Spec.Policies.push_back(Policy);
      }
    } else if (parseFlag(argv[I], "--seeds", Value)) {
      Spec.Repetitions =
          unsigned(parseCount(argv[0], Value, "bad --seeds value"));
      if (!Spec.Repetitions)
        usage(argv[0], "--seeds must be positive");
    } else if (parseFlag(argv[I], "--threads", Value)) {
      if (Value == "auto")
        Options.Threads =
            std::max(1u, std::thread::hardware_concurrency());
      else
        Options.Threads =
            unsigned(parseCount(argv[0], Value, "bad --threads value"));
    } else if (std::strcmp(argv[I], "--flat-cells") == 0) {
      Options.NestCells = false;
    } else if (parseFlag(argv[I], "--state-dir", Value)) {
      Options.StateDir = Value;
    } else if (parseFlag(argv[I], "--out", Value)) {
      OutPath = Value;
    } else if (parseFlag(argv[I], "--max-cells", Value)) {
      Options.MaxCells =
          size_t(parseCount(argv[0], Value, "bad --max-cells value"));
    } else if (parseFlag(argv[I], "--shuffle", Value)) {
      Options.ShuffleSeed = parseCount(argv[0], Value, "bad --shuffle value");
    } else if (std::strcmp(argv[I], "--no-noise") == 0) {
      Spec.NoiseCells = false;
    } else if (parseFlag(argv[I], "--shard", Value)) {
      size_t Slash = Value.find('/');
      if (Slash == std::string::npos)
        usage(argv[0], "--shard wants I/N (e.g. --shard=0/3)");
      uint64_t Index =
          parseCount(argv[0], Value.substr(0, Slash), "bad --shard index");
      uint64_t Count =
          parseCount(argv[0], Value.substr(Slash + 1), "bad --shard count");
      if (!Count || Index >= Count)
        usage(argv[0], "--shard index must be 0-based and below the count");
      Options.ShardIndex = unsigned(Index);
      Options.ShardCount = unsigned(Count);
    } else if (std::strcmp(argv[I], "--lease-claim") == 0) {
      Options.LeaseClaim = true;
    } else if (parseFlag(argv[I], "--lease-ttl-ms", Value)) {
      Options.LeaseTtlMs = parseCount(argv[0], Value, "bad --lease-ttl-ms");
      if (!Options.LeaseTtlMs)
        usage(argv[0], "--lease-ttl-ms must be positive");
    } else if (parseFlag(argv[I], "--lease-heartbeat-ms", Value)) {
      Options.LeaseHeartbeatMs =
          parseCount(argv[0], Value, "bad --lease-heartbeat-ms");
    } else if (parseFlag(argv[I], "--lease-range-cells", Value)) {
      Options.LeaseRangeCells =
          unsigned(parseCount(argv[0], Value, "bad --lease-range-cells"));
    } else if (parseFlag(argv[I], "--worker-id", Value)) {
      if (Value.empty() ||
          Value.find_first_of("/\n") != std::string::npos)
        usage(argv[0], "--worker-id must be a non-empty filename fragment");
      Options.WorkerId = Value;
    } else if (std::strcmp(argv[I], "--merge-ledgers") == 0) {
      MergeMode = true;
    } else if (parseFlag(argv[I], "--spawn-workers", Value)) {
      SpawnWorkers =
          unsigned(parseCount(argv[0], Value, "bad --spawn-workers value"));
      if (!SpawnWorkers)
        usage(argv[0], "--spawn-workers must be positive");
    } else if (parseFlag(argv[I], "--max-restarts", Value)) {
      MaxRestarts = parseCount(argv[0], Value, "bad --max-restarts value");
    } else if (std::strcmp(argv[I], "--help") == 0 ||
               std::strcmp(argv[I], "-h") == 0) {
      usage(argv[0], nullptr);
    } else {
      usage(argv[0], (std::string("unknown option: ") + argv[I]).c_str());
    }
  }

  if (Options.ShardCount && Options.LeaseClaim)
    usage(argv[0], "--shard and --lease-claim are alternative sharding "
                   "modes; pick one");
  if (SpawnWorkers && (Options.ShardCount || MergeMode))
    usage(argv[0], "--spawn-workers supervises --lease-claim workers; it "
                   "cannot combine with --shard or --merge-ledgers");

  if (MergeMode) {
    LedgerMergeReport Report;
    Status S = mergeLedgers(Spec, Options, Report);
    if (!S.ok()) {
      std::fprintf(stderr, "merge: %s (errno %d)\n", S.message().c_str(),
                   S.errnoValue());
      return ExitQuarantined;
    }
    if (!Report.ConflictKeys.empty()) {
      std::fprintf(stderr,
                   "merge: %zu cell key(s) carry *different* bytes in "
                   "different shard ledgers:\n",
                   Report.ConflictKeys.size());
      for (const std::string &Key : Report.ConflictKeys)
        std::fprintf(stderr, "  conflict: %s\n", Key.c_str());
      std::fprintf(stderr,
                   "cells are deterministic, so conflicting duplicates are "
                   "corruption; %s left untouched\n",
                   Options.canonicalLedgerPath().c_str());
      return ExitQuarantined;
    }
    std::printf("merged: %zu ledger(s), %zu line(s) -> %zu cell(s) into %s "
                "(%zu duplicate(s), %zu foreign, %zu torn tail(s) sealed, "
                "%zu garbage line(s) skipped)\n",
                Report.InputFiles, Report.Lines, Report.UniqueCells,
                Options.canonicalLedgerPath().c_str(), Report.DuplicateCells,
                Report.ForeignCells, Report.TornTails, Report.SkippedGarbage);
    return 0;
  }

  if (SpawnWorkers)
    return runSupervisor(argc, argv, SpawnWorkers, MaxRestarts, Options);

  std::printf("# alic_campaign  [ALIC_SCALE=%s] %zu benchmark(s) x %zu "
              "model(s) x %zu scorer(s) x %zu batch(es) x %u seed(s), "
              "state-dir=%s, threads=%u\n",
              Spec.ScaleName.c_str(), Spec.benchmarkList().size(),
              Spec.Models.size(), Spec.Scorers.size(), Spec.BatchSizes.size(),
              Spec.repetitions(), Options.StateDir.c_str(), Options.Threads);
  if (Options.ShardCount)
    std::printf("# static shard %u of %u -> %s\n", Options.ShardIndex,
                Options.ShardCount, Options.ledgerPath().c_str());
  else if (Options.LeaseClaim)
    std::printf("# lease claiming: ttl %llu ms, heartbeat %llu ms, %u "
                "cell(s)/range, leases in %s\n",
                (unsigned long long)Options.LeaseTtlMs,
                (unsigned long long)(Options.LeaseHeartbeatMs
                                         ? Options.LeaseHeartbeatMs
                                         : Options.LeaseTtlMs / 4),
                Options.LeaseRangeCells ? Options.LeaseRangeCells : 16,
                Options.leaseDir().c_str());

  CampaignProgress Progress = runCampaignCells(Spec, Options);
  std::printf("cells: %zu total, %zu already checkpointed, %zu run now\n",
              Progress.TotalCells, Progress.AlreadyDone, Progress.NewlyRun);
  if (Options.ShardCount)
    std::printf("shard slice: %zu of %zu cell(s)\n", Progress.ShardCells,
                Progress.TotalCells);
  if (Progress.WorkersUsed)
    std::printf("scheduler: %u worker(s), %llu task(s) executed "
                "(%zu cells + nested shards), %llu steal(s)%s\n",
                Progress.WorkersUsed,
                (unsigned long long)Progress.TasksExecuted, Progress.NewlyRun,
                (unsigned long long)Progress.Steals,
                Options.NestCells ? "" : " [flat cells]");
  if (!Progress.QuarantinedCells.empty()) {
    std::fprintf(stderr,
                 "campaign: %zu cell(s) quarantined by ledger I/O "
                 "failures:\n",
                 Progress.QuarantinedCells.size());
    for (const std::string &Key : Progress.QuarantinedCells)
      std::fprintf(stderr, "  quarantined: %s\n", Key.c_str());
    std::fprintf(stderr,
                 "re-run the same command to retry exactly these cells "
                 "against %s\n",
                 Options.ledgerPath().c_str());
    return ExitQuarantined;
  }
  if (!Progress.Complete) {
    std::printf("campaign interrupted by --max-cells; re-run the same "
                "command to resume from %s\n",
                Options.ledgerPath().c_str());
    return ExitIncomplete;
  }
  if (Options.sharded()) {
    // Sharded workers never aggregate — that would race the other
    // workers' appends.  Merge once the fleet is done, then aggregate
    // from the canonical ledger (plain re-run or the bench renderers).
    std::printf("shard ledger complete: %s; when all workers are done, "
                "run --merge-ledgers --state-dir=%s\n",
                Options.ledgerPath().c_str(), Options.StateDir.c_str());
    return 0;
  }

  CampaignResult Result;
  if (!aggregateCampaign(Spec, Options, Result)) {
    std::fprintf(stderr, "error: ledger %s is missing cells it just ran\n",
                 Options.ledgerPath().c_str());
    return 1;
  }
  std::string Json = campaignJson(Spec, Result);
  std::FILE *Out = std::fopen(OutPath.c_str(), "wb");
  if (!Out || std::fwrite(Json.data(), 1, Json.size(), Out) != Json.size()) {
    std::fprintf(stderr, "error: cannot write %s\n", OutPath.c_str());
    if (Out)
      std::fclose(Out);
    return 1;
  }
  std::fclose(Out);
  std::printf("written: %s (geomean speedup %.2f over %zu combo(s))\n",
              OutPath.c_str(), Result.GeomeanSpeedup, Result.Combos.size());
  return 0;
}

//===- cli/alic_campaign.cpp - Campaign orchestrator CLI ------*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
//
// Drives exp/Campaign: one resumable command for the paper's full
// reproduction cross-product.  Typical use:
//
//   ALIC_SCALE=smoke alic_campaign --models=dynatree,gp --scorers=alm,alc
//       --seeds=2 --threads=8 --state-dir=camp --out=BENCH_campaign.json
//
// Kill it at any point; re-running the same command skips every completed
// cell and produces a byte-identical BENCH_campaign.json.  --max-cells=K
// stops after K new cells (exit code 75, EX_TEMPFAIL) for deterministic
// interruption in tests and CI.
//
//===----------------------------------------------------------------------===//

#include "exp/Campaign.h"
#include "spapt/Suite.h"
#include "support/Env.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace alic;

namespace {

/// Exit code when --max-cells interrupted the campaign before completion.
constexpr int ExitIncomplete = 75; // EX_TEMPFAIL: retry (resume) later

/// Exit code when ledger I/O failures quarantined cells (EX_IOERR).  The
/// campaign finished every other cell; re-running the same command
/// retries exactly the quarantined ones.
constexpr int ExitQuarantined = 74;

std::vector<std::string> splitList(const std::string &Csv) {
  std::vector<std::string> Parts;
  size_t Pos = 0;
  while (Pos <= Csv.size()) {
    size_t Comma = Csv.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Csv.size();
    if (Comma > Pos)
      Parts.push_back(Csv.substr(Pos, Comma - Pos));
    Pos = Comma + 1;
  }
  return Parts;
}

[[noreturn]] void usage(const char *Binary, const char *Complaint) {
  if (Complaint)
    std::fprintf(stderr, "error: %s\n\n", Complaint);
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "Sharded, checkpointable experiment campaign over the SPAPT suite.\n"
      "Scale comes from ALIC_SCALE (smoke|bench|paper; default bench).\n\n"
      "  --benchmarks=a,b,...  subset of benchmarks (default: all eleven)\n"
      "  --models=LIST         dynatree,gp,gp_sor (default: dynatree)\n"
      "  --scorers=LIST        alc,alm,random (default: alc)\n"
      "  --batches=LIST        step batch sizes (default: 1)\n"
      "  --policies=LIST       query policies: always, alm[:abs[:rel]],\n"
      "                        cost[:c0[:c1]] (default: always)\n"
      "  --seeds=N             repetitions per combo (default: scale's)\n"
      "  --threads=N|auto      scheduler workers; cells run as tasks and\n"
      "                        fork their inner shards onto the same pool\n"
      "                        (auto = hardware concurrency; 0 = inline)\n"
      "  --flat-cells          keep cells model-internally sequential (the\n"
      "                        pre-scheduler cell-granularity budget)\n"
      "  --state-dir=DIR       checkpoint ledger + dataset cache location\n"
      "                        (default: alic-campaign-<scale>)\n"
      "  --out=PATH            aggregate JSON (default: BENCH_campaign.json)\n"
      "  --max-cells=K         stop after K new cells, exit %d (resume by\n"
      "                        re-running; 0 = run to completion)\n"
      "  --shuffle=SEED        execute missing cells in shuffled order\n"
      "  --no-noise            skip the per-benchmark noise-summary cells\n",
      Binary, ExitIncomplete);
  std::exit(2);
}

bool parseFlag(const char *Arg, const char *Name, std::string &Value) {
  size_t Len = std::strlen(Name);
  if (std::strncmp(Arg, Name, Len) != 0 || Arg[Len] != '=')
    return false;
  Value = Arg + Len + 1;
  return true;
}

uint64_t parseCount(const char *Binary, const std::string &Text,
                    const char *What) {
  // strtoull silently wraps negatives ("-1" -> ~4 billion); reject them.
  if (Text.empty() || Text.find_first_not_of("0123456789") != std::string::npos)
    usage(Binary, What);
  char *End = nullptr;
  unsigned long long Value = std::strtoull(Text.c_str(), &End, 10);
  if (End == Text.c_str() || *End != '\0')
    usage(Binary, What);
  return Value;
}

} // namespace

int main(int argc, char **argv) {
  CampaignSpec Spec;
  Spec.Scale = ExperimentScale::fromEnv();
  Spec.ScaleName = scaleName(getScaleKind());
  Spec.Plans = defaultCampaignPlans(Spec.Scale);

  CampaignOptions Options;
  Options.StateDir = defaultCampaignStateDir(Spec.ScaleName);
  std::string OutPath = "BENCH_campaign.json";

  for (int I = 1; I != argc; ++I) {
    std::string Value;
    if (parseFlag(argv[I], "--benchmarks", Value)) {
      Spec.Benchmarks = splitList(Value);
      // An empty list would collide with the "empty means all" default —
      // likely an unset shell variable, so fail loudly instead.
      if (Spec.Benchmarks.empty())
        usage(argv[0], "--benchmarks= given with no benchmarks");
      const std::vector<std::string> &Known = spaptBenchmarkNames();
      for (const std::string &Name : Spec.Benchmarks)
        if (std::find(Known.begin(), Known.end(), Name) == Known.end())
          usage(argv[0], ("unknown benchmark: " + Name).c_str());
    } else if (parseFlag(argv[I], "--models", Value)) {
      Spec.Models.clear();
      if (splitList(Value).empty())
        usage(argv[0], "--models= given with no models");
      for (const std::string &Name : splitList(Value)) {
        if (Name == "dynatree")
          Spec.Models.push_back(ModelKind::DynaTree);
        else if (Name == "gp")
          Spec.Models.push_back(ModelKind::Gp);
        else if (Name == "gp_sor")
          Spec.Models.push_back(ModelKind::GpSor);
        else
          usage(argv[0], ("unknown model: " + Name).c_str());
      }
    } else if (parseFlag(argv[I], "--scorers", Value)) {
      Spec.Scorers.clear();
      if (splitList(Value).empty())
        usage(argv[0], "--scorers= given with no scorers");
      for (const std::string &Name : splitList(Value)) {
        if (Name == "alc")
          Spec.Scorers.push_back(ScorerKind::Alc);
        else if (Name == "alm")
          Spec.Scorers.push_back(ScorerKind::Alm);
        else if (Name == "random")
          Spec.Scorers.push_back(ScorerKind::Random);
        else
          usage(argv[0], ("unknown scorer: " + Name).c_str());
      }
    } else if (parseFlag(argv[I], "--batches", Value)) {
      Spec.BatchSizes.clear();
      if (splitList(Value).empty())
        usage(argv[0], "--batches= given with no batch sizes");
      for (const std::string &Text : splitList(Value)) {
        uint64_t Batch = parseCount(argv[0], Text, "bad --batches value");
        if (!Batch)
          usage(argv[0], "batch sizes must be positive");
        Spec.BatchSizes.push_back(unsigned(Batch));
      }
    } else if (parseFlag(argv[I], "--policies", Value)) {
      Spec.Policies.clear();
      if (splitList(Value).empty())
        usage(argv[0], "--policies= given with no policies");
      for (const std::string &Token : splitList(Value)) {
        QueryPolicyConfig Policy;
        if (!parseQueryPolicy(Token, Policy))
          usage(argv[0], ("unknown policy: " + Token).c_str());
        Spec.Policies.push_back(Policy);
      }
    } else if (parseFlag(argv[I], "--seeds", Value)) {
      Spec.Repetitions =
          unsigned(parseCount(argv[0], Value, "bad --seeds value"));
      if (!Spec.Repetitions)
        usage(argv[0], "--seeds must be positive");
    } else if (parseFlag(argv[I], "--threads", Value)) {
      if (Value == "auto")
        Options.Threads =
            std::max(1u, std::thread::hardware_concurrency());
      else
        Options.Threads =
            unsigned(parseCount(argv[0], Value, "bad --threads value"));
    } else if (std::strcmp(argv[I], "--flat-cells") == 0) {
      Options.NestCells = false;
    } else if (parseFlag(argv[I], "--state-dir", Value)) {
      Options.StateDir = Value;
    } else if (parseFlag(argv[I], "--out", Value)) {
      OutPath = Value;
    } else if (parseFlag(argv[I], "--max-cells", Value)) {
      Options.MaxCells =
          size_t(parseCount(argv[0], Value, "bad --max-cells value"));
    } else if (parseFlag(argv[I], "--shuffle", Value)) {
      Options.ShuffleSeed = parseCount(argv[0], Value, "bad --shuffle value");
    } else if (std::strcmp(argv[I], "--no-noise") == 0) {
      Spec.NoiseCells = false;
    } else if (std::strcmp(argv[I], "--help") == 0 ||
               std::strcmp(argv[I], "-h") == 0) {
      usage(argv[0], nullptr);
    } else {
      usage(argv[0], (std::string("unknown option: ") + argv[I]).c_str());
    }
  }

  std::printf("# alic_campaign  [ALIC_SCALE=%s] %zu benchmark(s) x %zu "
              "model(s) x %zu scorer(s) x %zu batch(es) x %u seed(s), "
              "state-dir=%s, threads=%u\n",
              Spec.ScaleName.c_str(), Spec.benchmarkList().size(),
              Spec.Models.size(), Spec.Scorers.size(), Spec.BatchSizes.size(),
              Spec.repetitions(), Options.StateDir.c_str(), Options.Threads);

  CampaignProgress Progress = runCampaignCells(Spec, Options);
  std::printf("cells: %zu total, %zu already checkpointed, %zu run now\n",
              Progress.TotalCells, Progress.AlreadyDone, Progress.NewlyRun);
  if (Progress.WorkersUsed)
    std::printf("scheduler: %u worker(s), %llu task(s) executed "
                "(%zu cells + nested shards), %llu steal(s)%s\n",
                Progress.WorkersUsed,
                (unsigned long long)Progress.TasksExecuted, Progress.NewlyRun,
                (unsigned long long)Progress.Steals,
                Options.NestCells ? "" : " [flat cells]");
  if (!Progress.QuarantinedCells.empty()) {
    std::fprintf(stderr,
                 "campaign: %zu cell(s) quarantined by ledger I/O "
                 "failures:\n",
                 Progress.QuarantinedCells.size());
    for (const std::string &Key : Progress.QuarantinedCells)
      std::fprintf(stderr, "  quarantined: %s\n", Key.c_str());
    std::fprintf(stderr,
                 "re-run the same command to retry exactly these cells "
                 "against %s\n",
                 Options.ledgerPath().c_str());
    return ExitQuarantined;
  }
  if (!Progress.Complete) {
    std::printf("campaign interrupted by --max-cells; re-run the same "
                "command to resume from %s\n",
                Options.ledgerPath().c_str());
    return ExitIncomplete;
  }

  CampaignResult Result;
  if (!aggregateCampaign(Spec, Options, Result)) {
    std::fprintf(stderr, "error: ledger %s is missing cells it just ran\n",
                 Options.ledgerPath().c_str());
    return 1;
  }
  std::string Json = campaignJson(Spec, Result);
  std::FILE *Out = std::fopen(OutPath.c_str(), "wb");
  if (!Out || std::fwrite(Json.data(), 1, Json.size(), Out) != Json.size()) {
    std::fprintf(stderr, "error: cannot write %s\n", OutPath.c_str());
    if (Out)
      std::fclose(Out);
    return 1;
  }
  std::fclose(Out);
  std::printf("written: %s (geomean speedup %.2f over %zu combo(s))\n",
              OutPath.c_str(), Result.GeomeanSpeedup, Result.Combos.size());
  return 0;
}

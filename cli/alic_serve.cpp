//===- cli/alic_serve.cpp - Session-multiplexed tuning daemon -*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
//
// A long-running daemon serving many concurrent tuning sessions over a
// newline-delimited JSON protocol on a Unix-domain socket (see
// docs/SERVE_PROTOCOL.md).  Typical use:
//
//   ALIC_SCALE=smoke alic_serve --socket=/tmp/alic.sock --state-dir=serve &
//   # wait for the READY line, then exchange one JSON object per line
//
// Sessions checkpoint to --state-dir on every observation; on restart the
// daemon replays every snapshot and resumes each session exactly where it
// stood (SIGKILL-safe — serve_test and tools/serve_smoke.py pin this).
//
// The event loop is hardened against hostile and unlucky clients alike:
// all sockets are nonblocking, replies queue in a bounded per-client
// out-buffer drained via POLLOUT (a stalled reader is disconnected rather
// than wedging the daemon), idle connections time out, oversized requests
// are answered with an error and dropped, and EMFILE-style accept
// failures back off instead of spinning.  SIGTERM/SIGINT (and the
// `shutdown` op) trigger a graceful drain: stop accepting, answer every
// in-flight request, snapshot all sessions, exit 0.  The `serve.accept` /
// `serve.recv` / `serve.send` failpoints (support/FailPoint.h) inject
// faults into each syscall site for the chaos tests.
//
//===----------------------------------------------------------------------===//

#include "serve/ServeEngine.h"
#include "serve/Wire.h"
#include "support/Backoff.h"
#include "support/FailPoint.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace alic;

namespace {

[[noreturn]] void usage(const char *Binary, const char *Complaint) {
  if (Complaint)
    std::fprintf(stderr, "error: %s\n\n", Complaint);
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "Suggest/observe tuning service over a Unix-domain socket.\n"
      "Scale comes from ALIC_SCALE (smoke|bench|paper; default bench).\n\n"
      "  --socket=PATH         socket to listen on (default: alic-serve.sock)\n"
      "  --state-dir=DIR       session snapshot directory; empty disables\n"
      "                        checkpointing (default: alic-serve-state)\n"
      "  --threads=N|auto      scheduler workers shared by all sessions\n"
      "                        (auto = hardware concurrency; default 0 =\n"
      "                        inline, bit-identical either way)\n"
      "  --checkpoint-every=K  snapshot every K-th observe (default 1)\n"
      "  --idle-timeout-ms=T   disconnect clients idle for T ms\n"
      "                        (default 60000; 0 disables)\n"
      "  --max-request-bytes=N error+disconnect on a request line over N\n"
      "                        bytes (default 4194304)\n"
      "  --max-send-buffer=N   disconnect a client whose unread replies\n"
      "                        exceed N bytes (default 4194304)\n"
      "  --drain-timeout-ms=T  bound on the graceful SIGTERM/shutdown\n"
      "                        drain (default 5000)\n",
      Binary);
  std::exit(2);
}

bool parseFlag(const char *Arg, const char *Name, std::string &Value) {
  size_t Len = std::strlen(Name);
  if (std::strncmp(Arg, Name, Len) != 0 || Arg[Len] != '=')
    return false;
  Value = Arg + Len + 1;
  return true;
}

/// One connected client: a nonblocking socket, its partial-line input
/// buffer, queued-but-unsent replies, and an idle-timeout deadline base.
struct Client {
  int Fd = -1;
  std::string Pending;
  std::string Out;
  uint64_t LastActivityMs = 0;
  /// Close once Out drains (oversized request answered with an error).
  bool CloseAfterFlush = false;
};

/// Monotonic milliseconds (never wall clock: immune to NTP steps).
uint64_t nowMs() {
  timespec Ts;
  ::clock_gettime(CLOCK_MONOTONIC, &Ts);
  return uint64_t(Ts.tv_sec) * 1000 + uint64_t(Ts.tv_nsec) / 1000000;
}

void setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags >= 0)
    ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
}

volatile std::sig_atomic_t GotSignal = 0;
void onSignal(int) { GotSignal = 1; }

/// Pushes as much of C.Out into the kernel as it will take.  Returns
/// false when the client must be dropped (peer gone, or a non-transient
/// send error); leftover bytes wait for POLLOUT.
bool flushClient(Client &C) {
  while (!C.Out.empty()) {
    FailOutcome F = ALIC_FAILPOINT("serve.send");
    ssize_t N;
    if (F.Fire) {
      N = -1;
      errno = F.Errno;
    } else {
      N = ::send(C.Fd, C.Out.data(), C.Out.size(),
#ifdef MSG_NOSIGNAL
                 MSG_NOSIGNAL
#else
                 0
#endif
      );
    }
    if (N < 0 && errno == EINTR)
      continue; // transient: retry, never disconnect
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return true; // kernel buffer full: wait for POLLOUT
    if (N <= 0)
      return false;
    C.Out.erase(0, size_t(N));
    C.LastActivityMs = nowMs();
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string SocketPath = "alic-serve.sock";
  std::string StateDir = "alic-serve-state";
  std::string Threads = "0";
  std::string CheckpointEvery = "1";
  std::string IdleTimeout = "60000";
  std::string MaxRequest = "4194304";
  std::string MaxSendBuffer = "4194304";
  std::string DrainTimeout = "5000";

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (parseFlag(Arg, "--socket", SocketPath) ||
        parseFlag(Arg, "--state-dir", StateDir) ||
        parseFlag(Arg, "--threads", Threads) ||
        parseFlag(Arg, "--checkpoint-every", CheckpointEvery) ||
        parseFlag(Arg, "--idle-timeout-ms", IdleTimeout) ||
        parseFlag(Arg, "--max-request-bytes", MaxRequest) ||
        parseFlag(Arg, "--max-send-buffer", MaxSendBuffer) ||
        parseFlag(Arg, "--drain-timeout-ms", DrainTimeout))
      continue;
    usage(Argv[0], (std::string("unknown argument ") + Arg).c_str());
  }

  ServeOptions Opts;
  Opts.StateDir = StateDir;
  if (!StateDir.empty())
    Opts.DatasetCacheDir = StateDir + "/datasets";
  Opts.Threads = Threads == "auto"
                     ? std::max(1u, std::thread::hardware_concurrency())
                     : unsigned(std::strtoul(Threads.c_str(), nullptr, 10));
  Opts.CheckpointEveryObserves =
      unsigned(std::strtoul(CheckpointEvery.c_str(), nullptr, 10));
  const uint64_t IdleTimeoutMs = std::strtoull(IdleTimeout.c_str(), nullptr, 10);
  const size_t MaxRequestBytes =
      size_t(std::strtoull(MaxRequest.c_str(), nullptr, 10));
  const size_t MaxSendBufferBytes =
      size_t(std::strtoull(MaxSendBuffer.c_str(), nullptr, 10));
  const uint64_t DrainTimeoutMs =
      std::strtoull(DrainTimeout.c_str(), nullptr, 10);

  ServeEngine Engine(Opts);
  size_t Skipped = 0;
  size_t Restored = Engine.restoreSessions(&Skipped);
  if (Restored || Skipped)
    std::fprintf(stderr, "alic_serve: restored %zu session(s), skipped %zu\n",
                 Restored, Skipped);

  // Bind the listening socket.  A stale path from a killed daemon is
  // unlinked first — session state lives in --state-dir, not the socket.
  ::signal(SIGPIPE, SIG_IGN);
  ::signal(SIGTERM, onSignal);
  ::signal(SIGINT, onSignal);
  int Listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Listener < 0) {
    std::perror("alic_serve: socket");
    return 1;
  }
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "alic_serve: socket path too long: %s\n",
                 SocketPath.c_str());
    return 1;
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  ::unlink(SocketPath.c_str());
  if (::bind(Listener, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
          0 ||
      ::listen(Listener, 64) < 0) {
    std::perror("alic_serve: bind/listen");
    return 1;
  }
  setNonBlocking(Listener);

  // The line scripts wait for before connecting.
  std::printf("READY %s\n", SocketPath.c_str());
  std::fflush(stdout);

  std::vector<Client> Clients;
  bool Draining = false;
  uint64_t DrainDeadlineMs = 0;
  uint64_t AcceptBackoffUntilMs = 0;
  // Escalating accept backoff: consecutive resource-exhaustion failures
  // (EMFILE and friends) wait 100 ms doubling to 1.6 s, jittered so a
  // fleet of daemons starved by the same global descriptor table does not
  // retry in lockstep.  One successful accept resets the ladder.
  const Backoff AcceptBackoff(0xacce97, 100, 1600);
  uint64_t AcceptFailures = 0;

  // Stop accepting, finish in-flight work, then exit through the
  // post-loop snapshotAll.
  auto StartDrain = [&] {
    if (Draining)
      return;
    Draining = true;
    DrainDeadlineMs = nowMs() + DrainTimeoutMs;
    if (Listener >= 0) {
      ::close(Listener);
      Listener = -1;
    }
  };

  while (true) {
    if (GotSignal)
      StartDrain();
    uint64_t Now = nowMs();

    if (Draining) {
      // A client is "settled" once every queued reply is flushed and no
      // complete request is waiting; settled clients are released so the
      // drain can finish before the deadline.
      for (size_t I = 0; I != Clients.size();) {
        Client &C = Clients[I];
        if (C.Out.empty() && C.Pending.find('\n') == std::string::npos) {
          ::close(C.Fd);
          Clients[I] = std::move(Clients.back());
          Clients.pop_back();
        } else {
          ++I;
        }
      }
      if (Clients.empty() || Now >= DrainDeadlineMs)
        break;
    }

    std::vector<pollfd> Fds;
    if (Listener >= 0)
      Fds.push_back({Listener,
                     short(Now < AcceptBackoffUntilMs ? 0 : POLLIN), 0});
    size_t FirstClient = Fds.size();
    for (const Client &C : Clients)
      Fds.push_back({C.Fd, short(POLLIN | (C.Out.empty() ? 0 : POLLOUT)), 0});

    // Poll timeout: the nearest of the idle deadlines, the accept-backoff
    // end, and the drain grace round; -1 (block) with none pending.
    int TimeoutMs = -1;
    auto Consider = [&](uint64_t DeadlineMs) {
      uint64_t Wait = DeadlineMs > Now ? DeadlineMs - Now : 0;
      int W = Wait > 60000 ? 60000 : int(Wait);
      if (TimeoutMs < 0 || W < TimeoutMs)
        TimeoutMs = W;
    };
    if (IdleTimeoutMs > 0)
      for (const Client &C : Clients)
        Consider(C.LastActivityMs + IdleTimeoutMs);
    if (Now < AcceptBackoffUntilMs)
      Consider(AcceptBackoffUntilMs);
    if (Draining)
      Consider(Now + 200 < DrainDeadlineMs ? Now + 200 : DrainDeadlineMs);

    if (::poll(Fds.data(), nfds_t(Fds.size()), TimeoutMs) < 0) {
      if (errno == EINTR)
        continue; // likely SIGTERM: the loop top starts the drain
      std::perror("alic_serve: poll");
      break;
    }
    Now = nowMs();

    // Service existing clients first: Fds[FirstClient+I] <-> Clients[I]
    // holds only for the clients that existed at poll time, so the accept
    // of any new connection (with no pollfd yet) waits until after this.
    for (size_t I = 0; I != Clients.size();) {
      pollfd &P = Fds[FirstClient + I];
      Client &C = Clients[I];
      bool Drop = false;

      if (P.revents & POLLOUT)
        Drop = !flushClient(C);

      if (!Drop && (P.revents & (POLLIN | POLLHUP | POLLERR))) {
        // Drain the socket to EAGAIN; transient errors retry instead of
        // disconnecting (the serve.recv failpoint injects them).
        while (!Drop) {
          char Buffer[1 << 16];
          FailOutcome F = ALIC_FAILPOINT("serve.recv");
          ssize_t N;
          if (F.Fire) {
            N = -1;
            errno = F.Errno;
          } else {
            N = ::recv(C.Fd, Buffer, sizeof(Buffer), 0);
          }
          if (N < 0 && errno == EINTR)
            continue;
          if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
          if (N <= 0) {
            Drop = true; // peer closed (0) or hard error
            break;
          }
          C.Pending.append(Buffer, size_t(N));
          C.LastActivityMs = Now;
          if (size_t(N) < sizeof(Buffer))
            break; // short read: the socket is drained
        }

        size_t Pos = 0, Eol;
        while (!Drop && !C.CloseAfterFlush &&
               (Eol = C.Pending.find('\n', Pos)) != std::string::npos) {
          std::string Line = C.Pending.substr(Pos, Eol - Pos);
          Pos = Eol + 1;
          if (Line.empty())
            continue;
          if (Line.size() > MaxRequestBytes) {
            C.Out += "{\"ok\":false,\"error\":\"request exceeds " +
                     std::to_string(MaxRequestBytes) + " bytes\"}\n";
            C.CloseAfterFlush = true;
            break;
          }
          std::string Reply;
          if (handleRequestLine(Engine, Line, Reply))
            StartDrain();
          C.Out += Reply;
          C.Out += "\n";
        }
        C.Pending.erase(0, Pos);
        // A growing line with no newline is the same protocol violation,
        // caught before the buffer balloons.
        if (!Drop && !C.CloseAfterFlush && C.Pending.size() > MaxRequestBytes) {
          C.Out += "{\"ok\":false,\"error\":\"request exceeds " +
                   std::to_string(MaxRequestBytes) + " bytes\"}\n";
          C.CloseAfterFlush = true;
        }
      }

      if (!Drop && !C.Out.empty())
        Drop = !flushClient(C);
      // A reader that cannot keep up with its own replies is disconnected
      // rather than growing an unbounded buffer.
      if (!Drop && C.Out.size() > MaxSendBufferBytes)
        Drop = true;
      if (!Drop && C.CloseAfterFlush && C.Out.empty())
        Drop = true;
      if (!Drop && IdleTimeoutMs > 0 &&
          Now >= C.LastActivityMs + IdleTimeoutMs)
        Drop = true;

      if (Drop) {
        ::close(C.Fd);
        Clients[I] = std::move(Clients.back());
        Clients.pop_back();
        Fds[FirstClient + I] = Fds.back();
        Fds.pop_back();
      } else {
        ++I;
      }
    }

    if (Listener >= 0 && (Fds[0].revents & POLLIN)) {
      while (true) {
        FailOutcome F = ALIC_FAILPOINT("serve.accept");
        int Fd;
        if (F.Fire) {
          Fd = -1;
          errno = F.Errno;
        } else {
          Fd = ::accept(Listener, nullptr, nullptr);
        }
        if (Fd >= 0) {
          setNonBlocking(Fd);
          Clients.push_back({Fd, {}, {}, nowMs(), false});
          AcceptFailures = 0;
          continue;
        }
        if (errno == EINTR)
          continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK ||
            errno == ECONNABORTED)
          break;
        if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
            errno == ENOMEM) {
          // Out of descriptors/buffers: back off instead of spinning on a
          // level-triggered POLLIN we cannot service.
          uint64_t Delay = AcceptBackoff.delayMs(AcceptFailures++);
          AcceptBackoffUntilMs = nowMs() + Delay;
          std::fprintf(stderr,
                       "alic_serve: accept: %s; backing off %llu ms\n",
                       std::strerror(errno), (unsigned long long)Delay);
          break;
        }
        std::perror("alic_serve: accept");
        break;
      }
    }
  }

  // Graceful exit: every session snapshot is brought current, whatever
  // the checkpoint cadence, so a drained daemon never loses observations.
  size_t Sessions = Engine.sessionCount();
  size_t Clean = Engine.snapshotAll();
  if (Sessions)
    std::fprintf(stderr, "alic_serve: drained; %zu/%zu session(s) snapshotted\n",
                 Clean, Sessions);

  for (const Client &C : Clients)
    ::close(C.Fd);
  if (Listener >= 0)
    ::close(Listener);
  ::unlink(SocketPath.c_str());
  return 0;
}

//===- cli/alic_serve.cpp - Session-multiplexed tuning daemon -*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
//
// A long-running daemon serving many concurrent tuning sessions over a
// newline-delimited JSON protocol on a Unix-domain socket (see
// docs/SERVE_PROTOCOL.md).  Typical use:
//
//   ALIC_SCALE=smoke alic_serve --socket=/tmp/alic.sock --state-dir=serve &
//   # wait for the READY line, then exchange one JSON object per line
//
// Sessions checkpoint to --state-dir on every observation; on restart the
// daemon replays every snapshot and resumes each session exactly where it
// stood (SIGKILL-safe — serve_test and tools/serve_smoke.py pin this).
//
//===----------------------------------------------------------------------===//

#include "serve/ServeEngine.h"
#include "serve/Wire.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace alic;

namespace {

[[noreturn]] void usage(const char *Binary, const char *Complaint) {
  if (Complaint)
    std::fprintf(stderr, "error: %s\n\n", Complaint);
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "Suggest/observe tuning service over a Unix-domain socket.\n"
      "Scale comes from ALIC_SCALE (smoke|bench|paper; default bench).\n\n"
      "  --socket=PATH         socket to listen on (default: alic-serve.sock)\n"
      "  --state-dir=DIR       session snapshot directory; empty disables\n"
      "                        checkpointing (default: alic-serve-state)\n"
      "  --threads=N|auto      scheduler workers shared by all sessions\n"
      "                        (auto = hardware concurrency; default 0 =\n"
      "                        inline, bit-identical either way)\n"
      "  --checkpoint-every=K  snapshot every K-th observe (default 1)\n",
      Binary);
  std::exit(2);
}

bool parseFlag(const char *Arg, const char *Name, std::string &Value) {
  size_t Len = std::strlen(Name);
  if (std::strncmp(Arg, Name, Len) != 0 || Arg[Len] != '=')
    return false;
  Value = Arg + Len + 1;
  return true;
}

/// One connected client: a socket plus its partial-line input buffer.
struct Client {
  int Fd = -1;
  std::string Pending;
};

bool sendAll(int Fd, const std::string &Data) {
  size_t Sent = 0;
  while (Sent < Data.size()) {
    ssize_t N = ::send(Fd, Data.data() + Sent, Data.size() - Sent,
#ifdef MSG_NOSIGNAL
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (N <= 0)
      return false;
    Sent += size_t(N);
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string SocketPath = "alic-serve.sock";
  std::string StateDir = "alic-serve-state";
  std::string Threads = "0";
  std::string CheckpointEvery = "1";

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (parseFlag(Arg, "--socket", SocketPath) ||
        parseFlag(Arg, "--state-dir", StateDir) ||
        parseFlag(Arg, "--threads", Threads) ||
        parseFlag(Arg, "--checkpoint-every", CheckpointEvery))
      continue;
    usage(Argv[0], (std::string("unknown argument ") + Arg).c_str());
  }

  ServeOptions Opts;
  Opts.StateDir = StateDir;
  if (!StateDir.empty())
    Opts.DatasetCacheDir = StateDir + "/datasets";
  Opts.Threads = Threads == "auto"
                     ? std::max(1u, std::thread::hardware_concurrency())
                     : unsigned(std::strtoul(Threads.c_str(), nullptr, 10));
  Opts.CheckpointEveryObserves =
      unsigned(std::strtoul(CheckpointEvery.c_str(), nullptr, 10));

  ServeEngine Engine(Opts);
  size_t Skipped = 0;
  size_t Restored = Engine.restoreSessions(&Skipped);
  if (Restored || Skipped)
    std::fprintf(stderr, "alic_serve: restored %zu session(s), skipped %zu\n",
                 Restored, Skipped);

  // Bind the listening socket.  A stale path from a killed daemon is
  // unlinked first — session state lives in --state-dir, not the socket.
  ::signal(SIGPIPE, SIG_IGN);
  int Listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Listener < 0) {
    std::perror("alic_serve: socket");
    return 1;
  }
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "alic_serve: socket path too long: %s\n",
                 SocketPath.c_str());
    return 1;
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  ::unlink(SocketPath.c_str());
  if (::bind(Listener, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
          0 ||
      ::listen(Listener, 64) < 0) {
    std::perror("alic_serve: bind/listen");
    return 1;
  }

  // The line scripts wait for before connecting.
  std::printf("READY %s\n", SocketPath.c_str());
  std::fflush(stdout);

  std::vector<Client> Clients;
  bool Shutdown = false;
  while (!Shutdown) {
    std::vector<pollfd> Fds;
    Fds.push_back({Listener, POLLIN, 0});
    for (const Client &C : Clients)
      Fds.push_back({C.Fd, POLLIN, 0});
    if (::poll(Fds.data(), nfds_t(Fds.size()), -1) < 0) {
      if (errno == EINTR)
        continue;
      std::perror("alic_serve: poll");
      break;
    }

    // Service existing clients first: Fds[I+1] <-> Clients[I] holds only
    // for the clients that existed at poll time, so the accept of any new
    // connection (which has no pollfd yet) must wait until after this loop.
    for (size_t I = 0; I != Clients.size();) {
      pollfd &P = Fds[I + 1];
      Client &C = Clients[I];
      bool Drop = false;
      if (P.revents & (POLLIN | POLLHUP | POLLERR)) {
        char Buffer[1 << 16];
        ssize_t N = ::recv(C.Fd, Buffer, sizeof(Buffer), 0);
        if (N <= 0) {
          Drop = true;
        } else {
          C.Pending.append(Buffer, size_t(N));
          size_t Pos = 0, Eol;
          while (!Drop && (Eol = C.Pending.find('\n', Pos)) !=
                              std::string::npos) {
            std::string Line = C.Pending.substr(Pos, Eol - Pos);
            Pos = Eol + 1;
            if (Line.empty())
              continue;
            std::string Reply;
            Shutdown |= handleRequestLine(Engine, Line, Reply);
            Reply += "\n";
            if (!sendAll(C.Fd, Reply))
              Drop = true;
          }
          C.Pending.erase(0, Pos);
          // An unbounded line with no newline is a protocol violation.
          if (C.Pending.size() > (1u << 22))
            Drop = true;
        }
      }
      if (Drop) {
        // Keep Fds[I+1] <-> Clients[I] aligned across the removal.
        ::close(C.Fd);
        Clients[I] = std::move(Clients.back());
        Clients.pop_back();
        Fds[I + 1] = Fds.back();
        Fds.pop_back();
      } else {
        ++I;
      }
    }

    if (Fds[0].revents & POLLIN) {
      int Fd = ::accept(Listener, nullptr, nullptr);
      if (Fd >= 0)
        Clients.push_back({Fd, {}});
    }
  }

  for (const Client &C : Clients)
    ::close(C.Fd);
  ::close(Listener);
  ::unlink(SocketPath.c_str());
  return 0;
}

#!/usr/bin/env python3
"""Chaos harness: kill-at-every-sync-point and disk-full fault injection.

Exercises the failpoint catalog (support/FailPoint.h) end to end against
the real binaries, checking the repo's degrade-don't-abort contract:

1. *campaign crash loops* — for every durability failpoint on the
   campaign path (ledger.append, ledger.sync, atomicfile.write,
   atomicfile.sync, atomicfile.rename, atomicfile.dirsync), repeatedly
   run `alic_campaign` with `ALIC_FAILPOINTS="<site>=nth:K,mode:crash"`
   for K = 1, 2, 3, ... on one state dir.  Each run survives K-1 hits of
   the site and then `_exit`s mid-syscall; resuming with K+1 makes
   monotone progress, so the loop always terminates.  The final
   uninterrupted run must produce a BENCH_campaign.json byte-identical
   to a never-crashed reference.

2. *ENOSPC quarantine* — the paper-scale smoke campaign (275 cells) with
   a persistent injected ENOSPC from the 4th ledger append onward: the
   campaign must finish every cell, report the quarantined keys, exit 74
   (EX_IOERR), and a clean re-launch must retry exactly the quarantined
   cells and render a byte-identical aggregate.

3. *sharded kill loop* — for every lease failpoint (lease.acquire,
   lease.renew, lease.steal), three `--lease-claim` workers cooperate on
   the 275-cell smoke spec while one of them is killed mid-syscall at the
   armed site; the survivors steal the dead worker's expired range
   leases, the union of shard ledgers is merged with `--merge-ledgers`,
   and the merged canonical ledger plus the re-aggregated
   BENCH_campaign.json must be byte-identical to a single-process
   reference.

4. *serve snapshot crash loop* — a suggest/observe client drives
   `alic_serve` while `snapshot.write=nth:K,mode:crash` kills the daemon
   at its K-th snapshot; the client restarts the daemon and resumes with
   the documented at-least-once retry (re-suggest; a reply equal to the
   lost round's suggestion means the observe was lost and is re-sent).
   Every suggestion across all crashes must be byte-identical to an
   uninterrupted reference run.

stdlib-only by design: CI runs it with a bare python3.

Exit codes: 0 ok, 1 contract violation, 2 usage error.
"""

import argparse
import json
import os
import shutil
import socket
import subprocess
import sys
import time

CRASH_EXIT = 43  # FailSpec::ExitCode default
QUARANTINE_EXIT = 74  # alic_campaign's EX_IOERR
MAX_CRASH_ITERATIONS = 64

CAMPAIGN_SITES = [
    "ledger.append",
    "ledger.sync",
    "atomicfile.write",
    "atomicfile.sync",
    "atomicfile.rename",
    "atomicfile.dirsync",
]

SERVE_ROUNDS = 5
SERVE_SPEC = {
    "benchmark": "atax",
    "model": "dynatree",
    "scorer": "alc",
    "plan": "seq:35",
    "seed": 9,
    "max_examples": 8,
}


def fail(message):
    print(f"chaos_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def read_bytes(path):
    with open(path, "rb") as stream:
        return stream.read()


# ---------------------------------------------------------------------------
# Campaign chaos
# ---------------------------------------------------------------------------

def spec_flags(small):
    if small:
        return ["--benchmarks=atax,mvt", "--seeds=1"]
    return ["--models=dynatree,gp", "--scorers=alm,alc", "--seeds=2"]


def campaign_cmd(binary, state_dir, out, small):
    return ([binary, f"--state-dir={state_dir}", f"--out={out}"]
            + spec_flags(small))


def run_campaign(binary, state_dir, out, small, failpoints=None):
    env = dict(os.environ, ALIC_SCALE="smoke")
    env.pop("ALIC_FAILPOINTS", None)
    if failpoints:
        env["ALIC_FAILPOINTS"] = failpoints
    proc = subprocess.run(campaign_cmd(binary, state_dir, out, small),
                          env=env, capture_output=True, text=True)
    return proc


def campaign_crash_loops(binary, workdir):
    """Kill the campaign at every hit of every durability failpoint."""
    ref_out = os.path.join(workdir, "ref.json")
    proc = run_campaign(binary, os.path.join(workdir, "ref"), ref_out,
                        small=True)
    if proc.returncode != 0:
        fail(f"reference campaign failed: rc={proc.returncode}\n{proc.stderr}")
    reference = read_bytes(ref_out)

    for site in CAMPAIGN_SITES:
        tag = site.replace(".", "_")
        state_dir = os.path.join(workdir, f"crash_{tag}")
        out = os.path.join(workdir, f"crash_{tag}.json")
        crashes = 0
        for iteration in range(1, MAX_CRASH_ITERATIONS + 1):
            proc = run_campaign(binary, state_dir, out, small=True,
                                failpoints=f"{site}=nth:{iteration},mode:crash")
            if proc.returncode == 0:
                break
            if proc.returncode != CRASH_EXIT:
                fail(f"{site}: iteration {iteration} exited "
                     f"{proc.returncode}, want {CRASH_EXIT} (crash) or 0\n"
                     f"{proc.stderr}")
            crashes += 1
        else:
            fail(f"{site}: no progress after {MAX_CRASH_ITERATIONS} "
                 f"crash iterations")
        # One final run with nothing armed: nothing left to do, and the
        # aggregate must match the never-crashed reference byte for byte.
        proc = run_campaign(binary, state_dir, out, small=True)
        if proc.returncode != 0:
            fail(f"{site}: clean resume failed: rc={proc.returncode}\n"
                 f"{proc.stderr}")
        if read_bytes(out) != reference:
            fail(f"{site}: aggregate diverged after {crashes} crashes "
                 f"({out} vs {ref_out})")
        print(f"chaos_smoke: campaign {site}: byte-identical after "
              f"{crashes} kill(s)")


def campaign_enospc_quarantine(binary, workdir, small):
    """Persistent disk-full mid-campaign: quarantine, exit 74, resume."""
    label = "small" if small else "275-cell"
    ref_out = os.path.join(workdir, "enospc_ref.json")
    proc = run_campaign(binary, os.path.join(workdir, "enospc_ref"), ref_out,
                        small=small)
    if proc.returncode != 0:
        fail(f"enospc reference failed: rc={proc.returncode}\n{proc.stderr}")
    reference = read_bytes(ref_out)

    state_dir = os.path.join(workdir, "enospc")
    out = os.path.join(workdir, "enospc.json")
    proc = run_campaign(binary, state_dir, out, small=small,
                        failpoints="ledger.append=nth:4,mode:enospc")
    if proc.returncode != QUARANTINE_EXIT:
        fail(f"enospc run exited {proc.returncode}, want {QUARANTINE_EXIT}\n"
             f"{proc.stderr}")
    quarantined = [line for line in proc.stderr.splitlines()
                   if line.strip().startswith("quarantined:")]
    if not quarantined:
        fail(f"enospc run reported no quarantined cells:\n{proc.stderr}")
    if os.path.exists(out):
        fail("enospc run wrote an aggregate despite quarantined cells")

    proc = run_campaign(binary, state_dir, out, small=small)
    if proc.returncode != 0:
        fail(f"enospc resume failed: rc={proc.returncode}\n{proc.stderr}")
    if read_bytes(out) != reference:
        fail("enospc resume aggregate diverged from reference")
    print(f"chaos_smoke: campaign ENOSPC ({label}): {len(quarantined)} "
          f"cell(s) quarantined, resume byte-identical")


# ---------------------------------------------------------------------------
# Sharded campaign chaos
# ---------------------------------------------------------------------------

LEASE_SITES = ["lease.acquire", "lease.renew", "lease.steal"]
SHARD_WORKERS = 3
LEASE_TTL_MS = 800


def lease_worker_cmd(binary, state_dir, out, small, worker, range_cells):
    # The 25 ms heartbeat makes lease.renew fire early in a range even on
    # fast specs (the default ttl/4 cadence can outlive a whole range).
    return campaign_cmd(binary, state_dir, out, small) + [
        "--lease-claim", f"--lease-ttl-ms={LEASE_TTL_MS}",
        "--lease-heartbeat-ms=25",
        f"--lease-range-cells={range_cells}", f"--worker-id=w{worker}"]


def plant_expired_leases(state_dir, range_cells, cell_count):
    """Ghost leases from a fleet that was SIGKILLed wholesale: one expired
    lease file per range, so every worker's first claim goes through the
    steal path (the only way to make lease.steal fire deterministically).
    """
    lease_dir = os.path.join(state_dir, "leases")
    os.makedirs(lease_dir, exist_ok=True)
    ranges = (cell_count + range_cells - 1) // range_cells
    long_ago = time.time() - 60
    for index in range(ranges):
        path = os.path.join(lease_dir, f"range-{index}.lease")
        with open(path, "w") as stream:
            stream.write("ghost-fleet\n")
        os.utime(path, (long_ago, long_ago))


def campaign_sharded_kill(binary, workdir, small):
    """3 lease workers, one killed at every lease site; survivors reclaim."""
    label = "small" if small else "275-cell"
    cell_count = 14 if small else 275
    range_cells = 2 if small else 16
    ref_dir = os.path.join(workdir, "shard_ref")
    ref_out = os.path.join(workdir, "shard_ref.json")
    proc = run_campaign(binary, ref_dir, ref_out, small=small)
    if proc.returncode != 0:
        fail(f"sharded reference failed: rc={proc.returncode}\n{proc.stderr}")
    reference_json = read_bytes(ref_out)
    reference_ledger = read_bytes(os.path.join(ref_dir, "cells.jsonl"))

    for site in LEASE_SITES:
        tag = site.replace(".", "_")
        state_dir = os.path.join(workdir, f"shard_{tag}")
        if site == "lease.steal":
            plant_expired_leases(state_dir, range_cells, cell_count)
        # Arm the failpoint in worker w0 only; w1/w2 run clean.  nth:2 for
        # renew (the first renewal happens mid-range, after real work has
        # been appended — the dead worker leaves a partial shard ledger).
        nth = 2 if site == "lease.renew" else 1
        procs = []
        for worker in range(SHARD_WORKERS):
            env = dict(os.environ, ALIC_SCALE="smoke")
            env.pop("ALIC_FAILPOINTS", None)
            if worker == 0:
                env["ALIC_FAILPOINTS"] = f"{site}=nth:{nth},mode:crash"
            out = os.path.join(workdir, f"shard_{tag}_w{worker}.json")
            procs.append(subprocess.Popen(
                lease_worker_cmd(binary, state_dir, out, small, worker,
                                 range_cells),
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
                text=True))
        codes = []
        for worker, proc in enumerate(procs):
            try:
                stdout, stderr = proc.communicate(timeout=900)
            except subprocess.TimeoutExpired:
                for p in procs:
                    p.kill()
                fail(f"{site}: worker w{worker} wedged (survivors failed "
                     f"to reclaim the dead worker's leases?)")
            codes.append(proc.returncode)
            if worker and proc.returncode != 0:
                fail(f"{site}: survivor w{worker} exited {proc.returncode}"
                     f"\n{stderr}")
        if codes[0] != CRASH_EXIT:
            fail(f"{site}: armed worker w0 exited {codes[0]}, want "
                 f"{CRASH_EXIT} (the failpoint never fired?)")

        # Merge the survivors' (and the victim's partial) shard ledgers:
        # the canonical ledger must be byte-identical to the
        # single-process reference, and so must the re-aggregated JSON.
        merge = subprocess.run(
            [binary, f"--state-dir={state_dir}", "--merge-ledgers"]
            + spec_flags(small),
            env=dict(os.environ, ALIC_SCALE="smoke"), capture_output=True,
            text=True)
        if merge.returncode != 0:
            fail(f"{site}: merge exited {merge.returncode}\n{merge.stderr}")
        merged_ledger = read_bytes(os.path.join(state_dir, "cells.jsonl"))
        if merged_ledger != reference_ledger:
            fail(f"{site}: merged ledger diverged from the single-process "
                 f"reference ({state_dir}/cells.jsonl)")
        out = os.path.join(workdir, f"shard_{tag}.json")
        proc = run_campaign(binary, state_dir, out, small=small)
        if proc.returncode != 0:
            fail(f"{site}: aggregate over merged ledger exited "
                 f"{proc.returncode}\n{proc.stderr}")
        if read_bytes(out) != reference_json:
            fail(f"{site}: aggregate diverged from reference after merge")
        print(f"chaos_smoke: campaign sharded ({label}) {site}: w0 killed, "
              f"survivors reclaimed, merge byte-identical")


# ---------------------------------------------------------------------------
# Serve chaos
# ---------------------------------------------------------------------------

class DaemonDied(Exception):
    """The daemon crashed mid-request (the injected failpoint fired)."""


class ChaosDaemon:
    """One alic_serve process; request() raises DaemonDied on a crash."""

    def __init__(self, binary, sock_path, state_dir, failpoints=None):
        env = dict(os.environ, ALIC_SCALE="smoke")
        env.pop("ALIC_FAILPOINTS", None)
        if failpoints:
            env["ALIC_FAILPOINTS"] = failpoints
        self.proc = subprocess.Popen(
            [binary, f"--socket={sock_path}", f"--state-dir={state_dir}",
             "--threads=0", "--checkpoint-every=1"],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, env=env,
            text=True)
        ready = self.proc.stdout.readline()
        if not ready.startswith("READY"):
            fail(f"daemon did not print READY (got {ready!r})")
        self.conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        for _ in range(50):
            try:
                self.conn.connect(sock_path)
                break
            except OSError:
                time.sleep(0.1)
        else:
            fail(f"could not connect to {sock_path}")
        self.reader = self.conn.makefile("r")

    def request(self, obj):
        try:
            self.conn.sendall((json.dumps(obj) + "\n").encode())
            line = self.reader.readline()
        except OSError:
            line = ""
        if not line:
            raise DaemonDied()
        return line.rstrip("\n"), json.loads(line)

    def must(self, obj):
        line, reply = self.request(obj)
        if not reply.get("ok"):
            fail(f"{obj.get('op')} failed: {line}")
        return line, reply

    def reap(self, expect_crash):
        self.conn.close()
        rc = self.proc.wait(timeout=30)
        if expect_crash and rc != CRASH_EXIT:
            fail(f"daemon exited {rc}, want crash exit {CRASH_EXIT}")
        return rc

    def terminate(self):
        self.proc.terminate()
        rc = self.proc.wait(timeout=30)
        self.conn.close()
        if rc != 0:
            fail(f"daemon SIGTERM drain exited {rc}, want 0")


def serve_cost(round_index, slot):
    return 0.4 + ((round_index * 31 + slot * 7) % 97) * 1e-3


def serve_reference(binary, workdir):
    sock = os.path.join(workdir, "serve_ref.sock")
    daemon = ChaosDaemon(binary, sock, os.path.join(workdir, "serve_ref"))
    daemon.must({"op": "open", "session": "s", "spec": SERVE_SPEC})
    suggestions = []
    for round_index in range(SERVE_ROUNDS):
        line, reply = daemon.must({"op": "suggest", "session": "s"})
        suggestions.append(line)
        count = len(reply["configs"]) * reply["observations_per_config"]
        costs = [serve_cost(round_index, s) for s in range(count)]
        daemon.must({"op": "observe", "session": "s",
                     "ticket": reply["ticket"], "costs": costs})
    daemon.terminate()
    return suggestions


def serve_snapshot_crash_loop(binary, workdir, reference):
    """Crash the daemon at its K-th snapshot write for K = 1, 2, ...

    The client follows the at-least-once retry the protocol documents:
    after a restart it re-suggests, and a reply byte-equal to the round
    it already recorded means the observe was lost — re-send the same
    costs.  A reply it has not seen is the next round.
    """
    sock = os.path.join(workdir, "serve_chaos.sock")
    state_dir = os.path.join(workdir, "serve_chaos")
    suggestions = []
    acked = 0  # observes the daemon has answered
    crashes = 0
    iteration = 0
    while acked < SERVE_ROUNDS:
        iteration += 1
        if iteration > MAX_CRASH_ITERATIONS:
            fail("serve chaos made no progress "
                 f"({acked}/{SERVE_ROUNDS} rounds after {crashes} crashes)")
        daemon = ChaosDaemon(
            binary, sock, state_dir,
            failpoints=f"snapshot.write=nth:{iteration},mode:crash")
        try:
            _, ping = daemon.must({"op": "ping"})
            if ping.get("sessions") == 0:
                # Crashed before the open's snapshot landed: open again.
                daemon.must({"op": "open", "session": "s",
                             "spec": SERVE_SPEC})
            while acked < SERVE_ROUNDS:
                line, reply = daemon.must({"op": "suggest", "session": "s"})
                if acked < len(suggestions):
                    # Re-suggest after a crash mid-observe: the lost
                    # round must come back byte-identical.
                    if line != suggestions[acked]:
                        fail(f"round {acked} diverged after crash:\n"
                             f"  before: {suggestions[acked]}\n"
                             f"  after:  {line}")
                else:
                    suggestions.append(line)
                count = (len(reply["configs"]) *
                         reply["observations_per_config"])
                costs = [serve_cost(acked, s) for s in range(count)]
                daemon.must({"op": "observe", "session": "s",
                             "ticket": reply["ticket"], "costs": costs})
                acked += 1
        except DaemonDied:
            daemon.reap(expect_crash=True)
            crashes += 1
            continue
        daemon.terminate()

    if suggestions != reference:
        for index, (chaos, ref) in enumerate(zip(suggestions, reference)):
            if chaos != ref:
                fail(f"serve suggestion {index} diverged from reference:\n"
                     f"  reference: {ref}\n  chaos:     {chaos}")
        fail(f"serve round count diverged: {len(suggestions)} vs "
             f"{len(reference)}")

    # A final clean restart still restores the fully-observed session.
    daemon = ChaosDaemon(binary, sock, state_dir)
    _, info = daemon.must({"op": "info", "session": "s"})
    if info.get("observes") != SERVE_ROUNDS:
        fail(f"restored session has {info.get('observes')} observes, "
             f"want {SERVE_ROUNDS}")
    daemon.terminate()
    print(f"chaos_smoke: serve snapshot.write: {SERVE_ROUNDS} rounds "
          f"byte-identical across {crashes} crash(es)")


# ---------------------------------------------------------------------------


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--campaign-binary", required=True,
                        help="path to the alic_campaign executable")
    parser.add_argument("--serve-binary", required=True,
                        help="path to the alic_serve executable")
    parser.add_argument("--workdir", default="chaos-smoke",
                        help="scratch directory (wiped)")
    parser.add_argument("--small-enospc", action="store_true",
                        help="run the ENOSPC probe on the 8-cell spec "
                             "instead of the 275-cell smoke spec")
    parser.add_argument("--small-shard", action="store_true",
                        help="run the sharded kill loop on the small spec "
                             "instead of the 275-cell smoke spec")
    args = parser.parse_args()
    campaign = os.path.abspath(args.campaign_binary)
    serve = os.path.abspath(args.serve_binary)
    for binary in (campaign, serve):
        if not os.path.exists(binary):
            print(f"chaos_smoke: no such binary: {binary}", file=sys.stderr)
            sys.exit(2)

    shutil.rmtree(args.workdir, ignore_errors=True)
    os.makedirs(args.workdir)

    campaign_crash_loops(campaign, args.workdir)
    campaign_enospc_quarantine(campaign, args.workdir,
                               small=args.small_enospc)
    campaign_sharded_kill(campaign, args.workdir, small=args.small_shard)
    reference = serve_reference(serve, args.workdir)
    serve_snapshot_crash_loop(serve, args.workdir, reference)

    print("chaos_smoke: OK")
    shutil.rmtree(args.workdir, ignore_errors=True)
    sys.exit(0)


if __name__ == "__main__":
    main()

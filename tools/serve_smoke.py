#!/usr/bin/env python3
"""CI smoke test for alic_serve: the daemon survives SIGKILL invisibly.

Drives the real daemon over its Unix socket twice with identical
deterministic client behaviour:

1. *reference* — one daemon serves a whole session of suggest/observe
   rounds; every raw `suggest` reply line is recorded;
2. *kill* — a fresh daemon (fresh state dir) serves the same session,
   is SIGKILLed after K rounds, restarted on the same state dir, and
   serves the remaining rounds.

The kill run's reply lines must equal the reference run's byte for byte
— the serving layer's restart-invisibility contract, checked end to end
through the socket, the wire protocol, the snapshot files, and the
restore-by-replay path.

Three hardening probes then pin the daemon's client-misbehaviour
semantics (docs/SERVE_PROTOCOL.md):

3. *idle timeout* — a stalled connection is dropped after
   --idle-timeout-ms while the daemon keeps serving everyone else;
4. *oversized request* — a request over --max-request-bytes gets one
   error reply and a disconnect, and the daemon stays up;
5. *SIGTERM drain* — with a lazy --checkpoint-every cadence, SIGTERM
   exits 0 and snapshots every session, so no observation is lost.

stdlib-only by design: CI runs it with a bare python3.

Exit codes: 0 ok, 1 contract violation or daemon failure, 2 usage error.
"""

import argparse
import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import time

ROUNDS = 6
KILL_AFTER = 3

SPEC = {
    "benchmark": "atax",
    "model": "dynatree",
    "scorer": "alc",
    "plan": "seq:35",
    "seed": 9,
    "max_examples": 8,
}


def fail(message):
    print(f"serve_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def synthetic_cost(round_index, slot):
    """Deterministic stand-in for a measurement; identical in both runs."""
    return 0.4 + ((round_index * 31 + slot * 7) % 97) * 1e-3


class Daemon:
    """One alic_serve process plus a line-oriented socket connection."""

    def __init__(self, binary, sock_path, state_dir, label, extra_args=()):
        self.label = label
        self.sock_path = sock_path
        env = dict(os.environ, ALIC_SCALE="smoke")
        self.proc = subprocess.Popen(
            [binary, f"--socket={sock_path}", f"--state-dir={state_dir}",
             "--threads=2", *extra_args],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, env=env,
            text=True)
        ready = self.proc.stdout.readline()
        if not ready.startswith("READY"):
            fail(f"{label}: daemon did not print READY (got {ready!r})")
        self.conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        for _ in range(50):  # the socket appears just before READY
            try:
                self.conn.connect(sock_path)
                break
            except OSError:
                time.sleep(0.1)
        else:
            fail(f"{label}: could not connect to {sock_path}")
        self.reader = self.conn.makefile("r")

    def request(self, obj):
        """Sends one request object, returns (raw reply line, parsed)."""
        self.conn.sendall((json.dumps(obj) + "\n").encode())
        line = self.reader.readline()
        if not line:
            fail(f"{self.label}: daemon closed the connection")
        reply = json.loads(line)
        return line.rstrip("\n"), reply

    def must(self, obj):
        line, reply = self.request(obj)
        if not reply.get("ok"):
            fail(f"{self.label}: {obj.get('op')} failed: {line}")
        return line, reply

    def connect_extra(self):
        """A second, independent connection to the same daemon."""
        conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        conn.connect(self.sock_path)
        return conn

    def kill(self):
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait()
        self.conn.close()

    def shutdown(self):
        self.must({"op": "shutdown"})
        code = self.proc.wait(timeout=30)
        if code != 0:
            fail(f"{self.label}: shutdown drain exited {code}, want 0")
        self.conn.close()


def run_rounds(daemon, start, stop, suggestions):
    """Rounds [start, stop): suggest, synthesize costs, observe."""
    for round_index in range(start, stop):
        line, reply = daemon.must({"op": "suggest", "session": "s"})
        if reply["phase"] == "done":
            fail(f"{daemon.label}: session done early at round {round_index}")
        suggestions.append(line)
        count = len(reply["configs"]) * reply["observations_per_config"]
        costs = [synthetic_cost(round_index, slot) for slot in range(count)]
        daemon.must({"op": "observe", "session": "s",
                     "ticket": reply["ticket"], "costs": costs})


def probe_idle_timeout(binary, workdir):
    """A stalled client is dropped; a live one on the same daemon is not."""
    sock = os.path.join(workdir, "idle.sock")
    daemon = Daemon(binary, sock, os.path.join(workdir, "idle"), "idle",
                    extra_args=["--idle-timeout-ms=400"])
    stalled = daemon.connect_extra()  # connects, then never speaks
    deadline = time.time() + 10
    dropped = False
    while time.time() < deadline:
        daemon.must({"op": "ping"})  # keeps the main connection warm
        stalled.settimeout(0.2)
        try:
            if stalled.recv(1) == b"":
                dropped = True
                break
        except socket.timeout:
            pass
    if not dropped:
        fail("idle: stalled connection was not dropped within 10s")
    daemon.must({"op": "ping"})  # the active client kept its connection
    daemon.shutdown()
    print("serve_smoke: idle-timeout probe OK "
          "(stalled client dropped, active client kept)")


def probe_oversized_request(binary, workdir):
    """An over-limit request gets one error reply, then a disconnect."""
    sock = os.path.join(workdir, "big.sock")
    daemon = Daemon(binary, sock, os.path.join(workdir, "big"), "big",
                    extra_args=["--max-request-bytes=4096"])
    rude = daemon.connect_extra()
    rude.sendall(b'{"op":"ping","pad":"' + b"x" * 8192 + b'"}\n')
    reader = rude.makefile("r")
    reply = json.loads(reader.readline())
    if reply.get("ok") or "exceeds" not in reply.get("error", ""):
        fail(f"big: want an 'exceeds' error reply, got {reply}")
    if reader.readline() != "":
        fail("big: oversized-request client was not disconnected")
    daemon.must({"op": "ping"})  # the daemon itself is unharmed
    daemon.shutdown()
    print("serve_smoke: oversized-request probe OK "
          "(error reply + disconnect, daemon alive)")


def probe_sigterm_drain(binary, workdir):
    """SIGTERM snapshots sessions the lazy cadence has not persisted."""
    sock = os.path.join(workdir, "drain.sock")
    state = os.path.join(workdir, "drain")
    # --checkpoint-every=5 with 2 observes: only the drain's snapshotAll
    # can make these observations durable.
    daemon = Daemon(binary, sock, state, "drain",
                    extra_args=["--checkpoint-every=5"])
    daemon.must({"op": "open", "session": "s", "spec": SPEC})
    drained = []
    run_rounds(daemon, 0, 2, drained)
    daemon.proc.send_signal(signal.SIGTERM)
    code = daemon.proc.wait(timeout=30)
    if code != 0:
        fail(f"drain: SIGTERM exit code {code}, want 0")
    daemon.conn.close()

    daemon = Daemon(binary, sock, state, "drain-restart")
    _, info = daemon.must({"op": "info", "session": "s"})
    if info.get("observes") != 2:
        fail(f"drain: restored session has {info.get('observes')} "
             f"observes, want 2 — the drain lost data")
    daemon.shutdown()
    print("serve_smoke: SIGTERM-drain probe OK "
          "(2 unsnapshotted observes survived)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", required=True,
                        help="path to the alic_serve executable")
    parser.add_argument("--workdir", default="serve-smoke",
                        help="scratch directory (wiped)")
    args = parser.parse_args()
    binary = os.path.abspath(args.binary)
    if not os.path.exists(binary):
        print(f"serve_smoke: no such binary: {binary}", file=sys.stderr)
        sys.exit(2)

    shutil.rmtree(args.workdir, ignore_errors=True)
    os.makedirs(args.workdir)
    sock = os.path.join(args.workdir, "alic.sock")

    # Reference: one uninterrupted daemon.
    reference = []
    daemon = Daemon(binary, sock, os.path.join(args.workdir, "ref"), "ref")
    daemon.must({"op": "open", "session": "s", "spec": SPEC})
    run_rounds(daemon, 0, ROUNDS, reference)
    _, info = daemon.must({"op": "info", "session": "s"})
    daemon.shutdown()
    print(f"serve_smoke: reference run served {ROUNDS} rounds "
          f"({info['observations']} observations)")

    # Kill run: same session, SIGKILL after KILL_AFTER rounds, restart.
    seen = []
    daemon = Daemon(binary, sock, os.path.join(args.workdir, "kill"), "kill")
    daemon.must({"op": "open", "session": "s", "spec": SPEC})
    run_rounds(daemon, 0, KILL_AFTER, seen)
    daemon.kill()
    print(f"serve_smoke: SIGKILLed the daemon after {KILL_AFTER} rounds")

    daemon = Daemon(binary, sock, os.path.join(args.workdir, "kill"),
                    "restart")
    _, ping = daemon.must({"op": "ping"})
    if ping.get("sessions") != 1:
        fail(f"restart: expected 1 restored session, got {ping}")
    run_rounds(daemon, KILL_AFTER, ROUNDS, seen)
    daemon.shutdown()

    if seen != reference:
        for index, (fresh, ref) in enumerate(zip(seen, reference)):
            if fresh != ref:
                fail(f"suggestion {index} diverged after restart:\n"
                     f"  reference: {ref}\n  resumed:   {fresh}")
        fail(f"round count diverged: {len(seen)} vs {len(reference)}")
    print(f"serve_smoke: OK — all {ROUNDS} suggestions byte-identical "
          f"across SIGKILL + restart")

    probe_idle_timeout(binary, args.workdir)
    probe_oversized_request(binary, args.workdir)
    probe_sigterm_drain(binary, args.workdir)

    shutil.rmtree(args.workdir, ignore_errors=True)
    sys.exit(0)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""CI smoke test for alic_serve: the daemon survives SIGKILL invisibly.

Drives the real daemon over its Unix socket twice with identical
deterministic client behaviour:

1. *reference* — one daemon serves a whole session of suggest/observe
   rounds; every raw `suggest` reply line is recorded;
2. *kill* — a fresh daemon (fresh state dir) serves the same session,
   is SIGKILLed after K rounds, restarted on the same state dir, and
   serves the remaining rounds.

The kill run's reply lines must equal the reference run's byte for byte
— the serving layer's restart-invisibility contract, checked end to end
through the socket, the wire protocol, the snapshot files, and the
restore-by-replay path.

stdlib-only by design: CI runs it with a bare python3.

Exit codes: 0 ok, 1 contract violation or daemon failure, 2 usage error.
"""

import argparse
import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import time

ROUNDS = 6
KILL_AFTER = 3

SPEC = {
    "benchmark": "atax",
    "model": "dynatree",
    "scorer": "alc",
    "plan": "seq:35",
    "seed": 9,
    "max_examples": 8,
}


def fail(message):
    print(f"serve_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def synthetic_cost(round_index, slot):
    """Deterministic stand-in for a measurement; identical in both runs."""
    return 0.4 + ((round_index * 31 + slot * 7) % 97) * 1e-3


class Daemon:
    """One alic_serve process plus a line-oriented socket connection."""

    def __init__(self, binary, sock_path, state_dir, label):
        self.label = label
        env = dict(os.environ, ALIC_SCALE="smoke")
        self.proc = subprocess.Popen(
            [binary, f"--socket={sock_path}", f"--state-dir={state_dir}",
             "--threads=2"],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, env=env,
            text=True)
        ready = self.proc.stdout.readline()
        if not ready.startswith("READY"):
            fail(f"{label}: daemon did not print READY (got {ready!r})")
        self.conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        for _ in range(50):  # the socket appears just before READY
            try:
                self.conn.connect(sock_path)
                break
            except OSError:
                time.sleep(0.1)
        else:
            fail(f"{label}: could not connect to {sock_path}")
        self.reader = self.conn.makefile("r")

    def request(self, obj):
        """Sends one request object, returns (raw reply line, parsed)."""
        self.conn.sendall((json.dumps(obj) + "\n").encode())
        line = self.reader.readline()
        if not line:
            fail(f"{self.label}: daemon closed the connection")
        reply = json.loads(line)
        return line.rstrip("\n"), reply

    def must(self, obj):
        line, reply = self.request(obj)
        if not reply.get("ok"):
            fail(f"{self.label}: {obj.get('op')} failed: {line}")
        return line, reply

    def kill(self):
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait()
        self.conn.close()

    def shutdown(self):
        self.must({"op": "shutdown"})
        self.proc.wait(timeout=30)
        self.conn.close()


def run_rounds(daemon, start, stop, suggestions):
    """Rounds [start, stop): suggest, synthesize costs, observe."""
    for round_index in range(start, stop):
        line, reply = daemon.must({"op": "suggest", "session": "s"})
        if reply["phase"] == "done":
            fail(f"{daemon.label}: session done early at round {round_index}")
        suggestions.append(line)
        count = len(reply["configs"]) * reply["observations_per_config"]
        costs = [synthetic_cost(round_index, slot) for slot in range(count)]
        daemon.must({"op": "observe", "session": "s",
                     "ticket": reply["ticket"], "costs": costs})


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", required=True,
                        help="path to the alic_serve executable")
    parser.add_argument("--workdir", default="serve-smoke",
                        help="scratch directory (wiped)")
    args = parser.parse_args()
    binary = os.path.abspath(args.binary)
    if not os.path.exists(binary):
        print(f"serve_smoke: no such binary: {binary}", file=sys.stderr)
        sys.exit(2)

    shutil.rmtree(args.workdir, ignore_errors=True)
    os.makedirs(args.workdir)
    sock = os.path.join(args.workdir, "alic.sock")

    # Reference: one uninterrupted daemon.
    reference = []
    daemon = Daemon(binary, sock, os.path.join(args.workdir, "ref"), "ref")
    daemon.must({"op": "open", "session": "s", "spec": SPEC})
    run_rounds(daemon, 0, ROUNDS, reference)
    _, info = daemon.must({"op": "info", "session": "s"})
    daemon.shutdown()
    print(f"serve_smoke: reference run served {ROUNDS} rounds "
          f"({info['observations']} observations)")

    # Kill run: same session, SIGKILL after KILL_AFTER rounds, restart.
    seen = []
    daemon = Daemon(binary, sock, os.path.join(args.workdir, "kill"), "kill")
    daemon.must({"op": "open", "session": "s", "spec": SPEC})
    run_rounds(daemon, 0, KILL_AFTER, seen)
    daemon.kill()
    print(f"serve_smoke: SIGKILLed the daemon after {KILL_AFTER} rounds")

    daemon = Daemon(binary, sock, os.path.join(args.workdir, "kill"),
                    "restart")
    _, ping = daemon.must({"op": "ping"})
    if ping.get("sessions") != 1:
        fail(f"restart: expected 1 restored session, got {ping}")
    run_rounds(daemon, KILL_AFTER, ROUNDS, seen)
    daemon.shutdown()

    if seen != reference:
        for index, (fresh, ref) in enumerate(zip(seen, reference)):
            if fresh != ref:
                fail(f"suggestion {index} diverged after restart:\n"
                     f"  reference: {ref}\n  resumed:   {fresh}")
        fail(f"round count diverged: {len(seen)} vs {len(reference)}")
    print(f"serve_smoke: OK — all {ROUNDS} suggestions byte-identical "
          f"across SIGKILL + restart")
    shutil.rmtree(args.workdir, ignore_errors=True)
    sys.exit(0)


if __name__ == "__main__":
    main()

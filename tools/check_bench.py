#!/usr/bin/env python3
"""CI perf-regression gate: compare fresh BENCH_*.json against committed
baselines.

For every ``BENCH_*.json`` in --baseline-dir, the same-named file must
exist in --fresh-dir; the two documents are flattened to (path, number)
pairs and compared pathwise.  Metrics are classified by their final key
segment:

* cost-like (lower is better: contains "cost", "seconds", "rmse", or
  "time")  -> fail when fresh > baseline * (1 + threshold);
* throughput-like (higher is better: contains "per_second" or
  "speedup")  -> fail when fresh < baseline * (1 - threshold);
* anything else is informational and skipped.

Wall-clock metrics (google-benchmark real/cpu time, updates/items/bytes
per second) are skipped by default because shared CI runners make them
noisy; pass --include-wallclock to gate them too.  Curve interior points
(paths containing "curve") are skipped — the gate compares the summary
metrics the campaign/benches emit, not every intermediate sample.

Deterministic metrics (the campaign's virtual profiling costs, final
RMSEs, and speedups) are bit-stable per platform, so the default 25%
threshold only absorbs cross-toolchain libm wobble.

stdlib-only by design: CI runs it with a bare python3.

Exit codes: 0 ok, 1 regression or missing file, 2 usage error.
"""

import argparse
import glob
import json
import os
import sys

# Fields that identify an array element (a campaign combo/plan, a batch
# row, a particle-sweep row).  Elements carrying any of these are
# addressed by identity instead of list position, so reordering or
# growing the cross-product can never silently pair unrelated metrics —
# a shape mismatch surfaces as "missing from fresh output".
ID_KEYS = ("benchmark", "model", "scorer", "batch", "plan", "policy",
           "particles", "state", "threads", "approx", "n", "workers")

# "labels" gates BENCH_query.json's labels_spent (a query policy that
# starts buying more labels regressed); "saved" must precede it in the
# throughput class so labels_saved_fraction gates in the right direction.
COST_TOKENS = ("cost", "seconds", "rmse", "time", "labels")
THROUGHPUT_TOKENS = ("per_second", "speedup", "saved")
WALLCLOCK_TOKENS = (
    "real_time",
    "cpu_time",
    "updates_per_second",
    "items_per_second",
    "bytes_per_second",
    # bench_scheduler: ratios/rates of tens-of-ms wall clocks — far too
    # noisy for shared CI runners even as a ratio (the baseline is also
    # hardware-dependent: ~0.93 on a 1-core box, >1 on real multicore).
    "tail_speedup",
    "fanout_rate",
    # bench_dynatree_hotpath: wall-clock scoring rates and their dedup
    # ratios; the file itself is still presence-gated (a committed
    # baseline with a missing fresh file fails the run), and its
    # deterministic columns (duplicate_fraction, unique_runs) stay
    # comparable in the artifacts.
    "scores_per_second",
    "dedup_speedup",
    # bench_serve: suggest/observe round-trip rate — wall-clock derived
    # and machine-dependent; BENCH_serve.json stays presence-gated and
    # its round_trips/restored counts are deterministic.
    "suggestions_per_second",
    # bench_ablation_model_cost's GP throughput sweep: pure wall clocks
    # and their ratios (the committed baseline is a 1-core box, so even
    # factorize_speedup is hardware-dependent).  BENCH_gp.json stays
    # presence-gated and its quality columns (exact_rmse/sor_rmse) are
    # deterministic and remain in the gate.
    "fit_seconds",
    "update_seconds",
    "predict_seconds",
    "predicts_per_second",
    "factorize_seconds",
    "factorize_speedup",
    "candidates_per_second",
)
SKIP_PATH_TOKENS = ("curve",)

# Ignore denominators this small: ratios of near-zero costs are noise.
TINY = 1e-12


def element_label(item, index):
    """Identity-based label for a list element, index as fallback."""
    if isinstance(item, dict):
        parts = [f"{key}={item[key]}" for key in ID_KEYS if key in item]
        if parts:
            return ",".join(parts)
    return str(index)


def flatten(node, path, out):
    """Collect (path, float) for every numeric leaf of a JSON document."""
    if isinstance(node, dict):
        for key in node:
            flatten(node[key], f"{path}.{key}" if path else key, out)
    elif isinstance(node, list):
        for index, item in enumerate(node):
            flatten(item, f"{path}[{element_label(item, index)}]", out)
    elif isinstance(node, bool):
        pass  # bools are ints in python; never a metric
    elif isinstance(node, (int, float)):
        out.append((path, float(node)))


def last_key(path):
    """The final object key of a flattened path ("a.b[3].c[0]" -> "c")."""
    tail = path.rsplit(".", 1)[-1]
    return tail.split("[", 1)[0]


def classify(path, include_wallclock):
    """Returns "cost", "throughput", or None (not gated)."""
    segments = path.lower().split(".")
    if any(tok in seg.split("[", 1)[0] for seg in segments
           for tok in SKIP_PATH_TOKENS):
        return None
    key = last_key(path).lower()
    if not include_wallclock and any(tok in key for tok in WALLCLOCK_TOKENS):
        return None
    if any(tok in key for tok in THROUGHPUT_TOKENS):
        return "throughput"
    if any(tok in key for tok in COST_TOKENS):
        return "cost"
    return None


def load_metrics(path):
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    metrics = []
    flatten(document, "", metrics)
    return dict(metrics)


def compare_file(name, baseline, fresh, threshold, include_wallclock):
    """Returns (regressions, notes) for one baseline/fresh pair."""
    regressions = []
    notes = []
    for path, base_value in sorted(baseline.items()):
        kind = classify(path, include_wallclock)
        if kind is None:
            continue
        if path not in fresh:
            regressions.append(
                f"{name}: {path} missing from fresh output "
                f"(baseline {base_value:g})")
            continue
        fresh_value = fresh[path]
        if abs(base_value) < TINY:
            continue
        ratio = fresh_value / base_value
        if kind == "cost" and ratio > 1.0 + threshold:
            regressions.append(
                f"{name}: {path} regressed {ratio:.2f}x "
                f"({base_value:g} -> {fresh_value:g})")
        elif kind == "throughput" and ratio < 1.0 - threshold:
            regressions.append(
                f"{name}: {path} dropped to {ratio:.2f}x "
                f"({base_value:g} -> {fresh_value:g})")
        elif kind == "cost" and ratio < 1.0 - threshold:
            notes.append(
                f"{name}: {path} improved {1.0 / ratio:.2f}x — consider "
                f"refreshing the baseline")
        elif kind == "throughput" and ratio > 1.0 + threshold:
            notes.append(
                f"{name}: {path} improved {ratio:.2f}x — consider "
                f"refreshing the baseline")
    return regressions, notes


def main():
    parser = argparse.ArgumentParser(
        description="Fail CI on >threshold cost/throughput regressions "
        "against committed BENCH_*.json baselines.")
    parser.add_argument("--baseline-dir", default="bench/baselines",
                        help="directory of committed BENCH_*.json baselines")
    parser.add_argument("--fresh-dir", default="build",
                        help="directory holding freshly produced BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative regression tolerance (default 0.25)")
    parser.add_argument("--include-wallclock", action="store_true",
                        help="also gate wall-clock metrics (noisy on CI)")
    args = parser.parse_args()

    pattern = os.path.join(args.baseline_dir, "BENCH_*.json")
    baseline_paths = sorted(glob.glob(pattern))
    if not baseline_paths:
        print(f"error: no baselines match {pattern}", file=sys.stderr)
        return 2

    all_regressions = []
    gated_files = 0
    for baseline_path in baseline_paths:
        name = os.path.basename(baseline_path)
        fresh_path = os.path.join(args.fresh_dir, name)
        if not os.path.exists(fresh_path):
            all_regressions.append(
                f"{name}: fresh output missing from {args.fresh_dir} "
                "(did the bench step run?)")
            continue
        baseline = load_metrics(baseline_path)
        fresh = load_metrics(fresh_path)
        regressions, notes = compare_file(
            name, baseline, fresh, args.threshold, args.include_wallclock)
        gated = sum(
            1 for path in baseline
            if classify(path, args.include_wallclock) is not None)
        print(f"{name}: checked {gated} gated metric(s), "
              f"{len(regressions)} regression(s)")
        for note in notes:
            print(f"  note: {note}")
        all_regressions.extend(regressions)
        gated_files += 1

    if all_regressions:
        print(f"\nFAIL: {len(all_regressions)} perf regression(s) beyond "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for regression in all_regressions:
            print(f"  {regression}", file=sys.stderr)
        return 1
    print(f"\nOK: {gated_files} bench file(s) within {args.threshold:.0%} "
          "of baselines")
    return 0


if __name__ == "__main__":
    sys.exit(main())

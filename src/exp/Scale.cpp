//===- exp/Scale.cpp ------------------------------------------*- C++ -*-===//

#include "exp/Scale.h"

#include "core/ActiveLearner.h"

using namespace alic;

void ExperimentScale::applyTo(ActiveLearnerConfig &Cfg) const {
  Cfg.NumInitial = NumInitial;
  Cfg.InitObservations = InitObservations;
  Cfg.MaxTrainingExamples = MaxTrainingExamples;
  Cfg.CandidatesPerIteration = CandidatesPerIteration;
  Cfg.ReferenceSetSize = ReferenceSetSize;
}

ExperimentScale ExperimentScale::preset(ScaleKind Kind) {
  ExperimentScale S;
  switch (Kind) {
  case ScaleKind::Smoke:
    S.NumConfigs = 600;
    S.MaxTrainingExamples = 60;
    S.CandidatesPerIteration = 40;
    S.ReferenceSetSize = 50;
    S.Particles = 60;
    S.Repetitions = 1;
    S.EvalEvery = 10;
    S.TestSubset = 100;
    break;
  case ScaleKind::Bench:
    S.NumConfigs = 2500;
    S.MaxTrainingExamples = 400;
    S.CandidatesPerIteration = 100;
    S.ReferenceSetSize = 100;
    S.Particles = 200;
    S.Repetitions = 2;
    S.EvalEvery = 10;
    S.TestSubset = 300;
    break;
  case ScaleKind::Paper:
    S.NumConfigs = 10000;
    S.MaxTrainingExamples = 2500;
    S.CandidatesPerIteration = 500;
    S.ReferenceSetSize = 200;
    S.Particles = 5000;
    S.Repetitions = 10;
    S.EvalEvery = 25;
    S.TestSubset = 2500;
    break;
  }
  return S;
}

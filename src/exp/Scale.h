//===- exp/Scale.h - Experiment scale presets ------------------*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bundled experiment parameters.  The paper's configuration (Sections
/// 4.4-4.5) is the `paper` preset: 10,000 profiled configurations per
/// benchmark (7,500 train / 2,500 test), ninit=5 seeds with 35
/// observations, nmax=2,500, nc=500 candidates, N=5,000 particles, 10
/// repetitions.  The default `bench` preset shrinks everything so the
/// whole harness runs in minutes on one core; `smoke` is for CI.
/// Select with ALIC_SCALE=smoke|bench|paper.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_EXP_SCALE_H
#define ALIC_EXP_SCALE_H

#include "support/Env.h"

#include <cstddef>
#include <cstdint>

namespace alic {

struct ActiveLearnerConfig;

/// All scale-dependent experiment parameters.
struct ExperimentScale {
  size_t NumConfigs = 3000;       ///< profiled configurations per benchmark
  double TrainFraction = 0.75;    ///< train/test split (paper: 7500/2500)
  unsigned MeanObservations = 35; ///< runs behind each test-set mean
  unsigned NumInitial = 5;        ///< ninit
  unsigned InitObservations = 35; ///< seed observations
  unsigned MaxTrainingExamples = 500; ///< nmax
  unsigned CandidatesPerIteration = 120; ///< nc
  unsigned ReferenceSetSize = 100;
  unsigned Particles = 250;
  unsigned Repetitions = 3;
  unsigned EvalEvery = 10;        ///< iterations between test-set RMSE evals
  size_t TestSubset = 400;        ///< test points used per evaluation
  unsigned ObservationCap = 35;   ///< nobs cap for the sequential plan

  /// Copies the scale-derived learner knobs (ninit, seed observations,
  /// nmax, nc, reference-set size) into \p Cfg, leaving the policy knobs
  /// (scorer, batch size, seed) untouched.  The single point where scale
  /// parameters become learner parameters — experiment drivers must not
  /// copy these fields by hand.
  void applyTo(ActiveLearnerConfig &Cfg) const;

  /// Returns the preset for \p Kind.
  static ExperimentScale preset(ScaleKind Kind);

  /// Preset selected by the ALIC_SCALE environment variable.
  static ExperimentScale fromEnv() { return preset(getScaleKind()); }
};

} // namespace alic

#endif // ALIC_EXP_SCALE_H

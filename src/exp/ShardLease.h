//===- exp/ShardLease.h - Range leases for multi-process campaigns -------===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coordination substrate that lets N independent alic_campaign
/// processes (same box or a shared filesystem) cooperatively complete one
/// spec: the canonical cell list is split into contiguous ranges, and a
/// worker claims a range by creating `<state-dir>/leases/range-<I>.lease`
/// with O_CREAT|O_EXCL — the filesystem arbitrates, no server, no locks.
/// A held lease is renewed by bumping the file's mtime on a
/// monotonic-clock cadence (LeaseHeartbeat); a lease whose mtime is older
/// than the TTL belongs to a dead or wedged worker and may be *stolen*:
/// the stealer renames the stale file away to a per-stealer name, and
/// because rename of an already-moved source fails with ENOENT, exactly
/// one of any number of concurrent stealers wins.  Every create/rename is
/// made durable with the same directory-fsync discipline as
/// ByteWriter::writeFileDurable.
///
/// Safety does NOT rest on the leases: campaign cells are pure functions
/// of their keys and the ledger merge tolerates byte-identical duplicate
/// lines, so the worst outcome of any race (a stolen-but-still-running
/// owner, clock skew, a crashed stealer) is duplicated work, never a
/// wrong result.  Leases are purely an efficiency mechanism; this is the
/// "steal safety argument" in ARCHITECTURE.md's Scale-out section.
///
/// Fault-injection sites: lease.acquire, lease.renew, lease.steal.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_EXP_SHARDLEASE_H
#define ALIC_EXP_SHARDLEASE_H

#include "support/Error.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace alic {

/// One contiguous slice [Begin, End) of the canonical cell list.
struct ShardRange {
  size_t Index = 0; ///< range number (names the lease file)
  size_t Begin = 0; ///< first cell index, inclusive
  size_t End = 0;   ///< one past the last cell index

  size_t size() const { return End - Begin; }
};

/// Splits \p NumItems into \p NumRanges contiguous near-equal ranges in
/// order (the first NumItems % NumRanges ranges get one extra item).
/// Deterministic: equal inputs give equal splits on every process, which
/// is what lets workers agree on range boundaries without talking.
/// NumRanges of 0 is treated as 1.  Always returns exactly NumRanges
/// entries — trailing ones are empty when items run out, so static
/// --shard i/N addressing works even when N exceeds the item count.
std::vector<ShardRange> splitRanges(size_t NumItems, size_t NumRanges);

/// Range partition for lease claiming: ceil(NumItems / TargetCells)
/// ranges of roughly \p TargetCells cells each (floor 1); zero items
/// give no ranges.
std::vector<ShardRange> splitRangesByCells(size_t NumItems,
                                           size_t TargetCells);

/// Configuration of the lease-directory protocol.
struct LeaseOptions {
  std::string Dir;        ///< the `<state-dir>/leases` directory
  std::string OwnerToken; ///< unique per worker process (content of leases)
  /// A lease whose mtime is older than this is considered abandoned and
  /// may be stolen.  Must comfortably exceed the heartbeat cadence.
  uint64_t TtlMs = 2000;
  /// Renewal cadence; 0 derives TtlMs / 4 (floor 1 ms).
  uint64_t HeartbeatMs = 0;

  /// The effective heartbeat cadence.
  uint64_t heartbeatMs() const {
    uint64_t Ms = HeartbeatMs ? HeartbeatMs : TtlMs / 4;
    return Ms ? Ms : 1;
  }
};

/// A held lease on one range.  Move-only; releases (unlinks) on
/// destruction if still held.  Not thread-safe: stop any LeaseHeartbeat
/// driving it before calling renew()/release() from another thread.
class RangeLease {
public:
  RangeLease() = default;
  ~RangeLease() { release(); }
  RangeLease(RangeLease &&Other) noexcept { *this = std::move(Other); }
  RangeLease &operator=(RangeLease &&Other) noexcept;
  RangeLease(const RangeLease &) = delete;
  RangeLease &operator=(const RangeLease &) = delete;

  /// True while this process believes it owns the lease file.
  bool held() const { return Fd >= 0; }

  /// Bumps the lease file's mtime and verifies ownership (the path must
  /// still resolve to the inode this process created — a mismatch means
  /// the lease was stolen).  Returns false and drops the lease when
  /// ownership was lost or the renewal failed; the caller must stop
  /// claiming the range's remaining cells are exclusively its own.
  /// Fault-injection site: lease.renew (error = renewal failure, crash =
  /// the worker dies mid-heartbeat — the SIGKILL chaos scenario).
  bool renew();

  /// Unlinks the lease file (if still owned) and closes it.  Idempotent.
  void release();

  /// Closes the descriptor *without* unlinking — the on-disk lease file
  /// stays behind exactly as a SIGKILLed owner would leave it.  Crash
  /// simulation for tests.
  void abandon();

  /// The lease file path ("" when not held).
  const std::string &path() const { return Path; }

private:
  friend class ShardLease;

  int Fd = -1;
  std::string Path;
  uint64_t Dev = 0; ///< st_dev of the created file (ownership check)
  uint64_t Ino = 0; ///< st_ino of the created file (ownership check)
};

/// The lease-directory protocol: claim ranges, steal expired ones.
/// Stateless between calls (all state lives in the filesystem), so any
/// number of ShardLease instances — across processes or threads — can
/// point at the same directory.
class ShardLease {
public:
  explicit ShardLease(LeaseOptions Options) : Opts(std::move(Options)) {}

  /// Creates the lease directory (durably: parent fsync'd) if missing.
  Status init() const;

  /// What one claim attempt concluded.
  enum class Claim {
    Acquired, ///< \p Out holds the lease; the range is ours
    Held,     ///< a live owner holds it (or we lost a claim/steal race)
    Error     ///< transient I/O failure; treat like Held and retry later
  };

  /// Tries to claim range \p RangeIndex: O_EXCL-create the lease file,
  /// or steal it if the existing one has expired.  Never blocks.
  /// Fault-injection sites: lease.acquire (the create), lease.steal (the
  /// rename-away) — both accept mode:crash for the chaos kill loops.
  Claim tryClaim(size_t RangeIndex, RangeLease &Out) const;

  /// The lease file path for range \p RangeIndex.
  std::string leasePath(size_t RangeIndex) const;

  const LeaseOptions &options() const { return Opts; }

private:
  LeaseOptions Opts;
};

/// Background renewal of one held lease: a thread bumps the lease mtime
/// every heartbeatMs until stop() (or destruction), flagging lost() when
/// a renewal discovers the lease was stolen.  The owner must call stop()
/// before releasing or moving the lease (RangeLease is not thread-safe).
class LeaseHeartbeat {
public:
  LeaseHeartbeat(RangeLease &Lease, const LeaseOptions &Opts);
  ~LeaseHeartbeat() { stop(); }
  LeaseHeartbeat(const LeaseHeartbeat &) = delete;
  LeaseHeartbeat &operator=(const LeaseHeartbeat &) = delete;

  /// Stops and joins the renewal thread.  Idempotent.
  void stop();

  /// True once a renewal observed the lease stolen (or failing): the
  /// range is no longer exclusively ours, finish the current cell and
  /// abandon the rest (recomputation elsewhere is safe — see the steal
  /// safety argument).
  bool lost() const { return Lost.load(std::memory_order_acquire); }

private:
  RangeLease &Lease;
  std::atomic<bool> Lost{false};
  bool Stopped = false;
  std::mutex Mutex;
  std::condition_variable Cv;
  std::thread Thread;
};

/// A process-unique owner token for LeaseOptions (pid + monotonic clock;
/// uniqueness is all that matters, tokens never affect results).
std::string makeLeaseOwnerToken(const std::string &Hint);

} // namespace alic

#endif // ALIC_EXP_SHARDLEASE_H

//===- exp/Campaign.h - Sharded, checkpointable experiment campaigns -----===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The campaign orchestrator behind the paper's headline results (Table 1,
/// Figure 5, Figure 6): a work-queue that expands a CampaignSpec — the
/// cross-product of benchmarks x surrogate models x scorers x batch sizes
/// x sampling plans x seeds at any ExperimentScale — into independent run
/// cells, submits the cells as top-level tasks of a work-stealing
/// Scheduler, and checkpoints every completed cell to a crash-safe JSONL
/// ledger.  Cells are *nested-parallel*: each cell's learner forks its
/// inner work (DynaTree particle shards, GP/KNN scoring shards, batched
/// profiler draws) onto the same scheduler, so when the campaign tail
/// leaves fewer cells than workers, the idle workers steal the straggler
/// cells' inner shards instead of spinning down.
///
/// Determinism contract (regression-tested):
///  * every cell is a pure function of its key — cells never share mutable
///    state, and every inner shard grid plus its per-shard counter-derived
///    seeds are independent of worker count and steal order, so nested
///    cell parallelism composes with the bit-reproducible runs pinned by
///    PRs 1-2;
///  * aggregation happens only over the parsed checkpoint (doubles round
///    trip through %.17g exactly), in canonical spec order — so the
///    aggregate JSON is byte-identical at any worker thread count, under
///    any cell completion order, and across kill/resume boundaries;
///  * re-launching a spec skips every cell already present in the ledger
///    (keys embed a fingerprint of all scale parameters, so changing the
///    scale never resurrects stale results).
///
/// Expensive buildDataset profiling is memoized per (benchmark, scale,
/// seed) in an on-disk blob cache (support/Serialize); cache hits are
/// bit-identical to a fresh build.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_EXP_CAMPAIGN_H
#define ALIC_EXP_CAMPAIGN_H

#include "exp/Runner.h"
#include "support/Error.h"

#include <string>
#include <vector>

namespace alic {

/// Default seeds for campaign datasets and learner runs.  The bench
/// binaries alias these (BenchCommon.h), so alic_campaign and every
/// renderer address the same ledger cells — change them only here.
inline constexpr uint64_t CampaignDatasetSeed = 0xa11cebe7;
inline constexpr uint64_t CampaignRunSeed = 0x0911fe;

/// The cross-product a campaign covers.  Defaults reproduce the paper's
/// comparison: every SPAPT benchmark, the dynamic-tree surrogate, ALC
/// scoring, one-at-a-time labelling, and the three sampling plans of
/// Figure 6 (35 observations, 1 observation, variable).
struct CampaignSpec {
  std::vector<std::string> Benchmarks; ///< empty = all eleven, Table 1 order
  std::vector<ModelKind> Models = {ModelKind::DynaTree};   ///< surrogates
  std::vector<ScorerKind> Scorers = {ScorerKind::Alc};     ///< scorers
  std::vector<unsigned> BatchSizes = {1};                  ///< picks/step
  /// Sampling plans each combo runs.  May be empty (noise-only campaigns,
  /// e.g. the Table 2 renderer).
  std::vector<SamplingPlan> Plans = {SamplingPlan::fixed(35),
                                     SamplingPlan::fixed(1),
                                     SamplingPlan::sequential(35)};
  /// Query policies each combo runs (core/QueryPolicy.h).  The default —
  /// a single Always policy — is the legacy spec shape: its cell keys and
  /// aggregate JSON carry no policy token, so ledgers and committed
  /// BENCH_campaign.json baselines from before the policy axis stay
  /// byte-identical (and Always cells are shared with policy sweeps).
  std::vector<QueryPolicyConfig> Policies = {QueryPolicyConfig()};
  /// Seeds per combo x plan; 0 = Scale.Repetitions.  Cell seeds derive as
  /// hashCombine({BaseRunSeed, rep}), matching runAveraged.
  unsigned Repetitions = 0;
  ExperimentScale Scale;            ///< size/budget preset the cells run at
  std::string ScaleName = "custom"; ///< label only (JSON "scale" field)
  uint64_t DatasetSeed = CampaignDatasetSeed; ///< dataset build seed
  uint64_t BaseRunSeed = CampaignRunSeed;     ///< base of per-cell run seeds
  /// Also run one noise-summary cell per benchmark (the Table 2
  /// measurement: variance and CI/mean spread across configurations).
  bool NoiseCells = true;

  /// Benchmarks with empty defaulted to the full suite.
  std::vector<std::string> benchmarkList() const;
  /// Policies with empty defaulted to the single Always default.
  std::vector<QueryPolicyConfig> policyList() const;
  /// True when the policy axis is the single default Always policy (the
  /// legacy spec shape — no policy tokens in keys or JSON).
  bool defaultPolicyAxis() const;
  /// Repetitions with 0 defaulted to Scale.Repetitions (floor 1).
  unsigned repetitions() const;
};

/// One independent unit of campaign work.
struct CampaignCell {
  /// A cell is either one learning run or one noise summary.
  enum class Kind {
    Run,  ///< single-seed learning run (one point of the cross-product)
    Noise ///< per-benchmark noise-spread measurement (Table 2)
  };
  Kind CellKind = Kind::Run;             ///< which kind this cell is
  std::string Benchmark;                 ///< SPAPT benchmark name
  ModelKind Model = ModelKind::DynaTree; ///< surrogate (Run cells)
  ScorerKind Scorer = ScorerKind::Alc;   ///< scorer (Run cells)
  unsigned BatchSize = 1;                ///< picks per step (Run cells)
  SamplingPlan Plan;                     ///< sampling plan (Run cells)
  /// Query policy the cell's learner runs (Always by default).
  QueryPolicyConfig Policy;
  unsigned Rep = 0; ///< repetition index (seed derives from it)

  /// Canonical ledger key, e.g.
  /// "run|atax|dynatree|alc|b1|seq:35|r0|fp=0123456789abcdef".  A
  /// non-Always query policy adds a "q=<token>" segment before the rep
  /// (Always cells keep the legacy key, so policy sweeps share them with
  /// plain campaigns).  The fingerprint hashes every scale parameter plus
  /// the dataset and run seeds, so a ledger can host cells from many
  /// scales without collisions.
  std::string key(const CampaignSpec &Spec) const;
};

/// Checkpointed result of one cell (run curves or noise summary).
struct CellResult {
  RunResult Run;                   ///< Kind::Run cells
  std::vector<double> NoiseStats;  ///< Kind::Noise cells: 9 values,
                                   ///< {var,ci35,ci5} x {min,mean,max}
};

/// Per-benchmark noise spread (Table 2 semantics).
struct NoiseSummary {
  std::string Benchmark; ///< SPAPT benchmark name
  double VarMin = 0, VarMean = 0, VarMax = 0;    ///< runtime variance spread
  double Ci35Min = 0, Ci35Mean = 0, Ci35Max = 0; ///< CI/mean at 35 samples
  double Ci5Min = 0, Ci5Mean = 0, Ci5Max = 0;    ///< CI/mean at 5 samples
};

/// Seed-averaged curves for one (benchmark, model, scorer, batch, query
/// policy) combo.
struct ComboResult {
  std::string Benchmark;                 ///< SPAPT benchmark name
  ModelKind Model = ModelKind::DynaTree; ///< surrogate of the combo
  ScorerKind Scorer = ScorerKind::Alc;   ///< scorer of the combo
  unsigned BatchSize = 1;                ///< picks per step of the combo
  /// Query policy of every cell in this combo (Always by default).
  QueryPolicyConfig Policy;
  /// One averaged RunResult per spec plan, in spec order.
  std::vector<RunResult> PlanResults;
  /// Lowest-common-error comparison (Table 1 semantics) of the first
  /// fixed plan against the first sequential plan; Speedup == 0 when the
  /// spec lacks either.
  PlanComparison Speedup;

  /// The averaged result for \p Plan, or nullptr if the spec lacks it.
  const RunResult *planResult(const CampaignSpec &Spec,
                              const SamplingPlan &Plan) const;
};

/// Deterministic aggregate of a completed campaign.
struct CampaignResult {
  std::vector<ComboResult> Combos;       ///< canonical spec order
  std::vector<NoiseSummary> Noise;       ///< benchmark order
  /// Geometric mean of all combo speedups > 0 (0 when none).
  double GeomeanSpeedup = 0.0;
};

/// Knobs of one orchestrator invocation (not part of any cell key:
/// changing them never changes results, only how they are produced).
struct CampaignOptions {
  /// Scheduler workers; 0 runs cells inline with no scheduler at all.
  /// Aggregate output is byte-identical at any value.
  unsigned Threads = 0;
  /// Cells fork their inner work (model updates, candidate scoring,
  /// batched measurement) onto the campaign scheduler, so idle workers
  /// steal inner shards at the campaign tail.  Disable to pin the old
  /// cell-granularity budget (bench_scheduler's flat baseline).  Results
  /// are bit-identical either way.
  bool NestCells = true;
  /// Non-zero: overrides the scheduler's victim-selection seed (stress
  /// tests force different steal interleavings; results never depend on
  /// it).
  uint64_t StealSeed = 0;
  /// Ledger + dataset-cache directory; created on demand.
  std::string StateDir = "alic-campaign";
  /// Stop after completing this many new cells (0 = run to completion) —
  /// deterministic mid-campaign interruption for the resume tests and CI.
  size_t MaxCells = 0;
  /// Non-zero: execute missing cells in a seeded shuffled order instead of
  /// spec order (completion-order-invariance tests).
  uint64_t ShuffleSeed = 0;
  /// Suppress per-cell progress lines on stderr.
  bool Quiet = false;

  // --- scale-out sharding (exp/ShardLease, ARCHITECTURE.md "Scale-out").
  // Sharded invocations append to a per-worker ledger
  // (cells.<worker>.jsonl) and skip nothing else: cells stay pure
  // functions of their keys, so N processes produce the same bytes one
  // process would, and mergeLedgers() proves it.

  /// Static sharding: the total worker count.  Non-zero restricts this
  /// invocation to shard ShardIndex of the canonical cell list, split
  /// into ShardCount contiguous near-equal ranges (every worker computes
  /// the same split locally — no coordination).
  unsigned ShardCount = 0;
  /// Static sharding: this worker's shard in [0, ShardCount).
  unsigned ShardIndex = 0;
  /// Dynamic sharding: claim cell ranges at runtime through lease files
  /// in leaseDir(), stealing ranges whose owner died or wedged (stopped
  /// heartbeating for LeaseTtlMs).  The invocation returns when every
  /// spec cell is in the union of worker ledgers, whoever ran it.
  bool LeaseClaim = false;
  /// Lease expiry: a lease untouched for this long may be stolen.
  uint64_t LeaseTtlMs = 2000;
  /// Lease renewal cadence; 0 derives LeaseTtlMs / 4.
  uint64_t LeaseHeartbeatMs = 0;
  /// Target cells per claimable range in lease mode (floor 1).
  unsigned LeaseRangeCells = 16;
  /// Per-worker ledger tag: appends go to cells.<WorkerId>.jsonl.  Empty
  /// defaults to the canonical ledger (unsharded), a shard<i>of<N> tag
  /// (static sharding), or w<pid> (lease claiming).
  std::string WorkerId;

  /// True when this invocation runs as one worker of a sharded campaign.
  bool sharded() const { return ShardCount > 0 || LeaseClaim; }

  /// The ledger this invocation appends to: the canonical ledger, or the
  /// per-worker ledger when sharded (see WorkerId).
  std::string ledgerPath() const {
    std::string Tag = WorkerId;
    if (Tag.empty() && ShardCount)
      Tag = "shard" + std::to_string(ShardIndex) + "of" +
            std::to_string(ShardCount);
    return Tag.empty() ? canonicalLedgerPath()
                       : StateDir + "/cells." + Tag + ".jsonl";
  }
  /// The canonical (merged / single-process) ledger path under StateDir.
  std::string canonicalLedgerPath() const { return StateDir + "/cells.jsonl"; }
  /// The lease-file directory under StateDir (lease mode).
  std::string leaseDir() const { return StateDir + "/leases"; }
  /// The dataset blob cache directory under StateDir.
  std::string datasetCacheDir() const { return StateDir + "/datasets"; }
};

/// What one runCampaignCells invocation did.
struct CampaignProgress {
  size_t TotalCells = 0;   ///< cells the spec expands to
  /// Cells this invocation is responsible for: TotalCells unsharded, the
  /// static shard's slice under --shard (lease workers own whatever they
  /// claim, so there it equals TotalCells too).
  size_t ShardCells = 0;
  size_t AlreadyDone = 0;  ///< of ShardCells, found complete in the ledger(s)
  size_t NewlyRun = 0;     ///< computed and durably appended by this invocation
  /// Unsharded / lease mode: every spec cell is now in the (union of)
  /// ledger(s).  Static shard mode: every cell of *this shard's slice*.
  bool Complete = false;
  /// Keys of cells whose ledger append failed even after the bounded
  /// retry/backoff (e.g. the disk filled up).  The campaign *finishes the
  /// remaining cells* instead of aborting; quarantined cells are simply
  /// absent from the ledger, so re-launching the same spec retries
  /// exactly those and the final aggregate is byte-identical to an
  /// uninterrupted run.  Non-empty implies !Complete.
  std::vector<std::string> QuarantinedCells;
  // Scheduler observability (never part of any result).
  unsigned WorkersUsed = 0;  ///< scheduler worker threads (0 = inline)
  uint64_t TasksExecuted = 0; ///< cells + stolen/forked inner shards
  uint64_t Steals = 0;       ///< tasks taken from another worker's deque
};

/// Expands \p Spec into its cells, in canonical (deterministic) order:
/// benchmarks x models x scorers x batches x plans x policies x reps,
/// then noise.
std::vector<CampaignCell> expandCells(const CampaignSpec &Spec);

/// Runs every spec cell missing from the ledger, sharding across
/// Options.Threads workers; each completed cell is appended to the ledger
/// crash-safely (single flushed+synced write).  Honors MaxCells.
///
/// Ledger I/O failures *degrade* instead of aborting: a failed append is
/// retried with bounded exponential backoff (fault-injection sites
/// `ledger.append` / `ledger.sync`), and a cell whose append still fails
/// is quarantined (Progress.QuarantinedCells) while the rest of the
/// campaign completes.  A state dir or ledger that cannot be opened at
/// all quarantines every missing cell without computing any.
///
/// Multi-process modes (see CampaignOptions): with ShardCount set, only
/// this worker's static slice of the canonical cell list runs; with
/// LeaseClaim set, the worker claims cell ranges dynamically through
/// exp/ShardLease and returns once *every* spec cell is present in the
/// union of worker ledgers.  Either way appends go to the per-worker
/// ledger and mergeLedgers() folds the shards back into the canonical
/// one.
CampaignProgress runCampaignCells(const CampaignSpec &Spec,
                                  const CampaignOptions &Options);

/// What one mergeLedgers invocation saw and did.
struct LedgerMergeReport {
  size_t InputFiles = 0;     ///< cells*.jsonl ledgers read under StateDir
  size_t Lines = 0;          ///< parsed cell lines across all inputs
  size_t UniqueCells = 0;    ///< distinct cell keys in the union
  size_t DuplicateCells = 0; ///< byte-identical duplicate lines dropped
  size_t ForeignCells = 0;   ///< union cells outside this spec (other
                             ///< scales sharing the ledger; kept, after
                             ///< the spec's cells, in key order)
  size_t TornTails = 0;      ///< unterminated trailing lines sealed off
  size_t SkippedGarbage = 0; ///< complete-but-unparsable lines skipped
                             ///< (sealed crash remnants)
  /// Cell keys that appear in two inputs with *different* bytes.  Cells
  /// are deterministic, so this never happens in a healthy fleet — it is
  /// a corruption signal (mixed-up state dirs, bit rot, a tampered
  /// shard).  Non-empty quarantines the merge: the canonical ledger is
  /// not written and the CLI exits 74, the PR 7 quarantine discipline.
  std::vector<std::string> ConflictKeys; ///< sorted, deduplicated
  bool Wrote = false; ///< the canonical ledger was atomically replaced
};

/// Unions every shard ledger (cells*.jsonl, the canonical ledger
/// included — merging is idempotent) under Options.StateDir into the
/// canonical ledger, written atomically and durably (tmp + fsync + rename
/// + dir fsync).  Per input, an unterminated trailing line is sealed off
/// (dropped) and unparsable complete lines are skipped, exactly like
/// ledger loading.  Output order is canonical: the spec's cells in
/// expandCells order first (which makes the merged ledger byte-identical
/// to one produced by a single inline process), then any foreign cells in
/// lexicographic key order.  Duplicate keys are tolerated only when their
/// lines are byte-identical; conflicting duplicates land in
/// Report.ConflictKeys and suppress the write (see LedgerMergeReport).
/// The returned Status is a *read/write I/O* verdict — a conflicted merge
/// returns ok() with ConflictKeys set.  Fault-injection sites: merge.read
/// (per-input open/read), merge.append (the canonical write).
Status mergeLedgers(const CampaignSpec &Spec, const CampaignOptions &Options,
                    LedgerMergeReport &Report);

/// Aggregates a campaign from the ledger alone (never from in-memory
/// results — the single code path that makes resumed and uninterrupted
/// runs byte-identical).  Returns false when any spec cell is missing.
bool aggregateCampaign(const CampaignSpec &Spec,
                       const CampaignOptions &Options, CampaignResult &Out);

/// runCampaignCells + aggregateCampaign.  Returns false when interrupted
/// by MaxCells before completion.
bool runCampaign(const CampaignSpec &Spec, const CampaignOptions &Options,
                 CampaignResult &Out);

/// Renders the canonical BENCH_campaign.json document: per-combo
/// lowest-common-error speedups, final RMSEs, decimated curve summaries,
/// per-benchmark noise spreads, and the geo-mean speedup.  Contains no
/// timestamps or host details; equal results render to equal bytes.
std::string campaignJson(const CampaignSpec &Spec,
                         const CampaignResult &Result);

/// Canonical lower-case tokens used in cell keys and JSON.
const char *modelToken(ModelKind Kind);
const char *scorerToken(ScorerKind Kind);
std::string planToken(const SamplingPlan &Plan);

/// The default plan list at scale \p S — the three Figure 6 sampling
/// plans with the scale's sequential cap.  The alic_campaign CLI and the
/// bench renderers both build their specs from this (identical plans =>
/// identical cell keys => shared ledger state); never inline a copy.
std::vector<SamplingPlan> defaultCampaignPlans(const ExperimentScale &S);

/// The default state directory for one scale: "alic-campaign-<scale>".
/// Shared by the CLI default and the renderers' ALIC_CAMPAIGN_DIR
/// fallback for the same reason.
std::string defaultCampaignStateDir(const std::string &ScaleName);

} // namespace alic

#endif // ALIC_EXP_CAMPAIGN_H

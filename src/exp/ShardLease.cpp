//===- exp/ShardLease.cpp -------------------------------------*- C++ -*-===//

#include "exp/ShardLease.h"

#include "support/FailPoint.h"
#include "support/Format.h"
#include "support/Serialize.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>

#include <fcntl.h>
#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

using namespace alic;

//===----------------------------------------------------------------------===//
// Range splitting
//===----------------------------------------------------------------------===//

std::vector<ShardRange> alic::splitRanges(size_t NumItems, size_t NumRanges) {
  if (!NumRanges)
    NumRanges = 1;
  // Always exactly NumRanges entries (trailing ones may be empty): static
  // --shard i/N needs range i to exist even when N exceeds the cell count.
  std::vector<ShardRange> Ranges;
  Ranges.reserve(NumRanges);
  size_t Base = NumItems / NumRanges, Extra = NumItems % NumRanges;
  size_t Begin = 0;
  for (size_t I = 0; I != NumRanges; ++I) {
    size_t Length = Base + (I < Extra ? 1 : 0);
    Ranges.push_back({I, Begin, Begin + Length});
    Begin += Length;
  }
  return Ranges;
}

std::vector<ShardRange> alic::splitRangesByCells(size_t NumItems,
                                                size_t TargetCells) {
  if (!NumItems)
    return {};
  if (!TargetCells)
    TargetCells = 1;
  return splitRanges(NumItems, (NumItems + TargetCells - 1) / TargetCells);
}

//===----------------------------------------------------------------------===//
// Lease files
//===----------------------------------------------------------------------===//

namespace {

/// Milliseconds of wall clock since \p St's mtime (0 when in the future —
/// another worker's clock may run ahead; a negative age is "fresh").
uint64_t mtimeAgeMs(const struct stat &St) {
  timespec Now{};
  ::clock_gettime(CLOCK_REALTIME, &Now);
  int64_t Age = (int64_t(Now.tv_sec) - int64_t(St.st_mtim.tv_sec)) * 1000 +
                (int64_t(Now.tv_nsec) - int64_t(St.st_mtim.tv_nsec)) / 1000000;
  return Age > 0 ? uint64_t(Age) : 0;
}

/// Owner tokens become part of steal-remnant filenames.
std::string sanitizeForFilename(const std::string &Token) {
  std::string Out = Token;
  for (char &C : Out)
    if (C == '/' || C == '\0' || C == '\n')
      C = '_';
  return Out;
}

/// True when \p Fd still is what \p Path names — i.e. nobody renamed or
/// unlinked our lease file out from under us.
bool ownsPath(int Fd, const std::string &Path) {
  struct stat ByPath, ByFd;
  return ::stat(Path.c_str(), &ByPath) == 0 && ::fstat(Fd, &ByFd) == 0 &&
         ByPath.st_dev == ByFd.st_dev && ByPath.st_ino == ByFd.st_ino;
}

} // namespace

RangeLease &RangeLease::operator=(RangeLease &&Other) noexcept {
  if (this != &Other) {
    release();
    Fd = Other.Fd;
    Path = std::move(Other.Path);
    Dev = Other.Dev;
    Ino = Other.Ino;
    Other.Fd = -1;
    Other.Path.clear();
  }
  return *this;
}

bool RangeLease::renew() {
  if (Fd < 0)
    return false;
  FailOutcome F = ALIC_FAILPOINT("lease.renew");
  bool Renewed = !F.Fire && ::futimens(Fd, nullptr) == 0;
  if (!Renewed || !ownsPath(Fd, Path)) {
    // Stolen (or unrenewable, which expires into stolen): the range is no
    // longer exclusively ours.  Never unlink — the path may be the
    // thief's fresh lease now.
    ::close(Fd);
    Fd = -1;
    Path.clear();
    return false;
  }
  return true;
}

void RangeLease::release() {
  if (Fd < 0)
    return;
  // Unlink only while still the owner.  The stat/unlink window can race a
  // steal and remove the thief's fresh lease — the thief's next renew
  // notices and abandons, costing duplicated work, never correctness
  // (cells are deterministic and merge dedupes identical lines).
  if (ownsPath(Fd, Path)) {
    ::unlink(Path.c_str());
    (void)syncParentDir(Path); // best-effort: crash-recovery latency only
  }
  ::close(Fd);
  Fd = -1;
  Path.clear();
}

void RangeLease::abandon() {
  if (Fd < 0)
    return;
  ::close(Fd);
  Fd = -1;
  Path.clear();
}

std::string ShardLease::leasePath(size_t RangeIndex) const {
  return Opts.Dir + "/range-" + std::to_string(RangeIndex) + ".lease";
}

Status ShardLease::init() const {
  std::error_code Ec;
  bool Created = std::filesystem::create_directories(Opts.Dir, Ec);
  if (Ec)
    return Status::failure("create lease dir " + Opts.Dir, Ec.value());
  if (Created)
    (void)syncParentDir(Opts.Dir); // best-effort, the ledger's discipline
  // Sweep steal remnants (rename-away files whose stealer crashed before
  // unlinking them) once they are unambiguously stale.  Pure litter — the
  // lease path itself is free the moment the rename lands.
  for (const auto &Entry : std::filesystem::directory_iterator(Opts.Dir, Ec)) {
    std::string Name = Entry.path().filename().string();
    if (Name.find(".steal-") == std::string::npos)
      continue;
    struct stat St;
    if (::stat(Entry.path().c_str(), &St) == 0 && mtimeAgeMs(St) > Opts.TtlMs)
      ::unlink(Entry.path().c_str());
  }
  return Status::success();
}

ShardLease::Claim ShardLease::tryClaim(size_t RangeIndex,
                                       RangeLease &Out) const {
  std::string Path = leasePath(RangeIndex);

  FailOutcome FA = ALIC_FAILPOINT("lease.acquire");
  int Fd = -1;
  if (FA.Fire)
    errno = FA.Errno;
  else
    Fd = ::open(Path.c_str(), O_CREAT | O_EXCL | O_WRONLY | O_CLOEXEC, 0644);

  if (Fd < 0 && errno == EEXIST) {
    // Held by someone.  Alive, or expired and stealable?
    struct stat St;
    if (::stat(Path.c_str(), &St) != 0)
      return Claim::Held; // raced a release/steal; rescan later
    if (mtimeAgeMs(St) <= Opts.TtlMs)
      return Claim::Held;

    // Expired: steal by renaming the stale file *away*.  rename() of a
    // source another stealer already moved fails with ENOENT, so exactly
    // one concurrent stealer wins the handoff.
    FailOutcome FS = ALIC_FAILPOINT("lease.steal");
    if (FS.Fire) {
      errno = FS.Errno;
      return Claim::Error;
    }
    std::string Moved =
        Path + ".steal-" + sanitizeForFilename(Opts.OwnerToken);
    if (::rename(Path.c_str(), Moved.c_str()) != 0)
      return errno == ENOENT ? Claim::Held : Claim::Error;
    ::unlink(Moved.c_str());
    (void)syncParentDir(Path); // revocation durable before re-claiming
    // The path is free now — but a third worker may O_EXCL it first.
    Fd = ::open(Path.c_str(), O_CREAT | O_EXCL | O_WRONLY | O_CLOEXEC, 0644);
    if (Fd < 0)
      return errno == EEXIST ? Claim::Held : Claim::Error;
  } else if (Fd < 0) {
    return Claim::Error;
  }

  // Stamp ownership and make the claim durable: token + file fsync +
  // directory fsync, the writeFileDurable discipline.
  std::string Token = Opts.OwnerToken + "\n";
  size_t Done = 0;
  while (Done < Token.size()) {
    ssize_t N = ::write(Fd, Token.data() + Done, Token.size() - Done);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      break;
    Done += size_t(N);
  }
  if (Done != Token.size() || ::fsync(Fd) != 0) {
    ::unlink(Path.c_str());
    ::close(Fd);
    return Claim::Error;
  }
  (void)syncParentDir(Path); // best-effort: crash-recovery latency only

  struct stat St{};
  ::fstat(Fd, &St);
  Out.release();
  Out.Fd = Fd;
  Out.Path = Path;
  Out.Dev = uint64_t(St.st_dev);
  Out.Ino = uint64_t(St.st_ino);
  return Claim::Acquired;
}

//===----------------------------------------------------------------------===//
// Heartbeat
//===----------------------------------------------------------------------===//

LeaseHeartbeat::LeaseHeartbeat(RangeLease &Lease, const LeaseOptions &Opts)
    : Lease(Lease) {
  if (!Lease.held()) {
    Stopped = true;
    return;
  }
  uint64_t CadenceMs = Opts.heartbeatMs();
  Thread = std::thread([this, CadenceMs] {
    std::unique_lock<std::mutex> Lock(Mutex);
    while (!Stopped) {
      // Monotonic-clock cadence (wait_for uses steady_clock): wall-clock
      // jumps never starve or flood renewals.
      if (Cv.wait_for(Lock, std::chrono::milliseconds(CadenceMs),
                      [this] { return Stopped; }))
        return;
      if (!this->Lease.renew()) {
        Lost.store(true, std::memory_order_release);
        return;
      }
    }
  });
}

void LeaseHeartbeat::stop() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Stopped && !Thread.joinable())
      return;
    Stopped = true;
  }
  Cv.notify_all();
  if (Thread.joinable())
    Thread.join();
}

//===----------------------------------------------------------------------===//
// Owner tokens
//===----------------------------------------------------------------------===//

std::string alic::makeLeaseOwnerToken(const std::string &Hint) {
  timespec Ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &Ts);
  uint64_t Nonce = uint64_t(Ts.tv_sec) * 1000000000ull + uint64_t(Ts.tv_nsec);
  return formatString("%s-%d-%llx", Hint.empty() ? "worker" : Hint.c_str(),
                      int(::getpid()), (unsigned long long)Nonce);
}

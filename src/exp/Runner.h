//===- exp/Runner.h - Learning-curve experiment runner --------*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives ActiveLearner over a Dataset and records the evolution of the
/// test-set RMSE (equation (1) of the paper) against cumulative virtual
/// profiling cost — the curves of Figure 6 — plus the lowest-common-error
/// speedup analysis behind Table 1 and Figure 5.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_EXP_RUNNER_H
#define ALIC_EXP_RUNNER_H

#include "core/ActiveLearner.h"
#include "exp/Dataset.h"
#include "exp/Scale.h"

#include <string>
#include <vector>

namespace alic {

/// Which surrogate drives the learner.
enum class ModelKind { DynaTree, Gp };

/// One point of a learning curve.
struct CurvePoint {
  size_t Iteration = 0;
  double CostSeconds = 0.0;
  double Rmse = 0.0;
};

/// A (possibly seed-averaged) learning curve.
struct RunResult {
  std::vector<CurvePoint> Curve;
  LearnerStats Stats;
  double FinalRmse = 0.0;
  double TotalCostSeconds = 0.0;
};

/// Everything a learning run needs beyond the benchmark, dataset, plan,
/// and scale: the single options struct experiment drivers (benches, the
/// campaign orchestrator) pass around.
struct RunOptions {
  /// Learner policy knobs — scorer and batch size live here and nowhere
  /// else.  The scale-derived size fields (ninit, nmax, nc, ...) and the
  /// per-run seed are filled in by runLearning via ExperimentScale::
  /// applyTo, so no caller copies them by hand.
  ActiveLearnerConfig Learner;
  ModelKind Model = ModelKind::DynaTree;
  /// Multiplies every drawn measurement's noise (future-work experiment);
  /// 1.0 = the benchmark's calibrated noise.
  double NoiseScale = 1.0;
  /// Shards candidate scoring, batched measurement, and model-internal
  /// work across this scheduler when non-null; curves are bit-identical
  /// with or without it.  The run may itself execute inside a task of
  /// the same scheduler (nested parallelism — the campaign path).
  Scheduler *Workers = nullptr;
};

/// Runs one learning experiment (single seed).
RunResult runLearning(const SpaptBenchmark &B, const Dataset &D,
                      SamplingPlan Plan, const ExperimentScale &S,
                      uint64_t Seed, const RunOptions &Options = RunOptions());

/// Runs \p S.Repetitions seeds and averages the curves pointwise.
RunResult runAveraged(const SpaptBenchmark &B, const Dataset &D,
                      SamplingPlan Plan, const ExperimentScale &S,
                      uint64_t BaseSeed,
                      const RunOptions &Options = RunOptions());

/// Pointwise average of single-seed runs sharing one iteration grid
/// (curves clip to the shortest run; counters average integrally) — the
/// aggregation step of runAveraged, exposed so the campaign orchestrator
/// reproduces it exactly from checkpointed per-seed cells.
RunResult averageRuns(const std::vector<RunResult> &Runs);

/// Lowest-common-error comparison of two curves (Table 1 semantics): the
/// error level is the worst of the two curves' best errors, and each cost
/// is the first cumulative cost at which the curve reaches that level.
struct PlanComparison {
  double LowestCommonRmse = 0.0;
  double BaselineCostSeconds = 0.0;
  double OursCostSeconds = 0.0;
  double Speedup = 0.0;
};

PlanComparison compareCurves(const RunResult &Baseline, const RunResult &Ours);

} // namespace alic

#endif // ALIC_EXP_RUNNER_H

//===- exp/Runner.h - Learning-curve experiment runner --------*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives ActiveLearner over a Dataset and records the evolution of the
/// test-set RMSE (equation (1) of the paper) against cumulative virtual
/// profiling cost — the curves of Figure 6 — plus the lowest-common-error
/// speedup analysis behind Table 1 and Figure 5.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_EXP_RUNNER_H
#define ALIC_EXP_RUNNER_H

#include "core/ActiveLearner.h"
#include "exp/Dataset.h"
#include "exp/Scale.h"

#include <memory>
#include <string>
#include <vector>

namespace alic {

/// Which surrogate drives the learner.
enum class ModelKind {
  DynaTree, ///< the paper's dynamic-tree particle filter
  Gp,       ///< exact incremental Gaussian process comparator
  GpSor,    ///< subset-of-regressors GP (m inducing points, O(n m^2) fit)
};

/// Builds an unfitted surrogate of \p Kind sized by \p S (DynaTree
/// particle count) and seeded deterministically from \p Seed — the one
/// model-construction path shared by runLearning, the campaign
/// orchestrator, and serve sessions, so a session and a batch run with
/// the same (kind, scale, seed) hold bit-identical models.  The caller
/// owns the result.
std::unique_ptr<SurrogateModel> makeSurrogateModel(ModelKind Kind,
                                                   const ExperimentScale &S,
                                                   uint64_t Seed);

/// One point of a learning curve.
struct CurvePoint {
  size_t Iteration = 0;    ///< learner iteration the point was taken at
  double CostSeconds = 0.0; ///< cumulative virtual profiling cost so far
  double Rmse = 0.0;        ///< test-set RMSE at that cost
};

/// A (possibly seed-averaged) learning curve.
struct RunResult {
  std::vector<CurvePoint> Curve; ///< RMSE-vs-cost samples, cost-ascending
  LearnerStats Stats;            ///< final learner counters
  double FinalRmse = 0.0;        ///< RMSE after the last iteration
  double TotalCostSeconds = 0.0; ///< total virtual profiling cost charged
};

/// Everything a learning run needs beyond the benchmark, dataset, plan,
/// and scale: the single options struct experiment drivers (benches, the
/// campaign orchestrator) pass around.
struct RunOptions {
  /// Learner policy knobs — scorer and batch size live here and nowhere
  /// else.  The scale-derived size fields (ninit, nmax, nc, ...) and the
  /// per-run seed are filled in by runLearning via ExperimentScale::
  /// applyTo, so no caller copies them by hand.
  ActiveLearnerConfig Learner;
  ModelKind Model = ModelKind::DynaTree;
  /// Multiplies every drawn measurement's noise (future-work experiment);
  /// 1.0 = the benchmark's calibrated noise.
  double NoiseScale = 1.0;
  /// Shards candidate scoring, batched measurement, and model-internal
  /// work across this scheduler when non-null; curves are bit-identical
  /// with or without it.  The run may itself execute inside a task of
  /// the same scheduler (nested parallelism — the campaign path).
  Scheduler *Workers = nullptr;
};

/// Runs one learning experiment (single seed).
RunResult runLearning(const SpaptBenchmark &B, const Dataset &D,
                      SamplingPlan Plan, const ExperimentScale &S,
                      uint64_t Seed, const RunOptions &Options = RunOptions());

/// Runs \p S.Repetitions seeds and averages the curves pointwise.
RunResult runAveraged(const SpaptBenchmark &B, const Dataset &D,
                      SamplingPlan Plan, const ExperimentScale &S,
                      uint64_t BaseSeed,
                      const RunOptions &Options = RunOptions());

/// Pointwise average of single-seed runs sharing one iteration grid
/// (curves clip to the shortest run; counters average integrally) — the
/// aggregation step of runAveraged, exposed so the campaign orchestrator
/// reproduces it exactly from checkpointed per-seed cells.
RunResult averageRuns(const std::vector<RunResult> &Runs);

/// Lowest-common-error comparison of two curves (Table 1 semantics): the
/// error level is the worst of the two curves' best errors, and each cost
/// is the first cumulative cost at which the curve reaches that level.
struct PlanComparison {
  double LowestCommonRmse = 0.0;     ///< worst of the two curves' best RMSEs
  double BaselineCostSeconds = 0.0;  ///< baseline's cost to reach that level
  double OursCostSeconds = 0.0;      ///< our plan's cost to reach it
  double Speedup = 0.0;              ///< baseline cost / our cost
};

/// Compares two curves at their lowest common error (see PlanComparison).
PlanComparison compareCurves(const RunResult &Baseline, const RunResult &Ours);

} // namespace alic

#endif // ALIC_EXP_RUNNER_H

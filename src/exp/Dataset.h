//===- exp/Dataset.h - Per-benchmark training/test datasets ---*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 4.5 of the paper: profile NumConfigs distinct random
/// configurations; each test configuration's label is its *observed* mean
/// over 35 executions (not the noise-free model mean — exactly as a real
/// harness would measure it); split into a training pool and a held-out
/// test set; z-score the features.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_EXP_DATASET_H
#define ALIC_EXP_DATASET_H

#include "spapt/Benchmark.h"
#include "tunable/Normalizer.h"

#include <cstdint>
#include <string>
#include <vector>

namespace alic {

/// One benchmark's sampled dataset.
struct Dataset {
  std::vector<Config> TrainPool;               ///< configurations for AL
  std::vector<Config> TestConfigs;             ///< held-out configurations
  std::vector<std::vector<double>> TestFeatures; ///< normalized
  std::vector<double> TestMeans;               ///< observed mean runtimes
  Normalizer Norm;                             ///< fitted on all configs
};

/// Builds the dataset for \p B.
///
/// \param NumConfigs distinct configurations to profile.
/// \param TrainFraction fraction marked available for training.
/// \param MeanObservations executions averaged into each test label.
/// \param Seed controls sampling and the virtual measurement streams.
Dataset buildDataset(const SpaptBenchmark &B, size_t NumConfigs,
                     double TrainFraction, unsigned MeanObservations,
                     uint64_t Seed);

/// buildDataset memoized in a keyed on-disk cache.  The cache key covers
/// the benchmark name, every profiling parameter, the seed, and the blob
/// format version; a hit deserializes a dataset that is bit-identical to
/// a fresh buildDataset, a miss (or a stale/corrupt blob) rebuilds and
/// rewrites the entry atomically.  \p CacheDir is created on demand; an
/// empty \p CacheDir disables caching entirely.
Dataset loadOrBuildDataset(const SpaptBenchmark &B, size_t NumConfigs,
                           double TrainFraction, unsigned MeanObservations,
                           uint64_t Seed, const std::string &CacheDir);

} // namespace alic

#endif // ALIC_EXP_DATASET_H

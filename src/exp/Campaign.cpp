//===- exp/Campaign.cpp ---------------------------------------*- C++ -*-===//

#include "exp/Campaign.h"

#include "exp/Dataset.h"
#include "exp/ShardLease.h"
#include "measure/Profiler.h"
#include "spapt/Suite.h"
#include "stats/Metrics.h"
#include "stats/OnlineStats.h"
#include "support/Backoff.h"
#include "support/Error.h"
#include "support/FailPoint.h"
#include "support/Format.h"
#include "support/Json.h"
#include "support/Scheduler.h"
#include "support/Serialize.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <thread>
#include <unistd.h>
#include <unordered_map>
#include <unordered_set>

using namespace alic;

//===----------------------------------------------------------------------===//
// Tokens, keys, fingerprints
//===----------------------------------------------------------------------===//

const char *alic::modelToken(ModelKind Kind) {
  switch (Kind) {
  case ModelKind::DynaTree:
    return "dynatree";
  case ModelKind::Gp:
    return "gp";
  case ModelKind::GpSor:
    return "gp_sor";
  }
  alic_unreachable("unknown model kind");
}

const char *alic::scorerToken(ScorerKind Kind) {
  switch (Kind) {
  case ScorerKind::Alc:
    return "alc";
  case ScorerKind::Alm:
    return "alm";
  case ScorerKind::Random:
    return "random";
  }
  alic_unreachable("unknown scorer kind");
}

std::string alic::planToken(const SamplingPlan &Plan) {
  if (Plan.PlanKind == SamplingPlan::Kind::Fixed)
    return "fixed:" + std::to_string(Plan.FixedObservations);
  return "seq:" + std::to_string(Plan.MaxObservationsPerExample);
}

std::vector<SamplingPlan> alic::defaultCampaignPlans(const ExperimentScale &S) {
  return {SamplingPlan::fixed(35), SamplingPlan::fixed(1),
          SamplingPlan::sequential(S.ObservationCap)};
}

std::string alic::defaultCampaignStateDir(const std::string &ScaleName) {
  return "alic-campaign-" + ScaleName;
}

std::vector<std::string> CampaignSpec::benchmarkList() const {
  return Benchmarks.empty() ? spaptBenchmarkNames() : Benchmarks;
}

std::vector<QueryPolicyConfig> CampaignSpec::policyList() const {
  return Policies.empty() ? std::vector<QueryPolicyConfig>{QueryPolicyConfig()}
                          : Policies;
}

bool CampaignSpec::defaultPolicyAxis() const {
  std::vector<QueryPolicyConfig> List = policyList();
  return List.size() == 1 && List[0].Kind == QueryPolicyKind::Always;
}

unsigned CampaignSpec::repetitions() const {
  unsigned Reps = Repetitions ? Repetitions : Scale.Repetitions;
  return Reps ? Reps : 1;
}

namespace {

/// Hashes every parameter a cell's result depends on besides the cell
/// coordinates themselves, so one ledger can host many scales.
uint64_t scaleFingerprint(const CampaignSpec &Spec) {
  const ExperimentScale &S = Spec.Scale;
  uint64_t FractionBits;
  std::memcpy(&FractionBits, &S.TrainFraction, sizeof(FractionBits));
  return hashCombine(
      {uint64_t(S.NumConfigs), FractionBits, uint64_t(S.MeanObservations),
       uint64_t(S.NumInitial), uint64_t(S.InitObservations),
       uint64_t(S.MaxTrainingExamples), uint64_t(S.CandidatesPerIteration),
       uint64_t(S.ReferenceSetSize), uint64_t(S.Particles),
       uint64_t(S.EvalEvery), uint64_t(S.TestSubset),
       uint64_t(S.ObservationCap), Spec.DatasetSeed, Spec.BaseRunSeed});
}

} // namespace

std::string CampaignCell::key(const CampaignSpec &Spec) const {
  std::string Fp =
      formatString("fp=%016llx", (unsigned long long)scaleFingerprint(Spec));
  if (CellKind == Kind::Noise)
    return "noise|" + Benchmark + "|" + Fp;
  // Always cells keep the pre-policy key so ledgers written before the
  // policy axis stay valid and policy sweeps share their baseline cells.
  std::string PolicySegment = Policy.Kind == QueryPolicyKind::Always
                                  ? ""
                                  : "q=" + queryPolicyToken(Policy) + "|";
  return "run|" + Benchmark + "|" + modelToken(Model) + "|" +
         scorerToken(Scorer) + "|b" + std::to_string(BatchSize) + "|" +
         planToken(Plan) + "|" + PolicySegment + "r" + std::to_string(Rep) +
         "|" + Fp;
}

const RunResult *ComboResult::planResult(const CampaignSpec &Spec,
                                         const SamplingPlan &Plan) const {
  std::string Token = planToken(Plan);
  for (size_t I = 0; I != Spec.Plans.size() && I != PlanResults.size(); ++I)
    if (planToken(Spec.Plans[I]) == Token)
      return &PlanResults[I];
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Cell expansion
//===----------------------------------------------------------------------===//

std::vector<CampaignCell> alic::expandCells(const CampaignSpec &Spec) {
  std::vector<CampaignCell> Cells;
  unsigned Reps = Spec.repetitions();
  std::vector<QueryPolicyConfig> Policies = Spec.policyList();
  for (const std::string &Benchmark : Spec.benchmarkList()) {
    for (ModelKind Model : Spec.Models)
      for (ScorerKind Scorer : Spec.Scorers)
        for (unsigned Batch : Spec.BatchSizes)
          for (const SamplingPlan &Plan : Spec.Plans)
            for (const QueryPolicyConfig &Policy : Policies)
              for (unsigned Rep = 0; Rep != Reps; ++Rep) {
                CampaignCell C;
                C.CellKind = CampaignCell::Kind::Run;
                C.Benchmark = Benchmark;
                C.Model = Model;
                C.Scorer = Scorer;
                C.BatchSize = Batch;
                C.Plan = Plan;
                C.Policy = Policy;
                C.Rep = Rep;
                Cells.push_back(std::move(C));
              }
  }
  if (Spec.NoiseCells)
    for (const std::string &Benchmark : Spec.benchmarkList()) {
      CampaignCell C;
      C.CellKind = CampaignCell::Kind::Noise;
      C.Benchmark = Benchmark;
      Cells.push_back(std::move(C));
    }
  return Cells;
}

//===----------------------------------------------------------------------===//
// Ledger serialization (JSON machinery lives in support/Json)
//===----------------------------------------------------------------------===//

namespace {

std::string cellLine(const std::string &Key, CampaignCell::Kind Kind,
                     const CellResult &Result) {
  std::string Line = "{\"cell\":\"" + Key + "\"";
  if (Kind == CampaignCell::Kind::Noise) {
    Line += ",\"noise\":[";
    for (size_t I = 0; I != Result.NoiseStats.size(); ++I) {
      if (I)
        Line += ",";
      Line += formatJsonDouble(Result.NoiseStats[I]);
    }
    Line += "]}";
    return Line + "\n";
  }
  const RunResult &R = Result.Run;
  Line += formatString(",\"iterations\":%zu,\"distinct\":%zu,"
                       "\"revisits\":%zu,\"observations\":%zu",
                       R.Stats.Iterations, R.Stats.DistinctExamples,
                       R.Stats.Revisits, R.Stats.Observations);
  // Only policy cells skip; omitting the zero keeps pre-policy ledger
  // lines (and Always cells' fresh lines) byte-identical.
  if (R.Stats.Skips)
    Line += formatString(",\"skips\":%zu", R.Stats.Skips);
  Line += ",\"final_rmse\":" + formatJsonDouble(R.FinalRmse);
  Line += ",\"total_cost_seconds\":" + formatJsonDouble(R.TotalCostSeconds);
  Line += ",\"curve\":[";
  for (size_t I = 0; I != R.Curve.size(); ++I) {
    const CurvePoint &Point = R.Curve[I];
    if (I)
      Line += ",";
    Line += formatString("[%zu,", Point.Iteration);
    Line += formatJsonDouble(Point.CostSeconds) + ",";
    Line += formatJsonDouble(Point.Rmse) + "]";
  }
  Line += "]}";
  return Line + "\n";
}

bool parseCellLine(const std::string &Line, std::string &Key,
                   CellResult &Result) {
  JsonValue Root;
  if (!parseJson(Line.c_str(), Root) || Root.K != JsonValue::Kind::Object)
    return false;
  const JsonValue *Cell = Root.field("cell");
  if (!Cell || Cell->K != JsonValue::Kind::String)
    return false;
  Key = Cell->Str;

  if (const JsonValue *Noise = Root.field("noise")) {
    if (Noise->K != JsonValue::Kind::Array || Noise->Items.size() != 9)
      return false;
    Result.NoiseStats.clear();
    for (const JsonValue &Item : Noise->Items) {
      if (Item.K != JsonValue::Kind::Number)
        return false;
      Result.NoiseStats.push_back(Item.Number);
    }
    return true;
  }

  double Iterations, Distinct, Revisits, Observations;
  RunResult &R = Result.Run;
  if (!jsonNumberField(Root, "iterations", Iterations) ||
      !jsonNumberField(Root, "distinct", Distinct) ||
      !jsonNumberField(Root, "revisits", Revisits) ||
      !jsonNumberField(Root, "observations", Observations) ||
      !jsonNumberField(Root, "final_rmse", R.FinalRmse) ||
      !jsonNumberField(Root, "total_cost_seconds", R.TotalCostSeconds))
    return false;
  R.Stats.Iterations = size_t(Iterations);
  R.Stats.DistinctExamples = size_t(Distinct);
  R.Stats.Revisits = size_t(Revisits);
  R.Stats.Observations = size_t(Observations);
  double Skips = 0; // optional: absent in pre-policy ledgers and 0-skip cells
  if (Root.field("skips") && !jsonNumberField(Root, "skips", Skips))
    return false;
  R.Stats.Skips = size_t(Skips);
  const JsonValue *Curve = Root.field("curve");
  if (!Curve || Curve->K != JsonValue::Kind::Array || Curve->Items.empty())
    return false;
  R.Curve.clear();
  for (const JsonValue &Item : Curve->Items) {
    if (Item.K != JsonValue::Kind::Array || Item.Items.size() != 3)
      return false;
    for (const JsonValue &Coord : Item.Items)
      if (Coord.K != JsonValue::Kind::Number)
        return false;
    R.Curve.push_back({size_t(Item.Items[0].Number), Item.Items[1].Number,
                       Item.Items[2].Number});
  }
  return true;
}

/// Reads the ledger, skipping unparsable lines (a crash can leave one
/// partial trailing line; its cell simply reruns on resume).
std::unordered_map<std::string, CellResult>
loadLedger(const std::string &Path) {
  std::unordered_map<std::string, CellResult> Ledger;
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return Ledger;
  std::string Content;
  char Chunk[1 << 16];
  size_t Got;
  while ((Got = std::fread(Chunk, 1, sizeof(Chunk), File)) > 0)
    Content.append(Chunk, Got);
  std::fclose(File);

  size_t Pos = 0;
  while (Pos < Content.size()) {
    size_t Eol = Content.find('\n', Pos);
    if (Eol == std::string::npos)
      break; // partial trailing line: the crash remnant resume re-runs
    std::string Line = Content.substr(Pos, Eol - Pos);
    Pos = Eol + 1;
    if (Line.empty())
      continue;
    std::string Key;
    CellResult Result;
    if (parseCellLine(Line, Key, Result))
      Ledger[Key] = std::move(Result); // later lines win (idempotent rewrites)
  }
  return Ledger;
}

//===----------------------------------------------------------------------===//
// Cell execution
//===----------------------------------------------------------------------===//

CellResult computeNoiseCell(const CampaignSpec &Spec,
                            const std::string &Benchmark) {
  auto B = createSpaptBenchmark(Benchmark);
  const ExperimentScale &S = Spec.Scale;
  // The Table 2 measurement: per-configuration runtime variance and the
  // paper's Section 4.3 CI/mean validation statistic for 35- and 5-sample
  // plans, summarized as min/mean/max across sampled configurations.
  size_t NumConfigs = std::min<size_t>(S.NumConfigs / 4, 600);
  Rng R(hashCombine({Spec.DatasetSeed, 0x7ab1e2ull}));
  std::vector<Config> Configs = B->space().sampleDistinct(R, NumConfigs);
  Profiler Prof(*B, 0x5eed);

  OnlineStats Var, Ci35, Ci5;
  for (const Config &C : Configs) {
    OnlineStats Runs, Five;
    std::vector<double> Obs = Prof.measure(C, 35);
    for (size_t I = 0; I != Obs.size(); ++I) {
      Runs.add(Obs[I]);
      // Streams are counter-based, so the first five observations are
      // exactly what a fresh 5-sample plan would draw.
      if (I < 5)
        Five.add(Obs[I]);
    }
    Var.add(Runs.variance());
    Ci35.add(Runs.ciOverMean());
    Ci5.add(Five.ciOverMean());
  }
  CellResult Result;
  Result.NoiseStats = {Var.min(),  Var.mean(),  Var.max(),
                       Ci35.min(), Ci35.mean(), Ci35.max(),
                       Ci5.min(),  Ci5.mean(),  Ci5.max()};
  return Result;
}

CellResult computeRunCell(const CampaignSpec &Spec, const CampaignCell &Cell,
                          const Dataset &D, Scheduler *Workers) {
  auto B = createSpaptBenchmark(Cell.Benchmark);
  RunOptions Options;
  Options.Model = Cell.Model;
  Options.Learner.Scorer = Cell.Scorer;
  Options.Learner.BatchSize = Cell.BatchSize;
  Options.Learner.Query = Cell.Policy;
  // Nested parallelism: this cell already runs as a scheduler task, and
  // its learner forks particle shards, scoring shards, and batched
  // profiler draws back onto the same pool — TaskGroup::wait helps
  // instead of blocking, so idle workers steal the inner shards at the
  // campaign tail.  Results are bit-identical with or without Workers.
  Options.Workers = Workers;
  uint64_t Seed = hashCombine({Spec.BaseRunSeed, uint64_t(Cell.Rep)});
  CellResult Result;
  Result.Run = runLearning(*B, D, Cell.Plan, Spec.Scale, Seed, Options);
  return Result;
}

/// Runs \p Fn(I) for every index either inline or across \p Pool.
void forEachIndex(Scheduler *Pool, size_t N,
                  const std::function<void(size_t)> &Fn) {
  if (!Pool) {
    for (size_t I = 0; I != N; ++I)
      Fn(I);
    return;
  }
  Pool->parallelFor(N, Fn);
}

//===----------------------------------------------------------------------===//
// Durable ledger appends (degrade, never abort)
//===----------------------------------------------------------------------===//

/// Append attempts per cell before quarantining it.  Retries follow the
/// shared jittered-exponential schedule (support/Backoff): a 1 ms
/// envelope doubling to 4 ms — the old 1/2/4 ms ladder's envelope — long
/// enough to ride out a transient EINTR/EIO blip, short enough that a
/// truly full disk quarantines a 275-cell campaign in about a second.
constexpr int LedgerAppendAttempts = 4;

/// Seed of the ledger-retry Backoff stream (any fixed value works; the
/// schedule never affects results, only sleep lengths).
constexpr uint64_t LedgerBackoffSeed = 0x1ed6e4ull;

/// One append attempt: write \p Line, flush, fsync.  \p Seal prefixes a
/// newline — a previous attempt may have torn mid-line, and gluing this
/// record onto the remnant would lose both; the sealed remnant parses as
/// garbage and is skipped on resume.  Fault-injection sites:
/// `ledger.append` (error / torn / crash before the write) and
/// `ledger.sync` (error / crash at the fsync — data flushed, durability
/// unknown, exactly the window a power loss hits).
Status tryAppendLine(std::FILE *Out, const std::string &Path,
                     const std::string &Line, bool Seal) {
  std::clearerr(Out);
  FailOutcome F = ALIC_FAILPOINT("ledger.append");
  if (F.Fire) {
    if (F.Mode == FailMode::Torn && F.TornBytes > 0) {
      std::fwrite(Line.data(), 1, std::min(F.TornBytes, Line.size()), Out);
      std::fflush(Out);
    }
    return Status::failure("append to " + Path + " (injected)", F.Errno);
  }
  if (Seal && std::fputc('\n', Out) == EOF)
    return Status::failure("append to " + Path, errno);
  if (std::fwrite(Line.data(), 1, Line.size(), Out) != Line.size() ||
      std::fflush(Out) != 0)
    return Status::failure("append to " + Path, errno);
  FailOutcome FS = ALIC_FAILPOINT("ledger.sync");
  if (FS.Fire)
    return Status::failure("fsync " + Path + " (injected)", FS.Errno);
  if (fsync(fileno(Out)) != 0)
    return Status::failure("fsync " + Path, errno);
  return Status::success();
}

/// \p NeedSeal carries torn-remnant state *across cells*: it enters true
/// when any earlier append of this run failed (its bytes may sit
/// mid-line), forces a seal on the first attempt too, and leaves true
/// when this append is given up on.
Status appendLineWithRetry(std::FILE *Out, const std::string &Path,
                           const std::string &Line, bool &NeedSeal) {
  Status St;
  Backoff Retry(LedgerBackoffSeed, /*BaseMs=*/1, /*CapMs=*/4);
  for (int Attempt = 0; Attempt != LedgerAppendAttempts; ++Attempt) {
    if (Attempt)
      std::this_thread::sleep_for(
          std::chrono::milliseconds(Retry.delayMs(uint64_t(Attempt - 1))));
    St = tryAppendLine(Out, Path, Line, /*Seal=*/NeedSeal || Attempt != 0);
    if (St.ok()) {
      NeedSeal = false;
      return St;
    }
  }
  NeedSeal = true;
  return St;
}

//===----------------------------------------------------------------------===//
// Shared orchestration pieces (single- and multi-process modes)
//===----------------------------------------------------------------------===//

/// Every worker ledger under \p StateDir — the canonical cells.jsonl plus
/// any per-worker cells.<worker>.jsonl — sorted by name so reads are
/// deterministic.
std::vector<std::string> shardLedgerPaths(const std::string &StateDir) {
  std::vector<std::string> Paths;
  std::error_code Ec;
  for (const auto &Entry :
       std::filesystem::directory_iterator(StateDir, Ec)) {
    std::string Name = Entry.path().filename().string();
    if (Name.rfind("cells", 0) == 0 && Name.size() > 6 &&
        Name.compare(Name.size() - 6, 6, ".jsonl") == 0)
      Paths.push_back(StateDir + "/" + Name);
  }
  std::sort(Paths.begin(), Paths.end());
  return Paths;
}

/// The union of every worker ledger: what is done *anywhere*.  Cells are
/// deterministic, so when two ledgers hold the same key the entries are
/// interchangeable and first-in wins.
std::unordered_map<std::string, CellResult>
loadLedgerUnion(const std::string &StateDir) {
  std::unordered_map<std::string, CellResult> Union;
  for (const std::string &Path : shardLedgerPaths(StateDir)) {
    std::unordered_map<std::string, CellResult> One = loadLedger(Path);
    for (auto &Entry : One)
      Union.emplace(Entry.first, std::move(Entry.second));
  }
  return Union;
}

/// Creates Options.StateDir, fsyncing its parent on first creation so
/// the new directory entry itself survives a crash (the
/// writeFileDurable discipline, applied to the campaign's root).
Status prepareStateDir(const CampaignOptions &Options) {
  std::error_code Ec;
  bool Created = std::filesystem::create_directories(Options.StateDir, Ec);
  if (Ec)
    return Status::failure("create state dir " + Options.StateDir,
                           Ec.value());
  if (Created)
    (void)syncParentDir(Options.StateDir); // best-effort (EINVAL-tolerant)
  return Status::success();
}

/// Opens the ledger for appending.  On first create the state dir is
/// fsync'd (a synced append is worthless if the file's directory entry
/// vanishes with a power loss), and a torn trailing line a crash left is
/// sealed into its own skippable line so the next append cannot glue
/// onto the remnant.
std::FILE *openLedgerAppend(const std::string &Path) {
  bool Existed = std::filesystem::exists(Path);
  std::FILE *Out = std::fopen(Path.c_str(), "ab");
  if (!Out)
    return nullptr;
  if (!Existed)
    (void)syncParentDir(Path); // best-effort
  std::FILE *In = std::fopen(Path.c_str(), "rb");
  if (In) {
    char LastByte = '\n';
    bool NonEmpty = std::fseek(In, -1, SEEK_END) == 0 &&
                    std::fread(&LastByte, 1, 1, In) == 1;
    std::fclose(In);
    if (NonEmpty && LastByte != '\n')
      std::fputc('\n', Out);
  }
  return Out;
}

/// Memoizes datasets for any of \p Benchmarks not yet in \p Datasets
/// (the blob cache makes this a deserialize everywhere after the first
/// build on the machine).
void ensureDatasets(const CampaignSpec &Spec, const CampaignOptions &Options,
                    Scheduler *Pool,
                    const std::vector<std::string> &Benchmarks,
                    std::unordered_map<std::string, Dataset> &Datasets) {
  std::vector<std::string> Needed;
  for (const std::string &Name : Benchmarks)
    if (!Datasets.count(Name) &&
        std::find(Needed.begin(), Needed.end(), Name) == Needed.end())
      Needed.push_back(Name);
  if (Needed.empty())
    return;
  std::mutex DatasetMutex;
  const ExperimentScale &S = Spec.Scale;
  forEachIndex(Pool, Needed.size(), [&](size_t I) {
    const std::string &Name = Needed[I];
    auto B = createSpaptBenchmark(Name);
    Dataset D = loadOrBuildDataset(*B, S.NumConfigs, S.TrainFraction,
                                   S.MeanObservations, Spec.DatasetSeed,
                                   Options.datasetCacheDir());
    std::lock_guard<std::mutex> Lock(DatasetMutex);
    Datasets.emplace(Name, std::move(D));
  });
}

/// One cell, either kind.
CellResult computeCell(const CampaignSpec &Spec, const CampaignCell &Cell,
                       const std::unordered_map<std::string, Dataset> &Datasets,
                       Scheduler *CellWorkers) {
  return Cell.CellKind == CampaignCell::Kind::Noise
             ? computeNoiseCell(Spec, Cell.Benchmark)
             : computeRunCell(Spec, Cell, Datasets.at(Cell.Benchmark),
                              CellWorkers);
}

/// The spec's cells deduplicated by key, in canonical expandCells order —
/// the list every sharding mode splits, so all workers agree on range
/// boundaries without talking to each other.
std::vector<const CampaignCell *>
uniqueCells(const CampaignSpec &Spec, const std::vector<CampaignCell> &Cells) {
  std::vector<const CampaignCell *> Unique;
  std::unordered_set<std::string> Seen;
  for (const CampaignCell &Cell : Cells)
    if (Seen.insert(Cell.key(Spec)).second)
      Unique.push_back(&Cell);
  return Unique;
}

//===----------------------------------------------------------------------===//
// Lease-claim orchestration (dynamic multi-process sharding)
//===----------------------------------------------------------------------===//

/// The lease-mode worker loop: claim a range of the canonical cell list,
/// run its missing cells under a heartbeat, release, repeat — until the
/// union of all worker ledgers covers the whole spec.  Ranges whose
/// leases are held by live owners are polled; ranges whose owner died
/// are stolen once the lease expires.  Leases are an efficiency
/// mechanism only: any race at worst duplicates deterministic work (the
/// merge dedupes byte-identical lines), it never corrupts results.
CampaignProgress runLeaseCampaignCells(const CampaignSpec &Spec,
                                       const CampaignOptions &BaseOptions) {
  // Every lease worker appends to its own ledger; default a unique tag
  // when the caller did not pick one.
  CampaignOptions Options = BaseOptions;
  if (Options.WorkerId.empty())
    Options.WorkerId = "w" + std::to_string(int(::getpid()));
  const char *Tag = Options.WorkerId.c_str();

  CampaignProgress Progress;
  std::vector<CampaignCell> Cells = expandCells(Spec);
  std::vector<const CampaignCell *> Unique = uniqueCells(Spec, Cells);
  Progress.TotalCells = Progress.ShardCells = Unique.size();

  auto QuarantineAll = [&](const std::vector<const CampaignCell *> &List) {
    for (const CampaignCell *Cell : List)
      Progress.QuarantinedCells.push_back(Cell->key(Spec));
  };

  LeaseOptions LOpts;
  LOpts.Dir = Options.leaseDir();
  LOpts.OwnerToken = makeLeaseOwnerToken(Options.WorkerId);
  LOpts.TtlMs = Options.LeaseTtlMs ? Options.LeaseTtlMs : 2000;
  LOpts.HeartbeatMs = Options.LeaseHeartbeatMs;
  ShardLease Leases(LOpts);

  Status Prepared = prepareStateDir(Options);
  if (Prepared.ok())
    Prepared = Leases.init();
  if (!Prepared.ok()) {
    std::fprintf(stderr,
                 "campaign[%s]: %s — quarantining all missing cells\n", Tag,
                 Prepared.message().c_str());
    QuarantineAll(Unique);
    return Progress;
  }

  std::unique_ptr<Scheduler> Pool;
  if (Options.Threads) {
    Scheduler::Options SchedOptions;
    SchedOptions.Threads = Options.Threads;
    if (Options.StealSeed)
      SchedOptions.StealSeed = Options.StealSeed;
    Pool = std::make_unique<Scheduler>(SchedOptions);
    Progress.WorkersUsed = Pool->numThreads();
  }
  Scheduler *CellWorkers = Options.NestCells ? Pool.get() : nullptr;

  std::FILE *Out = openLedgerAppend(Options.ledgerPath());
  if (!Out) {
    std::fprintf(stderr,
                 "campaign[%s]: cannot open ledger %s for append: %s — "
                 "quarantining all missing cells\n",
                 Tag, Options.ledgerPath().c_str(), std::strerror(errno));
    std::unordered_map<std::string, CellResult> Union =
        loadLedgerUnion(Options.StateDir);
    std::vector<const CampaignCell *> Missing;
    for (const CampaignCell *Cell : Unique)
      if (!Union.count(Cell->key(Spec)))
        Missing.push_back(Cell);
    Progress.AlreadyDone = Unique.size() - Missing.size();
    QuarantineAll(Missing);
    std::sort(Progress.QuarantinedCells.begin(),
              Progress.QuarantinedCells.end());
    return Progress;
  }

  std::vector<ShardRange> Ranges = splitRangesByCells(
      Unique.size(), Options.LeaseRangeCells ? Options.LeaseRangeCells : 16);
  std::vector<char> Poisoned(Ranges.size(), 0);

  std::unordered_map<std::string, Dataset> Datasets;
  std::mutex WriteMutex;
  size_t Completed = 0, Appended = 0;
  bool NeedSeal = false;
  std::atomic<bool> Interrupted{false};

  // Start the cyclic claim scan at a token-derived offset so K workers
  // spread across the range list instead of all contending for range 0.
  uint64_t TokenHash = 0;
  for (char C : LOpts.OwnerToken)
    TokenHash = TokenHash * 131 + uint8_t(C);
  size_t ScanStart = Ranges.empty() ? 0 : size_t(TokenHash % Ranges.size());

  bool AllDone = false;
  bool CountedInitial = false;
  while (!Interrupted.load(std::memory_order_relaxed)) {
    // What is done *anywhere* — all worker ledgers plus the canonical one
    // — decides both global completion and which ranges still matter.
    std::unordered_map<std::string, CellResult> Union =
        loadLedgerUnion(Options.StateDir);
    if (!CountedInitial) {
      CountedInitial = true;
      for (const CampaignCell *Cell : Unique)
        if (Union.count(Cell->key(Spec)))
          ++Progress.AlreadyDone;
    }

    bool AnyMissing = false, AnyUnpoisoned = false, RanRange = false;
    for (size_t Off = 0; Off != Ranges.size(); ++Off) {
      const ShardRange &Range = Ranges[(ScanStart + Off) % Ranges.size()];
      std::vector<const CampaignCell *> Missing;
      for (size_t I = Range.Begin; I != Range.End; ++I)
        if (!Union.count(Unique[I]->key(Spec)))
          Missing.push_back(Unique[I]);
      if (Missing.empty())
        continue;
      AnyMissing = true;
      if (Poisoned[Range.Index])
        continue; // our appends failed here; leave it to other workers
      AnyUnpoisoned = true;

      RangeLease Lease;
      if (Leases.tryClaim(Range.Index, Lease) != ShardLease::Claim::Acquired)
        continue; // live owner, or we lost a claim/steal race — rescan later
      RanRange = true;
      if (!Options.Quiet)
        std::fprintf(stderr,
                     "  campaign[%s] leased range %zu (%zu missing cell(s))\n",
                     Tag, Range.Index, Missing.size());

      std::vector<std::string> Benchmarks;
      for (const CampaignCell *Cell : Missing)
        if (Cell->CellKind == CampaignCell::Kind::Run)
          Benchmarks.push_back(Cell->Benchmark);
      ensureDatasets(Spec, Options, Pool.get(), Benchmarks, Datasets);

      std::atomic<bool> RangeFailed{false};
      {
        LeaseHeartbeat Heartbeat(Lease, LOpts);
        forEachIndex(Pool.get(), Missing.size(), [&](size_t I) {
          // A lost heartbeat means the range was stolen: abandon the
          // rest (the thief recomputes them — safe, just duplicated
          // work).  A failed append poisons the range for this worker.
          if (Heartbeat.lost() || RangeFailed.load(std::memory_order_relaxed) ||
              Interrupted.load(std::memory_order_relaxed))
            return;
          const CampaignCell &Cell = *Missing[I];
          CellResult Result = computeCell(Spec, Cell, Datasets, CellWorkers);
          std::string Key = Cell.key(Spec);
          std::string Line = cellLine(Key, Cell.CellKind, Result);

          std::lock_guard<std::mutex> Lock(WriteMutex);
          Status St =
              appendLineWithRetry(Out, Options.ledgerPath(), Line, NeedSeal);
          ++Completed;
          if (St.ok()) {
            ++Appended;
            if (!Options.Quiet)
              std::fprintf(stderr, "  campaign[%s] [+%zu] %s\n", Tag,
                           Appended, Key.c_str());
            if (Options.MaxCells && Appended >= Options.MaxCells)
              Interrupted.store(true, std::memory_order_relaxed);
          } else {
            Progress.QuarantinedCells.push_back(Key);
            RangeFailed.store(true, std::memory_order_relaxed);
            std::fprintf(stderr, "  campaign[%s] QUARANTINED %s: %s\n", Tag,
                         Key.c_str(), St.message().c_str());
          }
        });
      } // heartbeat stopped (joined) before the lease is touched again
      if (RangeFailed.load(std::memory_order_relaxed))
        Poisoned[Range.Index] = 1;
      Lease.release();
      // Rescan from a fresh union after every range: cheap at campaign
      // scales, and it avoids claiming ranges another worker finished
      // while we were busy.
      break;
    }

    if (Interrupted.load(std::memory_order_relaxed))
      break;
    if (RanRange)
      continue;
    if (!AnyMissing) {
      AllDone = true;
      break;
    }
    if (!AnyUnpoisoned)
      break; // everything left failed locally: give up with quarantine
    // Remaining ranges are leased by (apparently) live owners: wait one
    // heartbeat and rescan.  A dead owner's lease expires TtlMs after its
    // last renewal and the next scan steals it.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(LOpts.heartbeatMs()));
  }
  std::fclose(Out);

  if (Pool) {
    SchedulerStats Stats = Pool->stats();
    Progress.TasksExecuted = Stats.Executed;
    Progress.Steals = Stats.Steals;
  }
  Progress.NewlyRun = Appended;
  std::sort(Progress.QuarantinedCells.begin(),
            Progress.QuarantinedCells.end());
  Progress.Complete = AllDone && Progress.QuarantinedCells.empty();
  return Progress;
}

} // namespace

//===----------------------------------------------------------------------===//
// Orchestration
//===----------------------------------------------------------------------===//

CampaignProgress alic::runCampaignCells(const CampaignSpec &Spec,
                                        const CampaignOptions &Options) {
  if (Options.LeaseClaim)
    return runLeaseCampaignCells(Spec, Options);

  std::vector<CampaignCell> Cells = expandCells(Spec);
  CampaignProgress Progress;

  // Quarantines every still-missing cell: nothing was lost (the cells are
  // simply not in the ledger), a re-launch retries exactly them.
  auto QuarantineAll = [&Progress](const CampaignSpec &S,
                                   const std::vector<const CampaignCell *>
                                       &Cells) {
    for (const CampaignCell *Cell : Cells)
      Progress.QuarantinedCells.push_back(Cell->key(S));
  };

  // Unique cells in canonical spec order (unique keys, so a pathological
  // spec with duplicates still completes), then — under static sharding —
  // this worker's contiguous slice of that list.  Every worker computes
  // the same split locally, so the shards are disjoint and exhaustive
  // with no coordination.
  std::vector<const CampaignCell *> Unique = uniqueCells(Spec, Cells);
  Progress.TotalCells = Unique.size();
  std::vector<const CampaignCell *> Ours;
  if (Options.ShardCount) {
    std::vector<ShardRange> Ranges =
        splitRanges(Unique.size(), Options.ShardCount);
    const ShardRange &Range = Ranges[Options.ShardIndex % Ranges.size()];
    Ours.assign(Unique.begin() + Range.Begin, Unique.begin() + Range.End);
  } else {
    Ours = Unique;
  }
  Progress.ShardCells = Ours.size();

  Status Prepared = prepareStateDir(Options);
  if (!Prepared.ok()) {
    std::fprintf(stderr,
                 "campaign: %s — quarantining all missing cells\n",
                 Prepared.message().c_str());
    QuarantineAll(Spec, Ours);
    return Progress;
  }

  // Done-ness: the canonical ledger alone (unsharded), or the union of
  // every worker ledger when sharded (a rebalanced or re-split fleet may
  // have left our cells in another worker's ledger).
  std::unordered_map<std::string, CellResult> Ledger =
      Options.sharded() ? loadLedgerUnion(Options.StateDir)
                        : loadLedger(Options.ledgerPath());

  std::vector<const CampaignCell *> Missing;
  for (const CampaignCell *Cell : Ours)
    if (!Ledger.count(Cell->key(Spec)))
      Missing.push_back(Cell);
  Progress.AlreadyDone = Ours.size() - Missing.size();

  if (Options.ShuffleSeed) {
    Rng Shuffler(Options.ShuffleSeed);
    Shuffler.shuffle(Missing);
  }
  bool Truncated = Options.MaxCells && Missing.size() > Options.MaxCells;
  if (Truncated)
    Missing.resize(Options.MaxCells);

  if (Missing.empty()) {
    Progress.Complete = !Truncated && Progress.AlreadyDone ==
                                          Progress.ShardCells;
    return Progress;
  }

  std::unique_ptr<Scheduler> Pool;
  if (Options.Threads) {
    Scheduler::Options SchedOptions;
    SchedOptions.Threads = Options.Threads;
    if (Options.StealSeed)
      SchedOptions.StealSeed = Options.StealSeed;
    Pool = std::make_unique<Scheduler>(SchedOptions);
    Progress.WorkersUsed = Pool->numThreads();
  }
  Scheduler *CellWorkers = Options.NestCells ? Pool.get() : nullptr;

  // Memoize each needed benchmark's dataset once, up front (the blob
  // cache makes this a deserialize on every run after the first).
  std::vector<std::string> NeededBenchmarks;
  for (const CampaignCell *Cell : Missing)
    if (Cell->CellKind == CampaignCell::Kind::Run)
      NeededBenchmarks.push_back(Cell->Benchmark);
  std::unordered_map<std::string, Dataset> Datasets;
  ensureDatasets(Spec, Options, Pool.get(), NeededBenchmarks, Datasets);

  std::FILE *Out = openLedgerAppend(Options.ledgerPath());
  if (!Out) {
    std::fprintf(stderr,
                 "campaign: cannot open ledger %s for append: %s — "
                 "quarantining all missing cells\n",
                 Options.ledgerPath().c_str(), std::strerror(errno));
    QuarantineAll(Spec, Missing);
    return Progress;
  }

  std::mutex WriteMutex;
  size_t Completed = 0, Appended = 0;
  bool NeedSeal = false; // a failed append may have left a torn remnant
  forEachIndex(Pool.get(), Missing.size(), [&](size_t I) {
    const CampaignCell &Cell = *Missing[I];
    CellResult Result = computeCell(Spec, Cell, Datasets, CellWorkers);
    std::string Key = Cell.key(Spec);
    std::string Line = cellLine(Key, Cell.CellKind, Result);

    std::lock_guard<std::mutex> Lock(WriteMutex);
    // One flushed + synced write per cell: a crash loses at most the
    // in-flight line, which the parser skips on resume.  An append that
    // still fails after the bounded retries quarantines this cell — the
    // rest of the campaign keeps running, and a re-launch retries exactly
    // the quarantined keys (they are simply missing from the ledger).
    Status St = appendLineWithRetry(Out, Options.ledgerPath(), Line, NeedSeal);
    ++Completed;
    if (St.ok()) {
      ++Appended;
      if (!Options.Quiet)
        std::fprintf(stderr, "  campaign [%zu/%zu] %s\n",
                     Progress.AlreadyDone + Completed, Progress.ShardCells,
                     Key.c_str());
    } else {
      Progress.QuarantinedCells.push_back(Key);
      std::fprintf(stderr, "  campaign [%zu/%zu] QUARANTINED %s: %s\n",
                   Progress.AlreadyDone + Completed, Progress.ShardCells,
                   Key.c_str(), St.message().c_str());
    }
  });
  std::fclose(Out);

  if (Pool) {
    SchedulerStats Stats = Pool->stats();
    Progress.TasksExecuted = Stats.Executed;
    Progress.Steals = Stats.Steals;
  }
  Progress.NewlyRun = Appended;
  // Completion order varies across worker counts; report deterministically.
  std::sort(Progress.QuarantinedCells.begin(),
            Progress.QuarantinedCells.end());
  Progress.Complete = Progress.QuarantinedCells.empty() &&
                      Progress.AlreadyDone + Completed == Progress.ShardCells;
  return Progress;
}

bool alic::aggregateCampaign(const CampaignSpec &Spec,
                             const CampaignOptions &Options,
                             CampaignResult &Out) {
  Out = CampaignResult();
  std::unordered_map<std::string, CellResult> Ledger =
      loadLedger(Options.ledgerPath());
  for (const CampaignCell &Cell : expandCells(Spec))
    if (!Ledger.count(Cell.key(Spec)))
      return false;

  unsigned Reps = Spec.repetitions();
  std::vector<QueryPolicyConfig> Policies = Spec.policyList();
  std::vector<double> Speedups;
  std::vector<std::string> RunBenchmarks =
      Spec.Plans.empty() ? std::vector<std::string>() : Spec.benchmarkList();
  for (const std::string &Benchmark : RunBenchmarks)
    for (ModelKind Model : Spec.Models)
      for (ScorerKind Scorer : Spec.Scorers)
        for (unsigned Batch : Spec.BatchSizes)
          for (const QueryPolicyConfig &Policy : Policies) {
            ComboResult Combo;
            Combo.Benchmark = Benchmark;
            Combo.Model = Model;
            Combo.Scorer = Scorer;
            Combo.BatchSize = Batch;
            Combo.Policy = Policy;
            for (const SamplingPlan &Plan : Spec.Plans) {
              std::vector<RunResult> Runs;
              Runs.reserve(Reps);
              for (unsigned Rep = 0; Rep != Reps; ++Rep) {
                CampaignCell Cell;
                Cell.CellKind = CampaignCell::Kind::Run;
                Cell.Benchmark = Benchmark;
                Cell.Model = Model;
                Cell.Scorer = Scorer;
                Cell.BatchSize = Batch;
                Cell.Plan = Plan;
                Cell.Policy = Policy;
                Cell.Rep = Rep;
                Runs.push_back(Ledger.at(Cell.key(Spec)).Run);
              }
              Combo.PlanResults.push_back(averageRuns(Runs));
            }
            // Table 1 semantics: first fixed plan is the baseline, first
            // sequential plan is "ours".
            int BaselineIdx = -1, OursIdx = -1;
            for (size_t I = 0; I != Spec.Plans.size(); ++I) {
              if (Spec.Plans[I].PlanKind == SamplingPlan::Kind::Fixed &&
                  BaselineIdx < 0)
                BaselineIdx = int(I);
              if (Spec.Plans[I].PlanKind == SamplingPlan::Kind::Sequential &&
                  OursIdx < 0)
                OursIdx = int(I);
            }
            if (BaselineIdx >= 0 && OursIdx >= 0) {
              Combo.Speedup = compareCurves(Combo.PlanResults[BaselineIdx],
                                            Combo.PlanResults[OursIdx]);
              if (Combo.Speedup.Speedup > 0.0)
                Speedups.push_back(Combo.Speedup.Speedup);
            }
            Out.Combos.push_back(std::move(Combo));
          }

  if (Spec.NoiseCells)
    for (const std::string &Benchmark : Spec.benchmarkList()) {
      CampaignCell Cell;
      Cell.CellKind = CampaignCell::Kind::Noise;
      Cell.Benchmark = Benchmark;
      const std::vector<double> &Stats =
          Ledger.at(Cell.key(Spec)).NoiseStats;
      if (Stats.size() != 9)
        return false;
      NoiseSummary Summary;
      Summary.Benchmark = Benchmark;
      Summary.VarMin = Stats[0];
      Summary.VarMean = Stats[1];
      Summary.VarMax = Stats[2];
      Summary.Ci35Min = Stats[3];
      Summary.Ci35Mean = Stats[4];
      Summary.Ci35Max = Stats[5];
      Summary.Ci5Min = Stats[6];
      Summary.Ci5Mean = Stats[7];
      Summary.Ci5Max = Stats[8];
      Out.Noise.push_back(std::move(Summary));
    }

  if (!Speedups.empty())
    Out.GeomeanSpeedup = geometricMean(Speedups);
  return true;
}

Status alic::mergeLedgers(const CampaignSpec &Spec,
                          const CampaignOptions &Options,
                          LedgerMergeReport &Report) {
  Report = LedgerMergeReport();
  std::vector<std::string> Inputs = shardLedgerPaths(Options.StateDir);
  if (Inputs.empty())
    return Status::failure("no cells*.jsonl ledgers under " + Options.StateDir,
                           ENOENT);

  // Key -> exact line bytes (newline excluded).  The comparison is on
  // bytes, not parsed values: equal parses with different bytes would
  // still break the byte-identical-aggregate contract downstream.
  std::unordered_map<std::string, std::string> LineByKey;
  std::vector<std::string> Conflicts;
  for (const std::string &Path : Inputs) {
    ++Report.InputFiles;
    FailOutcome F = ALIC_FAILPOINT("merge.read");
    if (F.Fire)
      return Status::failure("read shard ledger " + Path + " (injected)",
                             F.Errno);
    std::FILE *File = std::fopen(Path.c_str(), "rb");
    if (!File)
      return Status::failure("open shard ledger " + Path, errno);
    std::string Content;
    char Chunk[1 << 16];
    size_t Got;
    while ((Got = std::fread(Chunk, 1, sizeof(Chunk), File)) > 0)
      Content.append(Chunk, Got);
    bool ReadOk = std::ferror(File) == 0;
    std::fclose(File);
    if (!ReadOk)
      return Status::failure("read shard ledger " + Path, EIO);

    size_t Pos = 0;
    while (Pos < Content.size()) {
      size_t Eol = Content.find('\n', Pos);
      if (Eol == std::string::npos) {
        ++Report.TornTails; // unterminated tail: seal (drop) it
        break;
      }
      std::string Line = Content.substr(Pos, Eol - Pos);
      Pos = Eol + 1;
      if (Line.empty())
        continue;
      std::string Key;
      CellResult Parsed;
      if (!parseCellLine(Line, Key, Parsed)) {
        ++Report.SkippedGarbage; // a sealed crash remnant
        continue;
      }
      ++Report.Lines;
      auto Inserted = LineByKey.emplace(Key, Line);
      if (Inserted.second)
        continue;
      if (Inserted.first->second == Line)
        ++Report.DuplicateCells; // determinism made the rerun identical
      else
        Conflicts.push_back(Key); // same key, different bytes: corruption
    }
  }
  Report.UniqueCells = LineByKey.size();

  std::sort(Conflicts.begin(), Conflicts.end());
  Conflicts.erase(std::unique(Conflicts.begin(), Conflicts.end()),
                  Conflicts.end());
  Report.ConflictKeys = std::move(Conflicts);
  if (!Report.ConflictKeys.empty())
    return Status::success(); // quarantined: report set, nothing written

  // Canonical order: the spec's cells exactly as one inline process would
  // have appended them (so the merged ledger is byte-identical to a
  // single-process run), then foreign cells — other scales or specs
  // sharing the state dir — in key order.
  std::string Merged;
  std::unordered_set<std::string> Emitted;
  for (const CampaignCell &Cell : expandCells(Spec)) {
    std::string Key = Cell.key(Spec);
    auto It = LineByKey.find(Key);
    if (It == LineByKey.end() || !Emitted.insert(Key).second)
      continue;
    Merged += It->second;
    Merged += '\n';
  }
  std::vector<std::string> Foreign;
  for (const auto &Entry : LineByKey)
    if (!Emitted.count(Entry.first))
      Foreign.push_back(Entry.first);
  std::sort(Foreign.begin(), Foreign.end());
  Report.ForeignCells = Foreign.size();
  for (const std::string &Key : Foreign) {
    Merged += LineByKey[Key];
    Merged += '\n';
  }

  FailOutcome F = ALIC_FAILPOINT("merge.append");
  if (F.Fire)
    return Status::failure("write merged ledger " +
                               Options.canonicalLedgerPath() + " (injected)",
                           F.Errno);
  // Atomic + durable publish: a crash mid-merge leaves the previous
  // canonical ledger (or its absence) intact, never a half-merged one.
  ByteWriter Writer;
  Writer.writeRaw(Merged);
  Status St = Writer.writeFileDurable(Options.canonicalLedgerPath());
  if (St.ok())
    Report.Wrote = true;
  return St;
}

bool alic::runCampaign(const CampaignSpec &Spec,
                       const CampaignOptions &Options, CampaignResult &Out) {
  CampaignProgress Progress = runCampaignCells(Spec, Options);
  if (!Progress.Complete)
    return false;
  if (!aggregateCampaign(Spec, Options, Out))
    fatalError("campaign ledger %s lost cells between run and aggregate",
               Options.ledgerPath().c_str());
  return true;
}

//===----------------------------------------------------------------------===//
// Canonical aggregate JSON
//===----------------------------------------------------------------------===//

namespace {

/// Evenly decimates a curve to at most ~33 points (always keeping the
/// final one) so the aggregate stays reviewable; renderers that need full
/// curves read CampaignResult directly.
void appendCurveJson(std::string &Json, const std::vector<CurvePoint> &Curve) {
  Json += "[";
  size_t Stride = std::max<size_t>(1, Curve.size() / 32);
  bool First = true;
  for (size_t I = 0; I < Curve.size(); I += Stride) {
    if (!First)
      Json += ",";
    First = false;
    Json += formatString("[%zu,", Curve[I].Iteration);
    Json += formatJsonDouble(Curve[I].CostSeconds) + ",";
    Json += formatJsonDouble(Curve[I].Rmse) + "]";
  }
  if (!Curve.empty() && (Curve.size() - 1) % Stride != 0) {
    Json += First ? "" : ",";
    Json += formatString("[%zu,", Curve.back().Iteration);
    Json += formatJsonDouble(Curve.back().CostSeconds) + ",";
    Json += formatJsonDouble(Curve.back().Rmse) + "]";
  }
  Json += "]";
}

} // namespace

std::string alic::campaignJson(const CampaignSpec &Spec,
                               const CampaignResult &Result) {
  std::string Json = "{\n";
  Json += "  \"schema\": \"alic-campaign-v1\",\n";
  Json += "  \"scale\": \"" + Spec.ScaleName + "\",\n";
  Json += formatString("  \"repetitions\": %u,\n", Spec.repetitions());
  Json += "  \"benchmarks\": [";
  std::vector<std::string> Names = Spec.benchmarkList();
  for (size_t I = 0; I != Names.size(); ++I)
    Json += (I ? ", \"" : "\"") + Names[I] + "\"";
  Json += "],\n";
  size_t NumCells = Names.size() * Spec.Models.size() * Spec.Scorers.size() *
                        Spec.BatchSizes.size() * Spec.Plans.size() *
                        Spec.policyList().size() * Spec.repetitions() +
                    (Spec.NoiseCells ? Names.size() : 0);
  Json += formatString("  \"cells\": %zu,\n", NumCells);

  // Policy fields appear only when the spec sweeps a non-default policy
  // axis, so the default (Always-only) aggregate stays byte-identical to
  // aggregates written before the axis existed.
  bool EmitPolicy = !Spec.defaultPolicyAxis();

  Json += "  \"combos\": [\n";
  for (size_t C = 0; C != Result.Combos.size(); ++C) {
    const ComboResult &Combo = Result.Combos[C];
    Json += "    {\"benchmark\": \"" + Combo.Benchmark + "\", \"model\": \"" +
            modelToken(Combo.Model) + "\", \"scorer\": \"" +
            scorerToken(Combo.Scorer) + "\"";
    Json += formatString(", \"batch\": %u", Combo.BatchSize);
    if (EmitPolicy)
      Json += ", \"policy\": \"" + queryPolicyToken(Combo.Policy) + "\"";
    Json += ",\n";
    Json += "     \"plans\": [\n";
    for (size_t P = 0; P != Combo.PlanResults.size(); ++P) {
      const RunResult &Run = Combo.PlanResults[P];
      Json += "      {\"plan\": \"" + planToken(Spec.Plans[P]) + "\"";
      Json += ", \"final_rmse\": " + formatJsonDouble(Run.FinalRmse);
      Json +=
          ", \"total_cost_seconds\": " + formatJsonDouble(Run.TotalCostSeconds);
      Json += formatString(", \"iterations\": %zu, \"observations\": %zu",
                           Run.Stats.Iterations, Run.Stats.Observations);
      if (EmitPolicy)
        Json += formatString(", \"skips\": %zu", Run.Stats.Skips);
      Json += ",\n       \"curve\": ";
      appendCurveJson(Json, Run.Curve);
      Json += P + 1 == Combo.PlanResults.size() ? "}\n" : "},\n";
    }
    Json += "     ],\n";
    Json += "     \"lowest_common_rmse\": " +
            formatJsonDouble(Combo.Speedup.LowestCommonRmse);
    Json += ", \"baseline_cost_seconds\": " +
            formatJsonDouble(Combo.Speedup.BaselineCostSeconds);
    Json += ", \"ours_cost_seconds\": " +
            formatJsonDouble(Combo.Speedup.OursCostSeconds);
    Json += ", \"speedup\": " + formatJsonDouble(Combo.Speedup.Speedup);
    Json += C + 1 == Result.Combos.size() ? "}\n" : "},\n";
  }
  Json += "  ],\n";

  Json += "  \"noise\": [\n";
  for (size_t N = 0; N != Result.Noise.size(); ++N) {
    const NoiseSummary &Noise = Result.Noise[N];
    Json += "    {\"benchmark\": \"" + Noise.Benchmark + "\"";
    Json += ", \"var\": [" + formatJsonDouble(Noise.VarMin) + "," +
            formatJsonDouble(Noise.VarMean) + "," +
            formatJsonDouble(Noise.VarMax) + "]";
    Json += ", \"ci35\": [" + formatJsonDouble(Noise.Ci35Min) + "," +
            formatJsonDouble(Noise.Ci35Mean) + "," +
            formatJsonDouble(Noise.Ci35Max) + "]";
    Json += ", \"ci5\": [" + formatJsonDouble(Noise.Ci5Min) + "," +
            formatJsonDouble(Noise.Ci5Mean) + "," +
            formatJsonDouble(Noise.Ci5Max) + "]";
    Json += N + 1 == Result.Noise.size() ? "}\n" : "},\n";
  }
  Json += "  ],\n";

  Json += "  \"geomean_speedup\": " + formatJsonDouble(Result.GeomeanSpeedup);
  Json += "\n}\n";
  return Json;
}

//===- exp/Dataset.cpp ----------------------------------------*- C++ -*-===//

#include "exp/Dataset.h"

#include "measure/NoiseModel.h"
#include "support/Error.h"

#include <cassert>

using namespace alic;

Dataset alic::buildDataset(const SpaptBenchmark &B, size_t NumConfigs,
                           double TrainFraction, unsigned MeanObservations,
                           uint64_t Seed) {
  assert(TrainFraction > 0.0 && TrainFraction < 1.0 && "bad split fraction");
  Rng R(hashCombine({Seed, 0xda7a5e7ull}));
  const ParamSpace &Space = B.space();

  std::vector<Config> All = Space.sampleDistinct(R, NumConfigs);
  size_t NumTrain = size_t(double(All.size()) * TrainFraction);

  Dataset D;
  // Features are normalized over the full profiled sample (Section 4.5).
  std::vector<std::vector<double>> RawFeatures;
  RawFeatures.reserve(All.size());
  for (const Config &C : All)
    RawFeatures.push_back(Space.features(C));
  D.Norm = Normalizer::fit(RawFeatures);

  D.TrainPool.assign(All.begin(), All.begin() + NumTrain);
  D.TestConfigs.assign(All.begin() + NumTrain, All.end());

  // Test labels: observed means over MeanObservations noisy runs, using a
  // measurement stream independent of any learner's profiler.
  D.TestFeatures.reserve(D.TestConfigs.size());
  D.TestMeans.reserve(D.TestConfigs.size());
  for (const Config &C : D.TestConfigs) {
    D.TestFeatures.push_back(D.Norm.transform(Space.features(C)));
    double Mean = B.meanRuntimeSeconds(C);
    double SigmaRel = noiseSigmaRel(B.noise(), Space, C);
    uint64_t Stream = hashCombine({Seed, Space.key(C), 0x7e57ull});
    double Sum = 0.0;
    for (unsigned O = 0; O != MeanObservations; ++O)
      Sum += drawMeasurement(B.noise(), Mean, SigmaRel, Stream, O);
    D.TestMeans.push_back(Sum / double(MeanObservations));
  }
  return D;
}

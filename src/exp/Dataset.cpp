//===- exp/Dataset.cpp ----------------------------------------*- C++ -*-===//

#include "exp/Dataset.h"

#include "measure/NoiseModel.h"
#include "support/Error.h"
#include "support/Format.h"
#include "support/Serialize.h"

#include <cassert>
#include <cstdio>
#include <cstring>
#include <filesystem>

using namespace alic;

namespace {

/// Bump when the blob layout or buildDataset's sampling changes.
constexpr uint32_t DatasetBlobVersion = 1;
constexpr uint32_t DatasetBlobMagic = 0x53444c41; // "ALDS"

uint64_t datasetCacheKey(const SpaptBenchmark &B, size_t NumConfigs,
                         double TrainFraction, unsigned MeanObservations,
                         uint64_t Seed) {
  uint64_t FractionBits;
  std::memcpy(&FractionBits, &TrainFraction, sizeof(FractionBits));
  uint64_t Key = hashCombine({uint64_t(NumConfigs), FractionBits,
                              uint64_t(MeanObservations), Seed,
                              uint64_t(DatasetBlobVersion)});
  for (char C : B.name())
    Key = hashCombine({Key, uint64_t(uint8_t(C))});
  return Key;
}

void writeConfigs(ByteWriter &W, const std::vector<Config> &Configs) {
  W.writeU64(Configs.size());
  for (const Config &C : Configs)
    W.writeU16s(C);
}

bool readConfigs(ByteReader &R, std::vector<Config> &Configs) {
  Configs.clear();
  uint64_t Count;
  // Every serialized config costs at least its 8-byte length prefix, so
  // a corrupt count cannot exceed remaining/8 — reject it before the
  // resize rather than attempting a giant allocation.
  if (!R.readU64(Count) || Count > R.remaining() / 8)
    return false;
  Configs.resize(size_t(Count));
  for (Config &C : Configs)
    if (!R.readU16s(C))
      return false;
  return true;
}

void serializeDataset(const Dataset &D, ByteWriter &W) {
  std::vector<double> Means(D.Norm.numDims()), Stds(D.Norm.numDims());
  for (size_t I = 0; I != D.Norm.numDims(); ++I) {
    Means[I] = D.Norm.mean(I);
    Stds[I] = D.Norm.stddev(I);
  }
  W.writeDoubles(Means);
  W.writeDoubles(Stds);
  writeConfigs(W, D.TrainPool);
  writeConfigs(W, D.TestConfigs);
  W.writeU64(D.TestFeatures.size());
  for (const std::vector<double> &Row : D.TestFeatures)
    W.writeDoubles(Row);
  W.writeDoubles(D.TestMeans);
}

bool deserializeDataset(ByteReader &R, Dataset &D) {
  std::vector<double> Means, Stds;
  if (!R.readDoubles(Means) || !R.readDoubles(Stds) ||
      Means.size() != Stds.size())
    return false;
  for (double Sd : Stds)
    if (!(Sd > 0.0))
      return false;
  D.Norm = Normalizer::fromMoments(std::move(Means), std::move(Stds));
  if (!readConfigs(R, D.TrainPool) || !readConfigs(R, D.TestConfigs))
    return false;
  uint64_t NumRows;
  if (!R.readU64(NumRows) || NumRows > R.remaining() / 8)
    return false;
  D.TestFeatures.clear();
  D.TestFeatures.resize(size_t(NumRows));
  for (std::vector<double> &Row : D.TestFeatures)
    if (!R.readDoubles(Row))
      return false;
  if (!R.readDoubles(D.TestMeans))
    return false;
  // Cross-field sanity: the blob must describe one coherent dataset.
  return R.ok() && R.atEnd() && D.TestFeatures.size() == D.TestConfigs.size() &&
         D.TestMeans.size() == D.TestConfigs.size();
}

} // namespace

Dataset alic::buildDataset(const SpaptBenchmark &B, size_t NumConfigs,
                           double TrainFraction, unsigned MeanObservations,
                           uint64_t Seed) {
  assert(TrainFraction > 0.0 && TrainFraction < 1.0 && "bad split fraction");
  Rng R(hashCombine({Seed, 0xda7a5e7ull}));
  const ParamSpace &Space = B.space();

  std::vector<Config> All = Space.sampleDistinct(R, NumConfigs);
  size_t NumTrain = size_t(double(All.size()) * TrainFraction);

  Dataset D;
  // Features are normalized over the full profiled sample (Section 4.5).
  std::vector<std::vector<double>> RawFeatures;
  RawFeatures.reserve(All.size());
  for (const Config &C : All)
    RawFeatures.push_back(Space.features(C));
  D.Norm = Normalizer::fit(RawFeatures);

  D.TrainPool.assign(All.begin(), All.begin() + NumTrain);
  D.TestConfigs.assign(All.begin() + NumTrain, All.end());

  // Test labels: observed means over MeanObservations noisy runs, using a
  // measurement stream independent of any learner's profiler.
  D.TestFeatures.reserve(D.TestConfigs.size());
  D.TestMeans.reserve(D.TestConfigs.size());
  for (const Config &C : D.TestConfigs) {
    D.TestFeatures.push_back(D.Norm.transform(Space.features(C)));
    double Mean = B.meanRuntimeSeconds(C);
    double SigmaRel = noiseSigmaRel(B.noise(), Space, C);
    uint64_t Stream = hashCombine({Seed, Space.key(C), 0x7e57ull});
    double Sum = 0.0;
    for (unsigned O = 0; O != MeanObservations; ++O)
      Sum += drawMeasurement(B.noise(), Mean, SigmaRel, Stream, O);
    D.TestMeans.push_back(Sum / double(MeanObservations));
  }
  return D;
}

Dataset alic::loadOrBuildDataset(const SpaptBenchmark &B, size_t NumConfigs,
                                 double TrainFraction,
                                 unsigned MeanObservations, uint64_t Seed,
                                 const std::string &CacheDir) {
  if (CacheDir.empty())
    return buildDataset(B, NumConfigs, TrainFraction, MeanObservations, Seed);

  uint64_t Key =
      datasetCacheKey(B, NumConfigs, TrainFraction, MeanObservations, Seed);
  std::string Path = CacheDir + "/" + B.name() + "_" +
                     formatString("%016llx", (unsigned long long)Key) + ".alds";

  ByteReader Reader({});
  if (ByteReader::fromFile(Path, Reader)) {
    uint32_t Magic, Version;
    uint64_t StoredKey;
    Dataset Cached;
    if (Reader.readU32(Magic) && Magic == DatasetBlobMagic &&
        Reader.readU32(Version) && Version == DatasetBlobVersion &&
        Reader.readU64(StoredKey) && StoredKey == Key &&
        deserializeDataset(Reader, Cached))
      return Cached;
    // Stale or corrupt entry: fall through and rebuild it below.
  }

  Dataset Fresh =
      buildDataset(B, NumConfigs, TrainFraction, MeanObservations, Seed);
  std::error_code Ec;
  std::filesystem::create_directories(CacheDir, Ec);
  ByteWriter Writer;
  Writer.writeU32(DatasetBlobMagic);
  Writer.writeU32(DatasetBlobVersion);
  Writer.writeU64(Key);
  serializeDataset(Fresh, Writer);
  // Best effort: a failed write only costs the next run a rebuild, but
  // say so — a silently unpopulated cache looks like a perf regression.
  Status St = Writer.writeFileDurable(Path);
  if (!St.ok())
    std::fprintf(stderr, "alic: dataset cache write skipped: %s (errno %d)\n",
                 St.message().c_str(), St.errnoValue());
  return Fresh;
}

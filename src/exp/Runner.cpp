//===- exp/Runner.cpp -----------------------------------------*- C++ -*-===//

#include "exp/Runner.h"

#include "dynatree/DynaTree.h"
#include "gp/GaussianProcess.h"
#include "stats/Metrics.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace alic;

namespace {

/// Oracle adapter that scales the benchmark's noise (the paper's
/// future-work experiment: "artificially introducing noise into the
/// system to see how robustly it performs in extreme cases").
class ScaledNoiseOracle : public WorkloadOracle {
public:
  ScaledNoiseOracle(const SpaptBenchmark &B, double NoiseScale)
      : B(B), Noise(B.noise()) {
    Noise.BaseRelSigma *= NoiseScale;
    Noise.BurstMeanRel *= NoiseScale;
  }

  const ParamSpace &space() const override { return B.space(); }
  double meanRuntimeSeconds(const Config &C) const override {
    return B.meanRuntimeSeconds(C);
  }
  double compileSeconds(const Config &C) const override {
    return B.compileSeconds(C);
  }
  const NoiseProfile &noise() const override { return Noise; }

private:
  const SpaptBenchmark &B;
  NoiseProfile Noise;
};

} // namespace

std::unique_ptr<SurrogateModel>
alic::makeSurrogateModel(ModelKind Kind, const ExperimentScale &S,
                         uint64_t Seed) {
  if (Kind == ModelKind::Gp || Kind == ModelKind::GpSor) {
    GpConfig G;
    // Same hyperparameter-search stream for both GP modes, so the SoR
    // ablation isolates the inference approximation, not the seed.
    G.Seed = hashCombine({Seed, 0x6770ull});
    if (Kind == ModelKind::GpSor)
      G.Approx = GpApprox::SoR;
    return std::make_unique<GaussianProcess>(G);
  }
  DynaTreeConfig C;
  C.NumParticles = S.Particles;
  C.Seed = hashCombine({Seed, 0xd7ull});
  return std::make_unique<DynaTree>(C);
}

RunResult alic::runLearning(const SpaptBenchmark &B, const Dataset &D,
                            SamplingPlan Plan, const ExperimentScale &S,
                            uint64_t Seed, const RunOptions &Options) {
  ScaledNoiseOracle Oracle(B, Options.NoiseScale);
  std::unique_ptr<SurrogateModel> Model =
      makeSurrogateModel(Options.Model, S, Seed);

  ActiveLearnerConfig Cfg = Options.Learner;
  S.applyTo(Cfg);
  Cfg.Seed = Seed;

  ActiveLearner Learner(Oracle, *Model, D.Norm, D.TrainPool, Plan, Cfg,
                        Options.Workers);

  // Fixed evaluation subset, identical across plans and seeds.
  size_t NumEval = std::min(S.TestSubset, D.TestFeatures.size());
  assert(NumEval > 0 && "empty test subset");

  auto evalRmse = [&]() {
    // Batched so the GP streams its factor rows once per block instead
    // of once per test point; bit-identical to per-point predict().
    std::vector<Prediction> Preds(NumEval);
    Model->predictBatch(D.TestFeatures, NumEval, Preds.data());
    std::vector<double> Pred(NumEval), Actual(NumEval);
    for (size_t I = 0; I != NumEval; ++I) {
      Pred[I] = Preds[I].Mean;
      Actual[I] = D.TestMeans[I];
    }
    return rootMeanSquaredError(Pred, Actual);
  };

  RunResult Result;
  Learner.step(); // seeding phase
  Result.Curve.push_back(
      {0, Learner.cumulativeCostSeconds(), evalRmse()});

  while (Learner.step()) {
    size_t Iter = Learner.stats().Iterations;
    if (Iter % S.EvalEvery == 0 || Learner.done())
      Result.Curve.push_back(
          {Iter, Learner.cumulativeCostSeconds(), evalRmse()});
  }
  if (Result.Curve.back().Iteration != Learner.stats().Iterations)
    Result.Curve.push_back({Learner.stats().Iterations,
                            Learner.cumulativeCostSeconds(), evalRmse()});

  Result.Stats = Learner.stats();
  Result.FinalRmse = Result.Curve.back().Rmse;
  Result.TotalCostSeconds = Learner.cumulativeCostSeconds();
  return Result;
}

RunResult alic::runAveraged(const SpaptBenchmark &B, const Dataset &D,
                            SamplingPlan Plan, const ExperimentScale &S,
                            uint64_t BaseSeed, const RunOptions &Options) {
  assert(S.Repetitions >= 1 && "need at least one repetition");
  std::vector<RunResult> Runs;
  Runs.reserve(S.Repetitions);
  for (unsigned Rep = 0; Rep != S.Repetitions; ++Rep)
    Runs.push_back(runLearning(B, D, Plan, S,
                               hashCombine({BaseSeed, uint64_t(Rep)}),
                               Options));
  return averageRuns(Runs);
}

RunResult alic::averageRuns(const std::vector<RunResult> &Runs) {
  assert(!Runs.empty() && "need at least one run");
  // Average pointwise; runs share the iteration grid, so clip to the
  // shortest curve (pool exhaustion can shorten a run).
  size_t MinLen = Runs.front().Curve.size();
  for (const RunResult &R : Runs)
    MinLen = std::min(MinLen, R.Curve.size());

  RunResult Avg;
  Avg.Curve.resize(MinLen);
  for (size_t P = 0; P != MinLen; ++P) {
    CurvePoint &Out = Avg.Curve[P];
    Out.Iteration = Runs.front().Curve[P].Iteration;
    for (const RunResult &R : Runs) {
      Out.CostSeconds += R.Curve[P].CostSeconds;
      Out.Rmse += R.Curve[P].Rmse;
    }
    Out.CostSeconds /= double(Runs.size());
    Out.Rmse /= double(Runs.size());
  }
  for (const RunResult &R : Runs) {
    Avg.Stats.Iterations += R.Stats.Iterations;
    Avg.Stats.DistinctExamples += R.Stats.DistinctExamples;
    Avg.Stats.Revisits += R.Stats.Revisits;
    Avg.Stats.Observations += R.Stats.Observations;
    Avg.Stats.Skips += R.Stats.Skips;
    Avg.FinalRmse += R.FinalRmse;
    Avg.TotalCostSeconds += R.TotalCostSeconds;
  }
  size_t N = Runs.size();
  Avg.Stats.Iterations /= N;
  Avg.Stats.DistinctExamples /= N;
  Avg.Stats.Revisits /= N;
  Avg.Stats.Observations /= N;
  Avg.Stats.Skips /= N;
  Avg.FinalRmse /= double(N);
  Avg.TotalCostSeconds /= double(N);
  return Avg;
}

PlanComparison alic::compareCurves(const RunResult &Baseline,
                                   const RunResult &Ours) {
  auto minRmse = [](const RunResult &R) {
    double Min = R.Curve.front().Rmse;
    for (const CurvePoint &P : R.Curve)
      Min = std::min(Min, P.Rmse);
    return Min;
  };
  PlanComparison Cmp;
  Cmp.LowestCommonRmse = std::max(minRmse(Baseline), minRmse(Ours));
  const double Eps = 1e-12;
  auto firstCostReaching = [&](const RunResult &R) {
    for (const CurvePoint &P : R.Curve)
      if (P.Rmse <= Cmp.LowestCommonRmse + Eps)
        return P.CostSeconds;
    return R.Curve.back().CostSeconds;
  };
  Cmp.BaselineCostSeconds = firstCostReaching(Baseline);
  Cmp.OursCostSeconds = firstCostReaching(Ours);
  Cmp.Speedup = Cmp.OursCostSeconds > 0.0
                    ? Cmp.BaselineCostSeconds / Cmp.OursCostSeconds
                    : 0.0;
  return Cmp;
}

//===- spapt/Suite.h - Registry of the eleven benchmarks ------*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Factory for the paper's eleven SPAPT search problems at their full
/// problem sizes, with per-benchmark noise profiles calibrated against the
/// spread reported in Table 2 (quiet suites like lu/mvt/mm, extremely
/// noisy ones like correlation, broad noisy regions for adi).
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_SPAPT_SUITE_H
#define ALIC_SPAPT_SUITE_H

#include "spapt/Benchmark.h"

#include <memory>
#include <string>
#include <vector>

namespace alic {

/// Names of the eleven benchmarks, in the paper's Table 1 order.
const std::vector<std::string> &spaptBenchmarkNames();

/// Instantiates one benchmark by name; aborts on unknown names.
std::unique_ptr<SpaptBenchmark> createSpaptBenchmark(const std::string &Name);

/// Instantiates the whole suite in Table 1 order.
std::vector<std::unique_ptr<SpaptBenchmark>> createSpaptSuite();

} // namespace alic

#endif // ALIC_SPAPT_SUITE_H

//===- spapt/Kernels.h - The eleven SPAPT kernel builders -----*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IR builders for the eleven SPAPT search problems the paper evaluates
/// (Table 1): adi, atax, bicgkernel, correlation, dgemv3, gemver, hessian,
/// jacobi, lu, mm, mvt.  Each builder returns the kernel's loop nests plus
/// the tunable parameters bound to its loops; the parameter ranges are
/// chosen so the space cardinalities match Table 1 of the paper (see
/// EXPERIMENTS.md for the exact values side by side).
///
/// Builders take explicit problem dimensions: Suite.cpp instantiates the
/// full-size spaces, while the tests interpret miniature instances (the
/// kernels' semantics do not depend on the dimensions).
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_SPAPT_KERNELS_H
#define ALIC_SPAPT_KERNELS_H

#include "ir/Kernel.h"
#include "tunable/ParamSpace.h"

#include <cstdint>

namespace alic {

/// A kernel together with the tunable parameters bound to its loops.
struct KernelBundle {
  Kernel K;
  std::vector<Param> Params;

  KernelBundle(Kernel K, std::vector<Param> Params)
      : K(std::move(K)), Params(std::move(Params)) {}
};

/// Dense matrix multiplication C += A * B (N x N).
KernelBundle buildMm(int64_t N);

/// Matrix-vector products x1 += A y1 and x2 += A^T y2.
KernelBundle buildMvt(int64_t N);

/// 2D Jacobi 5-point stencil with explicit copy-back, T timesteps.
KernelBundle buildJacobi(int64_t N, int64_t T);

/// Hessian-like 2D second-difference stencil.
KernelBundle buildHessian(int64_t N);

/// LU decomposition (right-looking, no pivoting).
KernelBundle buildLu(int64_t N);

/// BiCG kernel: q += A p and s += A^T r fused in one sweep.
KernelBundle buildBicgkernel(int64_t N);

/// atax: y = A^T (A x) via an explicit temporary.
KernelBundle buildAtax(int64_t N);

/// ADI-style alternating row/column sweeps, T timesteps.
KernelBundle buildAdi(int64_t N, int64_t T);

/// Correlation matrix: column means, centring, cross products.
KernelBundle buildCorrelation(int64_t M, int64_t N);

/// gemver composite BLAS-2 sequence.
KernelBundle buildGemver(int64_t N);

/// dgemv3: three chained matrix-vector products with vector updates.
KernelBundle buildDgemv3(int64_t N);

} // namespace alic

#endif // ALIC_SPAPT_KERNELS_H

//===- spapt/Benchmark.h - One SPAPT search problem ------------*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Couples one kernel, its tunable space, the analytic machine model, and
/// a calibrated noise profile into the WorkloadOracle the learners drive.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_SPAPT_BENCHMARK_H
#define ALIC_SPAPT_BENCHMARK_H

#include "machine/CostModel.h"
#include "measure/Profiler.h"
#include "spapt/Kernels.h"

#include <memory>
#include <string>

namespace alic {

/// One SPAPT search problem, usable as a measurement oracle.
class SpaptBenchmark : public WorkloadOracle {
public:
  /// \p RuntimeCalibration rescales the model's runtime so baseline
  /// configurations land at magnitudes comparable to the paper's reported
  /// error/runtime scales.
  SpaptBenchmark(KernelBundle Bundle, NoiseProfile Noise,
                 double RuntimeCalibration = 1.0,
                 MachineDesc Machine = MachineDesc::i7Haswell());

  const std::string &name() const { return K.name(); }
  const Kernel &kernel() const { return K; }
  const CostModel &costModel() const { return Model; }

  // WorkloadOracle interface.
  const ParamSpace &space() const override { return Space; }
  double meanRuntimeSeconds(const Config &C) const override;
  double compileSeconds(const Config &C) const override;
  const NoiseProfile &noise() const override { return Noise; }

  /// Full cost breakdown (diagnostics/benches).
  CostBreakdown costBreakdown(const Config &C) const;

  /// The configuration with every factor = 1 (plain -O2 baseline).
  Config baselineConfig() const;

private:
  Kernel K;
  ParamSpace Space;
  NoiseProfile Noise;
  double RuntimeCalibration;
  CostModel Model;
};

} // namespace alic

#endif // ALIC_SPAPT_BENCHMARK_H

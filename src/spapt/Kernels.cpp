//===- spapt/Kernels.cpp --------------------------------------*- C++ -*-===//
//
// IR builders for the eleven SPAPT kernels.  Parameter ranges are sized so
// that each space's cardinality matches the paper's Table 1 (documented in
// EXPERIMENTS.md); loop-bound parameters carry the LoopVarId they act on.
//
//===----------------------------------------------------------------------===//

#include "spapt/Kernels.h"

#include "support/Error.h"

#include <cassert>

using namespace alic;

namespace {

AffineExpr cst(int64_t V) { return AffineExpr::constant(V); }
AffineExpr vr(LoopVarId V) { return AffineExpr::var(V); }
AffineExpr vp(LoopVarId V, int64_t Off) {
  return AffineExpr::scaledVar(V, 1, Off);
}

ArrayAccess acc1(unsigned Arr, AffineExpr S0) {
  return ArrayAccess(Arr, {std::move(S0)});
}
ArrayAccess acc2(unsigned Arr, AffineExpr S0, AffineExpr S1) {
  return ArrayAccess(Arr, {std::move(S0), std::move(S1)});
}

std::unique_ptr<LoopNode> mkLoop(LoopVarId V, AffineExpr Lo, AffineExpr Hi) {
  return std::make_unique<LoopNode>(V, std::move(Lo), std::move(Hi), 1);
}

/// write (+)= Scale * prod(reads)
std::unique_ptr<StmtNode> prodStmt(ArrayAccess Write, bool Accumulate,
                                   std::vector<ArrayAccess> Reads,
                                   double Scale = 1.0) {
  std::vector<ReadTerm> Terms;
  Terms.reserve(Reads.size());
  for (ArrayAccess &R : Reads)
    Terms.push_back({std::move(R), 1.0});
  return std::make_unique<StmtNode>(std::move(Write), Accumulate,
                                    RhsKind::Product, std::move(Terms), Scale);
}

/// write (+)= sum(coeff_i * read_i)
std::unique_ptr<StmtNode>
sumStmt(ArrayAccess Write, bool Accumulate,
        std::vector<std::pair<ArrayAccess, double>> Reads) {
  std::vector<ReadTerm> Terms;
  Terms.reserve(Reads.size());
  for (auto &[R, C] : Reads)
    Terms.push_back({std::move(R), C});
  return std::make_unique<StmtNode>(std::move(Write), Accumulate, RhsKind::Sum,
                                    std::move(Terms));
}

/// Unroll factor 1..30 bound to \p Loop — SPAPT's standard unroll range.
Param unroll(const char *Name, LoopVarId Loop) {
  return Param::range(Name, ParamKind::Unroll, 1, 30, 1,
                      static_cast<int>(Loop));
}

/// Register-tile factor 1..30 bound to \p Loop.
Param regTile(const char *Name, LoopVarId Loop) {
  return Param::range(Name, ParamKind::RegisterTile, 1, 30, 1,
                      static_cast<int>(Loop));
}

/// Cache-tile sizes {1, Step, 2*Step, ...} with \p Count values in total.
Param cacheTile(const char *Name, LoopVarId Loop, int Step, int Count) {
  assert(Count >= 2 && "tile parameter needs at least two values");
  std::vector<int> Values;
  Values.reserve(static_cast<size_t>(Count));
  Values.push_back(1);
  for (int I = 1; I != Count; ++I)
    Values.push_back(I * Step);
  return Param::fromValues(Name, ParamKind::CacheTile, std::move(Values),
                           static_cast<int>(Loop));
}

} // namespace

KernelBundle alic::buildMm(int64_t N) {
  Kernel K("mm");
  unsigned A = K.addArray("A", {N, N});
  unsigned B = K.addArray("B", {N, N});
  unsigned C = K.addArray("C", {N, N});
  LoopVarId I1 = K.addLoopVar("i1");
  LoopVarId I2 = K.addLoopVar("i2");
  LoopVarId I3 = K.addLoopVar("i3");

  auto Li1 = mkLoop(I1, cst(0), cst(N));
  auto Li2 = mkLoop(I2, cst(0), cst(N));
  auto Li3 = mkLoop(I3, cst(0), cst(N));
  Li3->append(prodStmt(acc2(C, vr(I1), vr(I2)), /*Accumulate=*/true,
                       {acc2(A, vr(I1), vr(I3)), acc2(B, vr(I3), vr(I2))}));
  Li2->append(std::move(Li3));
  Li1->append(std::move(Li2));
  K.appendTopLevel(std::move(Li1));
  K.verify();

  std::vector<Param> Params;
  Params.push_back(unroll("U_i1", I1));
  Params.push_back(unroll("U_i2", I2));
  Params.push_back(unroll("U_i3", I3));
  Params.push_back(cacheTile("T_i1", I1, 4, 49));
  Params.push_back(cacheTile("T_i2", I2, 4, 49));
  Params.push_back(cacheTile("T_i3", I3, 4, 49));
  return KernelBundle(std::move(K), std::move(Params));
}

KernelBundle alic::buildMvt(int64_t N) {
  Kernel K("mvt");
  unsigned A = K.addArray("A", {N, N});
  unsigned X1 = K.addArray("x1", {N});
  unsigned Y1 = K.addArray("y1", {N});
  unsigned X2 = K.addArray("x2", {N});
  unsigned Y2 = K.addArray("y2", {N});
  LoopVarId I1 = K.addLoopVar("i1");
  LoopVarId I2 = K.addLoopVar("i2");
  LoopVarId I3 = K.addLoopVar("i3");
  LoopVarId I4 = K.addLoopVar("i4");

  auto Li1 = mkLoop(I1, cst(0), cst(N));
  auto Li2 = mkLoop(I2, cst(0), cst(N));
  Li2->append(prodStmt(acc1(X1, vr(I1)), true,
                       {acc2(A, vr(I1), vr(I2)), acc1(Y1, vr(I2))}));
  Li1->append(std::move(Li2));
  K.appendTopLevel(std::move(Li1));

  auto Li3 = mkLoop(I3, cst(0), cst(N));
  auto Li4 = mkLoop(I4, cst(0), cst(N));
  Li4->append(prodStmt(acc1(X2, vr(I3)), true,
                       {acc2(A, vr(I4), vr(I3)), acc1(Y2, vr(I4))}));
  Li3->append(std::move(Li4));
  K.appendTopLevel(std::move(Li3));
  K.verify();

  std::vector<Param> Params;
  Params.push_back(unroll("U_i1", I1));
  Params.push_back(unroll("U_i3", I3));
  Params.push_back(regTile("RT_i2", I2));
  Params.push_back(cacheTile("T_i2", I2, 8, 27));
  Params.push_back(cacheTile("T_i4", I4, 8, 27));
  return KernelBundle(std::move(K), std::move(Params));
}

KernelBundle alic::buildJacobi(int64_t N, int64_t T) {
  Kernel K("jacobi");
  unsigned A = K.addArray("A", {N, N});
  unsigned B = K.addArray("B", {N, N});
  LoopVarId Tv = K.addLoopVar("t");
  LoopVarId I1 = K.addLoopVar("i1");
  LoopVarId J1 = K.addLoopVar("j1");
  LoopVarId I2 = K.addLoopVar("i2");
  LoopVarId J2 = K.addLoopVar("j2");

  auto Lt = mkLoop(Tv, cst(0), cst(T));

  auto Li1 = mkLoop(I1, cst(1), cst(N - 1));
  auto Lj1 = mkLoop(J1, cst(1), cst(N - 1));
  Lj1->append(sumStmt(acc2(B, vr(I1), vr(J1)), false,
                      {{acc2(A, vr(I1), vr(J1)), 0.2},
                       {acc2(A, vp(I1, -1), vr(J1)), 0.2},
                       {acc2(A, vp(I1, 1), vr(J1)), 0.2},
                       {acc2(A, vr(I1), vp(J1, -1)), 0.2},
                       {acc2(A, vr(I1), vp(J1, 1)), 0.2}}));
  Li1->append(std::move(Lj1));
  Lt->append(std::move(Li1));

  auto Li2 = mkLoop(I2, cst(1), cst(N - 1));
  auto Lj2 = mkLoop(J2, cst(1), cst(N - 1));
  Lj2->append(
      sumStmt(acc2(A, vr(I2), vr(J2)), false, {{acc2(B, vr(I2), vr(J2)), 1.0}}));
  Li2->append(std::move(Lj2));
  Lt->append(std::move(Li2));

  K.appendTopLevel(std::move(Lt));
  K.verify();

  std::vector<Param> Params;
  Params.push_back(unroll("U_j1", J1));
  Params.push_back(unroll("U_j2", J2));
  Params.push_back(regTile("RT_i1", I1));
  Params.push_back(cacheTile("T_i1", I1, 8, 27));
  Params.push_back(cacheTile("T_j1", J1, 8, 27));
  return KernelBundle(std::move(K), std::move(Params));
}

KernelBundle alic::buildHessian(int64_t N) {
  Kernel K("hessian");
  unsigned F = K.addArray("f", {N, N});
  unsigned H = K.addArray("H", {N, N});
  unsigned G = K.addArray("g", {N, N});
  LoopVarId I1 = K.addLoopVar("i1");
  LoopVarId J1 = K.addLoopVar("j1");

  auto Li1 = mkLoop(I1, cst(1), cst(N - 1));
  auto Lj1 = mkLoop(J1, cst(1), cst(N - 1));
  // Second differences in both directions (a discrete Hessian trace).
  Lj1->append(sumStmt(acc2(H, vr(I1), vr(J1)), false,
                      {{acc2(F, vp(I1, 1), vr(J1)), 1.0},
                       {acc2(F, vp(I1, -1), vr(J1)), 1.0},
                       {acc2(F, vr(I1), vp(J1, 1)), 1.0},
                       {acc2(F, vr(I1), vp(J1, -1)), 1.0},
                       {acc2(F, vr(I1), vr(J1)), -4.0}}));
  Lj1->append(prodStmt(acc2(G, vr(I1), vr(J1)), false,
                       {acc2(H, vr(I1), vr(J1)), acc2(F, vr(I1), vr(J1))}));
  Li1->append(std::move(Lj1));
  K.appendTopLevel(std::move(Li1));
  K.verify();

  std::vector<Param> Params;
  Params.push_back(unroll("U_i1", I1));
  Params.push_back(unroll("U_j1", J1));
  Params.push_back(regTile("RT_j1", J1));
  Params.push_back(cacheTile("T_i1", I1, 8, 27));
  Params.push_back(cacheTile("T_j1", J1, 8, 27));
  return KernelBundle(std::move(K), std::move(Params));
}

KernelBundle alic::buildLu(int64_t N) {
  Kernel K("lu");
  unsigned A = K.addArray("A", {N, N});
  LoopVarId Kv = K.addLoopVar("k");
  LoopVarId I1 = K.addLoopVar("i1");
  LoopVarId I2 = K.addLoopVar("i2");
  LoopVarId J2 = K.addLoopVar("j2");

  auto Lk = mkLoop(Kv, cst(0), cst(N - 1));

  // Column scaling: A[i][k] *= A[k][k] (stand-in for the pivot division).
  auto Li1 = mkLoop(I1, vp(Kv, 1), cst(N));
  {
    auto Scale = prodStmt(acc2(A, vr(I1), vr(Kv)), false,
                          {acc2(A, vr(I1), vr(Kv)), acc2(A, vr(Kv), vr(Kv))},
                          0.001);
    static_cast<StmtNode *>(Scale.get())->HasDivision = true;
    Li1->append(std::move(Scale));
  }
  Lk->append(std::move(Li1));

  // Trailing submatrix update: A[i][j] -= A[i][k] * A[k][j].
  auto Li2 = mkLoop(I2, vp(Kv, 1), cst(N));
  auto Lj2 = mkLoop(J2, vp(Kv, 1), cst(N));
  Lj2->append(prodStmt(acc2(A, vr(I2), vr(J2)), true,
                       {acc2(A, vr(I2), vr(Kv)), acc2(A, vr(Kv), vr(J2))},
                       -0.001));
  Li2->append(std::move(Lj2));
  Lk->append(std::move(Li2));

  K.appendTopLevel(std::move(Lk));
  K.verify();

  std::vector<Param> Params;
  Params.push_back(unroll("U_i2", I2));
  Params.push_back(unroll("U_j2", J2));
  Params.push_back(regTile("RT_i2", I2));
  Params.push_back(regTile("RT_j2", J2));
  Params.push_back(cacheTile("T_i2", I2, 16, 24));
  Params.push_back(cacheTile("T_j2", J2, 8, 30));
  return KernelBundle(std::move(K), std::move(Params));
}

KernelBundle alic::buildBicgkernel(int64_t N) {
  Kernel K("bicgkernel");
  unsigned A = K.addArray("A", {N, N});
  unsigned P = K.addArray("p", {N});
  unsigned Q = K.addArray("q", {N});
  unsigned R = K.addArray("r", {N});
  unsigned S = K.addArray("s", {N});
  LoopVarId I1 = K.addLoopVar("i1");
  LoopVarId J1 = K.addLoopVar("j1");

  auto Li1 = mkLoop(I1, cst(0), cst(N));
  auto Lj1 = mkLoop(J1, cst(0), cst(N));
  Lj1->append(prodStmt(acc1(Q, vr(I1)), true,
                       {acc2(A, vr(I1), vr(J1)), acc1(P, vr(J1))}));
  Lj1->append(prodStmt(acc1(S, vr(J1)), true,
                       {acc1(R, vr(I1)), acc2(A, vr(I1), vr(J1))}));
  Li1->append(std::move(Lj1));
  K.appendTopLevel(std::move(Li1));
  K.verify();

  std::vector<Param> Params;
  Params.push_back(unroll("U_i1", I1));
  Params.push_back(unroll("U_j1", J1));
  Params.push_back(regTile("RT_i1", I1));
  Params.push_back(regTile("RT_j1", J1));
  Params.push_back(cacheTile("T_i1", I1, 16, 24));
  Params.push_back(cacheTile("T_j1", J1, 8, 30));
  return KernelBundle(std::move(K), std::move(Params));
}

KernelBundle alic::buildAtax(int64_t N) {
  Kernel K("atax");
  unsigned A = K.addArray("A", {N, N});
  unsigned X = K.addArray("x", {N});
  unsigned Y = K.addArray("y", {N});
  unsigned Tmp = K.addArray("tmp", {N});
  LoopVarId I1 = K.addLoopVar("i1");
  LoopVarId J1 = K.addLoopVar("j1");
  LoopVarId I2 = K.addLoopVar("i2");
  LoopVarId J2 = K.addLoopVar("j2");

  auto Li1 = mkLoop(I1, cst(0), cst(N));
  auto Lj1 = mkLoop(J1, cst(0), cst(N));
  Lj1->append(prodStmt(acc1(Tmp, vr(I1)), true,
                       {acc2(A, vr(I1), vr(J1)), acc1(X, vr(J1))}));
  Li1->append(std::move(Lj1));
  K.appendTopLevel(std::move(Li1));

  auto Li2 = mkLoop(I2, cst(0), cst(N));
  auto Lj2 = mkLoop(J2, cst(0), cst(N));
  Lj2->append(prodStmt(acc1(Y, vr(J2)), true,
                       {acc2(A, vr(I2), vr(J2)), acc1(Tmp, vr(I2))}));
  Li2->append(std::move(Lj2));
  K.appendTopLevel(std::move(Li2));
  K.verify();

  std::vector<Param> Params;
  Params.push_back(unroll("U_i1", I1));
  Params.push_back(unroll("U_j1", J1));
  Params.push_back(unroll("U_i2", I2));
  Params.push_back(unroll("U_j2", J2));
  Params.push_back(cacheTile("T_i1", I1, 4, 43));
  Params.push_back(cacheTile("T_j1", J1, 4, 42));
  Params.push_back(cacheTile("T_i2", I2, 4, 42));
  Params.push_back(cacheTile("T_j2", J2, 4, 42));
  return KernelBundle(std::move(K), std::move(Params));
}

KernelBundle alic::buildAdi(int64_t N, int64_t T) {
  Kernel K("adi");
  unsigned X = K.addArray("X", {N, N});
  unsigned A = K.addArray("A", {N, N});
  unsigned B = K.addArray("B", {N, N});
  LoopVarId Tv = K.addLoopVar("t");
  LoopVarId I1 = K.addLoopVar("i1");
  LoopVarId J1 = K.addLoopVar("j1");
  LoopVarId I2 = K.addLoopVar("i2");
  LoopVarId J2 = K.addLoopVar("j2");
  LoopVarId I3 = K.addLoopVar("i3");
  LoopVarId J3 = K.addLoopVar("j3");
  LoopVarId I4 = K.addLoopVar("i4");
  LoopVarId J4 = K.addLoopVar("j4");

  auto Lt = mkLoop(Tv, cst(0), cst(T));

  // Row sweep: recurrence along j.
  auto Li1 = mkLoop(I1, cst(0), cst(N));
  auto Lj1 = mkLoop(J1, cst(1), cst(N));
  {
    auto Sweep = prodStmt(acc2(X, vr(I1), vr(J1)), true,
                          {acc2(X, vr(I1), vp(J1, -1)), acc2(A, vr(I1), vr(J1))},
                          -0.1);
    static_cast<StmtNode *>(Sweep.get())->HasDivision = true;
    Lj1->append(std::move(Sweep));
  }
  Li1->append(std::move(Lj1));
  Lt->append(std::move(Li1));

  // Row normalization-ish pass.
  auto Li2 = mkLoop(I2, cst(0), cst(N));
  auto Lj2 = mkLoop(J2, cst(0), cst(N));
  Lj2->append(prodStmt(acc2(B, vr(I2), vr(J2)), true,
                       {acc2(X, vr(I2), vr(J2)), acc2(A, vr(I2), vr(J2))},
                       0.05));
  Li2->append(std::move(Lj2));
  Lt->append(std::move(Li2));

  // Column sweep: recurrence along i.
  auto Li3 = mkLoop(I3, cst(1), cst(N));
  auto Lj3 = mkLoop(J3, cst(0), cst(N));
  {
    auto Sweep = prodStmt(acc2(X, vr(I3), vr(J3)), true,
                          {acc2(X, vp(I3, -1), vr(J3)), acc2(A, vr(I3), vr(J3))},
                          -0.1);
    static_cast<StmtNode *>(Sweep.get())->HasDivision = true;
    Lj3->append(std::move(Sweep));
  }
  Li3->append(std::move(Lj3));
  Lt->append(std::move(Li3));

  // Column combine pass.
  auto Li4 = mkLoop(I4, cst(1), cst(N));
  auto Lj4 = mkLoop(J4, cst(0), cst(N));
  Lj4->append(prodStmt(acc2(B, vr(I4), vr(J4)), true,
                       {acc2(X, vr(I4), vr(J4)), acc2(B, vp(I4, -1), vr(J4))},
                       0.05));
  Li4->append(std::move(Lj4));
  Lt->append(std::move(Li4));

  K.appendTopLevel(std::move(Lt));
  K.verify();

  std::vector<Param> Params;
  Params.push_back(unroll("U_i1", I1));
  Params.push_back(unroll("U_j1", J1));
  Params.push_back(unroll("U_i2", I2));
  Params.push_back(unroll("U_j2", J2));
  Params.push_back(unroll("U_i3", I3));
  Params.push_back(unroll("U_j3", J3));
  Params.push_back(unroll("U_i4", I4));
  Params.push_back(unroll("U_j4", J4));
  Params.push_back(cacheTile("T_i2", I2, 8, 24));
  Params.push_back(cacheTile("T_j4", J4, 8, 24));
  return KernelBundle(std::move(K), std::move(Params));
}

KernelBundle alic::buildCorrelation(int64_t M, int64_t N) {
  Kernel K("correlation");
  unsigned Data = K.addArray("data", {M, N});
  unsigned Mean = K.addArray("mean", {N});
  unsigned Stddev = K.addArray("stddev", {N});
  unsigned Corr = K.addArray("corr", {N, N});
  LoopVarId J1 = K.addLoopVar("j1");
  LoopVarId I1 = K.addLoopVar("i1");
  LoopVarId J2 = K.addLoopVar("j2");
  LoopVarId I2 = K.addLoopVar("i2");
  LoopVarId I3 = K.addLoopVar("i3");
  LoopVarId J3 = K.addLoopVar("j3");
  LoopVarId J4 = K.addLoopVar("j4");
  LoopVarId J5 = K.addLoopVar("j5");
  LoopVarId I4 = K.addLoopVar("i4");

  // Column means.
  auto Lj1 = mkLoop(J1, cst(0), cst(N));
  auto Li1 = mkLoop(I1, cst(0), cst(M));
  Li1->append(sumStmt(acc1(Mean, vr(J1)), true,
                      {{acc2(Data, vr(I1), vr(J1)), 1.0 / double(M)}}));
  Lj1->append(std::move(Li1));
  K.appendTopLevel(std::move(Lj1));

  // Column second moments.
  auto Lj2 = mkLoop(J2, cst(0), cst(N));
  auto Li2 = mkLoop(I2, cst(0), cst(M));
  Li2->append(prodStmt(acc1(Stddev, vr(J2)), true,
                       {acc2(Data, vr(I2), vr(J2)), acc2(Data, vr(I2), vr(J2))},
                       1.0 / double(M)));
  Lj2->append(std::move(Li2));
  K.appendTopLevel(std::move(Lj2));

  // Centring.
  auto Li3 = mkLoop(I3, cst(0), cst(M));
  auto Lj3 = mkLoop(J3, cst(0), cst(N));
  Lj3->append(
      sumStmt(acc2(Data, vr(I3), vr(J3)), true, {{acc1(Mean, vr(J3)), -1.0}}));
  Li3->append(std::move(Lj3));
  K.appendTopLevel(std::move(Li3));

  // Cross products.
  auto Lj4 = mkLoop(J4, cst(0), cst(N));
  auto Lj5 = mkLoop(J5, cst(0), cst(N));
  auto Li4 = mkLoop(I4, cst(0), cst(M));
  Li4->append(prodStmt(acc2(Corr, vr(J4), vr(J5)), true,
                       {acc2(Data, vr(I4), vr(J4)), acc2(Data, vr(I4), vr(J5))},
                       1.0 / double(M)));
  Lj5->append(std::move(Li4));
  Lj4->append(std::move(Lj5));
  K.appendTopLevel(std::move(Lj4));
  K.verify();

  std::vector<Param> Params;
  Params.push_back(unroll("U_i1", I1));
  Params.push_back(unroll("U_j2", J2));
  Params.push_back(unroll("U_i2", I2));
  Params.push_back(unroll("U_i3", I3));
  Params.push_back(unroll("U_j3", J3));
  Params.push_back(unroll("U_j4", J4));
  Params.push_back(unroll("U_j5", J5));
  Params.push_back(unroll("U_i4", I4));
  Params.push_back(cacheTile("T_j5", J5, 8, 24));
  Params.push_back(cacheTile("T_i4", I4, 8, 24));
  return KernelBundle(std::move(K), std::move(Params));
}

KernelBundle alic::buildGemver(int64_t N) {
  Kernel K("gemver");
  unsigned A = K.addArray("A", {N, N});
  unsigned U1 = K.addArray("u1", {N});
  unsigned V1 = K.addArray("v1", {N});
  unsigned U2 = K.addArray("u2", {N});
  unsigned V2 = K.addArray("v2", {N});
  unsigned Xv = K.addArray("x", {N});
  unsigned Yv = K.addArray("y", {N});
  unsigned Zv = K.addArray("z", {N});
  unsigned Wv = K.addArray("w", {N});
  LoopVarId I1 = K.addLoopVar("i1");
  LoopVarId J1 = K.addLoopVar("j1");
  LoopVarId I2 = K.addLoopVar("i2");
  LoopVarId J2 = K.addLoopVar("j2");
  LoopVarId I3 = K.addLoopVar("i3");
  LoopVarId I4 = K.addLoopVar("i4");
  LoopVarId J4 = K.addLoopVar("j4");

  // A-hat = A + u1 v1^T + u2 v2^T.
  auto Li1 = mkLoop(I1, cst(0), cst(N));
  auto Lj1 = mkLoop(J1, cst(0), cst(N));
  Lj1->append(prodStmt(acc2(A, vr(I1), vr(J1)), true,
                       {acc1(U1, vr(I1)), acc1(V1, vr(J1))}));
  Lj1->append(prodStmt(acc2(A, vr(I1), vr(J1)), true,
                       {acc1(U2, vr(I1)), acc1(V2, vr(J1))}));
  Li1->append(std::move(Lj1));
  K.appendTopLevel(std::move(Li1));

  // x += beta * A^T y.
  auto Li2 = mkLoop(I2, cst(0), cst(N));
  auto Lj2 = mkLoop(J2, cst(0), cst(N));
  Lj2->append(prodStmt(acc1(Xv, vr(I2)), true,
                       {acc2(A, vr(J2), vr(I2)), acc1(Yv, vr(J2))}, 0.9));
  Li2->append(std::move(Lj2));
  K.appendTopLevel(std::move(Li2));

  // x += z.
  auto Li3 = mkLoop(I3, cst(0), cst(N));
  Li3->append(sumStmt(acc1(Xv, vr(I3)), true, {{acc1(Zv, vr(I3)), 1.0}}));
  K.appendTopLevel(std::move(Li3));

  // w += alpha * A x.
  auto Li4 = mkLoop(I4, cst(0), cst(N));
  auto Lj4 = mkLoop(J4, cst(0), cst(N));
  Lj4->append(prodStmt(acc1(Wv, vr(I4)), true,
                       {acc2(A, vr(I4), vr(J4)), acc1(Xv, vr(J4))}, 1.1));
  Li4->append(std::move(Lj4));
  K.appendTopLevel(std::move(Li4));
  K.verify();

  std::vector<Param> Params;
  Params.push_back(unroll("U_i1", I1));
  Params.push_back(unroll("U_j1", J1));
  Params.push_back(unroll("U_i2", I2));
  Params.push_back(unroll("U_j2", J2));
  Params.push_back(unroll("U_i3", I3));
  Params.push_back(unroll("U_i4", I4));
  Params.push_back(unroll("U_j4", J4));
  Params.push_back(regTile("RT_j2", J2));
  Params.push_back(regTile("RT_j4", J4));
  Params.push_back(cacheTile("T_j1", J1, 8, 24));
  Params.push_back(cacheTile("T_j2", J2, 8, 24));
  return KernelBundle(std::move(K), std::move(Params));
}

KernelBundle alic::buildDgemv3(int64_t N) {
  Kernel K("dgemv3");
  unsigned A = K.addArray("A", {N, N});
  unsigned B = K.addArray("B", {N, N});
  unsigned C = K.addArray("C", {N, N});
  unsigned X1 = K.addArray("x1", {N});
  unsigned X2 = K.addArray("x2", {N});
  unsigned X3 = K.addArray("x3", {N});
  unsigned Y1 = K.addArray("y1", {N});
  unsigned Y2 = K.addArray("y2", {N});
  unsigned Y3 = K.addArray("y3", {N});
  LoopVarId I1 = K.addLoopVar("i1");
  LoopVarId J1 = K.addLoopVar("j1");
  LoopVarId I2 = K.addLoopVar("i2");
  LoopVarId J2 = K.addLoopVar("j2");
  LoopVarId I3 = K.addLoopVar("i3");
  LoopVarId J3 = K.addLoopVar("j3");
  LoopVarId I4 = K.addLoopVar("i4");
  LoopVarId I5 = K.addLoopVar("i5");
  LoopVarId I6 = K.addLoopVar("i6");

  auto addMatvec = [&](LoopVarId Iv, LoopVarId Jv, unsigned Mat, unsigned Out,
                       unsigned In) {
    auto Li = mkLoop(Iv, cst(0), cst(N));
    auto Lj = mkLoop(Jv, cst(0), cst(N));
    Lj->append(prodStmt(acc1(Out, vr(Iv)), true,
                        {acc2(Mat, vr(Iv), vr(Jv)), acc1(In, vr(Jv))}));
    Li->append(std::move(Lj));
    K.appendTopLevel(std::move(Li));
  };
  addMatvec(I1, J1, A, Y1, X1);
  addMatvec(I2, J2, B, Y2, Y1);
  addMatvec(I3, J3, C, Y3, Y2);

  auto addAxpy = [&](LoopVarId Iv, unsigned Out, unsigned In, double Coeff) {
    auto Li = mkLoop(Iv, cst(0), cst(N));
    Li->append(sumStmt(acc1(Out, vr(Iv)), true, {{acc1(In, vr(Iv)), Coeff}}));
    K.appendTopLevel(std::move(Li));
  };
  addAxpy(I4, Y1, X2, 0.3);
  addAxpy(I5, Y2, X3, 0.5);
  addAxpy(I6, Y3, Y1, 0.25);
  K.verify();

  std::vector<Param> Params;
  Params.push_back(unroll("U_i1", I1));
  Params.push_back(unroll("U_j1", J1));
  Params.push_back(unroll("U_i2", I2));
  Params.push_back(unroll("U_j2", J2));
  Params.push_back(unroll("U_i3", I3));
  Params.push_back(unroll("U_j3", J3));
  Params.push_back(unroll("U_i4", I4));
  Params.push_back(unroll("U_i5", I5));
  Params.push_back(unroll("U_i6", I6));
  Params.push_back(regTile("RT_i1", I1));
  Params.push_back(regTile("RT_j1", J1));
  Params.push_back(regTile("RT_i2", I2));
  Params.push_back(regTile("RT_j2", J2));
  Params.push_back(regTile("RT_i3", I3));
  Params.push_back(regTile("RT_j3", J3));
  Params.push_back(regTile("RT_i4", I4));
  Params.push_back(regTile("RT_i5", I5));
  Params.push_back(cacheTile("T_j1", J1, 2, 103));
  return KernelBundle(std::move(K), std::move(Params));
}

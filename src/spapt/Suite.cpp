//===- spapt/Suite.cpp ----------------------------------------*- C++ -*-===//

#include "spapt/Suite.h"

#include "support/Error.h"
#include "support/Rng.h"

using namespace alic;

const std::vector<std::string> &alic::spaptBenchmarkNames() {
  static const std::vector<std::string> Names = {
      "adi",    "atax",   "bicgkernel", "correlation", "dgemv3", "gemver",
      "hessian", "jacobi", "lu",         "mm",          "mvt"};
  return Names;
}

namespace {

/// Noise profile helper with a per-benchmark field seed.
NoiseProfile noiseFor(const char *Name, double BaseRelSigma, double Amp,
                      double Fraction, double BurstProb, double BurstMeanRel) {
  NoiseProfile P;
  P.BaseRelSigma = BaseRelSigma;
  P.RegionAmplification = Amp;
  P.RegionFraction = Fraction;
  P.BurstProbability = BurstProb;
  P.BurstMeanRel = BurstMeanRel;
  uint64_t Seed = 0x5eedf1e1d;
  for (const char *C = Name; *C; ++C)
    Seed = Seed * 131 + static_cast<uint64_t>(*C);
  P.FieldSeed = hashCombine({Seed});
  return P;
}

} // namespace

std::unique_ptr<SpaptBenchmark>
alic::createSpaptBenchmark(const std::string &Name) {
  // Noise calibration targets Table 2 of the paper: per-benchmark spreads
  // of variance and 95% CI / mean (see EXPERIMENTS.md for the comparison).
  // Broadly: correlation is extremely noisy, adi noisy over wide regions,
  // gemver/atax/dgemv3 quiet with small loud pockets, lu/mm/mvt quiet.
  if (Name == "adi")
    return std::make_unique<SpaptBenchmark>(
        buildAdi(1000, 90),
        noiseFor("adi", 0.005, 70.0, 0.50, 0.06, 0.35), 1.0);
  if (Name == "atax")
    return std::make_unique<SpaptBenchmark>(
        buildAtax(9000),
        noiseFor("atax", 0.003, 50.0, 0.08, 0.008, 0.08), 1.0);
  if (Name == "bicgkernel")
    return std::make_unique<SpaptBenchmark>(
        buildBicgkernel(8400),
        noiseFor("bicgkernel", 0.0025, 70.0, 0.07, 0.006, 0.08), 1.0);
  if (Name == "correlation")
    return std::make_unique<SpaptBenchmark>(
        buildCorrelation(600, 500),
        noiseFor("correlation", 0.003, 250.0, 0.30, 0.05, 0.50), 1.0);
  if (Name == "dgemv3")
    return std::make_unique<SpaptBenchmark>(
        buildDgemv3(3000),
        noiseFor("dgemv3", 0.003, 60.0, 0.06, 0.006, 0.08), 1.0);
  if (Name == "gemver")
    return std::make_unique<SpaptBenchmark>(
        buildGemver(4500),
        noiseFor("gemver", 0.004, 60.0, 0.10, 0.01, 0.10), 1.0);
  if (Name == "hessian")
    return std::make_unique<SpaptBenchmark>(
        buildHessian(3400),
        noiseFor("hessian", 0.0025, 50.0, 0.08, 0.006, 0.06), 1.0);
  if (Name == "jacobi")
    return std::make_unique<SpaptBenchmark>(
        buildJacobi(2000, 20),
        noiseFor("jacobi", 0.0025, 80.0, 0.09, 0.008, 0.08), 1.0);
  if (Name == "lu")
    return std::make_unique<SpaptBenchmark>(
        buildLu(900), noiseFor("lu", 0.0015, 30.0, 0.06, 0.004, 0.05), 1.0);
  if (Name == "mm")
    return std::make_unique<SpaptBenchmark>(
        buildMm(512), noiseFor("mm", 0.0015, 25.0, 0.05, 0.004, 0.05), 1.0);
  if (Name == "mvt")
    return std::make_unique<SpaptBenchmark>(
        buildMvt(4000), noiseFor("mvt", 0.0018, 35.0, 0.06, 0.005, 0.05),
        1.0);
  fatalError("unknown SPAPT benchmark '%s'", Name.c_str());
}

std::vector<std::unique_ptr<SpaptBenchmark>> alic::createSpaptSuite() {
  std::vector<std::unique_ptr<SpaptBenchmark>> Suite;
  for (const std::string &Name : spaptBenchmarkNames())
    Suite.push_back(createSpaptBenchmark(Name));
  return Suite;
}

//===- spapt/Benchmark.cpp ------------------------------------*- C++ -*-===//

#include "spapt/Benchmark.h"

#include "transform/TransformPlan.h"

using namespace alic;

SpaptBenchmark::SpaptBenchmark(KernelBundle Bundle, NoiseProfile Noise,
                               double RuntimeCalibration, MachineDesc Machine)
    : K(std::move(Bundle.K)), Space(std::move(Bundle.Params)),
      Noise(Noise), RuntimeCalibration(RuntimeCalibration),
      Model(Machine) {}

double SpaptBenchmark::meanRuntimeSeconds(const Config &C) const {
  TransformPlan Plan = TransformPlan::fromConfig(Space, C);
  return Model.evaluate(K, Plan).RuntimeSeconds * RuntimeCalibration;
}

double SpaptBenchmark::compileSeconds(const Config &C) const {
  TransformPlan Plan = TransformPlan::fromConfig(Space, C);
  return Model.evaluate(K, Plan).CompileSeconds;
}

CostBreakdown SpaptBenchmark::costBreakdown(const Config &C) const {
  TransformPlan Plan = TransformPlan::fromConfig(Space, C);
  CostBreakdown B = Model.evaluate(K, Plan);
  B.RuntimeSeconds *= RuntimeCalibration;
  return B;
}

Config SpaptBenchmark::baselineConfig() const {
  Config C(Space.numParams(), 0);
  for (size_t I = 0; I != Space.numParams(); ++I) {
    // Ordinal of value 1 (all factor parameters include 1).
    const std::vector<int> &Values = Space.param(I).values();
    uint16_t Ord = 0;
    for (size_t V = 0; V != Values.size(); ++V)
      if (Values[V] == 1) {
        Ord = static_cast<uint16_t>(V);
        break;
      }
    C[I] = Ord;
  }
  return C;
}

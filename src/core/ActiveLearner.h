//===- core/ActiveLearner.h - AL with sequential analysis -----*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's contribution (Algorithm 1): an active-learning loop whose
/// sampling plan is itself adaptive.
///
/// Classic active learning with a *fixed* plan draws some pre-set number
/// of observations (the comparison work [4] uses 35) for every training
/// example it selects, and never revisits an example.  The sequential
/// plan implemented here starts every example at a single observation and
/// keeps visited examples *in the candidate set* until they have received
/// nobs observations — so each iteration chooses between labelling a new
/// configuration and re-measuring a noisy one, whichever the model scores
/// as more informative (a multi-armed-bandit-style trade, Section 3.1).
///
/// The scorer follows Section 3.3: Cohn's ALC criterion by default
/// (select the candidate that most reduces the predicted average variance
/// across the space), with MacKay's ALM and uniform-random selection as
/// ablations.
///
/// The loop runs in one of two shapes.  The batch shape, step(), selects,
/// measures, and absorbs in one call — what `alic_run` and the campaigns
/// use.  The request/response shape splits the same iteration at the
/// measurement boundary: suggest() picks the next configuration(s) and
/// hands back a ticket; the caller measures however it likes; and
/// observe() folds the costs in.  step() is implemented *on* the split
/// (suggest → Profiler → observe), and because every pseudo-random draw
/// the learner makes happens inside suggest() while the virtual
/// profiler's draws are counter-based, the two shapes are bit-identical —
/// a learner driven over a wire by `alic_serve` retraces exactly the
/// state a local batch loop would.  This is also what makes sessions
/// replayable: state is a pure function of (config, seed, the sequence
/// of observed cost vectors), which is all a serve checkpoint stores.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_CORE_ACTIVELEARNER_H
#define ALIC_CORE_ACTIVELEARNER_H

#include "core/QueryPolicy.h"
#include "measure/Profiler.h"
#include "model/SurrogateModel.h"
#include "tunable/Normalizer.h"
#include "tunable/ParamSpace.h"

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace alic {

class Scheduler;

/// How many observations each selected training example receives.
struct SamplingPlan {
  /// The two plan families compared by the paper.
  enum class Kind {
    Fixed,      ///< k observations per example, no revisits (baselines)
    Sequential, ///< 1 observation at a time, revisits allowed (ours)
  };

  /// Which family this plan belongs to.
  Kind PlanKind = Kind::Sequential;

  /// Fixed plans: observations per example.  The paper's baseline uses
  /// 35; its second comparator uses 1.
  unsigned FixedObservations = 35;

  /// Sequential plans: cap on observations per example (the paper caps at
  /// 35, matching the baseline's budget).
  unsigned MaxObservationsPerExample = 35;

  /// A fixed plan taking \p Observations measurements per example.
  static SamplingPlan fixed(unsigned Observations);
  /// A sequential plan capped at \p Cap measurements per example.
  static SamplingPlan sequential(unsigned Cap = 35);

  /// Human-readable plan name, matching the paper's figure legends.
  const char *name() const;
};

/// Candidate-scoring criterion (Section 3.3).
enum class ScorerKind {
  Alc,    ///< Cohn: expected reduction of average variance (default)
  Alm,    ///< MacKay: maximum predictive variance
  Random, ///< uniform choice (random-search ablation)
};

/// Parameters of the learning loop (paper values in Section 4.4).
struct ActiveLearnerConfig {
  unsigned NumInitial = 5;              ///< ninit seed examples
  unsigned InitObservations = 35;       ///< nobs for the seed examples
  unsigned MaxTrainingExamples = 2500;  ///< nmax (completion criterion)
  unsigned CandidatesPerIteration = 500; ///< nc fresh candidates per step
  unsigned ReferenceSetSize = 100;      ///< ALC reference sample size
  ScorerKind Scorer = ScorerKind::Alc;  ///< candidate-scoring criterion
  unsigned BatchSize = 1;               ///< examples labelled per iteration
  uint64_t Seed = 1;                    ///< root of every random stream
  /// Whether each model-guided pick is measured or skipped (QueryPolicy.h).
  /// The default (Always) keeps the loop bit-identical to a build without
  /// query policies.
  QueryPolicyConfig Query;
};

/// Progress counters.
struct LearnerStats {
  size_t Iterations = 0;       ///< refine picks consumed (excl. seeding),
                               ///< queried *or* skipped
  size_t DistinctExamples = 0; ///< unique configurations observed
  size_t Revisits = 0;         ///< re-measurements of known configurations
  size_t Observations = 0;     ///< total profiler runs (incl. seeding)
  size_t Skips = 0;            ///< picks the query policy declined to label
};

/// Where a Suggestion sits in the session lifecycle.
enum class SuggestPhase {
  Explore, ///< pre-fit seeding: measure ninit configs, no model involved
  Refine,  ///< model-guided selection (the steady state of Alg. 1)
  Skip,    ///< the query policy declined every pick this iteration:
           ///< nothing to measure, but the suggestion still carries a
           ///< ticket that must be observed (with zero costs) to advance
  Done,    ///< completion criterion met; nothing to measure
};

/// One request-sized unit of work handed to the measurement side: the
/// configuration(s) the learner wants costs for, and the ticket that the
/// matching observe() call must quote.  Returned by reference from
/// ActiveLearner::suggest() and owned by the learner; the reference stays
/// valid until the suggestion is observed (or the learner is destroyed).
struct Suggestion {
  /// Opaque id pairing this suggestion with its observe() call.  Tickets
  /// are issued from a deterministic per-learner counter starting at 1,
  /// so a replayed session re-issues identical tickets.  0 when Phase is
  /// Done (there is nothing to observe).
  uint64_t Ticket = 0;

  /// Lifecycle phase this suggestion was issued in.
  SuggestPhase Phase = SuggestPhase::Done;

  /// Configurations to measure, in order.  Empty when Phase is Done.
  std::vector<Config> Configs;

  /// Measurements wanted per configuration.  observe() expects exactly
  /// Configs.size() * ObservationsPerConfig costs, grouped by
  /// configuration (all costs for Configs[0] first).  In particular a
  /// Skip-phase suggestion (Configs empty) must be observed with an
  /// *empty* cost vector; costs for skipped configurations are rejected.
  unsigned ObservationsPerConfig = 0;

  /// Configurations the query policy declined this iteration (empty under
  /// the default Always policy).  They are consumed — removed from the
  /// candidate pool, counted in LearnerStats::Skips — but must not be
  /// measured; any costs passed to observe() pair with Configs only.
  std::vector<Config> Skipped;
};

/// The active-learning loop of Algorithm 1.
///
/// **Thread-safety:** not internally synchronized — drive each learner
/// from one thread at a time (alic_serve wraps each session's learner in
/// a mutex).  The learner may *internally* fan work out across the
/// installed Scheduler; that parallelism never changes results.
///
/// **Determinism:** every random draw derives from Cfg.Seed (selection
/// draws from one sequential stream consumed only inside suggest();
/// virtual-measurement draws are counter-based per configuration).
/// Consequently (a) results are bit-identical at any scheduler worker
/// count including none, and (b) a learner's entire state is a pure
/// function of its constructor arguments and the sequence of cost
/// vectors passed to observe().
///
/// **Ownership:** the oracle and model are borrowed and must outlive the
/// learner; the pool and normalizer are copied in.
class ActiveLearner {
public:
  /// \p Pool is the set F of configurations available for training;
  /// \p Norm maps raw feature vectors to model space.  The model must be
  /// unfitted; seeding happens on the first step()/suggest().  When
  /// \p Workers is non-null, candidate scoring is sharded across it; the
  /// loop's results are bit-identical with or without a scheduler, at any
  /// worker count.  The loop itself may run inside a scheduler task (a
  /// campaign cell): its inner shards fork onto the same pool and idle
  /// workers steal them.
  ActiveLearner(const WorkloadOracle &Oracle, SurrogateModel &Model,
                Normalizer Norm, std::vector<Config> Pool, SamplingPlan Plan,
                ActiveLearnerConfig Cfg, Scheduler *Workers = nullptr);

  /// Runs one loop iteration (the first call performs the seeding phase)
  /// labelling Cfg.BatchSize examples.  Returns false when the completion
  /// criterion is met.
  bool step();

  /// Runs one loop iteration labelling up to \p Batch top-scored
  /// candidates (the parallel variant the paper describes after Alg. 1).
  /// Every labelled example is charged to the Profiler ledger and counted
  /// in stats() exactly as in the one-at-a-time path.  Equivalent to
  /// suggest(Batch) + virtual measurement + observe().
  bool step(unsigned Batch);

  /// Selects the next configuration(s) to measure without measuring them:
  /// the first call returns the ninit seed configurations (Explore — the
  /// model is untouched until their costs arrive); later calls run
  /// candidate assembly and scoring for up to \p Batch picks (Refine);
  /// once the completion criterion holds the phase is Done.  When a
  /// query policy is configured (Cfg.Query), picks it declines are
  /// returned in Suggestion::Skipped rather than Configs — and when it
  /// declines every pick the phase is Skip: nothing to measure, but the
  /// ticket must still be observed (with no costs) to advance.  While a
  /// suggestion is outstanding (issued but not yet observed) this is
  /// idempotent: it returns the same suggestion again and ignores
  /// \p Batch, so a client that lost a reply can simply re-ask.  The
  /// returned reference is owned by the learner and is invalidated by the
  /// next state-changing call.
  const Suggestion &suggest(unsigned Batch);

  /// Same, labelling Cfg.BatchSize examples per iteration.
  const Suggestion &suggest() { return suggest(std::max(1u, Cfg.BatchSize)); }

  /// Folds measured costs into the learner: fits the model on the seed
  /// costs (Explore) or updates it with the selected examples (Refine),
  /// and advances all bookkeeping.  \p Ticket must be the outstanding
  /// suggestion's ticket and \p Costs must hold exactly
  /// Configs.size() * ObservationsPerConfig values grouped by
  /// configuration; returns false (and changes nothing) otherwise.  Costs
  /// pair with the *queried* configurations only: suggestions whose picks
  /// were all declined by the query policy (phase Skip) must be observed
  /// with an empty cost vector — supplying costs for skipped configs is
  /// rejected.  Deterministic: no random draws happen here, so replaying
  /// a recorded cost sequence reproduces the learner's state (including
  /// every skip decision) bit-identically.
  bool observe(uint64_t Ticket, const std::vector<double> &Costs);

  /// Installs (or removes, with nullptr) the scheduler.  It shards
  /// candidate scoring, batched measurement, and the model's internal
  /// work (the dynamic tree's per-particle SMC update); results stay
  /// bit-identical at any worker count.
  void setScheduler(Scheduler *Workers) {
    this->Workers = Workers;
    Model.setScheduler(Workers);
  }

  /// True when nmax training examples have been absorbed.
  bool done() const;

  /// True once the seed costs have been absorbed and the model fitted
  /// (the Explore → Refine transition).
  bool seeded() const { return Seeded; }

  /// True while a suggestion has been issued but not yet observed.
  bool suggestionOutstanding() const { return HasOutstanding; }

  /// The outstanding suggestion without issuing a new one; nullptr when
  /// none is outstanding (read-only peek for status reporting).
  const Suggestion *outstanding() const {
    return HasOutstanding ? &Outstanding : nullptr;
  }

  /// Cumulative virtual profiling cost (the paper's evaluation-time axis).
  /// Only the batch step() path charges this ledger; sessions driven via
  /// suggest()/observe() account cost on the serving side.
  double cumulativeCostSeconds() const { return Prof.ledger().totalSeconds(); }

  /// Progress counters (iterations, distinct examples, revisits, runs).
  const LearnerStats &stats() const { return Stats; }
  /// The virtual profiler backing the batch step() path.
  const Profiler &profiler() const { return Prof; }
  /// The surrogate being trained.
  SurrogateModel &model() { return Model; }
  /// The feature normalizer examples are transformed through.
  const Normalizer &normalizer() const { return Norm; }

private:
  std::vector<double> featuresOf(const Config &C) const;
  const Suggestion &suggestSeed();

  const WorkloadOracle &Oracle;
  SurrogateModel &Model;
  Normalizer Norm;
  std::vector<Config> Pool;
  SamplingPlan Plan;
  ActiveLearnerConfig Cfg;
  Profiler Prof;
  Rng Generator;
  Scheduler *Workers = nullptr;

  /// Indices into Pool that have never been selected.
  std::vector<uint32_t> Unseen;
  /// Visited pool indices with fewer than the cap's observations (the
  /// paper's D map), sequential plans only.
  std::vector<uint32_t> Revisitable;
  std::unordered_map<uint32_t, unsigned> ObsCount;

  /// Query policy consulted on refine picks; null under Always (the fast
  /// path then never touches policy code).
  std::unique_ptr<QueryPolicy> Policy;

  /// Pool indices behind the outstanding suggestion, in *pick* order —
  /// queried and skipped picks interleaved as selected (with, for Refine,
  /// whether each pick is a revisit and whether it is to be measured).
  /// observe() walks these in order, consuming costs only for queried
  /// picks, so skip bookkeeping replays deterministically.
  std::vector<uint32_t> PendingIdx;
  std::vector<uint8_t> PendingRevisit;
  std::vector<uint8_t> PendingQueried;
  Suggestion Outstanding;
  bool HasOutstanding = false;
  uint64_t NextTicket = 1;

  bool Seeded = false;
  LearnerStats Stats;
};

} // namespace alic

#endif // ALIC_CORE_ACTIVELEARNER_H

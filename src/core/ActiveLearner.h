//===- core/ActiveLearner.h - AL with sequential analysis -----*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's contribution (Algorithm 1): an active-learning loop whose
/// sampling plan is itself adaptive.
///
/// Classic active learning with a *fixed* plan draws some pre-set number
/// of observations (the comparison work [4] uses 35) for every training
/// example it selects, and never revisits an example.  The sequential
/// plan implemented here starts every example at a single observation and
/// keeps visited examples *in the candidate set* until they have received
/// nobs observations — so each iteration chooses between labelling a new
/// configuration and re-measuring a noisy one, whichever the model scores
/// as more informative (a multi-armed-bandit-style trade, Section 3.1).
///
/// The scorer follows Section 3.3: Cohn's ALC criterion by default
/// (select the candidate that most reduces the predicted average variance
/// across the space), with MacKay's ALM and uniform-random selection as
/// ablations.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_CORE_ACTIVELEARNER_H
#define ALIC_CORE_ACTIVELEARNER_H

#include "measure/Profiler.h"
#include "model/SurrogateModel.h"
#include "tunable/Normalizer.h"
#include "tunable/ParamSpace.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace alic {

class Scheduler;

/// How many observations each selected training example receives.
struct SamplingPlan {
  enum class Kind {
    Fixed,      ///< k observations per example, no revisits (baselines)
    Sequential, ///< 1 observation at a time, revisits allowed (ours)
  };

  Kind PlanKind = Kind::Sequential;

  /// Fixed plans: observations per example.  The paper's baseline uses
  /// 35; its second comparator uses 1.
  unsigned FixedObservations = 35;

  /// Sequential plans: cap on observations per example (the paper caps at
  /// 35, matching the baseline's budget).
  unsigned MaxObservationsPerExample = 35;

  /// Convenience constructors.
  static SamplingPlan fixed(unsigned Observations);
  static SamplingPlan sequential(unsigned Cap = 35);

  const char *name() const;
};

/// Candidate-scoring criterion (Section 3.3).
enum class ScorerKind {
  Alc,    ///< Cohn: expected reduction of average variance (default)
  Alm,    ///< MacKay: maximum predictive variance
  Random, ///< uniform choice (random-search ablation)
};

/// Parameters of the learning loop (paper values in Section 4.4).
struct ActiveLearnerConfig {
  unsigned NumInitial = 5;              ///< ninit
  unsigned InitObservations = 35;       ///< nobs for the seed examples
  unsigned MaxTrainingExamples = 2500;  ///< nmax (completion criterion)
  unsigned CandidatesPerIteration = 500; ///< nc
  unsigned ReferenceSetSize = 100;      ///< ALC reference sample
  ScorerKind Scorer = ScorerKind::Alc;
  unsigned BatchSize = 1;               ///< examples labelled per iteration
  uint64_t Seed = 1;
};

/// Progress counters.
struct LearnerStats {
  size_t Iterations = 0;       ///< model updates performed (excl. seeding)
  size_t DistinctExamples = 0; ///< unique configurations observed
  size_t Revisits = 0;         ///< re-measurements of known configurations
  size_t Observations = 0;     ///< total profiler runs (incl. seeding)
};

/// The active-learning loop of Algorithm 1.
class ActiveLearner {
public:
  /// \p Pool is the set F of configurations available for training;
  /// \p Norm maps raw feature vectors to model space.  The model must be
  /// unfitted; seeding happens on the first step().  When \p Workers is
  /// non-null, candidate scoring is sharded across it; the loop's results
  /// are bit-identical with or without a scheduler, at any worker count.
  /// The loop itself may run inside a scheduler task (a campaign cell):
  /// its inner shards fork onto the same pool and idle workers steal
  /// them.
  ActiveLearner(const WorkloadOracle &Oracle, SurrogateModel &Model,
                Normalizer Norm, std::vector<Config> Pool, SamplingPlan Plan,
                ActiveLearnerConfig Cfg, Scheduler *Workers = nullptr);

  /// Runs one loop iteration (the first call performs the seeding phase)
  /// labelling Cfg.BatchSize examples.  Returns false when the completion
  /// criterion is met.
  bool step();

  /// Runs one loop iteration labelling up to \p Batch top-scored
  /// candidates (the parallel variant the paper describes after Alg. 1).
  /// Every labelled example is charged to the Profiler ledger and counted
  /// in stats() exactly as in the one-at-a-time path.
  bool step(unsigned Batch);

  /// Installs (or removes, with nullptr) the scheduler.  It shards
  /// candidate scoring, batched measurement, and the model's internal
  /// work (the dynamic tree's per-particle SMC update); results stay
  /// bit-identical at any worker count.
  void setScheduler(Scheduler *Workers) {
    this->Workers = Workers;
    Model.setScheduler(Workers);
  }

  /// True when nmax training examples have been absorbed.
  bool done() const;

  /// Cumulative virtual profiling cost (the paper's evaluation-time axis).
  double cumulativeCostSeconds() const { return Prof.ledger().totalSeconds(); }

  const LearnerStats &stats() const { return Stats; }
  const Profiler &profiler() const { return Prof; }
  SurrogateModel &model() { return Model; }
  const Normalizer &normalizer() const { return Norm; }

private:
  void seed();
  std::vector<double> featuresOf(const Config &C) const;

  const WorkloadOracle &Oracle;
  SurrogateModel &Model;
  Normalizer Norm;
  std::vector<Config> Pool;
  SamplingPlan Plan;
  ActiveLearnerConfig Cfg;
  Profiler Prof;
  Rng Generator;
  Scheduler *Workers = nullptr;

  /// Indices into Pool that have never been selected.
  std::vector<uint32_t> Unseen;
  /// Visited pool indices with fewer than the cap's observations (the
  /// paper's D map), sequential plans only.
  std::vector<uint32_t> Revisitable;
  std::unordered_map<uint32_t, unsigned> ObsCount;

  bool Seeded = false;
  LearnerStats Stats;
};

} // namespace alic

#endif // ALIC_CORE_ACTIVELEARNER_H

//===- core/ActiveLearner.cpp ---------------------------------*- C++ -*-===//

#include "core/ActiveLearner.h"

#include "stats/Metrics.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>

using namespace alic;

SamplingPlan SamplingPlan::fixed(unsigned Observations) {
  SamplingPlan P;
  P.PlanKind = Kind::Fixed;
  P.FixedObservations = Observations;
  return P;
}

SamplingPlan SamplingPlan::sequential(unsigned Cap) {
  SamplingPlan P;
  P.PlanKind = Kind::Sequential;
  P.MaxObservationsPerExample = Cap;
  return P;
}

const char *SamplingPlan::name() const {
  if (PlanKind == Kind::Sequential)
    return "variable observations";
  return FixedObservations == 1 ? "one observation" : "all observations";
}

namespace {

/// How labelling one pick moves the learner's candidate bookkeeping.
/// Shared by the batch pre-simulation in suggest() and the absorption
/// loop in observe() so the two can never drift apart.
struct PickOutcome {
  bool TakesUnseen;       ///< the pick leaves the unseen pool
  bool JoinsRevisitable;  ///< a fresh pick still short of the cap
  bool LeavesRevisitable; ///< a revisit that just reached the cap
};

PickOutcome pickOutcome(const SamplingPlan &Plan, bool Revisit,
                        unsigned PrevObsCount) {
  if (Plan.PlanKind == SamplingPlan::Kind::Fixed)
    return {true, false, false};
  unsigned Count = PrevObsCount + 1;
  if (Revisit)
    return {false, false, Count >= Plan.MaxObservationsPerExample};
  return {true, Count < Plan.MaxObservationsPerExample, false};
}

} // namespace

ActiveLearner::ActiveLearner(const WorkloadOracle &Oracle,
                             SurrogateModel &Model, Normalizer Norm,
                             std::vector<Config> Pool, SamplingPlan Plan,
                             ActiveLearnerConfig Cfg, Scheduler *Workers)
    : Oracle(Oracle), Model(Model), Norm(std::move(Norm)),
      Pool(std::move(Pool)), Plan(Plan), Cfg(Cfg),
      Prof(Oracle, hashCombine({Cfg.Seed, 0x50524f46ull})),
      Generator(Cfg.Seed), Workers(Workers),
      Policy(QueryPolicy::create(Cfg.Query)) {
  assert(!this->Pool.empty() && "training pool must not be empty");
  assert(Cfg.NumInitial >= 1 && "need at least one seed example");
  setScheduler(Workers);
  Unseen.resize(this->Pool.size());
  for (size_t I = 0; I != this->Pool.size(); ++I)
    Unseen[I] = uint32_t(I);
}

std::vector<double> ActiveLearner::featuresOf(const Config &C) const {
  return Norm.transform(Oracle.space().features(C));
}

bool ActiveLearner::done() const {
  if (!Seeded)
    return false;
  if (Stats.Iterations >= Cfg.MaxTrainingExamples)
    return true;
  return Unseen.empty() && Revisitable.empty();
}

const Suggestion &ActiveLearner::suggestSeed() {
  // Select ninit random examples for a full set of observations each, so
  // the learner starts from a quick but accurate look at the space
  // (Section 3.1: "good quality data" for the seed).  The draws mutate
  // Unseen immediately — later bounded draws depend on its size — so the
  // selection is committed even though the costs have not arrived yet.
  PendingIdx.clear();
  PendingRevisit.clear();
  PendingQueried.clear();
  unsigned NumSeed =
      std::min<unsigned>(Cfg.NumInitial, unsigned(Unseen.size()));
  for (unsigned I = 0; I != NumSeed; ++I) {
    size_t Slot = size_t(Generator.nextBounded(Unseen.size()));
    uint32_t PoolIdx = Unseen[Slot];
    Unseen[Slot] = Unseen.back();
    Unseen.pop_back();
    PendingIdx.push_back(PoolIdx);
  }
  Outstanding.Phase = SuggestPhase::Explore;
  Outstanding.ObservationsPerConfig = Cfg.InitObservations;
  Outstanding.Configs.reserve(PendingIdx.size());
  for (uint32_t PoolIdx : PendingIdx)
    Outstanding.Configs.push_back(Pool[PoolIdx]);
  Outstanding.Ticket = NextTicket++;
  HasOutstanding = true;
  return Outstanding;
}

const Suggestion &ActiveLearner::suggest(unsigned Batch) {
  if (HasOutstanding)
    return Outstanding;
  Outstanding = Suggestion();
  if (!Seeded)
    return suggestSeed();
  if (done())
    return Outstanding; // Phase == Done, ticket 0
  Batch = std::max(1u, Batch);

  // --- Assemble the candidate set (Alg. 1 lines 7-11) -------------------
  // nc never-observed configurations ...
  struct Candidate {
    uint32_t PoolIdx;
    bool Revisit;
  };
  std::vector<Candidate> Candidates;
  unsigned Nc = std::min<size_t>(Cfg.CandidatesPerIteration, Unseen.size());
  std::vector<size_t> Fresh = Generator.sampleIndices(Unseen.size(), Nc);
  Candidates.reserve(Fresh.size() + Revisitable.size());
  for (size_t Slot : Fresh)
    Candidates.push_back({Unseen[Slot], false});
  // ... plus every visited example still short of the observation cap.
  for (uint32_t PoolIdx : Revisitable)
    Candidates.push_back({PoolIdx, true});
  if (Candidates.empty())
    return Outstanding; // unreachable given !done(), kept as a safeguard

  // --- Score the candidates (Alg. 1 lines 12-20) ------------------------
  // The scoring context derives its seed from the loop position alone, so
  // installing a thread pool (or changing its size) can never perturb the
  // learner's random streams.
  ScoreContext Ctx;
  Ctx.Pool = Workers;
  Ctx.Seed = hashCombine({Cfg.Seed, uint64_t(Stats.Iterations), 0xa1cull});

  std::vector<size_t> Chosen;
  if (Cfg.Scorer == ScorerKind::Random) {
    std::vector<size_t> Order = Generator.sampleIndices(
        Candidates.size(), std::min<size_t>(Batch, Candidates.size()));
    Chosen = Order;
  } else {
    // Candidate and reference features go straight into contiguous
    // FlatRows buffers — the layout every surrogate scores from.
    FlatRows CandFeatures;
    CandFeatures.reserveRows(Candidates.size());
    for (const Candidate &C : Candidates)
      CandFeatures.push(featuresOf(Pool[C.PoolIdx]));

    std::vector<double> Scores;
    if (Cfg.Scorer == ScorerKind::Alm) {
      Scores = Model.almScores(CandFeatures, Ctx);
    } else {
      // Reference sample over which the average variance is minimized.
      unsigned NumRef = std::min<size_t>(Cfg.ReferenceSetSize, Pool.size());
      FlatRows Ref;
      Ref.reserveRows(NumRef);
      for (size_t Slot : Generator.sampleIndices(Pool.size(), NumRef))
        Ref.push(featuresOf(Pool[Slot]));
      Scores = Model.alcScores(CandFeatures, Ref, Ctx);
    }

    // Top-Batch scores (selecting several examples per loop iteration is
    // the parallel variant the paper mentions after Alg. 1).
    std::vector<size_t> Order(Candidates.size());
    for (size_t I = 0; I != Order.size(); ++I)
      Order[I] = I;
    std::partial_sort(Order.begin(),
                      Order.begin() + std::min<size_t>(Batch, Order.size()),
                      Order.end(), [&Scores](size_t A, size_t B) {
                        return Scores[A] > Scores[B];
                      });
    Order.resize(std::min<size_t>(Batch, Order.size()));
    Chosen = Order;
  }

  // The completion criterion can trip mid-batch; simulate the bookkeeping
  // up front so only the picks that will actually be absorbed are
  // suggested (and measured, and charged to the caller's ledger).  The
  // query policy is consulted here, in pick order, so the skip/query
  // sequence is a pure function of the replayed state (QueryPolicy.h):
  // replaying a recorded cost stream reproduces every decision.
  std::vector<uint8_t> Queried;
  {
    size_t Executable = 0;
    size_t Iter = Stats.Iterations;
    size_t UnseenLeft = Unseen.size();
    size_t RevisitableLeft = Revisitable.size();
    for (size_t Pick : Chosen) {
      // done()'s two conditions on the simulated state.
      if (Iter >= Cfg.MaxTrainingExamples ||
          (UnseenLeft == 0 && RevisitableLeft == 0))
        break;
      const Candidate &C = Candidates[Pick];
      bool Label = true;
      if (Policy) {
        Prediction P = Model.predict(featuresOf(Pool[C.PoolIdx]));
        QueryDecision D;
        D.Mean = P.Mean;
        D.Variance = P.Variance;
        D.StreamPosition = Iter;
        Label = Policy->shouldQuery(D);
      }
      auto It = ObsCount.find(C.PoolIdx);
      // A declined pick is consumed unlabelled: a fresh one leaves the
      // unseen pool without joining the revisit set, a revisit is retired
      // (the policy judged further measurements there uninformative).
      PickOutcome O =
          Label ? pickOutcome(Plan, C.Revisit,
                              It == ObsCount.end() ? 0 : It->second)
                : PickOutcome{!C.Revisit, false, C.Revisit};
      UnseenLeft -= O.TakesUnseen;
      RevisitableLeft += O.JoinsRevisitable;
      RevisitableLeft -= O.LeavesRevisitable;
      ++Iter;
      ++Executable;
      Queried.push_back(Label);
    }
    Chosen.resize(Executable);
  }
  if (Chosen.empty())
    return Outstanding; // unreachable given !done(), kept as a safeguard

  PendingIdx.clear();
  PendingRevisit.clear();
  PendingQueried.clear();
  size_t NumQueried = 0;
  for (uint8_t Q : Queried)
    NumQueried += Q;
  Outstanding.Phase =
      NumQueried == 0 ? SuggestPhase::Skip : SuggestPhase::Refine;
  Outstanding.ObservationsPerConfig =
      NumQueried == 0 ? 0
      : Plan.PlanKind == SamplingPlan::Kind::Fixed ? Plan.FixedObservations
                                                   : 1;
  Outstanding.Configs.reserve(NumQueried);
  Outstanding.Skipped.reserve(Chosen.size() - NumQueried);
  for (size_t I = 0; I != Chosen.size(); ++I) {
    const Candidate &C = Candidates[Chosen[I]];
    PendingIdx.push_back(C.PoolIdx);
    PendingRevisit.push_back(C.Revisit);
    PendingQueried.push_back(Queried[I]);
    (Queried[I] ? Outstanding.Configs : Outstanding.Skipped)
        .push_back(Pool[C.PoolIdx]);
  }
  Outstanding.Ticket = NextTicket++;
  HasOutstanding = true;
  return Outstanding;
}

bool ActiveLearner::observe(uint64_t Ticket,
                            const std::vector<double> &Costs) {
  if (!HasOutstanding || Ticket != Outstanding.Ticket)
    return false;
  size_t PerConfig = Outstanding.ObservationsPerConfig;
  if (Costs.size() != Outstanding.Configs.size() * PerConfig)
    return false;

  if (Outstanding.Phase == SuggestPhase::Explore) {
    FlatRows X;
    std::vector<double> Y;
    for (size_t I = 0; I != PendingIdx.size(); ++I) {
      const Config &C = Pool[PendingIdx[I]];
      Stats.Observations += PerConfig;
      ++Stats.DistinctExamples;
      X.push(featuresOf(C));
      Y.push_back(arithmeticMean(Costs.data() + I * PerConfig, PerConfig));
      if (Policy)
        Policy->onLabel(Y.back());
    }
    Model.fit(X, Y);
    Seeded = true;
    HasOutstanding = false;
    return true;
  }

  // --- Absorb the pick(s); only labelled ones update the model ----------
  // PendingIdx holds queried and skipped picks interleaved in selection
  // order; the cost cursor advances only over queried picks, so the
  // suggest()-time simulation and this loop walk identical sequences.
  size_t Cursor = 0;
  for (size_t Slot = 0; Slot != PendingIdx.size(); ++Slot) {
    uint32_t PoolIdx = PendingIdx[Slot];
    bool Revisit = PendingRevisit[Slot] != 0;
    bool Labelled = PendingQueried.empty() || PendingQueried[Slot] != 0;
    const Config &Conf = Pool[PoolIdx];
    PickOutcome O = [&] {
      if (!Labelled)
        return PickOutcome{!Revisit, false, Revisit};
      auto It = ObsCount.find(PoolIdx);
      return pickOutcome(Plan, Revisit,
                         It == ObsCount.end() ? 0 : It->second);
    }();

    if (!Labelled) {
      ++Stats.Skips;
    } else if (Plan.PlanKind == SamplingPlan::Kind::Fixed) {
      double Y = arithmeticMean(Costs.data() + Cursor, PerConfig);
      Cursor += PerConfig;
      Stats.Observations += PerConfig;
      ++Stats.DistinctExamples;
      Model.update(featuresOf(Conf), Y);
      if (Policy)
        Policy->onLabel(Y);
    } else {
      double Y = Costs[Cursor++];
      ++Stats.Observations;
      Model.update(featuresOf(Conf), Y);
      if (Policy)
        Policy->onLabel(Y);
      ++ObsCount[PoolIdx];
      if (Revisit)
        ++Stats.Revisits;
      else
        ++Stats.DistinctExamples;
    }

    if (O.JoinsRevisitable)
      Revisitable.push_back(PoolIdx);
    if (O.LeavesRevisitable) {
      auto It = std::find(Revisitable.begin(), Revisitable.end(), PoolIdx);
      if (It != Revisitable.end()) {
        *It = Revisitable.back();
        Revisitable.pop_back();
      }
    }
    if (O.TakesUnseen) {
      // Remove the configuration from the unseen pool.
      auto It = std::find(Unseen.begin(), Unseen.end(), PoolIdx);
      assert(It != Unseen.end() && "fresh candidate missing from pool");
      *It = Unseen.back();
      Unseen.pop_back();
    }
    ++Stats.Iterations;
  }
  HasOutstanding = false;
  return true;
}

bool ActiveLearner::step() { return step(std::max(1u, Cfg.BatchSize)); }

bool ActiveLearner::step(unsigned Batch) {
  const Suggestion &S = suggest(Batch);
  if (S.Phase == SuggestPhase::Done)
    return false;

  // Measure through the virtual profiler.  Its draws are counter-based
  // per configuration, so measuring the whole suggestion here — after
  // all of suggest()'s selection draws — yields values bit-identical to
  // the historical interleaved select/measure loop.  A Skip-phase
  // suggestion has nothing to measure: the empty cost vector still has
  // to be observed to advance past the declined picks.
  std::vector<double> Costs;
  if (S.Configs.empty()) {
    // nothing to measure
  } else if (S.Phase == SuggestPhase::Refine &&
             Plan.PlanKind == SamplingPlan::Kind::Sequential) {
    // One observation per pick; sharded across the scheduler.
    Costs = Prof.measureBatch(S.Configs, Workers);
  } else {
    Costs.reserve(S.Configs.size() * S.ObservationsPerConfig);
    for (const Config &C : S.Configs) {
      std::vector<double> Obs = Prof.measure(C, S.ObservationsPerConfig);
      Costs.insert(Costs.end(), Obs.begin(), Obs.end());
    }
  }

  bool Absorbed = observe(S.Ticket, Costs);
  assert(Absorbed && "batch step failed to absorb its own measurements");
  (void)Absorbed;
  return true;
}

//===- core/QueryPolicy.cpp -----------------------------------*- C++ -*-===//

#include "core/QueryPolicy.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace alic;

QueryPolicy::~QueryPolicy() = default;

void QueryPolicy::onLabel(double Cost) { (void)Cost; }

double alic::queryBinarySearch(double Fhat, double Delta, double Sens,
                               double Tol) {
  // Faithful to VW cs_active's binarySearch: the admissible importance
  // weight is capped at fhat/sens (beyond it the probed prediction
  // crosses zero); if even the cap fits inside the budget, return it.
  constexpr int MaxIter = 20;
  double MaxW = std::min(Fhat / Sens, 1e12);
  if (MaxW * Fhat * Fhat <= Delta)
    return MaxW;
  double L = 0.0, U = MaxW;
  for (int Iter = 0; Iter != MaxIter; ++Iter) {
    double W = (U + L) / 2.0;
    double Probe = Fhat - Sens * W;
    double V = W * (Fhat * Fhat - Probe * Probe) - Delta;
    if (V > 0)
      U = W;
    else
      L = W;
    if (std::fabs(V) / Delta <= Tol || U - L <= Tol)
      break;
  }
  return L;
}

namespace {

/// Skip picks whose predictive variance fell below the configured floors.
class AlmThresholdPolicy : public QueryPolicy {
public:
  explicit AlmThresholdPolicy(const QueryPolicyConfig &Cfg) : Cfg(Cfg) {}

  QueryPolicyKind kind() const override {
    return QueryPolicyKind::AlmThreshold;
  }

  bool shouldQuery(const QueryDecision &D) override {
    double Var = std::max(D.Variance, 0.0);
    PeakVariance = std::max(PeakVariance, Var);
    double Floor = std::max(Cfg.AbsFloor, Cfg.RelFloor * PeakVariance);
    return Var >= Floor;
  }

private:
  QueryPolicyConfig Cfg;
  /// Largest variance consulted so far; the relative floor's yardstick.
  double PeakVariance = 0.0;
};

/// VW cs_active's cost-range test, in cost units normalized by the range
/// of labels observed so far so one mellowness works across benchmarks.
class CostRangePolicy : public QueryPolicy {
public:
  explicit CostRangePolicy(const QueryPolicyConfig &Cfg) : Cfg(Cfg) {}

  QueryPolicyKind kind() const override { return QueryPolicyKind::CostRange; }

  bool shouldQuery(const QueryDecision &D) override {
    double Range = CostMax - CostMin;
    if (!HaveLabel || !(Range > 0))
      return true; // no cost scale yet: bootstrap by querying
    double Sens = std::sqrt(std::max(D.Variance, 0.0)) / Range;
    if (!(Sens > 0))
      return false; // a settled prediction cannot move the model
    // How wrong could the prediction be, in range units?  Distance to the
    // farther observed extreme, so it is always >= 1/2 and a prediction
    // sitting near one end of the range still probes the full span.
    double Fhat =
        std::max(std::fabs(D.Mean - CostMin), std::fabs(D.Mean - CostMax)) /
        Range;
    // Shrinking regret budget: early picks query freely, late picks must
    // justify the label against an ever-tighter version space.
    double T = double(std::max<uint64_t>(D.StreamPosition, 1));
    double Delta = Cfg.Mellowness * std::log(T + 1.0) / T;
    double W = queryBinarySearch(Fhat, Delta, Sens, 1e-6);
    // Sens * W is the prediction-interval width the budget still admits;
    // below the c1 fraction of the cost range a label is uninformative.
    return Sens * W > Cfg.RangeC1;
  }

  void onLabel(double Cost) override {
    if (!HaveLabel) {
      CostMin = CostMax = Cost;
      HaveLabel = true;
      return;
    }
    CostMin = std::min(CostMin, Cost);
    CostMax = std::max(CostMax, Cost);
  }

private:
  QueryPolicyConfig Cfg;
  bool HaveLabel = false;
  double CostMin = 0.0;
  double CostMax = 0.0;
};

/// %g-formatted number, stable across platforms for the values we emit.
std::string formatG(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%g", V);
  return Buf;
}

/// Splits "name:num:num" into the name and up to \p MaxNums numbers.
/// Returns the number of numbers parsed, or -1 on malformed input.
int splitNums(const std::string &Token, std::string &Name, double *Nums,
              int MaxNums) {
  size_t Colon = Token.find(':');
  Name = Token.substr(0, Colon);
  int Count = 0;
  while (Colon != std::string::npos) {
    size_t Next = Token.find(':', Colon + 1);
    std::string Part = Token.substr(Colon + 1, Next == std::string::npos
                                                   ? std::string::npos
                                                   : Next - Colon - 1);
    char *End = nullptr;
    double V = std::strtod(Part.c_str(), &End);
    if (Count >= MaxNums || Part.empty() || End != Part.c_str() + Part.size())
      return -1;
    Nums[Count++] = V;
    Colon = Next;
  }
  return Count;
}

} // namespace

bool alic::parseQueryPolicy(const std::string &Token, QueryPolicyConfig &Out) {
  std::string Name;
  double Nums[2];
  int Count = splitNums(Token, Name, Nums, 2);
  if (Count < 0)
    return false;
  QueryPolicyConfig Cfg;
  if (Name == "always") {
    if (Count != 0)
      return false;
    Cfg.Kind = QueryPolicyKind::Always;
  } else if (Name == "alm") {
    Cfg.Kind = QueryPolicyKind::AlmThreshold;
    if (Count >= 1)
      Cfg.AbsFloor = Nums[0];
    if (Count >= 2)
      Cfg.RelFloor = Nums[1];
  } else if (Name == "cost") {
    Cfg.Kind = QueryPolicyKind::CostRange;
    if (Count >= 1)
      Cfg.Mellowness = Nums[0];
    if (Count >= 2)
      Cfg.RangeC1 = Nums[1];
  } else {
    return false;
  }
  Out = Cfg;
  return true;
}

std::string alic::queryPolicyToken(const QueryPolicyConfig &Cfg) {
  switch (Cfg.Kind) {
  case QueryPolicyKind::Always:
    return "always";
  case QueryPolicyKind::AlmThreshold:
    return "alm:" + formatG(Cfg.AbsFloor) + ":" + formatG(Cfg.RelFloor);
  case QueryPolicyKind::CostRange:
    return "cost:" + formatG(Cfg.Mellowness) + ":" + formatG(Cfg.RangeC1);
  }
  return "always";
}

std::unique_ptr<QueryPolicy> QueryPolicy::create(const QueryPolicyConfig &Cfg) {
  switch (Cfg.Kind) {
  case QueryPolicyKind::Always:
    return nullptr; // callers bypass consultation entirely
  case QueryPolicyKind::AlmThreshold:
    return std::make_unique<AlmThresholdPolicy>(Cfg);
  case QueryPolicyKind::CostRange:
    return std::make_unique<CostRangePolicy>(Cfg);
  }
  return nullptr;
}

//===- core/QueryPolicy.h - Decide whether a label is worth it -*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming query policies: decide *whether* to measure, not just *what*.
///
/// The paper's loop always labels its top-scored candidate.  In serve
/// mode, though, observations arrive as a stream and every label costs a
/// real profiling run — so once the model has settled somewhere, paying
/// for another measurement there is wasted compile time.  A QueryPolicy
/// sits between selection and measurement: after the scorer has ranked
/// the candidates, the policy inspects each chosen pick's predictive
/// distribution and either *queries* it (measure as usual) or *skips* it
/// (the pick is consumed unlabelled — it leaves the candidate pool and
/// the iteration budget advances, but no profiler run is charged and the
/// model is untouched).
///
/// Three policies are provided:
///
///  * Always — the paper's behavior, and the default.  No policy object
///    is even constructed, so the learner's code path (and its random
///    streams, and the committed campaign aggregates) stay bit-identical
///    to the pre-policy loop.
///  * AlmThreshold — skip picks whose predictive variance has fallen
///    below an absolute floor and a relative fraction of the largest
///    variance the policy has seen; a cheap "the model stopped being
///    curious here" test.
///  * CostRange — the mellowness-controlled cost-range test of VW's
///    cs_active: probe, via a `binarySearch` over importance weights, how
///    wide a prediction interval the learner can still justify at this
///    point under a shrinking regret budget delta_t; skip when that
///    interval is narrower than a fixed fraction of the observed cost
///    range, i.e. when no plausible label could move the model.
///
/// **Determinism contract:** policies draw no random numbers and never
/// read the clock.  A decision is a pure function of the policy's
/// configuration, the labels it has been fed through onLabel(), and the
/// consultation sequence (each consult sees the model's prediction at a
/// deterministic stream position).  Replaying a recorded cost sequence
/// through ActiveLearner::observe() therefore reproduces every skip
/// decision bit-identically — which is what lets serve snapshots restore
/// sessions by replay at any worker count.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_CORE_QUERYPOLICY_H
#define ALIC_CORE_QUERYPOLICY_H

#include <cstdint>
#include <memory>
#include <string>

namespace alic {

/// The three querying strategies (see the file comment).
enum class QueryPolicyKind {
  Always,       ///< label every selected candidate (paper behavior)
  AlmThreshold, ///< skip when predictive variance falls below a floor
  CostRange,    ///< skip when the admissible cost range is narrow (VW)
};

/// Serializable description of a query policy.  Travels through
/// ActiveLearnerConfig, campaign specs, the serve wire (`policy` field of
/// `open`) and serve snapshots; construct the live policy object with
/// QueryPolicy::create().
struct QueryPolicyConfig {
  /// Which strategy to run.  Always is the default and is guaranteed to
  /// leave the learner bit-identical to a build without query policies.
  QueryPolicyKind Kind = QueryPolicyKind::Always;

  /// CostRange: mellowness c0.  Scales the regret budget
  /// delta_t = c0 * log(t+1) / t; larger values keep querying longer.
  /// Default from the bench_ablation_query sweep at smoke scale: holds
  /// final RMSE within ~10% of Always on 8/11 SPAPT benchmarks while
  /// declining ~half the refine-label budget.
  double Mellowness = 0.1;

  /// CostRange: query iff the admissible prediction interval is wider
  /// than RangeC1 times the observed cost range.
  double RangeC1 = 0.03;

  /// AlmThreshold: absolute predictive-variance floor (skip below it).
  /// 0 disables the absolute test.
  double AbsFloor = 0.0;

  /// AlmThreshold: relative floor as a fraction of the peak variance
  /// seen so far (skip below RelFloor * peak).  0 disables.
  double RelFloor = 0.05;
};

/// Parses a policy token into \p Out.  Accepted forms: `always`,
/// `alm[:ABS[:REL]]`, `cost[:C0[:C1]]` (missing numbers keep the
/// QueryPolicyConfig defaults).  Returns false, leaving \p Out
/// untouched, on anything else.
bool parseQueryPolicy(const std::string &Token, QueryPolicyConfig &Out);

/// Canonical token for \p Cfg: `always`, `alm:ABS:REL`, or `cost:C0:C1`.
/// Stable across runs (used in campaign cell keys), and re-parseable by
/// parseQueryPolicy().
std::string queryPolicyToken(const QueryPolicyConfig &Cfg);

/// What a policy sees when consulted about one selected candidate.
struct QueryDecision {
  /// Model's predicted cost (seconds) at the candidate.
  double Mean = 0.0;
  /// Model's predictive variance at the candidate.
  double Variance = 0.0;
  /// Stream position: refine picks consumed so far (queried or skipped).
  /// Drives the shrinking regret budget of CostRange.
  uint64_t StreamPosition = 0;
};

/// Strategy interface consulted by ActiveLearner::suggest() for every
/// model-guided (Refine) pick.  Implementations may keep internal state
/// (peak variance, observed cost range) but must stay deterministic: no
/// RNG, no clock — see the determinism contract in the file comment.
class QueryPolicy {
public:
  virtual ~QueryPolicy(); ///< out-of-line anchor for the vtable

  /// Which strategy this object implements.
  virtual QueryPolicyKind kind() const = 0;

  /// True to measure the candidate, false to skip it.  May update the
  /// policy's internal statistics; the learner consults exactly once per
  /// consumed pick, in pick order.
  virtual bool shouldQuery(const QueryDecision &D) = 0;

  /// Fed every label the learner absorbs (seed means included), in
  /// absorption order, so policies can track the observed cost range.
  virtual void onLabel(double Cost);

  /// Builds the live policy for \p Cfg — or nullptr for Always, so the
  /// caller's fast path can skip policy consultation entirely.
  static std::unique_ptr<QueryPolicy> create(const QueryPolicyConfig &Cfg);
};

/// The cs_active sensitivity probe (SNIPPETS.md §1): largest importance
/// weight w such that w * (fhat^2 - (fhat - sens*w)^2) <= delta, found by
/// bisection over at most 20 iterations.  \p Fhat is the prediction
/// magnitude, \p Delta the regret budget, \p Sens the prediction's
/// sensitivity (standard deviation here), \p Tol the bisection tolerance.
/// Exposed for tests.
double queryBinarySearch(double Fhat, double Delta, double Sens, double Tol);

} // namespace alic

#endif // ALIC_CORE_QUERYPOLICY_H

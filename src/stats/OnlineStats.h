//===- stats/OnlineStats.h - Streaming moments and intervals --*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Welford streaming mean/variance with min/max tracking, mergeable across
/// partitions, plus Student-t confidence intervals.  Sequential analysis
/// revolves around exactly these quantities: the paper's baseline validates
/// sample counts post hoc with the 95% CI / mean ratio (Section 4.3).
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_STATS_ONLINESTATS_H
#define ALIC_STATS_ONLINESTATS_H

#include <cstdint>
#include <limits>

namespace alic {

/// Symmetric confidence interval around a sample mean.
struct ConfidenceInterval {
  double Lower = 0.0; ///< lower bound of the interval
  double Upper = 0.0; ///< upper bound of the interval

  /// Half-width of the interval.
  double halfWidth() const { return 0.5 * (Upper - Lower); }
};

/// Streaming first/second moments with numerically stable updates.
class OnlineStats {
public:
  /// Adds one observation.
  void add(double Value);

  /// Merges another accumulator (Chan's parallel combination).
  void merge(const OnlineStats &Other);

  /// Number of observations.
  uint64_t count() const { return N; }

  /// Sample mean; 0 when empty.
  double mean() const { return N ? Mean : 0.0; }

  /// Unbiased sample variance; 0 for fewer than two observations.
  double variance() const { return N > 1 ? M2 / double(N - 1) : 0.0; }

  /// Population variance (divide by n); 0 when empty.
  double populationVariance() const { return N ? M2 / double(N) : 0.0; }

  /// Sample standard deviation.
  double stddev() const;

  /// Standard error of the mean.
  double stderrOfMean() const;

  /// Smallest observation; +inf when empty.
  double min() const { return Min; }

  /// Largest observation; -inf when empty.
  double max() const { return Max; }

  /// Sum of all observations.
  double sum() const { return Mean * double(N); }

  /// Student-t confidence interval for the mean at level \p Confidence
  /// (e.g. 0.95).  Degenerates to [mean, mean] for fewer than two samples.
  ConfidenceInterval confidenceInterval(double Confidence = 0.95) const;

  /// The paper's §4.3 validation statistic: CI half-width / |mean|.
  /// Returns +inf when the mean is zero or fewer than two samples exist.
  double ciOverMean(double Confidence = 0.95) const;

private:
  uint64_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Min = std::numeric_limits<double>::infinity();
  double Max = -std::numeric_limits<double>::infinity();
};

} // namespace alic

#endif // ALIC_STATS_ONLINESTATS_H

//===- stats/Metrics.h - Model accuracy metrics ----------------*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prediction-error metrics.  The paper's headline accuracy metric is the
/// Root Mean Squared Error of predicted vs. observed mean runtimes
/// (equation (1)); the motivation section uses Mean Absolute Error.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_STATS_METRICS_H
#define ALIC_STATS_METRICS_H

#include <cstddef>
#include <vector>

namespace alic {

/// Root mean squared error between \p Predicted and \p Actual.
double rootMeanSquaredError(const std::vector<double> &Predicted,
                            const std::vector<double> &Actual);

/// Mean absolute error between \p Predicted and \p Actual.
double meanAbsoluteError(const std::vector<double> &Predicted,
                         const std::vector<double> &Actual);

/// Coefficient of determination R^2 (1 - SSE/SST).
double rSquared(const std::vector<double> &Predicted,
                const std::vector<double> &Actual);

/// Geometric mean of strictly positive \p Values; 0 when empty.
double geometricMean(const std::vector<double> &Values);

/// Arithmetic mean; 0 when empty.
double arithmeticMean(const std::vector<double> &Values);

/// Arithmetic mean of \p Count values starting at \p Values; 0 when
/// Count is 0.  Identical summation order to the vector overload, so
/// means of a slice match means of a copy bit-for-bit.
double arithmeticMean(const double *Values, std::size_t Count);

/// \p Q-th quantile (0..1) by linear interpolation of the sorted sample.
double quantile(std::vector<double> Values, double Q);

} // namespace alic

#endif // ALIC_STATS_METRICS_H

//===- stats/Metrics.cpp --------------------------------------*- C++ -*-===//

#include "stats/Metrics.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace alic;

double alic::rootMeanSquaredError(const std::vector<double> &Predicted,
                                  const std::vector<double> &Actual) {
  assert(Predicted.size() == Actual.size() && !Actual.empty() &&
         "RMSE needs equally sized, non-empty vectors");
  double Sum = 0.0;
  for (size_t I = 0; I != Actual.size(); ++I) {
    double Diff = Predicted[I] - Actual[I];
    Sum += Diff * Diff;
  }
  return std::sqrt(Sum / double(Actual.size()));
}

double alic::meanAbsoluteError(const std::vector<double> &Predicted,
                               const std::vector<double> &Actual) {
  assert(Predicted.size() == Actual.size() && !Actual.empty() &&
         "MAE needs equally sized, non-empty vectors");
  double Sum = 0.0;
  for (size_t I = 0; I != Actual.size(); ++I)
    Sum += std::fabs(Predicted[I] - Actual[I]);
  return Sum / double(Actual.size());
}

double alic::rSquared(const std::vector<double> &Predicted,
                      const std::vector<double> &Actual) {
  assert(Predicted.size() == Actual.size() && !Actual.empty() &&
         "R^2 needs equally sized, non-empty vectors");
  double Mean = arithmeticMean(Actual);
  double Sse = 0.0;
  double Sst = 0.0;
  for (size_t I = 0; I != Actual.size(); ++I) {
    double E = Predicted[I] - Actual[I];
    double D = Actual[I] - Mean;
    Sse += E * E;
    Sst += D * D;
  }
  if (Sst == 0.0)
    return Sse == 0.0 ? 1.0 : 0.0;
  return 1.0 - Sse / Sst;
}

double alic::geometricMean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values) {
    assert(V > 0.0 && "geometric mean needs positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / double(Values.size()));
}

double alic::arithmeticMean(const std::vector<double> &Values) {
  return arithmeticMean(Values.data(), Values.size());
}

double alic::arithmeticMean(const double *Values, std::size_t Count) {
  if (Count == 0)
    return 0.0;
  double Sum = 0.0;
  for (size_t I = 0; I != Count; ++I)
    Sum += Values[I];
  return Sum / double(Count);
}

double alic::quantile(std::vector<double> Values, double Q) {
  assert(!Values.empty() && "quantile of empty sample");
  assert(Q >= 0.0 && Q <= 1.0 && "quantile order must be in [0,1]");
  std::sort(Values.begin(), Values.end());
  if (Values.size() == 1)
    return Values.front();
  double Pos = Q * double(Values.size() - 1);
  size_t Lo = static_cast<size_t>(Pos);
  size_t Hi = std::min(Lo + 1, Values.size() - 1);
  double Frac = Pos - double(Lo);
  return Values[Lo] * (1.0 - Frac) + Values[Hi] * Frac;
}

//===- stats/Distributions.cpp --------------------------------*- C++ -*-===//

#include "stats/Distributions.h"

#include "support/Error.h"

#include <cassert>
#include <cmath>
#include <limits>

using namespace alic;

double alic::logGamma(double X) {
  assert(X > 0.0 && "logGamma domain is positive reals");
  // Lanczos approximation, g = 7, 9 coefficients.
  static const double Coeffs[9] = {
      0.99999999999980993,  676.5203681218851,     -1259.1392167224028,
      771.32342877765313,   -176.61502916214059,   12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (X < 0.5) {
    // Reflection formula keeps the series in its accurate range.
    return std::log(M_PI / std::sin(M_PI * X)) - logGamma(1.0 - X);
  }
  double Z = X - 1.0;
  double Sum = Coeffs[0];
  for (int I = 1; I != 9; ++I)
    Sum += Coeffs[I] / (Z + I);
  double T = Z + 7.5;
  return 0.5 * std::log(2.0 * M_PI) + (Z + 0.5) * std::log(T) - T +
         std::log(Sum);
}

/// Lower incomplete gamma via its power series, valid for X < A + 1.
static double gammaPSeries(double A, double X) {
  double Term = 1.0 / A;
  double Sum = Term;
  double N = A;
  for (int I = 0; I != 500; ++I) {
    N += 1.0;
    Term *= X / N;
    Sum += Term;
    if (std::fabs(Term) < std::fabs(Sum) * 1e-15)
      break;
  }
  return Sum * std::exp(-X + A * std::log(X) - logGamma(A));
}

/// Upper incomplete gamma via Lentz's continued fraction, valid X >= A + 1.
static double gammaQContinuedFraction(double A, double X) {
  const double Tiny = 1e-300;
  double B = X + 1.0 - A;
  double C = 1.0 / Tiny;
  double D = 1.0 / B;
  double H = D;
  for (int I = 1; I != 500; ++I) {
    double An = -I * (I - A);
    B += 2.0;
    D = An * D + B;
    if (std::fabs(D) < Tiny)
      D = Tiny;
    C = B + An / C;
    if (std::fabs(C) < Tiny)
      C = Tiny;
    D = 1.0 / D;
    double Delta = D * C;
    H *= Delta;
    if (std::fabs(Delta - 1.0) < 1e-15)
      break;
  }
  return std::exp(-X + A * std::log(X) - logGamma(A)) * H;
}

double alic::regularizedGammaP(double A, double X) {
  assert(A > 0.0 && "shape must be positive");
  if (X <= 0.0)
    return 0.0;
  if (X < A + 1.0)
    return gammaPSeries(A, X);
  return 1.0 - gammaQContinuedFraction(A, X);
}

/// Continued fraction for the regularized incomplete beta (Lentz).
static double betaContinuedFraction(double X, double A, double B) {
  const double Tiny = 1e-300;
  double Qab = A + B;
  double Qap = A + 1.0;
  double Qam = A - 1.0;
  double C = 1.0;
  double D = 1.0 - Qab * X / Qap;
  if (std::fabs(D) < Tiny)
    D = Tiny;
  D = 1.0 / D;
  double H = D;
  for (int M = 1; M != 300; ++M) {
    int M2 = 2 * M;
    double Aa = M * (B - M) * X / ((Qam + M2) * (A + M2));
    D = 1.0 + Aa * D;
    if (std::fabs(D) < Tiny)
      D = Tiny;
    C = 1.0 + Aa / C;
    if (std::fabs(C) < Tiny)
      C = Tiny;
    D = 1.0 / D;
    H *= D * C;
    Aa = -(A + M) * (Qab + M) * X / ((A + M2) * (Qap + M2));
    D = 1.0 + Aa * D;
    if (std::fabs(D) < Tiny)
      D = Tiny;
    C = 1.0 + Aa / C;
    if (std::fabs(C) < Tiny)
      C = Tiny;
    D = 1.0 / D;
    double Delta = D * C;
    H *= Delta;
    if (std::fabs(Delta - 1.0) < 1e-15)
      break;
  }
  return H;
}

double alic::regularizedBeta(double X, double A, double B) {
  assert(A > 0.0 && B > 0.0 && "beta parameters must be positive");
  if (X <= 0.0)
    return 0.0;
  if (X >= 1.0)
    return 1.0;
  double LogBeta = logGamma(A + B) - logGamma(A) - logGamma(B) +
                   A * std::log(X) + B * std::log(1.0 - X);
  double Front = std::exp(LogBeta);
  // Use the symmetry relation to stay in the fast-converging region.
  if (X < (A + 1.0) / (A + B + 2.0))
    return Front * betaContinuedFraction(X, A, B) / A;
  return 1.0 - Front * betaContinuedFraction(1.0 - X, B, A) / B;
}

double alic::normalPdf(double X) {
  return std::exp(-0.5 * X * X) / std::sqrt(2.0 * M_PI);
}

double alic::normalCdf(double X) { return 0.5 * std::erfc(-X * M_SQRT1_2); }

double alic::normalQuantile(double P) {
  assert(P > 0.0 && P < 1.0 && "quantile domain is (0, 1)");
  // Acklam's rational approximation...
  static const double A[6] = {-3.969683028665376e+01, 2.209460984245205e+02,
                              -2.759285104469687e+02, 1.383577518672690e+02,
                              -3.066479806614716e+01, 2.506628277459239e+00};
  static const double B[5] = {-5.447609879822406e+01, 1.615858368580409e+02,
                              -1.556989798598866e+02, 6.680131188771972e+01,
                              -1.328068155288572e+01};
  static const double C[6] = {-7.784894002430293e-03, -3.223964580411365e-01,
                              -2.400758277161838e+00, -2.549732539343734e+00,
                              4.374664141464968e+00,  2.938163982698783e+00};
  static const double D[4] = {7.784695709041462e-03, 3.224671290700398e-01,
                              2.445134137142996e+00, 3.754408661907416e+00};
  const double PLow = 0.02425;
  double X;
  if (P < PLow) {
    double Q = std::sqrt(-2.0 * std::log(P));
    X = (((((C[0] * Q + C[1]) * Q + C[2]) * Q + C[3]) * Q + C[4]) * Q + C[5]) /
        ((((D[0] * Q + D[1]) * Q + D[2]) * Q + D[3]) * Q + 1.0);
  } else if (P <= 1.0 - PLow) {
    double Q = P - 0.5;
    double R = Q * Q;
    X = (((((A[0] * R + A[1]) * R + A[2]) * R + A[3]) * R + A[4]) * R + A[5]) *
        Q /
        (((((B[0] * R + B[1]) * R + B[2]) * R + B[3]) * R + B[4]) * R + 1.0);
  } else {
    double Q = std::sqrt(-2.0 * std::log(1.0 - P));
    X = -(((((C[0] * Q + C[1]) * Q + C[2]) * Q + C[3]) * Q + C[4]) * Q + C[5]) /
        ((((D[0] * Q + D[1]) * Q + D[2]) * Q + D[3]) * Q + 1.0);
  }
  // ...polished by one Halley step against the exact CDF.
  double E = normalCdf(X) - P;
  double U = E * std::sqrt(2.0 * M_PI) * std::exp(0.5 * X * X);
  return X - U / (1.0 + 0.5 * X * U);
}

double alic::studentTPdf(double X, double Df) {
  assert(Df > 0.0 && "degrees of freedom must be positive");
  double LogC = logGamma(0.5 * (Df + 1.0)) - logGamma(0.5 * Df) -
                0.5 * std::log(Df * M_PI);
  return std::exp(LogC - 0.5 * (Df + 1.0) * std::log1p(X * X / Df));
}

double alic::studentTCdf(double X, double Df) {
  assert(Df > 0.0 && "degrees of freedom must be positive");
  if (X == 0.0)
    return 0.5;
  double Z = Df / (Df + X * X);
  double Tail = 0.5 * regularizedBeta(Z, 0.5 * Df, 0.5);
  return X > 0.0 ? 1.0 - Tail : Tail;
}

double alic::studentTQuantile(double P, double Df) {
  assert(P > 0.0 && P < 1.0 && "quantile domain is (0, 1)");
  assert(Df > 0.0 && "degrees of freedom must be positive");
  if (P == 0.5)
    return 0.0;
  // Newton from the normal quantile; the t CDF is smooth and monotone.
  double X = normalQuantile(P);
  if (Df <= 2.0)
    X *= 2.0; // heavy tails: start wider to avoid slow creep
  for (int I = 0; I != 60; ++I) {
    double F = studentTCdf(X, Df) - P;
    double G = studentTPdf(X, Df);
    if (G <= 0.0)
      break;
    double Step = F / G;
    // Damp steps to stay stable in the extreme tails of low-df t.
    if (Step > 2.0)
      Step = 2.0;
    if (Step < -2.0)
      Step = -2.0;
    X -= Step;
    if (std::fabs(Step) < 1e-12 * (1.0 + std::fabs(X)))
      break;
  }
  return X;
}

double alic::chiSquareCdf(double X, double Df) {
  assert(Df > 0.0 && "degrees of freedom must be positive");
  if (X <= 0.0)
    return 0.0;
  return regularizedGammaP(0.5 * Df, 0.5 * X);
}

double alic::chiSquareQuantile(double P, double Df) {
  assert(P > 0.0 && P < 1.0 && "quantile domain is (0, 1)");
  // Bisection: robust and plenty fast for the handful of calls we make.
  double Lo = 0.0;
  double Hi = Df + 10.0 * std::sqrt(2.0 * Df) + 10.0;
  while (chiSquareCdf(Hi, Df) < P)
    Hi *= 2.0;
  for (int I = 0; I != 200; ++I) {
    double Mid = 0.5 * (Lo + Hi);
    if (chiSquareCdf(Mid, Df) < P)
      Lo = Mid;
    else
      Hi = Mid;
    if (Hi - Lo < 1e-12 * (1.0 + Hi))
      break;
  }
  return 0.5 * (Lo + Hi);
}

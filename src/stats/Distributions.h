//===- stats/Distributions.h - Probability distributions ------*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled density, distribution, and quantile functions for the
/// distributions the reproduction needs: Normal (noise and leaf posteriors),
/// Student-t (confidence intervals and dynamic-tree predictive), and the
/// Gamma family (chi-square variance intervals, Bayesian posteriors).
/// The paper's experiments lean on R internals for these; we reimplement
/// them with standard numerical methods (Lentz continued fractions for the
/// incomplete beta/gamma, Acklam's rational approximation plus a Halley
/// polish for the normal quantile).
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_STATS_DISTRIBUTIONS_H
#define ALIC_STATS_DISTRIBUTIONS_H

namespace alic {

/// Natural log of the Gamma function (Lanczos approximation).
double logGamma(double X);

/// Regularized lower incomplete gamma P(a, x).
double regularizedGammaP(double A, double X);

/// Regularized incomplete beta I_x(a, b).
double regularizedBeta(double X, double A, double B);

/// Standard normal density.
double normalPdf(double X);

/// Standard normal CDF.
double normalCdf(double X);

/// Standard normal quantile (inverse CDF); \p P must be in (0, 1).
double normalQuantile(double P);

/// Student-t density with \p Df degrees of freedom.
double studentTPdf(double X, double Df);

/// Student-t CDF with \p Df degrees of freedom.
double studentTCdf(double X, double Df);

/// Student-t quantile with \p Df degrees of freedom; \p P in (0, 1).
double studentTQuantile(double P, double Df);

/// Chi-square CDF with \p Df degrees of freedom.
double chiSquareCdf(double X, double Df);

/// Chi-square quantile with \p Df degrees of freedom; \p P in (0, 1).
double chiSquareQuantile(double P, double Df);

} // namespace alic

#endif // ALIC_STATS_DISTRIBUTIONS_H

//===- stats/OnlineStats.cpp ----------------------------------*- C++ -*-===//

#include "stats/OnlineStats.h"

#include "stats/Distributions.h"

#include <algorithm>
#include <cmath>

using namespace alic;

void OnlineStats::add(double Value) {
  ++N;
  double Delta = Value - Mean;
  Mean += Delta / double(N);
  M2 += Delta * (Value - Mean);
  Min = std::min(Min, Value);
  Max = std::max(Max, Value);
}

void OnlineStats::merge(const OnlineStats &Other) {
  if (Other.N == 0)
    return;
  if (N == 0) {
    *this = Other;
    return;
  }
  double Delta = Other.Mean - Mean;
  uint64_t Total = N + Other.N;
  M2 += Other.M2 +
        Delta * Delta * (double(N) * double(Other.N)) / double(Total);
  Mean += Delta * double(Other.N) / double(Total);
  N = Total;
  Min = std::min(Min, Other.Min);
  Max = std::max(Max, Other.Max);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::stderrOfMean() const {
  return N ? std::sqrt(variance() / double(N)) : 0.0;
}

ConfidenceInterval OnlineStats::confidenceInterval(double Confidence) const {
  if (N < 2)
    return {mean(), mean()};
  double Alpha = 1.0 - Confidence;
  double T = studentTQuantile(1.0 - 0.5 * Alpha, double(N - 1));
  double Half = T * stderrOfMean();
  return {Mean - Half, Mean + Half};
}

double OnlineStats::ciOverMean(double Confidence) const {
  if (N < 2 || Mean == 0.0)
    return std::numeric_limits<double>::infinity();
  return confidenceInterval(Confidence).halfWidth() / std::fabs(Mean);
}

//===- dynatree/DynaTree.h - Dynamic trees (SMC regression) ---*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch reimplementation of dynamic trees (Taddy, Gramacy &
/// Polson, "Dynamic Trees for Learning and Design", JASA 106(493), 2011) —
/// the model behind the R dynaTree package the paper uses (Section 3.2).
///
/// The model is a sequential-Monte-Carlo ensemble ("particles") of
/// Bayesian regression trees with constant leaves under a conjugate
/// Normal-Inverse-Gamma prior.  Every new observation (x, y):
///
///   1. *reweights* particles by their posterior predictive p(y | x, T);
///   2. *resamples* particles in proportion to those weights (systematic
///      resampling);
///   3. *propagates* each particle with one of three stochastic moves
///      local to the leaf containing x — stay, prune, or grow (Figure 4
///      of the paper) — drawn from their local posterior;
///   4. absorbs (x, y) into the affected leaf's sufficient statistics.
///
/// This gives O(particles * depth) updates (no refit), calibrated
/// predictive variance, and closed-form ALM/ALC scores — the properties
/// the paper's Section 3.2 lists as the reasons to prefer dynamic trees
/// over GPs for active learning.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_DYNATREE_DYNATREE_H
#define ALIC_DYNATREE_DYNATREE_H

#include "model/SurrogateModel.h"
#include "support/Rng.h"

#include <cstdint>
#include <vector>

namespace alic {

/// Tuning constants of the dynamic-tree model.
struct DynaTreeConfig {
  /// Number of SMC particles (the paper runs N = 5000).
  unsigned NumParticles = 1000;

  /// Tree prior: p_split(depth) = SplitAlpha * (1 + depth)^-SplitBeta
  /// (Chipman, George & McCulloch).
  double SplitAlpha = 0.95;
  double SplitBeta = 1.5;

  /// Minimum observations per leaf for a grow move.
  unsigned MinLeafSize = 3;

  /// Normal-Inverse-Gamma prior strength (pseudo-observations of the
  /// mean) and variance shape; the scale is set empirically from the
  /// seed data in fit().
  double PriorKappa = 0.1;
  double PriorShape = 3.0;

  /// Fraction of the seed variance used as the prior expected leaf
  /// variance: small values expect leaves to explain most variance and
  /// make splits cheap to justify.
  double PriorScaleFactor = 0.01;

  /// RNG seed (the whole model is deterministic given the data order).
  uint64_t Seed = 17;
};

/// Dynamic-tree surrogate model.
class DynaTree : public SurrogateModel {
public:
  explicit DynaTree(DynaTreeConfig Config = DynaTreeConfig());

  void fit(const std::vector<std::vector<double>> &X,
           const std::vector<double> &Y) override;
  void update(const std::vector<double> &X, double Y) override;
  Prediction predict(const std::vector<double> &X) const override;
  std::vector<double>
  alcScores(const std::vector<std::vector<double>> &Candidates,
            const std::vector<std::vector<double>> &Reference,
            const ScoreContext &Ctx = ScoreContext()) const override;
  size_t numObservations() const override { return DataX.size(); }

  /// Ensemble diagnostics (tests, benches).
  double averageLeafCount() const;
  double averageDepth() const;
  double effectiveSampleSize() const { return LastEss; }

private:
  struct Node {
    int32_t Left = -1;   ///< -1 for leaves
    int32_t Right = -1;
    int32_t Parent = -1;
    int16_t SplitDim = -1;
    uint16_t Depth = 0;
    double SplitValue = 0.0;
    // Leaf sufficient statistics.
    double SumY = 0.0;
    double SumY2 = 0.0;
    uint32_t Count = 0;
    std::vector<uint32_t> Points; ///< indices into DataX (leaves only)
  };

  struct Particle {
    std::vector<Node> Nodes; ///< node 0 is the root
  };

  /// Index of the leaf of \p P containing \p X.
  int32_t findLeaf(const Particle &P, const std::vector<double> &X) const;

  /// Log marginal likelihood of a leaf with the given sufficient stats.
  double logMarginal(uint32_t N, double SumY, double SumY2) const;

  /// Log posterior predictive density of \p Y at a leaf.
  double logPredictive(const Node &Leaf, double Y) const;

  /// Leaf predictive mean/variance.
  Prediction leafPredictive(const Node &Leaf) const;

  /// Expected drop in a leaf's predictive variance from one extra sample.
  double leafVarianceDrop(const Node &Leaf) const;

  /// p_split at \p Depth.
  double splitProbability(unsigned Depth) const;

  /// Applies one stay/prune/grow move for the new point \p PointIdx.
  void propagate(Particle &P, uint32_t PointIdx, Rng &R);

  /// Absorbs a data point into leaf \p LeafIdx of \p P.
  void absorb(Particle &P, int32_t LeafIdx, uint32_t PointIdx);

  /// Systematic resampling by normalized weights; preserves determinism.
  void resample(const std::vector<double> &LogWeights, Rng &R);

  DynaTreeConfig Config;
  std::vector<Particle> Particles;
  std::vector<std::vector<double>> DataX;
  std::vector<double> DataY;
  // Empirical NIG prior (set from seed data).
  double PriorMean = 0.0;
  double PriorScale = 1.0; ///< b0 of the inverse gamma
  double LastEss = 0.0;
  Rng Generator;
};

} // namespace alic

#endif // ALIC_DYNATREE_DYNATREE_H

//===- dynatree/DynaTree.h - Dynamic trees (SMC regression) ---*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch reimplementation of dynamic trees (Taddy, Gramacy &
/// Polson, "Dynamic Trees for Learning and Design", JASA 106(493), 2011) —
/// the model behind the R dynaTree package the paper uses (Section 3.2).
///
/// The model is a sequential-Monte-Carlo ensemble ("particles") of
/// Bayesian regression trees with constant leaves under a conjugate
/// Normal-Inverse-Gamma prior.  Every new observation (x, y):
///
///   1. *reweights* particles by their posterior predictive p(y | x, T);
///   2. *resamples* particles in proportion to those weights (systematic
///      resampling);
///   3. *propagates* each particle with one of three stochastic moves
///      local to the leaf containing x — stay, prune, or grow (Figure 4
///      of the paper) — drawn from their local posterior;
///   4. absorbs (x, y) into the affected leaf's sufficient statistics.
///
/// This gives O(particles * depth) updates (no refit), calibrated
/// predictive variance, and closed-form ALM/ALC scores — the properties
/// the paper's Section 3.2 lists as the reasons to prefer dynamic trees
/// over GPs for active learning.
///
/// The particle engine is built for throughput at the paper's N = 5000:
///
///  * **Flat storage.**  Training rows live in one contiguous FlatRows
///    buffer; each particle's tree is a POD node arena, a pooled chunk
///    list of per-leaf point indices, and cached leaf bounding boxes.
///    Copying a tree is three vector copies — no per-leaf heap
///    allocations.
///
///  * **Copy-on-write resampling.**  Systematic resampling only copies a
///    shared_ptr per offspring.  The common post-resample move ("stay")
///    appends a (leaf, point) entry to a small per-particle pending list;
///    the shared tree is cloned only when a particle mutates structurally
///    (grow/prune) or its pending list fills up.
///
///  * **Deterministic parallel updates.**  Reweighting and propagation
///    shard across the work-stealing Scheduler on a fixed particle grid;
///    every particle draws from its own counter-derived RNG stream
///    (seed, step, index), so results are bit-identical at any worker
///    count and under any steal order — the same discipline
///    ScoreContext::shardSeed established for scoring.  The shards fork
///    onto the same pool even when the model already runs inside a
///    scheduler task (a campaign cell), so idle workers can steal them.
///
///  * **Unique-run deduplicated scoring.**  Copy-on-write resampling
///    leaves duplicate particles *contiguous*, sharing one tree pointer
///    and identical pending lists, so their per-candidate leaf walks and
///    posteriors are equal by construction.  A run index groups
///    consecutive particles by (tree identity, pending fingerprint);
///    reweighting, predict(), almScores(), and alcScores() evaluate each
///    run once and accumulate the result per particle in original index
///    order — bit-for-bit the sums the naive per-particle path produces,
///    at a fraction of the walks.  The same index lets propagate() reuse
///    its packed grow-scan gather across consecutive aliases.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_DYNATREE_DYNATREE_H
#define ALIC_DYNATREE_DYNATREE_H

#include "model/SurrogateModel.h"
#include "support/Rng.h"

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

namespace alic {

class Scheduler;

/// Tuning constants of the dynamic-tree model.
struct DynaTreeConfig {
  /// Number of SMC particles (the paper's Section 4.4 value).
  unsigned NumParticles = 5000;

  /// Tree prior: p_split(depth) = SplitAlpha * (1 + depth)^-SplitBeta
  /// (Chipman, George & McCulloch).
  double SplitAlpha = 0.95;
  double SplitBeta = 1.5;

  /// Minimum observations per leaf for a grow move.
  unsigned MinLeafSize = 3;

  /// Normal-Inverse-Gamma prior strength (pseudo-observations of the
  /// mean) and variance shape; the scale is set empirically from the
  /// seed data in fit().
  double PriorKappa = 0.1;
  double PriorShape = 3.0;

  /// Fraction of the seed variance used as the prior expected leaf
  /// variance: small values expect leaves to explain most variance and
  /// make splits cheap to justify.
  double PriorScaleFactor = 0.01;

  /// RNG seed (the whole model is deterministic given the data order).
  uint64_t Seed = 17;
};

/// Dynamic-tree surrogate model.
class DynaTree : public SurrogateModel {
public:
  explicit DynaTree(DynaTreeConfig Config = DynaTreeConfig());

  void fit(const FlatRows &X, const std::vector<double> &Y) override;
  void update(RowRef X, double Y) override;
  Prediction predict(RowRef X) const override;
  std::vector<double> almScores(const FlatRows &Candidates,
                                const ScoreContext &Ctx = ScoreContext())
      const override;
  std::vector<double> alcScores(const FlatRows &Candidates,
                                const FlatRows &Reference,
                                const ScoreContext &Ctx = ScoreContext())
      const override;
  size_t numObservations() const override { return DataY.size(); }
  void setScheduler(Scheduler *Pool) override { Workers = Pool; }

  /// Disables (or re-enables) unique-run deduplicated scoring, forcing
  /// the naive per-particle walk in predict/almScores/alcScores.  The
  /// two paths are bit-identical by construction (gtest-pinned); the
  /// toggle exists so benches and tests can measure/verify the naive
  /// reference on the very same ensemble state.
  void setScoringDedup(bool Enabled) { DedupScoring = Enabled; }

  /// Ensemble diagnostics (tests, benches).
  double averageLeafCount() const;
  double averageDepth() const;
  double effectiveSampleSize() const { return LastEss; }

  /// Number of unique-particle runs: maximal groups of consecutive
  /// particles sharing one tree and one pending list.  Scoring cost
  /// scales with this, not with NumParticles.
  size_t uniqueRunCount() const {
    return RunOffsets.empty() ? 0 : RunOffsets.size() - 1;
  }

  /// Fraction of particles that alias an earlier particle of their run
  /// (1 - uniqueRunCount() / NumParticles); the dedup win grows with it.
  double duplicateFraction() const {
    return Particles.empty()
               ? 0.0
               : 1.0 - double(uniqueRunCount()) / double(Particles.size());
  }

private:
  /// Point-index chunks per leaf are linked lists of fixed-size blocks in
  /// the tree's pooled chunk arena: appending a point never reallocates
  /// per-leaf storage, and tree copies are plain vector copies.
  static constexpr unsigned ChunkCapacity = 10;
  struct PtsChunk {
    int32_t Next = -1; ///< next (older) chunk, -1 terminates
    uint32_t Used = 0;
    uint32_t Entries[ChunkCapacity];
  };

  struct Node {
    int32_t Left = -1; ///< -1 for leaves
    int32_t Right = -1;
    int32_t Parent = -1;
    int16_t SplitDim = -1;
    uint16_t Depth = 0;
    double SplitValue = 0.0;
    // Leaf sufficient statistics.
    double SumY = 0.0;
    double SumY2 = 0.0;
    uint32_t Count = 0;
    int32_t PtsHead = -1; ///< head of the leaf's point-chunk list
  };

  /// One tree: a flat node arena (node 0 is the root), the pooled
  /// point-chunk arena its leaves index into, and per-node bounding boxes
  /// ([Dims lows, Dims highs] per node, expanded incrementally on absorb
  /// so grow proposals never rescan a leaf to bound it).  POD vectors
  /// only, so a clone is three memcpy-style copies.
  struct Tree {
    std::vector<Node> Nodes;
    std::vector<PtsChunk> Chunks;
    std::vector<double> Bounds;
  };

  /// A data point absorbed by a "stay" move but not yet written into the
  /// (possibly shared) tree.
  struct PendingPoint {
    int32_t LeafIdx = -1;
    uint32_t PointIdx = 0;
  };

  /// Pending "stay" absorptions a particle can defer before it must
  /// materialize a private tree copy.
  static constexpr unsigned MaxPending = 8;

  /// One particle: a (possibly shared) tree plus its deferred stays.
  /// After resampling, duplicates alias the ancestor's tree; a particle
  /// clones it only on its first structural mutation or when the pending
  /// list fills up.
  struct Particle {
    std::shared_ptr<Tree> T;
    std::array<PendingPoint, MaxPending> Pending;
    uint8_t NumPending = 0;
  };

  /// Effective sufficient statistics of a leaf: the tree's stored stats
  /// plus any pending absorptions targeting it.
  struct LeafStats {
    uint32_t Count = 0;
    double SumY = 0.0;
    double SumY2 = 0.0;
  };

  /// Index of the leaf of \p T containing \p X (pending points never
  /// change structure, so the walk needs no overlay checks).
  int32_t findLeaf(const Tree &T, const double *X) const;

  LeafStats leafStats(const Particle &P, int32_t LeafIdx) const;

  /// Invokes \p Fn(PointIdx) for every point of leaf \p LeafIdx,
  /// including pending ones, in a deterministic order.
  template <typename Fn>
  void forEachLeafPoint(const Particle &P, int32_t LeafIdx, Fn &&F) const;

  /// Log marginal likelihood of a leaf with the given sufficient stats.
  double logMarginal(uint32_t N, double SumY, double SumY2) const;

  /// Log posterior predictive density of \p Y at a leaf.
  double logPredictive(const LeafStats &S, double Y) const;

  /// Leaf predictive mean/variance.
  Prediction leafPredictive(const LeafStats &S) const;

  /// Expected drop in a leaf's predictive variance from one extra sample.
  double leafVarianceDrop(const LeafStats &S) const;

  /// p_split at \p Depth.
  double splitProbability(unsigned Depth) const;

  /// Gives \p P sole ownership of its tree with all pending points
  /// flushed: in place when already unique, by cloning when shared.
  /// Either path produces bit-identical tree contents.
  void materialize(Particle &P);

  /// Absorbs point \p PointIdx into leaf \p LeafIdx of the (uniquely
  /// owned) tree \p T, expanding the leaf's bounding box.
  void absorbInto(Tree &T, int32_t LeafIdx, uint32_t PointIdx);

  /// Appends one node's (empty) bounding-box slot to \p T.
  void pushBoundsSlot(Tree &T) const;

  /// Candidate-independent context of one propagate() call, cacheable
  /// across the consecutive aliases of a unique-particle run (same tree,
  /// same pending list => same leaf for the new point, same effective
  /// stats, same bounds, same leaf rows).  The packed columns turn the
  /// multi-try grow scan into unit-stride passes: leaf rows (pending
  /// included, new point last, in forEachLeafPoint order) are gathered
  /// once into one column per spread dimension plus Y and Y**2, instead
  /// of chasing PtsChunk links and strided DataX gathers per try.  Only
  /// the validity flag carries semantics; the vectors are reusable
  /// buffers that live in thread-local storage to amortize allocation.
  struct GrowScratch {
    bool Valid = false;   ///< pack describes the current run
    bool CanGrow = false; ///< leaf large enough for a grow proposal
    int32_t LeafIdx = -1;
    LeafStats Eff;
    double LStay = 0.0;
    std::vector<double> Lo, Hi;    ///< leaf bounds incl. pending + new point
    std::vector<int> Spread;       ///< dimensions with Hi > Lo
    std::vector<uint32_t> Pts;     ///< leaf rows in traversal order (no new pt)
    std::vector<double> Cols;      ///< Spread.size() x NumPts, column-major
    std::vector<uint8_t> ColDone;  ///< column J gathered yet? (lazy fill)
    std::vector<double> Ys, Y2s;   ///< NumPts each (new point last)
  };

  /// Applies one stay/prune/grow move for the new point \p PointIdx.
  /// \p ReuseScan says the caller knows \p P continues the unique run
  /// \p Scratch was built for (the run index pins this); otherwise the
  /// scratch is rebuilt.  Reuse changes no arithmetic — the cached pack
  /// is bitwise the one this particle would gather itself.
  void propagate(Particle &P, uint32_t PointIdx, Rng &R, GrowScratch &Scratch,
                 bool ReuseScan);

  /// Recomputes the unique-particle run index (RunOffsets / RunOf) by
  /// grouping consecutive particles with one tree identity and one
  /// pending fingerprint.  Called after every ensemble mutation phase
  /// (seeding, resample, propagate) so scoring always sees a fresh
  /// index; O(NumParticles) pointer + pending compares.
  void rebuildRunIndex();

  /// SMC step for one point: optional reweight+resample, then parallel
  /// propagation.  \p Resample is false during batched seeding.
  void ingest(uint32_t PointIdx, bool Resample);

  /// Systematic resampling by normalized weights (counter-based pivot
  /// draw); shares trees copy-on-write instead of cloning them.
  void resampleParticles(const std::vector<double> &LogWeights);

  /// Counter-derived RNG stream of particle \p Index at SMC step \p Step:
  /// a pure function of (Config.Seed, Step, Index), so neither thread
  /// count nor particle scheduling order can perturb the draws.
  Rng particleRng(uint64_t Step, size_t Index) const;

  /// Extends the count-indexed logMarginal term tables to cover leaf
  /// counts up to \p MaxN.  Called single-threaded (fit/update) before
  /// any parallel phase reads them.
  void ensureMarginalTables(size_t MaxN);

  DynaTreeConfig Config;
  std::vector<Particle> Particles;
  size_t Dims = 0; ///< feature dimensionality (fixed by fit())
  FlatRows DataX;
  std::vector<double> DataY;
  // Empirical NIG prior (set from seed data).
  double PriorMean = 0.0;
  double PriorScale = 1.0; ///< b0 of the inverse gamma
  // Memoized logMarginal terms: every leaf count N maps An = A0 + N/2 and
  // Kn = K0 + N onto fixed grids, so the two logGamma and two of the
  // three log evaluations per call become table reads.  Entries hold the
  // exact values the direct evaluation would produce (bit-identical).
  std::vector<double> LogGammaAnTable; ///< logGamma(A0 + 0.5 * N)
  std::vector<double> LogKnTable;      ///< log(K0 + N)
  double LogGammaA0 = 0.0;
  double LogB0 = 0.0;
  double LogK0 = 0.0;
  double LastEss = 0.0;
  uint64_t StepCounter = 0; ///< SMC steps performed (one per point)
  Scheduler *Workers = nullptr;
  // Unique-particle run index: run R spans particles [RunOffsets[R],
  // RunOffsets[R+1]); RunOf maps a particle index to its run.  Rebuilt
  // by rebuildRunIndex() after every mutation phase.
  std::vector<uint32_t> RunOffsets;
  std::vector<uint32_t> RunOf;
  bool DedupScoring = true; ///< see setScoringDedup()
};

} // namespace alic

#endif // ALIC_DYNATREE_DYNATREE_H

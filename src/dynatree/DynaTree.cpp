//===- dynatree/DynaTree.cpp ----------------------------------*- C++ -*-===//

#include "dynatree/DynaTree.h"

#include "stats/Distributions.h"
#include "support/Error.h"
#include "support/Scheduler.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>

using namespace alic;

// ThreadSanitizer does not instrument std::atomic_thread_fence, so it
// cannot see the (valid) fence/use_count synchronization materialize()
// relies on for its in-place path.  Sanitizer builds therefore always
// clone — the two paths produce bit-identical tree contents, so only
// the sanitizer's blind spot goes away, never a result.
#if defined(__SANITIZE_THREAD__)
#define ALIC_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ALIC_TSAN 1
#endif
#endif
#ifndef ALIC_TSAN
#define ALIC_TSAN 0
#endif

namespace {
/// Particles per shard of the parallel reweight/propagate phases.  Fixed
/// (never derived from the thread count) so the shard grid — and with it
/// every per-particle RNG stream — is identical at any parallelism.
constexpr size_t ParticleShardSize = 64;
} // namespace

DynaTree::DynaTree(DynaTreeConfig Config) : Config(Config) {
  assert(Config.NumParticles >= 1 && "need at least one particle");
  assert(Config.MinLeafSize >= 1 && "leaves need at least one observation");
}

double DynaTree::splitProbability(unsigned Depth) const {
  return Config.SplitAlpha * std::pow(1.0 + double(Depth), -Config.SplitBeta);
}

Rng DynaTree::particleRng(uint64_t Step, size_t Index) const {
  return Rng(hashCombine({Config.Seed, Step, uint64_t(Index), 0xd7eeull}));
}

//===----------------------------------------------------------------------===//
// Leaf posterior (Normal-Inverse-Gamma conjugate algebra)
//===----------------------------------------------------------------------===//

void DynaTree::ensureMarginalTables(size_t MaxN) {
  if (LogGammaAnTable.size() > MaxN)
    return;
  // Geometric push_back growth on purpose: update() extends by one entry
  // per step, and an exact reserve here would reallocate every call.
  for (size_t N = LogGammaAnTable.size(); N <= MaxN; ++N) {
    LogGammaAnTable.push_back(logGamma(Config.PriorShape + 0.5 * double(N)));
    LogKnTable.push_back(std::log(Config.PriorKappa + double(N)));
  }
}

double DynaTree::logMarginal(uint32_t N, double SumY, double SumY2) const {
  if (N == 0)
    return 0.0;
  assert(N < LogGammaAnTable.size() && "marginal tables not extended");
  double K0 = Config.PriorKappa;
  double A0 = Config.PriorShape;
  double B0 = PriorScale;
  double M0 = PriorMean;
  double Nd = double(N);
  double Mean = SumY / Nd;
  double Ss = std::max(0.0, SumY2 - Nd * Mean * Mean);
  double Kn = K0 + Nd;
  double An = A0 + 0.5 * Nd;
  double Bn = B0 + 0.5 * Ss +
              0.5 * K0 * Nd * (Mean - M0) * (Mean - M0) / Kn;
  // Identical arithmetic to the direct form — the count-indexed logGamma
  // and log terms are table reads of the very same function values.
  return LogGammaAnTable[N] - LogGammaA0 + A0 * LogB0 -
         An * std::log(Bn) + 0.5 * (LogK0 - LogKnTable[N]) -
         0.5 * Nd * std::log(2.0 * M_PI);
}

/// Posterior NIG parameters of a leaf.
namespace {
struct LeafPosterior {
  double Mn, Kn, An, Bn;
};
} // namespace

static LeafPosterior posteriorOf(uint32_t N, double SumY, double SumY2,
                                 double K0, double A0, double B0, double M0) {
  double Nd = double(N);
  double Mean = N ? SumY / Nd : 0.0;
  double Ss = N ? std::max(0.0, SumY2 - Nd * Mean * Mean) : 0.0;
  LeafPosterior P;
  P.Kn = K0 + Nd;
  P.Mn = (K0 * M0 + SumY) / P.Kn;
  P.An = A0 + 0.5 * Nd;
  P.Bn = B0 + 0.5 * Ss + 0.5 * K0 * Nd * (Mean - M0) * (Mean - M0) / P.Kn;
  return P;
}

double DynaTree::logPredictive(const LeafStats &S, double Y) const {
  LeafPosterior P = posteriorOf(S.Count, S.SumY, S.SumY2, Config.PriorKappa,
                                Config.PriorShape, PriorScale, PriorMean);
  // Student-t with df = 2*An, location Mn, scale^2 = Bn (Kn+1) / (An Kn).
  double Df = 2.0 * P.An;
  double Scale2 = P.Bn * (P.Kn + 1.0) / (P.An * P.Kn);
  double Scale = std::sqrt(Scale2);
  double Z = (Y - P.Mn) / Scale;
  return std::log(studentTPdf(Z, Df) / Scale);
}

Prediction DynaTree::leafPredictive(const LeafStats &S) const {
  LeafPosterior P = posteriorOf(S.Count, S.SumY, S.SumY2, Config.PriorKappa,
                                Config.PriorShape, PriorScale, PriorMean);
  double Df = 2.0 * P.An;
  double Scale2 = P.Bn * (P.Kn + 1.0) / (P.An * P.Kn);
  Prediction Out;
  Out.Mean = P.Mn;
  Out.Variance = Df > 2.0 ? Scale2 * Df / (Df - 2.0) : Scale2 * 3.0;
  return Out;
}

double DynaTree::leafVarianceDrop(const LeafStats &S) const {
  LeafPosterior P = posteriorOf(S.Count, S.SumY, S.SumY2, Config.PriorKappa,
                                Config.PriorShape, PriorScale, PriorMean);
  // sigma2_hat * [ (Kn+1)/Kn - (Kn+2)/(Kn+1) ]: the expected shrink of the
  // predictive variance when the leaf absorbs one more observation.
  double Sigma2 = P.An > 1.0 ? P.Bn / (P.An - 1.0) : P.Bn;
  double Now = (P.Kn + 1.0) / P.Kn;
  double Then = (P.Kn + 2.0) / (P.Kn + 1.0);
  return Sigma2 * (Now - Then);
}

//===----------------------------------------------------------------------===//
// Tree navigation and bookkeeping
//===----------------------------------------------------------------------===//

int32_t DynaTree::findLeaf(const Tree &T, const double *X) const {
  int32_t Idx = 0;
  while (T.Nodes[Idx].Left >= 0) {
    const Node &N = T.Nodes[Idx];
    Idx = X[N.SplitDim] <= N.SplitValue ? N.Left : N.Right;
  }
  return Idx;
}

DynaTree::LeafStats DynaTree::leafStats(const Particle &P,
                                        int32_t LeafIdx) const {
  const Node &N = P.T->Nodes[size_t(LeafIdx)];
  LeafStats S{N.Count, N.SumY, N.SumY2};
  // Fold pending absorptions in FIFO order — the same order materialize()
  // flushes them — so deferred and flushed stats agree bit-for-bit.
  for (unsigned I = 0; I != P.NumPending; ++I)
    if (P.Pending[I].LeafIdx == LeafIdx) {
      double Y = DataY[P.Pending[I].PointIdx];
      S.SumY += Y;
      S.SumY2 += Y * Y;
      ++S.Count;
    }
  return S;
}

template <typename Fn>
void DynaTree::forEachLeafPoint(const Particle &P, int32_t LeafIdx,
                                Fn &&F) const {
  const Tree &T = *P.T;
  for (int32_t C = T.Nodes[size_t(LeafIdx)].PtsHead; C >= 0;
       C = T.Chunks[size_t(C)].Next) {
    const PtsChunk &Chunk = T.Chunks[size_t(C)];
    for (uint32_t I = 0; I != Chunk.Used; ++I)
      F(Chunk.Entries[I]);
  }
  for (unsigned I = 0; I != P.NumPending; ++I)
    if (P.Pending[I].LeafIdx == LeafIdx)
      F(P.Pending[I].PointIdx);
}

void DynaTree::pushBoundsSlot(Tree &T) const {
  T.Bounds.insert(T.Bounds.end(), Dims, 1e300);  // lows
  T.Bounds.insert(T.Bounds.end(), Dims, -1e300); // highs
}

void DynaTree::absorbInto(Tree &T, int32_t LeafIdx, uint32_t PointIdx) {
  Node &Leaf = T.Nodes[size_t(LeafIdx)];
  double Y = DataY[PointIdx];
  Leaf.SumY += Y;
  Leaf.SumY2 += Y * Y;
  ++Leaf.Count;
  // Expand the leaf's bounding box — the cached ranges grow proposals cut.
  const double *Row = DataX.row(PointIdx);
  double *Lo = T.Bounds.data() + size_t(LeafIdx) * 2 * Dims;
  double *Hi = Lo + Dims;
  for (size_t Dim = 0; Dim != Dims; ++Dim) {
    Lo[Dim] = std::min(Lo[Dim], Row[Dim]);
    Hi[Dim] = std::max(Hi[Dim], Row[Dim]);
  }
  if (Leaf.PtsHead >= 0 && T.Chunks[size_t(Leaf.PtsHead)].Used < ChunkCapacity) {
    PtsChunk &Head = T.Chunks[size_t(Leaf.PtsHead)];
    Head.Entries[Head.Used++] = PointIdx;
    return;
  }
  PtsChunk Fresh;
  Fresh.Next = Leaf.PtsHead;
  Fresh.Used = 1;
  Fresh.Entries[0] = PointIdx;
  T.Chunks.push_back(Fresh);
  Leaf.PtsHead = int32_t(T.Chunks.size() - 1);
}

void DynaTree::materialize(Particle &P) {
  // use_count() == 1 proves sole ownership: during the parallel propagate
  // phase other threads only *release* references (when their particles
  // clone), never acquire them, so an observed 1 cannot be stale.  A stale
  // 2 merely takes the clone path, which produces identical contents.
  if (ALIC_TSAN || P.T.use_count() != 1) {
    P.T = std::make_shared<Tree>(*P.T);
  } else {
    // Order the in-place writes below after a sibling thread's
    // clone-and-release of this tree: use_count() is a relaxed load, so
    // pair the releasing decrement with an explicit acquire fence.
    std::atomic_thread_fence(std::memory_order_acquire);
  }
  Tree &T = *P.T;
  for (unsigned I = 0; I != P.NumPending; ++I)
    absorbInto(T, P.Pending[I].LeafIdx, P.Pending[I].PointIdx);
  P.NumPending = 0;
}

//===----------------------------------------------------------------------===//
// Unique-particle run index
//===----------------------------------------------------------------------===//

namespace {
/// Two particles are state-identical — and therefore produce bit-equal
/// leaf walks, posteriors, and scores — when they alias one tree object
/// and carry the same pending list.  Tree *identity* (not content) is
/// the criterion: content-equal trees in different allocations would
/// also dedupe correctly, but detecting them would cost more than it
/// saves, and resampling only ever creates identity aliases.
template <typename ParticleT>
bool sameRunState(const ParticleT &A, const ParticleT &B) {
  if (A.T.get() != B.T.get() || A.NumPending != B.NumPending)
    return false;
  for (unsigned I = 0; I != A.NumPending; ++I)
    if (A.Pending[I].LeafIdx != B.Pending[I].LeafIdx ||
        A.Pending[I].PointIdx != B.Pending[I].PointIdx)
      return false;
  return true;
}
} // namespace

void DynaTree::rebuildRunIndex() {
  size_t N = Particles.size();
  RunOffsets.clear();
  RunOf.resize(N);
  for (size_t I = 0; I != N; ++I) {
    if (I == 0 || !sameRunState(Particles[I - 1], Particles[I]))
      RunOffsets.push_back(uint32_t(I));
    RunOf[I] = uint32_t(RunOffsets.size() - 1);
  }
  RunOffsets.push_back(uint32_t(N));
}

//===----------------------------------------------------------------------===//
// SMC machinery
//===----------------------------------------------------------------------===//

void DynaTree::resampleParticles(const std::vector<double> &LogWeights) {
  size_t N = Particles.size();
  double MaxLw = *std::max_element(LogWeights.begin(), LogWeights.end());
  std::vector<double> W(N);
  double Sum = 0.0;
  for (size_t I = 0; I != N; ++I) {
    W[I] = std::exp(LogWeights[I] - MaxLw);
    Sum += W[I];
  }
  if (!(Sum > 0.0) || !std::isfinite(Sum)) {
    LastEss = double(N);
    return; // degenerate weights: keep the current ensemble
  }
  double Ess = 0.0;
  for (double &Wi : W) {
    Wi /= Sum;
    Ess += Wi * Wi;
  }
  LastEss = 1.0 / Ess;

  // Systematic resampling around a counter-derived pivot: the draw is a
  // pure function of (seed, step), independent of any shared RNG state.
  std::vector<uint32_t> Counts(N, 0);
  double U =
      Rng(hashCombine({Config.Seed, StepCounter, 0x7e5a3b1eull})).nextDouble() /
      double(N);
  double Cum = 0.0;
  size_t J = 0;
  for (size_t I = 0; I != N; ++I) {
    Cum += W[I];
    while (J < N && U + double(J) / double(N) <= Cum + 1e-15) {
      ++Counts[I];
      ++J;
    }
  }

  // Materialize the offspring as copy-on-write aliases: a duplicate costs
  // one shared_ptr copy plus the (64-byte) pending list — the tree itself
  // is cloned only if and when the offspring later mutates.
  std::vector<Particle> Next;
  Next.reserve(N);
  for (size_t I = 0; I != N; ++I) {
    for (uint32_t C = 1; C < Counts[I]; ++C)
      Next.push_back(Particles[I]); // shares the tree
    if (Counts[I] > 0)
      Next.push_back(std::move(Particles[I]));
  }
  assert(Next.size() == N && "systematic resampling must preserve count");
  Particles = std::move(Next);
}

void DynaTree::propagate(Particle &P, uint32_t PointIdx, Rng &R,
                         GrowScratch &S, bool ReuseScan) {
  const double *X = DataX.row(PointIdx);
  double NewY = DataY[PointIdx];

  // Candidate-independent preamble — leaf location, effective stats,
  // bounds, and the packed leaf columns for the grow scan.  Every alias
  // of a unique-particle run (same tree, same pending list) computes the
  // exact same values here, so the caller lets consecutive aliases reuse
  // the scratch: only the RNG draws below differ between them.  Siblings
  // cannot invalidate the cache mid-run — a clone never touches the
  // shared tree, in-place materialization requires sole ownership (and a
  // pending alias still holds a reference), and a sibling's "stay" only
  // appends to its *own* pending list.
  if (!ReuseScan)
    S.Valid = false;
  if (!S.Valid) {
    S.LeafIdx = findLeaf(*P.T, X);
    S.Eff = leafStats(P, S.LeafIdx);
    S.LStay = logMarginal(S.Eff.Count + 1, S.Eff.SumY + NewY,
                          S.Eff.SumY2 + NewY * NewY);
    S.CanGrow = S.Eff.Count + 1 >= 2 * Config.MinLeafSize;
    S.Spread.clear();
    if (S.CanGrow) {
      // The leaf's per-dimension ranges come from its cached bounding box
      // (expanded on every absorb) folded with the pending points and the
      // new point — no pass over the leaf's data is needed to bound it.
      const double *BaseLo = P.T->Bounds.data() + size_t(S.LeafIdx) * 2 * Dims;
      const double *BaseHi = BaseLo + Dims;
      S.Lo.assign(BaseLo, BaseLo + Dims);
      S.Hi.assign(BaseHi, BaseHi + Dims);
      auto Expand = [&](const double *Row) {
        for (size_t Dim = 0; Dim != Dims; ++Dim) {
          S.Lo[Dim] = std::min(S.Lo[Dim], Row[Dim]);
          S.Hi[Dim] = std::max(S.Hi[Dim], Row[Dim]);
        }
      };
      for (unsigned I = 0; I != P.NumPending; ++I)
        if (P.Pending[I].LeafIdx == S.LeafIdx)
          Expand(DataX.row(P.Pending[I].PointIdx));
      Expand(X);
      for (size_t Dim = 0; Dim != Dims; ++Dim)
        if (S.Hi[Dim] > S.Lo[Dim])
          S.Spread.push_back(int(Dim));
      if (!S.Spread.empty()) {
        // Pack the leaf's rows — pending included, new point last, in
        // forEachLeafPoint order — into one unit-stride column per
        // spread dimension plus Y and Y^2.  The multi-try scan below
        // then reads packed arrays instead of chasing PtsChunk links
        // and Dims-strided DataX gathers per try, and aliased particles
        // reuse the gather outright.
        S.Pts.clear();
        forEachLeafPoint(P, S.LeafIdx,
                         [&](uint32_t Pt) { S.Pts.push_back(Pt); });
        size_t NumPts = S.Pts.size() + 1; // + the new point, appended last
        S.Ys.resize(NumPts);
        S.Y2s.resize(NumPts);
        for (size_t I = 0; I != S.Pts.size(); ++I) {
          double Y = DataY[S.Pts[I]];
          S.Ys[I] = Y;
          S.Y2s[I] = Y * Y;
        }
        S.Ys[NumPts - 1] = NewY;
        S.Y2s[NumPts - 1] = NewY * NewY;
        // Columns are gathered lazily when a try first draws their
        // dimension (ColDone memoizes per run): a unique particle pays
        // for at most the <= 4 dimensions its tries touch, while long
        // alias runs still amortize every gather they need.
        S.Cols.resize(S.Spread.size() * NumPts);
        S.ColDone.assign(S.Spread.size(), 0);
      }
    }
    S.Valid = true;
  }

  int32_t LeafIdx = S.LeafIdx;
  const LeafStats &Eff = S.Eff;
  unsigned D = P.T->Nodes[size_t(LeafIdx)].Depth;
  double LStay = S.LStay;

  // --- Candidate: grow -----------------------------------------------
  // Multiple-try proposal: draw a handful of (dimension, cut) pairs from
  // the leaf's data range, weight each by the posterior of the resulting
  // split, and let their average compete against stay/prune.  This
  // approximates marginalizing the grow move over cut positions, which a
  // single uniform draw does far too weakly.
  int GrowDim = -1;
  double GrowCut = 0.0;
  double LGrow = -1e300;
  if (S.CanGrow && !S.Spread.empty()) {
    constexpr unsigned NumTries = 4;
    double BestL = -1e300;
    double Pd = splitProbability(D);
    double Pd1 = splitProbability(D + 1);
    double PriorTerm = std::log(Pd) + 2.0 * std::log(1.0 - Pd1) -
                       std::log(1.0 - Pd);
    // Draw every (dimension, cut) proposal first, then score all of them
    // branchless (a predicated accumulate — random cuts mispredict ~50%
    // of data-dependent branches) over the packed columns.  Each try's
    // accumulators see the exact point order of the historical row-outer
    // loop, so the FP sums are bit-identical; only the left side is
    // accumulated — the right side falls out of the leaf totals.
    struct TryAcc {
      int Dim;
      double Cut;
      uint32_t Nl = 0;
      double Sl = 0, Sl2 = 0;
    };
    TryAcc Tries[NumTries];
    for (TryAcc &T : Tries) {
      T.Dim = S.Spread[R.nextBounded(S.Spread.size())];
      T.Cut = R.nextUniform(S.Lo[size_t(T.Dim)], S.Hi[size_t(T.Dim)]);
    }
    size_t NumPts = S.Ys.size();
    for (TryAcc &T : Tries) {
      size_t ColIdx = 0;
      while (S.Spread[ColIdx] != T.Dim)
        ++ColIdx;
      double *Col = S.Cols.data() + ColIdx * NumPts;
      if (!S.ColDone[ColIdx]) {
        DataX.gatherColumn(size_t(T.Dim), S.Pts.data(), S.Pts.size(), Col);
        Col[NumPts - 1] = X[size_t(T.Dim)];
        S.ColDone[ColIdx] = 1;
      }
      uint32_t Nl = 0;
      double Sl = 0.0, Sl2 = 0.0;
      for (size_t I = 0; I != NumPts; ++I) {
        bool Left = Col[I] <= T.Cut;
        double Mask = Left ? 1.0 : 0.0;
        Nl += unsigned(Left);
        Sl += Mask * S.Ys[I];
        Sl2 += Mask * S.Y2s[I];
      }
      T.Nl = Nl;
      T.Sl = Sl;
      T.Sl2 = Sl2;
    }
    uint32_t TotalN = Eff.Count + 1;
    double TotalS = Eff.SumY + NewY;
    double TotalS2 = Eff.SumY2 + NewY * NewY;
    for (const TryAcc &T : Tries) {
      uint32_t Nr = TotalN - T.Nl;
      if (T.Nl < Config.MinLeafSize || Nr < Config.MinLeafSize)
        continue;
      double L = PriorTerm + logMarginal(T.Nl, T.Sl, T.Sl2) +
                 logMarginal(Nr, TotalS - T.Sl, TotalS2 - T.Sl2);
      if (L > BestL) {
        BestL = L;
        GrowDim = T.Dim;
        GrowCut = T.Cut;
      }
    }
    if (GrowDim >= 0)
      LGrow = BestL;
  }

  // --- Candidate: prune (only when the sibling is also a leaf) ----------
  double LPrune = -1e300;
  int32_t ParentIdx = P.T->Nodes[size_t(LeafIdx)].Parent;
  int32_t SiblingIdx = -1;
  if (ParentIdx >= 0) {
    const Node &Parent = P.T->Nodes[size_t(ParentIdx)];
    SiblingIdx = Parent.Left == LeafIdx ? Parent.Right : Parent.Left;
    if (P.T->Nodes[size_t(SiblingIdx)].Left < 0) {
      LeafStats Sib = leafStats(P, SiblingIdx);
      // Relative to stay, pruning trades the parent's split factor and the
      // two leaf marginals for one merged-leaf marginal; the leaf+new
      // marginal shared with LStay cancels in the sampling ratio.
      double PParent = splitProbability(D - 1);
      double PHere = splitProbability(D);
      LPrune = std::log(1.0 - PParent) - std::log(PParent) -
               2.0 * std::log(1.0 - PHere) +
               logMarginal(Eff.Count + Sib.Count + 1, Eff.SumY + Sib.SumY + NewY,
                           Eff.SumY2 + Sib.SumY2 + NewY * NewY) -
               logMarginal(Sib.Count, Sib.SumY, Sib.SumY2);
    }
  }

  // --- Sample the move --------------------------------------------------
  double MaxL = std::max(LStay, std::max(LGrow, LPrune));
  double WStay = std::exp(LStay - MaxL);
  double WGrow = GrowDim >= 0 ? std::exp(LGrow - MaxL) : 0.0;
  double WPrune = LPrune > -1e299 ? std::exp(LPrune - MaxL) : 0.0;
  double Total = WStay + WGrow + WPrune;
  double Draw = R.nextDouble() * Total;

  if (Draw < WGrow && GrowDim >= 0) {
    // Grow: the leaf becomes internal with two fresh children.  The
    // repartition reuses the scratch's packed gather — S.Pts holds the
    // leaf's points (pending included) in the pre-materialize traversal
    // order, with the new point appended below, so the order stays a
    // pure function of the particle's history.
    materialize(P);
    Tree &T = *P.T;
    int32_t L = int32_t(T.Nodes.size());
    int32_t Rr = L + 1;
    Node LeftChild, RightChild;
    LeftChild.Parent = LeafIdx;
    RightChild.Parent = LeafIdx;
    LeftChild.Depth = RightChild.Depth = uint16_t(D + 1);
    T.Nodes.push_back(LeftChild);
    T.Nodes.push_back(RightChild);
    pushBoundsSlot(T); // children's boxes fill in via absorbInto below
    pushBoundsSlot(T);
    for (uint32_t Pt : S.Pts) {
      bool GoesLeft = DataX.row(Pt)[GrowDim] <= GrowCut;
      absorbInto(T, GoesLeft ? L : Rr, Pt);
    }
    bool NewLeft = X[GrowDim] <= GrowCut;
    absorbInto(T, NewLeft ? L : Rr, PointIdx);
    Node &NewInternal = T.Nodes[size_t(LeafIdx)];
    NewInternal.Left = L;
    NewInternal.Right = Rr;
    NewInternal.SplitDim = int16_t(GrowDim);
    NewInternal.SplitValue = GrowCut;
    NewInternal.Count = 0;
    NewInternal.SumY = NewInternal.SumY2 = 0.0;
    // The old leaf's chunks become unreachable pool garbage; compaction is
    // not worth the bookkeeping (same policy as dead nodes below).
    NewInternal.PtsHead = -1;
    return;
  }

  if (Draw < WGrow + WPrune && WPrune > 0.0) {
    // Prune: the parent becomes a leaf holding both children's data.
    materialize(P); // flushes pending, so node stats below are effective
    Tree &T = *P.T;
    Node &Parent = T.Nodes[size_t(ParentIdx)];
    Node &Sibling = T.Nodes[size_t(SiblingIdx)];
    Node &Self = T.Nodes[size_t(LeafIdx)];
    Parent.Left = Parent.Right = -1;
    Parent.SplitDim = -1;
    Parent.Count = Self.Count + Sibling.Count;
    Parent.SumY = Self.SumY + Sibling.SumY;
    Parent.SumY2 = Self.SumY2 + Sibling.SumY2;
    // The merged leaf's box is the union of its children's boxes.
    {
      double *PLo = T.Bounds.data() + size_t(ParentIdx) * 2 * Dims;
      const double *ALo = T.Bounds.data() + size_t(LeafIdx) * 2 * Dims;
      const double *BLo = T.Bounds.data() + size_t(SiblingIdx) * 2 * Dims;
      for (size_t Dim = 0; Dim != Dims; ++Dim) {
        PLo[Dim] = std::min(ALo[Dim], BLo[Dim]);
        PLo[Dims + Dim] = std::max(ALo[Dims + Dim], BLo[Dims + Dim]);
      }
    }
    // Splice the two chunk lists (both privately owned after materialize).
    Parent.PtsHead = Self.PtsHead;
    if (Parent.PtsHead < 0) {
      Parent.PtsHead = Sibling.PtsHead;
    } else if (Sibling.PtsHead >= 0) {
      int32_t Tail = Self.PtsHead;
      while (T.Chunks[size_t(Tail)].Next >= 0)
        Tail = T.Chunks[size_t(Tail)].Next;
      T.Chunks[size_t(Tail)].Next = Sibling.PtsHead;
    }
    // Old child nodes become unreachable; absorb the new point and leave
    // them in place (compaction is not worth the bookkeeping).
    Self = Node();
    Sibling = Node();
    absorbInto(T, ParentIdx, PointIdx);
    return;
  }

  // Stay: the cheap, common case — defer the absorption so a tree shared
  // with resampling siblings need not be cloned at all.
  if (P.NumPending < MaxPending) {
    P.Pending[P.NumPending++] = {LeafIdx, PointIdx};
    return;
  }
  materialize(P);
  absorbInto(*P.T, LeafIdx, PointIdx);
}

void DynaTree::ingest(uint32_t PointIdx, bool Resample) {
  const double *X = DataX.row(PointIdx);
  double Y = DataY[PointIdx];
  size_t Np = Particles.size();

  // 1-2. Reweight by posterior predictive and resample (skipped during
  // batched seeding, and while the ensemble is still nearly empty — the
  // weights would all be equal).  Every alias of a unique-particle run
  // has the same weight by construction, so the leaf walk runs once per
  // run and fans its value out; resampling then sums bit-identical
  // weights in the same index order as the per-particle walk would.
  if (Resample && PointIdx >= 2) {
    std::vector<double> LogW(Np);
    shardedFor(Workers, uniqueRunCount(), ParticleShardSize,
               [&](size_t, size_t Begin, size_t End) {
                 for (size_t Run = Begin; Run != End; ++Run) {
                   const Particle &P = Particles[RunOffsets[Run]];
                   int32_t Leaf = findLeaf(*P.T, X);
                   double Lw = logPredictive(leafStats(P, Leaf), Y);
                   for (size_t I = RunOffsets[Run]; I != RunOffsets[Run + 1];
                        ++I)
                     LogW[I] = Lw;
                 }
               });
    resampleParticles(LogW);
    rebuildRunIndex(); // offspring of one parent alias contiguously
  }

  // 3-4. Propagate every particle with a local stay/prune/grow move, each
  // from its own counter-derived RNG stream.  Consecutive particles of
  // one run share their packed grow-scan scratch (the run index proves
  // the reuse bit-safe); the thread_local only amortizes allocations —
  // validity never crosses a shard boundary.
  uint64_t Step = StepCounter;
  shardedFor(Workers, Np, ParticleShardSize,
             [&](size_t, size_t Begin, size_t End) {
               thread_local GrowScratch Scratch;
               Scratch.Valid = false;
               for (size_t I = Begin; I != End; ++I) {
                 Rng R = particleRng(Step, I);
                 bool Reuse = I != Begin && RunOf[I] == RunOf[I - 1];
                 propagate(Particles[I], PointIdx, R, Scratch, Reuse);
               }
             });
  ++StepCounter;
  rebuildRunIndex(); // movers split off; stayers keep aliasing
}

//===----------------------------------------------------------------------===//
// Public interface
//===----------------------------------------------------------------------===//

void DynaTree::fit(const FlatRows &X, const std::vector<double> &Y) {
  assert(X.size() == Y.size() && !X.empty() && "bad training batch");
  DataX = X;
  DataY = Y;
  Dims = DataX.dim();
  Particles.clear();
  StepCounter = 0;
  LastEss = double(Config.NumParticles);

  // Empirical prior from the seed batch.
  double Sum = 0.0, Sum2 = 0.0;
  for (double Yi : Y) {
    Sum += Yi;
    Sum2 += Yi * Yi;
  }
  double N = double(Y.size());
  PriorMean = Sum / N;
  double Var = N > 1 ? std::max(1e-12, (Sum2 - Sum * Sum / N) / (N - 1))
                     : 1.0;
  // E[sigma^2] = B0/(A0-1) == PriorScaleFactor * seed variance: the prior
  // expects leaves to explain most of the global variance.
  PriorScale = Config.PriorScaleFactor * Var * (Config.PriorShape - 1.0);
  LogGammaA0 = logGamma(Config.PriorShape);
  LogB0 = std::log(PriorScale);
  LogK0 = std::log(Config.PriorKappa);
  ensureMarginalTables(Y.size() + 2);

  // Batched seed ingestion: all particles share ONE empty root tree
  // (copy-on-write makes that a single allocation for the whole
  // ensemble), and seed points are propagated without reweighting or
  // resampling — the ensemble must not be culled against a half-built
  // posterior.  SMC reweighting starts with the first update().
  auto Root = std::make_shared<Tree>();
  Root->Nodes.emplace_back();
  pushBoundsSlot(*Root);
  Particles.assign(Config.NumParticles, Particle());
  for (Particle &P : Particles)
    P.T = Root;
  rebuildRunIndex(); // one run: the whole ensemble aliases Root

  for (uint32_t I = 0; I != uint32_t(X.size()); ++I)
    ingest(I, /*Resample=*/false);
}

void DynaTree::update(RowRef X, double Y) {
  assert(!Particles.empty() && "fit() must seed the model first");
  uint32_t PointIdx = uint32_t(DataY.size());
  DataX.push(X);
  DataY.push_back(Y);
  ensureMarginalTables(DataY.size() + 2);
  ingest(PointIdx, /*Resample=*/true);
}

Prediction DynaTree::predict(RowRef X) const {
  assert(!Particles.empty() && "model not fitted");
  const double *Xp = X.data();
  // Mixture over particles; variance via the law of total variance.
  // Every alias of a unique-particle run lands the probe in the same
  // leaf with the same effective stats, so the dedup path walks each run
  // once and repeats the accumulation per alias — the sums receive the
  // very same addends in the very same index order as the naive walk,
  // hence stay bit-identical.
  double MeanSum = 0.0, VarSum = 0.0, Mean2Sum = 0.0;
  if (DedupScoring) {
    for (size_t Run = 0; Run + 1 < RunOffsets.size(); ++Run) {
      const Particle &P = Particles[RunOffsets[Run]];
      int32_t Leaf = findLeaf(*P.T, Xp);
      Prediction LeafP = leafPredictive(leafStats(P, Leaf));
      double Mean2 = LeafP.Mean * LeafP.Mean;
      for (size_t I = RunOffsets[Run]; I != RunOffsets[Run + 1]; ++I) {
        MeanSum += LeafP.Mean;
        VarSum += LeafP.Variance;
        Mean2Sum += Mean2;
      }
    }
  } else {
    for (const Particle &P : Particles) {
      int32_t Leaf = findLeaf(*P.T, Xp);
      Prediction LeafP = leafPredictive(leafStats(P, Leaf));
      MeanSum += LeafP.Mean;
      VarSum += LeafP.Variance;
      Mean2Sum += LeafP.Mean * LeafP.Mean;
    }
  }
  double Np = double(Particles.size());
  Prediction Out;
  Out.Mean = MeanSum / Np;
  Out.Variance = VarSum / Np + Mean2Sum / Np - Out.Mean * Out.Mean;
  if (Out.Variance < 0.0)
    Out.Variance = 0.0;
  return Out;
}

std::vector<double> DynaTree::almScores(const FlatRows &Candidates,
                                        const ScoreContext &Ctx) const {
  assert(!Particles.empty() && "model not fitted");
  // Sharded predict() per candidate — predict() itself dedupes by unique
  // run; this override only adds the instrumentation accounting.
  std::vector<double> Scores = SurrogateModel::almScores(Candidates, Ctx);
  if (Ctx.Stats) {
    size_t Walked = DedupScoring ? uniqueRunCount() : Particles.size();
    Ctx.Stats->CandidatesScored.fetch_add(Candidates.size(),
                                          std::memory_order_relaxed);
    Ctx.Stats->ParticleTerms.fetch_add(uint64_t(Candidates.size()) *
                                           Particles.size(),
                                       std::memory_order_relaxed);
    Ctx.Stats->UniqueLeafWalks.fetch_add(uint64_t(Candidates.size()) * Walked,
                                         std::memory_order_relaxed);
  }
  return Scores;
}

std::vector<double> DynaTree::alcScores(const FlatRows &Candidates,
                                        const FlatRows &Reference,
                                        const ScoreContext &Ctx) const {
  assert(!Particles.empty() && "model not fitted");
  // Each candidate's score is the particle average of refCount(leaf) *
  // expected variance drop — the closed form of Cohn's ALC under constant
  // leaves.  The reference occupancy of every tree's leaves is
  // candidate-independent, so it is computed once up front (one disjoint
  // write per unique run — aliases share the counts); candidates then
  // accumulate over particles in index order, repeating each run's term
  // per alias, which matches the naive sequential summation bit-for-bit.
  size_t Np = Particles.size();
  size_t NumGroups = DedupScoring ? uniqueRunCount() : Np;
  std::vector<std::vector<uint32_t>> RefCounts(NumGroups);
  shardedFor(Ctx.Pool, NumGroups, 8, [&](size_t, size_t Begin, size_t End) {
    for (size_t G = Begin; G != End; ++G) {
      const Particle &P = Particles[DedupScoring ? RunOffsets[G] : G];
      RefCounts[G].assign(P.T->Nodes.size(), 0);
      for (size_t R = 0; R != Reference.size(); ++R)
        ++RefCounts[G][size_t(findLeaf(*P.T, Reference.row(R)))];
    }
  });

  std::vector<double> Scores(Candidates.size(), 0.0);
  shardedFor(Ctx.Pool, Candidates.size(), Ctx.ShardSize,
             [&](size_t, size_t Begin, size_t End) {
    for (size_t C = Begin; C != End; ++C) {
      const double *Row = Candidates.row(C);
      double Total = 0.0;
      if (DedupScoring) {
        for (size_t G = 0; G != NumGroups; ++G) {
          const Particle &P = Particles[RunOffsets[G]];
          int32_t Leaf = findLeaf(*P.T, Row);
          uint32_t Count = RefCounts[G][size_t(Leaf)];
          if (Count == 0)
            continue;
          double Term = double(Count) * leafVarianceDrop(leafStats(P, Leaf));
          for (size_t I = RunOffsets[G]; I != RunOffsets[G + 1]; ++I)
            Total += Term;
        }
      } else {
        for (size_t P = 0; P != Np; ++P) {
          int32_t Leaf = findLeaf(*Particles[P].T, Row);
          uint32_t Count = RefCounts[P][size_t(Leaf)];
          if (Count != 0)
            Total += double(Count) *
                     leafVarianceDrop(leafStats(Particles[P], Leaf));
        }
      }
      Scores[C] = Total / double(Np);
    }
  });
  if (Ctx.Stats) {
    // Both phases count: the per-candidate walks and the reference pass.
    uint64_t NaiveWalks =
        uint64_t(Np) * (Candidates.size() + Reference.size());
    uint64_t DoneWalks =
        uint64_t(NumGroups) * (Candidates.size() + Reference.size());
    Ctx.Stats->CandidatesScored.fetch_add(Candidates.size(),
                                          std::memory_order_relaxed);
    Ctx.Stats->ParticleTerms.fetch_add(NaiveWalks, std::memory_order_relaxed);
    Ctx.Stats->UniqueLeafWalks.fetch_add(DoneWalks,
                                         std::memory_order_relaxed);
  }
  return Scores;
}

double DynaTree::averageLeafCount() const {
  // One full node-array walk per unique run instead of per particle
  // (aliases share tree and pending, so their leaf census is equal);
  // the per-alias repeat-add keeps the mean bit-identical to the naive
  // per-particle walk.
  double Total = 0.0;
  for (size_t Run = 0; Run + 1 < RunOffsets.size(); ++Run) {
    const Particle &P = Particles[RunOffsets[Run]];
    unsigned Leaves = 0;
    const std::vector<Node> &Nodes = P.T->Nodes;
    for (size_t I = 0; I != Nodes.size(); ++I) {
      const Node &N = Nodes[I];
      if (N.Left >= 0)
        continue;
      uint32_t EffCount = leafStats(P, int32_t(I)).Count;
      if (EffCount > 0 || N.Parent >= 0 || Nodes.size() == 1)
        ++Leaves;
    }
    for (size_t I = RunOffsets[Run]; I != RunOffsets[Run + 1]; ++I)
      Total += double(Leaves);
  }
  return Total / double(Particles.size());
}

double DynaTree::averageDepth() const {
  double Total = 0.0;
  for (size_t Run = 0; Run + 1 < RunOffsets.size(); ++Run) {
    unsigned MaxDepth = 0;
    for (const Node &N : Particles[RunOffsets[Run]].T->Nodes)
      if (N.Left < 0)
        MaxDepth = std::max(MaxDepth, unsigned(N.Depth));
    for (size_t I = RunOffsets[Run]; I != RunOffsets[Run + 1]; ++I)
      Total += double(MaxDepth);
  }
  return Total / double(Particles.size());
}

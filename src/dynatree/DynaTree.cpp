//===- dynatree/DynaTree.cpp ----------------------------------*- C++ -*-===//

#include "dynatree/DynaTree.h"

#include "stats/Distributions.h"
#include "support/Error.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace alic;

DynaTree::DynaTree(DynaTreeConfig Config)
    : Config(Config), Generator(Config.Seed) {
  assert(Config.NumParticles >= 1 && "need at least one particle");
  assert(Config.MinLeafSize >= 1 && "leaves need at least one observation");
}

double DynaTree::splitProbability(unsigned Depth) const {
  return Config.SplitAlpha * std::pow(1.0 + double(Depth), -Config.SplitBeta);
}

//===----------------------------------------------------------------------===//
// Leaf posterior (Normal-Inverse-Gamma conjugate algebra)
//===----------------------------------------------------------------------===//

double DynaTree::logMarginal(uint32_t N, double SumY, double SumY2) const {
  if (N == 0)
    return 0.0;
  double K0 = Config.PriorKappa;
  double A0 = Config.PriorShape;
  double B0 = PriorScale;
  double M0 = PriorMean;
  double Nd = double(N);
  double Mean = SumY / Nd;
  double Ss = std::max(0.0, SumY2 - Nd * Mean * Mean);
  double Kn = K0 + Nd;
  double An = A0 + 0.5 * Nd;
  double Bn = B0 + 0.5 * Ss +
              0.5 * K0 * Nd * (Mean - M0) * (Mean - M0) / Kn;
  return logGamma(An) - logGamma(A0) + A0 * std::log(B0) -
         An * std::log(Bn) + 0.5 * (std::log(K0) - std::log(Kn)) -
         0.5 * Nd * std::log(2.0 * M_PI);
}

/// Posterior NIG parameters of a leaf.
namespace {
struct LeafPosterior {
  double Mn, Kn, An, Bn;
};
} // namespace

static LeafPosterior posteriorOf(uint32_t N, double SumY, double SumY2,
                                 double K0, double A0, double B0, double M0) {
  double Nd = double(N);
  double Mean = N ? SumY / Nd : 0.0;
  double Ss = N ? std::max(0.0, SumY2 - Nd * Mean * Mean) : 0.0;
  LeafPosterior P;
  P.Kn = K0 + Nd;
  P.Mn = (K0 * M0 + SumY) / P.Kn;
  P.An = A0 + 0.5 * Nd;
  P.Bn = B0 + 0.5 * Ss + 0.5 * K0 * Nd * (Mean - M0) * (Mean - M0) / P.Kn;
  return P;
}

double DynaTree::logPredictive(const Node &Leaf, double Y) const {
  LeafPosterior P = posteriorOf(Leaf.Count, Leaf.SumY, Leaf.SumY2,
                                Config.PriorKappa, Config.PriorShape,
                                PriorScale, PriorMean);
  // Student-t with df = 2*An, location Mn, scale^2 = Bn (Kn+1) / (An Kn).
  double Df = 2.0 * P.An;
  double Scale2 = P.Bn * (P.Kn + 1.0) / (P.An * P.Kn);
  double Scale = std::sqrt(Scale2);
  double Z = (Y - P.Mn) / Scale;
  return std::log(studentTPdf(Z, Df) / Scale);
}

Prediction DynaTree::leafPredictive(const Node &Leaf) const {
  LeafPosterior P = posteriorOf(Leaf.Count, Leaf.SumY, Leaf.SumY2,
                                Config.PriorKappa, Config.PriorShape,
                                PriorScale, PriorMean);
  double Df = 2.0 * P.An;
  double Scale2 = P.Bn * (P.Kn + 1.0) / (P.An * P.Kn);
  Prediction Out;
  Out.Mean = P.Mn;
  Out.Variance = Df > 2.0 ? Scale2 * Df / (Df - 2.0) : Scale2 * 3.0;
  return Out;
}

double DynaTree::leafVarianceDrop(const Node &Leaf) const {
  LeafPosterior P = posteriorOf(Leaf.Count, Leaf.SumY, Leaf.SumY2,
                                Config.PriorKappa, Config.PriorShape,
                                PriorScale, PriorMean);
  // sigma2_hat * [ (Kn+1)/Kn - (Kn+2)/(Kn+1) ]: the expected shrink of the
  // predictive variance when the leaf absorbs one more observation.
  double Sigma2 = P.An > 1.0 ? P.Bn / (P.An - 1.0) : P.Bn;
  double Now = (P.Kn + 1.0) / P.Kn;
  double Then = (P.Kn + 2.0) / (P.Kn + 1.0);
  return Sigma2 * (Now - Then);
}

//===----------------------------------------------------------------------===//
// Tree navigation and bookkeeping
//===----------------------------------------------------------------------===//

int32_t DynaTree::findLeaf(const Particle &P,
                           const std::vector<double> &X) const {
  int32_t Idx = 0;
  while (P.Nodes[Idx].Left >= 0) {
    const Node &N = P.Nodes[Idx];
    Idx = X[N.SplitDim] <= N.SplitValue ? N.Left : N.Right;
  }
  return Idx;
}

void DynaTree::absorb(Particle &P, int32_t LeafIdx, uint32_t PointIdx) {
  Node &Leaf = P.Nodes[LeafIdx];
  double Y = DataY[PointIdx];
  Leaf.SumY += Y;
  Leaf.SumY2 += Y * Y;
  ++Leaf.Count;
  Leaf.Points.push_back(PointIdx);
}

//===----------------------------------------------------------------------===//
// SMC machinery
//===----------------------------------------------------------------------===//

void DynaTree::resample(const std::vector<double> &LogWeights, Rng &R) {
  size_t N = Particles.size();
  double MaxLw = *std::max_element(LogWeights.begin(), LogWeights.end());
  std::vector<double> W(N);
  double Sum = 0.0;
  for (size_t I = 0; I != N; ++I) {
    W[I] = std::exp(LogWeights[I] - MaxLw);
    Sum += W[I];
  }
  if (!(Sum > 0.0) || !std::isfinite(Sum)) {
    LastEss = double(N);
    return; // degenerate weights: keep the current ensemble
  }
  double Ess = 0.0;
  for (double &Wi : W) {
    Wi /= Sum;
    Ess += Wi * Wi;
  }
  LastEss = 1.0 / Ess;

  // Systematic resampling.
  std::vector<uint32_t> Counts(N, 0);
  double U = R.nextDouble() / double(N);
  double Cum = 0.0;
  size_t J = 0;
  for (size_t I = 0; I != N; ++I) {
    Cum += W[I];
    while (J < N && U + double(J) / double(N) <= Cum + 1e-15) {
      ++Counts[I];
      ++J;
    }
  }

  // Materialize: reuse surviving particles in place, copy duplicates.
  std::vector<Particle> Next;
  Next.reserve(N);
  for (size_t I = 0; I != N; ++I) {
    for (uint32_t C = 1; C < Counts[I]; ++C)
      Next.push_back(Particles[I]); // copy
    if (Counts[I] > 0)
      Next.push_back(std::move(Particles[I]));
  }
  assert(Next.size() == N && "systematic resampling must preserve count");
  Particles = std::move(Next);
}

void DynaTree::propagate(Particle &P, uint32_t PointIdx, Rng &R) {
  const std::vector<double> &X = DataX[PointIdx];
  int32_t LeafIdx = findLeaf(P, X);
  Node &Leaf = P.Nodes[LeafIdx];
  unsigned D = Leaf.Depth;

  double NewY = DataY[PointIdx];
  double LStay = logMarginal(Leaf.Count + 1, Leaf.SumY + NewY,
                             Leaf.SumY2 + NewY * NewY);

  // --- Candidate: grow -----------------------------------------------
  // Multiple-try proposal: draw a handful of (dimension, cut) pairs from
  // the leaf's data range, weight each by the posterior of the resulting
  // split, and let their average compete against stay/prune.  This
  // approximates marginalizing the grow move over cut positions, which a
  // single uniform draw does far too weakly.
  bool CanGrow = Leaf.Count + 1 >= 2 * Config.MinLeafSize;
  int GrowDim = -1;
  double GrowCut = 0.0;
  double LGrow = -1e300;
  if (CanGrow) {
    size_t Dims = X.size();
    std::vector<int> Spread;
    for (size_t Dim = 0; Dim != Dims; ++Dim) {
      double Lo = X[Dim], Hi = X[Dim];
      for (uint32_t Pt : Leaf.Points) {
        Lo = std::min(Lo, DataX[Pt][Dim]);
        Hi = std::max(Hi, DataX[Pt][Dim]);
      }
      if (Hi > Lo)
        Spread.push_back(int(Dim));
    }
    const unsigned NumTries = 4;
    double BestL = -1e300;
    double Pd = splitProbability(D);
    double Pd1 = splitProbability(D + 1);
    double PriorTerm = std::log(Pd) + 2.0 * std::log(1.0 - Pd1) -
                       std::log(1.0 - Pd);
    for (unsigned Try = 0; Try != NumTries && !Spread.empty(); ++Try) {
      int Dim = Spread[R.nextBounded(Spread.size())];
      double Lo = X[Dim], Hi = X[Dim];
      for (uint32_t Pt : Leaf.Points) {
        Lo = std::min(Lo, DataX[Pt][Dim]);
        Hi = std::max(Hi, DataX[Pt][Dim]);
      }
      double Cut = R.nextUniform(Lo, Hi);
      uint32_t Nl = 0, Nr = 0;
      double Sl = 0, Sl2 = 0, Sr = 0, Sr2 = 0;
      auto Add = [&](double Xd, double Y) {
        if (Xd <= Cut) {
          ++Nl;
          Sl += Y;
          Sl2 += Y * Y;
        } else {
          ++Nr;
          Sr += Y;
          Sr2 += Y * Y;
        }
      };
      for (uint32_t Pt : Leaf.Points)
        Add(DataX[Pt][Dim], DataY[Pt]);
      Add(X[Dim], NewY);
      if (Nl < Config.MinLeafSize || Nr < Config.MinLeafSize)
        continue;
      double L = PriorTerm + logMarginal(Nl, Sl, Sl2) +
                 logMarginal(Nr, Sr, Sr2);
      if (L > BestL) {
        BestL = L;
        GrowDim = Dim;
        GrowCut = Cut;
      }
    }
    if (GrowDim >= 0)
      LGrow = BestL;
  }

  // --- Candidate: prune (only when the sibling is also a leaf) ----------
  double LPrune = -1e300;
  int32_t ParentIdx = Leaf.Parent;
  int32_t SiblingIdx = -1;
  if (ParentIdx >= 0) {
    const Node &Parent = P.Nodes[ParentIdx];
    SiblingIdx = Parent.Left == LeafIdx ? Parent.Right : Parent.Left;
    const Node &Sibling = P.Nodes[SiblingIdx];
    if (Sibling.Left < 0) {
      // Relative to stay, pruning trades the parent's split factor and the
      // two leaf marginals for one merged-leaf marginal; the leaf+new
      // marginal shared with LStay cancels in the sampling ratio.
      double PParent = splitProbability(D - 1);
      double PHere = splitProbability(D);
      LPrune = std::log(1.0 - PParent) - std::log(PParent) -
               2.0 * std::log(1.0 - PHere) +
               logMarginal(Leaf.Count + Sibling.Count + 1,
                           Leaf.SumY + Sibling.SumY + NewY,
                           Leaf.SumY2 + Sibling.SumY2 + NewY * NewY) -
               logMarginal(Sibling.Count, Sibling.SumY, Sibling.SumY2);
    }
  }

  // --- Sample the move --------------------------------------------------
  double MaxL = std::max(LStay, std::max(LGrow, LPrune));
  double WStay = std::exp(LStay - MaxL);
  double WGrow = GrowDim >= 0 ? std::exp(LGrow - MaxL) : 0.0;
  double WPrune = LPrune > -1e299 ? std::exp(LPrune - MaxL) : 0.0;
  double Total = WStay + WGrow + WPrune;
  double Draw = R.nextDouble() * Total;

  if (Draw < WGrow && GrowDim >= 0) {
    // Grow: the leaf becomes internal with two fresh children.
    int32_t L = int32_t(P.Nodes.size());
    int32_t Rr = L + 1;
    Node LeftChild, RightChild;
    LeftChild.Parent = LeafIdx;
    RightChild.Parent = LeafIdx;
    LeftChild.Depth = RightChild.Depth = uint16_t(D + 1);
    // Re-partition the points (including the new one).
    std::vector<uint32_t> Pts = P.Nodes[LeafIdx].Points;
    Pts.push_back(PointIdx);
    for (uint32_t Pt : Pts) {
      Node &Side = DataX[Pt][GrowDim] <= GrowCut ? LeftChild : RightChild;
      Side.Points.push_back(Pt);
      Side.SumY += DataY[Pt];
      Side.SumY2 += DataY[Pt] * DataY[Pt];
      ++Side.Count;
    }
    P.Nodes.push_back(std::move(LeftChild));
    P.Nodes.push_back(std::move(RightChild));
    Node &NewInternal = P.Nodes[LeafIdx];
    NewInternal.Left = L;
    NewInternal.Right = Rr;
    NewInternal.SplitDim = int16_t(GrowDim);
    NewInternal.SplitValue = GrowCut;
    NewInternal.Points.clear();
    NewInternal.Points.shrink_to_fit();
    NewInternal.Count = 0;
    NewInternal.SumY = NewInternal.SumY2 = 0.0;
    return;
  }

  if (Draw < WGrow + WPrune && WPrune > 0.0) {
    // Prune: the parent becomes a leaf holding both children's data.
    Node &Parent = P.Nodes[ParentIdx];
    Node &Sibling = P.Nodes[SiblingIdx];
    Node &Self = P.Nodes[LeafIdx];
    Parent.Left = Parent.Right = -1;
    Parent.SplitDim = -1;
    Parent.Points = std::move(Self.Points);
    Parent.Points.insert(Parent.Points.end(), Sibling.Points.begin(),
                         Sibling.Points.end());
    Parent.Count = Self.Count + Sibling.Count;
    Parent.SumY = Self.SumY + Sibling.SumY;
    Parent.SumY2 = Self.SumY2 + Sibling.SumY2;
    // Old child nodes become unreachable; absorb the new point and leave
    // them in place (compaction is not worth the bookkeeping).
    Self = Node();
    Sibling = Node();
    absorb(P, ParentIdx, PointIdx);
    return;
  }

  // Stay.
  absorb(P, LeafIdx, PointIdx);
}

//===----------------------------------------------------------------------===//
// Public interface
//===----------------------------------------------------------------------===//

void DynaTree::fit(const std::vector<std::vector<double>> &X,
                   const std::vector<double> &Y) {
  assert(X.size() == Y.size() && !X.empty() && "bad training batch");
  DataX.clear();
  DataY.clear();
  Particles.clear();
  Generator = Rng(Config.Seed);

  // Empirical prior from the seed batch.
  double Sum = 0.0, Sum2 = 0.0;
  for (double Yi : Y) {
    Sum += Yi;
    Sum2 += Yi * Yi;
  }
  double N = double(Y.size());
  PriorMean = Sum / N;
  double Var = N > 1 ? std::max(1e-12, (Sum2 - Sum * Sum / N) / (N - 1))
                     : 1.0;
  // E[sigma^2] = B0/(A0-1) == PriorScaleFactor * seed variance: the prior
  // expects leaves to explain most of the global variance.
  PriorScale = Config.PriorScaleFactor * Var * (Config.PriorShape - 1.0);

  // All particles start as a single empty root leaf.
  Particle Root;
  Root.Nodes.emplace_back();
  Particles.assign(Config.NumParticles, Root);

  for (size_t I = 0; I != X.size(); ++I)
    update(X[I], Y[I]);
}

void DynaTree::update(const std::vector<double> &X, double Y) {
  assert(!Particles.empty() && "fit() must seed the model first");
  uint32_t PointIdx = uint32_t(DataX.size());
  DataX.push_back(X);
  DataY.push_back(Y);

  // 1-2. Reweight by posterior predictive and resample (skip while the
  // ensemble is still nearly empty — the weights would all be equal).
  if (PointIdx >= 2) {
    std::vector<double> LogW(Particles.size());
    for (size_t I = 0; I != Particles.size(); ++I) {
      const Particle &P = Particles[I];
      int32_t Leaf = findLeaf(P, X);
      LogW[I] = logPredictive(P.Nodes[Leaf], Y);
    }
    resample(LogW, Generator);
  }

  // 3-4. Propagate every particle with a local stay/prune/grow move.
  for (Particle &P : Particles)
    propagate(P, PointIdx, Generator);
}

Prediction DynaTree::predict(const std::vector<double> &X) const {
  assert(!Particles.empty() && "model not fitted");
  // Mixture over particles; variance via the law of total variance.
  double MeanSum = 0.0, VarSum = 0.0, Mean2Sum = 0.0;
  for (const Particle &P : Particles) {
    Prediction Leaf = leafPredictive(P.Nodes[findLeaf(P, X)]);
    MeanSum += Leaf.Mean;
    VarSum += Leaf.Variance;
    Mean2Sum += Leaf.Mean * Leaf.Mean;
  }
  double Np = double(Particles.size());
  Prediction Out;
  Out.Mean = MeanSum / Np;
  Out.Variance = VarSum / Np + Mean2Sum / Np - Out.Mean * Out.Mean;
  if (Out.Variance < 0.0)
    Out.Variance = 0.0;
  return Out;
}

std::vector<double> DynaTree::alcScores(
    const std::vector<std::vector<double>> &Candidates,
    const std::vector<std::vector<double>> &Reference,
    const ScoreContext &Ctx) const {
  assert(!Particles.empty() && "model not fitted");
  // Each candidate's score is the particle average of refCount(leaf) *
  // expected variance drop — the closed form of Cohn's ALC under constant
  // leaves.  The reference occupancy of every particle's leaves is
  // candidate-independent, so it is computed once up front (one disjoint
  // write per particle); candidates then accumulate over particles in
  // index order, matching the sequential summation order bit-for-bit.
  size_t Np = Particles.size();
  std::vector<std::vector<uint32_t>> RefCounts(Np);
  shardedFor(Ctx.Pool, Np, 8, [&](size_t, size_t Begin, size_t End) {
    for (size_t P = Begin; P != End; ++P) {
      RefCounts[P].assign(Particles[P].Nodes.size(), 0);
      for (const auto &R : Reference)
        ++RefCounts[P][size_t(findLeaf(Particles[P], R))];
    }
  });

  std::vector<double> Scores(Candidates.size(), 0.0);
  shardedFor(Ctx.Pool, Candidates.size(), Ctx.ShardSize,
             [&](size_t, size_t Begin, size_t End) {
    for (size_t C = Begin; C != End; ++C) {
      double Total = 0.0;
      for (size_t P = 0; P != Np; ++P) {
        int32_t Leaf = findLeaf(Particles[P], Candidates[C]);
        uint32_t Count = RefCounts[P][size_t(Leaf)];
        if (Count != 0)
          Total += double(Count) *
                   leafVarianceDrop(Particles[P].Nodes[size_t(Leaf)]);
      }
      Scores[C] = Total / double(Np);
    }
  });
  return Scores;
}

double DynaTree::averageLeafCount() const {
  double Total = 0.0;
  for (const Particle &P : Particles) {
    unsigned Leaves = 0;
    for (const Node &N : P.Nodes)
      if (N.Left < 0 && (N.Count > 0 || N.Parent >= 0 || P.Nodes.size() == 1))
        ++Leaves;
    Total += double(Leaves);
  }
  return Total / double(Particles.size());
}

double DynaTree::averageDepth() const {
  double Total = 0.0;
  for (const Particle &P : Particles) {
    unsigned MaxDepth = 0;
    for (const Node &N : P.Nodes)
      if (N.Left < 0)
        MaxDepth = std::max(MaxDepth, unsigned(N.Depth));
    Total += double(MaxDepth);
  }
  return Total / double(Particles.size());
}

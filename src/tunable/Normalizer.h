//===- tunable/Normalizer.h - Feature scaling and centring ----*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Z-score feature normalization.  Section 4.5 of the paper: "The feature
/// values of each data point ... were all normalized through scaling and
/// centring to transform them into something similar to the Standard
/// Normal Distribution."
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_TUNABLE_NORMALIZER_H
#define ALIC_TUNABLE_NORMALIZER_H

#include <cstddef>
#include <vector>

namespace alic {

/// Per-dimension scale-and-centre transform fit on a reference sample.
class Normalizer {
public:
  Normalizer() = default;

  /// Fits means and standard deviations on \p Rows (all equal length).
  /// Dimensions with zero variance map to zero.
  static Normalizer fit(const std::vector<std::vector<double>> &Rows);

  /// Rebuilds a normalizer from previously fitted moments (deserialization
  /// of cached datasets).  \p Means and \p Stds must be equal length and
  /// every standard deviation positive.
  static Normalizer fromMoments(std::vector<double> Means,
                                std::vector<double> Stds);

  /// Transforms one feature vector.
  std::vector<double> transform(const std::vector<double> &Row) const;

  /// Inverse transform (for diagnostics).
  std::vector<double> inverse(const std::vector<double> &Row) const;

  /// Number of fitted dimensions (0 before fit).
  size_t numDims() const { return Means.size(); }

  double mean(size_t Dim) const { return Means[Dim]; }
  double stddev(size_t Dim) const { return Stds[Dim]; }

private:
  std::vector<double> Means;
  std::vector<double> Stds;
};

} // namespace alic

#endif // ALIC_TUNABLE_NORMALIZER_H

//===- tunable/Normalizer.cpp ---------------------------------*- C++ -*-===//

#include "tunable/Normalizer.h"

#include "stats/OnlineStats.h"
#include "support/Error.h"

#include <cassert>
#include <cmath>

using namespace alic;

Normalizer Normalizer::fit(const std::vector<std::vector<double>> &Rows) {
  assert(!Rows.empty() && "cannot fit a normalizer on an empty sample");
  size_t Dims = Rows.front().size();
  std::vector<OnlineStats> Stats(Dims);
  for (const auto &Row : Rows) {
    assert(Row.size() == Dims && "ragged feature rows");
    for (size_t D = 0; D != Dims; ++D)
      Stats[D].add(Row[D]);
  }
  Normalizer N;
  N.Means.resize(Dims);
  N.Stds.resize(Dims);
  for (size_t D = 0; D != Dims; ++D) {
    N.Means[D] = Stats[D].mean();
    double Sd = Stats[D].stddev();
    N.Stds[D] = Sd > 0.0 ? Sd : 1.0;
  }
  return N;
}

Normalizer Normalizer::fromMoments(std::vector<double> Means,
                                   std::vector<double> Stds) {
  assert(Means.size() == Stds.size() && "moment vectors must match");
  for (double Sd : Stds) {
    assert(Sd > 0.0 && "standard deviations must be positive");
    (void)Sd;
  }
  Normalizer N;
  N.Means = std::move(Means);
  N.Stds = std::move(Stds);
  return N;
}

std::vector<double> Normalizer::transform(const std::vector<double> &Row) const {
  assert(Row.size() == Means.size() && "dimension mismatch");
  std::vector<double> Out(Row.size());
  for (size_t D = 0; D != Row.size(); ++D)
    Out[D] = (Row[D] - Means[D]) / Stds[D];
  return Out;
}

std::vector<double> Normalizer::inverse(const std::vector<double> &Row) const {
  assert(Row.size() == Means.size() && "dimension mismatch");
  std::vector<double> Out(Row.size());
  for (size_t D = 0; D != Row.size(); ++D)
    Out[D] = Row[D] * Stds[D] + Means[D];
  return Out;
}

//===- tunable/ParamSpace.cpp ---------------------------------*- C++ -*-===//

#include "tunable/ParamSpace.h"

#include "support/Error.h"
#include "support/Format.h"

#include <cassert>
#include <unordered_set>

using namespace alic;

Param Param::range(std::string Name, ParamKind Kind, int Min, int Max,
                   int Step, int LoopIndex) {
  assert(Min <= Max && Step > 0 && "malformed parameter range");
  Param P;
  P.Name = std::move(Name);
  P.Kind = Kind;
  P.LoopIndex = LoopIndex;
  for (int V = Min; V <= Max; V += Step)
    P.Values.push_back(V);
  return P;
}

Param Param::powersOfTwo(std::string Name, ParamKind Kind, int Min, int Max,
                         int LoopIndex) {
  assert(Min > 0 && (Min & (Min - 1)) == 0 && "Min must be a power of two");
  assert(Max >= Min && (Max & (Max - 1)) == 0 && "Max must be a power of two");
  Param P;
  P.Name = std::move(Name);
  P.Kind = Kind;
  P.LoopIndex = LoopIndex;
  for (int V = Min; V <= Max; V *= 2)
    P.Values.push_back(V);
  return P;
}

Param Param::fromValues(std::string Name, ParamKind Kind,
                        std::vector<int> Values, int LoopIndex) {
  assert(!Values.empty() && "parameter needs at least one value");
  for (size_t I = 1; I < Values.size(); ++I)
    assert(Values[I - 1] < Values[I] && "values must be strictly increasing");
  Param P;
  P.Name = std::move(Name);
  P.Kind = Kind;
  P.LoopIndex = LoopIndex;
  P.Values = std::move(Values);
  return P;
}

Param Param::flag(std::string Name) {
  Param P;
  P.Name = std::move(Name);
  P.Kind = ParamKind::Binary;
  P.Values = {0, 1};
  return P;
}

int Param::value(size_t Ordinal) const {
  assert(Ordinal < Values.size() && "parameter ordinal out of range");
  return Values[Ordinal];
}

ParamSpace::ParamSpace(std::vector<Param> Params) : Params(std::move(Params)) {
  assert(!this->Params.empty() && "a space needs at least one parameter");
  for (const Param &P : this->Params) {
    assert(P.numValues() >= 1 && "parameter with no values");
    assert(P.numValues() <= 65535 && "ordinal must fit in uint16_t");
  }
}

BigUInt ParamSpace::cardinality() const {
  BigUInt Total(1);
  for (const Param &P : Params)
    Total.mulScalar(static_cast<uint32_t>(P.numValues()));
  return Total;
}

std::vector<int> ParamSpace::decode(const Config &C) const {
  assert(C.size() == Params.size() && "config arity mismatch");
  std::vector<int> Values(C.size());
  for (size_t I = 0; I != C.size(); ++I)
    Values[I] = Params[I].value(C[I]);
  return Values;
}

std::vector<double> ParamSpace::features(const Config &C) const {
  assert(C.size() == Params.size() && "config arity mismatch");
  std::vector<double> Values(C.size());
  for (size_t I = 0; I != C.size(); ++I)
    Values[I] = static_cast<double>(Params[I].value(C[I]));
  return Values;
}

uint64_t ParamSpace::key(const Config &C) const {
  assert(C.size() == Params.size() && "config arity mismatch");
  uint64_t State = 0x6a09e667f3bcc908ull;
  for (uint16_t Ord : C) {
    State ^= Ord + 0x9e3779b97f4a7c15ull + (State << 6) + (State >> 2);
    State = splitMix64(State);
  }
  return State;
}

std::string ParamSpace::toString(const Config &C) const {
  std::vector<std::string> Parts;
  Parts.reserve(C.size());
  for (size_t I = 0; I != C.size(); ++I)
    Parts.push_back(
        formatString("%s=%d", Params[I].name().c_str(), Params[I].value(C[I])));
  return joinStrings(Parts, " ");
}

Config ParamSpace::sample(Rng &R) const {
  Config C(Params.size());
  for (size_t I = 0; I != Params.size(); ++I)
    C[I] = static_cast<uint16_t>(R.nextBounded(Params[I].numValues()));
  return C;
}

std::vector<Config> ParamSpace::sampleDistinct(Rng &R, size_t Count) const {
  BigUInt Card = cardinality();
  // Tiny spaces: enumerate, shuffle, truncate — avoids rejection stalls.
  if (Card <= BigUInt(4 * static_cast<uint64_t>(Count) + 64) &&
      Card <= BigUInt(1u << 20)) {
    std::vector<Config> All = enumerateAll();
    R.shuffle(All);
    if (All.size() > Count)
      All.resize(Count);
    return All;
  }
  std::vector<Config> Result;
  Result.reserve(Count);
  std::unordered_set<uint64_t> Seen;
  Seen.reserve(Count * 2);
  size_t Attempts = 0;
  const size_t MaxAttempts = Count * 64 + 1024;
  while (Result.size() < Count && Attempts < MaxAttempts) {
    ++Attempts;
    Config C = sample(R);
    if (Seen.insert(key(C)).second)
      Result.push_back(std::move(C));
  }
  assert(Result.size() == Count && "rejection sampling failed to converge");
  return Result;
}

std::vector<Config> ParamSpace::enumerateAll(size_t Limit) const {
  BigUInt Card = cardinality();
  assert(Card <= BigUInt(static_cast<uint64_t>(Limit)) &&
         "space too large to enumerate");
  size_t Total = static_cast<size_t>(Card.toU64());
  std::vector<Config> Result;
  Result.reserve(Total);
  Config Current(Params.size(), 0);
  for (size_t I = 0; I != Total; ++I) {
    Result.push_back(Current);
    // Increment mixed-radix counter, last parameter fastest.
    for (size_t D = Params.size(); D-- > 0;) {
      if (++Current[D] < Params[D].numValues())
        break;
      Current[D] = 0;
    }
  }
  return Result;
}

Config ParamSpace::configAtIndex(BigUInt Index) const {
  assert(Index < cardinality() && "index beyond space cardinality");
  Config C(Params.size(), 0);
  for (size_t D = Params.size(); D-- > 0;) {
    uint32_t Radix = static_cast<uint32_t>(Params[D].numValues());
    C[D] = static_cast<uint16_t>(Index.divModScalar(Radix));
  }
  return C;
}

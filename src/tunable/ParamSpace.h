//===- tunable/ParamSpace.h - Tunable-parameter search spaces -*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SPAPT-style tunable-parameter spaces.  Each SPAPT problem exposes a set
/// of per-loop integer parameters (unroll, cache-tile, register-tile
/// factors); a Config assigns one value to each.  The combination of
/// per-parameter ranges yields the massive spaces of Table 1 (up to
/// 1.33e27 points for dgemv3), so cardinality is exact (BigUInt) and
/// configurations are sampled rather than enumerated.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_TUNABLE_PARAMSPACE_H
#define ALIC_TUNABLE_PARAMSPACE_H

#include "support/BigUInt.h"
#include "support/Rng.h"

#include <cstdint>
#include <string>
#include <vector>

namespace alic {

/// Role a parameter plays in the optimization pipeline.  The transformation
/// driver (src/transform) interprets values according to this kind.
enum class ParamKind {
  Unroll,       ///< loop unroll factor
  CacheTile,    ///< cache-level tile size
  RegisterTile, ///< register-level tile factor
  Binary,       ///< on/off flag (scalar replacement, vector hints, ...)
  Generic,      ///< plain integer knob
};

/// One tunable parameter: a named, ordered list of integer values.
class Param {
public:
  /// Creates a parameter over the inclusive range [\p Min, \p Max] with the
  /// given \p Step.
  static Param range(std::string Name, ParamKind Kind, int Min, int Max,
                     int Step = 1, int LoopIndex = -1);

  /// Creates a power-of-two parameter {\p Min, 2*Min, ..., \p Max}; both
  /// bounds must themselves be powers of two.
  static Param powersOfTwo(std::string Name, ParamKind Kind, int Min, int Max,
                           int LoopIndex = -1);

  /// Creates a parameter from an explicit strictly increasing value list.
  static Param fromValues(std::string Name, ParamKind Kind,
                          std::vector<int> Values, int LoopIndex = -1);

  /// Creates a binary flag {0, 1}.
  static Param flag(std::string Name);

  const std::string &name() const { return Name; }
  ParamKind kind() const { return Kind; }

  /// Index of the loop this parameter transforms (-1 if not loop-bound).
  int loopIndex() const { return LoopIndex; }

  /// Number of selectable values.
  size_t numValues() const { return Values.size(); }

  /// The \p Ordinal-th selectable value.
  int value(size_t Ordinal) const;

  /// All selectable values in ascending order.
  const std::vector<int> &values() const { return Values; }

private:
  std::string Name;
  ParamKind Kind = ParamKind::Generic;
  int LoopIndex = -1;
  std::vector<int> Values;
};

/// A point in a parameter space, stored as per-parameter ordinals.
using Config = std::vector<uint16_t>;

/// Ordered collection of parameters defining a search space.
class ParamSpace {
public:
  ParamSpace() = default;

  /// Creates a space over \p Params (at least one).
  explicit ParamSpace(std::vector<Param> Params);

  size_t numParams() const { return Params.size(); }
  const Param &param(size_t I) const { return Params[I]; }
  const std::vector<Param> &params() const { return Params; }

  /// Exact number of points in the space.
  BigUInt cardinality() const;

  /// Actual parameter values selected by \p C.
  std::vector<int> decode(const Config &C) const;

  /// Raw feature vector (double-cast values) for model input.
  std::vector<double> features(const Config &C) const;

  /// A collision-resistant 64-bit key for \p C (for hashing/dedup).
  uint64_t key(const Config &C) const;

  /// "U_i1=4 T_i1=64 ..." rendering for logs and examples.
  std::string toString(const Config &C) const;

  /// Uniformly random configuration.
  Config sample(Rng &R) const;

  /// \p Count distinct uniformly random configurations.  When the space
  /// holds fewer than \p Count points, returns the whole space (shuffled).
  std::vector<Config> sampleDistinct(Rng &R, size_t Count) const;

  /// Enumerates the entire space in mixed-radix order; asserts that the
  /// cardinality fits in memory-friendly bounds (used for small planes
  /// such as Figure 1's 30x30 unroll grid).
  std::vector<Config> enumerateAll(size_t Limit = 1u << 20) const;

  /// Mixed-radix decode of \p Index into a Config (row-major, first param
  /// slowest).  \p Index must be below the cardinality.
  Config configAtIndex(BigUInt Index) const;

private:
  std::vector<Param> Params;
};

} // namespace alic

#endif // ALIC_TUNABLE_PARAMSPACE_H

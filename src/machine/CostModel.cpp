//===- machine/CostModel.cpp ----------------------------------*- C++ -*-===//

#include "machine/CostModel.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace alic;

namespace {

/// One loop of a statement's effective (post-tiling) nest, outer to inner.
struct EffLoop {
  LoopVarId Var = 0;
  double Trip = 1.0;       ///< executed iterations of this effective loop
  bool IsTileCounter = false;
  double PointExtent = 1.0; ///< span of Var covered by one iteration
  int Unroll = 1;
  int RegisterTile = 1;
};

/// A loop of the original chain with its trip estimate and plan factors.
struct ChainLoop {
  const LoopNode *Loop = nullptr;
  double Trip = 1.0;
  LoopFactors Factors;
};

/// Accumulates the model over the kernel tree.
class Analyzer {
public:
  Analyzer(const Kernel &K, const TransformPlan &Plan, const MachineDesc &M)
      : K(K), Plan(Plan), M(M), Env(K.numLoopVars(), 0) {}

  CostBreakdown run() {
    walk(K.topLevel());
    finish();
    return Result;
  }

private:
  void walk(const std::vector<std::unique_ptr<IrNode>> &Nodes);
  void analyzeStmt(const StmtNode &Stmt);
  void finish();

  /// Builds the effective nest for the current chain: cache-tile counter
  /// loops hoisted to the front (original order), point loops after.
  std::vector<EffLoop> effectiveNest() const;

  /// Bytes touched by \p Access when original variable \p Var spans
  /// \p Span(Var) iterations for every Var (line-granular last dim).
  double bytesTouched(const ArrayAccess &Access,
                      const std::vector<double> &Span) const;

  /// Element stride of \p Access when \p Var advances by one.
  double elementStride(const ArrayAccess &Access, LoopVarId Var) const;

  const Kernel &K;
  const TransformPlan &Plan;
  const MachineDesc &M;
  std::vector<int64_t> Env;
  std::vector<ChainLoop> Chain;
  CostBreakdown Result;
};

} // namespace

void Analyzer::walk(const std::vector<std::unique_ptr<IrNode>> &Nodes) {
  for (const auto &Node : Nodes) {
    if (const auto *Stmt = nodeDynCast<StmtNode>(Node.get())) {
      analyzeStmt(*Stmt);
      continue;
    }
    const auto *Loop = nodeDynCast<LoopNode>(Node.get());
    int64_t Lo = Loop->Lower.evaluate(Env);
    int64_t Hi = Loop->Uppers.front().evaluate(Env);
    for (size_t I = 1; I != Loop->Uppers.size(); ++I)
      Hi = std::min(Hi, Loop->Uppers[I].evaluate(Env));
    double Trip =
        Hi > Lo ? std::ceil(double(Hi - Lo) / double(Loop->Step)) : 0.0;
    if (Trip <= 0.0)
      continue; // dead loop at the midpoint estimate
    int64_t Saved = Env[Loop->Var];
    Env[Loop->Var] = Lo + (Hi - Lo) / 2;
    Chain.push_back({Loop, Trip, Plan.factors(Loop->Var)});
    walk(Loop->Body);
    Chain.pop_back();
    Env[Loop->Var] = Saved;
  }
}

std::vector<EffLoop> Analyzer::effectiveNest() const {
  std::vector<EffLoop> Nest;
  // Tile-counter band first, in original loop order.
  for (const ChainLoop &C : Chain) {
    int T = C.Factors.CacheTile;
    if (T > 1 && double(T) < C.Trip) {
      EffLoop E;
      E.Var = C.Loop->Var;
      E.Trip = std::ceil(C.Trip / double(T));
      E.IsTileCounter = true;
      E.PointExtent = double(T); // one iteration advances a whole tile
      Nest.push_back(E);
    }
  }
  // Point band afterwards, original order.
  for (const ChainLoop &C : Chain) {
    int T = C.Factors.CacheTile;
    bool Tiled = T > 1 && double(T) < C.Trip;
    EffLoop E;
    E.Var = C.Loop->Var;
    E.Trip = Tiled ? double(T) : C.Trip;
    E.PointExtent = 1.0;
    E.Unroll = C.Factors.Unroll;
    E.RegisterTile = C.Factors.RegisterTile;
    Nest.push_back(E);
  }
  return Nest;
}

double Analyzer::bytesTouched(const ArrayAccess &Access,
                              const std::vector<double> &Span) const {
  const IrArrayDecl &Decl = K.array(Access.ArrayId);
  double Bytes = 1.0;
  for (size_t D = 0; D != Decl.Dims.size(); ++D) {
    double Extent = 1.0;
    for (const auto &[Var, Coeff] : Access.Subscripts[D].terms()) {
      double S = Var < Span.size() ? Span[Var] : 1.0;
      Extent += std::fabs(double(Coeff)) * (S - 1.0);
    }
    Extent = std::min(Extent, double(Decl.Dims[D]));
    if (D + 1 == Decl.Dims.size()) {
      // Line granularity on the contiguous dimension.
      double Lines = std::ceil(Extent * 8.0 / M.LineBytes);
      Bytes *= Lines * M.LineBytes;
    } else {
      Bytes *= Extent;
    }
  }
  return Bytes;
}

double Analyzer::elementStride(const ArrayAccess &Access,
                               LoopVarId Var) const {
  const IrArrayDecl &Decl = K.array(Access.ArrayId);
  double DimStride = 1.0;
  double Stride = 0.0;
  for (size_t D = Decl.Dims.size(); D-- > 0;) {
    Stride += double(Access.Subscripts[D].coefficient(Var)) * DimStride;
    DimStride *= double(Decl.Dims[D]);
  }
  return std::fabs(Stride);
}

void Analyzer::analyzeStmt(const StmtNode &Stmt) {
  if (Chain.empty())
    return; // straight-line statements cost epsilon; ignore
  std::vector<EffLoop> Nest = effectiveNest();

  // Exact statement instances use original trips; loop events use the
  // ceil-rounded effective trips so partial tiles cost their overhead.
  double Instances = 1.0;
  for (const ChainLoop &C : Chain)
    Instances *= C.Trip;

  // --- Loop-control overhead -------------------------------------------
  // Loop l executes (product of outer original trips) * ceil(trip_l / u_l)
  // iteration events: unrolling/register-tiling a loop divides its own
  // events (the replicated bodies execute inside one event).
  double LoopEvents = 0.0;
  double OuterProduct = 1.0;
  for (const EffLoop &E : Nest) {
    double UnrollBy = double(E.Unroll) * double(E.RegisterTile);
    LoopEvents += OuterProduct * std::ceil(E.Trip / std::max(1.0, UnrollBy));
    OuterProduct *= E.Trip;
  }
  double OverheadCycles = LoopEvents * M.LoopOverheadCycles;

  // --- Compute ----------------------------------------------------------
  // Three dependence situations for an accumulate statement under strict
  // (no -ffast-math) FP semantics:
  //  * elementwise update (write moves with the innermost loop, no shifted
  //    self-read): iterations independent, throughput bound;
  //  * reduction (write invariant in the innermost loop): the add chain
  //    serializes; only register tiling introduces independent partial
  //    accumulators (plain unrolling must keep the evaluation order);
  //  * recurrence (self-read shifted along the innermost variable, as in
  //    adi's sweeps): the chain is unbreakable, and unrolling *hurts* by
  //    inflating live ranges across the serial chain — this yields the
  //    climb-and-plateau of the paper's Figure 2.
  const EffLoop &Innermost = Nest.back();
  double RtProduct = 1.0;
  for (const EffLoop &E : Nest)
    if (!E.IsTileCounter)
      RtProduct *= double(E.RegisterTile);

  bool WriteMovesInnermost = false;
  for (const AffineExpr &Sub : Stmt.Write.Subscripts)
    if (Sub.references(Innermost.Var))
      WriteMovesInnermost = true;

  bool InnermostRecurrence = false;
  if (Stmt.Accumulate || !WriteMovesInnermost) {
    for (const ReadTerm &Term : Stmt.Reads) {
      if (Term.Access.ArrayId != Stmt.Write.ArrayId)
        continue;
      // Constant-shift self-read with a shift along the innermost var?
      bool ConstShift = true;
      bool ShiftsInnermost = false;
      for (size_t D = 0; D != Term.Access.Subscripts.size(); ++D) {
        const AffineExpr &R = Term.Access.Subscripts[D];
        const AffineExpr &W = Stmt.Write.Subscripts[D];
        if (R.terms() != W.terms()) {
          ConstShift = false;
          break;
        }
        if (R.constantTerm() != W.constantTerm() &&
            R.references(Innermost.Var))
          ShiftsInnermost = true;
      }
      if (ConstShift && ShiftsInnermost) {
        InnermostRecurrence = true;
        break;
      }
    }
  }

  double ThroughputCycles = double(Stmt.flops()) / M.FlopsPerCycle;
  if (Stmt.HasDivision)
    ThroughputCycles += 0.25 * M.FpDivideLatency; // partially pipelined
  double ChainLatency =
      Stmt.HasDivision ? M.FpDivideLatency : M.FpDependencyLatency;
  double DepCycles = 0.0;
  double TotalUnroll = 1.0;
  for (const EffLoop &E : Nest)
    TotalUnroll *= double(E.Unroll) * double(E.RegisterTile);
  if (InnermostRecurrence) {
    DepCycles = ChainLatency;
    // Saturating harm from unrolling across the serial chain: the longer
    // the replicated body, the worse the scheduler does around the chain.
    DepCycles += ChainLatency * (1.0 - 1.0 / TotalUnroll);
  } else if (Stmt.Accumulate && !WriteMovesInnermost) {
    DepCycles = ChainLatency / std::min(16.0, RtProduct);
  }
  double ComputePerInstance = std::max(ThroughputCycles, DepCycles);
  double ComputeCycles = ComputePerInstance * Instances;

  // --- Register pressure -------------------------------------------------
  // Unroll-and-jam holds (reads + accumulator) live per register-tile
  // copy; plain unrolling adds a mild extra demand.  The penalty grows
  // with the overflow but saturates: compilers spill to L1, they do not
  // collapse.
  double LiveRegs = (double(Stmt.Reads.size()) + 1.0) * RtProduct +
                    0.5 * double(Innermost.Unroll);
  double Excess = std::max(0.0, LiveRegs - double(M.NumFpRegisters));
  // Saturating: heavy overflow spills to L1 (a few extra cycles per op),
  // it does not grow without bound.
  double EffectiveExcess = 24.0 * (1.0 - std::exp(-Excess / 24.0));
  double SpillCycles =
      EffectiveExcess * M.SpillCyclesPerExcessReg * Instances;

  // --- Memory ------------------------------------------------------------
  // Span of each original variable across the loops deeper than depth p.
  // A point loop contributes its trip (= tile size when tiled); when the
  // tile-counter loop is also in the suffix the product recovers the full
  // original trip.
  auto spansDeeperThan = [&](size_t Depth) {
    std::vector<double> Span(K.numLoopVars(), 1.0);
    for (size_t I = Depth + 1; I < Nest.size(); ++I)
      Span[Nest[I].Var] *= Nest[I].Trip;
    return Span;
  };

  std::vector<const ArrayAccess *> Accesses;
  Accesses.push_back(&Stmt.Write);
  for (const ReadTerm &Term : Stmt.Reads)
    Accesses.push_back(&Term.Access);

  // Bytes touched by the whole statement inside one iteration of the
  // effective loop at each depth (for group-reuse distances).
  auto perIterBytes = [&](size_t Depth) {
    std::vector<double> Span = spansDeeperThan(Depth);
    double Bytes = 0.0;
    for (const ArrayAccess *B : Accesses)
      Bytes += bytesTouched(*B, Span);
    return Bytes;
  };

  // Deepest effective-loop position of original variable \p Var.
  auto depthOfVar = [&](LoopVarId Var) {
    for (size_t I = Nest.size(); I-- > 0;)
      if (Nest[I].Var == Var)
        return I;
    return Nest.size() - 1;
  };

  // Maps a reuse volume to the extra latency beyond L1 of the smallest
  // level that holds it (memory misses overlap via hardware prefetch).
  const double L1Latency = M.Caches.front().LatencyCycles;
  auto extraLatencyFor = [&](double ReuseVolume) {
    if (ReuseVolume <= M.Caches.front().SizeBytes * M.CacheUtilization)
      return 0.0;
    for (size_t L = 1; L < M.Caches.size(); ++L)
      if (ReuseVolume <= M.Caches[L].SizeBytes * M.CacheUtilization)
        return M.Caches[L].LatencyCycles - L1Latency;
    return (M.MemoryLatencyCycles - L1Latency) / M.MaxMlp;
  };

  double MemPerInstance = 0.0;
  for (size_t AI = 0; AI != Accesses.size(); ++AI) {
    const ArrayAccess *Access = Accesses[AI];
    // Base L1 pipeline cost for every architectural access.
    MemPerInstance += 0.25;

    // Exact duplicate of an earlier access: same line, already charged.
    bool Duplicate = false;
    for (size_t BI = 0; BI != AI && !Duplicate; ++BI)
      Duplicate = Accesses[BI]->ArrayId == Access->ArrayId &&
                  Accesses[BI]->Subscripts == Access->Subscripts;
    if (Duplicate)
      continue;

    // Group reuse: if another access of the same array touches the same
    // locations a few iterations earlier (constant-shift subscripts with a
    // lexicographically larger constant vector), this access is a follower
    // and is served from wherever the leader's footprint still lives.
    double FollowerVolume = -1.0;
    for (const ArrayAccess *B : Accesses) {
      if (B == Access || B->ArrayId != Access->ArrayId)
        continue;
      if (B->Subscripts.size() != Access->Subscripts.size())
        continue;
      bool ConstShift = true;
      size_t FirstDiffDim = B->Subscripts.size();
      for (size_t D = 0; D != B->Subscripts.size(); ++D) {
        if (B->Subscripts[D].terms() != Access->Subscripts[D].terms()) {
          ConstShift = false;
          break;
        }
        if (FirstDiffDim == B->Subscripts.size() &&
            B->Subscripts[D].constantTerm() !=
                Access->Subscripts[D].constantTerm())
          FirstDiffDim = D;
      }
      if (!ConstShift || FirstDiffDim == B->Subscripts.size())
        continue;
      int64_t Delta = B->Subscripts[FirstDiffDim].constantTerm() -
                      Access->Subscripts[FirstDiffDim].constantTerm();
      if (Delta <= 0)
        continue; // B trails us; it will reuse our lines instead
      // Reuse distance: |Delta| iterations of the deepest variable in the
      // differing dimension.
      LoopVarId ShiftVar = Access->Subscripts[FirstDiffDim].terms().empty()
                               ? Innermost.Var
                               : Access->Subscripts[FirstDiffDim]
                                     .terms()
                                     .back()
                                     .first;
      double Volume = double(Delta) * perIterBytes(depthOfVar(ShiftVar));
      if (FollowerVolume < 0.0 || Volume < FollowerVolume)
        FollowerVolume = Volume;
    }

    double ReuseVolume;
    if (FollowerVolume >= 0.0) {
      ReuseVolume = FollowerVolume;
    } else {
      // Temporal self reuse: the deepest effective loop that does not move
      // this access re-touches it each iteration.
      size_t ReuseDepth = Nest.size(); // sentinel: streaming (no reuse)
      for (size_t I = Nest.size(); I-- > 0;) {
        bool Moves = false;
        for (const AffineExpr &Sub : Access->Subscripts)
          if (Sub.references(Nest[I].Var)) {
            Moves = true;
            break;
          }
        if (!Moves) {
          ReuseDepth = I;
          break;
        }
      }
      if (ReuseDepth == Nest.size()) {
        // Streaming: served from wherever the whole array resides.
        ReuseVolume = double(K.array(Access->ArrayId).numElements()) * 8.0;
      } else {
        std::vector<double> Span = spansDeeperThan(ReuseDepth);
        ReuseVolume = 0.0;
        for (const ArrayAccess *B : Accesses)
          ReuseVolume += bytesTouched(*B, Span);
      }
    }

    double ExtraLatency = extraLatencyFor(ReuseVolume);
    if (ExtraLatency <= 0.0)
      continue;

    // New-line fraction per executed instance.
    double StrideBytes = elementStride(*Access, Innermost.Var) * 8.0;
    if (StrideBytes == 0.0)
      continue; // innermost-invariant: register resident
    double LineFraction = std::min(1.0, StrideBytes / M.LineBytes);
    MemPerInstance += LineFraction * ExtraLatency;
  }
  double MemoryCycles = MemPerInstance * Instances;

  // --- Code size ----------------------------------------------------------
  double Expansion = 1.0;
  for (const ChainLoop &C : Chain)
    Expansion *= double(C.Factors.Unroll) * double(C.Factors.RegisterTile);
  Result.CodeStmts += Expansion;

  Result.ComputeCycles += ComputeCycles;
  Result.LoopOverheadCycles += OverheadCycles;
  Result.SpillCycles += SpillCycles;
  Result.MemoryCycles += MemoryCycles;
}

void Analyzer::finish() {
  // Front-end penalty saturates as the unrolled body outgrows the icache.
  double FrontFactor = 0.0;
  if (Result.CodeStmts > M.ICacheStmtCapacity)
    FrontFactor = M.ICachePenaltyMax *
                  (1.0 - M.ICacheStmtCapacity / Result.CodeStmts);
  Result.FrontEndCycles =
      FrontFactor *
      (Result.ComputeCycles + Result.LoopOverheadCycles + Result.SpillCycles);

  Result.TotalCycles = Result.ComputeCycles + Result.LoopOverheadCycles +
                       Result.SpillCycles + Result.MemoryCycles +
                       Result.FrontEndCycles;
  Result.RuntimeSeconds = Result.TotalCycles / (M.FrequencyGHz * 1e9);

  double Loops = double(K.countLoops());
  Result.CompileSeconds =
      M.CompileBaseSeconds +
      M.CompilePerStmtSeconds *
          std::pow(std::max(1.0, Result.CodeStmts), M.CompileStmtExponent) +
      M.CompilePerLoopSeconds * Loops;
}

CostBreakdown CostModel::evaluate(const Kernel &K,
                                  const TransformPlan &Plan) const {
  Analyzer A(K, Plan, Desc);
  return A.run();
}

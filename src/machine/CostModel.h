//===- machine/CostModel.h - Analytic performance model -------*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deterministic ground-truth runtime model standing in for the
/// paper's physical testbed (see DESIGN.md §5 substitution 1).  Given a
/// kernel and a transformation plan it predicts:
///
///  * compute cycles — flop throughput limited by dependency chains that
///    unrolling/register tiling break up;
///  * loop overhead  — branch/increment cost amortized by unrolling and
///    inflated by tiny tiles (partial-tile rounding included);
///  * register spills — unroll-and-jam register pressure beyond the
///    register file;
///  * memory cycles  — a classic footprint/reuse-distance cache model: for
///    every access, the deepest loop that re-touches the same data defines
///    a reuse volume, and the smallest cache level that holds it serves
///    the access's line misses;
///  * front-end stalls — saturating penalty once the unrolled body
///    overflows the instruction cache (this produces the climb-and-plateau
///    shape of the paper's Figure 2);
///  * compile time   — grows with post-expansion code size, matching how
///    gcc slows down on heavily unrolled SPAPT kernels.
///
/// The model assumes the cache-tile band is interchanged into position
/// (as Orio's tiling does).  The literal IR rewriter (src/transform)
/// conservatively strip-mines in place, which is semantics-equivalent;
/// the analytic model is the performance authority.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_MACHINE_COSTMODEL_H
#define ALIC_MACHINE_COSTMODEL_H

#include "ir/Kernel.h"
#include "machine/MachineDesc.h"
#include "transform/TransformPlan.h"

namespace alic {

/// Cost-model output with a per-component breakdown (cycles).
struct CostBreakdown {
  double RuntimeSeconds = 0.0;
  double CompileSeconds = 0.0;
  double ComputeCycles = 0.0;
  double LoopOverheadCycles = 0.0;
  double SpillCycles = 0.0;
  double MemoryCycles = 0.0;
  double FrontEndCycles = 0.0;
  double CodeStmts = 0.0; ///< statements after unroll expansion
  double TotalCycles = 0.0;
};

/// Analytic cost model over the kernel IR.
class CostModel {
public:
  explicit CostModel(MachineDesc Desc = MachineDesc::i7Haswell())
      : Desc(Desc) {}

  /// Evaluates the kernel under \p Plan.
  CostBreakdown evaluate(const Kernel &K, const TransformPlan &Plan) const;

  /// Convenience: runtime seconds only.
  double runtimeSeconds(const Kernel &K, const TransformPlan &Plan) const {
    return evaluate(K, Plan).RuntimeSeconds;
  }

  const MachineDesc &machine() const { return Desc; }

private:
  MachineDesc Desc;
};

} // namespace alic

#endif // ALIC_MACHINE_COSTMODEL_H

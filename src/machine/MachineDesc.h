//===- machine/MachineDesc.h - Target machine description -----*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameters of the modeled machine.  Defaults approximate the paper's
/// testbed, an Intel Core i7-4770K (Haswell, 3.4 GHz, 32 KB L1D / 256 KB
/// L2 / 8 MB L3) running gcc -O2 generated scalar code.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_MACHINE_MACHINEDESC_H
#define ALIC_MACHINE_MACHINEDESC_H

#include <cstddef>
#include <vector>

namespace alic {

/// One cache level: capacity and load-to-use latency.
struct CacheLevel {
  double SizeBytes = 0.0;
  double LatencyCycles = 0.0;
};

/// Microarchitectural parameters consumed by the cost model.
struct MachineDesc {
  /// Core frequency in GHz.
  double FrequencyGHz = 3.4;

  /// Sustained floating-point operations per cycle (scalar -O2 code).
  double FlopsPerCycle = 2.0;

  /// Latency of a dependent FP add (limits unparallelized reductions).
  double FpDependencyLatency = 3.0;

  /// Latency of an FP divide (dominates recurrence chains that contain
  /// one, e.g. ADI sweeps and LU pivot scaling).
  double FpDivideLatency = 14.0;

  /// Architected FP registers available for accumulators/temporaries.
  int NumFpRegisters = 16;

  /// Extra cycles per innermost iteration per register beyond capacity.
  double SpillCyclesPerExcessReg = 1.0;

  /// Loop-control cycles charged per executed loop iteration (branch,
  /// increment, compare).
  double LoopOverheadCycles = 2.0;

  /// Cache line size in bytes.
  double LineBytes = 64.0;

  /// Cache hierarchy, ordered L1 -> last level.
  std::vector<CacheLevel> Caches = {
      {32.0 * 1024, 4.0}, {256.0 * 1024, 12.0}, {8.0 * 1024 * 1024, 36.0}};

  /// Main-memory latency in cycles.
  double MemoryLatencyCycles = 210.0;

  /// Maximum overlapping outstanding misses (memory-level parallelism).
  double MaxMlp = 4.0;

  /// Statements after unroll expansion that fit the uop cache / L1I
  /// without penalty.
  double ICacheStmtCapacity = 192.0;

  /// Saturating slowdown factor once the unrolled body overflows the
  /// instruction cache (front-end bound): factor tends to 1 + this value.
  double ICachePenaltyMax = 0.6;

  /// Effective cache capacity fraction (conflict misses, shared data).
  double CacheUtilization = 0.7;

  /// Compile-time model: Base + PerStmt * codeStmts^Exp + PerLoop * loops.
  double CompileBaseSeconds = 0.08;
  double CompilePerStmtSeconds = 1.6e-3;
  double CompileStmtExponent = 0.92;
  double CompilePerLoopSeconds = 4.0e-4;

  /// Returns the default machine (paper testbed approximation).
  static MachineDesc i7Haswell() { return MachineDesc(); }
};

} // namespace alic

#endif // ALIC_MACHINE_MACHINEDESC_H

//===- gp/GaussianProcess.cpp ---------------------------------*- C++ -*-===//

#include "gp/GaussianProcess.h"

#include "support/Error.h"
#include "support/Rng.h"

#include <cassert>
#include <cmath>

using namespace alic;

GaussianProcess::GaussianProcess(GpConfig Config)
    : Config(Config), Params(Config.Init) {}

double GaussianProcess::kernel(const std::vector<double> &A,
                               const std::vector<double> &B) const {
  double D2 = squaredDistance(A, B);
  return Params.SignalVariance *
         std::exp(-0.5 * D2 / (Params.LengthScale * Params.LengthScale));
}

double GaussianProcess::refitWith(const GpHyperParams &P) {
  Params = P;
  size_t N = DataX.size();
  Matrix K(N, N);
  for (size_t I = 0; I != N; ++I) {
    for (size_t J = 0; J <= I; ++J) {
      double V = kernel(DataX[I], DataX[J]);
      K.at(I, J) = V;
      K.at(J, I) = V;
    }
    K.at(I, I) += Params.NoiseVariance + 1e-10;
  }
  Factor = Cholesky::factorize(K);
  if (!Factor)
    return -1e300; // not PD under these hyperparameters
  std::vector<double> Centered(N);
  for (size_t I = 0; I != N; ++I)
    Centered[I] = DataY[I] - MeanY;
  Alpha = Factor->solve(Centered);
  double Fit = 0.0;
  for (size_t I = 0; I != N; ++I)
    Fit += Centered[I] * Alpha[I];
  LogMl = -0.5 * Fit - 0.5 * Factor->logDeterminant() -
          0.5 * double(N) * std::log(2.0 * M_PI);
  return LogMl;
}

void GaussianProcess::refit() { refitWith(Params); }

void GaussianProcess::fit(const std::vector<std::vector<double>> &X,
                          const std::vector<double> &Y) {
  assert(X.size() == Y.size() && !X.empty() && "bad training batch");
  DataX = X;
  DataY = Y;
  double Sum = 0.0;
  for (double Yi : Y)
    Sum += Yi;
  MeanY = Sum / double(Y.size());

  if (!Config.OptimizeHyperParams) {
    refitWith(Params);
    return;
  }

  // Random-restart search over (signal, length, noise) maximizing the log
  // marginal likelihood.  Scales are data-driven.
  double Var = 0.0;
  for (double Yi : Y)
    Var += (Yi - MeanY) * (Yi - MeanY);
  Var = std::max(Var / double(Y.size()), 1e-12);

  Rng R(Config.Seed);
  GpHyperParams Best = Params;
  double BestMl = -1e300;
  for (unsigned Trial = 0; Trial != Config.OptimizerRestarts; ++Trial) {
    GpHyperParams P;
    P.SignalVariance = Var * std::exp(R.nextUniform(-1.5, 1.5));
    P.LengthScale = std::exp(R.nextUniform(-1.5, 2.0));
    P.NoiseVariance = Var * std::exp(R.nextUniform(-9.0, -0.5));
    double Ml = refitWith(P);
    if (Ml > BestMl) {
      BestMl = Ml;
      Best = P;
    }
  }
  refitWith(Best);
}

void GaussianProcess::update(const std::vector<double> &X, double Y) {
  DataX.push_back(X);
  DataY.push_back(Y);
  if (Config.RefitOnUpdate)
    refitWith(Params); // the O(n^3) cost the paper's Section 3.2 dislikes
}

Prediction GaussianProcess::predict(const std::vector<double> &X) const {
  assert(Factor && "GP not fitted");
  size_t N = DataX.size();
  std::vector<double> Ks(N);
  for (size_t I = 0; I != N; ++I)
    Ks[I] = kernel(X, DataX[I]);
  Prediction Out;
  Out.Mean = MeanY;
  for (size_t I = 0; I != N; ++I)
    Out.Mean += Ks[I] * Alpha[I];
  std::vector<double> V = Factor->solveLower(Ks);
  double Reduction = 0.0;
  for (double Vi : V)
    Reduction += Vi * Vi;
  Out.Variance =
      std::max(0.0, Params.SignalVariance - Reduction) + Params.NoiseVariance;
  return Out;
}

std::vector<double> GaussianProcess::alcScores(
    const std::vector<std::vector<double>> &Candidates,
    const std::vector<std::vector<double>> &Reference) const {
  assert(Factor && "GP not fitted");
  // Exact GP ALC: adding candidate x reduces Var(ref r) by
  //   cov(r, x | data)^2 / (var(x | data) + noise).
  size_t N = DataX.size();
  std::vector<double> Scores(Candidates.size(), 0.0);
  for (size_t C = 0; C != Candidates.size(); ++C) {
    const auto &X = Candidates[C];
    std::vector<double> Kx(N);
    for (size_t I = 0; I != N; ++I)
      Kx[I] = kernel(X, DataX[I]);
    std::vector<double> Wx = Factor->solve(Kx);
    double VarX = Params.SignalVariance;
    for (size_t I = 0; I != N; ++I)
      VarX -= Kx[I] * Wx[I];
    VarX = std::max(VarX, 1e-12) + Params.NoiseVariance;
    double Total = 0.0;
    for (const auto &Ref : Reference) {
      double Krx = kernel(Ref, X);
      double Cov = Krx;
      for (size_t I = 0; I != N; ++I)
        Cov -= kernel(Ref, DataX[I]) * Wx[I];
      Total += Cov * Cov / VarX;
    }
    Scores[C] = Total;
  }
  return Scores;
}

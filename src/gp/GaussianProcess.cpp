//===- gp/GaussianProcess.cpp ---------------------------------*- C++ -*-===//

#include "gp/GaussianProcess.h"

#include "support/Error.h"
#include "support/Rng.h"
#include "support/Scheduler.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace alic;

namespace {

/// Rows per shard of the kernel-matrix fill: fixed (never derived from
/// the worker count) so the shard grid is reproducible everywhere; row
/// cost is uneven (row I costs I kernel evaluations) but the stealing
/// scheduler balances that.
constexpr size_t KernelFillShard = 32;

/// Candidates per block of the serial predictBatch() path — enough to
/// amortize the factor-row streaming of the multi-RHS solves while the
/// block's kernel rows stay cache-resident.
constexpr size_t PredictBlock = 64;

} // namespace

GaussianProcess::GaussianProcess(GpConfig Config)
    : Config(Config), Params(Config.Init) {}

double GaussianProcess::kernel(RowRef A, RowRef B) const {
  double D2 = squaredDistance(A, B);
  return Params.SignalVariance *
         std::exp(-0.5 * D2 / (Params.LengthScale * Params.LengthScale));
}

void GaussianProcess::kernelRow(const FlatRows &Rows, RowRef X, double *Out,
                                size_t Num) const {
  for (size_t I = 0; I != Num; ++I)
    Out[I] = kernel(X, Rows[I]);
}

double GaussianProcess::recomputeWeights() {
  size_t N = DataX.size();
  double Sum = 0.0;
  for (double Yi : DataY)
    Sum += Yi;
  MeanY = Sum / double(N);
  // Center straight into the weight buffer and solve in place: no
  // intermediate vector, same arithmetic.
  Alpha.resize(N);
  for (size_t I = 0; I != N; ++I)
    Alpha[I] = DataY[I] - MeanY;
  Factor->solveInPlace(Alpha.data());
  double Fit = 0.0;
  for (size_t I = 0; I != N; ++I)
    Fit += (DataY[I] - MeanY) * Alpha[I];
  LogMl = -0.5 * Fit - 0.5 * Factor->logDeterminant() -
          0.5 * double(N) * std::log(2.0 * M_PI);
  return LogMl;
}

double GaussianProcess::refitWith(const GpHyperParams &P) {
  return Config.Approx == GpApprox::SoR ? refitWithSor(P) : refitWithExact(P);
}

double GaussianProcess::refitWithExact(const GpHyperParams &P) {
  Params = P;
  size_t N = DataX.size();
  // Only the lower triangle is filled — factorize() never reads above
  // the diagonal.  Rows are independent writes, so the fill shards onto
  // the scheduler bit-identically to the sequential loop.
  Matrix K(N, N);
  shardedFor(Workers, N, KernelFillShard,
             [&](size_t, size_t Begin, size_t End) {
               for (size_t I = Begin; I != End; ++I) {
                 double *Row = &K.at(I, 0);
                 for (size_t J = 0; J <= I; ++J)
                   Row[J] = kernel(DataX[I], DataX[J]);
                 Row[I] += Params.NoiseVariance + 1e-10;
               }
             });
  Factor = Cholesky::factorize(K, Workers);
  if (!Factor)
    return -1e300; // not PD under these hyperparameters
  return recomputeWeights();
}

void GaussianProcess::refit() { refitWith(Params); }

void GaussianProcess::updateIncremental() {
  size_t N = DataX.size(); // includes the point just pushed
  if (!Factor || Factor->size() != N - 1) {
    // No factorization to extend (first data, or points buffered by a
    // previous Deferred phase): fall back to the full solve.
    refitWith(Params);
    return;
  }
  RowRef X = DataX[N - 1];
  UpdateScratch.resize(N - 1);
  kernelRow(DataX, X, UpdateScratch.data(), N - 1);
  double Diag = kernel(X, X) + Params.NoiseVariance + 1e-10;
  if (!Factor->extend(UpdateScratch, Diag)) {
    // Numerically non-PD border: fall back to a full refactorization.
    // If even that fails (e.g. a non-finite feature), drop the offending
    // observation and restore the previous factor rather than leave the
    // model unusable.
    Cholesky Saved = *Factor; // engaged: extend() was just called on it
    refitWith(Params);
    if (!Factor) {
      DataX.popRow();
      DataY.pop_back();
      Factor = std::move(Saved);
    }
    return;
  }
  recomputeWeights();
}

void GaussianProcess::fit(const FlatRows &X, const std::vector<double> &Y) {
  assert(X.size() == Y.size() && !X.empty() && "bad training batch");
  DataX = X;
  DataY = Y;
  double Sum = 0.0;
  for (double Yi : Y)
    Sum += Yi;
  MeanY = Sum / double(Y.size());

  if (!Config.OptimizeHyperParams) {
    refitWith(Params);
    return;
  }

  // Random-restart search over (signal, length, noise) maximizing the log
  // marginal likelihood.  Scales are data-driven.
  double Var = 0.0;
  for (double Yi : Y)
    Var += (Yi - MeanY) * (Yi - MeanY);
  Var = std::max(Var / double(Y.size()), 1e-12);

  Rng R(Config.Seed);
  GpHyperParams Best = Params;
  double BestMl = -1e300;
  // Restart 0 of a re-optimization: the previous optimum.  Evaluating it
  // first (the random restarts draw the same stream either way) makes
  // the selected log marginal likelihood numerically no worse than a
  // cold search — and the first fit() identical to one.
  if (Config.WarmStart && PrevOptimum) {
    BestMl = refitWith(*PrevOptimum);
    Best = *PrevOptimum;
  }
  for (unsigned Trial = 0; Trial != Config.OptimizerRestarts; ++Trial) {
    GpHyperParams P;
    P.SignalVariance = Var * std::exp(R.nextUniform(-1.5, 1.5));
    P.LengthScale = std::exp(R.nextUniform(-1.5, 2.0));
    P.NoiseVariance = Var * std::exp(R.nextUniform(-9.0, -0.5));
    double Ml = refitWith(P);
    if (Ml > BestMl) {
      BestMl = Ml;
      Best = P;
    }
  }
  refitWith(Best);
  PrevOptimum = Best;
}

void GaussianProcess::update(RowRef X, double Y) {
  DataX.push(X);
  DataY.push_back(Y);
  switch (Config.Update) {
  case GpUpdateMode::Incremental:
    if (Config.Approx == GpApprox::SoR)
      updateIncrementalSor();
    else
      updateIncremental();
    break;
  case GpUpdateMode::Refit:
    refitWith(Params); // the O(n^3) cost the paper's Section 3.2 dislikes
    break;
  case GpUpdateMode::Deferred:
    break;
  }
}

Prediction GaussianProcess::predict(RowRef X) const {
  return Config.Approx == GpApprox::SoR ? predictSor(X) : predictExact(X);
}

Prediction GaussianProcess::predictExact(RowRef X) const {
  assert(Factor && "GP not fitted");
  // Alpha (not DataX) bounds the fitted prefix: under Deferred updates
  // the newest points are buffered and must not be indexed here.
  size_t N = Alpha.size();
  // predict() runs concurrently from sharded scoring, so the kernel-row
  // scratch is per thread; the forward solve overwrites it in place
  // after the mean is accumulated.
  thread_local std::vector<double> Ks;
  Ks.resize(N);
  kernelRow(DataX, X, Ks.data(), N);
  Prediction Out;
  Out.Mean = MeanY;
  for (size_t I = 0; I != N; ++I)
    Out.Mean += Ks[I] * Alpha[I];
  Factor->solveLowerInPlace(Ks.data());
  double Reduction = 0.0;
  for (size_t I = 0; I != N; ++I)
    Reduction += Ks[I] * Ks[I];
  Out.Variance =
      std::max(0.0, Params.SignalVariance - Reduction) + Params.NoiseVariance;
  return Out;
}

void GaussianProcess::predictBatch(const FlatRows &X, size_t Count,
                                   Prediction *Out) const {
  assert(Count <= X.size() && "batch count out of range");
  if (Config.Approx == GpApprox::SoR) {
    assert(AFactor && "GP (SoR) not fitted");
    size_t M = Inducing.size();
    thread_local std::vector<double> KBuf, VBuf;
    for (size_t B0 = 0; B0 < Count; B0 += PredictBlock) {
      size_t Num = std::min(PredictBlock, Count - B0);
      KBuf.resize(Num * M);
      for (size_t C = 0; C != Num; ++C)
        kernelRow(InducingX, X[B0 + C], KBuf.data() + C * M, M);
      VBuf.assign(KBuf.begin(), KBuf.begin() + Num * M);
      AFactor->solveManyInPlace(VBuf.data(), Num);
      for (size_t C = 0; C != Num; ++C) {
        const double *K = KBuf.data() + C * M;
        const double *V = VBuf.data() + C * M;
        double Mean = MeanY;
        for (size_t I = 0; I != M; ++I)
          Mean += K[I] * SorW[I];
        double Q = 0.0;
        for (size_t I = 0; I != M; ++I)
          Q += K[I] * V[I];
        Out[B0 + C].Mean = Mean;
        Out[B0 + C].Variance = std::max(0.0, Q) + Params.NoiseVariance;
      }
    }
    return;
  }
  assert(Factor && "GP not fitted");
  size_t N = Alpha.size();
  // Means are accumulated while the buffer still holds raw kernel rows,
  // then the blocked forward solve overwrites it for the variances —
  // per point, exactly predictExact()'s arithmetic.
  thread_local std::vector<double> Ks;
  for (size_t B0 = 0; B0 < Count; B0 += PredictBlock) {
    size_t Num = std::min(PredictBlock, Count - B0);
    Ks.resize(Num * N);
    for (size_t C = 0; C != Num; ++C)
      kernelRow(DataX, X[B0 + C], Ks.data() + C * N, N);
    for (size_t C = 0; C != Num; ++C) {
      const double *Row = Ks.data() + C * N;
      double Mean = MeanY;
      for (size_t I = 0; I != N; ++I)
        Mean += Row[I] * Alpha[I];
      Out[B0 + C].Mean = Mean;
    }
    Factor->solveLowerManyInPlace(Ks.data(), Num);
    for (size_t C = 0; C != Num; ++C) {
      const double *Row = Ks.data() + C * N;
      double Reduction = 0.0;
      for (size_t I = 0; I != N; ++I)
        Reduction += Row[I] * Row[I];
      Out[B0 + C].Variance =
          std::max(0.0, Params.SignalVariance - Reduction) +
          Params.NoiseVariance;
    }
  }
}

std::vector<double> GaussianProcess::almScores(const FlatRows &Candidates,
                                               const ScoreContext &Ctx) const {
  if (Config.Approx == GpApprox::SoR)
    return almScoresSor(Candidates, Ctx);
  assert(Factor && "GP not fitted");
  size_t N = Alpha.size();
  // Per shard: one batch of kernel rows, one blocked forward solve.
  // Every candidate receives the same floating-point sequence as a
  // standalone predict(), so scores are bit-identical to the default
  // per-candidate path at any worker count.
  std::vector<double> Scores(Candidates.size());
  shardedFor(Ctx.Pool, Candidates.size(), Ctx.ShardSize,
             [&](size_t, size_t Begin, size_t End) {
               thread_local std::vector<double> Buf;
               size_t Num = End - Begin;
               Buf.resize(Num * N);
               for (size_t C = Begin; C != End; ++C)
                 kernelRow(DataX, Candidates[C], Buf.data() + (C - Begin) * N,
                           N);
               Factor->solveLowerManyInPlace(Buf.data(), Num);
               for (size_t C = Begin; C != End; ++C) {
                 const double *V = Buf.data() + (C - Begin) * N;
                 double Reduction = 0.0;
                 for (size_t I = 0; I != N; ++I)
                   Reduction += V[I] * V[I];
                 Scores[C] =
                     std::max(0.0, Params.SignalVariance - Reduction) +
                     Params.NoiseVariance;
               }
             });
  return Scores;
}

std::vector<double> GaussianProcess::alcScores(const FlatRows &Candidates,
                                               const FlatRows &Reference,
                                               const ScoreContext &Ctx) const {
  if (Config.Approx == GpApprox::SoR)
    return alcScoresSor(Candidates, Reference, Ctx);
  assert(Factor && "GP not fitted");
  // Exact GP ALC: adding candidate x reduces Var(ref r) by
  //   cov(r, x | data)^2 / (var(x | data) + noise).
  size_t N = Alpha.size(); // fitted prefix (see predictExact())

  // The reference-to-data kernel rows are candidate-independent; computing
  // them once turns the hot loop from O(nc * nr * n) kernel evaluations
  // into O(nr * n), and each row is an independent write, so the sharded
  // and sequential paths agree bitwise.
  Matrix RefK(Reference.size(), N);
  shardedFor(Ctx.Pool, Reference.size(), Ctx.ShardSize,
             [&](size_t, size_t Begin, size_t End) {
               for (size_t R = Begin; R != End; ++R)
                 kernelRow(DataX, Reference[R], &RefK.at(R, 0), N);
             });

  // Candidates are scored in fixed-grid shards; each shard batches its
  // kernel rows through one blocked multi-RHS solve, and every
  // candidate's inner loops then run in the same order as the sequential
  // per-candidate implementation, so the scores are bit-identical at any
  // thread count.
  std::vector<double> Scores(Candidates.size(), 0.0);
  shardedFor(Ctx.Pool, Candidates.size(), Ctx.ShardSize,
             [&](size_t, size_t Begin, size_t End) {
    thread_local std::vector<double> KxBuf, WxBuf;
    size_t Num = End - Begin;
    KxBuf.resize(Num * N);
    for (size_t C = Begin; C != End; ++C)
      kernelRow(DataX, Candidates[C], KxBuf.data() + (C - Begin) * N, N);
    WxBuf.assign(KxBuf.begin(), KxBuf.begin() + Num * N);
    Factor->solveManyInPlace(WxBuf.data(), Num);
    for (size_t C = Begin; C != End; ++C) {
      RowRef X = Candidates[C];
      const double *Kx = KxBuf.data() + (C - Begin) * N;
      const double *Wx = WxBuf.data() + (C - Begin) * N;
      double VarX = Params.SignalVariance;
      for (size_t I = 0; I != N; ++I)
        VarX -= Kx[I] * Wx[I];
      VarX = std::max(VarX, 1e-12) + Params.NoiseVariance;
      double Total = 0.0;
      for (size_t R = 0; R != Reference.size(); ++R) {
        double Cov = kernel(Reference[R], X);
        for (size_t I = 0; I != N; ++I)
          Cov -= RefK.at(R, I) * Wx[I];
        Total += Cov * Cov / VarX;
      }
      Scores[C] = Total;
    }
  });
  return Scores;
}

//===----------------------------------------------------------------------===//
// Subset of regressors
//===----------------------------------------------------------------------===//

void GaussianProcess::chooseInducing() {
  size_t N = DataX.size();
  size_t M = std::min<size_t>(Config.InducingPoints, N);
  // The inducing subset is a pure function of (Seed, N, M): any two fits
  // of the same data under the same config pick the same points, at any
  // worker count.  Sorted so streaming passes touch DataX in order.
  Rng R(hashCombine({Config.Seed, 0x536f52ull})); // "SoR"
  std::vector<size_t> Idx = R.sampleIndices(N, M);
  std::sort(Idx.begin(), Idx.end());
  Inducing.resize(M);
  for (size_t I = 0; I != M; ++I)
    Inducing[I] = uint32_t(Idx[I]);
  InducingX.clear();
  InducingX.reserveRows(M);
  for (uint32_t I : Inducing)
    InducingX.push(DataX[I]);
}

double GaussianProcess::refitWithSor(const GpHyperParams &P) {
  Params = P;
  size_t N = DataX.size();
  chooseInducing();
  size_t M = Inducing.size();
  // K_mm with a relative jitter: inducing points drawn from revisited
  // training data can coincide exactly, and an absolute 1e-10 drowns at
  // SignalVariance scale.
  double Jitter = 1e-8 * Params.SignalVariance + 1e-10;
  Matrix Kmm(M, M);
  for (size_t I = 0; I != M; ++I) {
    double *Row = &Kmm.at(I, 0);
    for (size_t J = 0; J <= I; ++J)
      Row[J] = kernel(InducingX[I], InducingX[J]);
    Row[I] += Jitter;
  }
  std::optional<Cholesky> KmmF = Cholesky::factorize(Kmm, Workers);
  if (!KmmF) {
    AFactor.reset();
    return -1e300; // not PD under these hyperparameters
  }
  KmmLogDet = KmmF->logDeterminant();

  // A = K_mm + sigma^-2 K_mn K_nm, streamed one data row at a time —
  // K_mn is never materialized.  The running sums BRaw/SVec/SumY keep
  // the mean-centering exact under later rank-1 updates.
  double InvNoise = 1.0 / Params.NoiseVariance;
  Matrix A = Kmm;
  BRaw.assign(M, 0.0);
  SVec.assign(M, 0.0);
  SumY = 0.0;
  SumY2 = 0.0;
  UpdateScratch.resize(M);
  double *K = UpdateScratch.data();
  for (size_t R = 0; R != N; ++R) {
    kernelRow(InducingX, DataX[R], K, M);
    double Y = DataY[R];
    SumY += Y;
    SumY2 += Y * Y;
    for (size_t I = 0; I != M; ++I) {
      double Ki = K[I];
      BRaw[I] += Ki * Y;
      SVec[I] += Ki;
      double *RowI = &A.at(I, 0);
      for (size_t J = 0; J <= I; ++J)
        RowI[J] += InvNoise * Ki * K[J];
    }
  }
  AFactor = Cholesky::factorize(A, Workers);
  if (!AFactor)
    return -1e300;
  MeanY = SumY / double(N);
  SorFittedN = N;
  return recomputeSorWeights();
}

double GaussianProcess::recomputeSorWeights() {
  size_t N = SorFittedN;
  size_t M = Inducing.size();
  // Centered projected targets bc = BRaw - MeanY * SVec; weights are
  // sigma^-2 A^-1 bc.
  SorW.resize(M);
  for (size_t I = 0; I != M; ++I)
    SorW[I] = BRaw[I] - MeanY * SVec[I];
  AFactor->solveInPlace(SorW.data()); // A^-1 bc
  double Quad = 0.0;                  // bc^T A^-1 bc
  for (size_t I = 0; I != M; ++I)
    Quad += (BRaw[I] - MeanY * SVec[I]) * SorW[I];
  // SoR marginal: y~ | 0 ~ N(0, sigma^2 I + K_nm K_mm^-1 K_mn).
  // Woodbury gives the quadratic form
  // sigma^-2 y~^T y~ - sigma^-4 bc^T A^-1 bc, the determinant lemma
  // n log sigma^2 + log|A| - log|K_mm|.
  double Yc2 = SumY2 - MeanY * SumY; // sum (y - mean)^2
  double InvNoise = 1.0 / Params.NoiseVariance;
  double FitTerm = InvNoise * (Yc2 - InvNoise * Quad);
  double LogDet = double(N) * std::log(Params.NoiseVariance) +
                  AFactor->logDeterminant() - KmmLogDet;
  LogMl = -0.5 * FitTerm - 0.5 * LogDet -
          0.5 * double(N) * std::log(2.0 * M_PI);
  for (size_t I = 0; I != M; ++I)
    SorW[I] *= InvNoise;
  return LogMl;
}

void GaussianProcess::updateIncrementalSor() {
  size_t N = DataX.size(); // includes the point just pushed
  if (!AFactor || SorFittedN != N - 1) {
    refitWith(Params);
    return;
  }
  size_t M = Inducing.size();
  RowRef X = DataX[N - 1];
  double Y = DataY[N - 1];
  UpdateScratch.resize(M);
  kernelRow(InducingX, X, UpdateScratch.data(), M);
  bool Finite = std::isfinite(Y);
  for (double Ki : UpdateScratch)
    Finite = Finite && std::isfinite(Ki);
  if (!Finite) {
    // A poisoned rank-1 update is irrecoverable (contrast the exact
    // path, which can refactorize from scratch): drop the observation.
    DataX.popRow();
    DataY.pop_back();
    return;
  }
  // A += sigma^-2 k k^T, applied as the rank-1 Cholesky update with
  // v = k / sigma.  The inducing set itself stays fixed until the next
  // refit — the standard SoR regime, where m bounds the basis and new
  // data only sharpens the projected posterior.
  SumY += Y;
  SumY2 += Y * Y;
  double InvSigma = 1.0 / std::sqrt(Params.NoiseVariance);
  UpdateScratch2.resize(M);
  for (size_t I = 0; I != M; ++I) {
    double Ki = UpdateScratch[I];
    BRaw[I] += Ki * Y;
    SVec[I] += Ki;
    UpdateScratch2[I] = Ki * InvSigma;
  }
  AFactor->rankOneUpdate(UpdateScratch2);
  MeanY = SumY / double(N);
  SorFittedN = N;
  recomputeSorWeights();
}

Prediction GaussianProcess::predictSor(RowRef X) const {
  assert(AFactor && "GP (SoR) not fitted");
  size_t M = Inducing.size();
  thread_local std::vector<double> K, V;
  K.resize(M);
  kernelRow(InducingX, X, K.data(), M);
  Prediction Out;
  Out.Mean = MeanY;
  for (size_t I = 0; I != M; ++I)
    Out.Mean += K[I] * SorW[I];
  V.assign(K.begin(), K.end());
  AFactor->solveInPlace(V.data());
  double Q = 0.0; // k^T A^-1 k — the projected predictive variance
  for (size_t I = 0; I != M; ++I)
    Q += K[I] * V[I];
  Out.Variance = std::max(0.0, Q) + Params.NoiseVariance;
  return Out;
}

std::vector<double>
GaussianProcess::almScoresSor(const FlatRows &Candidates,
                              const ScoreContext &Ctx) const {
  assert(AFactor && "GP (SoR) not fitted");
  size_t M = Inducing.size();
  std::vector<double> Scores(Candidates.size());
  shardedFor(Ctx.Pool, Candidates.size(), Ctx.ShardSize,
             [&](size_t, size_t Begin, size_t End) {
               thread_local std::vector<double> KBuf, VBuf;
               size_t Num = End - Begin;
               KBuf.resize(Num * M);
               for (size_t C = Begin; C != End; ++C)
                 kernelRow(InducingX, Candidates[C],
                           KBuf.data() + (C - Begin) * M, M);
               VBuf.assign(KBuf.begin(), KBuf.begin() + Num * M);
               AFactor->solveManyInPlace(VBuf.data(), Num);
               for (size_t C = Begin; C != End; ++C) {
                 const double *K = KBuf.data() + (C - Begin) * M;
                 const double *V = VBuf.data() + (C - Begin) * M;
                 double Q = 0.0;
                 for (size_t I = 0; I != M; ++I)
                   Q += K[I] * V[I];
                 Scores[C] = std::max(0.0, Q) + Params.NoiseVariance;
               }
             });
  return Scores;
}

std::vector<double>
GaussianProcess::alcScoresSor(const FlatRows &Candidates,
                              const FlatRows &Reference,
                              const ScoreContext &Ctx) const {
  assert(AFactor && "GP (SoR) not fitted");
  // SoR posterior over the projected weights u has covariance A^-1, so
  //   cov(f(r), f(x) | data) = k_r^T A^-1 k_x   and
  //   var(f(x) | data)       = k_x^T A^-1 k_x.
  size_t M = Inducing.size();

  // U_r = A^-1 k_r per reference row — candidate-independent, and each
  // row is produced by one independent full solve, so the sharded fill
  // agrees bitwise with the sequential one.
  Matrix RefU(Reference.size(), M);
  shardedFor(Ctx.Pool, Reference.size(), Ctx.ShardSize,
             [&](size_t, size_t Begin, size_t End) {
               for (size_t R = Begin; R != End; ++R)
                 kernelRow(InducingX, Reference[R], &RefU.at(R, 0), M);
               AFactor->solveManyInPlace(&RefU.at(Begin, 0), End - Begin);
             });

  std::vector<double> Scores(Candidates.size(), 0.0);
  shardedFor(Ctx.Pool, Candidates.size(), Ctx.ShardSize,
             [&](size_t, size_t Begin, size_t End) {
               thread_local std::vector<double> KBuf, VBuf;
               size_t Num = End - Begin;
               KBuf.resize(Num * M);
               for (size_t C = Begin; C != End; ++C)
                 kernelRow(InducingX, Candidates[C],
                           KBuf.data() + (C - Begin) * M, M);
               VBuf.assign(KBuf.begin(), KBuf.begin() + Num * M);
               AFactor->solveManyInPlace(VBuf.data(), Num);
               for (size_t C = Begin; C != End; ++C) {
                 const double *Kx = KBuf.data() + (C - Begin) * M;
                 const double *Vx = VBuf.data() + (C - Begin) * M;
                 double VarX = 0.0;
                 for (size_t I = 0; I != M; ++I)
                   VarX += Kx[I] * Vx[I];
                 VarX = std::max(VarX, 1e-12) + Params.NoiseVariance;
                 double Total = 0.0;
                 for (size_t R = 0; R != Reference.size(); ++R) {
                   const double *Ur = &RefU.at(R, 0);
                   double Cov = 0.0;
                   for (size_t I = 0; I != M; ++I)
                     Cov += Ur[I] * Kx[I];
                   Total += Cov * Cov / VarX;
                 }
                 Scores[C] = Total;
               }
             });
  return Scores;
}

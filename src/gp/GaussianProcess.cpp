//===- gp/GaussianProcess.cpp ---------------------------------*- C++ -*-===//

#include "gp/GaussianProcess.h"

#include "support/Error.h"
#include "support/Rng.h"
#include "support/Scheduler.h"

#include <cassert>
#include <cmath>

using namespace alic;

GaussianProcess::GaussianProcess(GpConfig Config)
    : Config(Config), Params(Config.Init) {}

double GaussianProcess::kernel(RowRef A, RowRef B) const {
  double D2 = squaredDistance(A, B);
  return Params.SignalVariance *
         std::exp(-0.5 * D2 / (Params.LengthScale * Params.LengthScale));
}

double GaussianProcess::recomputeWeights() {
  size_t N = DataX.size();
  double Sum = 0.0;
  for (double Yi : DataY)
    Sum += Yi;
  MeanY = Sum / double(N);
  std::vector<double> Centered(N);
  for (size_t I = 0; I != N; ++I)
    Centered[I] = DataY[I] - MeanY;
  Alpha = Factor->solve(Centered);
  double Fit = 0.0;
  for (size_t I = 0; I != N; ++I)
    Fit += Centered[I] * Alpha[I];
  LogMl = -0.5 * Fit - 0.5 * Factor->logDeterminant() -
          0.5 * double(N) * std::log(2.0 * M_PI);
  return LogMl;
}

double GaussianProcess::refitWith(const GpHyperParams &P) {
  Params = P;
  size_t N = DataX.size();
  Matrix K(N, N);
  for (size_t I = 0; I != N; ++I) {
    for (size_t J = 0; J <= I; ++J) {
      double V = kernel(DataX[I], DataX[J]);
      K.at(I, J) = V;
      K.at(J, I) = V;
    }
    K.at(I, I) += Params.NoiseVariance + 1e-10;
  }
  Factor = Cholesky::factorize(K);
  if (!Factor)
    return -1e300; // not PD under these hyperparameters
  return recomputeWeights();
}

void GaussianProcess::refit() { refitWith(Params); }

void GaussianProcess::updateIncremental() {
  size_t N = DataX.size(); // includes the point just pushed
  if (!Factor || Factor->size() != N - 1) {
    // No factorization to extend (first data, or points buffered by a
    // previous Deferred phase): fall back to the full solve.
    refitWith(Params);
    return;
  }
  RowRef X = DataX[N - 1];
  std::vector<double> Border(N - 1);
  for (size_t I = 0; I != N - 1; ++I)
    Border[I] = kernel(X, DataX[I]);
  double Diag = kernel(X, X) + Params.NoiseVariance + 1e-10;
  if (!Factor->extend(Border, Diag)) {
    // Numerically non-PD border: fall back to a full refactorization.
    // If even that fails (e.g. a non-finite feature), drop the offending
    // observation and restore the previous factor rather than leave the
    // model unusable.
    std::optional<Cholesky> Saved = Factor;
    refitWith(Params);
    if (!Factor) {
      DataX.popRow();
      DataY.pop_back();
      Factor = std::move(Saved);
    }
    return;
  }
  recomputeWeights();
}

void GaussianProcess::fit(const FlatRows &X, const std::vector<double> &Y) {
  assert(X.size() == Y.size() && !X.empty() && "bad training batch");
  DataX = X;
  DataY = Y;
  double Sum = 0.0;
  for (double Yi : Y)
    Sum += Yi;
  MeanY = Sum / double(Y.size());

  if (!Config.OptimizeHyperParams) {
    refitWith(Params);
    return;
  }

  // Random-restart search over (signal, length, noise) maximizing the log
  // marginal likelihood.  Scales are data-driven.
  double Var = 0.0;
  for (double Yi : Y)
    Var += (Yi - MeanY) * (Yi - MeanY);
  Var = std::max(Var / double(Y.size()), 1e-12);

  Rng R(Config.Seed);
  GpHyperParams Best = Params;
  double BestMl = -1e300;
  // Restart 0 of a re-optimization: the previous optimum.  Evaluating it
  // first (the random restarts draw the same stream either way) makes
  // the selected log marginal likelihood numerically no worse than a
  // cold search — and the first fit() identical to one.
  if (Config.WarmStart && PrevOptimum) {
    BestMl = refitWith(*PrevOptimum);
    Best = *PrevOptimum;
  }
  for (unsigned Trial = 0; Trial != Config.OptimizerRestarts; ++Trial) {
    GpHyperParams P;
    P.SignalVariance = Var * std::exp(R.nextUniform(-1.5, 1.5));
    P.LengthScale = std::exp(R.nextUniform(-1.5, 2.0));
    P.NoiseVariance = Var * std::exp(R.nextUniform(-9.0, -0.5));
    double Ml = refitWith(P);
    if (Ml > BestMl) {
      BestMl = Ml;
      Best = P;
    }
  }
  refitWith(Best);
  PrevOptimum = Best;
}

void GaussianProcess::update(RowRef X, double Y) {
  DataX.push(X);
  DataY.push_back(Y);
  switch (Config.Update) {
  case GpUpdateMode::Incremental:
    updateIncremental();
    break;
  case GpUpdateMode::Refit:
    refitWith(Params); // the O(n^3) cost the paper's Section 3.2 dislikes
    break;
  case GpUpdateMode::Deferred:
    break;
  }
}

Prediction GaussianProcess::predict(RowRef X) const {
  assert(Factor && "GP not fitted");
  // Alpha (not DataX) bounds the fitted prefix: under Deferred updates
  // the newest points are buffered and must not be indexed here.
  size_t N = Alpha.size();
  std::vector<double> Ks(N);
  for (size_t I = 0; I != N; ++I)
    Ks[I] = kernel(X, DataX[I]);
  Prediction Out;
  Out.Mean = MeanY;
  for (size_t I = 0; I != N; ++I)
    Out.Mean += Ks[I] * Alpha[I];
  std::vector<double> V = Factor->solveLower(Ks);
  double Reduction = 0.0;
  for (double Vi : V)
    Reduction += Vi * Vi;
  Out.Variance =
      std::max(0.0, Params.SignalVariance - Reduction) + Params.NoiseVariance;
  return Out;
}

std::vector<double> GaussianProcess::alcScores(const FlatRows &Candidates,
                                               const FlatRows &Reference,
                                               const ScoreContext &Ctx) const {
  assert(Factor && "GP not fitted");
  // Exact GP ALC: adding candidate x reduces Var(ref r) by
  //   cov(r, x | data)^2 / (var(x | data) + noise).
  size_t N = Alpha.size(); // fitted prefix (see predict())

  // The reference-to-data kernel rows are candidate-independent; computing
  // them once turns the hot loop from O(nc * nr * n) kernel evaluations
  // into O(nr * n), and each row is an independent write, so the sharded
  // and sequential paths agree bitwise.
  Matrix RefK(Reference.size(), N);
  shardedFor(Ctx.Pool, Reference.size(), Ctx.ShardSize,
             [&](size_t, size_t Begin, size_t End) {
               for (size_t R = Begin; R != End; ++R)
                 for (size_t I = 0; I != N; ++I)
                   RefK.at(R, I) = kernel(Reference[R], DataX[I]);
             });

  // Candidates are scored in fixed-grid shards; every candidate's inner
  // loops run in the same order as the sequential implementation, so the
  // scores are bit-identical at any thread count.
  std::vector<double> Scores(Candidates.size(), 0.0);
  shardedFor(Ctx.Pool, Candidates.size(), Ctx.ShardSize,
             [&](size_t, size_t Begin, size_t End) {
    for (size_t C = Begin; C != End; ++C) {
      RowRef X = Candidates[C];
      std::vector<double> Kx(N);
      for (size_t I = 0; I != N; ++I)
        Kx[I] = kernel(X, DataX[I]);
      std::vector<double> Wx = Factor->solve(Kx);
      double VarX = Params.SignalVariance;
      for (size_t I = 0; I != N; ++I)
        VarX -= Kx[I] * Wx[I];
      VarX = std::max(VarX, 1e-12) + Params.NoiseVariance;
      double Total = 0.0;
      for (size_t R = 0; R != Reference.size(); ++R) {
        double Cov = kernel(Reference[R], X);
        for (size_t I = 0; I != N; ++I)
          Cov -= RefK.at(R, I) * Wx[I];
        Total += Cov * Cov / VarX;
      }
      Scores[C] = Total;
    }
  });
  return Scores;
}

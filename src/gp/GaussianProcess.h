//===- gp/GaussianProcess.h - GP regression (exact + SoR) ------*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Gaussian-process regression with a squared-exponential (RBF) kernel.
/// Section 3.2 of the paper: "the collective wisdom would be to use a
/// Gaussian Process ... however, GP inference is slow with O(n^3)
/// efficiency".  This implementation exists to reproduce that comparison
/// (bench_ablation_model_cost) and as an alternative surrogate for the
/// active learner.
///
/// Two inference modes (GpApprox):
///
///  * Exact — full n x n Cholesky inference over the packed triangular
///    factor (linalg/Cholesky.h).  update() supports both sides of the
///    paper's comparison: the default incremental mode grows the factor
///    by one bordered row (Cholesky::extend, O(n^2) per observation and
///    amortized O(n) copies) and re-solves for the weights, which is
///    numerically identical to the from-scratch O(n^3) refit mode
///    because the extension reproduces factorize()'s arithmetic
///    bit-for-bit.  The full refit is still what hyperparameter
///    re-optimization costs — bench_ablation_model_cost contrasts the
///    two.
///
///  * SoR — subset of regressors (Quinonero-Candela & Rasmussen 2005):
///    inference through the m x m projected system
///    A = K_mm + sigma^-2 K_mn K_nm over m inducing points drawn
///    deterministically from the training set.  Fit is O(n m^2) (one
///    streamed pass over the data), update O(m^2) (rank-1 Cholesky
///    update), predict O(m) — the low-rank escape hatch for nmax-scale
///    training sets, ablated against the exact mode in
///    bench_ablation_model_cost.
///
/// Hot paths allocate nothing per call: kernel rows land in reused
/// (thread-local, for the const scoring paths) scratch, and candidate
/// batches go through the blocked multi-RHS triangular solves, so the
/// factor rows stream from cache once per shard instead of once per
/// candidate.  Scoring results remain bit-identical to the sequential
/// per-candidate path at any worker count.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_GP_GAUSSIANPROCESS_H
#define ALIC_GP_GAUSSIANPROCESS_H

#include "linalg/Cholesky.h"
#include "model/SurrogateModel.h"

#include <cstdint>
#include <optional>

namespace alic {

/// Hyperparameters of the RBF kernel.
struct GpHyperParams {
  double SignalVariance = 1.0;  ///< sigma_f^2
  double LengthScale = 1.0;     ///< shared across dimensions
  double NoiseVariance = 0.01;  ///< sigma_n^2 (nugget)
};

/// How update() absorbs one observation.
enum class GpUpdateMode {
  /// Rank-1 Cholesky extension: O(n^2) per observation, identical
  /// predictions to a full refit (the default).
  Incremental,
  /// Full O(n^3) refactorization per observation — the cost the paper's
  /// Section 3.2 attributes to GPs; kept for the ablation benches.
  Refit,
  /// Buffer the observation; predictions reuse the stale factorization
  /// until refit() is called (cost benches separating fit/update costs).
  Deferred,
};

/// Which inference path the GP runs.
enum class GpApprox {
  /// Full n x n Cholesky inference — the paper's O(n^3) comparator, and
  /// the mode every committed campaign baseline pins bit-identically.
  Exact,
  /// Subset of regressors: m inducing points, O(n m^2) fit, O(m^2)
  /// update, O(m) predict.  Approximate (variance is the projected
  /// k_*^T A^-1 k_* + noise, which under-covers far from the inducing
  /// set) but deterministic: the inducing subset is a pure function of
  /// (Seed, n, m).
  SoR,
};

/// Configuration of the GP surrogate.
struct GpConfig {
  GpHyperParams Init;
  /// If true, fit() runs a random search over hyperparameters maximizing
  /// the log marginal likelihood (the SoR marginal under GpApprox::SoR).
  bool OptimizeHyperParams = true;
  unsigned OptimizerRestarts = 24;
  uint64_t Seed = 23;
  /// Warm-start re-optimization: after the first optimized fit(), every
  /// later fit() evaluates the previous optimum as restart 0 before the
  /// random restarts (which draw the exact same stream as a cold
  /// search).  The selected log marginal likelihood is therefore never
  /// worse than a cold search over the same restarts, which lets
  /// repeated-fit workflows (periodic re-optimization as data grows)
  /// shrink OptimizerRestarts — the expensive part, one O(n^3) refit
  /// each — without quality regressions.  The single-fit learner loop
  /// never re-optimizes, and the first fit() is bit-identical to the
  /// pre-warm-start behavior, so campaign results are untouched.
  bool WarmStart = true;
  /// How update() folds new observations into the factorization.
  GpUpdateMode Update = GpUpdateMode::Incremental;
  /// Inference mode: exact O(n^3) or subset-of-regressors.
  GpApprox Approx = GpApprox::Exact;
  /// Inducing-point budget m of GpApprox::SoR (clamped to n).
  unsigned InducingPoints = 256;
};

/// GP regression surrogate (exact or subset-of-regressors inference).
class GaussianProcess : public SurrogateModel {
public:
  explicit GaussianProcess(GpConfig Config = GpConfig());

  void fit(const FlatRows &X, const std::vector<double> &Y) override;
  void update(RowRef X, double Y) override;
  Prediction predict(RowRef X) const override;
  void predictBatch(const FlatRows &X, size_t Count,
                    Prediction *Out) const override;
  std::vector<double> almScores(const FlatRows &Candidates,
                                const ScoreContext &Ctx = ScoreContext())
      const override;
  std::vector<double> alcScores(const FlatRows &Candidates,
                                const FlatRows &Reference,
                                const ScoreContext &Ctx = ScoreContext())
      const override;
  size_t numObservations() const override { return DataX.size(); }

  /// Blocked factorization: refits fork panel trailing updates (and the
  /// kernel-matrix fill) onto \p Workers; results are bit-identical at
  /// any worker count (see linalg/Cholesky.h).
  void setScheduler(Scheduler *W) override { Workers = W; }

  /// Log marginal likelihood of the current fit (the SoR marginal under
  /// GpApprox::SoR).
  double logMarginalLikelihood() const { return LogMl; }

  const GpHyperParams &hyperParams() const { return Params; }

  /// Training-set indices of the SoR inducing points (sorted; empty in
  /// exact mode or before fitting).  Exposed for determinism tests.
  const std::vector<uint32_t> &inducingIndices() const { return Inducing; }

  /// Re-solves the linear system with the stored data (exposed so the
  /// cost ablation can time one refit in isolation; also absorbs any
  /// observations buffered by GpUpdateMode::Deferred).
  void refit();

private:
  double kernel(RowRef A, RowRef B) const;
  /// Fills Out[0..Num) with kernel(X, Rows[I]) — the one kernel-row
  /// loop every batched path shares.
  void kernelRow(const FlatRows &Rows, RowRef X, double *Out,
                 size_t Num) const;
  double refitWith(const GpHyperParams &P);  ///< dispatch on Config.Approx
  double refitWithExact(const GpHyperParams &P);
  double refitWithSor(const GpHyperParams &P);
  /// Recomputes the data mean, weights, and log marginal likelihood from
  /// the current factor (O(n^2)); shared by the refit and incremental
  /// update paths so both produce identical state.
  double recomputeWeights();
  /// SoR counterpart of recomputeWeights(): weights and marginal from
  /// the projected system's factor and running sums (O(m^2)).
  double recomputeSorWeights();
  /// Extends the factorization by the newest data point (O(n^2)).
  void updateIncremental();
  /// Rank-1-updates the SoR projected system by the newest point (O(m^2)).
  void updateIncrementalSor();
  /// Draws the deterministic inducing subset for the current data size.
  void chooseInducing();
  Prediction predictExact(RowRef X) const;
  Prediction predictSor(RowRef X) const;
  std::vector<double> almScoresSor(const FlatRows &Candidates,
                                   const ScoreContext &Ctx) const;
  std::vector<double> alcScoresSor(const FlatRows &Candidates,
                                   const FlatRows &Reference,
                                   const ScoreContext &Ctx) const;

  GpConfig Config;
  GpHyperParams Params;
  FlatRows DataX; ///< contiguous row-major training rows (SoA layout)
  std::vector<double> DataY;
  double MeanY = 0.0;
  Scheduler *Workers = nullptr;
  std::optional<Cholesky> Factor;
  std::vector<double> Alpha; ///< K^-1 (y - mean)
  double LogMl = 0.0;
  /// Optimum of the previous fit(): the warm-start candidate evaluated
  /// as restart 0 of the next re-optimization.
  std::optional<GpHyperParams> PrevOptimum;
  /// Reused update()-path scratch (border row / SoR kernel row); the
  /// const prediction/scoring paths use thread-local scratch instead.
  std::vector<double> UpdateScratch;
  std::vector<double> UpdateScratch2;

  // --- Subset-of-regressors state (GpApprox::SoR only) ---
  std::vector<uint32_t> Inducing; ///< sorted training-row indices
  FlatRows InducingX;             ///< copies of the inducing rows
  /// Factor of A = K_mm + sigma^-2 K_mn K_nm (+ jitter).
  std::optional<Cholesky> AFactor;
  double KmmLogDet = 0.0;      ///< log det K_mm of the current fit
  std::vector<double> BRaw;    ///< K_mn y (uncentered)
  std::vector<double> SVec;    ///< K_mn 1 (recenters BRaw as MeanY moves)
  std::vector<double> SorW;    ///< sigma^-2 A^-1 (BRaw - MeanY SVec)
  double SumY = 0.0, SumY2 = 0.0; ///< running moments for mean/marginal
  size_t SorFittedN = 0;       ///< observations folded into AFactor
};

} // namespace alic

#endif // ALIC_GP_GAUSSIANPROCESS_H

//===- gp/GaussianProcess.h - Exact GP regression --------------*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact Gaussian-process regression with a squared-exponential (RBF)
/// kernel.  Section 3.2 of the paper: "the collective wisdom would be to
/// use a Gaussian Process ... however, GP inference is slow with O(n^3)
/// efficiency".  This implementation exists to reproduce that comparison
/// (bench_ablation_model_cost) and as an alternative surrogate for the
/// active learner.
///
/// update() supports both sides of that comparison: the default
/// incremental mode grows the Cholesky factor by one bordered row
/// (Cholesky::extend, O(n^2) per observation) and re-solves for the
/// weights, which is numerically identical to the from-scratch O(n^3)
/// refit mode because the extension reproduces factorize()'s arithmetic
/// bit-for-bit.  The full refit is still what hyperparameter
/// re-optimization costs — bench_ablation_model_cost contrasts the two.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_GP_GAUSSIANPROCESS_H
#define ALIC_GP_GAUSSIANPROCESS_H

#include "linalg/Cholesky.h"
#include "model/SurrogateModel.h"

#include <cstdint>
#include <optional>

namespace alic {

/// Hyperparameters of the RBF kernel.
struct GpHyperParams {
  double SignalVariance = 1.0;  ///< sigma_f^2
  double LengthScale = 1.0;     ///< shared across dimensions
  double NoiseVariance = 0.01;  ///< sigma_n^2 (nugget)
};

/// How update() absorbs one observation.
enum class GpUpdateMode {
  /// Rank-1 Cholesky extension: O(n^2) per observation, identical
  /// predictions to a full refit (the default).
  Incremental,
  /// Full O(n^3) refactorization per observation — the cost the paper's
  /// Section 3.2 attributes to GPs; kept for the ablation benches.
  Refit,
  /// Buffer the observation; predictions reuse the stale factorization
  /// until refit() is called (cost benches separating fit/update costs).
  Deferred,
};

/// Configuration of the GP surrogate.
struct GpConfig {
  GpHyperParams Init;
  /// If true, fit() runs a random search over hyperparameters maximizing
  /// the log marginal likelihood.
  bool OptimizeHyperParams = true;
  unsigned OptimizerRestarts = 24;
  uint64_t Seed = 23;
  /// Warm-start re-optimization: after the first optimized fit(), every
  /// later fit() evaluates the previous optimum as restart 0 before the
  /// random restarts (which draw the exact same stream as a cold
  /// search).  The selected log marginal likelihood is therefore never
  /// worse than a cold search over the same restarts, which lets
  /// repeated-fit workflows (periodic re-optimization as data grows)
  /// shrink OptimizerRestarts — the expensive part, one O(n^3) refit
  /// each — without quality regressions.  The single-fit learner loop
  /// never re-optimizes, and the first fit() is bit-identical to the
  /// pre-warm-start behavior, so campaign results are untouched.
  bool WarmStart = true;
  /// How update() folds new observations into the factorization.
  GpUpdateMode Update = GpUpdateMode::Incremental;
};

/// Exact GP regression surrogate.
class GaussianProcess : public SurrogateModel {
public:
  explicit GaussianProcess(GpConfig Config = GpConfig());

  void fit(const FlatRows &X, const std::vector<double> &Y) override;
  void update(RowRef X, double Y) override;
  Prediction predict(RowRef X) const override;
  std::vector<double> alcScores(const FlatRows &Candidates,
                                const FlatRows &Reference,
                                const ScoreContext &Ctx = ScoreContext())
      const override;
  size_t numObservations() const override { return DataX.size(); }

  /// Log marginal likelihood of the current fit.
  double logMarginalLikelihood() const { return LogMl; }

  const GpHyperParams &hyperParams() const { return Params; }

  /// Re-solves the linear system with the stored data (exposed so the
  /// cost ablation can time one refit in isolation; also absorbs any
  /// observations buffered by GpUpdateMode::Deferred).
  void refit();

private:
  double kernel(RowRef A, RowRef B) const;
  double refitWith(const GpHyperParams &P);
  /// Recomputes the data mean, weights, and log marginal likelihood from
  /// the current factor (O(n^2)); shared by the refit and incremental
  /// update paths so both produce identical state.
  double recomputeWeights();
  /// Extends the factorization by the newest data point (O(n^2)).
  void updateIncremental();

  GpConfig Config;
  GpHyperParams Params;
  FlatRows DataX; ///< contiguous row-major training rows (SoA layout)
  std::vector<double> DataY;
  double MeanY = 0.0;
  std::optional<Cholesky> Factor;
  std::vector<double> Alpha; ///< K^-1 (y - mean)
  double LogMl = 0.0;
  /// Optimum of the previous fit(): the warm-start candidate evaluated
  /// as restart 0 of the next re-optimization.
  std::optional<GpHyperParams> PrevOptimum;
};

} // namespace alic

#endif // ALIC_GP_GAUSSIANPROCESS_H

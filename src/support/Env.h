//===- support/Env.h - Environment-variable configuration -----*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reading scale/tuning knobs from the environment.  The bench binaries run
/// at a laptop-friendly scale by default; ALIC_SCALE=paper restores the
/// paper's full parameters (N=5000 particles, nmax=2500, 10 repetitions).
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_SUPPORT_ENV_H
#define ALIC_SUPPORT_ENV_H

#include <cstdint>
#include <string>

namespace alic {

/// Returns the environment variable \p Name or \p Default when unset/empty.
std::string getEnvString(const char *Name, const std::string &Default);

/// Returns \p Name parsed as int64, or \p Default when unset or malformed.
int64_t getEnvInt(const char *Name, int64_t Default);

/// Experiment scale presets.
enum class ScaleKind {
  Smoke, ///< seconds-long sanity scale (used by CI/tests)
  Bench, ///< default minutes-long scale for the bench binaries
  Paper, ///< the paper's full parameters (hours on one core)
};

/// Reads ALIC_SCALE ("smoke" | "bench" | "paper"); defaults to Bench.
ScaleKind getScaleKind();

/// Human-readable name of a scale preset.
const char *scaleName(ScaleKind Kind);

} // namespace alic

#endif // ALIC_SUPPORT_ENV_H

//===- support/BigUInt.cpp ------------------------------------*- C++ -*-===//

#include "support/BigUInt.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace alic;

BigUInt::BigUInt(uint64_t Value) {
  if (Value == 0)
    return;
  Limbs.push_back(static_cast<uint32_t>(Value));
  if (Value >> 32)
    Limbs.push_back(static_cast<uint32_t>(Value >> 32));
}

void BigUInt::trim() {
  while (!Limbs.empty() && Limbs.back() == 0)
    Limbs.pop_back();
}

BigUInt BigUInt::operator+(const BigUInt &Rhs) const {
  BigUInt Result;
  size_t N = std::max(Limbs.size(), Rhs.Limbs.size());
  Result.Limbs.resize(N, 0);
  uint64_t Carry = 0;
  for (size_t I = 0; I != N; ++I) {
    uint64_t Sum = Carry;
    if (I < Limbs.size())
      Sum += Limbs[I];
    if (I < Rhs.Limbs.size())
      Sum += Rhs.Limbs[I];
    Result.Limbs[I] = static_cast<uint32_t>(Sum);
    Carry = Sum >> 32;
  }
  if (Carry)
    Result.Limbs.push_back(static_cast<uint32_t>(Carry));
  return Result;
}

BigUInt BigUInt::operator*(const BigUInt &Rhs) const {
  if (isZero() || Rhs.isZero())
    return BigUInt();
  BigUInt Result;
  Result.Limbs.assign(Limbs.size() + Rhs.Limbs.size(), 0);
  for (size_t I = 0; I != Limbs.size(); ++I) {
    uint64_t Carry = 0;
    for (size_t J = 0; J != Rhs.Limbs.size(); ++J) {
      uint64_t Cur = Result.Limbs[I + J] +
                     static_cast<uint64_t>(Limbs[I]) * Rhs.Limbs[J] + Carry;
      Result.Limbs[I + J] = static_cast<uint32_t>(Cur);
      Carry = Cur >> 32;
    }
    size_t K = I + Rhs.Limbs.size();
    while (Carry) {
      uint64_t Cur = Result.Limbs[K] + Carry;
      Result.Limbs[K] = static_cast<uint32_t>(Cur);
      Carry = Cur >> 32;
      ++K;
    }
  }
  Result.trim();
  return Result;
}

BigUInt &BigUInt::mulScalar(uint32_t Factor) {
  if (Factor == 0) {
    Limbs.clear();
    return *this;
  }
  uint64_t Carry = 0;
  for (uint32_t &Limb : Limbs) {
    uint64_t Cur = static_cast<uint64_t>(Limb) * Factor + Carry;
    Limb = static_cast<uint32_t>(Cur);
    Carry = Cur >> 32;
  }
  if (Carry)
    Limbs.push_back(static_cast<uint32_t>(Carry));
  return *this;
}

BigUInt &BigUInt::addScalar(uint32_t Value) {
  uint64_t Carry = Value;
  for (uint32_t &Limb : Limbs) {
    if (!Carry)
      break;
    uint64_t Cur = static_cast<uint64_t>(Limb) + Carry;
    Limb = static_cast<uint32_t>(Cur);
    Carry = Cur >> 32;
  }
  if (Carry)
    Limbs.push_back(static_cast<uint32_t>(Carry));
  return *this;
}

uint32_t BigUInt::divModScalar(uint32_t Divisor) {
  assert(Divisor != 0 && "division by zero");
  uint64_t Rem = 0;
  for (size_t I = Limbs.size(); I-- > 0;) {
    uint64_t Cur = (Rem << 32) | Limbs[I];
    Limbs[I] = static_cast<uint32_t>(Cur / Divisor);
    Rem = Cur % Divisor;
  }
  trim();
  return static_cast<uint32_t>(Rem);
}

int BigUInt::compare(const BigUInt &Rhs) const {
  if (Limbs.size() != Rhs.Limbs.size())
    return Limbs.size() < Rhs.Limbs.size() ? -1 : 1;
  for (size_t I = Limbs.size(); I-- > 0;)
    if (Limbs[I] != Rhs.Limbs[I])
      return Limbs[I] < Rhs.Limbs[I] ? -1 : 1;
  return 0;
}

double BigUInt::toDouble() const {
  double Result = 0.0;
  for (size_t I = Limbs.size(); I-- > 0;)
    Result = Result * 4294967296.0 + Limbs[I];
  return Result;
}

std::string BigUInt::toString() const {
  if (isZero())
    return "0";
  BigUInt Tmp = *this;
  std::string Digits;
  while (!Tmp.isZero()) {
    uint32_t Rem = Tmp.divModScalar(10);
    Digits.push_back(static_cast<char>('0' + Rem));
  }
  std::reverse(Digits.begin(), Digits.end());
  return Digits;
}

std::string BigUInt::toScientific(int Digits) const {
  assert(Digits >= 1 && "need at least one significant digit");
  std::string Dec = toString();
  if (Dec == "0")
    return "0";
  int Exp = static_cast<int>(Dec.size()) - 1;
  std::string Mant = Dec.substr(0, static_cast<size_t>(Digits));
  while (Mant.size() < static_cast<size_t>(Digits))
    Mant.push_back('0');
  std::string Result;
  Result.push_back(Mant[0]);
  if (Digits > 1) {
    Result.push_back('.');
    Result.append(Mant.begin() + 1, Mant.end());
  }
  Result += "e";
  Result += std::to_string(Exp);
  return Result;
}

uint64_t BigUInt::toU64() const {
  assert(Limbs.size() <= 2 && "BigUInt does not fit in uint64_t");
  uint64_t Value = 0;
  if (Limbs.size() > 1)
    Value = static_cast<uint64_t>(Limbs[1]) << 32;
  if (!Limbs.empty())
    Value |= Limbs[0];
  return Value;
}

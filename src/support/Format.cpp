//===- support/Format.cpp -------------------------------------*- C++ -*-===//

#include "support/Format.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>

using namespace alic;

std::string alic::formatString(const char *Fmt, ...) {
  std::va_list Args;
  va_start(Args, Fmt);
  std::va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Needed < 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::string Result(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Result.data(), Result.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Result;
}

std::string alic::formatPaperNumber(double Value) {
  if (Value == 0.0)
    return "0";
  double Mag = std::fabs(Value);
  if (Mag >= 1e4 || Mag < 1e-3) {
    int Exp = static_cast<int>(std::floor(std::log10(Mag)));
    double Mant = Value / std::pow(10.0, Exp);
    return formatString("%.2fe%d", Mant, Exp);
  }
  if (Mag >= 10.0)
    return formatString("%.2f", Value);
  return formatString("%.3f", Value);
}

std::string alic::formatSeconds(double Seconds) {
  double Mag = std::fabs(Seconds);
  if (Mag < 1e-6)
    return formatString("%.1f ns", Seconds * 1e9);
  if (Mag < 1e-3)
    return formatString("%.1f us", Seconds * 1e6);
  if (Mag < 1.0)
    return formatString("%.1f ms", Seconds * 1e3);
  if (Mag < 120.0)
    return formatString("%.2f s", Seconds);
  if (Mag < 7200.0)
    return formatString("%.1f min", Seconds / 60.0);
  return formatString("%.1f h", Seconds / 3600.0);
}

std::string alic::joinStrings(const std::vector<std::string> &Parts,
                              const std::string &Sep) {
  std::string Result;
  for (size_t I = 0; I != Parts.size(); ++I) {
    if (I)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

std::string alic::padLeft(const std::string &Text, size_t Width) {
  if (Text.size() >= Width)
    return Text;
  return std::string(Width - Text.size(), ' ') + Text;
}

std::string alic::padRight(const std::string &Text, size_t Width) {
  if (Text.size() >= Width)
    return Text;
  return Text + std::string(Width - Text.size(), ' ');
}

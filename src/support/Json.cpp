//===- support/Json.cpp ---------------------------------------*- C++ -*-===//

#include "support/Json.h"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <cstring>

using namespace alic;

namespace {

/// Recursive-descent parser over one null-terminated document.
class JsonParser {
public:
  explicit JsonParser(const char *Text) : P(Text) {}

  bool parse(JsonValue &Out) {
    if (!parseValue(Out, 0))
      return false;
    skipWs();
    return *P == '\0';
  }

private:
  void skipWs() {
    while (*P == ' ' || *P == '\t' || *P == '\r' || *P == '\n')
      ++P;
  }

  bool literal(const char *Word) {
    size_t Len = std::strlen(Word);
    if (std::strncmp(P, Word, Len) != 0)
      return false;
    P += Len;
    return true;
  }

  bool parseString(std::string &Out) {
    if (*P != '"')
      return false;
    ++P;
    Out.clear();
    while (*P && *P != '"') {
      if (*P == '\\') {
        ++P;
        switch (*P) {
        case '"': Out.push_back('"'); break;
        case '\\': Out.push_back('\\'); break;
        case '/': Out.push_back('/'); break;
        case 'n': Out.push_back('\n'); break;
        case 't': Out.push_back('\t'); break;
        case 'r': Out.push_back('\r'); break;
        case 'b': Out.push_back('\b'); break;
        case 'f': Out.push_back('\f'); break;
        default: return false; // \uXXXX never appears in our documents
        }
        ++P;
      } else {
        Out.push_back(*P++);
      }
    }
    if (*P != '"')
      return false;
    ++P;
    return true;
  }

  /// Deepest container nesting accepted.  Our documents nest 2-3 levels;
  /// the cap keeps a hostile socket line of 4 MiB of '[' from recursing
  /// the stack away.
  static constexpr unsigned MaxDepth = 64;

  bool parseValue(JsonValue &Out, unsigned Depth) {
    skipWs();
    if (Depth >= MaxDepth)
      return false;
    if (*P == '{') {
      ++P;
      Out.K = JsonValue::Kind::Object;
      skipWs();
      if (*P == '}') {
        ++P;
        return true;
      }
      while (true) {
        skipWs();
        std::string Key;
        if (!parseString(Key))
          return false;
        skipWs();
        if (*P != ':')
          return false;
        ++P;
        JsonValue Value;
        if (!parseValue(Value, Depth + 1))
          return false;
        Out.Fields.emplace_back(std::move(Key), std::move(Value));
        skipWs();
        if (*P == ',') {
          ++P;
          continue;
        }
        if (*P == '}') {
          ++P;
          return true;
        }
        return false;
      }
    }
    if (*P == '[') {
      ++P;
      Out.K = JsonValue::Kind::Array;
      skipWs();
      if (*P == ']') {
        ++P;
        return true;
      }
      while (true) {
        JsonValue Item;
        if (!parseValue(Item, Depth + 1))
          return false;
        Out.Items.push_back(std::move(Item));
        skipWs();
        if (*P == ',') {
          ++P;
          continue;
        }
        if (*P == ']') {
          ++P;
          return true;
        }
        return false;
      }
    }
    if (*P == '"') {
      Out.K = JsonValue::Kind::String;
      return parseString(Out.Str);
    }
    if (literal("true")) {
      Out.K = JsonValue::Kind::Bool;
      Out.BoolValue = true;
      return true;
    }
    if (literal("false")) {
      Out.K = JsonValue::Kind::Bool;
      return true;
    }
    if (literal("null"))
      return true;
    // Strict JSON number grammar: -?(0|[1-9][0-9]*)(.[0-9]+)?([eE][+-]?
    // [0-9]+)?.  strtod alone also accepts "nan", "inf"/"infinity", and
    // hex floats, none of which are JSON — scan the token shape first so
    // a hostile line cannot smuggle non-finite costs into the model.
    const char *Q = P;
    if (*Q == '-')
      ++Q;
    if (*Q == '0') {
      ++Q;
    } else if (*Q >= '1' && *Q <= '9') {
      while (*Q >= '0' && *Q <= '9')
        ++Q;
    } else {
      return false;
    }
    if (*Q == '.') {
      ++Q;
      if (*Q < '0' || *Q > '9')
        return false;
      while (*Q >= '0' && *Q <= '9')
        ++Q;
    }
    if (*Q == 'e' || *Q == 'E') {
      ++Q;
      if (*Q == '+' || *Q == '-')
        ++Q;
      if (*Q < '0' || *Q > '9')
        return false;
      while (*Q >= '0' && *Q <= '9')
        ++Q;
    }
    char *End = nullptr;
    double Number = std::strtod(P, &End);
    // End != Q would mean strtod read past the JSON token (e.g. "0x12");
    // overflow ("1e999") yields infinity, equally unrepresentable.
    if (End != Q || !std::isfinite(Number))
      return false;
    Out.K = JsonValue::Kind::Number;
    Out.Number = Number;
    P = Q;
    return true;
  }

  const char *P;
};

} // namespace

bool alic::parseJson(const char *Text, JsonValue &Out) {
  return JsonParser(Text).parse(Out);
}

std::string alic::formatJsonDouble(double Value) {
  // JSON has no non-finite numbers; emit null (as JSON.stringify does)
  // rather than a bare nan/inf token that breaks the whole document.
  if (!std::isfinite(Value))
    return "null";
  char Buffer[64];
  auto [Ptr, Ec] = std::to_chars(Buffer, Buffer + sizeof(Buffer), Value);
  if (Ec != std::errc())
    return "0";
  return std::string(Buffer, Ptr);
}

std::string alic::jsonEscape(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    switch (C) {
    case '"': Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\n': Out += "\\n"; break;
    case '\t': Out += "\\t"; break;
    case '\r': Out += "\\r"; break;
    case '\b': Out += "\\b"; break;
    case '\f': Out += "\\f"; break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out.push_back(C);
      }
    }
  }
  return Out;
}

bool alic::jsonNumberField(const JsonValue &Object, const char *Name,
                           double &Out) {
  const JsonValue *Field = Object.field(Name);
  if (!Field || Field->K != JsonValue::Kind::Number)
    return false;
  Out = Field->Number;
  return true;
}

bool alic::jsonStringField(const JsonValue &Object, const char *Name,
                           std::string &Out) {
  const JsonValue *Field = Object.field(Name);
  if (!Field || Field->K != JsonValue::Kind::String)
    return false;
  Out = Field->Str;
  return true;
}

//===- support/Serialize.cpp ----------------------------------*- C++ -*-===//

#include "support/Serialize.h"

#include "support/FailPoint.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

using namespace alic;

void ByteWriter::writeU16(uint16_t Value) {
  Buffer.push_back(uint8_t(Value & 0xff));
  Buffer.push_back(uint8_t(Value >> 8));
}

void ByteWriter::writeU32(uint32_t Value) {
  for (int Shift = 0; Shift != 32; Shift += 8)
    Buffer.push_back(uint8_t((Value >> Shift) & 0xff));
}

void ByteWriter::writeU64(uint64_t Value) {
  for (int Shift = 0; Shift != 64; Shift += 8)
    Buffer.push_back(uint8_t((Value >> Shift) & 0xff));
}

void ByteWriter::writeDouble(double Value) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(Value), "IEEE-754 double expected");
  std::memcpy(&Bits, &Value, sizeof(Bits));
  writeU64(Bits);
}

void ByteWriter::writeString(const std::string &Value) {
  writeU64(Value.size());
  Buffer.insert(Buffer.end(), Value.begin(), Value.end());
}

void ByteWriter::writeU16s(const std::vector<uint16_t> &Values) {
  writeU64(Values.size());
  for (uint16_t V : Values)
    writeU16(V);
}

void ByteWriter::writeDoubles(const std::vector<double> &Values) {
  writeU64(Values.size());
  for (double V : Values)
    writeDouble(V);
}

namespace {

/// Writes all of [Data, Data+Size) to \p Fd, honoring the
/// `atomicfile.write` failpoint (torn mode lets the first TornBytes
/// through, then fails — what ENOSPC mid-write looks like).  Retries
/// EINTR-interrupted writes.
Status writeAllTo(int Fd, const uint8_t *Data, size_t Size,
                  const std::string &TmpPath) {
  FailOutcome F = ALIC_FAILPOINT("atomicfile.write");
  if (F.Fire) {
    if (F.Mode == FailMode::Torn && F.TornBytes > 0 && Size > 0) {
      size_t Partial = F.TornBytes < Size ? F.TornBytes : Size;
      size_t Done = 0;
      while (Done < Partial) {
        ssize_t N = ::write(Fd, Data + Done, Partial - Done);
        if (N <= 0)
          break;
        Done += size_t(N);
      }
    }
    return Status::failure("write " + TmpPath + " (injected)", F.Errno);
  }
  size_t Done = 0;
  while (Done < Size) {
    ssize_t N = ::write(Fd, Data + Done, Size - Done);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      return Status::failure("write " + TmpPath, errno);
    Done += size_t(N);
  }
  return Status::success();
}

} // namespace

// Doc comment in Serialize.h: the shared directory-fsync discipline.
Status alic::syncParentDir(const std::string &Path) {
  FailOutcome F = ALIC_FAILPOINT("atomicfile.dirsync");
  if (F.Fire)
    return Status::failure("fsync dir of " + Path + " (injected)", F.Errno);
  size_t Slash = Path.find_last_of('/');
  std::string Dir = Slash == std::string::npos ? "." : Path.substr(0, Slash);
  if (Dir.empty())
    Dir = "/";
  int Fd = ::open(Dir.c_str(), O_RDONLY);
  if (Fd < 0)
    return Status::failure("open dir " + Dir, errno);
  int Rc = ::fsync(Fd);
  int SavedErrno = errno;
  ::close(Fd);
  if (Rc != 0 && SavedErrno != EINVAL)
    return Status::failure("fsync dir " + Dir, SavedErrno);
  return Status::success();
}

Status ByteWriter::writeFileDurable(const std::string &Path) const {
  std::string TmpPath = Path + ".tmp";
  int Fd = ::open(TmpPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return Status::failure("open " + TmpPath, errno);

  Status St = writeAllTo(Fd, Buffer.data(), Buffer.size(), TmpPath);

  if (St.ok()) {
    FailOutcome F = ALIC_FAILPOINT("atomicfile.sync");
    if (F.Fire)
      St = Status::failure("fsync " + TmpPath + " (injected)", F.Errno);
    else if (::fsync(Fd) != 0)
      St = Status::failure("fsync " + TmpPath, errno);
  }
  if (::close(Fd) != 0 && St.ok())
    St = Status::failure("close " + TmpPath, errno);
  if (!St.ok()) {
    ::unlink(TmpPath.c_str());
    return St;
  }

  FailOutcome F = ALIC_FAILPOINT("atomicfile.rename");
  if (F.Fire) {
    ::unlink(TmpPath.c_str());
    return Status::failure("rename to " + Path + " (injected)", F.Errno);
  }
  if (std::rename(TmpPath.c_str(), Path.c_str()) != 0) {
    Status Failed = Status::failure("rename to " + Path, errno);
    ::unlink(TmpPath.c_str());
    return Failed;
  }
  return syncParentDir(Path);
}

bool ByteReader::fromFile(const std::string &Path, ByteReader &Out) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return false;
  std::vector<uint8_t> Bytes;
  uint8_t Chunk[1 << 16];
  size_t Got;
  while ((Got = std::fread(Chunk, 1, sizeof(Chunk), File)) > 0)
    Bytes.insert(Bytes.end(), Chunk, Chunk + Got);
  bool Ok = std::ferror(File) == 0;
  std::fclose(File);
  if (!Ok)
    return false;
  Out = ByteReader(std::move(Bytes));
  return true;
}

bool ByteReader::take(size_t Count, const uint8_t *&Out) {
  if (Failed || Count > Buffer.size() - Pos || Pos > Buffer.size()) {
    Failed = true;
    return false;
  }
  Out = Buffer.data() + Pos;
  Pos += Count;
  return true;
}

bool ByteReader::readU8(uint8_t &Value) {
  Value = 0;
  const uint8_t *Bytes;
  if (!take(1, Bytes))
    return false;
  Value = Bytes[0];
  return true;
}

bool ByteReader::readU16(uint16_t &Value) {
  Value = 0;
  const uint8_t *Bytes;
  if (!take(2, Bytes))
    return false;
  Value = uint16_t(Bytes[0] | (uint16_t(Bytes[1]) << 8));
  return true;
}

bool ByteReader::readU32(uint32_t &Value) {
  Value = 0;
  const uint8_t *Bytes;
  if (!take(4, Bytes))
    return false;
  for (int I = 0; I != 4; ++I)
    Value |= uint32_t(Bytes[I]) << (8 * I);
  return true;
}

bool ByteReader::readU64(uint64_t &Value) {
  Value = 0;
  const uint8_t *Bytes;
  if (!take(8, Bytes))
    return false;
  for (int I = 0; I != 8; ++I)
    Value |= uint64_t(Bytes[I]) << (8 * I);
  return true;
}

bool ByteReader::readDouble(double &Value) {
  Value = 0.0;
  uint64_t Bits;
  if (!readU64(Bits))
    return false;
  std::memcpy(&Value, &Bits, sizeof(Value));
  return true;
}

bool ByteReader::readString(std::string &Value) {
  Value.clear();
  uint64_t Count;
  if (!readU64(Count))
    return false;
  const uint8_t *Bytes;
  if (!take(size_t(Count), Bytes))
    return false;
  Value.assign(Bytes, Bytes + Count);
  return true;
}

bool ByteReader::readU16s(std::vector<uint16_t> &Values) {
  Values.clear();
  uint64_t Count;
  if (!readU64(Count) || Count > Buffer.size()) { // each element needs >= 2B
    Failed = true;
    return false;
  }
  Values.resize(size_t(Count));
  for (uint16_t &V : Values)
    if (!readU16(V))
      return false;
  return true;
}

bool ByteReader::readDoubles(std::vector<double> &Values) {
  Values.clear();
  uint64_t Count;
  if (!readU64(Count) || Count > Buffer.size()) { // each element needs 8B
    Failed = true;
    return false;
  }
  Values.resize(size_t(Count));
  for (double &V : Values)
    if (!readDouble(V))
      return false;
  return true;
}

//===- support/Serialize.cpp ----------------------------------*- C++ -*-===//

#include "support/Serialize.h"

#include <cstdio>
#include <cstring>

using namespace alic;

void ByteWriter::writeU16(uint16_t Value) {
  Buffer.push_back(uint8_t(Value & 0xff));
  Buffer.push_back(uint8_t(Value >> 8));
}

void ByteWriter::writeU32(uint32_t Value) {
  for (int Shift = 0; Shift != 32; Shift += 8)
    Buffer.push_back(uint8_t((Value >> Shift) & 0xff));
}

void ByteWriter::writeU64(uint64_t Value) {
  for (int Shift = 0; Shift != 64; Shift += 8)
    Buffer.push_back(uint8_t((Value >> Shift) & 0xff));
}

void ByteWriter::writeDouble(double Value) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(Value), "IEEE-754 double expected");
  std::memcpy(&Bits, &Value, sizeof(Bits));
  writeU64(Bits);
}

void ByteWriter::writeString(const std::string &Value) {
  writeU64(Value.size());
  Buffer.insert(Buffer.end(), Value.begin(), Value.end());
}

void ByteWriter::writeU16s(const std::vector<uint16_t> &Values) {
  writeU64(Values.size());
  for (uint16_t V : Values)
    writeU16(V);
}

void ByteWriter::writeDoubles(const std::vector<double> &Values) {
  writeU64(Values.size());
  for (double V : Values)
    writeDouble(V);
}

bool ByteWriter::writeFileAtomic(const std::string &Path) const {
  std::string TmpPath = Path + ".tmp";
  std::FILE *File = std::fopen(TmpPath.c_str(), "wb");
  if (!File)
    return false;
  size_t Written =
      Buffer.empty() ? 0 : std::fwrite(Buffer.data(), 1, Buffer.size(), File);
  bool Ok = Written == Buffer.size() && std::fflush(File) == 0;
  Ok = std::fclose(File) == 0 && Ok;
  if (!Ok) {
    std::remove(TmpPath.c_str());
    return false;
  }
  if (std::rename(TmpPath.c_str(), Path.c_str()) != 0) {
    std::remove(TmpPath.c_str());
    return false;
  }
  return true;
}

bool ByteReader::fromFile(const std::string &Path, ByteReader &Out) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return false;
  std::vector<uint8_t> Bytes;
  uint8_t Chunk[1 << 16];
  size_t Got;
  while ((Got = std::fread(Chunk, 1, sizeof(Chunk), File)) > 0)
    Bytes.insert(Bytes.end(), Chunk, Chunk + Got);
  bool Ok = std::ferror(File) == 0;
  std::fclose(File);
  if (!Ok)
    return false;
  Out = ByteReader(std::move(Bytes));
  return true;
}

bool ByteReader::take(size_t Count, const uint8_t *&Out) {
  if (Failed || Count > Buffer.size() - Pos || Pos > Buffer.size()) {
    Failed = true;
    return false;
  }
  Out = Buffer.data() + Pos;
  Pos += Count;
  return true;
}

bool ByteReader::readU8(uint8_t &Value) {
  Value = 0;
  const uint8_t *Bytes;
  if (!take(1, Bytes))
    return false;
  Value = Bytes[0];
  return true;
}

bool ByteReader::readU16(uint16_t &Value) {
  Value = 0;
  const uint8_t *Bytes;
  if (!take(2, Bytes))
    return false;
  Value = uint16_t(Bytes[0] | (uint16_t(Bytes[1]) << 8));
  return true;
}

bool ByteReader::readU32(uint32_t &Value) {
  Value = 0;
  const uint8_t *Bytes;
  if (!take(4, Bytes))
    return false;
  for (int I = 0; I != 4; ++I)
    Value |= uint32_t(Bytes[I]) << (8 * I);
  return true;
}

bool ByteReader::readU64(uint64_t &Value) {
  Value = 0;
  const uint8_t *Bytes;
  if (!take(8, Bytes))
    return false;
  for (int I = 0; I != 8; ++I)
    Value |= uint64_t(Bytes[I]) << (8 * I);
  return true;
}

bool ByteReader::readDouble(double &Value) {
  Value = 0.0;
  uint64_t Bits;
  if (!readU64(Bits))
    return false;
  std::memcpy(&Value, &Bits, sizeof(Value));
  return true;
}

bool ByteReader::readString(std::string &Value) {
  Value.clear();
  uint64_t Count;
  if (!readU64(Count))
    return false;
  const uint8_t *Bytes;
  if (!take(size_t(Count), Bytes))
    return false;
  Value.assign(Bytes, Bytes + Count);
  return true;
}

bool ByteReader::readU16s(std::vector<uint16_t> &Values) {
  Values.clear();
  uint64_t Count;
  if (!readU64(Count) || Count > Buffer.size()) { // each element needs >= 2B
    Failed = true;
    return false;
  }
  Values.resize(size_t(Count));
  for (uint16_t &V : Values)
    if (!readU16(V))
      return false;
  return true;
}

bool ByteReader::readDoubles(std::vector<double> &Values) {
  Values.clear();
  uint64_t Count;
  if (!readU64(Count) || Count > Buffer.size()) { // each element needs 8B
    Failed = true;
    return false;
  }
  Values.resize(size_t(Count));
  for (double &V : Values)
    if (!readDouble(V))
      return false;
  return true;
}

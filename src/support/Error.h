//===- support/Error.h - Fatal errors and assertions ----------*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-terminating error reporting.  The library does not use C++
/// exceptions; unrecoverable conditions abort with a message, recoverable
/// conditions are expressed through std::optional or status returns.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_SUPPORT_ERROR_H
#define ALIC_SUPPORT_ERROR_H

#include <cassert>
#include <string>
#include <utility>

namespace alic {

/// Lightweight success/failure result for the degradable I/O paths (ledger
/// appends, snapshot writes, dataset-cache blobs).  The library does not
/// use exceptions, and a storage failure on these paths is an ordinary
/// input — callers retry, quarantine, or mark state dirty instead of
/// aborting.  A Status carries the failing call's errno (0 when not a
/// syscall failure) and a human-readable message.
class [[nodiscard]] Status {
public:
  /// Default-constructed Status is success.
  Status() = default;

  /// The success value.
  static Status success() { return Status(); }

  /// A failure with \p Message and optional \p Errno.
  static Status failure(std::string Message, int Errno = 0) {
    Status S;
    S.Success = false;
    S.Err = Errno;
    S.Msg = std::move(Message);
    return S;
  }

  /// True on success.
  bool ok() const { return Success; }

  /// The captured errno, or 0 (meaningful only when !ok()).
  int errnoValue() const { return Err; }

  /// The failure message; empty on success.
  const std::string &message() const { return Msg; }

private:
  bool Success = true;
  int Err = 0;
  std::string Msg;
};

/// Prints \p Msg (printf-style) to stderr and aborts.  Used for conditions
/// that indicate a programming error or an impossible configuration, never
/// for conditions triggered by ordinary inputs.
[[noreturn]] void fatalError(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Marks a point in the code that is statically known to be unreachable.
[[noreturn]] void unreachableInternal(const char *Msg, const char *File,
                                      unsigned Line);

} // namespace alic

/// Marks unreachable code with a diagnostic message, mirroring
/// llvm_unreachable.
#define alic_unreachable(msg)                                                  \
  ::alic::unreachableInternal(msg, __FILE__, __LINE__)

#endif // ALIC_SUPPORT_ERROR_H

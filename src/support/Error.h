//===- support/Error.h - Fatal errors and assertions ----------*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-terminating error reporting.  The library does not use C++
/// exceptions; unrecoverable conditions abort with a message, recoverable
/// conditions are expressed through std::optional or status returns.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_SUPPORT_ERROR_H
#define ALIC_SUPPORT_ERROR_H

#include <cassert>

namespace alic {

/// Prints \p Msg (printf-style) to stderr and aborts.  Used for conditions
/// that indicate a programming error or an impossible configuration, never
/// for conditions triggered by ordinary inputs.
[[noreturn]] void fatalError(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Marks a point in the code that is statically known to be unreachable.
[[noreturn]] void unreachableInternal(const char *Msg, const char *File,
                                      unsigned Line);

} // namespace alic

/// Marks unreachable code with a diagnostic message, mirroring
/// llvm_unreachable.
#define alic_unreachable(msg)                                                  \
  ::alic::unreachableInternal(msg, __FILE__, __LINE__)

#endif // ALIC_SUPPORT_ERROR_H

//===- support/Scheduler.h - Work-stealing nested scheduler ---*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A work-stealing scheduler that makes *nested* parallelism legal: one
/// worker pool serves every layer of the system, from campaign cells down
/// to DynaTree particle shards, GP/KNN scoring shards, and batched
/// profiler draws.
///
/// The predecessor (a fixed-size ThreadPool with one shared queue and a
/// blocking waitAll) spent its whole parallelism budget at whatever
/// granularity first touched it: a pool task that re-entered the pool
/// deadlocked or serialized, so campaign cells had to keep their learners
/// model-internally sequential, and finished workers idled while the last
/// straggler cells ran alone.  This scheduler removes that restriction:
///
///  * every worker owns a Chase-Lev-style deque; it pushes forked child
///    tasks to the bottom and pops them LIFO, while idle workers steal
///    FIFO from the top — classic work-stealing locality;
///  * TaskGroup is the fork-join primitive; its wait() *helps* (executes
///    pending tasks — its own children first, then anything stealable)
///    instead of blocking, so a task may fork-and-wait on the same
///    scheduler to any depth without consuming a worker;
///  * parallelFor / parallelForShards are TaskGroups under the hood and
///    may be called from anywhere: an external thread, a worker, or a
///    task already running inside either of the two.
///
/// Determinism contract (unchanged from the ThreadPool it replaces, and
/// regression-tested): shard grids depend only on (N, ShardSize), shards
/// write disjoint outputs, and stochastic shard work draws from per-shard
/// counter-derived seeds.  Results are therefore bit-identical at any
/// worker count, under any steal interleaving, and whether the scheduler
/// exists at all (shardedFor(nullptr, ...) runs inline).  Steal order is
/// observable only through stats().
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_SUPPORT_SCHEDULER_H
#define ALIC_SUPPORT_SCHEDULER_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

namespace alic {

class Scheduler;

/// Fork-join task group: run() forks children onto the scheduler, wait()
/// helps execute tasks until every child has finished.  Groups nest
/// freely (a child may create its own group on the same scheduler) and
/// may be created on worker and non-worker threads alike.  The
/// destructor waits, so a group can never outlive its children.
class TaskGroup {
public:
  explicit TaskGroup(Scheduler &S) : Sched(S) {}
  ~TaskGroup() { wait(); }

  TaskGroup(const TaskGroup &) = delete;
  TaskGroup &operator=(const TaskGroup &) = delete;

  /// Forks \p Fn as a child task.  When the caller is a worker (or a task
  /// running on one), the child lands on that worker's own deque; other
  /// threads submit through the external queue.
  void run(std::function<void()> Fn);

  /// Returns once every forked child has finished.  Never blocks a
  /// worker: the calling thread executes pending tasks (its own deque
  /// first, then this group's externally queued children, then steals)
  /// while it waits, and parks only when there is nothing runnable.
  /// Helping is scoped so a fine-grained join never starts an unrelated
  /// *top-level* task (e.g. a whole campaign cell) — stolen shards are
  /// bounded work, external tasks are not.
  void wait();

private:
  friend class Scheduler;
  Scheduler &Sched;
  std::atomic<size_t> Pending{0};
};

/// Aggregate scheduler counters (monotonic over the scheduler lifetime).
/// Purely observational: results never depend on them.
struct SchedulerStats {
  uint64_t Executed = 0; ///< tasks run to completion
  uint64_t Steals = 0;   ///< tasks taken from another worker's deque
};

/// The process-wide worker pool.  API-compatible superset of the old
/// ThreadPool (submit/waitAll/parallelFor/parallelForShards), plus legal
/// nesting from inside tasks.
class Scheduler {
public:
  /// Construction knobs beyond the worker count.  StealSeed and
  /// JitterSeed exist for the determinism stress tests: they force
  /// different victim-selection orders and pseudo-random yields, and the
  /// contract is that *no* result may depend on either.
  struct Options {
    /// Worker threads (0 means hardware concurrency, min 1).
    unsigned Threads = 0;
    /// Seeds each worker's victim-selection stream.
    uint64_t StealSeed = 0x57ea1ull;
    /// Non-zero: workers yield pseudo-randomly around task execution to
    /// shake out interleaving-dependent results (stress tests only).
    uint64_t JitterSeed = 0;
  };

  /// Starts \p NumThreads workers (0 means hardware concurrency, min 1).
  explicit Scheduler(unsigned NumThreads = 0);
  explicit Scheduler(const Options &Opts);

  /// Drains outstanding work and joins the workers.
  ~Scheduler();

  Scheduler(const Scheduler &) = delete;
  Scheduler &operator=(const Scheduler &) = delete;

  /// Enqueues \p Task for execution (detached; waitAll() joins it).
  void submit(std::function<void()> Task);

  /// Returns once every submitted task (and, transitively, everything
  /// those tasks waited on) has finished.  Helps while waiting.
  void waitAll();

  /// Number of worker threads.
  unsigned numThreads() const;

  /// Runs \p Fn(I) for I in [0, N), distributing across the pool, and
  /// waits.  Legal from inside a task (the old pool deadlocked here).
  void parallelFor(size_t N, const std::function<void(size_t)> &Fn);

  /// Runs \p Fn(Shard, Begin, End) over ceil(N / ShardSize) contiguous
  /// shards of [0, N) and waits.  Shard boundaries depend only on \p N
  /// and \p ShardSize — never on the worker count or steal order — so
  /// deterministic work (and per-shard pre-derived RNG seeds keyed on the
  /// shard index) produces bit-identical results at any parallelism.
  void parallelForShards(size_t N, size_t ShardSize,
                         const std::function<void(size_t, size_t, size_t)> &Fn);

  /// Lifetime counters (sampled racily; exact once the pool is idle).
  SchedulerStats stats() const;

private:
  friend class TaskGroup;
  struct Impl;

  void fork(TaskGroup *Group, std::function<void()> Fn);
  void waitGroup(TaskGroup &Group);

  std::unique_ptr<Impl> I;
};

/// Runs \p Fn(Shard, Begin, End) over the fixed shard grid of [0, N) — on
/// \p Workers when non-null, inline (in shard order) when null.  The grid
/// is identical either way, so code written against this helper is
/// bit-reproducible between its sequential and parallel executions.
void shardedFor(Scheduler *Workers, size_t N, size_t ShardSize,
                const std::function<void(size_t, size_t, size_t)> &Fn);

} // namespace alic

#endif // ALIC_SUPPORT_SCHEDULER_H

//===- support/ThreadPool.cpp ---------------------------------*- C++ -*-===//

#include "support/ThreadPool.h"

#include <algorithm>

using namespace alic;

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = std::max(1u, std::thread::hardware_concurrency());
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  TaskAvailable.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Tasks.push(std::move(Task));
    ++InFlight;
  }
  TaskAvailable.notify_one();
}

void ThreadPool::waitAll() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllDone.wait(Lock, [this] { return InFlight == 0; });
}

void ThreadPool::parallelFor(size_t N, const std::function<void(size_t)> &Fn) {
  for (size_t I = 0; I != N; ++I)
    submit([&Fn, I] { Fn(I); });
  waitAll();
}

void ThreadPool::parallelForShards(
    size_t N, size_t ShardSize,
    const std::function<void(size_t, size_t, size_t)> &Fn) {
  if (ShardSize == 0)
    ShardSize = 1;
  size_t NumShards = (N + ShardSize - 1) / ShardSize;
  for (size_t Shard = 0; Shard != NumShards; ++Shard) {
    size_t Begin = Shard * ShardSize;
    size_t End = std::min(N, Begin + ShardSize);
    submit([&Fn, Shard, Begin, End] { Fn(Shard, Begin, End); });
  }
  waitAll();
}

void alic::shardedFor(ThreadPool *Pool, size_t N, size_t ShardSize,
                      const std::function<void(size_t, size_t, size_t)> &Fn) {
  if (Pool) {
    Pool->parallelForShards(N, ShardSize, Fn);
    return;
  }
  if (ShardSize == 0)
    ShardSize = 1;
  for (size_t Begin = 0, Shard = 0; Begin < N; Begin += ShardSize, ++Shard)
    Fn(Shard, Begin, std::min(N, Begin + ShardSize));
}

void ThreadPool::workerLoop() {
  while (true) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      TaskAvailable.wait(Lock,
                         [this] { return ShuttingDown || !Tasks.empty(); });
      if (Tasks.empty()) {
        if (ShuttingDown)
          return;
        continue;
      }
      Task = std::move(Tasks.front());
      Tasks.pop();
    }
    Task();
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      --InFlight;
      if (InFlight == 0)
        AllDone.notify_all();
    }
  }
}

//===- support/FlatRows.h - Contiguous row-major feature store -*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SoA feature-row layout shared by every surrogate model.  A
/// std::vector<std::vector<double>> training store costs one heap
/// allocation and one pointer chase per row; the hot loops of the dynamic
/// tree (findLeaf walks per particle per candidate) and the GP (kernel rows
/// over the whole training set) touch every row thousands of times per
/// learner iteration.  FlatRows keeps all rows in one contiguous row-major
/// buffer so those walks are cache-linear, and RowRef lets call sites pass
/// either a row of that buffer or a plain std::vector<double> without
/// copying.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_SUPPORT_FLATROWS_H
#define ALIC_SUPPORT_FLATROWS_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <type_traits>
#include <vector>

namespace alic {

/// Non-owning view of one feature row (a span of doubles).  Implicitly
/// constructible from std::vector<double> and from braced literals like
/// {0.5, 1.0}, whose backing storage lives until the end of the full
/// expression — long enough for any model call.
class RowRef {
public:
  RowRef() = default;
  RowRef(const double *Data, size_t Size) : Ptr(Data), Num(Size) {}
  RowRef(const std::vector<double> &Values)
      : Ptr(Values.data()), Num(Values.size()) {}
  // The backing array of a braced literal lives until the end of the full
  // expression — exactly the duration of the model call it is passed to.
  // GCC's lifetime warning assumes the view may outlive the call.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winit-list-lifetime"
#endif
  RowRef(std::initializer_list<double> Values)
      : Ptr(Values.begin()), Num(Values.size()) {}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

  const double *data() const { return Ptr; }
  size_t size() const { return Num; }
  bool empty() const { return Num == 0; }
  double operator[](size_t I) const {
    assert(I < Num && "row index out of range");
    return Ptr[I];
  }
  const double *begin() const { return Ptr; }
  const double *end() const { return Ptr + Num; }

  std::vector<double> toVector() const { return {Ptr, Ptr + Num}; }

private:
  const double *Ptr = nullptr;
  size_t Num = 0;
};

/// Owning, contiguous row-major store of equally sized feature rows.
class FlatRows {
public:
  FlatRows() = default;

  /// Empty store whose rows will have \p Dim entries.
  explicit FlatRows(size_t Dim) : Dim(Dim) {}

  /// Copies \p Rows (all must be equally sized).
  FlatRows(const std::vector<std::vector<double>> &Rows) {
    reserveRows(Rows.size());
    for (const std::vector<double> &Row : Rows)
      push(Row);
  }

  /// Copies braced row literals: FlatRows R = {{0.0, 1.0}, {2.0, 3.0}}.
  FlatRows(std::initializer_list<std::initializer_list<double>> Rows) {
    for (const auto &Row : Rows)
      push(RowRef(Row.begin(), Row.size()));
  }

  /// Copies the rows of an iterator range (e.g. a sub-range of a
  /// std::vector<std::vector<double>>).
  template <typename It,
            typename = std::enable_if_t<std::is_convertible_v<
                decltype(*std::declval<It>()), RowRef>>>
  FlatRows(It First, It Last) {
    for (; First != Last; ++First)
      push(*First);
  }

  size_t size() const { return NumRows; }
  size_t dim() const { return Dim; }
  bool empty() const { return NumRows == 0; }

  /// Pointer to row \p I's first entry.
  const double *row(size_t I) const {
    assert(I < NumRows && "row index out of range");
    return Data.data() + I * Dim;
  }
  RowRef operator[](size_t I) const { return {row(I), Dim}; }

  /// Appends one row — safe even when \p Row aliases this store's own
  /// buffer (e.g. rows.push(rows[0])).  The first push fixes the
  /// dimensionality.
  void push(RowRef Row) {
    if (NumRows == 0 && Dim == 0) {
      Dim = Row.size();
      if (RowHint != 0 && Dim != 0)
        Data.reserve(RowHint * Dim);
    }
    assert(Row.size() == Dim && "row dimensionality mismatch");
    // Grow-then-copy instead of insert(): GCC 12's -Wstringop-overflow
    // misjudges the insert reallocation path when inlined from braced
    // row literals.
    size_t Old = Data.size();
    if (Data.capacity() >= Old + Dim) {
      // No reallocation: an aliasing Row (which points below Old) stays
      // valid while the new tail is written.
      Data.resize(Old + Dim);
      for (size_t I = 0; I != Dim; ++I)
        Data[Old + I] = Row[I];
    } else {
      // Growth path: reallocation would dangle an aliasing Row, so copy
      // it out first (rare, amortized by geometric growth).
      std::vector<double> Copy(Row.begin(), Row.end());
      Data.resize(Old + Dim);
      for (size_t I = 0; I != Dim; ++I)
        Data[Old + I] = Copy[I];
    }
    ++NumRows;
  }

  /// Removes the last row.
  void popRow() {
    assert(NumRows > 0 && "no row to pop");
    Data.resize(Data.size() - Dim);
    --NumRows;
  }

  void clear() {
    Data.clear();
    NumRows = 0;
  }

  /// Pre-allocates for \p Rows rows.  When the dimensionality is not yet
  /// known the hint is remembered and applied by the first push.
  void reserveRows(size_t Rows) {
    RowHint = Rows;
    if (Dim != 0)
      Data.reserve(Rows * Dim);
  }

  /// Packs column \p Column of the rows selected by \p RowIdx into
  /// \p Out: Out[I] = row(RowIdx[I])[Column].  Hot-loop helper for scans
  /// that revisit one feature of a gathered row set many times (the
  /// dynamic tree's grow-proposal cut scoring): gathering once turns
  /// every later pass into a unit-stride read of \p Out instead of a
  /// Dim-strided gather through this buffer.
  void gatherColumn(size_t Column, const uint32_t *RowIdx, size_t Num,
                    double *Out) const {
    assert(Column < Dim && "column index out of range");
    const double *Base = Data.data() + Column;
    for (size_t I = 0; I != Num; ++I) {
      assert(RowIdx[I] < NumRows && "row index out of range");
      Out[I] = Base[size_t(RowIdx[I]) * Dim];
    }
  }

  /// The raw row-major buffer (size() * dim() entries).
  const std::vector<double> &raw() const { return Data; }

private:
  size_t Dim = 0;
  size_t NumRows = 0;
  size_t RowHint = 0; ///< deferred reserveRows() hint (rows)
  std::vector<double> Data;
};

} // namespace alic

#endif // ALIC_SUPPORT_FLATROWS_H

//===- support/Serialize.h - Binary blob reader/writer --------*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny explicit-layout binary serializer used for on-disk caches (the
/// campaign orchestrator memoizes buildDataset blobs with it).  Every
/// scalar is written little-endian byte by byte and doubles travel as raw
/// IEEE-754 bits, so a round trip reproduces values bit-for-bit on any
/// host this project targets.  Readers are fully bounds-checked: a
/// truncated or corrupted blob flips a sticky failure flag instead of
/// reading out of bounds, and callers discard the cache entry.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_SUPPORT_SERIALIZE_H
#define ALIC_SUPPORT_SERIALIZE_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace alic {

/// fsync of the directory containing \p Path, making a completed create,
/// rename, or unlink inside it durable — the same discipline
/// ByteWriter::writeFileDurable applies after its rename.  Exposed so
/// other durable-file protocols (the campaign ledger's first create, the
/// lease directory's claim/steal transitions) reuse it instead of
/// re-deriving the fsync rules.  Best-effort on filesystems that reject
/// directory fsync (errno EINVAL is ignored, the POSIX escape hatch).
/// Fault-injection site: atomicfile.dirsync.
Status syncParentDir(const std::string &Path);

/// Appends scalars and vectors to a growing byte buffer.
class ByteWriter {
public:
  void writeU8(uint8_t Value) { Buffer.push_back(Value); }
  void writeU16(uint16_t Value);
  void writeU32(uint32_t Value);
  void writeU64(uint64_t Value);
  /// Raw IEEE-754 bits; round-trips exactly.
  void writeDouble(double Value);
  /// u64 length followed by the bytes.
  void writeString(const std::string &Value);
  /// Raw bytes, verbatim, no length prefix — for text artifacts (e.g.
  /// the merged campaign ledger) that want writeFileDurable's atomic
  /// durable publish without the binary framing.
  void writeRaw(const std::string &Value) {
    Buffer.insert(Buffer.end(), Value.begin(), Value.end());
  }
  void writeU16s(const std::vector<uint16_t> &Values);
  void writeDoubles(const std::vector<double> &Values);

  const std::vector<uint8_t> &bytes() const { return Buffer; }
  size_t size() const { return Buffer.size(); }

  /// Writes the buffer to \p Path atomically *and durably*: the bytes go
  /// to a temporary file, the temporary is fsync'd **before** the rename
  /// (so the rename can never publish a name whose data is still only in
  /// the page cache — a crash after rename-without-sync leaves a
  /// truncated-but-named blob), and the containing directory is fsync'd
  /// after (so the rename itself survives a crash).  Concurrent readers
  /// never observe a half-written blob.  On any failure the temporary is
  /// removed and \p Path keeps its previous content (or absence); the
  /// returned Status carries the failing step and errno.
  ///
  /// Fault-injection sites: atomicfile.write (torn/error on the data
  /// write), atomicfile.sync (temp-file fsync), atomicfile.rename, and
  /// atomicfile.dirsync — all four accept mode:crash for the
  /// kill-at-every-sync-point chaos tests.
  Status writeFileDurable(const std::string &Path) const;

  /// Compatibility wrapper around writeFileDurable: true on success.
  bool writeFileAtomic(const std::string &Path) const {
    return writeFileDurable(Path).ok();
  }

private:
  std::vector<uint8_t> Buffer;
};

/// Consumes a byte buffer written by ByteWriter.  All reads are
/// bounds-checked; the first out-of-range read sets the sticky failure
/// flag, zeroes the output, and every later read fails too, so callers
/// can validate once at the end with ok().
class ByteReader {
public:
  explicit ByteReader(std::vector<uint8_t> Bytes) : Buffer(std::move(Bytes)) {}

  /// Loads \p Path into a reader; false when the file cannot be read.
  static bool fromFile(const std::string &Path, ByteReader &Out);

  bool readU8(uint8_t &Value);
  bool readU16(uint16_t &Value);
  bool readU32(uint32_t &Value);
  bool readU64(uint64_t &Value);
  bool readDouble(double &Value);
  bool readString(std::string &Value);
  bool readU16s(std::vector<uint16_t> &Values);
  bool readDoubles(std::vector<double> &Values);

  /// True while every read so far stayed in bounds.
  bool ok() const { return !Failed; }

  /// True when the cursor consumed the whole buffer.
  bool atEnd() const { return Pos == Buffer.size(); }

  /// Bytes left to read.  Callers deserializing containers-of-containers
  /// must bound their outer element counts against this before resizing,
  /// so a corrupt length prefix cannot trigger a giant allocation.
  size_t remaining() const { return Buffer.size() - Pos; }

private:
  bool take(size_t Count, const uint8_t *&Out);

  std::vector<uint8_t> Buffer;
  size_t Pos = 0;
  bool Failed = false;
};

} // namespace alic

#endif // ALIC_SUPPORT_SERIALIZE_H

//===- support/Scheduler.cpp ----------------------------------*- C++ -*-===//
//
// Implementation notes.
//
// Deques: each worker owns a Chase-Lev deque of Task pointers (dynamic
// circular array).  The owner pushes and pops at the bottom; thieves
// compete for the top slot with a CAS.  This is the fence-free variant
// of Le/Pop/Cohen/Nardelli, "Correct and Efficient Work-Stealing for
// Weak Memory Models" (PPoPP'13), with the standalone fences replaced by
// seq_cst operations on Top/Bottom — marginally slower, but every
// synchronizing access is an atomic operation ThreadSanitizer models
// (TSan ignores standalone fences and would report false races).
// Retired rings are kept until the deque dies, so a thief holding a
// stale ring pointer can always complete its (doomed) read.
//
// Sleep/wake: an eventcount.  Every action that makes work runnable or
// completes a join target bumps Epoch and wakes sleepers; a thread parks
// only after re-scanning for work against a pre-sleep Epoch snapshot, so
// wakeups cannot be lost.
//
// Helping: TaskGroup::wait() and waitAll() execute pending tasks while
// they wait — own deque first (the group's own children, LIFO), then
// the external queue, then steals.  Group waits scope their external-
// queue pops to their own children: stolen deque tasks are forked
// shards (bounded work), but external tasks are top-level units (whole
// campaign cells), and starting one inside a microsecond-scale shard
// join would stack cell frames to arbitrary depth and invert latency.
// waitAll — the top-level join — helps with everything.  Progress
// never deadlocks: a worker parks only with an empty own deque, so
// forked children are always executed eventually by their forker if
// nobody steals them first, and every completion bumps the eventcount.
//
//===----------------------------------------------------------------------===//

#include "support/Scheduler.h"

#include "support/Rng.h"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

using namespace alic;

namespace {

struct Task {
  std::function<void()> Fn;
  TaskGroup *Group; ///< nullptr: detached submit() task (root-counted)
};

/// Chase-Lev work-stealing deque of Task pointers.
class ChaseLevDeque {
public:
  ChaseLevDeque() { Buffer.store(newRing(64), std::memory_order_relaxed); }

  ~ChaseLevDeque() {
    for (Ring *R : Retired)
      deleteRing(R);
    deleteRing(Buffer.load(std::memory_order_relaxed));
  }

  /// Owner only.
  void push(Task *T) {
    int64_t B = Bottom.load(std::memory_order_relaxed);
    int64_t Tp = Top.load(std::memory_order_acquire);
    Ring *R = Buffer.load(std::memory_order_relaxed);
    if (B - Tp > int64_t(R->Capacity) - 1) {
      // Full: double the ring, copying the live [Tp, B) window by
      // absolute index.  The old ring stays allocated (thieves may still
      // be reading it); its live slots are never overwritten again.
      Ring *Grown = newRing(R->Capacity * 2);
      for (int64_t It = Tp; It != B; ++It)
        Grown->slot(It).store(R->slot(It).load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
      Retired.push_back(R);
      Buffer.store(Grown, std::memory_order_release);
      R = Grown;
    }
    R->slot(B).store(T, std::memory_order_relaxed);
    // The release publishes the slot write to any thief that acquires
    // the new Bottom.
    Bottom.store(B + 1, std::memory_order_seq_cst);
  }

  /// Owner only.
  Task *pop() {
    int64_t B = Bottom.load(std::memory_order_relaxed) - 1;
    Ring *R = Buffer.load(std::memory_order_relaxed);
    Bottom.store(B, std::memory_order_seq_cst);
    int64_t Tp = Top.load(std::memory_order_seq_cst);
    if (Tp > B) {
      // Empty: restore Bottom.
      Bottom.store(B + 1, std::memory_order_relaxed);
      return nullptr;
    }
    Task *Out = R->slot(B).load(std::memory_order_relaxed);
    if (Tp != B)
      return Out; // more than one element left: no thief can race us here
    // Exactly one element: race a potential thief for it via Top.
    if (!Top.compare_exchange_strong(Tp, Tp + 1, std::memory_order_seq_cst,
                                     std::memory_order_relaxed))
      Out = nullptr; // a thief won
    Bottom.store(B + 1, std::memory_order_relaxed);
    return Out;
  }

  /// Any thread.
  Task *steal() {
    int64_t Tp = Top.load(std::memory_order_seq_cst);
    int64_t B = Bottom.load(std::memory_order_seq_cst);
    if (Tp >= B)
      return nullptr;
    Ring *R = Buffer.load(std::memory_order_acquire);
    Task *Out = R->slot(Tp).load(std::memory_order_relaxed);
    if (!Top.compare_exchange_strong(Tp, Tp + 1, std::memory_order_seq_cst,
                                     std::memory_order_relaxed))
      return nullptr; // lost the race; caller retries elsewhere
    return Out;
  }

private:
  struct Ring {
    size_t Capacity;
    size_t Mask;
    std::atomic<Task *> *Slots;
    std::atomic<Task *> &slot(int64_t I) { return Slots[size_t(I) & Mask]; }
  };

  static Ring *newRing(size_t Capacity) {
    // Value-initialize the slots: a thief that lost a growth race may
    // load a slot the owner never wrote before its (doomed) CAS, and
    // that load must not read an indeterminate value.
    Ring *R = new Ring{Capacity, Capacity - 1,
                       new std::atomic<Task *>[Capacity]()};
    return R;
  }

  static void deleteRing(Ring *R) {
    delete[] R->Slots;
    delete R;
  }

  std::atomic<int64_t> Top{0};
  std::atomic<int64_t> Bottom{0};
  std::atomic<Ring *> Buffer{nullptr};
  std::vector<Ring *> Retired; ///< owner-only; freed with the deque
};

} // namespace

//===----------------------------------------------------------------------===//
// Scheduler implementation
//===----------------------------------------------------------------------===//

namespace alic {

struct Scheduler::Impl {
  struct alignas(64) Worker {
    ChaseLevDeque Deque;
    std::atomic<uint64_t> Steals{0};
    std::atomic<uint64_t> Executed{0};
    std::thread Thread;
  };

  explicit Impl(const Options &Opts) : Opts(Opts) {}

  Options Opts;
  std::vector<std::unique_ptr<Worker>> Workers;

  /// Tasks from non-worker threads (submit(), forks off external threads).
  std::mutex ExternalMutex;
  std::deque<Task *> External;

  /// Detached submit() tasks still pending (waitAll's join counter).
  std::atomic<size_t> RootPending{0};
  /// Steals performed by helping non-worker threads.
  std::atomic<uint64_t> ExternalSteals{0};
  std::atomic<uint64_t> ExternalExecuted{0};

  // Eventcount.
  std::mutex SleepMutex;
  std::condition_variable SleepCv;
  std::atomic<uint64_t> Epoch{0};
  std::atomic<unsigned> Sleepers{0};
  std::atomic<bool> ShuttingDown{false};

  /// Per-thread identity: which worker of which scheduler (if any) the
  /// current thread is.  Helpers on external threads have none.
  struct ThreadContext {
    Impl *Owner = nullptr;
    Worker *Self = nullptr;
    Rng VictimRng{0};
    Rng JitterRng{0};
    bool Jitter = false;
  };
  static thread_local ThreadContext *Current;

  ThreadContext *contextHere() {
    return Current && Current->Owner == this ? Current : nullptr;
  }

  /// Wakes anything parked: work became runnable or a join target
  /// completed.
  void notify() {
    Epoch.fetch_add(1);
    if (Sleepers.load() != 0) {
      std::lock_guard<std::mutex> Lock(SleepMutex);
      SleepCv.notify_all();
    }
  }

  void enqueue(Task *T) {
    if (ThreadContext *Ctx = contextHere())
      Ctx->Self->Deque.push(T);
    else {
      std::lock_guard<std::mutex> Lock(ExternalMutex);
      External.push_back(T);
    }
    notify();
  }

  /// Pops the oldest external task — any task when \p Restrict is null
  /// (worker loops, waitAll), else only tasks of that group.  The
  /// restriction bounds helping: a fine-grained shard join must never
  /// pull an unrelated *top-level* task (a whole campaign cell) off the
  /// external queue, which would stack cell frames to arbitrary depth
  /// and stall a microsecond join behind seconds of stolen work.
  Task *popExternal(TaskGroup *Restrict) {
    std::lock_guard<std::mutex> Lock(ExternalMutex);
    if (!Restrict) {
      if (External.empty())
        return nullptr;
      Task *T = External.front();
      External.pop_front();
      return T;
    }
    for (auto It = External.begin(); It != External.end(); ++It)
      if ((*It)->Group == Restrict) {
        Task *T = *It;
        External.erase(It);
        return T;
      }
    return nullptr;
  }

  /// One full steal sweep starting at a pseudo-random victim.  \p Thief
  /// is null for external helpers.
  Task *trySteal(ThreadContext *Ctx) {
    size_t N = Workers.size();
    if (N == 0)
      return nullptr;
    size_t Start =
        Ctx ? size_t(Ctx->VictimRng.nextBounded(N)) : 0;
    for (size_t I = 0; I != N; ++I) {
      Worker *Victim = Workers[(Start + I) % N].get();
      if (Ctx && Victim == Ctx->Self)
        continue;
      if (Task *T = Victim->Deque.steal()) {
        if (Ctx)
          Ctx->Self->Steals.fetch_add(1, std::memory_order_relaxed);
        else
          ExternalSteals.fetch_add(1, std::memory_order_relaxed);
        return T;
      }
    }
    return nullptr;
  }

  /// Own deque, then the external queue (scoped to \p Restrict when
  /// set), then one steal sweep.  Steals are never restricted: deques
  /// hold forked *shards*, whose execution time is bounded by their
  /// forker — unlike external top-level tasks.
  Task *findTask(ThreadContext *Ctx, TaskGroup *Restrict) {
    if (Ctx)
      if (Task *T = Ctx->Self->Deque.pop())
        return T;
    if (Task *T = popExternal(Restrict))
      return T;
    return trySteal(Ctx);
  }

  void execute(Task *T, ThreadContext *Ctx) {
    if (Ctx && Ctx->Jitter && Ctx->JitterRng.nextBernoulli(0.25))
      std::this_thread::yield();
    T->Fn();
    TaskGroup *Group = T->Group;
    delete T;
    if (Ctx)
      Ctx->Self->Executed.fetch_add(1, std::memory_order_relaxed);
    else
      ExternalExecuted.fetch_add(1, std::memory_order_relaxed);
    if (Group) {
      if (Group->Pending.fetch_sub(1) == 1)
        notify(); // the group just completed: wake its waiter
    } else {
      if (RootPending.fetch_sub(1) == 1)
        notify(); // last detached task: wake waitAll
    }
  }

  /// Helping join loop shared by TaskGroup::wait and waitAll: execute
  /// tasks until \p Done reports completion, parking via the eventcount
  /// when nothing is runnable.  \p Restrict scopes external-queue pops
  /// (group waits help only their own externally queued children plus
  /// anything stealable; waitAll helps with everything).
  template <typename DonePredicate>
  void helpUntil(DonePredicate Done, TaskGroup *Restrict) {
    ThreadContext *Ctx = contextHere();
    while (!Done()) {
      if (Task *T = findTask(Ctx, Restrict)) {
        execute(T, Ctx);
        continue;
      }
      uint64_t Snapshot = Epoch.load();
      if (Done())
        return;
      // Re-scan between the snapshot and the park: any work (or the
      // completion) arriving after the snapshot bumps Epoch and defeats
      // the wait below.
      if (Task *T = findTask(Ctx, Restrict)) {
        execute(T, Ctx);
        continue;
      }
      Sleepers.fetch_add(1);
      {
        std::unique_lock<std::mutex> Lock(SleepMutex);
        SleepCv.wait(Lock, [&] { return Epoch.load() != Snapshot; });
      }
      Sleepers.fetch_sub(1);
    }
  }

  void workerLoop(Worker *Self, unsigned Index) {
    ThreadContext Ctx;
    Ctx.Owner = this;
    Ctx.Self = Self;
    Ctx.VictimRng = Rng(hashCombine({Opts.StealSeed, uint64_t(Index)}));
    if (Opts.JitterSeed) {
      Ctx.Jitter = true;
      Ctx.JitterRng = Rng(hashCombine({Opts.JitterSeed, uint64_t(Index)}));
    }
    Current = &Ctx;
    while (true) {
      if (Task *T = findTask(&Ctx, nullptr)) {
        execute(T, &Ctx);
        continue;
      }
      uint64_t Snapshot = Epoch.load();
      if (ShuttingDown.load())
        break;
      if (Task *T = findTask(&Ctx, nullptr)) {
        execute(T, &Ctx);
        continue;
      }
      Sleepers.fetch_add(1);
      {
        std::unique_lock<std::mutex> Lock(SleepMutex);
        SleepCv.wait(Lock, [&] {
          return Epoch.load() != Snapshot || ShuttingDown.load();
        });
      }
      Sleepers.fetch_sub(1);
    }
    Current = nullptr;
  }
};

thread_local Scheduler::Impl::ThreadContext *Scheduler::Impl::Current =
    nullptr;

} // namespace alic

Scheduler::Scheduler(unsigned NumThreads)
    : Scheduler([NumThreads] {
        Options Opts;
        Opts.Threads = NumThreads;
        return Opts;
      }()) {}

Scheduler::Scheduler(const Options &Opts) : I(new Impl(Opts)) {
  unsigned N = Opts.Threads;
  if (N == 0)
    N = std::max(1u, std::thread::hardware_concurrency());
  I->Workers.reserve(N);
  for (unsigned W = 0; W != N; ++W)
    I->Workers.push_back(std::make_unique<Impl::Worker>());
  // Start the threads only once the Workers vector is complete: steal
  // sweeps iterate over it without locks.
  for (unsigned W = 0; W != N; ++W) {
    Impl::Worker *Self = I->Workers[W].get();
    Self->Thread = std::thread([this, Self, W] { I->workerLoop(Self, W); });
  }
}

Scheduler::~Scheduler() {
  waitAll();
  I->ShuttingDown.store(true);
  I->Epoch.fetch_add(1);
  {
    std::lock_guard<std::mutex> Lock(I->SleepMutex);
    I->SleepCv.notify_all();
  }
  for (auto &Worker : I->Workers)
    Worker->Thread.join();
}

unsigned Scheduler::numThreads() const {
  return unsigned(I->Workers.size());
}

void Scheduler::submit(std::function<void()> Fn) {
  I->RootPending.fetch_add(1);
  I->enqueue(new Task{std::move(Fn), nullptr});
}

void Scheduler::waitAll() {
  I->helpUntil([this] { return I->RootPending.load() == 0; },
               /*Restrict=*/nullptr);
}

void Scheduler::fork(TaskGroup *Group, std::function<void()> Fn) {
  Group->Pending.fetch_add(1);
  I->enqueue(new Task{std::move(Fn), Group});
}

void Scheduler::waitGroup(TaskGroup &Group) {
  I->helpUntil([&Group] { return Group.Pending.load() == 0; }, &Group);
}

void Scheduler::parallelFor(size_t N,
                            const std::function<void(size_t)> &Fn) {
  if (N == 0)
    return;
  if (N == 1) {
    // Nothing to distribute: run on the calling thread.  Equivalent to
    // forking and immediately helping, minus the task round trip.
    Fn(0);
    return;
  }
  TaskGroup Group(*this);
  for (size_t Index = 0; Index != N; ++Index)
    Group.run([&Fn, Index] { Fn(Index); });
  Group.wait();
}

void Scheduler::parallelForShards(
    size_t N, size_t ShardSize,
    const std::function<void(size_t, size_t, size_t)> &Fn) {
  if (ShardSize == 0)
    ShardSize = 1;
  size_t NumShards = (N + ShardSize - 1) / ShardSize;
  if (NumShards == 1) {
    // One-shard grids are common at smoke scale (60 particles fit one
    // particle shard): run inline, skipping the fork-and-help round
    // trip.  The grid — and therefore every result — is unchanged.
    if (N != 0)
      Fn(0, 0, N);
    return;
  }
  TaskGroup Group(*this);
  for (size_t Shard = 0; Shard != NumShards; ++Shard) {
    size_t Begin = Shard * ShardSize;
    size_t End = std::min(N, Begin + ShardSize);
    Group.run([&Fn, Shard, Begin, End] { Fn(Shard, Begin, End); });
  }
  Group.wait();
}

SchedulerStats Scheduler::stats() const {
  SchedulerStats Stats;
  Stats.Executed = I->ExternalExecuted.load(std::memory_order_relaxed);
  Stats.Steals = I->ExternalSteals.load(std::memory_order_relaxed);
  for (const auto &Worker : I->Workers) {
    Stats.Executed += Worker->Executed.load(std::memory_order_relaxed);
    Stats.Steals += Worker->Steals.load(std::memory_order_relaxed);
  }
  return Stats;
}

void TaskGroup::run(std::function<void()> Fn) {
  Sched.fork(this, std::move(Fn));
}

void TaskGroup::wait() { Sched.waitGroup(*this); }

void alic::shardedFor(Scheduler *Workers, size_t N, size_t ShardSize,
                      const std::function<void(size_t, size_t, size_t)> &Fn) {
  if (Workers) {
    Workers->parallelForShards(N, ShardSize, Fn);
    return;
  }
  if (ShardSize == 0)
    ShardSize = 1;
  for (size_t Begin = 0, Shard = 0; Begin < N; Begin += ShardSize, ++Shard)
    Fn(Shard, Begin, std::min(N, Begin + ShardSize));
}

//===- support/Table.cpp --------------------------------------*- C++ -*-===//

#include "support/Table.h"

#include "support/Error.h"
#include "support/Format.h"

#include <algorithm>
#include <cassert>

using namespace alic;

Table::Table(std::vector<std::string> Headers) : Headers(std::move(Headers)) {
  assert(!this->Headers.empty() && "table needs at least one column");
}

void Table::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Headers.size() && "row width != header width");
  Rows.push_back(std::move(Cells));
}

void Table::print(std::FILE *Out) const {
  std::vector<size_t> Widths(Headers.size());
  for (size_t C = 0; C != Headers.size(); ++C)
    Widths[C] = Headers[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C != Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto printRow = [&](const std::vector<std::string> &Cells) {
    for (size_t C = 0; C != Cells.size(); ++C)
      std::fprintf(Out, "%s%s", C ? "  " : "",
                   padLeft(Cells[C], Widths[C]).c_str());
    std::fprintf(Out, "\n");
  };

  printRow(Headers);
  size_t Total = 0;
  for (size_t C = 0; C != Widths.size(); ++C)
    Total += Widths[C] + (C ? 2 : 0);
  std::string Rule(Total, '-');
  std::fprintf(Out, "%s\n", Rule.c_str());
  for (const auto &Row : Rows)
    printRow(Row);
}

static std::string csvEscape(const std::string &Cell) {
  if (Cell.find_first_of(",\"\n") == std::string::npos)
    return Cell;
  std::string Out = "\"";
  for (char Ch : Cell) {
    if (Ch == '"')
      Out += '"';
    Out += Ch;
  }
  Out += '"';
  return Out;
}

std::string Table::toCsv() const {
  std::string Out;
  auto appendRow = [&](const std::vector<std::string> &Cells) {
    for (size_t C = 0; C != Cells.size(); ++C) {
      if (C)
        Out += ',';
      Out += csvEscape(Cells[C]);
    }
    Out += '\n';
  };
  appendRow(Headers);
  for (const auto &Row : Rows)
    appendRow(Row);
  return Out;
}

bool Table::writeCsv(const std::string &Path) const {
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File)
    return false;
  std::string Text = toCsv();
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), File);
  std::fclose(File);
  return Written == Text.size();
}

void alic::printBanner(const std::string &Title, std::FILE *Out) {
  std::string Line = "== " + Title + " ==";
  std::fprintf(Out, "\n%s\n", Line.c_str());
}

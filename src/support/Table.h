//===- support/Table.h - Console table and CSV emitters -------*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Aligned plain-text tables (for the paper-replication benches) and CSV
/// emission (for re-plotting the figures).
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_SUPPORT_TABLE_H
#define ALIC_SUPPORT_TABLE_H

#include <cstdio>
#include <string>
#include <vector>

namespace alic {

/// Accumulates rows of string cells and renders them as an aligned table.
class Table {
public:
  /// Creates a table with the given column \p Headers.
  explicit Table(std::vector<std::string> Headers);

  /// Appends one row; the cell count must match the header count.
  void addRow(std::vector<std::string> Cells);

  /// Renders to \p Out (defaults to stdout) with a header separator rule.
  void print(std::FILE *Out = stdout) const;

  /// Renders as CSV text (RFC-4180-style quoting for commas/quotes).
  std::string toCsv() const;

  /// Writes the CSV rendering to \p Path; returns false on I/O failure.
  bool writeCsv(const std::string &Path) const;

  /// Number of data rows added so far.
  size_t numRows() const { return Rows.size(); }

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

/// Prints a section banner used by the bench binaries, e.g.
/// "== Table 1: ... ==".
void printBanner(const std::string &Title, std::FILE *Out = stdout);

} // namespace alic

#endif // ALIC_SUPPORT_TABLE_H

//===- support/Rng.cpp ----------------------------------------*- C++ -*-===//

#include "support/Rng.h"

#include "support/Error.h"

#include <cassert>
#include <cmath>
#include <unordered_map>

using namespace alic;

uint64_t alic::splitMix64(uint64_t &State) {
  State += 0x9e3779b97f4a7c15ull;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

uint64_t alic::hashCombine(std::initializer_list<uint64_t> Words) {
  uint64_t State = 0x243f6a8885a308d3ull; // pi digits; arbitrary non-zero.
  for (uint64_t W : Words) {
    State ^= W + 0x9e3779b97f4a7c15ull + (State << 6) + (State >> 2);
    (void)splitMix64(State);
    State = splitMix64(State);
  }
  return splitMix64(State);
}

static inline uint64_t rotl(uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

Rng::Rng(uint64_t Seed) {
  // SplitMix64 expansion avoids correlated lanes for small seeds.
  uint64_t S = Seed;
  for (uint64_t &Lane : State)
    Lane = splitMix64(S);
}

uint64_t Rng::next() {
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Rng::nextBounded(uint64_t Bound) {
  assert(Bound != 0 && "nextBounded requires a nonzero bound");
  // Lemire's multiply-shift rejection method.
  uint64_t X = next();
  __uint128_t M = static_cast<__uint128_t>(X) * Bound;
  uint64_t Lo = static_cast<uint64_t>(M);
  if (Lo < Bound) {
    uint64_t Threshold = -Bound % Bound;
    while (Lo < Threshold) {
      X = next();
      M = static_cast<__uint128_t>(X) * Bound;
      Lo = static_cast<uint64_t>(M);
    }
  }
  return static_cast<uint64_t>(M >> 64);
}

double Rng::nextDouble() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::nextUniform(double Lo, double Hi) {
  assert(Lo <= Hi && "empty uniform range");
  return Lo + (Hi - Lo) * nextDouble();
}

int64_t Rng::nextInt(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty integer range");
  uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
  return Lo + static_cast<int64_t>(nextBounded(Span));
}

double Rng::nextGaussian() {
  if (HasCachedGaussian) {
    HasCachedGaussian = false;
    return CachedGaussian;
  }
  // Box-Muller on two fresh uniforms; U1 is kept away from zero.
  double U1 = 0.0;
  do {
    U1 = nextDouble();
  } while (U1 <= 0x1.0p-60);
  double U2 = nextDouble();
  double R = std::sqrt(-2.0 * std::log(U1));
  double Theta = 2.0 * M_PI * U2;
  CachedGaussian = R * std::sin(Theta);
  HasCachedGaussian = true;
  return R * std::cos(Theta);
}

double Rng::nextGamma(double Shape) {
  assert(Shape > 0.0 && "gamma shape must be positive");
  // Marsaglia-Tsang squeeze; boost small shapes via the U^(1/a) trick.
  if (Shape < 1.0) {
    double U = 0.0;
    do {
      U = nextDouble();
    } while (U <= 0.0);
    return nextGamma(Shape + 1.0) * std::pow(U, 1.0 / Shape);
  }
  double D = Shape - 1.0 / 3.0;
  double C = 1.0 / std::sqrt(9.0 * D);
  while (true) {
    double X = nextGaussian();
    double V = 1.0 + C * X;
    if (V <= 0.0)
      continue;
    V = V * V * V;
    double U = nextDouble();
    if (U < 1.0 - 0.0331 * X * X * X * X)
      return D * V;
    if (U > 0.0 && std::log(U) < 0.5 * X * X + D * (1.0 - V + std::log(V)))
      return D * V;
  }
}

double Rng::nextExponential(double Mean) {
  assert(Mean > 0.0 && "exponential mean must be positive");
  double U = 0.0;
  do {
    U = nextDouble();
  } while (U <= 0.0);
  return -Mean * std::log(U);
}

bool Rng::nextBernoulli(double P) {
  if (P <= 0.0)
    return false;
  if (P >= 1.0)
    return true;
  return nextDouble() < P;
}

std::vector<size_t> Rng::sampleIndices(size_t N, size_t K) {
  if (K >= N) {
    std::vector<size_t> All(N);
    for (size_t I = 0; I != N; ++I)
      All[I] = I;
    shuffle(All);
    return All;
  }
  // Partial Fisher-Yates over a lazily materialized identity permutation:
  // only displaced positions are stored.
  std::vector<size_t> Result;
  Result.reserve(K);
  std::unordered_map<size_t, size_t> Overrides;
  auto valueAt = [&](size_t I) {
    auto It = Overrides.find(I);
    return It == Overrides.end() ? I : It->second;
  };
  for (size_t I = 0; I != K; ++I) {
    size_t J = I + static_cast<size_t>(nextBounded(N - I));
    size_t ValJ = valueAt(J);
    Result.push_back(ValJ);
    // Position J now holds what position I held.
    Overrides[J] = valueAt(I);
  }
  return Result;
}

Rng Rng::split() { return Rng(next() ^ 0xd1b54a32d192ed03ull); }

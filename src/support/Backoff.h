//===- support/Backoff.h - Jittered exponential backoff -------*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One deterministic backoff schedule for every retry loop in the project
/// (ledger appends, accept() resource exhaustion, supervisor restarts,
/// lease polling).  The delay for attempt A is a pure function of
/// (Seed, A): the exponential envelope min(Base << A, Cap) with equal
/// jitter drawn from a counter-based Rng stream — no shared state, no
/// wall clock, so two processes with the same seed replay the same
/// schedule and tests can pin it exactly.  Jitter decorrelates competing
/// retriers (distinct seeds) so they do not stampede in lockstep; a
/// JitterFraction of 0 degenerates to the plain exponential ladder.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_SUPPORT_BACKOFF_H
#define ALIC_SUPPORT_BACKOFF_H

#include "support/Rng.h"

#include <cstdint>

namespace alic {

/// Deterministic jittered exponential backoff schedule.
class Backoff {
public:
  /// \p BaseMs is attempt 0's envelope, doubling each attempt up to
  /// \p CapMs.  \p JitterFraction in [0,1] is the slice of the envelope
  /// that jitters: attempt A sleeps in [e*(1-f), e] for
  /// e = min(BaseMs << A, CapMs).  Equal seeds give equal schedules.
  Backoff(uint64_t Seed, uint64_t BaseMs, uint64_t CapMs,
          double JitterFraction = 0.5)
      : Seed(Seed), BaseMs(BaseMs), CapMs(CapMs),
        JitterFraction(JitterFraction < 0.0   ? 0.0
                       : JitterFraction > 1.0 ? 1.0
                                              : JitterFraction) {}

  /// The delay before retry \p Attempt (0-based).  Pure: equal
  /// (Seed, Attempt) always returns the same value, independent of call
  /// order — each attempt hashes its own counter-based Rng stream.
  uint64_t delayMs(uint64_t Attempt) const {
    uint64_t Envelope = BaseMs;
    for (uint64_t I = 0; I != Attempt && Envelope < CapMs; ++I)
      Envelope <<= 1;
    if (Envelope > CapMs)
      Envelope = CapMs;
    if (JitterFraction <= 0.0 || Envelope == 0)
      return Envelope;
    Rng Stream(hashCombine({Seed, Attempt, 0xbac0ffull}));
    double Span = double(Envelope) * JitterFraction;
    return Envelope - uint64_t(Span) + uint64_t(Stream.nextDouble() * Span);
  }

  uint64_t baseMs() const { return BaseMs; }
  uint64_t capMs() const { return CapMs; }

private:
  uint64_t Seed;
  uint64_t BaseMs;
  uint64_t CapMs;
  double JitterFraction;
};

} // namespace alic

#endif // ALIC_SUPPORT_BACKOFF_H

//===- support/FailPoint.cpp ----------------------------------*- C++ -*-===//

#include "support/FailPoint.h"

#include "support/Env.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include <unistd.h>

using namespace alic;

std::atomic<uint32_t> failpoints::ArmedCount{0};

namespace {

struct PointState {
  bool Armed = false;
  FailSpec Spec;
  uint64_t Hits = 0;  ///< evaluations since the last global reset
  uint64_t Fires = 0; ///< evaluations that injected an outcome
};

struct Registry {
  std::mutex M;
  std::map<std::string, PointState> Points;
  bool EnvParsed = false;
};

/// Function-local static: safe to touch from static initializers of other
/// translation units and from the first evaluate() of any thread.
Registry &registry() {
  static Registry R;
  return R;
}

int modeErrno(const std::string &Token, bool &Ok) {
  Ok = true;
  if (Token == "enospc")
    return ENOSPC;
  if (Token == "eio")
    return EIO;
  if (Token == "eintr")
    return EINTR;
  if (Token == "eagain")
    return EAGAIN;
  if (Token == "emfile")
    return EMFILE;
  Ok = false;
  return 0;
}

bool parseU64(const std::string &Text, uint64_t &Out) {
  if (Text.empty() ||
      Text.find_first_not_of("0123456789") != std::string::npos)
    return false;
  Out = std::strtoull(Text.c_str(), nullptr, 10);
  return true;
}

/// Parses ALIC_FAILPOINTS exactly once per process; called under the
/// registry mutex.  A malformed value aborts loudly — a chaos harness
/// silently running *without* its faults armed would "pass" everything.
void parseEnvLocked(Registry &R) {
  if (R.EnvParsed)
    return;
  R.EnvParsed = true;
  std::string Env = getEnvString("ALIC_FAILPOINTS", "");
  if (Env.empty())
    return;
  // Re-enter through the public helper (it takes the mutex itself), so
  // release it around the call via a local copy of the work.
  size_t Pos = 0;
  while (Pos <= Env.size()) {
    size_t Semi = Env.find(';', Pos);
    if (Semi == std::string::npos)
      Semi = Env.size();
    std::string Clause = Env.substr(Pos, Semi - Pos);
    Pos = Semi + 1;
    if (Clause.empty())
      continue;
    size_t Eq = Clause.find('=');
    FailSpec Spec;
    if (Eq == std::string::npos || Eq == 0 ||
        !parseFailSpec(Clause.substr(Eq + 1), Spec)) {
      std::fprintf(stderr, "alic: malformed ALIC_FAILPOINTS clause '%s'\n",
                   Clause.c_str());
      std::abort();
    }
    std::string Name = Clause.substr(0, Eq);
    PointState &P = R.Points[Name];
    P.Armed = true;
    P.Spec = Spec;
    P.Hits = 0;
    P.Fires = 0;
    failpoints::ArmedCount.fetch_add(1, std::memory_order_relaxed);
  }
}

/// Parses ALIC_FAILPOINTS during static initialization, so ArmedCount is
/// already nonzero by the time any site's disabled fast path runs (the
/// fast path never re-checks the environment).
struct EnvArmer {
  EnvArmer() {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.M);
    parseEnvLocked(R);
  }
} TheEnvArmer;

} // namespace

bool alic::parseFailSpec(const std::string &Text, FailSpec &Spec) {
  Spec = FailSpec();
  bool SawMode = false;
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t Comma = Text.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Text.size();
    std::string Part = Text.substr(Pos, Comma - Pos);
    Pos = Comma + 1;
    if (Part.empty())
      continue;
    size_t Colon = Part.find(':');
    std::string Key = Part.substr(0, Colon == std::string::npos ? Part.size()
                                                                : Colon);
    std::string Value =
        Colon == std::string::npos ? std::string() : Part.substr(Colon + 1);
    if (Key == "nth") {
      if (!parseU64(Value, Spec.Nth) || Spec.Nth == 0)
        return false;
    } else if (Key == "count") {
      if (!parseU64(Value, Spec.Count) || Spec.Count == 0)
        return false;
    } else if (Key == "mode") {
      SawMode = true;
      if (Value == "crash") {
        Spec.Mode = FailMode::Crash;
      } else if (Value.rfind("torn:", 0) == 0) {
        uint64_t Bytes;
        if (!parseU64(Value.substr(5), Bytes))
          return false;
        Spec.Mode = FailMode::Torn;
        Spec.TornBytes = size_t(Bytes);
        Spec.Errno = ENOSPC; // a torn write is a full disk unless overridden
      } else if (Value.rfind("errno:", 0) == 0) {
        uint64_t Err;
        if (!parseU64(Value.substr(6), Err) || Err == 0)
          return false;
        Spec.Mode = FailMode::Error;
        Spec.Errno = int(Err);
      } else {
        bool Ok;
        int Err = modeErrno(Value, Ok);
        if (!Ok)
          return false;
        Spec.Mode = FailMode::Error;
        Spec.Errno = Err;
      }
    } else if (Key == "exit") {
      uint64_t Code;
      if (!parseU64(Value, Code) || Code > 255)
        return false;
      Spec.ExitCode = int(Code);
    } else {
      return false;
    }
  }
  return SawMode;
}

int alic::armFailPointsFromString(const std::string &Text) {
  // Validate every clause before arming any.
  std::vector<std::pair<std::string, FailSpec>> Parsed;
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t Semi = Text.find(';', Pos);
    if (Semi == std::string::npos)
      Semi = Text.size();
    std::string Clause = Text.substr(Pos, Semi - Pos);
    Pos = Semi + 1;
    if (Clause.empty())
      continue;
    size_t Eq = Clause.find('=');
    FailSpec Spec;
    if (Eq == std::string::npos || Eq == 0 ||
        !parseFailSpec(Clause.substr(Eq + 1), Spec))
      return -1;
    Parsed.emplace_back(Clause.substr(0, Eq), Spec);
  }
  for (const auto &[Name, Spec] : Parsed)
    armFailPoint(Name, Spec);
  return int(Parsed.size());
}

void alic::armFailPoint(const std::string &Name, const FailSpec &Spec) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  parseEnvLocked(R);
  PointState &P = R.Points[Name];
  if (!P.Armed)
    failpoints::ArmedCount.fetch_add(1, std::memory_order_relaxed);
  P.Armed = true;
  P.Spec = Spec;
  P.Hits = 0;
  P.Fires = 0;
}

void alic::disarmFailPoint(const std::string &Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  auto It = R.Points.find(Name);
  if (It == R.Points.end() || !It->second.Armed)
    return;
  It->second.Armed = false;
  failpoints::ArmedCount.fetch_sub(1, std::memory_order_relaxed);
}

void alic::disarmAllFailPoints() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  for (auto &[Name, P] : R.Points) {
    (void)Name;
    if (P.Armed)
      failpoints::ArmedCount.fetch_sub(1, std::memory_order_relaxed);
    P = PointState();
  }
}

uint64_t alic::failPointHits(const std::string &Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  auto It = R.Points.find(Name);
  return It == R.Points.end() ? 0 : It->second.Hits;
}

uint64_t alic::failPointFires(const std::string &Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  auto It = R.Points.find(Name);
  return It == R.Points.end() ? 0 : It->second.Fires;
}

FailOutcome failpoints::evaluateSlow(const char *Name) {
  Registry &R = registry();
  FailSpec Spec;
  bool Fire = false;
  {
    std::lock_guard<std::mutex> Lock(R.M);
    parseEnvLocked(R);
    auto It = R.Points.find(Name);
    if (It == R.Points.end() || !It->second.Armed)
      return FailOutcome();
    PointState &P = It->second;
    ++P.Hits;
    if (P.Hits >= P.Spec.Nth && P.Hits - P.Spec.Nth < P.Spec.Count) {
      Fire = true;
      Spec = P.Spec;
      ++P.Fires;
    }
  }
  if (!Fire)
    return FailOutcome();
  if (Spec.Mode == FailMode::Crash) {
    // The whole point: die with no unwinding, destructors, or flushing —
    // exactly what a power loss or SIGKILL at this syscall looks like.
    std::fprintf(stderr, "alic: failpoint '%s' crash\n", Name);
    ::_exit(Spec.ExitCode);
  }
  FailOutcome Out;
  Out.Fire = true;
  Out.Mode = Spec.Mode;
  Out.Errno = Spec.Errno;
  Out.TornBytes = Spec.TornBytes;
  return Out;
}

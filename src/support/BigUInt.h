//===- support/BigUInt.h - Arbitrary-precision unsigned ints --*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact arbitrary-precision unsigned integer.  SPAPT search-space
/// cardinalities reach 1.33e27 (Table 1 of the paper), which overflows
/// uint64_t, so exact cardinalities and mixed-radix configuration indices
/// are carried in BigUInt.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_SUPPORT_BIGUINT_H
#define ALIC_SUPPORT_BIGUINT_H

#include <cstdint>
#include <string>
#include <vector>

namespace alic {

/// Unsigned integer of unbounded width, little-endian base-2^32 limbs.
class BigUInt {
public:
  /// Constructs the value zero.
  BigUInt() = default;

  /// Constructs from a 64-bit value.
  BigUInt(uint64_t Value);

  /// Returns this + \p Rhs.
  BigUInt operator+(const BigUInt &Rhs) const;

  /// Returns this * \p Rhs (schoolbook multiply).
  BigUInt operator*(const BigUInt &Rhs) const;

  /// Multiplies in place by a 32-bit factor.
  BigUInt &mulScalar(uint32_t Factor);

  /// Adds a 32-bit value in place.
  BigUInt &addScalar(uint32_t Value);

  /// Divides in place by a nonzero 32-bit divisor and returns the remainder.
  uint32_t divModScalar(uint32_t Divisor);

  /// Three-way comparison.
  int compare(const BigUInt &Rhs) const;

  bool operator==(const BigUInt &Rhs) const { return compare(Rhs) == 0; }
  bool operator!=(const BigUInt &Rhs) const { return compare(Rhs) != 0; }
  bool operator<(const BigUInt &Rhs) const { return compare(Rhs) < 0; }
  bool operator<=(const BigUInt &Rhs) const { return compare(Rhs) <= 0; }
  bool operator>(const BigUInt &Rhs) const { return compare(Rhs) > 0; }
  bool operator>=(const BigUInt &Rhs) const { return compare(Rhs) >= 0; }

  /// Returns true if the value is zero.
  bool isZero() const { return Limbs.empty(); }

  /// Returns the closest double (may round for values above 2^53).
  double toDouble() const;

  /// Returns the value as a decimal string.
  std::string toString() const;

  /// Returns the value in scientific notation with \p Digits significant
  /// digits, e.g. "3.78e14" — the format used by Table 1 of the paper.
  std::string toScientific(int Digits = 3) const;

  /// Returns the value if it fits in uint64_t.
  /// Asserts when the value is too wide.
  uint64_t toU64() const;

private:
  void trim();

  std::vector<uint32_t> Limbs; // little-endian, no trailing zeros
};

} // namespace alic

#endif // ALIC_SUPPORT_BIGUINT_H

//===- support/ThreadPool.h - Compat shim over the Scheduler --*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compatibility shim.  The fixed-size ThreadPool was replaced by the
/// work-stealing support/Scheduler (which is a drop-in superset: submit,
/// waitAll, parallelFor, parallelForShards, plus legal nested
/// parallelism).  Existing includes and the ThreadPool name keep
/// working; new code should include support/Scheduler.h directly.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_SUPPORT_THREADPOOL_H
#define ALIC_SUPPORT_THREADPOOL_H

#include "support/Scheduler.h"

namespace alic {

using ThreadPool = Scheduler;

} // namespace alic

#endif // ALIC_SUPPORT_THREADPOOL_H

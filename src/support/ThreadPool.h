//===- support/ThreadPool.h - Minimal fixed-size thread pool --*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool used to run independent experiment
/// repetitions concurrently.  Determinism is preserved by giving each task
/// its own pre-derived RNG seed, so scheduling order never affects results.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_SUPPORT_THREADPOOL_H
#define ALIC_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace alic {

/// Fixed-size worker pool with a wait-for-all barrier.
class ThreadPool {
public:
  /// Starts \p NumThreads workers (0 means hardware concurrency, min 1).
  explicit ThreadPool(unsigned NumThreads = 0);

  /// Drains outstanding work and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task for execution.
  void submit(std::function<void()> Task);

  /// Blocks until every submitted task has finished.
  void waitAll();

  /// Number of worker threads.
  unsigned numThreads() const { return static_cast<unsigned>(Workers.size()); }

  /// Runs \p Fn(I) for I in [0, N), distributing across the pool, and waits.
  void parallelFor(size_t N, const std::function<void(size_t)> &Fn);

  /// Runs \p Fn(Shard, Begin, End) over ceil(N / ShardSize) contiguous
  /// shards of [0, N) and waits.  Shard boundaries depend only on \p N and
  /// \p ShardSize — never on the thread count — so deterministic work (and
  /// per-shard pre-derived RNG seeds keyed on the shard index) produces
  /// bit-identical results at any parallelism.
  void parallelForShards(size_t N, size_t ShardSize,
                         const std::function<void(size_t, size_t, size_t)> &Fn);

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::queue<std::function<void()>> Tasks;
  std::mutex Mutex;
  std::condition_variable TaskAvailable;
  std::condition_variable AllDone;
  size_t InFlight = 0;
  bool ShuttingDown = false;
};

/// Runs \p Fn(Shard, Begin, End) over the fixed shard grid of [0, N) — on
/// \p Pool when non-null, inline (in shard order) when null.  The grid is
/// identical either way, so code written against this helper is
/// bit-reproducible between its sequential and parallel executions.
void shardedFor(ThreadPool *Pool, size_t N, size_t ShardSize,
                const std::function<void(size_t, size_t, size_t)> &Fn);

} // namespace alic

#endif // ALIC_SUPPORT_THREADPOOL_H

//===- support/FailPoint.h - Named fault-injection points -----*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for the durability and network paths.
/// A *failpoint* is a named site in the code — `ALIC_FAILPOINT("ledger.append")`
/// — that is a single relaxed-atomic load when nothing is armed, and when
/// armed injects one of three outcomes at a chosen hit:
///
///  * **Error**: the site reports failure with a chosen errno (ENOSPC,
///    EIO, EINTR, ...) without touching the real syscall;
///  * **Torn**: the site performs only the first N bytes of its write,
///    then reports failure — a torn/short write;
///  * **Crash**: the process `_exit()`s on the spot — the
///    kill-at-every-sync-point chaos tests.
///
/// Arming is either programmatic (tests: armFailPoint / ScopedFailPoint)
/// or via the environment (child processes in chaos harnesses):
///
///     ALIC_FAILPOINTS="ledger.append=nth:3,mode:enospc;atomicfile.sync=mode:crash"
///
/// `nth:k` fires from the k-th hit of the site (1-based, default 1) and
/// `count:m` limits how many consecutive hits fire (default: unlimited).
/// Modes: `enospc`, `eio`, `eintr`, `eagain`, `emfile`, `errno:<n>`,
/// `torn:<bytes>`, `crash`.  The environment is parsed once, on the first
/// evaluation after process start.
///
/// The registered site names form a stable catalog (see the "Failure
/// model" section of docs/ARCHITECTURE.md); chaos harnesses iterate it.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_SUPPORT_FAILPOINT_H
#define ALIC_SUPPORT_FAILPOINT_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace alic {

/// What an armed failpoint injects when it fires.
enum class FailMode : uint8_t {
  Error, ///< report failure with FailSpec::Errno, syscall not attempted
  Torn,  ///< perform only FailSpec::TornBytes bytes, then report Errno
  Crash, ///< _exit(FailSpec::ExitCode) at the site
};

/// The arming of one failpoint.
struct FailSpec {
  FailMode Mode = FailMode::Error;
  int Errno = 5;           ///< EIO by default; ENOSPC for mode enospc, ...
  uint64_t Nth = 1;        ///< first firing hit, 1-based
  uint64_t Count = ~0ull;  ///< consecutive firing hits from Nth (default all)
  size_t TornBytes = 0;    ///< bytes let through before a Torn failure
  int ExitCode = 43;       ///< _exit code of Crash firings
};

/// The verdict one evaluation of a failpoint returns to its site.  When
/// `Fire` is false the site proceeds normally.  Crash firings never
/// return (the evaluation `_exit`s).
struct FailOutcome {
  bool Fire = false;
  FailMode Mode = FailMode::Error;
  int Errno = 0;
  size_t TornBytes = 0;
};

namespace failpoints {

/// Nonzero while any failpoint is armed (programmatically or via
/// ALIC_FAILPOINTS).  The macro's disabled-path cost is exactly one
/// relaxed load of this counter.
extern std::atomic<uint32_t> ArmedCount;

/// Slow path: counts the hit and decides whether it fires.  Only called
/// when ArmedCount is nonzero (or on the very first hit, to parse the
/// environment).
FailOutcome evaluateSlow(const char *Name);

/// Evaluates failpoint \p Name at its site.
inline FailOutcome evaluate(const char *Name) {
  if (ArmedCount.load(std::memory_order_relaxed) == 0)
    return FailOutcome();
  return evaluateSlow(Name);
}

} // namespace failpoints

/// Arms failpoint \p Name with \p Spec (replacing any previous arming,
/// resetting its hit counter).  Thread-safe.
void armFailPoint(const std::string &Name, const FailSpec &Spec);

/// Disarms failpoint \p Name; its hit counter keeps counting.
void disarmFailPoint(const std::string &Name);

/// Disarms every failpoint and zeroes every hit counter (test teardown).
void disarmAllFailPoints();

/// Parses one arming clause ("nth:3,mode:enospc,count:2") into \p Spec.
/// Unknown keys or malformed values fail (returning false) rather than
/// arming a half-understood spec.
bool parseFailSpec(const std::string &Text, FailSpec &Spec);

/// Parses and arms every clause of an ALIC_FAILPOINTS-style string
/// ("name=clause;name=clause").  Returns the number armed, or -1 on a
/// parse error (nothing is armed from a malformed string).
int armFailPointsFromString(const std::string &Text);

/// Times failpoint \p Name was hit (evaluated while anything was armed)
/// since the last disarmAllFailPoints(); hits on the disabled fast path
/// are not counted — by design the disabled path touches nothing.
uint64_t failPointHits(const std::string &Name);

/// Times failpoint \p Name actually fired.
uint64_t failPointFires(const std::string &Name);

/// RAII arming for tests: arms on construction, disarms on destruction.
class ScopedFailPoint {
public:
  ScopedFailPoint(std::string Name, const FailSpec &Spec)
      : Name(std::move(Name)) {
    armFailPoint(this->Name, Spec);
  }
  ~ScopedFailPoint() { disarmFailPoint(Name); }
  ScopedFailPoint(const ScopedFailPoint &) = delete;
  ScopedFailPoint &operator=(const ScopedFailPoint &) = delete;

private:
  std::string Name;
};

} // namespace alic

/// Evaluates the named failpoint; expands to a FailOutcome expression.
/// A single relaxed atomic load when nothing is armed.
#define ALIC_FAILPOINT(Name) (::alic::failpoints::evaluate(Name))

#endif // ALIC_SUPPORT_FAILPOINT_H

//===- support/Json.h - Minimal JSON reader/writer helpers ----*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny JSON facility shared by every line-oriented JSON surface in the
/// project: the campaign cell ledger (exp/Campaign) and the serve wire
/// protocol (serve/Wire).  Parsing is a strict recursive descent over one
/// null-terminated document; rendering of doubles uses the shortest
/// std::to_chars form, which strtod parses back to the same bits, so
/// checkpointed values survive a serialize/parse round trip exactly.
///
/// This is deliberately not a general JSON library: no streaming, no
/// \\uXXXX escapes (none of our producers emit them), numbers restricted
/// to the JSON grammar with finite values, and container nesting capped
/// (the wire surface reads untrusted sockets, so unbounded recursion or
/// smuggled NaN/Infinity costs must die at the parser).  Both of our
/// surfaces are machine-to-machine lines we also produce, so strictness
/// is a feature — anything unparsable is a crash remnant or a protocol
/// error, and the caller skips or rejects it.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_SUPPORT_JSON_H
#define ALIC_SUPPORT_JSON_H

#include <string>
#include <utility>
#include <vector>

namespace alic {

/// One parsed JSON value (a small recursive variant).
struct JsonValue {
  /// JSON type tag.
  enum class Kind { Null, Bool, Number, String, Array, Object };
  /// Type of this value.
  Kind K = Kind::Null;
  /// Payload of Kind::Bool values.
  bool BoolValue = false;
  /// Payload of Kind::Number values.
  double Number = 0.0;
  /// Payload of Kind::String values.
  std::string Str;
  /// Payload of Kind::Array values, in document order.
  std::vector<JsonValue> Items;
  /// Payload of Kind::Object values, in document order (duplicate keys
  /// are kept; field() returns the first).
  std::vector<std::pair<std::string, JsonValue>> Fields;

  /// First field named \p Name, or nullptr.  Object values only.
  const JsonValue *field(const char *Name) const {
    for (const auto &[Key, Value] : Fields)
      if (Key == Name)
        return &Value;
    return nullptr;
  }
};

/// Parses the whole of \p Text as one JSON document into \p Out.  Returns
/// false on any syntax error or trailing garbage (whitespace excepted),
/// on numbers outside the JSON grammar or non-finite after conversion
/// (nan/inf/hex floats), and on container nesting deeper than 64 levels.
bool parseJson(const char *Text, JsonValue &Out);

/// Shortest decimal rendering of \p Value that strtod parses back to the
/// same IEEE-754 bits (std::to_chars), so doubles written to a ledger or
/// a wire line round-trip exactly.  Non-finite input renders as "null"
/// (valid JSON, unlike a bare nan/inf token).
std::string formatJsonDouble(double Value);

/// Escapes \p Text for embedding inside a JSON string literal (quotes not
/// included).  Control characters, quote, and backslash only — the output
/// stays ASCII-transparent for everything else.
std::string jsonEscape(const std::string &Text);

/// Reads object field \p Name as a number into \p Out; false when the
/// field is missing or not a number.
bool jsonNumberField(const JsonValue &Object, const char *Name, double &Out);

/// Reads object field \p Name as a string into \p Out; false when the
/// field is missing or not a string.
bool jsonStringField(const JsonValue &Object, const char *Name,
                     std::string &Out);

} // namespace alic

#endif // ALIC_SUPPORT_JSON_H

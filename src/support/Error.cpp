//===- support/Error.cpp --------------------------------------*- C++ -*-===//

#include "support/Error.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

using namespace alic;

void alic::fatalError(const char *Fmt, ...) {
  std::va_list Args;
  va_start(Args, Fmt);
  std::fprintf(stderr, "alic fatal error: ");
  std::vfprintf(stderr, Fmt, Args);
  std::fprintf(stderr, "\n");
  va_end(Args);
  std::abort();
}

void alic::unreachableInternal(const char *Msg, const char *File,
                               unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}

//===- support/Env.cpp ----------------------------------------*- C++ -*-===//

#include "support/Env.h"

#include "support/Error.h"

#include <cstdlib>

using namespace alic;

std::string alic::getEnvString(const char *Name, const std::string &Default) {
  const char *Value = std::getenv(Name);
  if (!Value || !*Value)
    return Default;
  return Value;
}

int64_t alic::getEnvInt(const char *Name, int64_t Default) {
  const char *Value = std::getenv(Name);
  if (!Value || !*Value)
    return Default;
  char *End = nullptr;
  long long Parsed = std::strtoll(Value, &End, 10);
  if (End == Value || *End != '\0')
    return Default;
  return Parsed;
}

ScaleKind alic::getScaleKind() {
  std::string Value = getEnvString("ALIC_SCALE", "bench");
  if (Value == "smoke")
    return ScaleKind::Smoke;
  if (Value == "paper")
    return ScaleKind::Paper;
  return ScaleKind::Bench;
}

const char *alic::scaleName(ScaleKind Kind) {
  switch (Kind) {
  case ScaleKind::Smoke:
    return "smoke";
  case ScaleKind::Bench:
    return "bench";
  case ScaleKind::Paper:
    return "paper";
  }
  alic_unreachable("unknown scale kind");
}

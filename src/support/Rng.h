//===- support/Rng.h - Deterministic random number generation -*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fully deterministic random-number facility.  Every stochastic
/// component of the library (noise injection, candidate sampling, particle
/// resampling) draws from an explicitly seeded Rng so experiments replay
/// bit-identically across runs and platforms.  The generator is
/// xoshiro256**, seeded through SplitMix64 as its authors recommend.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_SUPPORT_RNG_H
#define ALIC_SUPPORT_RNG_H

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <utility>
#include <vector>

namespace alic {

/// SplitMix64 step; also useful as a cheap stateless hash of 64-bit keys.
uint64_t splitMix64(uint64_t &State);

/// Stateless mixing hash built on the SplitMix64 finalizer.  Combines an
/// arbitrary list of 64-bit words into one well-distributed word.  Used to
/// derive per-(benchmark, configuration, sample) noise streams.
uint64_t hashCombine(std::initializer_list<uint64_t> Words);

/// Deterministic pseudo-random generator (xoshiro256**).
class Rng {
public:
  /// Seeds the generator; equal seeds give equal streams.
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull);

  /// Returns the next raw 64-bit word.
  uint64_t next();

  /// Returns an unbiased uniform integer in [0, Bound) (Lemire's method).
  /// \p Bound must be nonzero.
  uint64_t nextBounded(uint64_t Bound);

  /// Returns a uniform double in [0, 1).
  double nextDouble();

  /// Returns a uniform double in [Lo, Hi).
  double nextUniform(double Lo, double Hi);

  /// Returns a uniform integer in the inclusive range [Lo, Hi].
  int64_t nextInt(int64_t Lo, int64_t Hi);

  /// Returns a standard normal deviate (Box-Muller, cached pair).
  double nextGaussian();

  /// Returns a Gamma(\p Shape, scale=1) deviate (Marsaglia-Tsang).
  /// \p Shape must be positive.
  double nextGamma(double Shape);

  /// Returns an Exponential deviate with the given \p Mean.
  double nextExponential(double Mean);

  /// Returns true with probability \p P (clamped to [0,1]).
  bool nextBernoulli(double P);

  /// Fisher-Yates shuffles \p Values in place.
  template <typename T> void shuffle(std::vector<T> &Values) {
    for (size_t I = Values.size(); I > 1; --I) {
      size_t J = static_cast<size_t>(nextBounded(I));
      std::swap(Values[I - 1], Values[J]);
    }
  }

  /// Draws \p K distinct indices from [0, N) in uniformly random order.
  /// If \p K >= N, returns a random permutation of all N indices.
  std::vector<size_t> sampleIndices(size_t N, size_t K);

  /// Splits off an independent child generator.  The child stream is a
  /// deterministic function of the parent state, and advancing the child
  /// does not perturb the parent beyond the single split draw.
  Rng split();

private:
  uint64_t State[4];
  double CachedGaussian = 0.0;
  bool HasCachedGaussian = false;
};

} // namespace alic

#endif // ALIC_SUPPORT_RNG_H

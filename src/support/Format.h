//===- support/Format.h - String formatting helpers -----------*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style std::string formatting and small number-rendering helpers
/// shared by the table writers, benches, and examples.  The library avoids
/// <iostream>; all console output funnels through these helpers.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_SUPPORT_FORMAT_H
#define ALIC_SUPPORT_FORMAT_H

#include <string>
#include <vector>

namespace alic {

/// Returns the printf-formatted string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Renders \p Value like the paper's tables: scientific for very large or
/// very small magnitudes ("2.62e4"), fixed otherwise ("57.46").
std::string formatPaperNumber(double Value);

/// Renders a duration in seconds with a human unit ("3.2 ms", "2.1 h").
std::string formatSeconds(double Seconds);

/// Joins \p Parts with \p Sep.
std::string joinStrings(const std::vector<std::string> &Parts,
                        const std::string &Sep);

/// Pads \p Text on the left with spaces to at least \p Width columns.
std::string padLeft(const std::string &Text, size_t Width);

/// Pads \p Text on the right with spaces to at least \p Width columns.
std::string padRight(const std::string &Text, size_t Width);

} // namespace alic

#endif // ALIC_SUPPORT_FORMAT_H

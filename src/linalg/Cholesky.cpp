//===- linalg/Cholesky.cpp ------------------------------------*- C++ -*-===//

#include "linalg/Cholesky.h"

#include "support/Error.h"

#include <cassert>
#include <cmath>

using namespace alic;

std::optional<Cholesky> Cholesky::factorize(const Matrix &A) {
  assert(A.rows() == A.cols() && "Cholesky needs a square matrix");
  size_t N = A.rows();
  Matrix L(N, N, 0.0);
  for (size_t J = 0; J != N; ++J) {
    double Diag = A.at(J, J);
    for (size_t K = 0; K != J; ++K)
      Diag -= L.at(J, K) * L.at(J, K);
    if (Diag <= 0.0 || !std::isfinite(Diag))
      return std::nullopt;
    double Ljj = std::sqrt(Diag);
    L.at(J, J) = Ljj;
    for (size_t I = J + 1; I != N; ++I) {
      double Sum = A.at(I, J);
      for (size_t K = 0; K != J; ++K)
        Sum -= L.at(I, K) * L.at(J, K);
      L.at(I, J) = Sum / Ljj;
    }
  }
  return Cholesky(std::move(L));
}

bool Cholesky::extend(const std::vector<double> &B, double C) {
  size_t N = L.rows();
  assert(B.size() == N && "border size mismatch");
  // New off-diagonal row: L21 solves L L21^T = B — the same recurrence
  // factorize() applies to its last row.
  std::vector<double> Row = solveLower(B);
  double Diag = C;
  for (size_t K = 0; K != N; ++K)
    Diag -= Row[K] * Row[K];
  if (Diag <= 0.0 || !std::isfinite(Diag))
    return false;
  Matrix Grown(N + 1, N + 1, 0.0);
  for (size_t I = 0; I != N; ++I)
    for (size_t J = 0; J <= I; ++J)
      Grown.at(I, J) = L.at(I, J);
  for (size_t K = 0; K != N; ++K)
    Grown.at(N, K) = Row[K];
  Grown.at(N, N) = std::sqrt(Diag);
  L = std::move(Grown);
  return true;
}

std::vector<double> Cholesky::solveLower(const std::vector<double> &B) const {
  size_t N = L.rows();
  assert(B.size() == N && "rhs size mismatch");
  std::vector<double> Y(N);
  for (size_t I = 0; I != N; ++I) {
    double Sum = B[I];
    for (size_t K = 0; K != I; ++K)
      Sum -= L.at(I, K) * Y[K];
    Y[I] = Sum / L.at(I, I);
  }
  return Y;
}

std::vector<double> Cholesky::solve(const std::vector<double> &B) const {
  size_t N = L.rows();
  std::vector<double> Y = solveLower(B);
  // Back substitution with L^T.
  std::vector<double> X(N);
  for (size_t I = N; I-- > 0;) {
    double Sum = Y[I];
    for (size_t K = I + 1; K != N; ++K)
      Sum -= L.at(K, I) * X[K];
    X[I] = Sum / L.at(I, I);
  }
  return X;
}

double Cholesky::logDeterminant() const {
  double Sum = 0.0;
  for (size_t I = 0; I != L.rows(); ++I)
    Sum += std::log(L.at(I, I));
  return 2.0 * Sum;
}

//===- linalg/Cholesky.cpp ------------------------------------*- C++ -*-===//

#include "linalg/Cholesky.h"

#include "support/Error.h"
#include "support/Scheduler.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace alic;

namespace {

/// Acc - sum_k A[k]*B[k], subtracted strictly in index order — the one
/// inner loop every factorization and substitution path funnels
/// through, so the scalar, blocked, extended, and multi-RHS paths all
/// execute the identical floating-point operation sequence per element.
inline double dotSubtract(double Acc, const double *A, const double *B,
                          size_t Num) {
  for (size_t K = 0; K != Num; ++K)
    Acc -= A[K] * B[K];
  return Acc;
}

/// Width of the serially factored diagonal panels.  The serial fraction
/// of the blocked factorization is ~3*Panel/N of the flops, so 48 keeps
/// it under 3% at n >= 5000 while the panels stay comfortably in L1.
constexpr size_t FactorizePanel = 48;

/// Rows per forked trailing-update shard: a pure function of N (never
/// the worker count), so the shard grid — and with it the result — is
/// identical at any parallelism.
size_t factorizeRowShard(size_t N) { return std::max<size_t>(8, N / 128); }

} // namespace

std::optional<Cholesky> Cholesky::factorize(const Matrix &A,
                                            Scheduler *Workers) {
  assert(A.rows() == A.cols() && "Cholesky needs a square matrix");
  size_t N = A.rows();
  Cholesky F;
  F.N = N;
  F.Packed.resize(N * (N + 1) / 2);
  size_t RowShard = factorizeRowShard(N);
  for (size_t J0 = 0; J0 < N; J0 += FactorizePanel) {
    size_t J1 = std::min(J0 + FactorizePanel, N);
    // Diagonal panel: rows J0..J1-1 in order (each depends on the panel
    // rows above it).  Columns below J0 of these rows were produced as
    // trailing updates of earlier panels, so every dot product below
    // reads only final values — the classic scalar recurrence.
    for (size_t J = J0; J != J1; ++J) {
      double *RowJ = F.row(J);
      for (size_t C = J0; C != J; ++C) {
        const double *RowC = F.row(C);
        RowJ[C] = dotSubtract(A.at(J, C), RowJ, RowC, C) / RowC[C];
      }
      double Diag = dotSubtract(A.at(J, J), RowJ, RowJ, J);
      if (Diag <= 0.0 || !std::isfinite(Diag))
        return std::nullopt;
      RowJ[J] = std::sqrt(Diag);
    }
    // Trailing update: the panel columns of every row below the panel.
    // Rows are mutually independent (each reads only finished panel rows
    // and its own earlier columns), so they fork across the scheduler;
    // each shard writes a disjoint packed row range.
    shardedFor(Workers, N - J1, RowShard,
               [&](size_t, size_t Begin, size_t End) {
                 for (size_t I = J1 + Begin; I != J1 + End; ++I) {
                   double *RowI = F.row(I);
                   for (size_t C = J0; C != J1; ++C) {
                     const double *RowC = F.row(C);
                     RowI[C] =
                         dotSubtract(A.at(I, C), RowI, RowC, C) / RowC[C];
                   }
                 }
               });
  }
  return F;
}

bool Cholesky::extend(RowRef B, double C) {
  assert(B.size() == N && "border size mismatch");
  // Append the border as a new packed row and forward-substitute it in
  // place — the same recurrence, in the same order, factorize() applies
  // to its last row.  Growth is amortized O(n) via the buffer's
  // geometric reallocation; nothing else moves.
  size_t Base = Packed.size();
  Packed.resize(Base + N + 1);
  double *Row = Packed.data() + Base;
  for (size_t I = 0; I != N; ++I)
    Row[I] = B[I];
  for (size_t I = 0; I != N; ++I) {
    const double *RowI = row(I);
    Row[I] = dotSubtract(Row[I], RowI, Row, I) / RowI[I];
  }
  double Diag = dotSubtract(C, Row, Row, N);
  if (Diag <= 0.0 || !std::isfinite(Diag)) {
    Packed.resize(Base); // shrink: no reallocation, factor untouched
    return false;
  }
  Row[N] = std::sqrt(Diag);
  ++N;
  return true;
}

void Cholesky::rankOneUpdate(RowRef V) {
  assert(V.size() == N && "update vector size mismatch");
  // Classic Givens-style positive update: eliminate W against the
  // diagonal one column at a time.  O(n^2); the factor stays valid
  // because A + V V^T is positive definite whenever A is.
  std::vector<double> W(V.begin(), V.end());
  for (size_t K = 0; K != N; ++K) {
    double Lkk = at(K, K);
    double R = std::sqrt(Lkk * Lkk + W[K] * W[K]);
    double Cos = R / Lkk;
    double Sin = W[K] / Lkk;
    row(K)[K] = R;
    for (size_t I = K + 1; I != N; ++I) {
      double Lik = (at(I, K) + Sin * W[I]) / Cos;
      row(I)[K] = Lik;
      // The workspace rotates against the *updated* column entry.
      W[I] = Cos * W[I] - Sin * Lik;
    }
  }
}

void Cholesky::solveLowerInPlace(double *B) const {
  for (size_t I = 0; I != N; ++I) {
    const double *RowI = row(I);
    B[I] = dotSubtract(B[I], RowI, B, I) / RowI[I];
  }
}

void Cholesky::solveInPlace(double *B) const {
  solveLowerInPlace(B);
  // Back substitution with L^T: a column walk through the packed rows.
  for (size_t I = N; I-- > 0;) {
    double Sum = B[I];
    for (size_t K = I + 1; K != N; ++K)
      Sum -= at(K, I) * B[K];
    B[I] = Sum / at(I, I);
  }
}

void Cholesky::solveLowerManyInPlace(double *B, size_t NumRhs) const {
  // Factor-row outer loop: row I streams from cache through every
  // right-hand side.  Per right-hand side the arithmetic is exactly
  // solveLowerInPlace()'s.
  for (size_t I = 0; I != N; ++I) {
    const double *RowI = row(I);
    for (size_t R = 0; R != NumRhs; ++R) {
      double *Rhs = B + R * N;
      Rhs[I] = dotSubtract(Rhs[I], RowI, Rhs, I) / RowI[I];
    }
  }
}

void Cholesky::solveManyInPlace(double *B, size_t NumRhs) const {
  solveLowerManyInPlace(B, NumRhs);
  if (N == 0)
    return;
  // Back substitution: gather column I of L once, then stream it
  // unit-stride through every right-hand side (same values in the same
  // order as solveInPlace()'s strided walk).
  std::vector<double> Col(N);
  for (size_t I = N; I-- > 0;) {
    for (size_t K = I + 1; K != N; ++K)
      Col[K] = at(K, I);
    double Dii = at(I, I);
    for (size_t R = 0; R != NumRhs; ++R) {
      double *Rhs = B + R * N;
      Rhs[I] = dotSubtract(Rhs[I], Col.data() + I + 1, Rhs + I + 1,
                           N - I - 1) /
               Dii;
    }
  }
}

std::vector<double> Cholesky::solveLower(const std::vector<double> &B) const {
  assert(B.size() == N && "rhs size mismatch");
  std::vector<double> Y = B;
  solveLowerInPlace(Y.data());
  return Y;
}

std::vector<double> Cholesky::solve(const std::vector<double> &B) const {
  assert(B.size() == N && "rhs size mismatch");
  std::vector<double> X = B;
  solveInPlace(X.data());
  return X;
}

double Cholesky::logDeterminant() const {
  double Sum = 0.0;
  for (size_t I = 0; I != N; ++I)
    Sum += std::log(at(I, I));
  return 2.0 * Sum;
}

Matrix Cholesky::factor() const {
  Matrix L(N, N, 0.0);
  for (size_t I = 0; I != N; ++I)
    for (size_t J = 0; J <= I; ++J)
      L.at(I, J) = at(I, J);
  return L;
}

//===- linalg/Cholesky.h - Cholesky factorization --------------*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cholesky factorization and solves for symmetric positive-definite
/// systems — the O(n^3) kernel inside exact GP inference.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_LINALG_CHOLESKY_H
#define ALIC_LINALG_CHOLESKY_H

#include "linalg/Matrix.h"

#include <optional>
#include <vector>

namespace alic {

/// Lower-triangular Cholesky factor L with A = L L^T.
class Cholesky {
public:
  /// Factorizes symmetric positive-definite \p A.  Returns std::nullopt if
  /// \p A is not (numerically) positive definite.
  static std::optional<Cholesky> factorize(const Matrix &A);

  /// Grows the factor of an n x n matrix A to the factor of the bordered
  /// (n+1) x (n+1) matrix [[A, B], [B^T, C]] in O(n^2) — the rank-1
  /// extension that lets a GP absorb one observation without the O(n^3)
  /// refactorization.  The new row is produced by the same recurrence, in
  /// the same order, as factorize() would use, so the grown factor is
  /// bit-identical to factorizing the bordered matrix from scratch.
  /// Returns false (leaving the factor unchanged) if the bordered matrix
  /// is not numerically positive definite.
  bool extend(const std::vector<double> &B, double C);

  /// Solves A x = \p B via the factor.
  std::vector<double> solve(const std::vector<double> &B) const;

  /// Solves L y = \p B (forward substitution).
  std::vector<double> solveLower(const std::vector<double> &B) const;

  /// log(det A) = 2 * sum(log diag L).
  double logDeterminant() const;

  /// Dimension of the factored matrix.
  size_t size() const { return L.rows(); }

  /// The lower-triangular factor.
  const Matrix &factor() const { return L; }

private:
  explicit Cholesky(Matrix L) : L(std::move(L)) {}

  Matrix L;
};

} // namespace alic

#endif // ALIC_LINALG_CHOLESKY_H

//===- linalg/Cholesky.h - Cholesky factorization --------------*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cholesky factorization and solves for symmetric positive-definite
/// systems — the O(n^3) kernel inside exact GP inference.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_LINALG_CHOLESKY_H
#define ALIC_LINALG_CHOLESKY_H

#include "linalg/Matrix.h"

#include <optional>
#include <vector>

namespace alic {

/// Lower-triangular Cholesky factor L with A = L L^T.
class Cholesky {
public:
  /// Factorizes symmetric positive-definite \p A.  Returns std::nullopt if
  /// \p A is not (numerically) positive definite.
  static std::optional<Cholesky> factorize(const Matrix &A);

  /// Solves A x = \p B via the factor.
  std::vector<double> solve(const std::vector<double> &B) const;

  /// Solves L y = \p B (forward substitution).
  std::vector<double> solveLower(const std::vector<double> &B) const;

  /// log(det A) = 2 * sum(log diag L).
  double logDeterminant() const;

  /// The lower-triangular factor.
  const Matrix &factor() const { return L; }

private:
  explicit Cholesky(Matrix L) : L(std::move(L)) {}

  Matrix L;
};

} // namespace alic

#endif // ALIC_LINALG_CHOLESKY_H

//===- linalg/Cholesky.h - Cholesky factorization --------------*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cholesky factorization and solves for symmetric positive-definite
/// systems — the O(n^3) kernel inside exact GP inference.
///
/// The factor is held in *packed* lower-triangular storage: row I of L
/// occupies the I+1 contiguous entries starting at I*(I+1)/2, so the
/// whole factor is one n(n+1)/2-double buffer with unit-stride rows and
/// no dead upper triangle.  Two properties of that layout carry the GP
/// hot paths:
///
///  * every forward-substitution and factorization inner loop is a dot
///    product of two packed rows — contiguous, cache-linear reads (the
///    same discipline FlatRows::gatherColumn brought to the dynamic
///    tree's leaf scans);
///
///  * extend() grows the factor by appending one packed row *in place*
///    (amortized O(n) writes via the buffer's geometric growth), where
///    the previous Matrix-backed representation allocated and copied an
///    entire (n+1)^2 matrix per observation — an O(n^2)-copy-per-update
///    bug that made n incremental GP updates cost O(n^3) in copies
///    alone.
///
/// factorize() is panel-blocked and may fork the independent trailing
/// rows of each panel onto a support/Scheduler.  Every element L(I,J) is
/// still produced by the classic scalar recurrence — one k-ordered dot
/// product over the final values of rows I and J — so the blocked,
/// parallel factor is bit-identical to the sequential scalar loop at any
/// worker count and steal order (determinism by construction: work is
/// split *across* independent elements, no dot product's addends are
/// ever reordered).  extend() reproduces the same recurrence for its one
/// new row, which keeps the grown factor bit-identical to refactorizing
/// from scratch.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_LINALG_CHOLESKY_H
#define ALIC_LINALG_CHOLESKY_H

#include "linalg/Matrix.h"

#include <optional>
#include <vector>

namespace alic {

class Scheduler;

/// Lower-triangular Cholesky factor L with A = L L^T, in packed
/// row-major triangular storage.
class Cholesky {
public:
  /// Factorizes symmetric positive-definite \p A.  Returns std::nullopt
  /// if \p A is not (numerically) positive definite.  When \p Workers is
  /// non-null the panel-blocked trailing updates fork onto it; the
  /// result is bit-identical to the sequential run at any worker count
  /// (see the file comment for the argument).
  static std::optional<Cholesky> factorize(const Matrix &A,
                                           Scheduler *Workers = nullptr);

  /// Grows the factor of an n x n matrix A to the factor of the bordered
  /// (n+1) x (n+1) matrix [[A, B], [B^T, C]] in O(n^2) flops and
  /// amortized O(n) copies — the rank-1 extension that lets a GP absorb
  /// one observation without the O(n^3) refactorization.  The new row is
  /// produced by the same recurrence, in the same order, as factorize()
  /// would use, so the grown factor is bit-identical to factorizing the
  /// bordered matrix from scratch.  Returns false (leaving the factor
  /// unchanged) if the bordered matrix is not numerically positive
  /// definite.
  bool extend(RowRef B, double C);

  /// Pre-allocates packed storage for growth to \p Rows rows, so a
  /// run of extend() calls performs no reallocation at all.
  void reserve(size_t Rows) { Packed.reserve(Rows * (Rows + 1) / 2); }

  /// Applies the symmetric rank-1 update A -> A + V V^T to the factor in
  /// O(n^2) via the classic sequence of Givens-style eliminations.  The
  /// dimension is unchanged (contrast extend(), which borders the
  /// matrix).  Unlike extend() this is *not* bitwise-equal to a
  /// refactorization — it is the numerically stable update the
  /// subset-of-regressors GP uses to absorb an observation into its
  /// m x m projected system.
  void rankOneUpdate(RowRef V);

  /// Solves A x = \p B via the factor.
  std::vector<double> solve(const std::vector<double> &B) const;

  /// Solves L y = \p B (forward substitution).
  std::vector<double> solveLower(const std::vector<double> &B) const;

  /// In-place forward substitution: overwrites \p B (size() entries)
  /// with the solution of L y = B.  Identical arithmetic to
  /// solveLower(), without the allocation.
  void solveLowerInPlace(double *B) const;

  /// In-place full solve: overwrites \p B (size() entries) with the
  /// solution of A x = B.  Identical arithmetic to solve(), without the
  /// allocation.
  void solveInPlace(double *B) const;

  /// Blocked multi-RHS forward substitution: \p B holds \p NumRhs
  /// row-major right-hand sides of size() entries each, each overwritten
  /// with its solution of L y = b.  Each right-hand side receives
  /// exactly the arithmetic of solveLowerInPlace() — the factor row is
  /// simply reused across all of them from cache — so the results are
  /// bit-identical to NumRhs independent solves.
  void solveLowerManyInPlace(double *B, size_t NumRhs) const;

  /// Blocked multi-RHS full solve (forward then transposed-backward
  /// substitution) over \p NumRhs row-major right-hand sides; the
  /// back-substitution gathers each column of L once into scratch and
  /// streams it unit-stride through every right-hand side.
  /// Bit-identical to NumRhs independent solveInPlace() calls.
  void solveManyInPlace(double *B, size_t NumRhs) const;

  /// log(det A) = 2 * sum(log diag L).
  double logDeterminant() const;

  /// Dimension of the factored matrix.
  size_t size() const { return N; }

  /// Entry L(I, J) of the factor, J <= I.
  double at(size_t I, size_t J) const { return Packed[I * (I + 1) / 2 + J]; }

  /// The lower-triangular factor, unpacked into a dense matrix (zeros
  /// above the diagonal).  Test/diagnostic helper — hot paths read the
  /// packed rows directly.
  Matrix factor() const;

  /// The packed row-major triangular buffer (size()*(size()+1)/2
  /// entries; row I starts at I*(I+1)/2).
  const std::vector<double> &packed() const { return Packed; }

private:
  Cholesky() = default;

  /// Pointer to packed row \p I (I+1 entries).
  const double *row(size_t I) const { return Packed.data() + I * (I + 1) / 2; }
  double *row(size_t I) { return Packed.data() + I * (I + 1) / 2; }

  size_t N = 0;
  std::vector<double> Packed;
};

} // namespace alic

#endif // ALIC_LINALG_CHOLESKY_H

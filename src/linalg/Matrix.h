//===- linalg/Matrix.h - Dense matrices and vectors -----------*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small dense row-major matrix type: exactly what exact Gaussian-process
/// inference needs (symmetric solves, products), nothing more.  The paper
/// cites the O(n^3) cost of GP inference as the reason to prefer dynamic
/// trees; src/gp builds on this module to reproduce that comparison.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_LINALG_MATRIX_H
#define ALIC_LINALG_MATRIX_H

#include "support/FlatRows.h"

#include <cstddef>
#include <vector>

namespace alic {

/// Dense row-major matrix of doubles.
class Matrix {
public:
  /// Creates an empty 0x0 matrix.
  Matrix() = default;

  /// Creates a \p Rows x \p Cols matrix filled with \p Fill.
  Matrix(size_t Rows, size_t Cols, double Fill = 0.0);

  /// Returns the \p N x \p N identity.
  static Matrix identity(size_t N);

  /// Number of rows.
  size_t rows() const { return NumRows; }
  /// Number of columns.
  size_t cols() const { return NumCols; }

  /// Mutable reference to entry (\p Row, \p Col) of the row-major buffer.
  double &at(size_t Row, size_t Col) { return Data[Row * NumCols + Col]; }
  /// Entry (\p Row, \p Col) of the row-major buffer.
  double at(size_t Row, size_t Col) const { return Data[Row * NumCols + Col]; }

  /// Matrix-matrix product; dimensions must agree.
  Matrix multiply(const Matrix &Rhs) const;

  /// Matrix-vector product; \p X must have cols() entries.
  std::vector<double> multiply(const std::vector<double> &X) const;

  /// Transpose.
  Matrix transpose() const;

  /// Adds \p Value to every diagonal entry (jitter/noise term).
  void addToDiagonal(double Value);

  /// Maximum absolute entry difference against \p Rhs (must match shape).
  double maxAbsDiff(const Matrix &Rhs) const;

private:
  size_t NumRows = 0;
  size_t NumCols = 0;
  std::vector<double> Data;
};

/// Dot product of equally sized vectors.
double dotProduct(const std::vector<double> &A, const std::vector<double> &B);

/// Squared Euclidean distance between equally sized rows (accepts
/// std::vector<double> and FlatRows rows alike via RowRef).
double squaredDistance(RowRef A, RowRef B);

} // namespace alic

#endif // ALIC_LINALG_MATRIX_H

//===- linalg/Matrix.cpp --------------------------------------*- C++ -*-===//

#include "linalg/Matrix.h"

#include "support/Error.h"

#include <cassert>
#include <cmath>

using namespace alic;

Matrix::Matrix(size_t Rows, size_t Cols, double Fill)
    : NumRows(Rows), NumCols(Cols), Data(Rows * Cols, Fill) {}

Matrix Matrix::identity(size_t N) {
  Matrix I(N, N, 0.0);
  for (size_t K = 0; K != N; ++K)
    I.at(K, K) = 1.0;
  return I;
}

Matrix Matrix::multiply(const Matrix &Rhs) const {
  assert(NumCols == Rhs.NumRows && "inner dimensions must agree");
  Matrix Result(NumRows, Rhs.NumCols, 0.0);
  for (size_t I = 0; I != NumRows; ++I)
    for (size_t K = 0; K != NumCols; ++K) {
      double Aik = at(I, K);
      if (Aik == 0.0)
        continue;
      for (size_t J = 0; J != Rhs.NumCols; ++J)
        Result.at(I, J) += Aik * Rhs.at(K, J);
    }
  return Result;
}

std::vector<double> Matrix::multiply(const std::vector<double> &X) const {
  assert(X.size() == NumCols && "vector length must equal column count");
  std::vector<double> Result(NumRows, 0.0);
  for (size_t I = 0; I != NumRows; ++I) {
    double Sum = 0.0;
    for (size_t J = 0; J != NumCols; ++J)
      Sum += at(I, J) * X[J];
    Result[I] = Sum;
  }
  return Result;
}

Matrix Matrix::transpose() const {
  Matrix Result(NumCols, NumRows);
  for (size_t I = 0; I != NumRows; ++I)
    for (size_t J = 0; J != NumCols; ++J)
      Result.at(J, I) = at(I, J);
  return Result;
}

void Matrix::addToDiagonal(double Value) {
  size_t N = NumRows < NumCols ? NumRows : NumCols;
  for (size_t I = 0; I != N; ++I)
    at(I, I) += Value;
}

double Matrix::maxAbsDiff(const Matrix &Rhs) const {
  assert(NumRows == Rhs.NumRows && NumCols == Rhs.NumCols &&
         "shape mismatch in maxAbsDiff");
  double Max = 0.0;
  for (size_t I = 0; I != Data.size(); ++I) {
    double D = std::fabs(Data[I] - Rhs.Data[I]);
    if (D > Max)
      Max = D;
  }
  return Max;
}

double alic::dotProduct(const std::vector<double> &A,
                        const std::vector<double> &B) {
  assert(A.size() == B.size() && "dot product size mismatch");
  double Sum = 0.0;
  for (size_t I = 0; I != A.size(); ++I)
    Sum += A[I] * B[I];
  return Sum;
}

double alic::squaredDistance(RowRef A, RowRef B) {
  assert(A.size() == B.size() && "distance size mismatch");
  double Sum = 0.0;
  for (size_t I = 0; I != A.size(); ++I) {
    double D = A[I] - B[I];
    Sum += D * D;
  }
  return Sum;
}

//===- transform/TransformPlan.h - Per-loop optimization plan -*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A TransformPlan assigns unroll / cache-tile / register-tile factors to
/// the loops of one kernel.  It is the bridge between the tunable space
/// (what the learner manipulates) and both consumers of a configuration:
/// the literal IR rewriter (semantics) and the analytic machine model
/// (performance).
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_TRANSFORM_TRANSFORMPLAN_H
#define ALIC_TRANSFORM_TRANSFORMPLAN_H

#include "ir/AffineExpr.h"
#include "tunable/ParamSpace.h"

#include <map>
#include <string>

namespace alic {

/// Optimization factors for one loop.  A factor of 1 means "off".
struct LoopFactors {
  int Unroll = 1;
  int CacheTile = 1;
  int RegisterTile = 1;
};

/// Assignment of factors to loops plus global binary flags.
class TransformPlan {
public:
  /// Builds the identity plan (all factors 1).
  TransformPlan() = default;

  /// Derives a plan from a configuration: each parameter is routed to its
  /// bound loop according to its ParamKind.  Binary parameters land in
  /// flags() keyed by parameter name.
  static TransformPlan fromConfig(const ParamSpace &Space, const Config &C);

  /// Factors for loop \p Var (identity if never set).
  const LoopFactors &factors(LoopVarId Var) const;
  LoopFactors &factorsMut(LoopVarId Var) { return Factors[Var]; }

  /// All loops with non-identity factors.
  const std::map<LoopVarId, LoopFactors> &loopFactors() const {
    return Factors;
  }

  /// Value of binary flag \p Name (0 when unset).
  int flag(const std::string &Name) const;
  void setFlag(const std::string &Name, int Value) { Flags[Name] = Value; }

  /// Product of all unroll and register-tile factors (code growth proxy).
  double expansionFactor() const;

  /// Human-readable rendering for logs.
  std::string toString() const;

private:
  std::map<LoopVarId, LoopFactors> Factors;
  std::map<std::string, int> Flags;
};

} // namespace alic

#endif // ALIC_TRANSFORM_TRANSFORMPLAN_H

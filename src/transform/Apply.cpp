//===- transform/Apply.cpp ------------------------------------*- C++ -*-===//

#include "transform/Apply.h"

#include "support/Error.h"
#include "support/Format.h"

#include <cassert>

using namespace alic;

/// Rewrites every affine expression in \p Nodes with \p Fn, recursively.
static void
rewriteExprs(std::vector<std::unique_ptr<IrNode>> &Nodes,
             const std::function<AffineExpr(const AffineExpr &)> &Fn) {
  for (auto &Node : Nodes) {
    if (auto *Stmt = nodeDynCast<StmtNode>(Node.get())) {
      for (AffineExpr &Sub : Stmt->Write.Subscripts)
        Sub = Fn(Sub);
      for (ReadTerm &Term : Stmt->Reads)
        for (AffineExpr &Sub : Term.Access.Subscripts)
          Sub = Fn(Sub);
      continue;
    }
    auto *Loop = nodeDynCast<LoopNode>(Node.get());
    Loop->Lower = Fn(Loop->Lower);
    for (AffineExpr &Upper : Loop->Uppers)
      Upper = Fn(Upper);
    rewriteExprs(Loop->Body, Fn);
  }
}

/// Replaces references to \p Var with (\p Var + \p Offset).
static void shiftVar(std::vector<std::unique_ptr<IrNode>> &Nodes,
                     LoopVarId Var, int64_t Offset) {
  rewriteExprs(Nodes, [Var, Offset](const AffineExpr &E) {
    return E.substituteShift(Var, Offset);
  });
}

/// Replaces references to \p From with references to \p To.
static void renameVar(std::vector<std::unique_ptr<IrNode>> &Nodes,
                      LoopVarId From, LoopVarId To) {
  rewriteExprs(Nodes, [From, To](const AffineExpr &E) {
    return E.substituteVar(From, To, /*Scale=*/1, /*Off=*/0);
  });
}

/// Finds the owning list and index of the loop with variable \p Var.
static std::vector<std::unique_ptr<IrNode>> *
findLoopSlot(std::vector<std::unique_ptr<IrNode>> &Nodes, LoopVarId Var,
             size_t &IndexOut) {
  for (size_t I = 0; I != Nodes.size(); ++I) {
    auto *Loop = nodeDynCast<LoopNode>(Nodes[I].get());
    if (!Loop)
      continue;
    if (Loop->Var == Var) {
      IndexOut = I;
      return &Nodes;
    }
    if (auto *Inner = findLoopSlot(Loop->Body, Var, IndexOut))
      return Inner;
  }
  return nullptr;
}

bool alic::tileLoop(Kernel &K, LoopVarId Var, int Tile) {
  if (Tile <= 1)
    return false;
  size_t Index = 0;
  auto *Owner = findLoopSlot(K.topLevel(), Var, Index);
  if (!Owner)
    return false;
  auto *Point = nodeDynCast<LoopNode>((*Owner)[Index].get());
  assert(Point && "slot must hold the loop");
  assert(Point->Uppers.size() == 1 &&
         "tile before unrolling: loop already has guard bounds");

  LoopVarId TileVar = K.addLoopVar(K.loopVarName(Var) + "_t");
  int64_t Stride = int64_t(Tile) * Point->Step;

  // Outer tile-counter loop inherits the original bounds and strides by
  // Tile * Step.
  auto TileLoop = std::make_unique<LoopNode>(TileVar, Point->Lower,
                                             Point->Uppers.front(), Stride);

  // The point loop now covers one tile: [tileVar, tileVar + Tile*Step),
  // still clipped by the original upper bound for the partial final tile.
  AffineExpr TileBase = AffineExpr::var(TileVar);
  AffineExpr TileEnd = AffineExpr::scaledVar(TileVar, 1, Stride);
  Point->addUpperBound(Point->Uppers.front()); // original bound as clip
  Point->Lower = TileBase;
  Point->Uppers.front() = TileEnd;

  TileLoop->append(std::move((*Owner)[Index]));
  (*Owner)[Index] = std::move(TileLoop);
  return true;
}

bool alic::unrollLoop(Kernel &K, LoopVarId Var, int Factor) {
  if (Factor <= 1)
    return false;
  size_t Index = 0;
  auto *Owner = findLoopSlot(K.topLevel(), Var, Index);
  if (!Owner)
    return false;
  auto *Loop = nodeDynCast<LoopNode>((*Owner)[Index].get());
  assert(Loop && "slot must hold the loop");

  int64_t Step = Loop->Step;

  // Fast path: static bounds with a divisible trip count unroll cleanly.
  bool StaticDivisible = false;
  if (Loop->Lower.isConstant() && Loop->Uppers.size() == 1 &&
      Loop->Uppers.front().isConstant()) {
    int64_t Lo = Loop->Lower.constantTerm();
    int64_t Hi = Loop->Uppers.front().constantTerm();
    int64_t Trip = Hi > Lo ? (Hi - Lo + Step - 1) / Step : 0;
    StaticDivisible = Trip % Factor == 0;
  }

  std::vector<std::unique_ptr<IrNode>> NewBody;
  if (StaticDivisible) {
    for (int Copy = 0; Copy != Factor; ++Copy) {
      auto Clone = cloneNodeList(Loop->Body);
      if (Copy != 0)
        shiftVar(Clone, Var, int64_t(Copy) * Step);
      for (auto &Node : Clone)
        NewBody.push_back(std::move(Node));
    }
  } else {
    // General path: each copy runs in a single-iteration guard loop that
    // re-checks the original upper bounds, so partial groups stay exact.
    for (int Copy = 0; Copy != Factor; ++Copy) {
      LoopVarId GuardVar =
          K.addLoopVar(formatString("%s_u%d", K.loopVarName(Var).c_str(),
                                    Copy));
      AffineExpr GuardLo = AffineExpr::scaledVar(Var, 1, int64_t(Copy) * Step);
      AffineExpr GuardHi =
          AffineExpr::scaledVar(Var, 1, int64_t(Copy) * Step + 1);
      auto Guard = std::make_unique<LoopNode>(GuardVar, GuardLo, GuardHi, 1);
      for (const AffineExpr &Upper : Loop->Uppers)
        Guard->addUpperBound(Upper);
      auto Clone = cloneNodeList(Loop->Body);
      renameVar(Clone, Var, GuardVar);
      for (auto &Node : Clone)
        Guard->append(std::move(Node));
      NewBody.push_back(std::move(Guard));
    }
  }

  Loop->Body = std::move(NewBody);
  Loop->Step = Step * Factor;
  return true;
}

Kernel alic::applyPlan(const Kernel &K, const TransformPlan &Plan) {
  Kernel Out(K);
  // Cache tiles first (they must see pristine single-bound loops) ...
  for (const auto &[Var, F] : Plan.loopFactors())
    if (F.CacheTile > 1)
      tileLoop(Out, Var, F.CacheTile);
  // ... then register tiles, then plain unrolls on the point loops.
  for (const auto &[Var, F] : Plan.loopFactors())
    if (F.RegisterTile > 1)
      unrollLoop(Out, Var, F.RegisterTile);
  for (const auto &[Var, F] : Plan.loopFactors())
    if (F.Unroll > 1)
      unrollLoop(Out, Var, F.Unroll);
  return Out;
}

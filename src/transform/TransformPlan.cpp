//===- transform/TransformPlan.cpp ----------------------------*- C++ -*-===//

#include "transform/TransformPlan.h"

#include "support/Error.h"
#include "support/Format.h"

#include <cassert>

using namespace alic;

TransformPlan TransformPlan::fromConfig(const ParamSpace &Space,
                                        const Config &C) {
  assert(C.size() == Space.numParams() && "config arity mismatch");
  TransformPlan Plan;
  for (size_t I = 0; I != Space.numParams(); ++I) {
    const Param &P = Space.param(I);
    int Value = P.value(C[I]);
    switch (P.kind()) {
    case ParamKind::Unroll:
      assert(P.loopIndex() >= 0 && "unroll parameter without a loop");
      Plan.Factors[static_cast<LoopVarId>(P.loopIndex())].Unroll = Value;
      break;
    case ParamKind::CacheTile:
      assert(P.loopIndex() >= 0 && "tile parameter without a loop");
      Plan.Factors[static_cast<LoopVarId>(P.loopIndex())].CacheTile = Value;
      break;
    case ParamKind::RegisterTile:
      assert(P.loopIndex() >= 0 && "register-tile parameter without a loop");
      Plan.Factors[static_cast<LoopVarId>(P.loopIndex())].RegisterTile =
          Value;
      break;
    case ParamKind::Binary:
    case ParamKind::Generic:
      Plan.Flags[P.name()] = Value;
      break;
    }
  }
  return Plan;
}

const LoopFactors &TransformPlan::factors(LoopVarId Var) const {
  static const LoopFactors Identity;
  auto It = Factors.find(Var);
  return It == Factors.end() ? Identity : It->second;
}

int TransformPlan::flag(const std::string &Name) const {
  auto It = Flags.find(Name);
  return It == Flags.end() ? 0 : It->second;
}

double TransformPlan::expansionFactor() const {
  double Product = 1.0;
  for (const auto &[Var, F] : Factors)
    Product *= double(F.Unroll) * double(F.RegisterTile);
  return Product;
}

std::string TransformPlan::toString() const {
  std::vector<std::string> Parts;
  for (const auto &[Var, F] : Factors)
    Parts.push_back(formatString("v%u{U=%d,T=%d,RT=%d}", Var, F.Unroll,
                                 F.CacheTile, F.RegisterTile));
  for (const auto &[Name, Value] : Flags)
    Parts.push_back(formatString("%s=%d", Name.c_str(), Value));
  return joinStrings(Parts, " ");
}

//===- transform/Apply.h - Literal loop transformations -------*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source-level loop transformations on the kernel IR, mirroring what the
/// Orio transformation engine does to SPAPT kernels:
///
///  * cache tiling   — strip-mine a loop into a tile-counter loop and an
///                     intra-tile point loop bounded by min(tile end, old
///                     bound);
///  * loop unrolling — replicate the body with shifted subscripts.  When
///                     the trip count is static and divisible the copies
///                     are emitted directly; otherwise each copy is
///                     wrapped in a single-iteration guard loop so partial
///                     final tiles stay exact;
///  * register tiling— mechanically identical to unrolling here (the
///                     factors differ in how the machine model charges
///                     registers), applied before plain unrolling.
///
/// Every transformation is semantics-preserving by construction: the
/// replicated statement instances execute in exactly the order the
/// original loop would have, which tests/transform_test.cpp verifies with
/// the reference interpreter.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_TRANSFORM_APPLY_H
#define ALIC_TRANSFORM_APPLY_H

#include "ir/Kernel.h"
#include "transform/TransformPlan.h"

namespace alic {

/// Strip-mines the loop with variable \p Var by \p Tile.  Introduces a new
/// loop variable named "<var>_t".  Returns false if the loop is absent or
/// \p Tile <= 1 (kernel unchanged).
bool tileLoop(Kernel &K, LoopVarId Var, int Tile);

/// Unrolls the loop with variable \p Var by \p Factor (with remainder
/// guards when the trip count is unknown or not divisible).  Returns false
/// if the loop is absent or \p Factor <= 1.
bool unrollLoop(Kernel &K, LoopVarId Var, int Factor);

/// Applies a whole plan: cache tiles first (outermost semantics), then
/// register tiles, then unrolls.  Returns the transformed copy.
Kernel applyPlan(const Kernel &K, const TransformPlan &Plan);

} // namespace alic

#endif // ALIC_TRANSFORM_APPLY_H

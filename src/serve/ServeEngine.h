//===- serve/ServeEngine.h - Session-multiplexed tuning service *- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The in-process core of `alic_serve`: many concurrent *tuning sessions*
/// — each an ActiveLearner plus an append-only observation log —
/// multiplexed onto one work-stealing Scheduler.
///
/// A session speaks the request/response shape of the learning loop:
/// suggest() returns the configuration(s) the learner wants measured next
/// plus a ticket, the client measures them however it likes (a real
/// compile-and-run, or a virtual profiler in the examples and benches),
/// and observe(ticket, costs) folds the measurements in.  Before the
/// first costs arrive the learner serves its sampling-plan seed
/// configurations without consulting any model (explore-only serving).
///
/// **Crash safety.**  Every session checkpoints to
/// `<state-dir>/sess-<id>.alsv` through the same tmp+rename discipline as
/// the campaign ledger.  The snapshot stores only (spec, seed, the
/// sequence of observed cost vectors) — the learner's full state is a
/// pure function of those (see core/ActiveLearner.h), so restore *replays*
/// the log through suggest()/observe() and lands bit-identically where
/// the killed process stood: the next suggestion after a restore is
/// byte-identical to the one an uninterrupted engine would have issued,
/// at any scheduler worker count.  serve_test pins this.
///
/// **Thread-safety.**  All public methods are safe to call concurrently
/// from any number of threads.  The engine holds one mutex over the
/// session table and one per session; sessions are reference-counted, so
/// a closeSession() racing an in-flight call on the same session cannot
/// destroy state the other thread still holds (the in-flight call simply
/// observes the session as closed).  A session's learner additionally
/// fans its internal work out across the shared scheduler (nested
/// parallelism — safe because inner shards never take session locks).
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_SERVE_SERVEENGINE_H
#define ALIC_SERVE_SERVEENGINE_H

#include "core/ActiveLearner.h"
#include "exp/Runner.h"

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace alic {

/// Everything that defines a tuning session's behaviour.  Two sessions
/// with equal specs (and the same observed costs) evolve identically —
/// the spec plus the observation log *is* the session state.
struct SessionSpec {
  /// SPAPT benchmark whose configuration space is tuned (spapt/Suite
  /// names); must be one of spaptBenchmarkNames().
  std::string Benchmark = "gemver";
  /// Surrogate family driving selection.
  ModelKind Model = ModelKind::DynaTree;
  /// Candidate-scoring criterion.
  ScorerKind Scorer = ScorerKind::Alc;
  /// Observation plan (the paper's sequential plan by default).
  SamplingPlan Plan = SamplingPlan::sequential(35);
  /// Examples labelled per suggest/observe round trip.
  unsigned BatchSize = 1;
  /// Root seed of the learner's random streams.
  uint64_t Seed = 1;
  /// Seed of the shared dataset's sampling streams; sessions sharing
  /// (Benchmark, Scale, DatasetSeed) share one in-memory dataset.
  uint64_t DatasetSeed = 0xa11cebe7;
  /// Query policy deciding whether each model-guided pick is measured or
  /// skipped (core/QueryPolicy.h).  Chosen at `open`; skip decisions are
  /// visible in suggest replies and replay deterministically on restore.
  QueryPolicyConfig Query;
  /// Size parameters (pool size, ninit, nmax, nc, particle count, ...).
  ExperimentScale Scale = ExperimentScale::fromEnv();
};

/// Engine construction knobs.
struct ServeOptions {
  /// Directory for session snapshots (created on demand).  Empty
  /// disables checkpointing and restoreSessions().
  std::string StateDir;
  /// Dataset blob cache handed to loadOrBuildDataset; empty disables the
  /// on-disk layer (the in-memory layer always applies).
  std::string DatasetCacheDir;
  /// Scheduler workers shared by every session's learner.  0 runs all
  /// learner-internal work inline with no scheduler at all; results are
  /// bit-identical either way (the scheduler determinism contract).
  unsigned Threads = 0;
  /// Victim-selection seed for the scheduler (stress-test knob; results
  /// never depend on it).
  uint64_t StealSeed = 0x57ea1ull;
  /// Snapshot every k-th observe() (1 = every observe).  Restores replay
  /// only what was snapshotted, so larger values trade crash freshness
  /// for write traffic; the snapshot written by the *next* observe
  /// catches the session up again.
  unsigned CheckpointEveryObserves = 1;
};

/// A point-in-time summary of one session, as reported by sessionInfo().
struct SessionInfo {
  /// Lifecycle phase the session's next suggestion is (or would be) in.
  SuggestPhase Phase = SuggestPhase::Explore;
  /// The learner's progress counters.
  LearnerStats Stats;
  /// Sum of every cost the client has reported, in seconds.
  double TotalCostSeconds = 0.0;
  /// Number of observe() calls absorbed so far.
  size_t Observes = 0;
  /// True once the completion criterion is met.
  bool Done = false;
  /// True when the last snapshot attempt failed (disk full, injected
  /// fault, ...).  The session keeps serving; the next observe on the
  /// checkpoint cadence — or a snapshotAll() — retries the write.
  bool SnapshotDirty = false;
};

/// The session multiplexer.  One instance per daemon (or per test);
/// construct, optionally restoreSessions(), then serve.
class ServeEngine {
public:
  /// Starts the engine (and its scheduler, when Opts.Threads > 0).
  explicit ServeEngine(ServeOptions Opts);
  /// Drops all sessions (snapshots stay on disk) and joins the scheduler.
  ~ServeEngine();

  ServeEngine(const ServeEngine &) = delete;            ///< non-copyable
  ServeEngine &operator=(const ServeEngine &) = delete; ///< non-copyable

  /// Creates session \p Id from \p Spec.  Ids are 1-64 characters from
  /// [A-Za-z0-9._-] (they name snapshot files).  Fails — returning false
  /// and setting \p Err — on a malformed id, a duplicate id, or an
  /// unknown benchmark.  On success the session is immediately
  /// serveable and (with a StateDir) an empty snapshot is persisted.
  bool openSession(const std::string &Id, const SessionSpec &Spec,
                   std::string &Err);

  /// Copies session \p Id's next suggestion into \p Out: the first call
  /// returns the seed configurations (explore phase), later calls run
  /// model-guided selection, and a completed session returns an empty
  /// suggestion with SuggestPhase::Done.  With a non-Always query policy
  /// a suggestion may carry skipped configs (Suggestion::Skipped) or be
  /// all-skip (SuggestPhase::Skip, observed with zero costs).  Idempotent
  /// while a suggestion is outstanding — a client that lost the reply can
  /// re-ask and receives the identical ticket, configs, and skips.
  bool suggest(const std::string &Id, Suggestion &Out, std::string &Err);

  /// Reports measured costs for the outstanding suggestion of session
  /// \p Id.  \p Costs holds ObservationsPerConfig values per suggested
  /// configuration, grouped by configuration.  Fails on an unknown
  /// session, a ticket that is not the outstanding one, or a wrong cost
  /// count; the session is unchanged on failure.  On success the event
  /// is appended to the session log and, on the configured cadence, the
  /// session is re-snapshotted atomically.
  bool observe(const std::string &Id, uint64_t Ticket,
               const std::vector<double> &Costs, std::string &Err);

  /// Predicts over the session's held-out test subset and returns the
  /// RMSE — the paper's accuracy metric, queryable mid-session.  Fails
  /// before the first fit (explore phase).
  bool evaluate(const std::string &Id, double &Rmse, std::string &Err);

  /// Fills \p Out with session \p Id's current phase and counters.
  bool sessionInfo(const std::string &Id, SessionInfo &Out,
                   std::string &Err) const;

  /// Drops session \p Id from memory and deletes its snapshot.  False
  /// when the id is unknown.
  bool closeSession(const std::string &Id);

  /// Loads every `sess-*.alsv` snapshot under StateDir and replays each
  /// observation log through a fresh learner, reconstructing all session
  /// states bit-identically (see file comment).  Unreadable or corrupt
  /// snapshots are skipped — a crash mid-rename cannot take the daemon
  /// down — and their count is reported via \p Skipped.  Returns the
  /// number of sessions restored.  Call once, before serving.
  size_t restoreSessions(size_t *Skipped = nullptr);

  /// Snapshots every live session that has unsnapshotted observations or
  /// a dirty (previously failed) snapshot.  Returns the number of
  /// sessions whose snapshot is now clean and current.  The daemon's
  /// SIGTERM drain calls this so a graceful shutdown never loses
  /// observations, whatever the checkpoint cadence.
  size_t snapshotAll();

  /// Ids of all live sessions, sorted.
  std::vector<std::string> sessionIds() const;

  /// Number of live sessions.
  size_t sessionCount() const;

  /// The shared scheduler, or nullptr when Threads was 0.
  Scheduler *scheduler() { return Sched.get(); }

private:
  struct Session;

  bool validId(const std::string &Id) const;
  std::string snapshotPath(const std::string &Id) const;
  std::shared_ptr<const Dataset> datasetFor(const SessionSpec &Spec);
  std::shared_ptr<Session> buildSession(const SessionSpec &Spec,
                                        std::string &Err);
  void snapshot(const std::string &Id, Session &S);
  /// Returns a reference-counted handle copied under EngineMutex, so the
  /// session outlives any concurrent closeSession(); callers must still
  /// take the session mutex and re-check its Closed flag.
  std::shared_ptr<Session> find(const std::string &Id) const;

  ServeOptions Opts;
  std::unique_ptr<Scheduler> Sched;

  mutable std::mutex EngineMutex;
  /// Ordered so sessionIds() is deterministic.
  std::map<std::string, std::shared_ptr<Session>> Sessions;
  /// In-memory dataset cache keyed by (benchmark, scale, dataset seed);
  /// 10k sessions over one benchmark share one dataset.
  std::map<std::string, std::shared_ptr<const Dataset>> Datasets;
};

} // namespace alic

#endif // ALIC_SERVE_SERVEENGINE_H

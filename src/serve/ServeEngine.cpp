//===- serve/ServeEngine.cpp ----------------------------------*- C++ -*-===//

#include "serve/ServeEngine.h"

#include "spapt/Suite.h"
#include "stats/Metrics.h"
#include "support/Error.h"
#include "support/FailPoint.h"
#include "support/Scheduler.h"
#include "support/Serialize.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

using namespace alic;

namespace {

constexpr uint32_t SnapshotMagic = 0x414c5356; // "ALSV"
// Version 2 added the query-policy fields; older snapshots are treated
// as unreadable (skipped on restore), never misparsed.
constexpr uint32_t SnapshotVersion = 2;

void writeSpec(ByteWriter &W, const SessionSpec &Spec) {
  W.writeString(Spec.Benchmark);
  W.writeU8(uint8_t(Spec.Model));
  W.writeU8(uint8_t(Spec.Scorer));
  W.writeU8(uint8_t(Spec.Query.Kind));
  W.writeDouble(Spec.Query.Mellowness);
  W.writeDouble(Spec.Query.RangeC1);
  W.writeDouble(Spec.Query.AbsFloor);
  W.writeDouble(Spec.Query.RelFloor);
  W.writeU8(uint8_t(Spec.Plan.PlanKind));
  W.writeU32(Spec.Plan.FixedObservations);
  W.writeU32(Spec.Plan.MaxObservationsPerExample);
  W.writeU32(Spec.BatchSize);
  W.writeU64(Spec.Seed);
  W.writeU64(Spec.DatasetSeed);
  const ExperimentScale &S = Spec.Scale;
  W.writeU64(S.NumConfigs);
  W.writeDouble(S.TrainFraction);
  W.writeU32(S.MeanObservations);
  W.writeU32(S.NumInitial);
  W.writeU32(S.InitObservations);
  W.writeU32(S.MaxTrainingExamples);
  W.writeU32(S.CandidatesPerIteration);
  W.writeU32(S.ReferenceSetSize);
  W.writeU32(S.Particles);
  W.writeU32(S.Repetitions);
  W.writeU32(S.EvalEvery);
  W.writeU64(S.TestSubset);
  W.writeU32(S.ObservationCap);
}

bool readSpec(ByteReader &R, SessionSpec &Spec) {
  uint8_t Model = 0, Scorer = 0, PolicyKind = 0, PlanKind = 0;
  uint32_t FixedObs = 0, MaxObs = 0, Batch = 0;
  R.readString(Spec.Benchmark);
  R.readU8(Model);
  R.readU8(Scorer);
  R.readU8(PolicyKind);
  R.readDouble(Spec.Query.Mellowness);
  R.readDouble(Spec.Query.RangeC1);
  R.readDouble(Spec.Query.AbsFloor);
  R.readDouble(Spec.Query.RelFloor);
  R.readU8(PlanKind);
  R.readU32(FixedObs);
  R.readU32(MaxObs);
  R.readU32(Batch);
  R.readU64(Spec.Seed);
  R.readU64(Spec.DatasetSeed);
  ExperimentScale &S = Spec.Scale;
  uint64_t NumConfigs = 0, TestSubset = 0;
  R.readU64(NumConfigs);
  R.readDouble(S.TrainFraction);
  R.readU32(S.MeanObservations);
  R.readU32(S.NumInitial);
  R.readU32(S.InitObservations);
  R.readU32(S.MaxTrainingExamples);
  R.readU32(S.CandidatesPerIteration);
  R.readU32(S.ReferenceSetSize);
  R.readU32(S.Particles);
  R.readU32(S.Repetitions);
  R.readU32(S.EvalEvery);
  R.readU64(TestSubset);
  R.readU32(S.ObservationCap);
  if (!R.ok() || Model > 2 || Scorer > 2 || PolicyKind > 2 || PlanKind > 1)
    return false;
  Spec.Model = ModelKind(Model);
  Spec.Scorer = ScorerKind(Scorer);
  Spec.Query.Kind = QueryPolicyKind(PolicyKind);
  Spec.Plan.PlanKind = SamplingPlan::Kind(PlanKind);
  Spec.Plan.FixedObservations = FixedObs;
  Spec.Plan.MaxObservationsPerExample = MaxObs;
  Spec.BatchSize = Batch;
  S.NumConfigs = size_t(NumConfigs);
  S.TestSubset = size_t(TestSubset);
  return true;
}

/// Raw bits of a double, for cache keys (0.75 and 0.7500001 must not
/// collide into one key through decimal formatting).
uint64_t doubleBits(double Value) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(Value), "double is not 64-bit");
  __builtin_memcpy(&Bits, &Value, sizeof(Bits));
  return Bits;
}

} // namespace

struct ServeEngine::Session {
  SessionSpec Spec;
  std::unique_ptr<SpaptBenchmark> Bench;
  std::shared_ptr<const Dataset> Data;
  std::unique_ptr<SurrogateModel> Model;
  std::unique_ptr<ActiveLearner> Learner;
  /// Append-only observation log; with Spec, the whole session state.
  std::vector<std::vector<double>> Events;
  double TotalCostSeconds = 0.0;
  unsigned SinceSnapshot = 0;
  /// The last snapshot attempt failed; SinceSnapshot is pinned at the
  /// cadence so the next observe retries (degrade, never abort).
  bool DirtySnapshot = false;
  /// Set (under M) by closeSession.  An in-flight call that resolved the
  /// session just before it left the table sees this after locking M and
  /// reports the session as unknown instead of mutating a closed one.
  bool Closed = false;
  std::mutex M;
};

ServeEngine::ServeEngine(ServeOptions Opts) : Opts(std::move(Opts)) {
  if (this->Opts.Threads > 0) {
    Scheduler::Options SO;
    SO.Threads = this->Opts.Threads;
    SO.StealSeed = this->Opts.StealSeed;
    Sched = std::make_unique<Scheduler>(SO);
  }
  if (!this->Opts.StateDir.empty())
    std::filesystem::create_directories(this->Opts.StateDir);
  if (this->Opts.CheckpointEveryObserves == 0)
    this->Opts.CheckpointEveryObserves = 1;
}

ServeEngine::~ServeEngine() = default;

bool ServeEngine::validId(const std::string &Id) const {
  if (Id.empty() || Id.size() > 64)
    return false;
  for (char C : Id) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '.' || C == '_' || C == '-';
    if (!Ok)
      return false;
  }
  return true;
}

std::string ServeEngine::snapshotPath(const std::string &Id) const {
  return Opts.StateDir + "/sess-" + Id + ".alsv";
}

std::shared_ptr<const Dataset>
ServeEngine::datasetFor(const SessionSpec &Spec) {
  // Keyed on everything buildDataset consumes; called under EngineMutex.
  const ExperimentScale &S = Spec.Scale;
  std::string Key = Spec.Benchmark + "|" + std::to_string(S.NumConfigs) +
                    "|" + std::to_string(doubleBits(S.TrainFraction)) + "|" +
                    std::to_string(S.MeanObservations) + "|" +
                    std::to_string(Spec.DatasetSeed);
  auto It = Datasets.find(Key);
  if (It != Datasets.end())
    return It->second;
  auto B = createSpaptBenchmark(Spec.Benchmark);
  auto D = std::make_shared<Dataset>(
      loadOrBuildDataset(*B, S.NumConfigs, S.TrainFraction,
                         S.MeanObservations, Spec.DatasetSeed,
                         Opts.DatasetCacheDir));
  Datasets.emplace(Key, D);
  return D;
}

std::shared_ptr<ServeEngine::Session>
ServeEngine::buildSession(const SessionSpec &Spec, std::string &Err) {
  const std::vector<std::string> &Names = spaptBenchmarkNames();
  if (std::find(Names.begin(), Names.end(), Spec.Benchmark) == Names.end()) {
    Err = "unknown benchmark '" + Spec.Benchmark + "'";
    return nullptr;
  }
  auto S = std::make_shared<Session>();
  S->Spec = Spec;
  S->Bench = createSpaptBenchmark(Spec.Benchmark);
  S->Data = datasetFor(Spec);
  S->Model = makeSurrogateModel(Spec.Model, Spec.Scale, Spec.Seed);

  ActiveLearnerConfig Cfg;
  Spec.Scale.applyTo(Cfg);
  Cfg.Scorer = Spec.Scorer;
  Cfg.BatchSize = std::max(1u, Spec.BatchSize);
  Cfg.Seed = Spec.Seed;
  Cfg.Query = Spec.Query;
  S->Learner = std::make_unique<ActiveLearner>(
      *S->Bench, *S->Model, S->Data->Norm, S->Data->TrainPool, Spec.Plan,
      Cfg, Sched.get());
  return S;
}

void ServeEngine::snapshot(const std::string &Id, Session &S) {
  if (Opts.StateDir.empty())
    return;
  ByteWriter W;
  W.writeU32(SnapshotMagic);
  W.writeU32(SnapshotVersion);
  W.writeString(Id);
  writeSpec(W, S.Spec);
  W.writeU64(S.Events.size());
  for (const std::vector<double> &Costs : S.Events)
    W.writeDoubles(Costs);
  Status St;
  FailOutcome F = ALIC_FAILPOINT("snapshot.write");
  if (F.Fire)
    St = Status::failure("snapshot " + snapshotPath(Id) + " (injected)",
                         F.Errno);
  else
    St = W.writeFileDurable(snapshotPath(Id));
  if (!St.ok()) {
    // Degrade: the session keeps serving from memory; pinning the counter
    // at the cadence makes the very next observe (or snapshotAll) retry.
    S.DirtySnapshot = true;
    S.SinceSnapshot = Opts.CheckpointEveryObserves;
    std::fprintf(stderr,
                 "alic_serve: snapshot of session '%s' failed: %s "
                 "(errno %d); serving from memory, will retry\n",
                 Id.c_str(), St.message().c_str(), St.errnoValue());
    return;
  }
  S.DirtySnapshot = false;
  S.SinceSnapshot = 0;
}

std::shared_ptr<ServeEngine::Session>
ServeEngine::find(const std::string &Id) const {
  std::lock_guard<std::mutex> Lock(EngineMutex);
  auto It = Sessions.find(Id);
  return It == Sessions.end() ? nullptr : It->second;
}

bool ServeEngine::openSession(const std::string &Id, const SessionSpec &Spec,
                              std::string &Err) {
  if (!validId(Id)) {
    Err = "invalid session id (want 1-64 chars of [A-Za-z0-9._-])";
    return false;
  }
  std::lock_guard<std::mutex> Lock(EngineMutex);
  if (Sessions.count(Id)) {
    Err = "session '" + Id + "' already exists";
    return false;
  }
  std::shared_ptr<Session> S = buildSession(Spec, Err);
  if (!S)
    return false;
  snapshot(Id, *S);
  Sessions.emplace(Id, std::move(S));
  return true;
}

bool ServeEngine::suggest(const std::string &Id, Suggestion &Out,
                          std::string &Err) {
  std::shared_ptr<Session> S = find(Id);
  if (!S) {
    Err = "unknown session '" + Id + "'";
    return false;
  }
  std::lock_guard<std::mutex> Lock(S->M);
  if (S->Closed) {
    Err = "unknown session '" + Id + "'";
    return false;
  }
  Out = S->Learner->suggest();
  return true;
}

bool ServeEngine::observe(const std::string &Id, uint64_t Ticket,
                          const std::vector<double> &Costs,
                          std::string &Err) {
  std::shared_ptr<Session> S = find(Id);
  if (!S) {
    Err = "unknown session '" + Id + "'";
    return false;
  }
  std::lock_guard<std::mutex> Lock(S->M);
  if (S->Closed) {
    Err = "unknown session '" + Id + "'";
    return false;
  }
  if (!S->Learner->suggestionOutstanding()) {
    Err = "no suggestion outstanding (call suggest first)";
    return false;
  }
  const Suggestion &Want = S->Learner->suggest();
  if (Ticket != Want.Ticket) {
    Err = "stale ticket " + std::to_string(Ticket) + " (outstanding is " +
          std::to_string(Want.Ticket) + ")";
    return false;
  }
  size_t WantCosts = Want.Configs.size() * Want.ObservationsPerConfig;
  if (Costs.size() != WantCosts) {
    Err = "expected " + std::to_string(WantCosts) + " cost(s), got " +
          std::to_string(Costs.size());
    return false;
  }
  if (!S->Learner->observe(Ticket, Costs)) {
    Err = "learner rejected the observation";
    return false;
  }
  S->Events.push_back(Costs);
  for (double C : Costs)
    S->TotalCostSeconds += C;
  if (++S->SinceSnapshot >= Opts.CheckpointEveryObserves)
    snapshot(Id, *S);
  return true;
}

bool ServeEngine::evaluate(const std::string &Id, double &Rmse,
                           std::string &Err) {
  std::shared_ptr<Session> S = find(Id);
  if (!S) {
    Err = "unknown session '" + Id + "'";
    return false;
  }
  std::lock_guard<std::mutex> Lock(S->M);
  if (S->Closed) {
    Err = "unknown session '" + Id + "'";
    return false;
  }
  if (!S->Learner->seeded()) {
    Err = "session has no model yet (still exploring)";
    return false;
  }
  const Dataset &D = *S->Data;
  size_t NumEval = std::min(S->Spec.Scale.TestSubset, D.TestFeatures.size());
  if (NumEval == 0) {
    Err = "empty test subset";
    return false;
  }
  std::vector<double> Pred(NumEval), Actual(NumEval);
  for (size_t I = 0; I != NumEval; ++I) {
    Pred[I] = S->Model->predict(D.TestFeatures[I]).Mean;
    Actual[I] = D.TestMeans[I];
  }
  Rmse = rootMeanSquaredError(Pred, Actual);
  return true;
}

bool ServeEngine::sessionInfo(const std::string &Id, SessionInfo &Out,
                              std::string &Err) const {
  std::shared_ptr<Session> S = find(Id);
  if (!S) {
    Err = "unknown session '" + Id + "'";
    return false;
  }
  std::lock_guard<std::mutex> Lock(S->M);
  if (S->Closed) {
    Err = "unknown session '" + Id + "'";
    return false;
  }
  Out.Stats = S->Learner->stats();
  Out.TotalCostSeconds = S->TotalCostSeconds;
  Out.Observes = S->Events.size();
  Out.Done = S->Learner->done();
  Out.SnapshotDirty = S->DirtySnapshot;
  if (Out.Done)
    Out.Phase = SuggestPhase::Done;
  else if (!S->Learner->seeded())
    Out.Phase = SuggestPhase::Explore;
  else if (const Suggestion *Cur = S->Learner->outstanding())
    // Surface an all-skip round as such: the client's next move is an
    // empty observe, not a measurement.
    Out.Phase = Cur->Phase;
  else
    Out.Phase = SuggestPhase::Refine;
  return true;
}

bool ServeEngine::closeSession(const std::string &Id) {
  std::shared_ptr<Session> Doomed;
  {
    std::lock_guard<std::mutex> Lock(EngineMutex);
    auto It = Sessions.find(Id);
    if (It == Sessions.end())
      return false;
    Doomed = std::move(It->second);
    Sessions.erase(It);
  }
  // Any in-flight call that resolved the session just before it left the
  // table either finishes before this lock (its snapshot, if any, lands
  // before the remove below) or sees Closed and bails; the shared_ptr it
  // holds keeps the Session alive either way.
  {
    std::lock_guard<std::mutex> Lock(Doomed->M);
    Doomed->Closed = true;
  }
  if (!Opts.StateDir.empty()) {
    std::error_code Ec;
    std::filesystem::remove(snapshotPath(Id), Ec);
  }
  return true;
}

size_t ServeEngine::restoreSessions(size_t *Skipped) {
  size_t Bad = 0, Restored = 0;
  if (Skipped)
    *Skipped = 0;
  if (Opts.StateDir.empty())
    return 0;
  std::vector<std::string> Paths;
  {
    std::error_code Ec;
    std::filesystem::directory_iterator Dir(Opts.StateDir, Ec);
    if (!Ec)
      for (const auto &Entry : Dir) {
        std::string Name = Entry.path().filename().string();
        if (Name.rfind("sess-", 0) == 0 && Name.size() > 10 &&
            Name.substr(Name.size() - 5) == ".alsv")
          Paths.push_back(Entry.path().string());
      }
  }
  // Deterministic restore order (directory iteration order is not).
  std::sort(Paths.begin(), Paths.end());

  for (const std::string &Path : Paths) {
    ByteReader R({});
    uint32_t Magic = 0, Version = 0;
    std::string Id;
    SessionSpec Spec;
    uint64_t NumEvents = 0;
    if (ALIC_FAILPOINT("snapshot.restore").Fire)
      goto corrupt; // injected unreadable snapshot
    if (!ByteReader::fromFile(Path, R))
      goto corrupt;
    R.readU32(Magic);
    R.readU32(Version);
    R.readString(Id);
    if (!R.ok() || Magic != SnapshotMagic || Version != SnapshotVersion ||
        !validId(Id))
      goto corrupt;
    if (!readSpec(R, Spec))
      goto corrupt;
    R.readU64(NumEvents);
    // Each event is at least a u64 length prefix.
    if (!R.ok() || NumEvents > R.remaining() / 8)
      goto corrupt;
    {
      std::vector<std::vector<double>> Events;
      Events.resize(size_t(NumEvents));
      for (std::vector<double> &Costs : Events)
        if (!R.readDoubles(Costs))
          goto corrupt;
      if (!R.atEnd())
        goto corrupt;

      std::lock_guard<std::mutex> Lock(EngineMutex);
      if (Sessions.count(Id))
        goto corrupt; // duplicate snapshot for one id
      std::string Err;
      std::shared_ptr<Session> S = buildSession(Spec, Err);
      if (!S)
        goto corrupt;
      // Replay: state is a pure function of (spec, cost sequence), so
      // driving the recorded costs through the deterministic loop lands
      // exactly where the previous process stood.
      bool Replayed = true;
      for (const std::vector<double> &Costs : Events) {
        const Suggestion &Want = S->Learner->suggest();
        if (Want.Phase == SuggestPhase::Done ||
            !S->Learner->observe(Want.Ticket, Costs)) {
          Replayed = false;
          break;
        }
        for (double C : Costs)
          S->TotalCostSeconds += C;
      }
      if (!Replayed)
        goto corrupt;
      S->Events = std::move(Events);
      Sessions.emplace(Id, std::move(S));
      ++Restored;
      continue;
    }
  corrupt:
    ++Bad;
  }
  if (Skipped)
    *Skipped = Bad;
  return Restored;
}

size_t ServeEngine::snapshotAll() {
  if (Opts.StateDir.empty())
    return 0;
  std::vector<std::pair<std::string, std::shared_ptr<Session>>> Live;
  {
    std::lock_guard<std::mutex> Lock(EngineMutex);
    for (const auto &[Id, S] : Sessions)
      Live.emplace_back(Id, S);
  }
  size_t Clean = 0;
  for (auto &[Id, S] : Live) {
    std::lock_guard<std::mutex> Lock(S->M);
    if (S->Closed)
      continue;
    if (S->SinceSnapshot > 0 || S->DirtySnapshot)
      snapshot(Id, *S);
    if (!S->DirtySnapshot)
      ++Clean;
  }
  return Clean;
}

std::vector<std::string> ServeEngine::sessionIds() const {
  std::lock_guard<std::mutex> Lock(EngineMutex);
  std::vector<std::string> Ids;
  Ids.reserve(Sessions.size());
  for (const auto &[Id, S] : Sessions)
    Ids.push_back(Id);
  return Ids;
}

size_t ServeEngine::sessionCount() const {
  std::lock_guard<std::mutex> Lock(EngineMutex);
  return Sessions.size();
}

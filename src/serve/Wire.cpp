//===- serve/Wire.cpp -----------------------------------------*- C++ -*-===//

#include "serve/Wire.h"

#include "serve/ServeEngine.h"
#include "support/Json.h"

#include <cstdio>

using namespace alic;

namespace {

std::string errorReply(const std::string &Message) {
  return "{\"ok\":false,\"error\":\"" + jsonEscape(Message) + "\"}";
}

const char *phaseToken(SuggestPhase Phase) {
  switch (Phase) {
  case SuggestPhase::Explore:
    return "explore";
  case SuggestPhase::Refine:
    return "refine";
  case SuggestPhase::Skip:
    return "skip";
  case SuggestPhase::Done:
    return "done";
  }
  return "done";
}

/// Reads an optional field; true when absent (keeping the default) or
/// present with the right type, false on a type/value error.
bool optionalString(const JsonValue &Obj, const char *Name, std::string &Out,
                    std::string &Err) {
  const JsonValue *F = Obj.field(Name);
  if (!F)
    return true;
  if (F->K != JsonValue::Kind::String) {
    Err = std::string("field '") + Name + "' must be a string";
    return false;
  }
  Out = F->Str;
  return true;
}

bool optionalU64(const JsonValue &Obj, const char *Name, uint64_t &Out,
                 std::string &Err) {
  const JsonValue *F = Obj.field(Name);
  if (!F)
    return true;
  if (F->K != JsonValue::Kind::Number || F->Number < 0) {
    Err = std::string("field '") + Name + "' must be a non-negative number";
    return false;
  }
  Out = uint64_t(F->Number);
  return true;
}

/// Parses the optional `spec` object of an `open` request into \p Spec
/// (fields missing from the wire keep their SessionSpec defaults).
bool parseSpec(const JsonValue &Root, SessionSpec &Spec, std::string &Err) {
  const JsonValue *S = Root.field("spec");
  if (!S)
    return true;
  if (S->K != JsonValue::Kind::Object) {
    Err = "field 'spec' must be an object";
    return false;
  }
  if (!optionalString(*S, "benchmark", Spec.Benchmark, Err))
    return false;

  std::string Model;
  if (!optionalString(*S, "model", Model, Err))
    return false;
  if (Model == "gp")
    Spec.Model = ModelKind::Gp;
  else if (Model == "gp_sor")
    Spec.Model = ModelKind::GpSor;
  else if (Model == "dynatree" || Model.empty())
    Spec.Model = ModelKind::DynaTree;
  else {
    Err = "unknown model '" + Model + "' (want dynatree|gp|gp_sor)";
    return false;
  }

  std::string Scorer;
  if (!optionalString(*S, "scorer", Scorer, Err))
    return false;
  if (Scorer == "alm")
    Spec.Scorer = ScorerKind::Alm;
  else if (Scorer == "random")
    Spec.Scorer = ScorerKind::Random;
  else if (Scorer == "alc" || Scorer.empty())
    Spec.Scorer = ScorerKind::Alc;
  else {
    Err = "unknown scorer '" + Scorer + "' (want alc|alm|random)";
    return false;
  }

  // Plans travel in the campaign ledger's token form: "seq:<cap>" or
  // "fixed:<observations>".
  std::string Plan;
  if (!optionalString(*S, "plan", Plan, Err))
    return false;
  if (!Plan.empty()) {
    unsigned Count = 0;
    if (std::sscanf(Plan.c_str(), "seq:%u", &Count) == 1)
      Spec.Plan = SamplingPlan::sequential(Count);
    else if (std::sscanf(Plan.c_str(), "fixed:%u", &Count) == 1)
      Spec.Plan = SamplingPlan::fixed(Count);
    else {
      Err = "unknown plan '" + Plan + "' (want seq:<cap>|fixed:<obs>)";
      return false;
    }
  }

  // Query policies travel in their campaign token form: "always",
  // "alm[:abs[:rel]]", or "cost[:c0[:c1]]" (core/QueryPolicy.h).
  std::string Policy;
  if (!optionalString(*S, "policy", Policy, Err))
    return false;
  if (!Policy.empty() && !parseQueryPolicy(Policy, Spec.Query)) {
    Err = "unknown policy '" + Policy + "' (want always|alm[:abs[:rel]]|" +
          "cost[:c0[:c1]])";
    return false;
  }

  uint64_t Batch = Spec.BatchSize;
  if (!optionalU64(*S, "batch", Batch, Err))
    return false;
  Spec.BatchSize = unsigned(Batch);
  if (!optionalU64(*S, "seed", Spec.Seed, Err))
    return false;
  if (!optionalU64(*S, "dataset_seed", Spec.DatasetSeed, Err))
    return false;
  uint64_t MaxExamples = Spec.Scale.MaxTrainingExamples;
  if (!optionalU64(*S, "max_examples", MaxExamples, Err))
    return false;
  if (MaxExamples == 0) {
    Err = "field 'max_examples' must be positive";
    return false;
  }
  Spec.Scale.MaxTrainingExamples = unsigned(MaxExamples);
  return true;
}

void appendConfigArray(std::string &Reply, const std::vector<Config> &Configs) {
  for (size_t I = 0; I != Configs.size(); ++I) {
    if (I)
      Reply += ",";
    Reply += "[";
    for (size_t J = 0; J != Configs[I].size(); ++J) {
      if (J)
        Reply += ",";
      Reply += std::to_string(Configs[I][J]);
    }
    Reply += "]";
  }
}

std::string suggestionReply(const Suggestion &S) {
  std::string Reply = "{\"ok\":true,\"phase\":\"";
  Reply += phaseToken(S.Phase);
  Reply += "\",\"ticket\":" + std::to_string(S.Ticket);
  Reply +=
      ",\"observations_per_config\":" + std::to_string(S.ObservationsPerConfig);
  Reply += ",\"configs\":[";
  appendConfigArray(Reply, S.Configs);
  // Declined picks ride along so clients can see (and log) every skip
  // decision; they must not be measured, and costs pair with "configs"
  // only.  Always empty under the default Always policy.
  Reply += "],\"skipped\":[";
  appendConfigArray(Reply, S.Skipped);
  Reply += "]}";
  return Reply;
}

} // namespace

bool alic::handleRequestLine(ServeEngine &Engine, const std::string &Line,
                             std::string &Reply) {
  JsonValue Root;
  if (!parseJson(Line.c_str(), Root) || Root.K != JsonValue::Kind::Object) {
    Reply = errorReply("malformed request (want one JSON object per line)");
    return false;
  }
  std::string Op;
  if (!jsonStringField(Root, "op", Op)) {
    Reply = errorReply("missing string field 'op'");
    return false;
  }

  if (Op == "ping") {
    Reply = "{\"ok\":true,\"sessions\":" +
            std::to_string(Engine.sessionCount()) + "}";
    return false;
  }
  if (Op == "shutdown") {
    Reply = "{\"ok\":true,\"bye\":true}";
    return true;
  }

  std::string Id;
  if (!jsonStringField(Root, "session", Id)) {
    Reply = errorReply("missing string field 'session'");
    return false;
  }
  std::string Err;

  if (Op == "open") {
    SessionSpec Spec;
    if (!parseSpec(Root, Spec, Err)) {
      Reply = errorReply(Err);
      return false;
    }
    if (!Engine.openSession(Id, Spec, Err)) {
      Reply = errorReply(Err);
      return false;
    }
    Reply = "{\"ok\":true,\"session\":\"" + jsonEscape(Id) + "\"}";
    return false;
  }

  if (Op == "suggest") {
    Suggestion S;
    if (!Engine.suggest(Id, S, Err)) {
      Reply = errorReply(Err);
      return false;
    }
    Reply = suggestionReply(S);
    return false;
  }

  if (Op == "observe") {
    double TicketNumber = -1.0;
    if (!jsonNumberField(Root, "ticket", TicketNumber) || TicketNumber < 0) {
      Reply = errorReply("missing numeric field 'ticket'");
      return false;
    }
    const JsonValue *CostsField = Root.field("costs");
    if (!CostsField || CostsField->K != JsonValue::Kind::Array) {
      Reply = errorReply("missing array field 'costs'");
      return false;
    }
    std::vector<double> Costs;
    Costs.reserve(CostsField->Items.size());
    for (const JsonValue &Item : CostsField->Items) {
      if (Item.K != JsonValue::Kind::Number) {
        Reply = errorReply("field 'costs' must hold numbers only");
        return false;
      }
      Costs.push_back(Item.Number);
    }
    if (!Engine.observe(Id, uint64_t(TicketNumber), Costs, Err)) {
      Reply = errorReply(Err);
      return false;
    }
    SessionInfo Info;
    size_t Observes = Engine.sessionInfo(Id, Info, Err) ? Info.Observes : 0;
    Reply = "{\"ok\":true,\"observes\":" + std::to_string(Observes) + "}";
    return false;
  }

  if (Op == "info") {
    SessionInfo Info;
    if (!Engine.sessionInfo(Id, Info, Err)) {
      Reply = errorReply(Err);
      return false;
    }
    Reply = "{\"ok\":true,\"phase\":\"";
    Reply += phaseToken(Info.Phase);
    Reply += "\",\"iterations\":" + std::to_string(Info.Stats.Iterations);
    Reply += ",\"distinct\":" + std::to_string(Info.Stats.DistinctExamples);
    Reply += ",\"revisits\":" + std::to_string(Info.Stats.Revisits);
    Reply += ",\"observations\":" + std::to_string(Info.Stats.Observations);
    // queries + skips = refine picks consumed (iterations): how many the
    // query policy labelled vs declined.
    Reply += ",\"queries\":" +
             std::to_string(Info.Stats.Iterations - Info.Stats.Skips);
    Reply += ",\"skips\":" + std::to_string(Info.Stats.Skips);
    Reply += ",\"observes\":" + std::to_string(Info.Observes);
    Reply += ",\"total_cost_seconds\":" + formatJsonDouble(Info.TotalCostSeconds);
    Reply += std::string(",\"done\":") + (Info.Done ? "true" : "false");
    Reply += std::string(",\"snapshot_dirty\":") +
             (Info.SnapshotDirty ? "true" : "false");
    Reply += "}";
    return false;
  }

  if (Op == "eval") {
    double Rmse = 0.0;
    if (!Engine.evaluate(Id, Rmse, Err)) {
      Reply = errorReply(Err);
      return false;
    }
    Reply = "{\"ok\":true,\"rmse\":" + formatJsonDouble(Rmse) + "}";
    return false;
  }

  if (Op == "close") {
    if (!Engine.closeSession(Id)) {
      Reply = errorReply("unknown session '" + Id + "'");
      return false;
    }
    Reply = "{\"ok\":true}";
    return false;
  }

  Reply = errorReply("unknown op '" + Op + "'");
  return false;
}

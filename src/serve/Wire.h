//===- serve/Wire.h - NDJSON request/reply protocol -----------*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serve wire protocol, factored away from any transport: one JSON
/// object in, one JSON object out, both on a single line.  `alic_serve`
/// pumps socket lines through handleRequestLine(); tests and tools can
/// drive the exact same dispatch with plain strings.  The full field
/// reference lives in docs/SERVE_PROTOCOL.md.
///
/// Requests carry an `op` of open / suggest / observe / info / eval /
/// close / ping / shutdown.  Every reply carries `ok`; failures are
/// `{"ok":false,"error":"..."}` and never change session state, so a
/// client may blindly retry.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_SERVE_WIRE_H
#define ALIC_SERVE_WIRE_H

#include <string>

namespace alic {

class ServeEngine;

/// Dispatches one request line against \p Engine and fills \p Reply with
/// the response object (no trailing newline).  Malformed JSON, unknown
/// ops, and engine-level failures all produce an `ok:false` reply —
/// the function itself never fails.  Returns true only for a `shutdown`
/// request, signalling the transport loop to exit after sending the
/// reply.  Thread-safe: dispatch only calls the engine's thread-safe
/// surface.
bool handleRequestLine(ServeEngine &Engine, const std::string &Line,
                       std::string &Reply);

} // namespace alic

#endif // ALIC_SERVE_WIRE_H

//===- model/SurrogateModel.h - Regression-surrogate interface -*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface the active learner drives.  A surrogate maps feature
/// vectors (normalized configurations) to a predictive mean and variance,
/// supports cheap incremental updates (the dynamic tree's raison d'être),
/// and scores candidate points by expected information gain:
///
///  * ALM (MacKay [34]): the candidate's own predictive variance;
///  * ALC (Cohn [13]):   the expected reduction in average predictive
///                       variance over a reference set.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_MODEL_SURROGATEMODEL_H
#define ALIC_MODEL_SURROGATEMODEL_H

#include <memory>
#include <vector>

namespace alic {

/// Predictive distribution summary at one point.
struct Prediction {
  double Mean = 0.0;
  double Variance = 0.0;
};

/// Interface of all runtime-prediction surrogates.
class SurrogateModel {
public:
  virtual ~SurrogateModel();

  /// Resets the model and trains on a batch.
  virtual void fit(const std::vector<std::vector<double>> &X,
                   const std::vector<double> &Y) = 0;

  /// Incorporates one observation.
  virtual void update(const std::vector<double> &X, double Y) = 0;

  /// Predictive mean and variance at \p X.
  virtual Prediction predict(const std::vector<double> &X) const = 0;

  /// ALM scores: predictive variance per candidate (higher = more useful).
  virtual std::vector<double>
  almScores(const std::vector<std::vector<double>> &Candidates) const;

  /// ALC scores: expected reduction of summed predictive variance over
  /// \p Reference if the candidate were observed (higher = more useful).
  /// The default implementation falls back to ALM.
  virtual std::vector<double>
  alcScores(const std::vector<std::vector<double>> &Candidates,
            const std::vector<std::vector<double>> &Reference) const;

  /// Number of observations absorbed so far.
  virtual size_t numObservations() const = 0;
};

} // namespace alic

#endif // ALIC_MODEL_SURROGATEMODEL_H

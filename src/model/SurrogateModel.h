//===- model/SurrogateModel.h - Regression-surrogate interface -*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface the active learner drives.  A surrogate maps feature
/// vectors (normalized configurations) to a predictive mean and variance,
/// supports cheap incremental updates (the dynamic tree's raison d'être),
/// and scores candidate points by expected information gain:
///
///  * ALM (MacKay [34]): the candidate's own predictive variance;
///  * ALC (Cohn [13]):   the expected reduction in average predictive
///                       variance over a reference set.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_MODEL_SURROGATEMODEL_H
#define ALIC_MODEL_SURROGATEMODEL_H

#include "support/FlatRows.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace alic {

class Scheduler;

/// Predictive distribution summary at one point.
struct Prediction {
  double Mean = 0.0;     ///< predicted runtime (seconds)
  double Variance = 0.0; ///< predictive variance around the mean
};

/// Optional instrumentation sink for the scoring hot path.  Ensemble
/// models that deduplicate work across identical members (DynaTree's
/// unique-particle runs: post-resample aliases share one tree and one
/// pending list, so their per-candidate contributions are equal) record
/// here both the terms a naive per-member evaluation would accumulate
/// and the leaf walks actually performed; their ratio is the dedup
/// factor benches and tests report.  Counters are cumulative across
/// calls and thread-safe (relaxed atomics — purely observational, so
/// results never depend on them).
struct ScoreStats {
  /// Candidates scored (alm + alc calls).
  std::atomic<uint64_t> CandidatesScored{0};
  /// Per-(candidate, ensemble-member) terms accumulated into scores —
  /// the work a naive per-member path performs.
  std::atomic<uint64_t> ParticleTerms{0};
  /// findLeaf + leaf-posterior evaluations actually executed.
  std::atomic<uint64_t> UniqueLeafWalks{0};

  /// Naive-terms / walks-performed ratio (1.0 when nothing was saved).
  double dedupFactor() const {
    uint64_t Walks = UniqueLeafWalks.load(std::memory_order_relaxed);
    uint64_t Terms = ParticleTerms.load(std::memory_order_relaxed);
    return Walks == 0 ? 1.0 : double(Terms) / double(Walks);
  }
};

/// Execution context for batched candidate scoring.  The active learner
/// scores a 500-candidate pool against a 100-point reference set every
/// iteration; this context lets models shard that work across the
/// work-stealing scheduler while staying bit-identical to the sequential
/// path: shards are cut on a grid that depends only on the candidate
/// count (never the worker count), each shard writes disjoint outputs,
/// and any stochastic scorer must draw from shardSeed(Shard) rather than
/// shared mutable state.  Scoring may itself run inside a scheduler task
/// (a campaign cell): the shards then fork onto the same pool, and idle
/// workers steal them.
struct ScoreContext {
  /// Scheduler to shard the scoring over; null means score sequentially.
  Scheduler *Pool = nullptr;

  /// Base seed for stochastic scorers (unused by closed-form ALC/ALM).
  uint64_t Seed = 0;

  /// Candidates per shard.  Fixed by the caller, not derived from the
  /// thread count, so the shard grid is reproducible everywhere.
  size_t ShardSize = 32;

  /// Optional counter sink for score-path instrumentation (dedup
  /// factors); null means don't count.  Never affects results.
  ScoreStats *Stats = nullptr;

  /// Pre-derived RNG seed of shard \p Shard: a pure function of (Seed,
  /// Shard), so scheduling order can never leak into results.
  uint64_t shardSeed(size_t Shard) const;
};

/// Interface of all runtime-prediction surrogates.
///
/// Training data, candidate batches, and reference sets travel as
/// FlatRows — one contiguous row-major buffer — so models never
/// re-materialize per-row vectors in their hot loops.  Plain
/// std::vector<std::vector<double>> and braced literals convert
/// implicitly at call sites.
class SurrogateModel {
public:
  virtual ~SurrogateModel(); ///< out-of-line anchor for the vtable

  /// Resets the model and trains on a batch.
  virtual void fit(const FlatRows &X, const std::vector<double> &Y) = 0;

  /// Incorporates one observation.
  virtual void update(RowRef X, double Y) = 0;

  /// Predictive mean and variance at \p X.
  virtual Prediction predict(RowRef X) const = 0;

  /// Batched predictions: fills Out[0..Count) with the predictions of
  /// the first \p Count rows of \p X (\p Count <= X.size()).  Must be
  /// bit-identical to \p Count predict() calls; models may batch the
  /// internal work (the GP streams its triangular-solve factor rows
  /// through the whole block).  The default loops over predict().
  virtual void predictBatch(const FlatRows &X, size_t Count,
                            Prediction *Out) const;

  /// ALM scores: predictive variance per candidate (higher = more useful).
  /// The default implementation shards predict() over \p Ctx.
  virtual std::vector<double>
  almScores(const FlatRows &Candidates,
            const ScoreContext &Ctx = ScoreContext()) const;

  /// ALC scores: expected reduction of summed predictive variance over
  /// \p Reference if the candidate were observed (higher = more useful).
  /// Implementations must honor \p Ctx: scored in parallel over its pool,
  /// the result must be bit-identical to the sequential run.  The default
  /// implementation falls back to ALM.
  virtual std::vector<double>
  alcScores(const FlatRows &Candidates, const FlatRows &Reference,
            const ScoreContext &Ctx = ScoreContext()) const;

  /// Number of observations absorbed so far.
  virtual size_t numObservations() const = 0;

  /// Installs (or removes, with nullptr) the scheduler models may use to
  /// parallelize their *internal* work — e.g. the dynamic tree shards its
  /// per-particle SMC update.  Nesting is legal: when the model already
  /// runs inside a scheduler task, its inner shards fork onto the same
  /// pool.  Implementations must keep results bit-identical at any
  /// worker count, including none.
  virtual void setScheduler(Scheduler *Workers) { (void)Workers; }
};

} // namespace alic

#endif // ALIC_MODEL_SURROGATEMODEL_H

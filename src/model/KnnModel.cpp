//===- model/KnnModel.cpp -------------------------------------*- C++ -*-===//

#include "model/KnnModel.h"

#include "linalg/Matrix.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace alic;

void KnnModel::fit(const std::vector<std::vector<double>> &X,
                   const std::vector<double> &Y) {
  assert(X.size() == Y.size() && "bad training batch");
  DataX = X;
  DataY = Y;
}

void KnnModel::update(const std::vector<double> &X, double Y) {
  DataX.push_back(X);
  DataY.push_back(Y);
}

Prediction KnnModel::predict(const std::vector<double> &X) const {
  assert(!DataX.empty() && "k-NN model has no data");
  // Collect the K nearest points (partial selection on squared distance).
  size_t N = DataX.size();
  size_t Take = std::min<size_t>(K, N);
  std::vector<std::pair<double, size_t>> Dist(N);
  for (size_t I = 0; I != N; ++I)
    Dist[I] = {squaredDistance(X, DataX[I]), I};
  std::partial_sort(Dist.begin(), Dist.begin() + long(Take), Dist.end());

  double WeightSum = 0.0, Mean = 0.0;
  for (size_t I = 0; I != Take; ++I) {
    double W = 1.0 / (Dist[I].first + Epsilon);
    WeightSum += W;
    Mean += W * DataY[Dist[I].second];
  }
  Mean /= WeightSum;

  // Weighted spread of neighbour values as the uncertainty proxy.
  double Var = 0.0;
  for (size_t I = 0; I != Take; ++I) {
    double W = 1.0 / (Dist[I].first + Epsilon);
    double D = DataY[Dist[I].second] - Mean;
    Var += W * D * D;
  }
  Var /= WeightSum;
  return {Mean, Var};
}

//===- model/KnnModel.cpp -------------------------------------*- C++ -*-===//

#include "model/KnnModel.h"

#include "linalg/Matrix.h"
#include "support/Error.h"
#include "support/Scheduler.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace alic;

void KnnModel::fit(const FlatRows &X, const std::vector<double> &Y) {
  assert(X.size() == Y.size() && "bad training batch");
  DataX = X;
  DataY = Y;
}

void KnnModel::update(RowRef X, double Y) {
  DataX.push(X);
  DataY.push_back(Y);
}

KnnModel::NeighborStats KnnModel::neighborStats(RowRef X) const {
  assert(!DataX.empty() && "k-NN model has no data");
  // Collect the K nearest points (partial selection on squared distance).
  size_t N = DataX.size();
  size_t Take = std::min<size_t>(K, N);
  std::vector<std::pair<double, size_t>> Dist(N);
  for (size_t I = 0; I != N; ++I)
    Dist[I] = {squaredDistance(X, DataX[I]), I};
  std::partial_sort(Dist.begin(), Dist.begin() + long(Take), Dist.end());

  NeighborStats S;
  for (size_t I = 0; I != Take; ++I) {
    double W = 1.0 / (Dist[I].first + Epsilon);
    S.WeightSum += W;
    S.Mean += W * DataY[Dist[I].second];
  }
  S.Mean /= S.WeightSum;

  // Weighted spread of neighbour values as the uncertainty proxy.
  for (size_t I = 0; I != Take; ++I) {
    double W = 1.0 / (Dist[I].first + Epsilon);
    double D = DataY[Dist[I].second] - S.Mean;
    S.Variance += W * D * D;
  }
  S.Variance /= S.WeightSum;
  return S;
}

Prediction KnnModel::predict(RowRef X) const {
  NeighborStats S = neighborStats(X);
  return {S.Mean, S.Variance};
}

std::vector<double> KnnModel::alcScores(const FlatRows &Candidates,
                                        const FlatRows &Reference,
                                        const ScoreContext &Ctx) const {
  // Per-reference stats are candidate-independent: compute them once, in
  // disjoint-write shards.
  std::vector<NeighborStats> RefStats(Reference.size());
  shardedFor(Ctx.Pool, Reference.size(), Ctx.ShardSize,
             [&](size_t, size_t Begin, size_t End) {
               for (size_t R = Begin; R != End; ++R)
                 RefStats[R] = neighborStats(Reference[R]);
             });

  // Candidate c relieves reference r in proportion to the kernel mass it
  // would contribute to r's neighbourhood; references accumulate in index
  // order so sequential and sharded runs agree bitwise.
  std::vector<double> Scores(Candidates.size(), 0.0);
  shardedFor(Ctx.Pool, Candidates.size(), Ctx.ShardSize,
             [&](size_t, size_t Begin, size_t End) {
               for (size_t C = Begin; C != End; ++C) {
                 double Total = 0.0;
                 for (size_t R = 0; R != Reference.size(); ++R) {
                   double W = 1.0 / (squaredDistance(Reference[R],
                                                     Candidates[C]) +
                                     Epsilon);
                   Total += RefStats[R].Variance * W /
                            (RefStats[R].WeightSum + W);
                 }
                 Scores[C] = Total;
               }
             });
  return Scores;
}

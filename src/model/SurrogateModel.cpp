//===- model/SurrogateModel.cpp -------------------------------*- C++ -*-===//

#include "model/SurrogateModel.h"

#include "support/Rng.h"
#include "support/Scheduler.h"

using namespace alic;

uint64_t ScoreContext::shardSeed(size_t Shard) const {
  return hashCombine({Seed, uint64_t(Shard), 0x5c07e5eedull});
}

SurrogateModel::~SurrogateModel() = default;

void SurrogateModel::predictBatch(const FlatRows &X, size_t Count,
                                  Prediction *Out) const {
  for (size_t I = 0; I != Count; ++I)
    Out[I] = predict(X[I]);
}

std::vector<double> SurrogateModel::almScores(const FlatRows &Candidates,
                                              const ScoreContext &Ctx) const {
  std::vector<double> Scores(Candidates.size());
  shardedFor(Ctx.Pool, Candidates.size(), Ctx.ShardSize,
             [&](size_t, size_t Begin, size_t End) {
               for (size_t I = Begin; I != End; ++I)
                 Scores[I] = predict(Candidates[I]).Variance;
             });
  return Scores;
}

std::vector<double> SurrogateModel::alcScores(const FlatRows &Candidates,
                                              const FlatRows &Reference,
                                              const ScoreContext &Ctx) const {
  // Fallback: models without a closed-form ALC reduce to ALM.
  (void)Reference;
  return almScores(Candidates, Ctx);
}

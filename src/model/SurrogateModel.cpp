//===- model/SurrogateModel.cpp -------------------------------*- C++ -*-===//

#include "model/SurrogateModel.h"

using namespace alic;

SurrogateModel::~SurrogateModel() = default;

std::vector<double> SurrogateModel::almScores(
    const std::vector<std::vector<double>> &Candidates) const {
  std::vector<double> Scores;
  Scores.reserve(Candidates.size());
  for (const auto &X : Candidates)
    Scores.push_back(predict(X).Variance);
  return Scores;
}

std::vector<double> SurrogateModel::alcScores(
    const std::vector<std::vector<double>> &Candidates,
    const std::vector<std::vector<double>> &Reference) const {
  // Fallback: models without a closed-form ALC reduce to ALM.
  (void)Reference;
  return almScores(Candidates);
}

//===- model/KnnModel.h - k-nearest-neighbour baseline --------*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A distance-weighted k-nearest-neighbour regressor.  Classic iterative-
/// compilation work (Agakov et al. [2] and successors) leans on exactly
/// this family of models; it serves here as a cheap non-Bayesian
/// comparator for the surrogate interface.  Its "variance" is the local
/// weighted spread of the neighbours' values — honest enough for ALM-style
/// scoring, with none of the dynamic tree's calibration.
///
/// The ALC analogue scores a candidate by how much weighted-ensemble mass
/// it would add near each uncertain reference point: observing x shrinks
/// reference r's spread-variance by roughly Var(r) * w(r,x) / (W(r) +
/// w(r,x)), where W(r) is the kernel mass of r's current neighbourhood.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_MODEL_KNNMODEL_H
#define ALIC_MODEL_KNNMODEL_H

#include "model/SurrogateModel.h"

namespace alic {

/// k-NN regression surrogate.
class KnnModel : public SurrogateModel {
public:
  /// \p K neighbours; \p Epsilon regularizes inverse-distance weights.
  explicit KnnModel(unsigned K = 5, double Epsilon = 1e-6)
      : K(K), Epsilon(Epsilon) {}

  void fit(const FlatRows &X, const std::vector<double> &Y) override;
  void update(RowRef X, double Y) override;
  Prediction predict(RowRef X) const override;
  std::vector<double> alcScores(const FlatRows &Candidates,
                                const FlatRows &Reference,
                                const ScoreContext &Ctx = ScoreContext())
      const override;
  size_t numObservations() const override { return DataX.size(); }

private:
  /// Neighbourhood summary behind predict() and alcScores().
  struct NeighborStats {
    double Mean = 0.0;
    double Variance = 0.0;
    double WeightSum = 0.0; ///< kernel mass of the k nearest points
  };
  NeighborStats neighborStats(RowRef X) const;

  unsigned K;
  double Epsilon;
  FlatRows DataX; ///< contiguous row-major training rows (SoA layout)
  std::vector<double> DataY;
};

} // namespace alic

#endif // ALIC_MODEL_KNNMODEL_H

//===- measure/NoiseModel.cpp ---------------------------------*- C++ -*-===//

#include "measure/NoiseModel.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace alic;

/// Hash-based control value in [0,1] for cell \p Cell of dimension \p Dim.
static double controlValue(uint64_t Seed, uint64_t Dim, int64_t Cell) {
  uint64_t H = hashCombine({Seed, Dim, static_cast<uint64_t>(Cell)});
  return static_cast<double>(H >> 11) * 0x1.0p-53;
}

double alic::noiseRegionField(const NoiseProfile &Profile,
                              const ParamSpace &Space, const Config &C) {
  assert(C.size() == Space.numParams() && "config arity mismatch");
  // Per-dimension piecewise-linear value noise on a coarse ordinal grid,
  // blended with hash-derived weights.  Smooth in every ordinal.
  double Weighted = 0.0;
  double WeightSum = 0.0;
  for (size_t D = 0; D != C.size(); ++D) {
    size_t NumValues = Space.param(D).numValues();
    if (NumValues < 2)
      continue;
    // Grid coarseness ~ an eighth of the axis, at least 2 cells.
    double CellSize = std::max(2.0, double(NumValues) / 8.0);
    double Pos = double(C[D]) / CellSize;
    int64_t Cell = static_cast<int64_t>(std::floor(Pos));
    double Frac = Pos - double(Cell);
    double V0 = controlValue(Profile.FieldSeed, D, Cell);
    double V1 = controlValue(Profile.FieldSeed, D, Cell + 1);
    // Cosine interpolation keeps the field C1-smooth.
    double Smooth = 0.5 - 0.5 * std::cos(Frac * M_PI);
    double Value = V0 * (1.0 - Smooth) + V1 * Smooth;
    double Weight =
        0.5 + controlValue(Profile.FieldSeed ^ 0xabcdu, D, -7);
    Weighted += Weight * Value;
    WeightSum += Weight;
  }
  if (WeightSum == 0.0)
    return 0.5;
  return Weighted / WeightSum;
}

double alic::noiseSigmaRel(const NoiseProfile &Profile,
                           const ParamSpace &Space, const Config &C) {
  double Field = noiseRegionField(Profile, Space, C);
  // The field is an average of uniforms, concentrated around 0.5; map the
  // top RegionFraction-ish quantile into the amplified regime with a
  // smooth ramp.
  double Threshold = 0.5 + 0.35 * (1.0 - 2.0 * Profile.RegionFraction);
  double RampWidth = 0.08;
  double T = (Field - (Threshold - RampWidth)) / (2.0 * RampWidth);
  T = std::clamp(T, 0.0, 1.0);
  double Smooth = T * T * (3.0 - 2.0 * T); // smoothstep
  double Amp = 1.0 + (Profile.RegionAmplification - 1.0) * Smooth;
  return Profile.BaseRelSigma * Amp;
}

double alic::drawMeasurement(const NoiseProfile &Profile, double MeanSeconds,
                             double SigmaRel, uint64_t StreamSeed,
                             uint64_t SampleIndex) {
  assert(MeanSeconds > 0.0 && "mean runtime must be positive");
  Rng R(hashCombine({StreamSeed, SampleIndex, 0x6e6f697365ull}));
  // Multiplicative Gaussian jitter around the mean ...
  double Value = MeanSeconds * (1.0 + SigmaRel * R.nextGaussian());
  // ... plus occasional heavy-tailed interference bursts.
  if (R.nextBernoulli(Profile.BurstProbability))
    Value += MeanSeconds * R.nextExponential(Profile.BurstMeanRel);
  // A run can be jittered but never faster than the code allows.
  double Floor = MeanSeconds * std::max(0.05, 1.0 - 4.0 * SigmaRel);
  return std::max(Value, Floor);
}

//===- measure/Profiler.h - Virtual profiling harness ---------*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measurement harness the learners drive.  A WorkloadOracle supplies
/// deterministic ground truth (mean runtime, compile time, noise profile)
/// for one benchmark; the Profiler draws noisy observations from it and
/// charges every compile and every run to a cost ledger.  The ledger total
/// is the paper's "evaluation time" axis: "the cumulative compilation and
/// runtimes of any executables used in training" (Section 4.3).
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_MEASURE_PROFILER_H
#define ALIC_MEASURE_PROFILER_H

#include "measure/NoiseModel.h"
#include "tunable/ParamSpace.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace alic {

class Scheduler;

/// Ground-truth provider for one tunable workload.
class WorkloadOracle {
public:
  virtual ~WorkloadOracle();

  /// The tunable space.
  virtual const ParamSpace &space() const = 0;

  /// Deterministic mean runtime of configuration \p C, in seconds.
  virtual double meanRuntimeSeconds(const Config &C) const = 0;

  /// Compilation time of configuration \p C, in seconds.
  virtual double compileSeconds(const Config &C) const = 0;

  /// Noise parameters of this workload.
  virtual const NoiseProfile &noise() const = 0;
};

/// Accumulates virtual seconds spent compiling and running binaries.
struct CostLedger {
  double CompileSeconds = 0.0; ///< total virtual compile time charged
  double RunSeconds = 0.0;     ///< total virtual runtime charged
  uint64_t Compilations = 0;   ///< distinct configurations compiled
  uint64_t Runs = 0;           ///< noisy observations drawn

  /// The paper's "evaluation time" axis: compile plus run seconds.
  double totalSeconds() const { return CompileSeconds + RunSeconds; }
};

/// Draws noisy measurements and accounts for their cost.
///
/// Noise streams are *counter-based*: observation k of configuration C is
/// a pure function of (StreamSeed, key(C), k), never of profiler state or
/// of the order in which other configurations were measured.  That makes
/// interleaved, batched, and sharded measurement all replay bit-identical
/// per-config samples — the prerequisite for parallelizing measurement.
class Profiler {
public:
  /// \p StreamSeed decorrelates noise across experiment repetitions while
  /// keeping each repetition replayable.
  Profiler(const WorkloadOracle &Oracle, uint64_t StreamSeed);

  /// Profiles \p C once: compiles it first if this profiler has not seen
  /// it before (charged once, like a cached binary), runs it, charges the
  /// observed runtime, and returns the observation.
  double measureOnce(const Config &C);

  /// Profiles \p C \p Count times and returns all observations.
  std::vector<double> measure(const Config &C, unsigned Count);

  /// Profiles every configuration of \p Batch once, sharding the noise
  /// draws across \p Pool (nullptr measures inline).  Bit-identical to
  /// calling measureOnce on each entry in order — duplicates in the batch
  /// receive consecutive per-config observation indices — because samples
  /// are counter-based; the ledger is charged serially in batch order.
  /// May be called from inside a scheduler task: the draw shards fork
  /// onto the same pool.
  std::vector<double> measureBatch(const std::vector<Config> &Batch,
                                   Scheduler *Pool = nullptr);

  /// The value observation \p SampleIndex of \p C would have: a pure
  /// function of (StreamSeed, key(C), SampleIndex).  Does not advance the
  /// per-config counter and charges nothing.
  double observationAt(const Config &C, uint64_t SampleIndex);

  /// Number of observations taken for \p C so far.
  unsigned observationCount(const Config &C) const;

  /// Cost accounting.
  const CostLedger &ledger() const { return Ledger; }

  /// The noise-free mean (for evaluation only — a real harness would not
  /// expose this; experiment code uses it to build test sets).
  double groundTruthMean(const Config &C);

private:
  const WorkloadOracle &Oracle;
  uint64_t StreamSeed;
  CostLedger Ledger;
  // Per-config state: observation count and cached ground truth.  The
  // compile charge is tracked separately from the cache so evaluation-only
  // accessors (groundTruthMean, observationAt) can warm the cache without
  // suppressing the charge a later real measurement must pay.
  struct ConfigState {
    unsigned Observations = 0;
    double CachedMean = -1.0;
    double CachedSigmaRel = -1.0;
    bool Compiled = false;
  };
  std::unordered_map<uint64_t, ConfigState> States;

  ConfigState &stateFor(const Config &C, bool ChargeCompile);
};

} // namespace alic

#endif // ALIC_MEASURE_PROFILER_H

//===- measure/NoiseModel.h - Measurement-noise synthesis -----*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic runtime-measurement noise, standing in for the paper's noisy
/// OS environment (DESIGN.md §5 substitution 2).  Three properties of the
/// paper's Table 2 and Section 2 drive the design:
///
///  1. noise magnitude differs wildly across benchmarks (correlation's
///     variance spans eight orders of magnitude; lu/mvt are nearly quiet);
///  2. noise is *regional* within a single space — "the variance is not
///     constant across all parts of the space ... some parts of the space
///     suffer from extreme noise";
///  3. occasional interference bursts (co-runners, Turbo Boost) produce
///     heavy right tails.
///
/// The region structure is a smooth, deterministic pseudo-random field
/// over configuration ordinals, so neighbouring configurations share
/// noise character — exactly the situation the paper's dynamic-tree
/// learner exploits when deciding which points deserve extra samples.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_MEASURE_NOISEMODEL_H
#define ALIC_MEASURE_NOISEMODEL_H

#include "support/Rng.h"
#include "tunable/ParamSpace.h"

namespace alic {

/// Per-benchmark noise parameters.
struct NoiseProfile {
  /// Relative (to the mean) standard deviation in quiet regions.
  double BaseRelSigma = 0.003;

  /// Multiplier applied to BaseRelSigma deep inside noisy regions.
  double RegionAmplification = 10.0;

  /// Approximate fraction of the space that is noisy.
  double RegionFraction = 0.15;

  /// Probability that one run is hit by an interference burst.
  double BurstProbability = 0.01;

  /// Mean burst magnitude, relative to the mean runtime (exponential).
  double BurstMeanRel = 0.05;

  /// Seed of the region field (derive per benchmark).
  uint64_t FieldSeed = 0;
};

/// Smooth field in [0, 1] over configuration space; deterministic in
/// (profile.FieldSeed, configuration).  Neighbouring configurations get
/// similar values.
double noiseRegionField(const NoiseProfile &Profile, const ParamSpace &Space,
                        const Config &C);

/// Relative standard deviation of measurements at \p C: the base sigma
/// smoothly amplified inside noisy regions.
double noiseSigmaRel(const NoiseProfile &Profile, const ParamSpace &Space,
                     const Config &C);

/// Draws one noisy measurement around \p MeanSeconds.  Deterministic in
/// (\p StreamSeed, \p SampleIndex): re-running an experiment reproduces
/// the same virtual measurements.
double drawMeasurement(const NoiseProfile &Profile, double MeanSeconds,
                       double SigmaRel, uint64_t StreamSeed,
                       uint64_t SampleIndex);

} // namespace alic

#endif // ALIC_MEASURE_NOISEMODEL_H

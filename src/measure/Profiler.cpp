//===- measure/Profiler.cpp -----------------------------------*- C++ -*-===//

#include "measure/Profiler.h"

#include "support/Error.h"
#include "support/Scheduler.h"

#include <cassert>

using namespace alic;

WorkloadOracle::~WorkloadOracle() = default;

Profiler::Profiler(const WorkloadOracle &Oracle, uint64_t StreamSeed)
    : Oracle(Oracle), StreamSeed(StreamSeed) {}

Profiler::ConfigState &Profiler::stateFor(const Config &C,
                                          bool ChargeCompile) {
  uint64_t Key = Oracle.space().key(C);
  auto [It, Inserted] = States.try_emplace(Key);
  ConfigState &State = It->second;
  if (State.CachedMean < 0.0) {
    State.CachedMean = Oracle.meanRuntimeSeconds(C);
    State.CachedSigmaRel = noiseSigmaRel(Oracle.noise(), Oracle.space(), C);
  }
  if (ChargeCompile && !State.Compiled) {
    State.Compiled = true;
    Ledger.CompileSeconds += Oracle.compileSeconds(C);
    ++Ledger.Compilations;
  }
  return State;
}

double Profiler::observationAt(const Config &C, uint64_t SampleIndex) {
  // Pure counter-based stream: (StreamSeed, config key, index) fully
  // determine the sample, so measurement order can never change it.
  ConfigState &State = stateFor(C, /*ChargeCompile=*/false);
  uint64_t Stream = hashCombine({StreamSeed, Oracle.space().key(C)});
  return drawMeasurement(Oracle.noise(), State.CachedMean,
                         State.CachedSigmaRel, Stream, SampleIndex);
}

double Profiler::measureOnce(const Config &C) {
  ConfigState &State = stateFor(C, /*ChargeCompile=*/true);
  uint64_t Stream = hashCombine({StreamSeed, Oracle.space().key(C)});
  double Observation =
      drawMeasurement(Oracle.noise(), State.CachedMean, State.CachedSigmaRel,
                      Stream, State.Observations);
  ++State.Observations;
  Ledger.RunSeconds += Observation;
  ++Ledger.Runs;
  return Observation;
}

std::vector<double> Profiler::measure(const Config &C, unsigned Count) {
  std::vector<double> Observations;
  Observations.reserve(Count);
  for (unsigned I = 0; I != Count; ++I)
    Observations.push_back(measureOnce(C));
  return Observations;
}

std::vector<double> Profiler::measureBatch(const std::vector<Config> &Batch,
                                           Scheduler *Pool) {
  // Serial pass: resolve per-config state (charging compilations in batch
  // order) and assign each entry its observation index.  Duplicated
  // configurations get consecutive indices, exactly as sequential
  // measureOnce calls would.
  struct Draw {
    double Mean;
    double SigmaRel;
    uint64_t Stream;
    uint64_t Index;
  };
  std::vector<Draw> Draws;
  Draws.reserve(Batch.size());
  for (const Config &C : Batch) {
    ConfigState &State = stateFor(C, /*ChargeCompile=*/true);
    Draws.push_back({State.CachedMean, State.CachedSigmaRel,
                     hashCombine({StreamSeed, Oracle.space().key(C)}),
                     State.Observations});
    ++State.Observations;
  }

  // Parallel pass: the draws are pure functions of their stream and
  // index, so sharding writes disjoint outputs with no shared state.
  std::vector<double> Observations(Batch.size());
  const NoiseProfile &Noise = Oracle.noise();
  shardedFor(Pool, Draws.size(), 16, [&](size_t, size_t Begin, size_t End) {
    for (size_t I = Begin; I != End; ++I)
      Observations[I] = drawMeasurement(Noise, Draws[I].Mean,
                                        Draws[I].SigmaRel, Draws[I].Stream,
                                        Draws[I].Index);
  });

  // Serial pass: charge the ledger in batch order.
  for (double Observation : Observations) {
    Ledger.RunSeconds += Observation;
    ++Ledger.Runs;
  }
  return Observations;
}

unsigned Profiler::observationCount(const Config &C) const {
  auto It = States.find(Oracle.space().key(C));
  return It == States.end() ? 0 : It->second.Observations;
}

double Profiler::groundTruthMean(const Config &C) {
  // Does not charge the ledger: evaluation-only accessor.
  return stateFor(C, /*ChargeCompile=*/false).CachedMean;
}

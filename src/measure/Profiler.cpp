//===- measure/Profiler.cpp -----------------------------------*- C++ -*-===//

#include "measure/Profiler.h"

#include "support/Error.h"

#include <cassert>

using namespace alic;

WorkloadOracle::~WorkloadOracle() = default;

Profiler::Profiler(const WorkloadOracle &Oracle, uint64_t StreamSeed)
    : Oracle(Oracle), StreamSeed(StreamSeed) {}

Profiler::ConfigState &Profiler::stateFor(const Config &C,
                                          bool ChargeCompile) {
  uint64_t Key = Oracle.space().key(C);
  auto [It, Inserted] = States.try_emplace(Key);
  ConfigState &State = It->second;
  if (State.CachedMean < 0.0) {
    State.CachedMean = Oracle.meanRuntimeSeconds(C);
    State.CachedSigmaRel = noiseSigmaRel(Oracle.noise(), Oracle.space(), C);
    if (ChargeCompile) {
      Ledger.CompileSeconds += Oracle.compileSeconds(C);
      ++Ledger.Compilations;
    }
  }
  return State;
}

double Profiler::measureOnce(const Config &C) {
  ConfigState &State = stateFor(C, /*ChargeCompile=*/true);
  uint64_t Key = Oracle.space().key(C);
  uint64_t Stream = hashCombine({StreamSeed, Key});
  double Observation =
      drawMeasurement(Oracle.noise(), State.CachedMean, State.CachedSigmaRel,
                      Stream, State.Observations);
  ++State.Observations;
  Ledger.RunSeconds += Observation;
  ++Ledger.Runs;
  return Observation;
}

std::vector<double> Profiler::measure(const Config &C, unsigned Count) {
  std::vector<double> Observations;
  Observations.reserve(Count);
  for (unsigned I = 0; I != Count; ++I)
    Observations.push_back(measureOnce(C));
  return Observations;
}

unsigned Profiler::observationCount(const Config &C) const {
  auto It = States.find(Oracle.space().key(C));
  return It == States.end() ? 0 : It->second.Observations;
}

double Profiler::groundTruthMean(const Config &C) {
  // Does not charge the ledger: evaluation-only accessor.
  return stateFor(C, /*ChargeCompile=*/false).CachedMean;
}

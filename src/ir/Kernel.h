//===- ir/Kernel.h - Kernel container for loop nests ----------*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Kernel owns the array declarations, loop-variable symbol table, and
/// the top-level loop nests of one benchmark.  Transformations rewrite a
/// cloned Kernel in place; the interpreter and the machine model both
/// consume this representation.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_IR_KERNEL_H
#define ALIC_IR_KERNEL_H

#include "ir/Node.h"

#include <functional>
#include <string>

namespace alic {

/// A named dense array of doubles with constant dimensions.
struct IrArrayDecl {
  std::string Name;
  std::vector<int64_t> Dims;

  /// Total number of elements.
  int64_t numElements() const;
};

/// One benchmark kernel: arrays + loop variables + top-level nests.
class Kernel {
public:
  explicit Kernel(std::string Name) : Name(std::move(Name)) {}

  Kernel(const Kernel &Other);
  Kernel &operator=(const Kernel &) = delete;
  Kernel(Kernel &&) = default;
  Kernel &operator=(Kernel &&) = default;

  const std::string &name() const { return Name; }

  /// Declares an array; returns its id.
  unsigned addArray(std::string ArrayName, std::vector<int64_t> Dims);

  /// Declares a loop variable; returns its id.
  LoopVarId addLoopVar(std::string VarName);

  size_t numArrays() const { return Arrays.size(); }
  const IrArrayDecl &array(unsigned Id) const { return Arrays[Id]; }

  size_t numLoopVars() const { return VarNames.size(); }
  const std::string &loopVarName(LoopVarId Id) const { return VarNames[Id]; }
  const std::vector<std::string> &loopVarNames() const { return VarNames; }

  /// Appends a top-level node (usually a LoopNode).
  void appendTopLevel(std::unique_ptr<IrNode> Node);

  const std::vector<std::unique_ptr<IrNode>> &topLevel() const {
    return TopLevel;
  }
  std::vector<std::unique_ptr<IrNode>> &topLevel() { return TopLevel; }

  /// Finds the unique loop with variable \p Var; nullptr if absent.
  LoopNode *findLoop(LoopVarId Var);
  const LoopNode *findLoop(LoopVarId Var) const;

  /// Visits every loop in pre-order.
  void forEachLoop(const std::function<void(const LoopNode &)> &Fn) const;

  /// Visits every statement in execution order (statically).
  void forEachStmt(const std::function<void(const StmtNode &)> &Fn) const;

  /// Number of statement nodes (static code size proxy).
  size_t countStmts() const;

  /// Number of loop nodes.
  size_t countLoops() const;

  /// Checks structural invariants (bounds reference only enclosing loop
  /// variables, subscript arities match array ranks, ids in range);
  /// aborts with a message on violation.
  void verify() const;

  /// Pseudo-C rendering for debugging and the examples.
  std::string toString() const;

private:
  std::string Name;
  std::vector<IrArrayDecl> Arrays;
  std::vector<std::string> VarNames;
  std::vector<std::unique_ptr<IrNode>> TopLevel;
};

} // namespace alic

#endif // ALIC_IR_KERNEL_H

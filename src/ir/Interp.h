//===- ir/Interp.h - Reference interpreter for the kernel IR --*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a Kernel on concrete arrays with deterministic initial
/// contents.  The interpreter is the ground truth for transformation
/// correctness: a legal unroll/tile/register-tile must leave the final
/// array contents bit-identical (the replicated statements are evaluated
/// in the same order the original loop would have).
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_IR_INTERP_H
#define ALIC_IR_INTERP_H

#include "ir/Kernel.h"

#include <cstdint>
#include <vector>

namespace alic {

/// Result of interpreting a kernel.
struct InterpResult {
  /// Order-sensitive digest of all array contents after execution.
  double Checksum = 0.0;
  /// Number of statement instances executed.
  uint64_t StmtInstances = 0;
  /// Number of loop-iteration events (all loops, all levels).
  uint64_t LoopIterations = 0;
};

/// Reference interpreter.
class Interpreter {
public:
  explicit Interpreter(const Kernel &K);

  /// Runs the kernel to completion and returns the digest.
  InterpResult run();

  /// Read-only view of an array's final contents (valid after run()).
  const std::vector<double> &array(unsigned Id) const { return Storage[Id]; }

private:
  void execList(const std::vector<std::unique_ptr<IrNode>> &Nodes);
  void execStmt(const StmtNode &Stmt);
  double readAccess(const ArrayAccess &Access) const;
  size_t flattenIndex(const ArrayAccess &Access) const;

  const Kernel &K;
  std::vector<std::vector<double>> Storage;
  std::vector<int64_t> Env;
  InterpResult Result;
};

/// Deterministic initial value of element \p Linear of array \p ArrayId.
/// Shared by every interpretation so original and transformed kernels see
/// identical inputs.
double initialArrayValue(unsigned ArrayId, size_t Linear);

} // namespace alic

#endif // ALIC_IR_INTERP_H

//===- ir/Interp.cpp ------------------------------------------*- C++ -*-===//

#include "ir/Interp.h"

#include "support/Error.h"
#include "support/Rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace alic;

double alic::initialArrayValue(unsigned ArrayId, size_t Linear) {
  uint64_t H = hashCombine({0xa1ecull, ArrayId, static_cast<uint64_t>(Linear)});
  // Map to (0, 1]; keep away from zero so products stay informative.
  return 0.5 + 0.5 * (static_cast<double>(H >> 11) * 0x1.0p-53);
}

Interpreter::Interpreter(const Kernel &K) : K(K) {
  Storage.resize(K.numArrays());
  for (unsigned Id = 0; Id != K.numArrays(); ++Id) {
    size_t N = static_cast<size_t>(K.array(Id).numElements());
    Storage[Id].resize(N);
    for (size_t I = 0; I != N; ++I)
      Storage[Id][I] = initialArrayValue(Id, I);
  }
  Env.assign(K.numLoopVars(), 0);
}

InterpResult Interpreter::run() {
  Result = InterpResult();
  execList(K.topLevel());
  // Order-sensitive digest over every array element.
  double Sum = 0.0;
  for (unsigned Id = 0; Id != Storage.size(); ++Id)
    for (size_t I = 0; I != Storage[Id].size(); ++I)
      Sum += Storage[Id][I] * std::cos(double((Id + 1) * 31 + I % 1024));
  Result.Checksum = Sum;
  return Result;
}

size_t Interpreter::flattenIndex(const ArrayAccess &Access) const {
  const IrArrayDecl &Decl = K.array(Access.ArrayId);
  size_t Linear = 0;
  for (size_t D = 0; D != Decl.Dims.size(); ++D) {
    int64_t Idx = Access.Subscripts[D].evaluate(Env);
    assert(Idx >= 0 && Idx < Decl.Dims[D] && "array subscript out of bounds");
    Linear = Linear * static_cast<size_t>(Decl.Dims[D]) +
             static_cast<size_t>(Idx);
  }
  return Linear;
}

double Interpreter::readAccess(const ArrayAccess &Access) const {
  return Storage[Access.ArrayId][flattenIndex(Access)];
}

void Interpreter::execStmt(const StmtNode &Stmt) {
  double Value;
  if (Stmt.Rhs == RhsKind::Sum) {
    Value = Stmt.Bias;
    for (const ReadTerm &Term : Stmt.Reads)
      Value += Term.Coeff * readAccess(Term.Access);
  } else {
    Value = Stmt.Scale;
    for (const ReadTerm &Term : Stmt.Reads)
      Value *= readAccess(Term.Access);
    Value += Stmt.Bias;
  }
  double &Slot = Storage[Stmt.Write.ArrayId][flattenIndex(Stmt.Write)];
  if (Stmt.Accumulate)
    Slot += Value;
  else
    Slot = Value;
  ++Result.StmtInstances;
}

void Interpreter::execList(const std::vector<std::unique_ptr<IrNode>> &Nodes) {
  for (const auto &Node : Nodes) {
    if (const auto *Stmt = nodeDynCast<StmtNode>(Node.get())) {
      execStmt(*Stmt);
      continue;
    }
    const auto *Loop = nodeDynCast<LoopNode>(Node.get());
    int64_t Lo = Loop->Lower.evaluate(Env);
    int64_t Hi = Loop->Uppers.front().evaluate(Env);
    for (size_t I = 1; I != Loop->Uppers.size(); ++I)
      Hi = std::min(Hi, Loop->Uppers[I].evaluate(Env));
    for (int64_t V = Lo; V < Hi; V += Loop->Step) {
      Env[Loop->Var] = V;
      ++Result.LoopIterations;
      execList(Loop->Body);
    }
  }
}

//===- ir/AffineExpr.h - Affine index/bound expressions -------*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Affine expressions over loop variables: sum(Coeff_i * Var_i) + Constant.
/// They serve as array subscripts and loop bounds in the kernel IR, and
/// their closed form is what makes unrolling (substitute var -> var + k)
/// and the machine model's stride/reuse analysis exact.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_IR_AFFINEEXPR_H
#define ALIC_IR_AFFINEEXPR_H

#include <cstdint>
#include <string>
#include <vector>

namespace alic {

/// Loop variables are identified by dense integer ids within a Kernel.
using LoopVarId = unsigned;

/// Affine combination of loop variables plus a constant.
class AffineExpr {
public:
  /// The zero expression.
  AffineExpr() = default;

  /// A constant expression.
  static AffineExpr constant(int64_t Value);

  /// The expression "Var".
  static AffineExpr var(LoopVarId Var);

  /// The expression "Coeff * Var + Offset".
  static AffineExpr scaledVar(LoopVarId Var, int64_t Coeff,
                              int64_t Offset = 0);

  /// Adds \p Coeff * \p Var.
  AffineExpr &addTerm(LoopVarId Var, int64_t Coeff);

  /// Adds a constant.
  AffineExpr &addConstant(int64_t Value);

  /// Sum of two expressions.
  AffineExpr operator+(const AffineExpr &Rhs) const;

  /// Coefficient of \p Var (0 if absent).
  int64_t coefficient(LoopVarId Var) const;

  /// The constant term.
  int64_t constantTerm() const { return Constant; }

  /// True when no variable has a nonzero coefficient.
  bool isConstant() const { return Terms.empty(); }

  /// True when \p Var appears with a nonzero coefficient.
  bool references(LoopVarId Var) const { return coefficient(Var) != 0; }

  /// Evaluates with \p Env giving each variable's value (indexed by id).
  int64_t evaluate(const std::vector<int64_t> &Env) const;

  /// Returns the expression with \p Var replaced by (\p Var + \p Offset),
  /// i.e. the subscript rewrite performed by loop unrolling.
  AffineExpr substituteShift(LoopVarId Var, int64_t Offset) const;

  /// Returns the expression with \p From replaced by (\p Scale * To + Off).
  /// Used by strip-mining to rewrite i := Tile * it + ii style relations.
  AffineExpr substituteVar(LoopVarId From, LoopVarId To, int64_t Scale,
                           int64_t Off) const;

  /// (var, coefficient) pairs, each coefficient nonzero.
  const std::vector<std::pair<LoopVarId, int64_t>> &terms() const {
    return Terms;
  }

  /// Renders e.g. "2*i3 + j - 1" using \p VarNames (indexed by id).
  std::string toString(const std::vector<std::string> &VarNames) const;

  bool operator==(const AffineExpr &Rhs) const {
    return Constant == Rhs.Constant && Terms == Rhs.Terms;
  }

private:
  void normalize();

  std::vector<std::pair<LoopVarId, int64_t>> Terms; // sorted by var id
  int64_t Constant = 0;
};

} // namespace alic

#endif // ALIC_IR_AFFINEEXPR_H

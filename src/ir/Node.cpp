//===- ir/Node.cpp --------------------------------------------*- C++ -*-===//

#include "ir/Node.h"

using namespace alic;

// Out-of-line virtual anchor (keeps the vtable in one object file).
IrNode::~IrNode() = default;

std::unique_ptr<IrNode> StmtNode::clone() const {
  auto Copy = std::make_unique<StmtNode>(Write, Accumulate, Rhs, Reads, Scale,
                                         Bias);
  Copy->HasDivision = HasDivision;
  return Copy;
}

unsigned StmtNode::flops() const {
  if (Reads.empty())
    return 1;
  if (Rhs == RhsKind::Sum) {
    // One multiply per non-unit coefficient plus the adds.
    unsigned Flops = static_cast<unsigned>(Reads.size());
    for (const ReadTerm &Term : Reads)
      if (Term.Coeff != 1.0)
        ++Flops;
    return Flops;
  }
  // Product: |Reads| - 1 multiplies, one scale multiply, one optional add.
  unsigned Flops = static_cast<unsigned>(Reads.size());
  if (Accumulate)
    ++Flops;
  return Flops;
}

std::unique_ptr<IrNode> LoopNode::clone() const {
  auto Copy = std::make_unique<LoopNode>(Var, Lower, Uppers.front(), Step);
  for (size_t I = 1; I != Uppers.size(); ++I)
    Copy->addUpperBound(Uppers[I]);
  Copy->Body = cloneNodeList(Body);
  return Copy;
}

std::vector<std::unique_ptr<IrNode>>
alic::cloneNodeList(const std::vector<std::unique_ptr<IrNode>> &Nodes) {
  std::vector<std::unique_ptr<IrNode>> Copy;
  Copy.reserve(Nodes.size());
  for (const auto &Node : Nodes)
    Copy.push_back(Node->clone());
  return Copy;
}

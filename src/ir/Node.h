//===- ir/Node.h - Loop-nest IR nodes --------------------------*- C++ -*-===//
//
// Part of the ALIC project: a reproduction of "Minimizing the Cost of
// Iterative Compilation with Active Learning" (Ogilvie et al., CGO 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The loop-nest intermediate representation.  A kernel body is a tree of
/// LoopNode (counted loop with affine bounds) and StmtNode (array
/// assignment whose right-hand side is a weighted sum or a scaled product
/// of array reads).  This is rich enough to express the eleven SPAPT
/// kernels, to apply unroll/tile/register-tile transformations literally,
/// and to interpret for semantics checks — while staying fully analyzable
/// for the analytic machine model.
///
//===----------------------------------------------------------------------===//

#ifndef ALIC_IR_NODE_H
#define ALIC_IR_NODE_H

#include "ir/AffineExpr.h"

#include <cassert>
#include <memory>
#include <vector>

namespace alic {

/// Discriminator for the hand-rolled isa/cast scheme (LLVM style).
enum class NodeKind { Loop, Stmt };

/// Base class of the IR tree.
class IrNode {
public:
  explicit IrNode(NodeKind Kind) : Kind(Kind) {}
  virtual ~IrNode();

  NodeKind kind() const { return Kind; }

  /// Deep copy.
  virtual std::unique_ptr<IrNode> clone() const = 0;

private:
  const NodeKind Kind;
};

/// dyn_cast-style accessors; return nullptr on kind mismatch.
template <typename T> T *nodeDynCast(IrNode *Node) {
  if (Node && T::classof(Node))
    return static_cast<T *>(Node);
  return nullptr;
}

template <typename T> const T *nodeDynCast(const IrNode *Node) {
  if (Node && T::classof(Node))
    return static_cast<const T *>(Node);
  return nullptr;
}

/// One subscripted array reference, e.g. A[i][k+1].
struct ArrayAccess {
  unsigned ArrayId = 0;
  std::vector<AffineExpr> Subscripts;

  ArrayAccess() = default;
  ArrayAccess(unsigned ArrayId, std::vector<AffineExpr> Subscripts)
      : ArrayId(ArrayId), Subscripts(std::move(Subscripts)) {}
};

/// One read operand with its coefficient (used by sum-form statements).
struct ReadTerm {
  ArrayAccess Access;
  double Coeff = 1.0;
};

/// Shape of a statement's right-hand side.
enum class RhsKind {
  Sum,     ///< write (+)= Sum_i Coeff_i * Read_i + Bias
  Product, ///< write (+)= Scale * Prod_i Read_i
};

/// An array assignment statement.
class StmtNode : public IrNode {
public:
  StmtNode(ArrayAccess Write, bool Accumulate, RhsKind Rhs,
           std::vector<ReadTerm> Reads, double Scale = 1.0, double Bias = 0.0)
      : IrNode(NodeKind::Stmt), Write(std::move(Write)), Accumulate(Accumulate),
        Rhs(Rhs), Reads(std::move(Reads)), Scale(Scale), Bias(Bias) {}

  static bool classof(const IrNode *Node) {
    return Node->kind() == NodeKind::Stmt;
  }

  std::unique_ptr<IrNode> clone() const override;

  /// Floating-point operations per dynamic execution of this statement.
  unsigned flops() const;

  ArrayAccess Write;
  bool Accumulate = false;
  RhsKind Rhs = RhsKind::Sum;
  std::vector<ReadTerm> Reads;
  double Scale = 1.0;
  double Bias = 0.0;

  /// Marks statements whose real-world counterpart contains an FP divide
  /// (ADI sweeps, LU pivot scaling).  The interpreter still evaluates the
  /// polynomial form; the cost model charges the divide's long latency,
  /// which matters when the statement sits on a recurrence chain.
  bool HasDivision = false;
};

/// A counted loop: for (Var = Lower; Var < min(Uppers); Var += Step).
/// Multiple upper bounds arise from strip-mining (partial final tiles)
/// and from the guard loops that exact unrolling introduces.
class LoopNode : public IrNode {
public:
  LoopNode(LoopVarId Var, AffineExpr Lower, AffineExpr Upper, int64_t Step = 1)
      : IrNode(NodeKind::Loop), Var(Var), Lower(std::move(Lower)),
        Step(Step) {
    assert(Step > 0 && "only forward loops are modeled");
    Uppers.push_back(std::move(Upper));
  }

  static bool classof(const IrNode *Node) {
    return Node->kind() == NodeKind::Loop;
  }

  std::unique_ptr<IrNode> clone() const override;

  /// Adds another upper bound; the loop runs while Var < min(all bounds).
  void addUpperBound(AffineExpr Bound) { Uppers.push_back(std::move(Bound)); }

  /// The primary (first) upper bound.
  const AffineExpr &primaryUpper() const { return Uppers.front(); }

  /// Appends a child node.
  void append(std::unique_ptr<IrNode> Node) { Body.push_back(std::move(Node)); }

  LoopVarId Var;
  AffineExpr Lower;
  std::vector<AffineExpr> Uppers; // effective bound: min over all entries
  int64_t Step = 1;
  std::vector<std::unique_ptr<IrNode>> Body;
};

/// Deep-copies a node list.
std::vector<std::unique_ptr<IrNode>>
cloneNodeList(const std::vector<std::unique_ptr<IrNode>> &Nodes);

} // namespace alic

#endif // ALIC_IR_NODE_H

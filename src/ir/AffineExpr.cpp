//===- ir/AffineExpr.cpp --------------------------------------*- C++ -*-===//

#include "ir/AffineExpr.h"

#include "support/Error.h"
#include "support/Format.h"

#include <algorithm>
#include <cassert>

using namespace alic;

AffineExpr AffineExpr::constant(int64_t Value) {
  AffineExpr E;
  E.Constant = Value;
  return E;
}

AffineExpr AffineExpr::var(LoopVarId Var) { return scaledVar(Var, 1, 0); }

AffineExpr AffineExpr::scaledVar(LoopVarId Var, int64_t Coeff,
                                 int64_t Offset) {
  AffineExpr E;
  if (Coeff != 0)
    E.Terms.emplace_back(Var, Coeff);
  E.Constant = Offset;
  return E;
}

void AffineExpr::normalize() {
  std::sort(Terms.begin(), Terms.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  // Merge duplicate variables and drop zero coefficients.
  std::vector<std::pair<LoopVarId, int64_t>> Merged;
  for (const auto &[Var, Coeff] : Terms) {
    if (!Merged.empty() && Merged.back().first == Var)
      Merged.back().second += Coeff;
    else
      Merged.emplace_back(Var, Coeff);
  }
  Merged.erase(std::remove_if(Merged.begin(), Merged.end(),
                              [](const auto &T) { return T.second == 0; }),
               Merged.end());
  Terms = std::move(Merged);
}

AffineExpr &AffineExpr::addTerm(LoopVarId Var, int64_t Coeff) {
  Terms.emplace_back(Var, Coeff);
  normalize();
  return *this;
}

AffineExpr &AffineExpr::addConstant(int64_t Value) {
  Constant += Value;
  return *this;
}

AffineExpr AffineExpr::operator+(const AffineExpr &Rhs) const {
  AffineExpr Result = *this;
  Result.Constant += Rhs.Constant;
  for (const auto &[Var, Coeff] : Rhs.Terms)
    Result.Terms.emplace_back(Var, Coeff);
  Result.normalize();
  return Result;
}

int64_t AffineExpr::coefficient(LoopVarId Var) const {
  for (const auto &[V, Coeff] : Terms)
    if (V == Var)
      return Coeff;
  return 0;
}

int64_t AffineExpr::evaluate(const std::vector<int64_t> &Env) const {
  int64_t Value = Constant;
  for (const auto &[Var, Coeff] : Terms) {
    assert(Var < Env.size() && "loop variable missing from environment");
    Value += Coeff * Env[Var];
  }
  return Value;
}

AffineExpr AffineExpr::substituteShift(LoopVarId Var, int64_t Offset) const {
  AffineExpr Result = *this;
  Result.Constant += coefficient(Var) * Offset;
  return Result;
}

AffineExpr AffineExpr::substituteVar(LoopVarId From, LoopVarId To,
                                     int64_t Scale, int64_t Off) const {
  int64_t Coeff = coefficient(From);
  if (Coeff == 0)
    return *this;
  AffineExpr Result;
  Result.Constant = Constant + Coeff * Off;
  for (const auto &[Var, C] : Terms)
    if (Var != From)
      Result.Terms.emplace_back(Var, C);
  Result.Terms.emplace_back(To, Coeff * Scale);
  Result.normalize();
  return Result;
}

std::string
AffineExpr::toString(const std::vector<std::string> &VarNames) const {
  if (Terms.empty())
    return std::to_string(Constant);
  std::string Out;
  bool First = true;
  for (const auto &[Var, Coeff] : Terms) {
    std::string Name =
        Var < VarNames.size() ? VarNames[Var] : formatString("v%u", Var);
    if (First) {
      if (Coeff == 1)
        Out += Name;
      else if (Coeff == -1)
        Out += "-" + Name;
      else
        Out += formatString("%lld*%s", static_cast<long long>(Coeff),
                            Name.c_str());
      First = false;
      continue;
    }
    if (Coeff > 0)
      Out += " + ";
    else
      Out += " - ";
    int64_t Abs = Coeff > 0 ? Coeff : -Coeff;
    if (Abs != 1)
      Out += formatString("%lld*", static_cast<long long>(Abs));
    Out += Name;
  }
  if (Constant > 0)
    Out += formatString(" + %lld", static_cast<long long>(Constant));
  else if (Constant < 0)
    Out += formatString(" - %lld", static_cast<long long>(-Constant));
  return Out;
}

//===- ir/Kernel.cpp ------------------------------------------*- C++ -*-===//

#include "ir/Kernel.h"

#include "support/Error.h"
#include "support/Format.h"

#include <cassert>

using namespace alic;

int64_t IrArrayDecl::numElements() const {
  int64_t Total = 1;
  for (int64_t D : Dims)
    Total *= D;
  return Total;
}

Kernel::Kernel(const Kernel &Other)
    : Name(Other.Name), Arrays(Other.Arrays), VarNames(Other.VarNames),
      TopLevel(cloneNodeList(Other.TopLevel)) {}

unsigned Kernel::addArray(std::string ArrayName, std::vector<int64_t> Dims) {
  assert(!Dims.empty() && "arrays need at least one dimension");
  for (int64_t D : Dims)
    assert(D > 0 && "array dimensions must be positive");
  Arrays.push_back({std::move(ArrayName), std::move(Dims)});
  return static_cast<unsigned>(Arrays.size() - 1);
}

LoopVarId Kernel::addLoopVar(std::string VarName) {
  VarNames.push_back(std::move(VarName));
  return static_cast<LoopVarId>(VarNames.size() - 1);
}

void Kernel::appendTopLevel(std::unique_ptr<IrNode> Node) {
  TopLevel.push_back(std::move(Node));
}

static LoopNode *findLoopIn(std::vector<std::unique_ptr<IrNode>> &Nodes,
                            LoopVarId Var) {
  for (auto &Node : Nodes) {
    auto *Loop = nodeDynCast<LoopNode>(Node.get());
    if (!Loop)
      continue;
    if (Loop->Var == Var)
      return Loop;
    if (LoopNode *Inner = findLoopIn(Loop->Body, Var))
      return Inner;
  }
  return nullptr;
}

LoopNode *Kernel::findLoop(LoopVarId Var) { return findLoopIn(TopLevel, Var); }

const LoopNode *Kernel::findLoop(LoopVarId Var) const {
  return findLoopIn(const_cast<Kernel *>(this)->TopLevel, Var);
}

static void visitLoops(const std::vector<std::unique_ptr<IrNode>> &Nodes,
                       const std::function<void(const LoopNode &)> &Fn) {
  for (const auto &Node : Nodes) {
    const auto *Loop = nodeDynCast<LoopNode>(Node.get());
    if (!Loop)
      continue;
    Fn(*Loop);
    visitLoops(Loop->Body, Fn);
  }
}

void Kernel::forEachLoop(
    const std::function<void(const LoopNode &)> &Fn) const {
  visitLoops(TopLevel, Fn);
}

static void visitStmts(const std::vector<std::unique_ptr<IrNode>> &Nodes,
                       const std::function<void(const StmtNode &)> &Fn) {
  for (const auto &Node : Nodes) {
    if (const auto *Stmt = nodeDynCast<StmtNode>(Node.get())) {
      Fn(*Stmt);
      continue;
    }
    visitStmts(nodeDynCast<LoopNode>(Node.get())->Body, Fn);
  }
}

void Kernel::forEachStmt(
    const std::function<void(const StmtNode &)> &Fn) const {
  visitStmts(TopLevel, Fn);
}

size_t Kernel::countStmts() const {
  size_t Count = 0;
  forEachStmt([&Count](const StmtNode &) { ++Count; });
  return Count;
}

size_t Kernel::countLoops() const {
  size_t Count = 0;
  forEachLoop([&Count](const LoopNode &) { ++Count; });
  return Count;
}

namespace {
/// Recursive structural verifier; tracks which loop vars are in scope.
class Verifier {
public:
  Verifier(const Kernel &K) : K(K), InScope(K.numLoopVars(), false) {}

  void run() { verifyList(K.topLevel()); }

private:
  void checkExpr(const AffineExpr &E, const char *What) {
    for (const auto &[Var, Coeff] : E.terms()) {
      if (Var >= InScope.size())
        fatalError("kernel %s: %s references unknown loop var %u",
                   K.name().c_str(), What, Var);
      if (!InScope[Var])
        fatalError("kernel %s: %s references out-of-scope loop var %s",
                   K.name().c_str(), What, K.loopVarName(Var).c_str());
    }
  }

  void checkAccess(const ArrayAccess &Access) {
    if (Access.ArrayId >= K.numArrays())
      fatalError("kernel %s: access to unknown array %u", K.name().c_str(),
                 Access.ArrayId);
    const IrArrayDecl &Decl = K.array(Access.ArrayId);
    if (Access.Subscripts.size() != Decl.Dims.size())
      fatalError("kernel %s: array %s rank %zu accessed with %zu subscripts",
                 K.name().c_str(), Decl.Name.c_str(), Decl.Dims.size(),
                 Access.Subscripts.size());
    for (const AffineExpr &Sub : Access.Subscripts)
      checkExpr(Sub, "subscript");
  }

  void verifyList(const std::vector<std::unique_ptr<IrNode>> &Nodes) {
    for (const auto &Node : Nodes) {
      if (const auto *Stmt = nodeDynCast<StmtNode>(Node.get())) {
        checkAccess(Stmt->Write);
        for (const ReadTerm &Term : Stmt->Reads)
          checkAccess(Term.Access);
        continue;
      }
      const auto *Loop = nodeDynCast<LoopNode>(Node.get());
      checkExpr(Loop->Lower, "loop lower bound");
      for (const AffineExpr &Upper : Loop->Uppers)
        checkExpr(Upper, "loop upper bound");
      if (Loop->Var >= InScope.size())
        fatalError("kernel %s: loop declares unknown var id %u",
                   K.name().c_str(), Loop->Var);
      if (InScope[Loop->Var])
        fatalError("kernel %s: loop var %s shadows an enclosing loop",
                   K.name().c_str(), K.loopVarName(Loop->Var).c_str());
      InScope[Loop->Var] = true;
      verifyList(Loop->Body);
      InScope[Loop->Var] = false;
    }
  }

  const Kernel &K;
  std::vector<bool> InScope;
};
} // namespace

void Kernel::verify() const { Verifier(*this).run(); }

static void printAccess(std::string &Out, const Kernel &K,
                        const ArrayAccess &Access) {
  Out += K.array(Access.ArrayId).Name;
  for (const AffineExpr &Sub : Access.Subscripts) {
    Out += "[";
    Out += Sub.toString(K.loopVarNames());
    Out += "]";
  }
}

static void printNodes(std::string &Out, const Kernel &K,
                       const std::vector<std::unique_ptr<IrNode>> &Nodes,
                       unsigned Indent) {
  std::string Pad(Indent * 2, ' ');
  for (const auto &Node : Nodes) {
    if (const auto *Stmt = nodeDynCast<StmtNode>(Node.get())) {
      Out += Pad;
      printAccess(Out, K, Stmt->Write);
      Out += Stmt->Accumulate ? " += " : " = ";
      if (Stmt->Rhs == RhsKind::Product && Stmt->Scale != 1.0)
        Out += formatString("%g * ", Stmt->Scale);
      bool First = true;
      for (const ReadTerm &Term : Stmt->Reads) {
        if (!First)
          Out += Stmt->Rhs == RhsKind::Sum ? " + " : " * ";
        if (Stmt->Rhs == RhsKind::Sum && Term.Coeff != 1.0)
          Out += formatString("%g*", Term.Coeff);
        printAccess(Out, K, Term.Access);
        First = false;
      }
      if (Stmt->Reads.empty())
        Out += formatString("%g", Stmt->Bias);
      else if (Stmt->Bias != 0.0)
        Out += formatString(" + %g", Stmt->Bias);
      Out += ";\n";
      continue;
    }
    const auto *Loop = nodeDynCast<LoopNode>(Node.get());
    const std::string &Var = K.loopVarName(Loop->Var);
    Out += Pad;
    Out += formatString("for (%s = %s; %s < %s", Var.c_str(),
                        Loop->Lower.toString(K.loopVarNames()).c_str(),
                        Var.c_str(),
                        Loop->Uppers.front().toString(K.loopVarNames()).c_str());
    for (size_t I = 1; I != Loop->Uppers.size(); ++I)
      Out += formatString(" && %s < %s", Var.c_str(),
                          Loop->Uppers[I].toString(K.loopVarNames()).c_str());
    if (Loop->Step == 1)
      Out += formatString("; %s++) {\n", Var.c_str());
    else
      Out += formatString("; %s += %lld) {\n", Var.c_str(),
                          static_cast<long long>(Loop->Step));
    printNodes(Out, K, Loop->Body, Indent + 1);
    Out += Pad;
    Out += "}\n";
  }
}

std::string Kernel::toString() const {
  std::string Out = formatString("kernel %s {\n", Name.c_str());
  for (const IrArrayDecl &Decl : Arrays) {
    Out += "  double " + Decl.Name;
    for (int64_t D : Decl.Dims)
      Out += formatString("[%lld]", static_cast<long long>(D));
    Out += ";\n";
  }
  printNodes(Out, *this, TopLevel, 1);
  Out += "}\n";
  return Out;
}

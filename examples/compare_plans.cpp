//===- examples/compare_plans.cpp - Figure 6 in miniature -----*- C++ -*-===//
//
// Runs the paper's three sampling plans on one benchmark and prints their
// cost-vs-error trajectories side by side — the core comparison behind
// Table 1 and Figure 6, at example scale.
//
//===----------------------------------------------------------------------===//

#include "exp/Dataset.h"
#include "exp/Runner.h"
#include "spapt/Suite.h"
#include "support/Format.h"
#include "support/Table.h"

#include <cstdio>

using namespace alic;

int main(int argc, char **argv) {
  const char *Name = argc > 1 ? argv[1] : "atax";
  auto Bench = createSpaptBenchmark(Name);
  std::printf("comparing sampling plans on %s\n", Bench->name().c_str());

  ExperimentScale S = ExperimentScale::preset(ScaleKind::Smoke);
  S.NumConfigs = 1200;
  S.MaxTrainingExamples = 150;
  S.CandidatesPerIteration = 60;
  S.Particles = 150;
  S.Repetitions = 2;
  S.TestSubset = 250;
  Dataset Data = buildDataset(*Bench, S.NumConfigs, S.TrainFraction,
                              S.MeanObservations, 3);

  const std::pair<const char *, SamplingPlan> Plans[] = {
      {"all observations (35)", SamplingPlan::fixed(35)},
      {"one observation", SamplingPlan::fixed(1)},
      {"variable observations", SamplingPlan::sequential(35)}};

  Table Out({"plan", "profiling cost", "final RMSE", "distinct", "revisits"});
  RunResult Baseline, Ours;
  for (const auto &[PlanName, Plan] : Plans) {
    RunResult R = runAveraged(*Bench, Data, Plan, S, 11);
    Out.addRow({PlanName, formatSeconds(R.TotalCostSeconds),
                formatPaperNumber(R.FinalRmse),
                std::to_string(R.Stats.DistinctExamples),
                std::to_string(R.Stats.Revisits)});
    if (Plan.PlanKind == SamplingPlan::Kind::Fixed &&
        Plan.FixedObservations == 35)
      Baseline = R;
    if (Plan.PlanKind == SamplingPlan::Kind::Sequential)
      Ours = R;
  }
  Out.print();

  PlanComparison Cmp = compareCurves(Baseline, Ours);
  std::printf("\nlowest common RMSE %.4f s: baseline needs %s, the "
              "variable plan needs %s -> %.2fx speedup\n",
              Cmp.LowestCommonRmse,
              formatSeconds(Cmp.BaselineCostSeconds).c_str(),
              formatSeconds(Cmp.OursCostSeconds).c_str(), Cmp.Speedup);
  return 0;
}

//===- examples/serve_session.cpp - Drive ServeEngine in-process -*- C++ -*-===//
//
// A full tuning session against the serve engine: open, then loop
// suggest -> measure -> observe until the learner completes, with a
// mid-session engine teardown and checkpoint restore along the way —
// exactly what a daemon restart does, minus the socket.
//
// The "measurement" here is the same virtual profiler the experiments
// use, standing in for a real compile-and-run.  Note who owns what: the
// *client* measures (and keeps its own cost ledger); the *engine* only
// selects and learns.  See docs/SERVE_PROTOCOL.md for the same exchange
// over the wire.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/serve_session
//
//===----------------------------------------------------------------------===//

#include "measure/Profiler.h"
#include "serve/ServeEngine.h"
#include "spapt/Suite.h"

#include <cstdio>
#include <filesystem>
#include <memory>

using namespace alic;

namespace {

/// The session shape used throughout this example: one SPAPT benchmark,
/// the paper's sequential plan, and a miniature scale so the full
/// explore -> fit -> converge arc runs in a couple of seconds.
SessionSpec exampleSpec() {
  SessionSpec Spec;
  Spec.Benchmark = "mvt";
  Spec.Model = ModelKind::DynaTree;
  Spec.Scorer = ScorerKind::Alc;
  Spec.Plan = SamplingPlan::sequential(35);
  Spec.Seed = 7;
  Spec.Scale.NumConfigs = 400;
  Spec.Scale.MaxTrainingExamples = 40;
  Spec.Scale.CandidatesPerIteration = 30;
  Spec.Scale.ReferenceSetSize = 30;
  Spec.Scale.Particles = 50;
  Spec.Scale.TestSubset = 80;
  return Spec;
}

ServeOptions exampleOptions(const std::string &StateDir) {
  ServeOptions Opts;
  Opts.StateDir = StateDir;
  Opts.Threads = 2;
  return Opts;
}

} // namespace

int main() {
  const std::string StateDir = "alic-serve-example-state";
  std::filesystem::remove_all(StateDir);

  // The client's own measurement rig: in a real deployment this is your
  // compiler and your machine; here the calibrated virtual profiler.
  auto Bench = createSpaptBenchmark("mvt");
  Profiler Lab(*Bench, /*StreamSeed=*/0xc11e47);

  std::string Err;
  auto Engine = std::make_unique<ServeEngine>(exampleOptions(StateDir));
  if (!Engine->openSession("demo", exampleSpec(), Err)) {
    std::fprintf(stderr, "open failed: %s\n", Err.c_str());
    return 1;
  }

  size_t Rounds = 0;
  bool Restarted = false;
  while (true) {
    Suggestion S;
    if (!Engine->suggest("demo", S, Err)) {
      std::fprintf(stderr, "suggest failed: %s\n", Err.c_str());
      return 1;
    }
    if (S.Phase == SuggestPhase::Done)
      break;

    // Measure every suggested configuration the requested number of
    // times.  The explore-phase suggestion arrives before any model
    // exists: the engine serves the sampling plan's seed configs first.
    std::vector<double> Costs;
    for (const Config &C : S.Configs) {
      std::vector<double> Obs = Lab.measure(C, S.ObservationsPerConfig);
      Costs.insert(Costs.end(), Obs.begin(), Obs.end());
    }
    if (!Engine->observe("demo", S.Ticket, Costs, Err)) {
      std::fprintf(stderr, "observe failed: %s\n", Err.c_str());
      return 1;
    }
    ++Rounds;

    if (Rounds == 1)
      std::printf("explore: measured %zu seed configs (%u obs each)\n",
                  S.Configs.size(), S.ObservationsPerConfig);
    if (Rounds % 10 == 0) {
      double Rmse = 0.0;
      if (Engine->evaluate("demo", Rmse, Err))
        std::printf("round %3zu: model RMSE %.4f s, client spent %.0f "
                    "virtual s measuring\n",
                    Rounds, Rmse, Lab.ledger().totalSeconds());
    }

    // Mid-session "crash": throw the engine away and rebuild it from the
    // checkpoint directory.  The client keeps going as if nothing
    // happened — the restored session's next suggestion is byte-identical
    // to what the old engine would have sent (serve_test pins this).
    if (Rounds == 15 && !Restarted) {
      Engine.reset();
      Engine = std::make_unique<ServeEngine>(exampleOptions(StateDir));
      size_t Restored = Engine->restoreSessions();
      SessionInfo Info;
      Engine->sessionInfo("demo", Info, Err);
      std::printf("engine restarted: %zu session(s) restored, resumed at "
                  "iteration %zu\n",
                  Restored, Info.Stats.Iterations);
      Restarted = true;
    }
  }

  SessionInfo Info;
  double Rmse = 0.0;
  if (!Engine->sessionInfo("demo", Info, Err) ||
      !Engine->evaluate("demo", Rmse, Err)) {
    std::fprintf(stderr, "final query failed: %s\n", Err.c_str());
    return 1;
  }
  std::printf("session done after %zu rounds: %zu distinct configs "
              "(+%zu revisits), final RMSE %.4f s\n",
              Rounds, Info.Stats.DistinctExamples, Info.Stats.Revisits,
              Rmse);

  Engine->closeSession("demo");
  std::filesystem::remove_all(StateDir);
  return 0;
}

//===- examples/quickstart.cpp - 40-line tour of the library --*- C++ -*-===//
//
// Builds a runtime model for one SPAPT benchmark with the paper's
// variable-observation active learner, then queries it.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/ActiveLearner.h"
#include "dynatree/DynaTree.h"
#include "exp/Dataset.h"
#include "spapt/Suite.h"

#include <cmath>
#include <cstdio>

using namespace alic;

int main() {
  // 1. Pick a benchmark: kernel + tunable space + calibrated noise.
  auto Bench = createSpaptBenchmark("gemver");
  std::printf("benchmark %s: %zu tunable parameters, %s configurations\n",
              Bench->name().c_str(), Bench->space().numParams(),
              Bench->space().cardinality().toScientific(3).c_str());

  // 2. Sample a training pool and a held-out test set.
  Dataset Data = buildDataset(*Bench, /*NumConfigs=*/1200,
                              /*TrainFraction=*/0.75,
                              /*MeanObservations=*/35, /*Seed=*/1);

  // 3. A dynamic-tree surrogate (the paper's model) ...
  DynaTreeConfig ModelCfg;
  ModelCfg.NumParticles = 200;
  DynaTree Model(ModelCfg);

  // 4. ... driven by the sequential-analysis active learner (Alg. 1).
  ActiveLearnerConfig Cfg;
  Cfg.MaxTrainingExamples = 150;
  Cfg.CandidatesPerIteration = 80;
  ActiveLearner Learner(*Bench, Model, Data.Norm, Data.TrainPool,
                        SamplingPlan::sequential(35), Cfg);
  while (Learner.step()) {
  }

  // 5. Query the model: predicted runtime (with uncertainty) anywhere.
  double SqErr = 0.0;
  for (size_t I = 0; I != Data.TestFeatures.size(); ++I) {
    double Err = Model.predict(Data.TestFeatures[I]).Mean - Data.TestMeans[I];
    SqErr += Err * Err;
  }
  std::printf("trained on %zu distinct configs (+%zu revisits), "
              "spent %.0f virtual seconds profiling\n",
              Learner.stats().DistinctExamples, Learner.stats().Revisits,
              Learner.cumulativeCostSeconds());
  std::printf("held-out RMSE: %.4f s\n",
              std::sqrt(SqErr / double(Data.TestFeatures.size())));
  return 0;
}

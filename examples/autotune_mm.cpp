//===- examples/autotune_mm.cpp - end-to-end autotuning -------*- C++ -*-===//
//
// The workload the paper's introduction motivates: find a good set of
// unroll/tile factors for a kernel without exhaustively profiling its
// 3.2-billion-point space.  Learn a runtime model actively, then search
// the model (cheap) instead of the machine (expensive) and validate the
// winner with real measurements.
//
//===----------------------------------------------------------------------===//

#include "core/ActiveLearner.h"
#include "dynatree/DynaTree.h"
#include "exp/Dataset.h"
#include "spapt/Suite.h"

#include <algorithm>
#include <cstdio>

using namespace alic;

int main() {
  auto Bench = createSpaptBenchmark("mm");
  std::printf("autotuning %s over %s configurations\n",
              Bench->name().c_str(),
              Bench->space().cardinality().toScientific(3).c_str());

  // Train a runtime model with the variable-observation active learner.
  Dataset Data = buildDataset(*Bench, 2000, 0.9, 35, 7);
  DynaTreeConfig ModelCfg;
  ModelCfg.NumParticles = 250;
  DynaTree Model(ModelCfg);
  ActiveLearnerConfig Cfg;
  Cfg.MaxTrainingExamples = 250;
  Cfg.CandidatesPerIteration = 100;
  ActiveLearner Learner(*Bench, Model, Data.Norm, Data.TrainPool,
                        SamplingPlan::sequential(35), Cfg);
  while (Learner.step()) {
  }
  std::printf("model trained: %.0f virtual seconds of profiling "
              "(%zu configs, %zu revisits)\n",
              Learner.cumulativeCostSeconds(),
              Learner.stats().DistinctExamples, Learner.stats().Revisits);

  // Search the model over a large random candidate sweep — this costs
  // microseconds per point instead of a compile + runs.
  Rng R(13);
  Config Best = Bench->baselineConfig();
  double BestPredicted = 1e300;
  for (int I = 0; I != 20000; ++I) {
    Config C = Bench->space().sample(R);
    double Predicted =
        Model.predict(Data.Norm.transform(Bench->space().features(C))).Mean;
    if (Predicted < BestPredicted) {
      BestPredicted = Predicted;
      Best = C;
    }
  }

  // Validate against the (virtual) machine.
  double BaselineTruth = Bench->meanRuntimeSeconds(Bench->baselineConfig());
  double BestTruth = Bench->meanRuntimeSeconds(Best);
  std::printf("\n-O2 baseline:        %.3f s\n", BaselineTruth);
  std::printf("model's best config: %.3f s (predicted %.3f s)\n", BestTruth,
              BestPredicted);
  std::printf("  %s\n", Bench->space().toString(Best).c_str());
  std::printf("speedup over -O2: %.2fx\n", BaselineTruth / BestTruth);
  return 0;
}

//===- examples/noisy_lab.cpp - the future-work experiment ----*- C++ -*-===//
//
// The paper's Section 7 closes with: "We intend to test the bounds of our
// technique by artificially introducing noise into the system."  This
// example is that experiment: it cranks the interference level of a quiet
// benchmark and watches the sequential plan shift budget from exploring
// new configurations to re-measuring noisy ones.
//
//===----------------------------------------------------------------------===//

#include "exp/Dataset.h"
#include "exp/Runner.h"
#include "spapt/Suite.h"
#include "support/Format.h"
#include "support/Table.h"

#include <cstdio>

using namespace alic;

int main() {
  auto Bench = createSpaptBenchmark("atax");
  std::printf("injecting synthetic interference into %s measurements\n",
              Bench->name().c_str());

  ExperimentScale S = ExperimentScale::preset(ScaleKind::Smoke);
  S.NumConfigs = 1000;
  S.MaxTrainingExamples = 120;
  S.CandidatesPerIteration = 60;
  S.Particles = 120;
  S.Repetitions = 2;
  S.TestSubset = 200;
  Dataset Data = buildDataset(*Bench, S.NumConfigs, S.TrainFraction,
                              S.MeanObservations, 5);

  Table Out({"noise scale", "revisit rate", "observations/example",
             "final RMSE"});
  for (double Scale : {0.1, 1.0, 5.0, 20.0, 80.0}) {
    RunOptions Opt;
    Opt.NoiseScale = Scale;
    RunResult R = runAveraged(*Bench, Data, SamplingPlan::sequential(35), S,
                              9, Opt);
    double Rate = double(R.Stats.Revisits) / double(R.Stats.Iterations);
    double ObsPerExample =
        double(R.Stats.Iterations) /
        double(std::max<size_t>(1, R.Stats.DistinctExamples));
    Out.addRow({formatString("%.1fx", Scale), formatString("%.0f%%",
                100.0 * Rate),
                formatString("%.2f", ObsPerExample),
                formatPaperNumber(R.FinalRmse)});
  }
  Out.print();
  std::printf("\nthe learner buys repetition only when the environment "
              "demands it — that is the sequential-analysis mechanism.\n");
  return 0;
}
